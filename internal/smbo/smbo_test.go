package smbo_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/smbo"
)

// constModel returns fixed means/variances.
type constModel struct {
	mean, variance []float64
}

func (m constModel) PredictDist(active []float64) ([]float64, []float64) {
	return m.mean, m.variance
}

// TestExpectedImprovementProperties checks the closed-form EI: zero when the
// mean is far below the incumbent with no uncertainty, positive with
// uncertainty, monotone in the mean.
func TestExpectedImprovementProperties(t *testing.T) {
	if ei := smbo.ExpectedImprovement(0, 0, 1); ei != 0 {
		t.Errorf("EI with mean<best, sigma=0: got %f, want 0", ei)
	}
	if ei := smbo.ExpectedImprovement(2, 0, 1); ei != 1 {
		t.Errorf("EI with mean>best, sigma=0: got %f, want mean-best=1", ei)
	}
	if ei := smbo.ExpectedImprovement(0, 1, 1); ei <= 0 {
		t.Errorf("EI with uncertainty must be positive, got %f", ei)
	}
	f := func(a, b uint8) bool {
		mu1 := float64(a) / 16
		mu2 := mu1 + float64(b)/16 + 0.01
		return smbo.ExpectedImprovement(mu2, 1, 2) >= smbo.ExpectedImprovement(mu1, 1, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOptimizeFindsMaximum: with a perfect surrogate, EI must find the best
// column in far fewer samples than the column count.
func TestOptimizeFindsMaximum(t *testing.T) {
	truth := []float64{1, 3, 2, 9, 4, 5, 0.5, 8, 7, 6, 2.5, 3.5}
	variance := make([]float64, len(truth))
	for i := range variance {
		variance[i] = 0.25
	}
	model := constModel{mean: truth, variance: variance}
	active := make([]float64, len(truth))
	for i := range active {
		active[i] = math.NaN()
	}
	active[0] = truth[0]
	samples := 0
	res := smbo.Optimize(model, active, func(i int) float64 {
		samples++
		return truth[i]
	}, smbo.Options{Policy: smbo.EI, Stop: smbo.StopNone, MaxExplorations: 3})
	if res.Best != 3 {
		t.Errorf("best = %d (rating %f), want 3", res.Best, res.BestRating)
	}
	if samples > 4 {
		t.Errorf("used %d samples; EI should find the max almost immediately", samples)
	}
}

// TestPoliciesDiffer: Greedy goes straight to the top predicted mean;
// Variance goes to the most uncertain column.
func TestPoliciesDiffer(t *testing.T) {
	mean := []float64{1, 5, 2}
	variance := []float64{0.01, 0.01, 4}
	row := []float64{2, math.NaN(), math.NaN()}
	rng := uint64(9)
	next, _ := smbo.PickNext(row, mean, variance, 2, smbo.Greedy, &rng)
	if next != 1 {
		t.Errorf("Greedy picked %d, want 1 (highest mean)", next)
	}
	next, _ = smbo.PickNext(row, mean, variance, 2, smbo.Variance, &rng)
	if next != 2 {
		t.Errorf("Variance picked %d, want 2 (highest uncertainty)", next)
	}
}

// TestStopRules: Naive stops as soon as EI is marginal; Cautious requires
// the decreasing-EI history and a stalled improvement too.
func TestStopRules(t *testing.T) {
	inf := math.Inf(1)
	// Naive: relative EI below epsilon → stop, regardless of history.
	if !smbo.ShouldStop(smbo.StopNaive, 0.05, 10, 0.4, inf, inf, inf) {
		t.Error("Naive should stop when EI/incumbent < eps")
	}
	if smbo.ShouldStop(smbo.StopNaive, 0.05, 10, 0.6, inf, inf, inf) {
		t.Error("Naive should continue when EI/incumbent >= eps")
	}
	// Cautious: same marginal EI but fresh history → continue.
	if smbo.ShouldStop(smbo.StopCautious, 0.05, 10, 0.4, inf, inf, inf) {
		t.Error("Cautious must not stop without a decreasing-EI history")
	}
	// Cautious: decreasing EI + marginal + stalled → stop.
	if !smbo.ShouldStop(smbo.StopCautious, 0.05, 10, 0.3, 0.5, 0.9, 0.0) {
		t.Error("Cautious should stop when all three conditions hold")
	}
	// Cautious: recent improvement keeps it going.
	if smbo.ShouldStop(smbo.StopCautious, 0.05, 10, 0.3, 0.5, 0.9, 0.2) {
		t.Error("Cautious must not stop right after a real improvement")
	}
}

// TestRandomPolicyCoverage: the Random policy eventually samples everything.
func TestRandomPolicyCoverage(t *testing.T) {
	n := 10
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = float64(i)
	}
	model := constModel{mean: make([]float64, n), variance: make([]float64, n)}
	active := make([]float64, n)
	for i := range active {
		active[i] = math.NaN()
	}
	seen := map[int]bool{}
	smbo.Optimize(model, active, func(i int) float64 {
		seen[i] = true
		return truth[i]
	}, smbo.Options{Policy: smbo.Random, Stop: smbo.StopNone, MaxExplorations: n, Seed: 4, NoFinalCheck: true})
	if len(seen) != n {
		t.Errorf("Random explored %d of %d columns", len(seen), n)
	}
}
