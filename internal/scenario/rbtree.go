package scenario

import "repro/internal/workloads"

// Red-black tree family (internal/workloads/rbtree.go): the paper's
// flagship data-structure workload, whose optimal configuration flips
// between HTM tunings and STMs as the update ratio and key range change.

var (
	rbKeyRange = Param{Name: "keyrange", Desc: "key range of the tree", Kind: Int, Default: "16384"}
	rbUpdate   = Param{Name: "update", Desc: "fraction of mutating operations", Kind: Float, Default: "0.2"}
	rbInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
)

func init() {
	Register(Scenario{
		Name:        "rbtree",
		Family:      "rbtree",
		Description: "red-black tree under a lookup/insert/delete mix",
		Params:      []Param{rbKeyRange, rbUpdate, rbInitial},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.RBTree{
				KeyRange:    v.Int(rbKeyRange),
				UpdateRatio: v.Float(rbUpdate),
				InitialSize: v.Int(rbInitial),
			}, nil
		},
	})
}
