package machine_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/machine"
)

// TestMachineBSpace checks Machine B's space matches the paper exactly:
// 4 STMs × 8 thread counts = 32 configurations, no HTM.
func TestMachineBSpace(t *testing.T) {
	cfgs := machine.B().Configs()
	if len(cfgs) != 32 {
		t.Errorf("Machine B has %d configs, want 32", len(cfgs))
	}
	for _, c := range cfgs {
		if c.Alg.IsHTM() {
			t.Errorf("HTM config %v on the no-TSX machine", c)
		}
	}
}

// TestMachineASpace checks Machine A's space structure: STMs plus HTM
// contention-management variants, with budget-1 policies deduplicated.
func TestMachineASpace(t *testing.T) {
	cfgs := machine.A().Configs()
	stm, htmCount := 0, 0
	seen := map[uint32]bool{}
	for _, c := range cfgs {
		if seen[c.Key()] {
			t.Errorf("duplicate configuration %v", c)
		}
		seen[c.Key()] = true
		if c.Alg.IsHTM() {
			htmCount++
		} else {
			stm++
		}
	}
	if stm != 32 {
		t.Errorf("STM configs = %d, want 32", stm)
	}
	// 8 threads × (5 budgets × 3 policies + 1 deduped budget-1) = 128.
	if htmCount != 128 {
		t.Errorf("HTM configs = %d, want 128", htmCount)
	}
}

// TestByName round-trips profile lookup.
func TestByName(t *testing.T) {
	for _, name := range []string{"A", "B", "a", "b"} {
		if _, err := machine.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := machine.ByName("Z"); err == nil {
		t.Error("expected error for unknown machine")
	}
}

// TestConfigStrings spot-checks the paper's label style.
func TestConfigStrings(t *testing.T) {
	c := config.Config{Alg: config.TinySTM, Threads: 8}
	if got := c.String(); got != "Tiny:8t" {
		t.Errorf("String = %q, want Tiny:8t", got)
	}
	h := machine.A().Configs()[len(machine.A().Configs())-1]
	if !h.Alg.IsHTM() {
		t.Skip("last config not HTM")
	}
	if got := h.String(); got == "" {
		t.Error("empty HTM label")
	}
}

// TestMaxThreads checks the helper.
func TestMaxThreads(t *testing.T) {
	if got := machine.A().MaxThreads(); got != 8 {
		t.Errorf("A MaxThreads = %d, want 8", got)
	}
	if got := machine.B().MaxThreads(); got != 48 {
		t.Errorf("B MaxThreads = %d, want 48", got)
	}
}
