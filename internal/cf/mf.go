package cf

// MF is matrix-factorization CF trained with stochastic gradient descent:
// workloads and configurations are embedded in a d-dimensional latent space
// and a rating is reconstructed as the dot product of the two embeddings
// (§2.2 of the paper). Active rows are folded in by fitting a fresh user
// vector against the frozen item factors.
type MF struct {
	// D is the latent dimensionality.
	D int
	// Epochs is the number of SGD sweeps over the known training cells.
	Epochs int
	// LR is the SGD learning rate; Reg the L2 regularization weight.
	LR, Reg float64
	// Seed makes training deterministic.
	Seed uint64

	q          [][]float64 // item factors, Cols×D
	itemBias   []float64
	globalMean float64
	cols       int
}

// Name implements Predictor.
func (m *MF) Name() string { return "mf" }

func (m *MF) defaults() (d, epochs int, lr, reg float64) {
	d, epochs, lr, reg = m.D, m.Epochs, m.LR, m.Reg
	if d <= 0 {
		d = 8
	}
	if epochs <= 0 {
		epochs = 60
	}
	if lr == 0 {
		lr = 0.02
	}
	if reg == 0 {
		reg = 0.05
	}
	return
}

// Fit implements Predictor: SGD over the known cells with user/item biases.
func (m *MF) Fit(train *Matrix) {
	d, epochs, lr, reg := m.defaults()
	m.cols = train.Cols
	rng := splitmix64(m.Seed + 0x9E3779B97F4A7C15)
	p := randomFactors(&rng, train.Rows, d)
	m.q = randomFactors(&rng, train.Cols, d)
	m.itemBias = make([]float64, train.Cols)
	userBias := make([]float64, train.Rows)

	sum, n := 0.0, 0
	for _, row := range train.Data {
		for _, v := range row {
			if !IsMissing(v) {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		m.globalMean = 0
		return
	}
	m.globalMean = sum / float64(n)

	for e := 0; e < epochs; e++ {
		for u, row := range train.Data {
			for i, v := range row {
				if IsMissing(v) {
					continue
				}
				pred := m.globalMean + userBias[u] + m.itemBias[i] + dot(p[u], m.q[i])
				err := v - pred
				userBias[u] += lr * (err - reg*userBias[u])
				m.itemBias[i] += lr * (err - reg*m.itemBias[i])
				for f := 0; f < d; f++ {
					pu, qi := p[u][f], m.q[i][f]
					p[u][f] += lr * (err*qi - reg*pu)
					m.q[i][f] += lr * (err*pu - reg*qi)
				}
			}
		}
	}
}

// Predict implements Predictor: folds the active row into the latent space
// by running SGD on a fresh user vector against the frozen item factors,
// then reconstructs every missing rating.
func (m *MF) Predict(active []float64) []float64 {
	out := make([]float64, len(active))
	copy(out, active)
	if m.q == nil || len(active) != m.cols {
		return out
	}
	bu, pu := m.foldIn(active)
	for i := range out {
		if IsMissing(out[i]) {
			out[i] = m.globalMean + bu + m.itemBias[i] + dot(pu, m.q[i])
		}
	}
	return out
}

// PredictFull returns the latent-space reconstruction for every column,
// including those whose rating is known.
func (m *MF) PredictFull(active []float64) []float64 {
	out := make([]float64, len(active))
	if m.q == nil || len(active) != m.cols {
		copy(out, active)
		return out
	}
	bu, pu := m.foldIn(active)
	for i := range out {
		out[i] = m.globalMean + bu + m.itemBias[i] + dot(pu, m.q[i])
	}
	return out
}

// foldIn fits a fresh user bias and factor vector to the active row's known
// ratings against the frozen item factors.
func (m *MF) foldIn(active []float64) (float64, []float64) {
	d, epochs, lr, reg := m.defaults()
	rng := splitmix64(m.Seed + 0xBF58476D1CE4E5B9)
	pu := make([]float64, d)
	for f := range pu {
		pu[f] = (rand01(&rng) - 0.5) * 0.1
	}
	bu := 0.0
	foldEpochs := epochs * 2
	for e := 0; e < foldEpochs; e++ {
		for i, v := range active {
			if IsMissing(v) {
				continue
			}
			pred := m.globalMean + bu + m.itemBias[i] + dot(pu, m.q[i])
			err := v - pred
			bu += lr * (err - reg*bu)
			for f := 0; f < d; f++ {
				pf := pu[f]
				pu[f] += lr * (err*m.q[i][f] - reg*pf)
			}
		}
	}
	return bu, pu
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func randomFactors(rng *uint64, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for f := range row {
			row[f] = (rand01(rng) - 0.5) * 0.1
		}
		out[i] = row
	}
	return out
}

// splitmix64 seeds a simple deterministic PRNG state.
func splitmix64(seed uint64) uint64 {
	if seed == 0 {
		seed = 0x106689D45497FDB5
	}
	return seed
}

// rand01 advances the xorshift state and returns a uniform value in [0, 1).
func rand01(state *uint64) float64 {
	x := *state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*state = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}
