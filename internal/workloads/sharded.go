package workloads

import (
	"fmt"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceSharded is the deterministic twin of proteusd's sharded serving
// layer (internal/serve with Options.Shards > 1): the key space is
// partitioned across per-shard red-black-tree stores by the same
// consistent-hash ring the server routes with, single-key operations run
// against the owning shard's store under that shard's commit fence, and a
// periodic cross-shard batch put exercises the two-phase fence protocol
// (ordered acquire, abort-all on failure, apply+release per shard).
//
// The skew knob is what makes the scenario interesting for per-shard
// tuning: with Skew > 0, keys owned by the lower half of the shards are
// driven with the write-heavy mix and the upper half with the read-heavy
// mix, so per-shard traffic profiles diverge the way the sharded daemon's
// do under `proteusbench loadgen --skew`. All shards share one heap here
// (the harness owns a single pool), so the scenario validates routing,
// fencing and determinism — the per-shard *tuners* are exercised by the
// live daemon, not this workload.
type ServiceSharded struct {
	// Label overrides the workload name (default "service-sharded").
	Label string
	// Shards is the number of key-space shards (default 4).
	Shards int
	// KeyRange bounds the keys (default 1 << 14).
	KeyRange int
	// InitialSize pre-populates the stores (default KeyRange/2).
	InitialSize int
	// Span is the width of a per-shard range scan (default 128).
	Span int
	// Skew in [0,1] is the probability an operation uses the
	// shard-correlated mix instead of the uniform "mixed" mix
	// (default 0.8).
	Skew float64
	// BatchEvery makes every Nth operation a cross-shard batch put
	// through the fence protocol (default 64; 0 disables batches).
	BatchEvery int
	// BatchKeys is the batch width (default 4).
	BatchKeys int

	ring   *shard.Ring
	sets   []*RBSet
	fences tm.Addr // Shards consecutive fence words, one per shard
	ops    atomic.Uint64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, keyRange, span, batchEvery, batchKeys int
	skew                                          float64
}

// Name implements Workload.
func (s *ServiceSharded) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-sharded"
}

func (s *ServiceSharded) params() (shards, keyRange, initial, span, batchEvery, batchKeys int, skew float64) {
	shards = s.Shards
	if shards <= 0 {
		shards = 4
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	span = s.Span
	if span <= 0 {
		span = 128
	}
	batchEvery = s.BatchEvery
	if batchEvery < 0 {
		batchEvery = 0
	} else if batchEvery == 0 {
		batchEvery = 64
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	skew = s.Skew
	if skew < 0 {
		skew = 0
	}
	if skew > 1 {
		skew = 1
	}
	return
}

// Setup implements Workload: it builds one store and one fence word per
// shard and pre-populates each store with the keys it owns.
func (s *ServiceSharded) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	s.shards, s.keyRange, initial, s.span, s.batchEvery, s.batchKeys, s.skew = s.params()
	s.ring = shard.New(s.shards)
	s.sets = make([]*RBSet, s.shards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("sharded: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	fences, err := h.Alloc(s.shards)
	if err != nil {
		return fmt.Errorf("sharded: fences: %w", err)
	}
	s.fences = fences
	s.ops.Store(0)
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := s.ring.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// fence returns shard i's fence word.
func (s *ServiceSharded) fence(i int) tm.Addr { return s.fences + tm.Addr(i) }

// mixFor picks the operation mix for a key owned by shard o: under skew,
// the lower half of the shards is write-heavy and the upper half
// read-heavy — the per-shard divergence the sharded daemon's tuners see.
func (s *ServiceSharded) mixFor(o int, rng *Rand) ServiceOpMix {
	if rng.Float64() < s.skew {
		if o < s.shards/2 {
			return serviceMixes["write-heavy"]
		}
		return serviceMixes["read-heavy"]
	}
	return serviceMixes["mixed"]
}

// Op implements Workload: either one single-key operation on the owning
// shard (under its fence) or, every BatchEvery-th call, a cross-shard
// batch put through the two-phase fence protocol.
func (s *ServiceSharded) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if s.batchEvery > 0 && n%uint64(s.batchEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	k := uint64(rng.Intn(s.keyRange))
	o := s.ring.Owner(k)
	mix := s.mixFor(o, rng)
	set, fence := s.sets[o], s.fence(o)
	p := rng.Float64()
	// Fenced single-shard operations retry like the serve workers requeue;
	// in deterministic (serial) mode the fence is never contended and the
	// first attempt always executes.
	for try := 0; try < 1000; try++ {
		fenced := false
		switch {
		case p < mix.Get:
			r.Atomic(self, func(tx tm.Txn) {
				if fenced = tx.Load(fence) != 0; fenced {
					return
				}
				set.Get(tx, k)
			})
		case p < mix.Get+mix.Put:
			r.Atomic(self, func(tx tm.Txn) {
				if fenced = tx.Load(fence) != 0; fenced {
					return
				}
				set.Insert(tx, self, k, n)
			})
		case p < mix.Get+mix.Put+mix.Del:
			r.Atomic(self, func(tx tm.Txn) {
				if fenced = tx.Load(fence) != 0; fenced {
					return
				}
				set.Delete(tx, self, k)
			})
		case p < mix.Get+mix.Put+mix.Del+mix.CAS:
			r.Atomic(self, func(tx tm.Txn) {
				if fenced = tx.Load(fence) != 0; fenced {
					return
				}
				if v, ok := set.Get(tx, k); ok {
					set.Insert(tx, self, k, v+1)
				}
			})
		default:
			hi := k + uint64(s.span)
			r.Atomic(self, func(tx tm.Txn) {
				if fenced = tx.Load(fence) != 0; fenced {
					return
				}
				cnt := 0
				set.AscendRange(tx, k, hi, func(_, _ uint64) bool {
					cnt++
					return true
				})
			})
		}
		if !fenced {
			return
		}
	}
}

// crossBatch runs one cross-shard batch put through the commit protocol:
// fences are acquired in ascending shard order, any acquisition failure
// releases everything taken so far (abort-all) and retries, and each
// shard's writes are applied and its fence released in one transaction.
func (s *ServiceSharded) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(s.keyRange))
	}
	parts := s.ring.Participants(keys)
	token := uint64(self) + 1
	for try := 0; try < 1000; try++ {
		acquired := 0
		ok := true
		for _, p := range parts {
			fence := s.fence(p)
			var got bool
			r.Atomic(self, func(tx tm.Txn) {
				got = false
				if tx.Load(fence) == 0 {
					tx.Store(fence, token)
					got = true
				}
			})
			if !got {
				ok = false
				break
			}
			acquired++
		}
		if !ok {
			for _, p := range parts[:acquired] {
				fence := s.fence(p)
				r.Atomic(self, func(tx tm.Txn) { tx.Store(fence, 0) })
			}
			continue
		}
		for _, p := range parts {
			set, fence := s.sets[p], s.fence(p)
			r.Atomic(self, func(tx tm.Txn) {
				for _, k := range keys {
					if s.ring.Owner(k) == p {
						set.Insert(tx, self, k, n)
					}
				}
				tx.Store(fence, 0)
			})
		}
		return
	}
}

// Verify implements Verifier: every key must live in the store of the
// shard that owns it (the routing invariant the consistent-hash ring
// promises) and no fence may be left held.
func (s *ServiceSharded) Verify(h *tm.Heap) error {
	seq := NewBareRunner(seqAlg(), h, 1)
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if tx.Load(s.fence(i)) != 0 {
				err = fmt.Errorf("sharded: shard %d fence left held", i)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if o := s.ring.Owner(k); o != i {
					err = fmt.Errorf("sharded: key %d found on shard %d but owned by %d", k, i, o)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
