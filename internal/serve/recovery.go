// Self-healing for the cross-shard commit protocol: the commit-state
// registry (the coordinator's write-ahead decision record), the per-shard
// failure detector that scavenges orphaned fences, and the per-shard
// circuit breaker that sheds load away from a shard that has stopped
// making progress.
//
// The registry is the recovery oracle. Every cross-shard coordinator
// registers its batch — token, operation, keys/values, and the (shard,
// epoch) of each fence as it is acquired — and marks the batch *decided*
// once every fence is held (writes only; reads are never decided). When a
// shard's detector finds a fence held past the deadline, it looks the
// token up: a decided batch is rolled forward (the writes are applied on
// the dead coordinator's behalf, then the fence released), anything else
// is aborted (fences released, nothing applied). Both paths run under the
// fence's (token, epoch) guard, so recovery racing a slow-but-alive
// coordinator is safe in both directions: whichever transaction commits
// second observes the mismatch and becomes a no-op. The decide/claim
// handshake is serialized by the registry mutex, so recovery and a slow
// coordinator can never split a batch between roll-forward and abort.
package serve

import (
	"net/http"
	"sync"
	"time"

	proteustm "repro"
)

// crossPart is one shard's slice of a registered cross-shard batch.
type crossPart struct {
	shard int
	idx   []int // positions into the batch's keys/vals owned by this shard
	// epoch is the fence epoch this batch holds the shard under (valid
	// while acquired); slot is the keyed fence table entry the hold
	// occupies (-1 under the whole-shard fence); released marks the
	// fence freed (by the coordinator's apply/abort or — byRecovery —
	// by the detector).
	epoch      uint64
	slot       int
	acquired   bool
	released   bool
	byRecovery bool
}

// crossRec is the registry record of one in-flight cross-shard batch —
// everything recovery needs to finish or undo it without its coordinator.
type crossRec struct {
	token      uint64
	op         opKind
	keys, vals []uint64
	parts      []*crossPart
	// decided flips once every fence is held (writes only): from here
	// the batch must commit, so recovery rolls it forward. abandoned
	// marks a coordinator crash (fault injection): the record is owned
	// by recovery and removed when the last fence is released.
	decided   bool
	abandoned bool
	// recovering serializes detectors (one recovery per batch at a
	// time); counted makes the recovered-batch accounting idempotent.
	recovering bool
	counted    bool
}

// crossReg is the server-wide commit-state registry.
type crossReg struct {
	mu   sync.Mutex
	recs map[uint64]*crossRec
}

func newCrossReg() *crossReg { return &crossReg{recs: make(map[uint64]*crossRec)} }

// register records a new batch before its first acquisition.
func (g *crossReg) register(token uint64, req *request, batches []subBatch) *crossRec {
	rec := &crossRec{token: token, op: req.op, keys: req.keys, vals: req.vals}
	for _, b := range batches {
		rec.parts = append(rec.parts, &crossPart{shard: b.shard, idx: b.idx, slot: -1})
	}
	g.mu.Lock()
	g.recs[token] = rec
	g.mu.Unlock()
	return rec
}

// remove drops a completed (non-abandoned) batch.
func (g *crossReg) remove(token uint64) {
	g.mu.Lock()
	delete(g.recs, token)
	g.mu.Unlock()
}

// acquired records that part p holds its shard's fence under epoch, at
// keyed table entry slot (-1 under the whole-shard fence).
func (g *crossReg) acquired(rec *crossRec, p *crossPart, epoch uint64, slot int) {
	g.mu.Lock()
	p.epoch, p.slot, p.acquired, p.released, p.byRecovery = epoch, slot, true, false, false
	g.mu.Unlock()
}

// acquireState reports the (token, epoch, slot) part p currently holds
// its fence under, if it does.
func (g *crossReg) acquireState(rec *crossRec, p *crossPart) (token, epoch uint64, slot int, held bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return rec.token, p.epoch, p.slot, p.acquired && !p.released
}

// resetParts clears acquisition state after an abort-all, so the next
// attempt starts clean.
func (g *crossReg) resetParts(rec *crossRec) {
	g.mu.Lock()
	for _, p := range rec.parts {
		p.epoch, p.slot, p.acquired, p.released, p.byRecovery = 0, -1, false, false, false
	}
	g.mu.Unlock()
}

// decide marks a fully-prepared write batch as committed — unless the
// failure detector has already claimed the record for abort (it found
// the batch undecided when it claimed), in which case the coordinator
// must not apply anything: the claim/decide order is what guarantees
// recovery and coordinator agree on commit-vs-abort. Deciding also
// re-validates that every part still holds its fence: a coordinator
// that stalled mid-acquire and whose undecided batch recovery aborted
// (fences released, recovery long unclaimed) would otherwise resume,
// acquire the remaining fences and commit a batch that is already
// part-released — a torn write.
func (g *crossReg) decide(rec *crossRec) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rec.recovering && !rec.decided {
		return false
	}
	for _, p := range rec.parts {
		if !p.acquired || p.released {
			return false
		}
	}
	rec.decided = true
	return true
}

// abandon hands the record to recovery (injected coordinator crash).
func (g *crossReg) abandon(rec *crossRec) {
	g.mu.Lock()
	rec.abandoned = true
	g.mu.Unlock()
}

// markReleased records that part p's fence was freed.
func (g *crossReg) markReleased(rec *crossRec, p *crossPart, byRecovery bool) {
	g.mu.Lock()
	p.released, p.byRecovery = true, byRecovery
	g.mu.Unlock()
}

// partReleased reports whether part p's fence has been freed.
func (g *crossReg) partReleased(rec *crossRec, p *crossPart) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return p.released
}

// partRolledForward reports whether part p's fence was freed by a
// recovery that rolled the decided batch forward — the only kind of
// release a committing coordinator may treat as already-applied. A
// release that is not a decided roll-forward (recovery aborted the
// batch while the coordinator was stalled) means nothing of this part
// was written and the whole batch must fail.
func (g *crossReg) partRolledForward(rec *crossRec, p *crossPart) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return p.released && p.byRecovery && rec.decided
}

// holdOf returns the (epoch, slot) part p acquired its fence under.
func (g *crossReg) holdOf(rec *crossRec, p *crossPart) (epoch uint64, slot int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return p.epoch, p.slot
}

// claim hands token's record to one recovering detector. rollForward is
// the decision frozen at claim time: a decided batch commits (recovery
// applies its writes), anything else aborts. Returns (nil, false, true)
// when another detector already owns the recovery and (nil, false,
// false) for tokens the registry has never seen.
func (g *crossReg) claim(token uint64) (rec *crossRec, rollForward, known bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.recs[token]
	if !ok {
		return nil, false, false
	}
	if r.recovering {
		return nil, false, true
	}
	r.recovering = true
	return r, r.decided, true
}

// unclaim releases a detector's claim (recovery complete or retrying
// next tick).
func (g *crossReg) unclaim(rec *crossRec) {
	g.mu.Lock()
	rec.recovering = false
	g.mu.Unlock()
}

// completeIfDone checks whether every acquired part of rec has been
// released; if so it removes abandoned records (their coordinator is
// gone) and reports whether this call is the first to observe
// completion — the once-per-batch accounting edge.
func (g *crossReg) completeIfDone(rec *crossRec) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range rec.parts {
		if p.acquired && !p.released {
			return false
		}
	}
	if rec.counted {
		return false
	}
	rec.counted = true
	if rec.abandoned {
		delete(g.recs, rec.token)
	}
	return true
}

// ---- per-shard failure detector + circuit breaker ----

// Circuit-breaker states. The breaker is driven by the detector's
// progress watchdog, not by response codes: a shard is sick when it has
// queued work but executes nothing across BreakerStallTicks consecutive
// detector ticks — a stalled worker pool or a wedged fence — and healthy
// again the moment an operation completes.
const (
	breakerClosed int32 = iota
	breakerOpen
)

// breakerRetryAfter returns how long a new admission should stay away,
// or 0 when the shard accepts work. Past the cooldown an open breaker
// admits probes (half-open); the detector closes it on progress or
// re-arms the cooldown if the stall persists.
func (ss *shardState) breakerRetryAfter(now time.Time) time.Duration {
	if ss.breakerState.Load() != breakerOpen {
		return 0
	}
	if d := time.Duration(ss.breakerUntil.Load() - now.UnixNano()); d > 0 {
		return d
	}
	return 0
}

// breakerName renders the breaker state for /statusz and /healthz.
func (ss *shardState) breakerName(now time.Time) string {
	if ss.breakerState.Load() != breakerOpen {
		return "closed"
	}
	if ss.breakerUntil.Load() > now.UnixNano() {
		return "open"
	}
	return "half-open"
}

// extendStall pushes the shard's injected-stall horizon (fault.ShardStall).
func (ss *shardState) extendStall(until time.Time) {
	n := until.UnixNano()
	for {
		cur := ss.stallUntil.Load()
		if n <= cur || ss.stallUntil.CompareAndSwap(cur, n) {
			return
		}
	}
}

// sleepInjectedStall parks the worker until the stall horizon passes.
func (ss *shardState) sleepInjectedStall() {
	until := ss.stallUntil.Load()
	if until == 0 {
		return
	}
	if rem := time.Until(time.Unix(0, until)); rem > 0 {
		time.Sleep(rem)
	}
}

// beatStale reports whether a fence heartbeat is older than the
// deadline. A zero or future beat (a fence wedged by something outside
// the protocol) is treated as stale — the continuity requirement in the
// detector (same token+epoch observed across the whole deadline) is
// what keeps short-lived holds safe from it.
func beatStale(beat uint64, now time.Time, deadline time.Duration) bool {
	n := now.UnixNano()
	if beat == 0 || beat > uint64(n) {
		return true
	}
	return time.Duration(uint64(n)-beat) >= deadline
}

// fenceSus is one suspicion cell of the detector: the (token, epoch)
// last observed on a fence word or slot, and since when.
type fenceSus struct {
	token, epoch uint64
	since        time.Time
}

// watch advances one suspicion cell against a freshly-observed hold and
// reports whether the hold is ripe for recovery: same (token, epoch)
// across the whole deadline and a stale heartbeat.
func (f *fenceSus) watch(token, epoch, beat uint64, now time.Time, deadline time.Duration) bool {
	if token == 0 {
		f.token, f.epoch = 0, 0
		return false
	}
	if token != f.token || epoch != f.epoch {
		f.token, f.epoch, f.since = token, epoch, now
		return false
	}
	if now.Sub(f.since) >= deadline && beatStale(beat, now, deadline) {
		f.token, f.epoch = 0, 0
		return true
	}
	return false
}

// detector is shard ss's failure detector: a scavenger goroutine that
// (a) recovers fences held past Options.FenceDeadline — the hold must be
// the same (token, epoch) across the whole deadline AND carry a stale
// heartbeat, so a busy protocol reacquiring the fence never trips it —
// and (b) trips the circuit breaker when the shard has queued work but
// made no progress for BreakerStallTicks consecutive ticks. Under keyed
// fences the scavenger iterates the fence table, one suspicion cell per
// slot, so each orphaned entry is recovered independently.
func (ss *shardState) detector() {
	defer ss.wg.Done()
	s := ss.srv
	deadline, cooldown := s.opts.FenceDeadline, s.opts.BreakerCooldown
	keyed := s.opts.FenceGranularity == FenceKey
	tick := time.NewTicker(s.opts.DetectInterval)
	defer tick.Stop()
	var sus fenceSus
	var slotSus [FenceSlots]fenceSus
	lastExecuted := ss.executed.Load()
	stallTicks := 0
	for {
		select {
		case <-ss.stop:
			return
		case <-tick.C:
		}
		now := time.Now()

		// Orphaned-fence scavenging: the whole-shard word always (it is
		// never set under keyed granularity, so the extra load is free),
		// plus the keyed fence table when configured.
		token := ss.sys.Load(ss.store.FenceWord())
		var epoch, beat uint64
		if token != 0 {
			epoch = ss.sys.Load(ss.store.FenceEpochWord())
			beat = ss.sys.Load(ss.store.FenceBeatWord())
		}
		if sus.watch(token, epoch, beat, now, deadline) {
			s.recoverOrphan(ss, token, epoch, -1)
		}
		if keyed && ss.sys.Load(ss.store.FenceOccWord()) != 0 {
			for i := 0; i < FenceSlots; i++ {
				tokenW, epochW, beatW := ss.store.FenceSlotWordsOf(i)
				tok := ss.sys.Load(tokenW)
				var ep, bt uint64
				if tok != 0 {
					ep = ss.sys.Load(epochW)
					bt = ss.sys.Load(beatW)
				}
				if slotSus[i].watch(tok, ep, bt, now, deadline) {
					s.recoverOrphan(ss, tok, ep, i)
				}
			}
		}

		// Progress watchdog → circuit breaker.
		executed := ss.executed.Load()
		progressed := executed != lastExecuted
		lastExecuted = executed
		if progressed || len(ss.queue) == 0 {
			stallTicks = 0
			if ss.breakerState.CompareAndSwap(breakerOpen, breakerClosed) {
				s.opts.Logf("serve: shard %d circuit breaker closed (progress resumed)", ss.idx)
			}
		} else if stallTicks++; stallTicks >= s.opts.BreakerStallTicks {
			ss.breakerUntil.Store(now.Add(cooldown).UnixNano())
			if ss.breakerState.CompareAndSwap(breakerClosed, breakerOpen) {
				s.breakerOpenTotal.Add(1)
				s.opts.Logf("serve: shard %d circuit breaker open (no progress for %d ticks, queue=%d)",
					ss.idx, stallTicks, len(ss.queue))
			}
		}
	}
}

// ctlRecover submits one recovery control step to shard target's
// priority lane on behalf of shard own's detector, waiting for the
// result but never past either shard's shutdown — a detector must not
// deadlock Close. A step that times out this way may still execute on a
// worker later; all its effects are epoch-guarded and it records its own
// completion inside the closure, so the detector simply retries on the
// next tick.
func (s *Server) ctlRecover(own, target *shardState, fn func(w *proteustm.Worker, slot int) response) bool {
	req := &request{ctl: fn, done: make(chan response, 1)}
	select {
	case target.prio <- req:
	case <-target.stop:
		return false
	case <-own.stop:
		return false
	}
	select {
	case <-req.done:
		return true
	case <-target.stop:
		return false
	case <-own.stop:
		return false
	}
}

// fenceRecoveryEta is the Retry-After hint handed to clients whose batch
// needs fence recovery: one detection deadline plus one detector tick.
func (s *Server) fenceRecoveryEta() time.Duration {
	if s.opts.FenceDeadline <= 0 {
		return time.Second
	}
	return s.opts.FenceDeadline + s.opts.DetectInterval
}

// recoverOrphan recovers the batch holding (token, epoch) on shard ss's
// fence — the whole-shard word when slot < 0, keyed table entry slot
// otherwise — past the deadline. A registered batch is recovered whole —
// decided writes roll forward (applied on the dead coordinator's
// behalf), everything else aborts — across all its shards, so one
// detector firing heals every participant. A token the registry has
// never seen (a fence wedged from outside the protocol) is simply
// released at its observed epoch.
func (s *Server) recoverOrphan(ss *shardState, token, epoch uint64, slot int) {
	rec, rollForward, known := s.reg.claim(token)
	if rec == nil {
		if known {
			return // another shard's detector owns this batch's recovery
		}
		// An unregistered token is a migration fence (split or merge): its
		// holder records no cross-shard batch. If a merge was live under
		// this token, delete its partial copy from the recipient FIRST —
		// releasing the donor's fence before the rollback would let a scan
		// double-count the copied duplicates. A rollback that cannot finish
		// leaves the fence held; this detector fires again next tick.
		if !s.rollbackMergeCopy(token) {
			return
		}
		released := false
		ok := s.ctlRecover(ss, ss, func(w *proteustm.Worker, _ int) response {
			w.Atomic(func(tx proteustm.Txn) {
				released = ss.store.FenceHeldAt(tx, slot, token, epoch) && ss.store.FenceReleaseAt(tx, slot, epoch)
			})
			return response{}
		})
		if ok && released {
			s.fenceRecovered.Add(1)
			s.fenceAborted.Add(1)
			s.opts.Logf("serve: shard %d fence recovery: released unregistered token %d (epoch %d)", ss.idx, token, epoch)
		}
		return
	}
	defer s.reg.unclaim(rec)
	for _, p := range rec.parts {
		recToken, recEpoch, recSlot, held := s.reg.acquireState(rec, p)
		if !held {
			continue
		}
		fleet := s.fleet()
		if p.shard >= len(fleet) {
			// The participant was merged away (its fence died with it);
			// mark it handled so the batch's recovery can complete.
			s.reg.markReleased(rec, p, true)
			continue
		}
		part, target := p, fleet[p.shard]
		s.ctlRecover(ss, target, func(w *proteustm.Worker, slot int) response {
			var did bool
			w.Atomic(func(tx proteustm.Txn) {
				did = false
				if !target.store.FenceHeldAt(tx, recSlot, recToken, recEpoch) {
					return
				}
				if rollForward {
					for _, i := range part.idx {
						target.store.Put(tx, slot, rec.keys[i], rec.vals[i])
					}
				}
				target.store.FenceReleaseAt(tx, recSlot, recEpoch)
				did = true
			})
			if did {
				s.reg.markReleased(rec, part, true)
			}
			return response{}
		})
	}
	if s.reg.completeIfDone(rec) {
		s.fenceRecovered.Add(1)
		action := "aborted"
		if rollForward {
			s.fenceRolledForward.Add(1)
			action = "rolled forward"
		} else {
			s.fenceAborted.Add(1)
		}
		s.opts.Logf("serve: shard %d fence recovery: %s batch token %d across %d shard(s)",
			ss.idx, action, token, len(rec.parts))
	}
}

// ---- /healthz ----

// ShardHealth is one shard's slice of the /healthz readiness document.
type ShardHealth struct {
	Index   int    `json:"index"`
	Breaker string `json:"breaker"`
	// FenceHeld reports a currently-held commit fence; FenceStale marks
	// one held past the detection deadline (recovery due or in flight).
	FenceHeld  bool `json:"fence_held"`
	FenceStale bool `json:"fence_stale,omitempty"`
}

// HealthStatus is the /healthz document: Healthy (HTTP 200) only when
// every shard's circuit breaker is closed and no fence has been held
// past its deadline — the readiness condition for putting the instance
// behind a load balancer.
type HealthStatus struct {
	Healthy bool          `json:"healthy"`
	Shards  []ShardHealth `json:"shards"`
}

// Health evaluates the readiness condition.
func (s *Server) Health() HealthStatus {
	now := time.Now()
	deadline := s.opts.FenceDeadline
	if deadline <= 0 {
		deadline = time.Second
	}
	keyed := s.opts.FenceGranularity == FenceKey
	h := HealthStatus{Healthy: true, Shards: make([]ShardHealth, len(s.fleet()))}
	for i, ss := range s.fleet() {
		sh := ShardHealth{Index: i, Breaker: ss.breakerName(now)}
		if sh.Breaker == "open" {
			h.Healthy = false
		}
		if ss.sys.Load(ss.store.FenceWord()) != 0 {
			sh.FenceHeld = true
			if beatStale(ss.sys.Load(ss.store.FenceBeatWord()), now, deadline) {
				sh.FenceStale = true
				h.Healthy = false
			}
		}
		if keyed && ss.sys.Load(ss.store.FenceOccWord()) != 0 {
			for slot := 0; slot < FenceSlots; slot++ {
				tokenW, _, beatW := ss.store.FenceSlotWordsOf(slot)
				if ss.sys.Load(tokenW) == 0 {
					continue
				}
				sh.FenceHeld = true
				if beatStale(ss.sys.Load(beatW), now, deadline) {
					sh.FenceStale = true
					h.Healthy = false
				}
			}
		}
		h.Shards[i] = sh
	}
	return h
}

// handleHealthz serves the readiness probe: 200 when healthy, 503 with
// the same document otherwise (distinct from /statusz, which always
// answers 200 — liveness and introspection belong there).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if !h.Healthy {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
