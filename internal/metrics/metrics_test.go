package metrics_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestMAPE(t *testing.T) {
	truth := []float64{100, 200, math.NaN(), 50}
	pred := []float64{110, 180, 5, math.NaN()}
	// |100-110|/100 = 0.1; |200-180|/200 = 0.1 → mean 0.1 (NaN pairs skipped)
	if got := metrics.MAPE(truth, pred); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %f, want 0.1", got)
	}
	if !math.IsNaN(metrics.MAPE(nil, nil)) {
		t.Error("empty MAPE should be NaN")
	}
}

func TestDFO(t *testing.T) {
	row := []float64{10, 5, 20, 8}
	// minimize: optimum 5 at index 1
	if got := metrics.DFO(row, 1, false); got != 0 {
		t.Errorf("DFO at optimum = %f", got)
	}
	if got := metrics.DFO(row, 0, false); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("DFO(10 vs 5) = %f, want 1.0", got)
	}
	// maximize: optimum 20 at index 2
	if got := metrics.OptimumIndex(row, true); got != 2 {
		t.Errorf("OptimumIndex max = %d, want 2", got)
	}
	if got := metrics.DFO(row, 3, true); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("DFO(8 vs 20) = %f, want 0.6", got)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p0 := metrics.Percentile(xs, 0)
		p50 := metrics.Percentile(xs, 50)
		p100 := metrics.Percentile(xs, 100)
		return p0 <= p50 && p50 <= p100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	cdf := metrics.CDF([]float64{3, 1, 2, math.NaN(), 2})
	if len(cdf) != 4 {
		t.Fatalf("CDF length %d, want 4 (NaN dropped)", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].P <= cdf[i-1].P {
			t.Errorf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Errorf("CDF must end at probability 1")
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := metrics.Mean(xs); got != 2.5 {
		t.Errorf("Mean = %f", got)
	}
	if got := metrics.Median(xs); got != 2.5 {
		t.Errorf("Median = %f", got)
	}
}
