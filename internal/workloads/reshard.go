package workloads

import (
	"fmt"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceReshard is the deterministic twin of proteusd's live
// split-and-migrate (internal/serve POST /admin/reshard): a
// range-partitioned store under skewed traffic that plans SplitHeaviest
// steps from per-shard routed-operation counters, migrates each moved
// span under the donor's fence, and flips an epoch-stamped placement —
// while clients keep routing through a deliberately stale placement
// replica that is only refreshed on a fixed cadence. Operations routed
// under the stale replica bounce off the donor's placement-epoch word
// and re-route against the live placement, pinning the
// stale-client-placement bugfix family as protocol algebra: every
// bounce is counted, every replica refresh that observes a new epoch is
// counted, and Verify sweeps every key onto the shard the final
// placement owns it on.
//
// Time is operation count, not wall clock: splits fire at fixed
// operation indices (every SplitEvery-th op, up to MaxShards), the
// replica refreshes at fixed indices (every RefreshEvery-th op), and
// fence heartbeats are stamped with operation numbers — so a fixed seed
// splits the same spans at the same operations every run, the property
// the byte-pinned service-reshard goldens lean on. The live daemon's
// reshard (wall-clock autosplit, HTTP admin surface, real goroutines)
// is exercised by the serve tests and the reshard e2e job.
type ServiceReshard struct {
	// Label overrides the workload name (default "service-reshard").
	Label string
	// Shards is the initial shard count (default 2).
	Shards int
	// MaxShards is the shard-count ceiling; each split grows the fleet
	// by one until it is reached (default 4).
	MaxShards int
	// KeyRange bounds the keys and is the range partitioner's universe
	// (default 1 << 14).
	KeyRange int
	// InitialSize pre-populates the stores (default KeyRange/2).
	InitialSize int
	// HotTenth is the per-mille probability that an operation draws its
	// key from the hot span [0, KeyRange/8) instead of uniformly, so
	// the low shard stays the heaviest and SplitHeaviest keeps cutting
	// it (default 600, i.e. 60%).
	HotTenth int
	// SplitEvery is the split cadence in operations: every
	// SplitEvery-th operation attempts one plan-and-migrate step
	// (default 1500).
	SplitEvery int
	// RefreshEvery is the client placement-replica refresh cadence in
	// operations: between a flip and the next refresh, single-key
	// operations route through the stale replica and must bounce
	// (default 64).
	RefreshEvery int
	// MigrateBatch is the fenced copy/delete batch width in keys
	// (default 64).
	MigrateBatch int
	// CrossEvery makes every CrossEvery-th operation a cross-shard
	// batch put, showing migration composes with the 2PC fences
	// (default 16).
	CrossEvery int
	// BatchKeys is the cross-shard batch width (default 4).
	BatchKeys int

	sets  []*RBSet // MaxShards stores, pre-built so splits alloc nothing
	words tm.Addr  // 4 per shard: fence token, fence epoch, heartbeat, placement epoch
	ops   atomic.Uint64

	// place is the authoritative epoch-stamped placement; replica is the
	// client-side copy, refreshed only every RefreshEvery ops — the
	// stale replica whose misroutes the bounce path must absorb.
	place   atomic.Pointer[reshardPlace]
	replica atomic.Pointer[reshardPlace]
	routed  []atomic.Uint64 // per-shard routed-op load signal

	splits       atomic.Uint64
	splitSkips   atomic.Uint64
	splitBlocked atomic.Uint64
	migrated     atomic.Uint64
	bounces      atomic.Uint64
	replans      atomic.Uint64
	batches      atomic.Uint64
	committed    atomic.Uint64
	blocked      atomic.Uint64
	fencedSkip   atomic.Uint64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, maxShards, keyRange, hotTenth  int
	splitEvery, refreshEvery, migrateBatch int
	crossEvery, batchKeys                  int
}

// reshardPlace is one epoch-stamped placement: what serve's
// shard.Epoched publishes, as a plain immutable value.
type reshardPlace struct {
	part  *shard.RangePartitioner
	epoch uint64
}

// Name implements Workload.
func (s *ServiceReshard) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-reshard"
}

func (s *ServiceReshard) params() (shards, maxShards, keyRange, initial, hotTenth, splitEvery, refreshEvery, migrateBatch, crossEvery, batchKeys int) {
	shards = s.Shards
	if shards <= 0 {
		shards = 2
	}
	maxShards = s.MaxShards
	if maxShards <= 0 {
		maxShards = 4
	}
	if maxShards < shards {
		maxShards = shards
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	hotTenth = s.HotTenth
	if hotTenth <= 0 {
		hotTenth = 600
	}
	splitEvery = s.SplitEvery
	if splitEvery <= 0 {
		splitEvery = 1500
	}
	refreshEvery = s.RefreshEvery
	if refreshEvery <= 0 {
		refreshEvery = 64
	}
	migrateBatch = s.MigrateBatch
	if migrateBatch <= 0 {
		migrateBatch = 64
	}
	crossEvery = s.CrossEvery
	if crossEvery <= 0 {
		crossEvery = 16
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	return
}

// Setup implements Workload.
func (s *ServiceReshard) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	s.shards, s.maxShards, s.keyRange, initial, s.hotTenth,
		s.splitEvery, s.refreshEvery, s.migrateBatch, s.crossEvery, s.batchKeys = s.params()
	s.sets = make([]*RBSet, s.maxShards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("reshard: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	words, err := h.Alloc(4 * s.maxShards)
	if err != nil {
		return fmt.Errorf("reshard: fence words: %w", err)
	}
	s.words = words
	p := &reshardPlace{part: shard.NewRange(s.shards, uint64(s.keyRange)), epoch: 0}
	s.place.Store(p)
	s.replica.Store(p)
	s.routed = make([]atomic.Uint64, s.maxShards)
	s.ops.Store(0)
	for _, c := range []*atomic.Uint64{&s.splits, &s.splitSkips, &s.splitBlocked, &s.migrated,
		&s.bounces, &s.replans, &s.batches, &s.committed, &s.blocked, &s.fencedSkip} {
		c.Store(0)
	}
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := p.part.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// Fence word addresses of shard i: token, fence epoch, heartbeat, and
// the placement-epoch word — the store-side witness a stale-routed
// operation bounces off (serve's heap word 7 analogue).
func (s *ServiceReshard) fence(i int) tm.Addr  { return s.words + tm.Addr(4*i) }
func (s *ServiceReshard) fepoch(i int) tm.Addr { return s.words + tm.Addr(4*i) + 1 }
func (s *ServiceReshard) beat(i int) tm.Addr   { return s.words + tm.Addr(4*i) + 2 }
func (s *ServiceReshard) placew(i int) tm.Addr { return s.words + tm.Addr(4*i) + 3 }

// key draws a key, hot-span-skewed so the low shard stays heaviest.
func (s *ServiceReshard) key(rng *Rand) uint64 {
	if rng.Intn(1000) < s.hotTenth {
		return uint64(rng.Intn(s.keyRange / 8))
	}
	return uint64(rng.Intn(s.keyRange))
}

// Op implements Workload: refresh the placement replica on its cadence,
// run one split step on its cadence, else a cross-shard batch or a
// single-key operation routed through the (possibly stale) replica.
func (s *ServiceReshard) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if n%uint64(s.refreshEvery) == 0 {
		live := s.place.Load()
		if rep := s.replica.Load(); rep.epoch != live.epoch {
			s.replica.Store(live)
			s.replans.Add(1)
		}
	}
	if n%uint64(s.splitEvery) == 0 {
		s.splitStep(r, self, n)
		return
	}
	if n%uint64(s.crossEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	s.singleKey(r, self, rng, n)
}

// singleKey routes one point operation through the client replica. If
// the executing shard's placement-epoch word has advanced past the
// replica's epoch the operation bounces — nothing applied — and retries
// against the authoritative placement, exactly the serve submitRouted
// loop.
func (s *ServiceReshard) singleKey(r Runner, self int, rng *Rand, n uint64) {
	k := s.key(rng)
	mix := serviceMixes["mixed"]
	p := rng.Float64()
	plan := s.replica.Load()
	for {
		o := plan.part.Owner(k)
		set, fence, placew := s.sets[o], s.fence(o), s.placew(o)
		var fenced, moved bool
		r.Atomic(self, func(tx tm.Txn) {
			fenced, moved = false, false
			if tx.Load(placew) > plan.epoch {
				moved = true
				return
			}
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			switch {
			case p < mix.Get:
				set.Get(tx, k)
			case p < mix.Get+mix.Put:
				set.Insert(tx, self, k, n)
			case p < mix.Get+mix.Put+mix.Del:
				set.Delete(tx, self, k)
			default:
				if v, ok := set.Get(tx, k); ok {
					set.Insert(tx, self, k, v+1)
				}
			}
		})
		if moved {
			// Stale route: the shard has shed a span since the replica
			// was built. Re-route against the live placement.
			s.bounces.Add(1)
			plan = s.place.Load()
			continue
		}
		if fenced {
			s.fencedSkip.Add(1)
		} else {
			s.routed[o].Add(1)
		}
		return
	}
}

// crossBatch runs one cross-shard batch put against the authoritative
// placement: ordered fenced acquire, apply per participant, release —
// the chaos workload's protocol without its fault schedule.
func (s *ServiceReshard) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	live := s.place.Load()
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = s.key(rng)
	}
	parts := live.part.Participants(keys)
	token := n // unique and nonzero
	epochs := make(map[int]uint64, len(parts))
	acquired := 0
	for _, p := range parts {
		fw, ew, bw := s.fence(p), s.fepoch(p), s.beat(p)
		var got bool
		var e uint64
		r.Atomic(self, func(tx tm.Txn) {
			got = false
			if tx.Load(fw) != 0 {
				return
			}
			e = tx.Load(ew) + 1
			tx.Store(fw, token)
			tx.Store(ew, e)
			tx.Store(bw, n)
			got = true
		})
		if !got {
			break
		}
		epochs[p] = e
		acquired++
	}
	if acquired < len(parts) {
		for _, p := range parts[:acquired] {
			s.release(r, self, p, token, epochs[p])
		}
		s.blocked.Add(1)
		return
	}
	s.batches.Add(1)
	for _, p := range parts {
		set, fw, ew := s.sets[p], s.fence(p), s.fepoch(p)
		e := epochs[p]
		r.Atomic(self, func(tx tm.Txn) {
			if tx.Load(fw) != token || tx.Load(ew) != e {
				return
			}
			for _, k := range keys {
				if live.part.Owner(k) == p {
					set.Insert(tx, self, k, n)
				}
			}
			tx.Store(fw, 0)
		})
		s.routed[p].Add(1)
	}
	s.committed.Add(1)
}

// release frees shard p's fence iff still held by (token, epoch).
func (s *ServiceReshard) release(r Runner, self int, p int, token, epoch uint64) {
	fw, ew := s.fence(p), s.fepoch(p)
	r.Atomic(self, func(tx tm.Txn) {
		if tx.Load(fw) == token && tx.Load(ew) == epoch {
			tx.Store(fw, 0)
		}
	})
}

// splitStep is one live reshard: plan SplitHeaviest from the routed-op
// load signal, fence the donor, copy the moved span in batches, install
// the grown placement, bump the donor's placement-epoch word, delete
// the moved keys, release. A no-op plan (ok=false) is counted and
// skipped, never installed — the SplitHeaviest-caller contract.
func (s *ServiceReshard) splitStep(r Runner, self int, n uint64) {
	live := s.place.Load()
	if live.part.Shards() >= s.maxShards {
		s.splitSkips.Add(1)
		return
	}
	load := make([]uint64, live.part.Shards())
	for i := range load {
		load[i] = s.routed[i].Load()
	}
	plan, ok := live.part.PlanSplitHeaviest(load)
	if !ok {
		s.splitSkips.Add(1)
		return
	}
	donor, recip := plan.Donor, plan.NewShard
	token := n
	fw, ew, bw := s.fence(donor), s.fepoch(donor), s.beat(donor)
	var got bool
	r.Atomic(self, func(tx tm.Txn) {
		got = false
		if tx.Load(fw) != 0 {
			return
		}
		tx.Store(fw, token)
		tx.Store(ew, tx.Load(ew)+1)
		tx.Store(bw, n)
		got = true
	})
	if !got {
		s.splitBlocked.Add(1)
		return
	}

	// Copy the moved span donor -> recipient in fenced batches; the
	// fence keeps writers off the donor so no copied key can go stale
	// between batch boundaries.
	src, dst := s.sets[donor], s.sets[recip]
	var moved uint64
	cursor, done := plan.MovedLo, false
	for !done {
		var batch int
		r.Atomic(self, func(tx tm.Txn) {
			ks := make([]uint64, 0, s.migrateBatch)
			vs := make([]uint64, 0, s.migrateBatch)
			src.AscendRange(tx, cursor, plan.MovedHi, func(k, v uint64) bool {
				ks = append(ks, k)
				vs = append(vs, v)
				return len(ks) < s.migrateBatch
			})
			for i, k := range ks {
				dst.Insert(tx, self, k, vs[i])
			}
			tx.Store(bw, n)
			if len(ks) < s.migrateBatch || ks[len(ks)-1] == plan.MovedHi {
				done = true
			} else {
				cursor = ks[len(ks)-1] + 1
			}
			batch = len(ks)
		})
		moved += uint64(batch)
	}

	// Flip: publish the grown placement, then raise the donor's
	// placement-epoch word so stale-routed operations bounce, then
	// retire the moved keys from the donor.
	newEpoch := live.epoch + 1
	s.place.Store(&reshardPlace{part: plan.Grown, epoch: newEpoch})
	r.Atomic(self, func(tx tm.Txn) {
		tx.Store(s.placew(donor), newEpoch)
		tx.Store(bw, n)
	})
	cursor, done = plan.MovedLo, false
	for !done {
		r.Atomic(self, func(tx tm.Txn) {
			ks := make([]uint64, 0, s.migrateBatch)
			src.AscendRange(tx, cursor, plan.MovedHi, func(k, _ uint64) bool {
				ks = append(ks, k)
				return len(ks) < s.migrateBatch
			})
			for _, k := range ks {
				src.Delete(tx, self, k)
			}
			tx.Store(bw, n)
			if len(ks) < s.migrateBatch {
				done = true
			} else {
				cursor = ks[len(ks)-1] + 1
			}
		})
	}
	r.Atomic(self, func(tx tm.Txn) {
		if tx.Load(fw) == token {
			tx.Store(fw, 0)
		}
	})
	s.splits.Add(1)
	s.migrated.Add(moved)
}

// Metrics implements Metered.
func (s *ServiceReshard) Metrics() map[string]uint64 {
	return map[string]uint64{
		"splits_installed": s.splits.Load(),
		"splits_skipped":   s.splitSkips.Load(),
		"splits_blocked":   s.splitBlocked.Load(),
		"keys_migrated":    s.migrated.Load(),
		"placement_epoch":  s.place.Load().epoch,
		"moved_bounces":    s.bounces.Load(),
		"replica_replans":  s.replans.Load(),
		"cross_batches":    s.batches.Load(),
		"cross_committed":  s.committed.Load(),
		"batch_blocked":    s.blocked.Load(),
		"fenced_skips":     s.fencedSkip.Load(),
	}
}

// Verify implements Verifier: every fence free, every key on the shard
// the final placement owns it on, spare stores empty. The replica's
// catch-up (replica_replans) is pinned by the scenario goldens.
func (s *ServiceReshard) Verify(h *tm.Heap) error {
	live := s.place.Load()
	seq := NewBareRunner(seqAlg(), h, 1)
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if v := tx.Load(s.fence(i)); v != 0 {
				err = fmt.Errorf("reshard: shard %d fence left held by %d", i, v)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if i >= live.part.Shards() {
					err = fmt.Errorf("reshard: key %d on spare shard %d (fleet is %d wide)", k, i, live.part.Shards())
					return false
				}
				if o := live.part.Owner(k); o != i {
					err = fmt.Errorf("reshard: key %d found on shard %d but owned by %d at epoch %d", k, i, o, live.epoch)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
