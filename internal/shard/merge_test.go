package shard

import "testing"

// TestPlanMergeColdestInvertsSplit pins the round trip the serve layer
// performs: a PlanSplitHeaviest followed by a PlanMergeColdest of the
// now-cold new shard restores the original boundary table exactly.
func TestPlanMergeColdestInvertsSplit(t *testing.T) {
	p := NewRange(4, 1<<20)
	split, ok := p.PlanSplitHeaviest([]uint64{1, 2, 3, 900})
	if !ok {
		t.Fatal("split plan failed")
	}
	// After the flash crowd passes the new top shard is the coldest.
	merge, ok := split.Grown.PlanMergeColdest([]uint64{5, 5, 5, 5, 0})
	if !ok {
		t.Fatal("merge plan failed on cold top shard")
	}
	if merge.Donor != 4 || merge.Recipient != split.Donor {
		t.Fatalf("merge donor/recipient = %d/%d, want 4/%d", merge.Donor, merge.Recipient, split.Donor)
	}
	if merge.MovedLo != split.MovedLo || merge.MovedHi != split.MovedHi {
		t.Fatalf("merge moved [%d,%d], want the split's [%d,%d]",
			merge.MovedLo, merge.MovedHi, split.MovedLo, split.MovedHi)
	}
	ms, mo := merge.Merged.Spans()
	ps, po := p.Spans()
	if len(ms) != len(ps) {
		t.Fatalf("merged span count %d, want original %d", len(ms), len(ps))
	}
	for i := range ms {
		if ms[i] != ps[i] || mo[i] != po[i] {
			t.Fatalf("span %d: merged (%d,%d) vs original (%d,%d)", i, ms[i], mo[i], ps[i], po[i])
		}
	}
}

// TestPlanMergeColdestMovedSpan pins ownership across the flip: every
// key in [MovedLo, MovedHi] moves from Donor to Recipient, and keys
// outside the span keep their owner.
func TestPlanMergeColdestMovedSpan(t *testing.T) {
	p := NewRange(3, 3<<16)
	plan, ok := p.PlanMergeColdest(nil) // all-idle fleet: donor is coldest by tie
	if !ok {
		t.Fatal("merge plan failed on idle fleet")
	}
	if plan.Donor != 2 {
		t.Fatalf("donor = %d, want top shard 2", plan.Donor)
	}
	if plan.MovedHi < plan.MovedLo {
		t.Fatalf("inverted moved span [%d, %d]", plan.MovedLo, plan.MovedHi)
	}
	for _, k := range []uint64{plan.MovedLo, plan.MovedHi, plan.MovedLo + (plan.MovedHi-plan.MovedLo)/2} {
		if o := p.Owner(k); o != plan.Donor {
			t.Fatalf("key %d owned by %d pre-merge, want donor %d", k, o, plan.Donor)
		}
		if o := plan.Merged.Owner(k); o != plan.Recipient {
			t.Fatalf("key %d owned by %d post-merge, want recipient %d", k, o, plan.Recipient)
		}
	}
	if plan.MovedLo > 0 {
		k := plan.MovedLo - 1
		if plan.Merged.Owner(k) != p.Owner(k) {
			t.Fatalf("key %d below moved span changed owner", k)
		}
	}
	if plan.Merged.Shards() != p.Shards()-1 {
		t.Fatalf("merged shards = %d, want %d", plan.Merged.Shards(), p.Shards()-1)
	}
}

// TestPlanMergeColdestNoOp pins the explicit no-op contract, mirroring
// the split side: single shard, a donor that is not the coldest, and
// span layouts the split evolution never produces all report ok=false.
func TestPlanMergeColdestNoOp(t *testing.T) {
	if _, ok := NewRange(1, 1<<10).PlanMergeColdest(nil); ok {
		t.Fatal("single-shard partitioner produced a merge plan")
	}
	p := NewRange(2, 1<<20)
	// Shard 0 strictly colder than the top shard: donor is not coldest.
	if _, ok := p.PlanMergeColdest([]uint64{0, 5}); ok {
		t.Fatal("hot top shard produced a merge plan")
	}
	// Load entries beyond len(load) read as zero: a short vector giving
	// shard 0 load leaves the top shard coldest.
	if plan, ok := p.PlanMergeColdest([]uint64{7}); !ok || plan.Donor != 1 {
		t.Fatalf("short load vector: plan %+v ok=%v, want donor 1", plan, ok)
	}
	// Ties resolve in the donor's favour: an evenly-loaded fleet shrinks.
	if _, ok := p.PlanMergeColdest([]uint64{5, 5}); !ok {
		t.Fatal("tied load refused to merge")
	}
	// Donor owning two spans is rejected defensively.
	twoSpans, err := NewRangeFromSpans([]uint64{0, 10, 20}, []int{1, 0, 1}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := twoSpans.PlanMergeColdest(nil); ok {
		t.Fatal("multi-span donor produced a merge plan")
	}
	// Donor owning the first span has no left-adjacent recipient.
	firstSpan, err := NewRangeFromSpans([]uint64{0, 10}, []int{1, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := firstSpan.PlanMergeColdest(nil); ok {
		t.Fatal("first-span donor produced a merge plan")
	}
}

// TestShrinkInvertsGrow pins Shrink as Grow's inverse on the even
// pre-split, and its totality on the single-shard floor.
func TestShrinkInvertsGrow(t *testing.T) {
	p := NewRange(3, 3<<20)
	back := p.Grow().Shrink()
	bs, bo := back.Spans()
	ps, po := p.Spans()
	if len(bs) != len(ps) {
		t.Fatalf("span count %d after Grow+Shrink, want %d", len(bs), len(ps))
	}
	for i := range bs {
		if bs[i] != ps[i] || bo[i] != po[i] {
			t.Fatalf("span %d: (%d,%d) after round trip, want (%d,%d)", i, bs[i], bo[i], ps[i], po[i])
		}
	}
	single := NewRange(1, 1<<10)
	if single.Shrink() != single {
		t.Fatal("single-shard Shrink did not return the receiver")
	}
}

// TestRingOwnersInRangeEnumCapBoundary pins the exact interval width at
// which OwnersInRange on a hash ring stops enumerating and falls back to
// the conservative all-shards answer: hi-lo == RangeEnumCap-1 (an
// interval of exactly RangeEnumCap keys) still enumerates, hi-lo ==
// RangeEnumCap does not. The ring is built wider than the enumeration
// cap so the two regimes produce observably different owner sets.
func TestRingOwnersInRangeEnumCapBoundary(t *testing.T) {
	const n = RangeEnumCap * 2
	r := New(n)
	exact := r.OwnersInRange(0, RangeEnumCap-1)
	if len(exact) >= n {
		t.Fatalf("enumerated owner set has %d shards — the per-key walk cannot see more than %d keys", len(exact), RangeEnumCap)
	}
	// The enumerated set must be exact: it contains every key's owner.
	seen := make([]bool, n)
	for _, s := range exact {
		seen[s] = true
	}
	for k := uint64(0); k < RangeEnumCap; k += 997 {
		if o := r.Owner(k); !seen[o] {
			t.Fatalf("key %d's owner %d missing from enumerated set", k, o)
		}
	}
	conservative := r.OwnersInRange(0, RangeEnumCap)
	if len(conservative) != n {
		t.Fatalf("one key past the cap returned %d owners, want the all-shards fallback (%d)", len(conservative), n)
	}
	for s, o := range conservative {
		if o != s {
			t.Fatalf("fallback set not [0, n): index %d holds %d", s, o)
		}
	}
}
