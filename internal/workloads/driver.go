package workloads

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tm"
)

// Driver runs a workload on a Runner with a fixed pool of worker
// goroutines, measuring committed operations over time. The number of
// *active* workers is governed by the Runner itself (PolyTM's thread gate);
// the driver always spawns MaxThreads goroutines, mirroring the paper's
// setup where the application owns its threads and PolyTM parks them.
type Driver struct {
	// Workload is the application under test.
	Workload Workload
	// Runner executes the atomic blocks.
	Runner Runner
	// MaxThreads is the number of worker goroutines.
	MaxThreads int
	// Seed derives each worker's RNG.
	Seed uint64

	ops     []paddedCounter
	stop    atomic.Bool
	wg      sync.WaitGroup
	started bool
}

type paddedCounter struct {
	n uint64
	_ [7]uint64
}

// Start launches the worker goroutines. The workload must already be set
// up.
func (d *Driver) Start() error {
	if d.started {
		return fmt.Errorf("driver: already started")
	}
	if d.MaxThreads <= 0 {
		return fmt.Errorf("driver: MaxThreads must be positive")
	}
	d.ops = make([]paddedCounter, d.MaxThreads)
	d.stop.Store(false)
	d.started = true
	for w := 0; w < d.MaxThreads; w++ {
		d.wg.Add(1)
		go func(id int) {
			defer d.wg.Done()
			rng := NewRand(d.Seed + uint64(id)*0x9E3779B97F4A7C15 + 1)
			for !d.stop.Load() {
				d.Workload.Op(d.Runner, id, rng)
				atomic.AddUint64(&d.ops[id].n, 1)
			}
		}(w)
	}
	return nil
}

// Stop terminates the workers and waits for them.
func (d *Driver) Stop() {
	if !d.started {
		return
	}
	d.stop.Store(true)
	d.wg.Wait()
	d.started = false
}

// Ops returns the total committed operations so far.
func (d *Driver) Ops() uint64 {
	var total uint64
	for i := range d.ops {
		total += atomic.LoadUint64(&d.ops[i].n)
	}
	return total
}

// MeasureThroughput runs the workload for the given duration and returns
// operations per second. The driver must have been started.
func (d *Driver) MeasureThroughput(dur time.Duration) float64 {
	before := d.Ops()
	start := time.Now()
	time.Sleep(dur)
	elapsed := time.Since(start)
	after := d.Ops()
	return float64(after-before) / elapsed.Seconds()
}

// SerialDriver executes a workload one operation at a time, round-robin
// over the active worker slots, with one deterministic RNG stream per slot
// (the same streams Driver's goroutines would use). Because operations
// never overlap, a fixed seed yields an identical operation sequence —
// and identical commit/abort counts — on every run, which is what the
// deterministic scenario harness builds on. Wall-clock throughput under a
// SerialDriver is meaningless; pair it with a virtual clock (one fixed
// cost per transaction attempt) or use Driver for timed measurements.
type SerialDriver struct {
	workload Workload
	runner   Runner
	rngs     []*Rand
	slots    int
	next     int
	ops      uint64
}

// NewSerialDriver builds a serial driver with maxSlots per-slot RNG
// streams, initially using all of them.
func NewSerialDriver(w Workload, r Runner, maxSlots int, seed uint64) *SerialDriver {
	if maxSlots <= 0 {
		maxSlots = 1
	}
	rngs := make([]*Rand, maxSlots)
	for i := range rngs {
		rngs[i] = NewRand(seed + uint64(i)*0x9E3779B97F4A7C15 + 1)
	}
	return &SerialDriver{workload: w, runner: r, rngs: rngs, slots: maxSlots}
}

// SetSlots restricts round-robin execution to the first n worker slots —
// the serial analogue of PolyTM's thread gate after a reconfiguration to n
// threads. Each slot keeps its RNG stream across SetSlots calls.
func (d *SerialDriver) SetSlots(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(d.rngs) {
		n = len(d.rngs)
	}
	d.slots = n
	if d.next >= n {
		d.next = 0
	}
}

// Step executes one operation on the next slot in round-robin order.
func (d *SerialDriver) Step() {
	slot := d.next
	d.next = (d.next + 1) % d.slots
	d.workload.Op(d.runner, slot, d.rngs[slot])
	d.ops++
}

// Run executes n operations.
func (d *SerialDriver) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		d.Step()
	}
}

// Ops returns the total operations executed so far.
func (d *SerialDriver) Ops() uint64 { return d.ops }

// RunFixed sets up the workload on h, runs it on runner for dur with
// maxThreads workers, and returns throughput (ops/sec). Convenience for
// experiments that measure one (workload, configuration) point.
func RunFixed(w Workload, runner Runner, h *tm.Heap, maxThreads int, dur time.Duration, seed uint64) (float64, error) {
	rng := NewRand(seed)
	if err := w.Setup(h, rng); err != nil {
		return 0, err
	}
	d := &Driver{Workload: w, Runner: runner, MaxThreads: maxThreads, Seed: seed}
	if err := d.Start(); err != nil {
		return 0, err
	}
	// Brief warm-up before the measurement window.
	time.Sleep(dur / 5)
	x := d.MeasureThroughput(dur)
	d.Stop()
	return x, nil
}
