// Datastructures: the best TM configuration flips with the operation mix —
// the motivation behind ProteusTM (Fig. 1 of the paper) — demonstrated as
// a thin invocation of the scenario registry: the same `rbtree` scenario
// runs under two contrasting parameterizations × four fixed
// configurations, in timed mode so the ranking reflects real parallelism.
//
// The equivalent CLI runs are:
//
//	proteusbench run --scenario rbtree --param update=0.02,keyrange=4096 \
//	    --config NOrec:1t,NOrec:8t,Tiny:8t,"HTM:8t GiveUp-8" --duration 400ms
//	proteusbench run --scenario rbtree --param update=0.6,keyrange=64 ...
//
//	go run ./examples/datastructures
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/scenario"
)

func main() {
	configs, err := config.ParseList(`NOrec:1t,NOrec:8t,Tiny:8t,HTM:8t GiveUp-8`)
	if err != nil {
		log.Fatal(err)
	}
	mixes := []struct {
		name   string
		params scenario.Values
	}{
		{"read-dominated, wide key range", scenario.Values{"update": "0.02", "keyrange": "4096"}},
		{"update-heavy, narrow key range", scenario.Values{"update": "0.6", "keyrange": "64"}},
	}
	for _, mix := range mixes {
		fmt.Printf("\n%s (rbtree, %s):\n", mix.name, mix.params)
		results, err := scenario.Run(scenario.RunSpec{
			Scenario:   "rbtree",
			Params:     mix.params,
			Seed:       3,
			Configs:    configs,
			MaxThreads: 8,
			HeapWords:  1 << 20,
			Duration:   400 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("  %-18s %12.0f ops/s   abort-rate %.3f\n", r.Config, r.Throughput, r.AbortRate)
		}
	}
	fmt.Println("\nNote how the ranking flips between the two mixes.")
}
