package scenario

import "repro/internal/workloads"

// STMBench7 family (internal/workloads/stmbench7.go): the OO7-derived
// object graph with the most heterogeneous transaction mix in the suite.

var (
	sb7Fanout  = Param{Name: "fanout", Desc: "assembly-tree fan-out", Kind: Int, Default: "3"}
	sb7Depth   = Param{Name: "depth", Desc: "assembly-tree depth", Kind: Int, Default: "5"}
	sb7Comp    = Param{Name: "comp", Desc: "composite parts per base assembly", Kind: Int, Default: "4"}
	sb7Chain   = Param{Name: "chain", Desc: "atomic parts per composite chain", Kind: Int, Default: "16"}
	sb7ReadDom = Param{Name: "readdominated", Desc: "use the 90%-read operation mix", Kind: Bool, Default: "false"}
)

func init() {
	Register(Scenario{
		Name:        "stmbench7",
		Family:      "stmbench7",
		Description: "OO7-style object graph: traversals, updates, structure changes",
		Params:      []Param{sb7Fanout, sb7Depth, sb7Comp, sb7Chain, sb7ReadDom},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.STMBench7{
				Fanout:        v.Int(sb7Fanout),
				Depth:         v.Int(sb7Depth),
				CompPerBase:   v.Int(sb7Comp),
				AtomicChain:   v.Int(sb7Chain),
				ReadDominated: v.Bool(sb7ReadDom),
			}, nil
		},
	})
}
