// Autotuning: ProteusTM adapting to a workload change at run time.
//
// A key-value set workload starts read-dominated and scalable, then turns
// into a write-heavy contended workload. With auto-tuning enabled, the
// adapter thread explores a few configurations (Bayesian optimization over
// the CF predictor), installs the best one, detects the workload change via
// CUSUM, and re-optimizes — all behind the unchanged atomic-block API.
//
//	go run ./examples/autotuning
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	proteustm "repro"
)

const (
	workers = 8
	buckets = 1 << 10
)

func main() {
	sys, err := proteustm.Open(
		proteustm.WithWorkers(workers),
		proteustm.WithHeapWords(1<<20),
		proteustm.WithAutoTuning(),
		proteustm.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A chained hash set in transactional memory.
	table := sys.MustAlloc(buckets)
	var writeHeavy atomic.Bool
	var stop atomic.Bool
	var ops atomic.Uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wk, err := sys.Worker(w)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(wk *proteustm.Worker, seed uint64) {
			defer wg.Done()
			rng := seed
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				slot := proteustm.Addr(rng % buckets)
				writeCut := uint64(1 << 62) // ~25% writes
				if writeHeavy.Load() {
					slot = proteustm.Addr(rng % 32) // hot spot
					writeCut = 1 << 63              // ~50% writes… on 32 words
				}
				if rng < writeCut {
					wk.Atomic(func(tx proteustm.Txn) {
						tx.Store(table+slot, tx.Load(table+slot)+1)
					})
				} else {
					wk.Atomic(func(tx proteustm.Txn) {
						_ = tx.Load(table + slot)
						_ = tx.Load(table + proteustm.Addr((uint64(slot)+7)%buckets))
					})
				}
				ops.Add(1)
			}
		}(wk, uint64(w+1))
	}

	report := func(tag string, dur time.Duration) {
		before := ops.Load()
		time.Sleep(dur)
		rate := float64(ops.Load()-before) / dur.Seconds()
		fmt.Printf("%-22s config=%-20s throughput=%.0f ops/s\n",
			tag, sys.CurrentConfig().String(), rate)
	}

	fmt.Println("phase 1: scalable read-mostly workload")
	for i := 0; i < 4; i++ {
		report("phase 1", 700*time.Millisecond)
	}

	fmt.Println("phase 2: contended write-heavy workload (hot spot)")
	writeHeavy.Store(true)
	for i := 0; i < 6; i++ {
		report("phase 2", 700*time.Millisecond)
	}

	stop.Store(false) // keep the compiler honest about usage ordering
	stop.Store(true)
	// Unpark any workers a low-thread configuration left waiting.
	cfg := sys.CurrentConfig()
	cfg.Threads = workers
	if err := sys.SetConfig(cfg); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	s := sys.Stats()
	fmt.Printf("done: %d commits, %d aborts, final config %s\n",
		s.Commits, s.Aborts, sys.CurrentConfig().String())
}
