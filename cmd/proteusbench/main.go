// Command proteusbench regenerates the tables and figures of the ProteusTM
// paper's evaluation section (§6).
//
// Usage:
//
//	proteusbench -experiment all            # everything, paper scale
//	proteusbench -experiment fig4 -quick    # one experiment, reduced scale
//
// Experiments: fig1, table4, table5, fig4, fig5, fig6, fig7, fig8 (includes
// Table 6), fig9, all. Trace-driven experiments (fig1, fig4–fig7) replay the
// analytic performance model; table4/table5/fig8/fig9 run the real runtime
// on this machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run: fig1|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|all")
	quick := flag.Bool("quick", false, "reduced scale for a fast run")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	if err := run(*exp, scale); err != nil {
		fmt.Fprintln(os.Stderr, "proteusbench:", err)
		os.Exit(1)
	}
}

func run(name string, scale experiments.Scale) error {
	w := os.Stdout
	runners := map[string]func() error{
		"fig1": func() error {
			experiments.Fig1(scale).Print(w)
			return nil
		},
		"table4": func() error {
			r, err := experiments.Table4(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"table5": func() error {
			r, err := experiments.Table5(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"fig4": func() error {
			r, err := experiments.Fig4(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"fig5": func() error {
			r, err := experiments.Fig5(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"fig6": func() error {
			r, err := experiments.Fig6(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"fig7": func() error {
			r, err := experiments.Fig7(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"fig8": func() error {
			r, err := experiments.Fig8(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
		"fig9": func() error {
			r, err := experiments.Fig9(scale)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		},
	}
	if name == "all" {
		for _, key := range []string{"fig1", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
			if err := runners[key](); err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
		}
		return nil
	}
	fn, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return fn()
}
