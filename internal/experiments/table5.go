package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/polytm"
	"repro/internal/workloads"
)

// Table5Result reproduces Table 5: the latency of a full reconfiguration
// (TM algorithm switch, which quiesces all threads and also changes the
// parallelism degree) under live load, for a long-transaction workload
// (TPC-C) and a short-transaction one (Memcached), across thread counts.
type Table5Result struct {
	Threads []int
	// LatencyMicros[workload][thread] is the mean switch latency in µs.
	Workloads     []string
	LatencyMicros [][]float64
}

// Table5 measures reconfiguration latency on this machine.
func Table5(scale Scale) (Table5Result, error) {
	threads := []int{1, 2, 4, 8}
	switches := 40
	if scale == Quick {
		switches = 12
	}
	res := Table5Result{Threads: threads}

	apps := []workloads.Workload{
		&workloads.TPCC{Warehouses: 2, Districts: 8, Customers: 128, Items: 1 << 12},
		&workloads.Memcached{Buckets: 1 << 12, KeyRange: 1 << 14},
	}
	for _, app := range apps {
		res.Workloads = append(res.Workloads, app.Name())
		var row []float64
		for _, t := range threads {
			lat, err := measureSwitchLatency(cloneWorkload(app), t, switches)
			if err != nil {
				return res, fmt.Errorf("table5 %s/%dt: %w", app.Name(), t, err)
			}
			row = append(row, lat)
		}
		res.LatencyMicros = append(res.LatencyMicros, row)
	}
	return res, nil
}

// measureSwitchLatency runs the workload at the given thread count and
// times Reconfigure calls that flip the TM algorithm back and forth.
func measureSwitchLatency(wl workloads.Workload, threads, switches int) (float64, error) {
	cfgA := config.Config{Alg: config.TL2, Threads: threads, Budget: 5}
	cfgB := config.Config{Alg: config.NOrec, Threads: threads, Budget: 5}
	pool := polytm.New(1<<21, threads, cfgA)
	if err := wl.Setup(pool.Heap(), workloads.NewRand(11)); err != nil {
		return 0, err
	}
	d := &workloads.Driver{Workload: wl, Runner: pool, MaxThreads: threads, Seed: 12}
	if err := d.Start(); err != nil {
		return 0, err
	}
	defer d.Stop()
	time.Sleep(30 * time.Millisecond) // warm up

	var total time.Duration
	for i := 0; i < switches; i++ {
		next := cfgB
		if i%2 == 1 {
			next = cfgA
		}
		start := time.Now()
		if err := pool.Reconfigure(next); err != nil {
			return 0, err
		}
		total += time.Since(start)
		time.Sleep(5 * time.Millisecond) // let transactions flow between switches
	}
	return float64(total.Microseconds()) / float64(switches), nil
}

// Print renders the table.
func (r Table5Result) Print(w io.Writer) {
	header(w, "Table 5: reconfiguration latency (µs), TM switch + thread quiesce under load")
	fmt.Fprintf(w, "%-24s", "benchmark")
	for _, t := range r.Threads {
		fmt.Fprintf(w, "%10d", t)
	}
	fmt.Fprintln(w)
	for wi, name := range r.Workloads {
		fmt.Fprintf(w, "%-24s", name)
		for ti := range r.Threads {
			fmt.Fprintf(w, "%10.0f", r.LatencyMicros[wi][ti])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nShape check: latency grows with thread count; long transactions (TPC-C)")
	fmt.Fprintln(w, "cost more than short ones (Memcached).")
}
