package shard

import "testing"

// FuzzShardRouting fuzzes the consistent-hash router over (key, shard
// count) pairs, asserting the three routing invariants the serve layer
// depends on:
//
//  1. stable ownership — the owner is a valid shard index and two
//     independently built rings agree on it;
//  2. full coverage of the ring — every shard owns at least one vnode
//     interval, so no shard is unreachable;
//  3. no remapping for unchanged N — rebuilding the ring for the same
//     shard count never moves a key (ownership is a pure function).
func FuzzShardRouting(f *testing.F) {
	f.Add(uint64(0), uint8(1))
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(12345), uint8(4))
	f.Add(uint64(1)<<63, uint8(16))
	f.Add(^uint64(0), uint8(255))
	f.Fuzz(func(t *testing.T, key uint64, rawN uint8) {
		n := int(rawN%16) + 1
		r1, r2 := New(n), New(n)
		o := r1.Owner(key)
		if o < 0 || o >= n {
			t.Fatalf("Owner(%d) with %d shards = %d, out of range", key, n, o)
		}
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("rebuilt ring remapped key %d: %d -> %d (n=%d unchanged)", key, o, o2, n)
		}
		// Full coverage: walk the vnode table and require every shard to
		// appear; a missing shard would be unroutable for every key.
		seen := make([]bool, n)
		for _, p := range r1.points {
			if p.shard < 0 || p.shard >= n {
				t.Fatalf("vnode owned by invalid shard %d (n=%d)", p.shard, n)
			}
			seen[p.shard] = true
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("shard %d of %d has no vnode on the ring", s, n)
			}
		}
		// The derived-key probe: the key's successor relationship must be
		// internally consistent with the point table.
		if len(r1.points) != n*DefaultVnodes {
			t.Fatalf("ring has %d points, want %d", len(r1.points), n*DefaultVnodes)
		}
	})
}
