// Package htm simulates best-effort hardware transactional memory (Intel
// TSX / IBM POWER8 class) and a hybrid TM on top of the transactional heap.
//
// The simulation reproduces the properties that matter to a TM tuner:
//
//   - low per-access cost (no ownership-record writes on the common path,
//     mirroring the paper's non-instrumented code path for HTM);
//   - bounded speculative capacity: transactions whose footprint exceeds the
//     modeled cache raise capacity aborts no matter how often they retry;
//   - eager conflict detection at cache-line granularity with remote aborts
//     (a writer invalidates concurrent readers, as coherence-based HTM does);
//   - a software fallback path guarded by a global lock, plus the retry
//     budget and capacity-abort policies of §4.3 that PolyTM retunes online.
package htm

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/tm"
)

// CapacityPolicy is the reaction to a capacity abort (§4.3): how the
// remaining hardware retry budget is adjusted.
type CapacityPolicy int32

const (
	// PolicyGiveUp sets the budget to zero: go straight to the fallback.
	PolicyGiveUp CapacityPolicy = iota
	// PolicyDecrease decreases the budget by one, like any other abort.
	PolicyDecrease
	// PolicyHalve halves the remaining budget.
	PolicyHalve
)

// String returns the short label used in configuration encodings.
func (p CapacityPolicy) String() string {
	switch p {
	case PolicyGiveUp:
		return "giveup"
	case PolicyDecrease:
		return "decr"
	case PolicyHalve:
		return "half"
	}
	return "?"
}

// CM is the contention-management configuration shared by all threads
// running HTM. Both fields may be retuned at any moment without
// synchronization (different policies can coexist safely, §4.3), so they are
// plain atomics.
type CM struct {
	budget atomic.Int64
	policy atomic.Int32
}

// NewCM returns a contention manager with the given initial retry budget and
// capacity policy.
func NewCM(budget int, policy CapacityPolicy) *CM {
	cm := &CM{}
	cm.Set(budget, policy)
	return cm
}

// Set reconfigures the manager.
func (cm *CM) Set(budget int, policy CapacityPolicy) {
	cm.budget.Store(int64(budget))
	cm.policy.Store(int32(policy))
}

// Get returns the current configuration.
func (cm *CM) Get() (budget int, policy CapacityPolicy) {
	return int(cm.budget.Load()), CapacityPolicy(cm.policy.Load())
}

// HTM is the simulated best-effort hardware TM. ReadCap and WriteCap bound
// the speculative footprint in cache lines (stripes); the zero value of
// either selects the Machine-A-like defaults.
type HTM struct {
	ReadCap  int
	WriteCap int
	CM       *CM
}

// Default speculative capacities: the write set is bounded by an L1-sized
// buffer (32 KiB / 64 B = 512 lines); reads are tracked more loosely (an
// L2-backed bloom filter in real hardware).
const (
	DefaultReadCap  = 4096
	DefaultWriteCap = 448
)

func (h *HTM) caps() (int, int) {
	r, w := h.ReadCap, h.WriteCap
	if r == 0 {
		r = DefaultReadCap
	}
	if w == 0 {
		w = DefaultWriteCap
	}
	return r, w
}

// Name implements tm.Algorithm.
func (h *HTM) Name() string { return "htm" }

// Begin implements tm.Algorithm. The first attempt of a transaction loads
// the retry budget from the contention manager; once the budget is exhausted
// the attempt runs on the fallback path under the global lock. Hardware
// attempts subscribe to the fallback lock so that a fallback acquisition
// aborts them.
func (h *HTM) Begin(c *tm.Ctx) {
	c.ResetSets()
	c.AbortReason = tm.AbortNone
	st := &c.HTM
	if st.RLines == nil {
		st.RLines = make([]uint32, 0, 64)
		st.WLines = make([]uint32, 0, 64)
		c.H.RegisterDoomFlag(c.ID, &st.Doomed)
	}
	if st.LastTxn != c.TxnID {
		st.LastTxn = c.TxnID
		b := 5
		if h.CM != nil {
			b, _ = h.CM.Get()
		}
		st.Budget = b
	}
	st.Doomed.Store(false)
	st.RLines = st.RLines[:0]
	st.WLines = st.WLines[:0]
	if st.Budget <= 0 {
		st.Fallback = true
		c.Stats.IncFallbackRun()
		c.H.FallbackAcquire()
		st.InTx = true
		return
	}
	st.Fallback = false
	// Subscribe to the fallback lock: spin past any in-flight serial
	// transaction, then record the (even) lock value.
	for {
		v := c.H.FallbackLock()
		if v&1 == 0 {
			st.SnapshotRV = v
			break
		}
	}
	st.InTx = true
}

// Load implements tm.Algorithm. Hardware reads mark the line in the reader
// bitmap, refuse lines with an active speculative writer, and re-check the
// doom flag and fallback subscription after reading so no inconsistent value
// ever escapes to the application.
func (h *HTM) Load(c *tm.Ctx, a tm.Addr) uint64 {
	heap := c.H
	st := &c.HTM
	if st.Fallback {
		// The serial path may still conflict with committing hardware
		// transactions holding writer slots: doom them and wait.
		s := heap.Stripe(a)
		h.evictWriter(c, s)
		if v, ok := c.WS.Get(a); ok {
			return v
		}
		return heap.LoadWord(a)
	}
	if v, ok := c.WS.Get(a); ok {
		return v
	}
	s := heap.Stripe(a)
	bit := uint64(1) << uint(c.ID&63)
	if heap.ReaderMaskLoad(s)&bit == 0 {
		rcap, _ := h.caps()
		if len(st.RLines) >= rcap {
			h.cleanup(c)
			c.Retry(tm.AbortCapacity)
		}
		heap.ReaderMaskOr(s, bit)
		st.RLines = append(st.RLines, s)
	}
	if w := heap.WriterLoad(s); w != 0 && int(w-1) != c.ID {
		h.cleanup(c)
		c.Retry(tm.AbortConflict)
	}
	v := heap.LoadWord(a)
	h.check(c)
	return v
}

// Store implements tm.Algorithm. Hardware writes claim the line's writer
// slot (aborting on a writer-writer conflict), invalidate concurrent
// speculative readers, and buffer the value until commit.
func (h *HTM) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	heap := c.H
	st := &c.HTM
	if st.Fallback {
		s := heap.Stripe(a)
		h.evictWriter(c, s)
		h.doomReaders(c, s)
		c.WS.Put(a, v)
		return
	}
	s := heap.Stripe(a)
	if w := heap.WriterLoad(s); int(w) != c.ID+1 {
		if w != 0 {
			h.cleanup(c)
			c.Retry(tm.AbortConflict)
		}
		_, wcap := h.caps()
		if len(st.WLines) >= wcap {
			h.cleanup(c)
			c.Retry(tm.AbortCapacity)
		}
		if !heap.WriterCAS(s, 0, uint64(c.ID+1)) {
			h.cleanup(c)
			c.Retry(tm.AbortConflict)
		}
		st.WLines = append(st.WLines, s)
		h.doomReaders(c, s)
	}
	c.WS.Put(a, v)
	h.check(c)
}

// Commit implements tm.Algorithm: a final doom/subscription check, then the
// redo log is published while the writer slots are still held (so racing
// reads observe the conflict), and the footprint is released.
func (h *HTM) Commit(c *tm.Ctx) bool {
	heap := c.H
	st := &c.HTM
	if st.Fallback {
		for _, e := range c.WS.Entries() {
			heap.StoreWord(e.Addr, e.Val)
		}
		heap.FallbackRelease()
		st.InTx = false
		st.Fallback = false
		return true
	}
	if st.Doomed.Load() || heap.FallbackLock() != st.SnapshotRV {
		h.cleanup(c)
		c.AbortReason = tm.AbortConflict
		if heap.FallbackLock() != st.SnapshotRV {
			c.AbortReason = tm.AbortFallback
		}
		return false
	}
	// Invalidate readers of written lines once more: anything that marked
	// its bit after our Store-time sweep must not commit a mixed view.
	for _, s := range st.WLines {
		h.doomReaders(c, s)
	}
	for _, e := range c.WS.Entries() {
		heap.StoreWord(e.Addr, e.Val)
	}
	h.cleanup(c)
	st.InTx = false
	return true
}

// Abort implements tm.Algorithm: release the speculative footprint and apply
// the contention-management policy to the retry budget.
func (h *HTM) Abort(c *tm.Ctx) {
	st := &c.HTM
	if st.Fallback && st.InTx {
		c.H.FallbackRelease()
		st.Fallback = false
		st.InTx = false
		return
	}
	h.cleanup(c)
	st.InTx = false
	switch c.AbortReason {
	case tm.AbortCapacity:
		policy := PolicyDecrease
		if h.CM != nil {
			_, policy = h.CM.Get()
		}
		switch policy {
		case PolicyGiveUp:
			st.Budget = 0
		case PolicyHalve:
			st.Budget /= 2
		default:
			st.Budget--
		}
	default:
		st.Budget--
	}
}

// check aborts the current hardware attempt if it has been doomed by a
// conflicting transaction or if a fallback transaction acquired the lock.
func (h *HTM) check(c *tm.Ctx) {
	st := &c.HTM
	if st.Doomed.Load() {
		h.cleanup(c)
		c.Retry(tm.AbortConflict)
	}
	if c.H.FallbackLock() != st.SnapshotRV {
		h.cleanup(c)
		c.Retry(tm.AbortFallback)
	}
}

// cleanup releases every reader bit and writer slot held by the attempt.
func (h *HTM) cleanup(c *tm.Ctx) {
	heap := c.H
	st := &c.HTM
	bit := uint64(1) << uint(c.ID&63)
	for _, s := range st.RLines {
		heap.ReaderMaskAndNot(s, bit)
	}
	for _, s := range st.WLines {
		heap.WriterStore(s, 0)
	}
	st.RLines = st.RLines[:0]
	st.WLines = st.WLines[:0]
}

// doomReaders remotely aborts every speculative reader of stripe s other
// than c itself.
func (h *HTM) doomReaders(c *tm.Ctx, s uint32) {
	mask := c.H.ReaderMaskLoad(s)
	mask &^= uint64(1) << uint(c.ID&63)
	for mask != 0 {
		id := trailingZeros(mask)
		c.H.DoomThread(id)
		mask &= mask - 1
	}
}

// evictWriter (fallback path only) dooms the speculative writer of stripe s,
// if any, and waits for it to release the slot.
func (h *HTM) evictWriter(c *tm.Ctx, s uint32) {
	heap := c.H
	for {
		w := heap.WriterLoad(s)
		if w == 0 || int(w-1) == c.ID {
			return
		}
		heap.DoomThread(int(w - 1))
		for i := 0; i < 128 && heap.WriterLoad(s) == w; i++ {
		}
		if heap.WriterLoad(s) == w {
			// Let the victim's goroutine run so it can observe the
			// doom flag and clean up.
			yield()
		}
	}
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func yield() { runtime.Gosched() }
