package scenario

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/config"
)

// chaosSpec is the pinned parameterization of the service-chaos goldens:
// with crossevery=16, faultevery=4 and faultcount=6, the last fault is
// injected around operation 384 and its orphan recovered by operation
// ~584, so a 4000-op run ends with a long quiet tail in which every
// injected failure has been recovered before metrics are captured.
func chaosSpec(fault string) RunSpec {
	return RunSpec{
		Scenario: "service-chaos",
		Params: Values{
			"shards":      "4",
			"keyrange":    "1024",
			"crossevery":  "16",
			"faultevery":  "4",
			"faultcount":  "6",
			"deadlineops": "200",
			"fault":       fault,
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceChaosDeterminism pins the chaos acceptance criterion for
// both scenario legs: a fixed seed injects the same faults and recovers
// them at the same operations, producing byte-identical records across
// runs and against the committed goldens. Regenerate with
// UPDATE_GOLDEN=1 after intentional changes.
func TestServiceChaosDeterminism(t *testing.T) {
	for _, leg := range []struct {
		fault, golden string
	}{
		{"crash", "testdata/service_chaos_crash.golden"},
		{"stall", "testdata/service_chaos_stall.golden"},
	} {
		t.Run(leg.fault, func(t *testing.T) {
			a, err := Run(chaosSpec(leg.fault))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(chaosSpec(leg.fault))
			if err != nil {
				t.Fatal(err)
			}
			ja, jb := marshalResults(t, a), marshalResults(t, b)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("two chaos runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
			}
			m := a[0].Metrics
			injected := m["crashes_injected"] + m["stalls_injected"]
			if injected != 6 {
				t.Fatalf("injected faults = %d, want 6: %v", injected, m)
			}
			if got := m["fence_recovered"]; got != injected {
				t.Fatalf("fence_recovered = %d, want %d (all orphans healed in-run): %v", got, injected, m)
			}
			switch leg.fault {
			case "crash":
				if m["fence_rolled_forward"] != injected || m["fence_aborted"] != 0 {
					t.Fatalf("crash leg must roll every batch forward: %v", m)
				}
			case "stall":
				if m["fence_aborted"] != injected || m["fence_rolled_forward"] != 0 {
					t.Fatalf("stall leg must abort every wedge: %v", m)
				}
			}

			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(leg.golden, ja, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(leg.golden)
			if err != nil {
				t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", leg.golden, err)
			}
			if !bytes.Equal(ja, want) {
				t.Errorf("service-chaos %s record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s",
					leg.fault, leg.golden, ja, want)
			}
		})
	}
}

// TestServiceChaosLegsDiverge guards the fault knob: the crash and stall
// legs must produce different heaps (rolled-forward batch writes vs.
// committed-then-wedged ones), otherwise the two goldens pin one run.
func TestServiceChaosLegsDiverge(t *testing.T) {
	crash, err := Run(chaosSpec("crash"))
	if err != nil {
		t.Fatal(err)
	}
	stall, err := Run(chaosSpec("stall"))
	if err != nil {
		t.Fatal(err)
	}
	if crash[0].HeapDigest == stall[0].HeapDigest {
		t.Fatalf("crash and stall legs produced the same heap digest %s", crash[0].HeapDigest)
	}
}
