// Command proteusbench is the experiment entry point of the reproduction:
// it enumerates the scenario registry, runs one scenario under fixed or
// auto-tuned configurations with reproducible result records, sweeps the
// scenario grid × configuration grid into a Utility-Matrix CSV, and
// regenerates the paper's figures and tables.
//
// Usage:
//
//	proteusbench list [--threads 8]
//	proteusbench run --scenario rbtree --seed 42 [--param update=0.6]
//	    [--config TL2:4t,NOrec:4t | --autotune] [--ops 20000] [--duration 2s]
//	    [--slo-rate 2000 --slo-target-ms 0.095 [--slo-tune]]
//	    [--monitor-min-dwell N] [--monitor-band F] [--explore-epsilon F]
//	proteusbench sweep --out um.csv [--scenarios rbtree,tpcc] [--window 200ms]
//	proteusbench experiment --name fig4 [--quick]
//	proteusbench bench [--benchtime 0.5s] [--filter Algorithms] [--compare BENCH_0.json]
//	proteusbench loadgen [--addr http://127.0.0.1:7411] [--conns 8] [--rate 0]
//	    [--phases read-heavy:5s,write-heavy:5s,scan:3s] [--skew 0.9]
//	    [--mput-frac 0.2] [--deadline 50ms] [--slo-p99 20ms] [--out LOADGEN.json]
//
// `run` is deterministic by default: operations execute serially against a
// virtual clock, so the same seed produces byte-identical JSON records on
// every invocation (see docs/experimentation.md). Pass --duration to
// measure real wall-clock throughput instead. `sweep` writes the CSV that
// cf.ReadCSV / proteustm.WithTrainingMatrix consume, resuming from its
// journal when interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "proteusbench: unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteusbench:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `proteusbench — scenario harness for the ProteusTM reproduction

Commands:
  list        enumerate scenarios, parameter schemas and the config space
  run         run one scenario under fixed or auto-tuned configurations
  sweep       measure scenario grid x config grid into a Utility-Matrix CSV
  experiment  regenerate the paper's figures/tables (fig1..fig9, all)
  bench       run the micro-benchmark regression suite, record BENCH_<n>.json
  loadgen     drive phased open-loop traffic at a running proteusd, report JSON

Run 'proteusbench <command> -h' for command flags.
`)
}

// repeatedFlag collects a repeatable --param flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(s string) error { *r = append(*r, s); return nil }

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	threads := fs.Int("threads", 8, "worker slots the config space is built for")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenario.RenderList(os.Stdout, *threads)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("scenario", "", "scenario to run (see `proteusbench list`)")
	var params repeatedFlag
	fs.Var(&params, "param", "scenario parameter key=value (repeatable, comma-separable)")
	seed := fs.Uint64("seed", 42, "deterministic seed")
	configs := fs.String("config", "", "comma-separated configuration labels (e.g. TL2:4t,\"HTM:4t GiveUp-8\"); default NOrec at min(4,threads)")
	autotune := fs.Bool("autotune", false, "run RecTM's monitor/explore/install loop instead of fixed configs")
	threads := fs.Int("threads", 8, "worker slots")
	heapWords := fs.Int("heap-words", 1<<22, "transactional heap size in 64-bit words")
	ops := fs.Uint64("ops", 20000, "deterministic-mode operation budget")
	sampleEvery := fs.Uint64("sample-every", 0, "ops per KPI sample (default ops/10)")
	opCost := fs.Duration("op-cost", time.Microsecond, "virtual time per transaction attempt (deterministic mode)")
	duration := fs.Duration("duration", 0, "wall-clock measurement window; >0 switches to timed mode")
	umPath := fs.String("um", "", "training Utility-Matrix CSV for --autotune (from `proteusbench sweep`; default synthetic)")
	sloRate := fs.Float64("slo-rate", 0, "offered rate (ops/sec) of the serving model; >0 scores auto-tuned runs as a serving deployment")
	sloTargetMs := fs.Float64("slo-target-ms", 0, "p99 latency target (ms) the serving model scores attainment against")
	sloTune := fs.Bool("slo-tune", false, "tune for throughput-under-SLO instead of raw capacity (needs --slo-rate and --slo-target-ms)")
	minDwell := fs.Int("monitor-min-dwell", 0, "monitor minimum-dwell override: 0 default, >0 samples, <0 disables the gate")
	band := fs.Float64("monitor-band", 0, "monitor hysteresis-band override: 0 default, >0 relative band, <0 disables the gate")
	exploreEps := fs.Float64("explore-epsilon", 0, "SMBO early-stop threshold override: 0 default, <0 sweeps the space exhaustively")
	out := fs.String("out", "", "write JSON records here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("run: --scenario is required (try `proteusbench list`)")
	}
	if *sloTune && (*sloRate <= 0 || *sloTargetMs <= 0) {
		return fmt.Errorf("run: --slo-tune needs --slo-rate and --slo-target-ms")
	}
	values, err := scenario.ParseAssignments(params)
	if err != nil {
		return err
	}
	spec := scenario.RunSpec{
		Scenario:        *name,
		Params:          values,
		Seed:            *seed,
		AutoTune:        *autotune,
		MaxThreads:      *threads,
		HeapWords:       *heapWords,
		Ops:             *ops,
		SampleEvery:     *sampleEvery,
		OpCost:          *opCost,
		Duration:        *duration,
		SLOOfferedRate:  *sloRate,
		SLOTargetMs:     *sloTargetMs,
		SLOTune:         *sloTune,
		MonitorMinDwell: *minDwell,
		MonitorBand:     *band,
		ExploreEpsilon:  *exploreEps,
	}
	if *configs != "" {
		if *autotune {
			return fmt.Errorf("run: --config and --autotune are mutually exclusive")
		}
		if spec.Configs, err = config.ParseList(*configs); err != nil {
			return err
		}
	}
	if *umPath != "" {
		if !*autotune {
			return fmt.Errorf("run: --um only makes sense with --autotune")
		}
		f, err := os.Open(*umPath)
		if err != nil {
			return err
		}
		um, labels, err := cf.ReadCSV(f, true)
		f.Close()
		if err != nil {
			return fmt.Errorf("run: reading %s: %w", *umPath, err)
		}
		if spec.Space, err = parseLabels(labels); err != nil {
			return err
		}
		spec.TrainKPI = um
	}

	results, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for _, r := range results {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-14s %-20s mode=%-13s ops=%-8d commits=%-8d abort-rate=%.4f kpi=%.0f/s final=%s\n",
			r.Scenario, r.Config, r.Mode, r.Ops, r.Commits, r.AbortRate, r.CommitRate, r.FinalConfig)
	}
	return nil
}

// parseLabels turns UM header labels back into the configuration space.
func parseLabels(labels []string) ([]config.Config, error) {
	cfgs := make([]config.Config, len(labels))
	for i, l := range labels {
		c, err := config.Parse(l)
		if err != nil {
			return nil, fmt.Errorf("UM column %d: %w", i, err)
		}
		cfgs[i] = c
	}
	return cfgs, nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	out := fs.String("out", "um.csv", "output Utility-Matrix CSV path")
	names := fs.String("scenarios", "", "comma-separated scenario subset (default: all)")
	threads := fs.Int("threads", 8, "worker slots")
	heapWords := fs.Int("heap-words", 1<<22, "transactional heap size in 64-bit words")
	seed := fs.Uint64("seed", 42, "deterministic seed")
	ops := fs.Uint64("ops", 20000, "deterministic-mode ops per cell")
	window := fs.Duration("window", 200*time.Millisecond, "wall-clock window per cell (0 = deterministic mode)")
	journal := fs.String("journal", "", "resume journal path (default <out>.journal; \"none\" disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := scenario.SweepSpec{
		MaxThreads: *threads,
		HeapWords:  *heapWords,
		Seed:       *seed,
		Ops:        *ops,
		Window:     *window,
		Progress:   os.Stderr,
	}
	if *names != "" {
		spec.Scenarios = strings.Split(*names, ",")
	}
	switch *journal {
	case "none":
	case "":
		spec.Journal = *out + ".journal"
	default:
		spec.Journal = *journal
	}
	res, err := scenario.Sweep(spec)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %dx%d utility matrix to %s (%d cells measured, %d reused from journal)\n",
		res.UM.Rows, res.UM.Cols, *out, res.Measured, res.Reused)
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "record path (default BENCH_<n>.json at the next free index)")
	benchtime := fs.String("benchtime", "0.5s", "per-benchmark measurement budget (Go -benchtime syntax, e.g. 1s or 100x)")
	filter := fs.String("filter", "", "substring filter on benchmark names")
	note := fs.String("note", "", "free-form label stored in the record (e.g. the commit being measured)")
	compare := fs.String("compare", "", "print an old-vs-new delta table against this prior record")
	dry := fs.Bool("dry-run", false, "measure and print, but do not write a record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// testing.Benchmark honors the -test.benchtime flag, which only exists
	// after testing.Init; registering it on flag.CommandLine is harmless
	// because proteusbench parses per-command FlagSets instead.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("bench: invalid --benchtime: %w", err)
	}
	rec := bench.RunSuite(*filter, os.Stderr)
	rec.BenchTime = *benchtime
	rec.Note = *note
	if *compare != "" {
		old, err := bench.ReadRecord(*compare)
		if err != nil {
			return err
		}
		bench.Compare(old, rec, os.Stdout)
	}
	if *dry {
		return nil
	}
	path := *out
	if path == "" {
		var err error
		if path, err = bench.NextRecordPath("."); err != nil {
			return err
		}
	}
	if err := rec.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark results to %s\n", len(rec.Results), path)
	return nil
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7411", "proteusd base URL")
	conns := fs.Int("conns", 8, "concurrent client connections")
	rate := fs.Float64("rate", 0, "offered load in ops/sec across all connections (0 = closed-loop max)")
	phases := fs.String("phases", "read-heavy:5s,write-heavy:5s,scan:3s",
		"traffic schedule: comma-separated mix:duration (mixes: "+strings.Join(workloads.ServiceMixNames(), ", ")+")")
	keyrange := fs.Uint64("keyrange", 16384, "key range of generated operations")
	span := fs.Uint64("span", 256, "range-scan width")
	skew := fs.Float64("skew", 0, "fraction of shard-correlated traffic (sharded daemons: writes -> low shards, reads -> high shards)")
	mputFrac := fs.Float64("mput-frac", 0, "fraction of ops issued as cross-shard 4-key mput batches (batch-heavy sessions for the group-commit/keyed-fence A/B)")
	seed := fs.Uint64("seed", 42, "per-connection operation stream seed")
	deadline := fs.Duration("deadline", 0, "per-request deadline_ms budget the daemon enforces (0 = none)")
	sloP99 := fs.Duration("slo-p99", 0, "latency target SLO attainment is reported against (0 = no attainment reporting)")
	out := fs.String("out", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	phaseList, err := serve.ParsePhases(*phases)
	if err != nil {
		return err
	}
	report, err := serve.RunLoadgen(serve.LoadgenOptions{
		BaseURL:  *addr,
		Conns:    *conns,
		Rate:     *rate,
		Phases:   phaseList,
		KeyRange: *keyrange,
		Span:     *span,
		Skew:     *skew,
		MPutFrac: *mputFrac,
		Seed:     *seed,
		Deadline: *deadline,
		SLOP99:   *sloP99,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: total %d ops at %.0f/s, p50=%.2fms p99=%.2fms, %d daemon reconfigurations (%s -> %s)\n",
		report.Total.Ops, report.Total.Throughput, report.Total.LatencyMs.P50, report.Total.LatencyMs.P99,
		len(report.Reconfigurations), report.StartConfig, report.FinalConfig)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "all", "experiment: fig1|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|all")
	quick := fs.Bool("quick", false, "reduced scale for a fast run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Accept a bare positional name too: `proteusbench experiment fig4`.
	// Flag parsing stops at the first non-flag argument, so re-parse the
	// remainder to honor trailing flags (`experiment fig4 --quick`).
	if fs.NArg() > 0 {
		if *name == "all" {
			*name = fs.Arg(0)
		}
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("experiment: unexpected arguments %v", fs.Args())
		}
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	return runExperiment(*name, scale)
}

func runExperiment(name string, scale experiments.Scale) error {
	w := os.Stdout
	type printer interface{ Print(io.Writer) }
	runners := map[string]func() (printer, error){
		"fig1":   func() (printer, error) { return experiments.Fig1(scale), nil },
		"table4": func() (printer, error) { return experiments.Table4(scale) },
		"table5": func() (printer, error) { return experiments.Table5(scale) },
		"fig4":   func() (printer, error) { return experiments.Fig4(scale) },
		"fig5":   func() (printer, error) { return experiments.Fig5(scale) },
		"fig6":   func() (printer, error) { return experiments.Fig6(scale) },
		"fig7":   func() (printer, error) { return experiments.Fig7(scale) },
		"fig8":   func() (printer, error) { return experiments.Fig8(scale) },
		"fig9":   func() (printer, error) { return experiments.Fig9(scale) },
	}
	order := []string{"fig1", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
	if name == "all" {
		for _, key := range order {
			r, err := runners[key]()
			if err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			r.Print(w)
		}
		return nil
	}
	fn, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want %s or all)", name, strings.Join(order, "|"))
	}
	r, err := fn()
	if err != nil {
		return err
	}
	r.Print(w)
	return nil
}
