// Package cf implements the Collaborative Filtering machinery of RecTM: the
// Utility Matrix, the rating-distillation normalization (Algorithm 3 of the
// paper) and its baselines, user-based K-Nearest-Neighbours and Matrix
// Factorization predictors, a bagging ensemble that supplies the predictive
// mean and variance needed by Bayesian optimization, and random-search model
// selection with cross-validation.
//
// Conventions: matrices hold *goodness* values or ratings where higher is
// better (minimization KPIs such as execution time are inverted upstream);
// missing entries are NaN.
package cf

import (
	"fmt"
	"math"
)

// Missing is the sentinel for unknown matrix entries.
var Missing = math.NaN()

// IsMissing reports whether v is the missing sentinel.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Matrix is a dense utility matrix: rows are workloads (users), columns are
// TM configurations (items), entries are ratings/goodness values with NaN
// for unknown cells.
type Matrix struct {
	Rows, Cols int
	Data       [][]float64
}

// NewMatrix returns a rows×cols matrix with every entry missing.
func NewMatrix(rows, cols int) *Matrix {
	d := make([][]float64, rows)
	for i := range d {
		row := make([]float64, cols)
		for j := range row {
			row[j] = Missing
		}
		d[i] = row
	}
	return &Matrix{Rows: rows, Cols: cols, Data: d}
}

// FromRows wraps existing row data (not copied) in a Matrix.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("cf: empty matrix")
	}
	c := len(rows[0])
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("cf: ragged matrix: row %d has %d cols, want %d", i, len(r), c)
		}
	}
	return &Matrix{Rows: len(rows), Cols: c, Data: rows}, nil
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		copy(n.Data[i], m.Data[i])
	}
	return n
}

// Known reports whether entry (u, i) is present.
func (m *Matrix) Known(u, i int) bool { return !IsMissing(m.Data[u][i]) }

// KnownInRow returns the indices of the known entries of row u.
func (m *Matrix) KnownInRow(u int) []int {
	var idx []int
	for i, v := range m.Data[u] {
		if !IsMissing(v) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Density returns the fraction of known entries.
func (m *Matrix) Density() float64 {
	known := 0
	for _, row := range m.Data {
		for _, v := range row {
			if !IsMissing(v) {
				known++
			}
		}
	}
	return float64(known) / float64(m.Rows*m.Cols)
}

// RowMax returns the maximum known value of row and whether any entry is
// known.
func RowMax(row []float64) (float64, bool) {
	best, ok := 0.0, false
	for _, v := range row {
		if IsMissing(v) {
			continue
		}
		if !ok || v > best {
			best, ok = v, true
		}
	}
	return best, ok
}

// RowMean returns the mean of the known entries of row and their count.
func RowMean(row []float64) (float64, int) {
	sum, n := 0.0, 0
	for _, v := range row {
		if !IsMissing(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// ColMeans returns per-column means over known entries (0 for empty
// columns).
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	counts := make([]int, m.Cols)
	for _, row := range m.Data {
		for j, v := range row {
			if !IsMissing(v) {
				means[j] += v
				counts[j]++
			}
		}
	}
	for j := range means {
		if counts[j] > 0 {
			means[j] /= float64(counts[j])
		}
	}
	return means
}

// ArgBest returns the index of the largest known entry of row, or -1 when
// the row is entirely missing.
func ArgBest(row []float64) int {
	best, idx := math.Inf(-1), -1
	for i, v := range row {
		if !IsMissing(v) && v > best {
			best, idx = v, i
		}
	}
	return idx
}

// Goodness converts a KPI value to a higher-is-better goodness score.
func Goodness(kpi float64, higherIsBetter bool) float64 {
	if IsMissing(kpi) {
		return Missing
	}
	if higherIsBetter {
		return kpi
	}
	if kpi == 0 {
		return Missing
	}
	return 1 / kpi
}

// GoodnessMatrix converts a KPI matrix to goodness orientation.
func GoodnessMatrix(kpi *Matrix, higherIsBetter bool) *Matrix {
	g := NewMatrix(kpi.Rows, kpi.Cols)
	for u := range kpi.Data {
		for i, v := range kpi.Data[u] {
			g.Data[u][i] = Goodness(v, higherIsBetter)
		}
	}
	return g
}
