// Package monitor implements RecTM's Monitor (§5.3): lightweight detection
// of workload and environment behaviour changes from the stream of KPI
// samples, using the Adaptive CUSUM algorithm. A detected change triggers a
// fresh optimization phase in the Controller.
package monitor

import "math"

// CUSUM is an adaptive two-sided cumulative-sum change detector. The
// reference mean and deviation scale are tracked with exponentially weighted
// moving averages, so both the drift allowance K and the alarm threshold H
// adapt to the signal's recent behaviour — detecting abrupt jumps as well as
// smooth drifts, as §5.3 requires, without per-workload tuning.
//
// Two gates keep the detector from churning between close KPI levels (the
// flip-flop a serving stack pays for with a full exploration phase): MinDwell
// suppresses alarms for a few samples after every re-anchor, and Band
// suppresses alarms whose level shift is too small to justify retuning.
type CUSUM struct {
	// Alpha is the EWMA weight for the running mean/deviation (default
	// 0.1: roughly a 10-sample memory).
	Alpha float64
	// K is the drift allowance in deviation units (default 1).
	K float64
	// H is the alarm threshold in deviation units (default 10).
	H float64
	// Warmup is the number of samples consumed before alarms may fire
	// (default 5).
	Warmup int
	// MinDwell is the minimum number of samples since the last re-anchor
	// (Reset) before an alarm may fire. A genuine level change keeps
	// accumulating while the dwell holds, so it alarms the moment the
	// dwell expires; transient settle noise right after a reconfiguration
	// decays instead of triggering another exploration. Zero or negative
	// disables the gate (NewCUSUM defaults to 3).
	MinDwell int
	// Band is a relative hysteresis band around the anchored reference
	// level: an alarm is suppressed — and the accumulators cleared — while
	// the fast level estimate sits within Band×|anchor| of the level the
	// detector last re-anchored on. This is what stops the detector from
	// flip-flopping between configurations whose KPI levels are nearly
	// equal. Zero or negative disables the gate (NewCUSUM defaults to
	// 0.04, i.e. shifts under 4% are not worth a retune).
	Band float64

	mean   float64
	dev    float64
	sPos   float64
	sNeg   float64
	n      int
	alarms int

	// anchor is the reference level of the last Reset; recent is a fast
	// EWMA of the raw signal (never frozen) the Band gate compares against
	// it.
	anchor     float64
	recent     float64
	dwellHolds int
	bandHolds  int
}

// NewCUSUM returns a detector with the default parameters, dwell and
// hysteresis gates included.
func NewCUSUM() *CUSUM {
	return &CUSUM{Alpha: 0.1, K: 1, H: 10, Warmup: 5, MinDwell: 3, Band: 0.04}
}

// Observe consumes one KPI sample and reports whether a behaviour change was
// detected at this sample. After an alarm the detector re-anchors on the new
// level.
func (c *CUSUM) Observe(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	alpha := c.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	k := c.K
	if k <= 0 {
		k = 1
	}
	h := c.H
	if h <= 0 {
		h = 10
	}
	warm := c.Warmup
	if warm <= 0 {
		warm = 5
	}

	c.n++
	if c.n == 1 {
		c.mean = x
		c.dev = math.Abs(x) * 0.05
		c.anchor = x
		c.recent = x
		return false
	}
	// Fast level estimate for the hysteresis band: a short-memory EWMA
	// that keeps adapting even while the main reference is frozen below.
	c.recent += 0.3 * (x - c.recent)

	dev := c.dev
	if dev <= 0 {
		dev = math.Max(math.Abs(c.mean)*0.01, 1e-12)
	}
	kUnit := k * dev
	c.sPos = math.Max(0, c.sPos+(x-c.mean)-kUnit)
	c.sNeg = math.Max(0, c.sNeg-(x-c.mean)-kUnit)

	alarm := c.n > warm && (c.sPos > h*dev || c.sNeg > h*dev)

	// Adapt the reference level and deviation scale — but freeze the
	// adaptation while a change is suspected (either statistic past half
	// the threshold); otherwise a level shift inflates the deviation
	// estimate and the alarm threshold chases the drifting signal.
	suspected := c.sPos > h*dev/2 || c.sNeg > h*dev/2
	if !suspected {
		c.mean = (1-alpha)*c.mean + alpha*x
		c.dev = (1-alpha)*c.dev + alpha*math.Abs(x-c.mean)
	}

	if alarm {
		// Hysteresis band: the level has not moved far enough from the
		// anchor to justify a retune — absorb the accumulated evidence.
		if c.Band > 0 && math.Abs(c.recent-c.anchor) < c.Band*math.Abs(c.anchor) {
			c.sPos, c.sNeg = 0, 0
			c.bandHolds++
			return false
		}
		// Minimum dwell: too soon after the last re-anchor. Keep the
		// accumulators so a genuine change alarms when the dwell expires.
		if c.MinDwell > 0 && c.n <= c.MinDwell {
			c.dwellHolds++
			return false
		}
		c.Reset(x)
		c.alarms++
		return true
	}
	return false
}

// Reset re-anchors the detector on a new reference level (called after an
// alarm or after the Controller installs a new configuration, whose KPI
// level is expected to differ).
func (c *CUSUM) Reset(level float64) {
	c.mean = level
	c.dev = math.Abs(level) * 0.05
	c.sPos, c.sNeg = 0, 0
	c.n = 1
	c.anchor = level
	c.recent = level
}

// Alarms returns the number of changes detected so far.
func (c *CUSUM) Alarms() int { return c.alarms }

// Suppressed returns the number of raw alarms the dwell and hysteresis
// gates have held back so far.
func (c *CUSUM) Suppressed() int { return c.dwellHolds + c.bandHolds }

// Mean returns the current reference level estimate.
func (c *CUSUM) Mean() float64 { return c.mean }
