// Package shard partitions the service key space across independent
// ProteusTM systems. It provides the pieces the sharded serving layer
// (internal/serve) and the deterministic service scenarios build on:
//
//   - Partitioner, the placement seam: the key→shard function the serve
//     layer routes with. Two implementations exist — Ring (consistent
//     hashing, uniform placement) and RangePartitioner (order-preserving
//     boundary spans, scan locality) — selected by proteusd's
//     --partitioner flag and A/B-able in the scenario registry.
//
//   - Ring, a consistent-hash ring mapping 64-bit keys to shard indexes.
//     Ownership is a pure function of (key, shard count): two rings built
//     for the same N agree on every key, so clients (the loadgen skew
//     planner, the sharded workload) can compute ownership locally without
//     asking the server. Growing the ring from N to N+1 shards remaps only
//     the keys the new shard takes over — every key either keeps its owner
//     or moves to shard N.
//
//   - Linearize, a small-history exhaustive linearizability checker for
//     key-value operation histories recorded against a sharded store.
//     Cross-shard atomicity claims reduce to linearizability of the
//     committed history (Armstrong et al., "Reducing Opacity to
//     Linearizability"), which is what the serve-layer correctness battery
//     checks.
//
// The package is dependency-free on purpose: internal/serve,
// internal/workloads and cmd/proteusbench all import it, and it must never
// import them back.
package shard

import "sort"

// DefaultVnodes is the number of virtual nodes each shard places on the
// ring. More vnodes smooth the key distribution across shards at the cost
// of a larger (still tiny) sorted point table.
const DefaultVnodes = 64

// point is one virtual node: a position on the 64-bit hash ring owned by a
// shard.
type point struct {
	h     uint64
	shard int
}

// Ring is a consistent-hash ring partitioning the 64-bit key space across
// n shards. The zero value is unusable; build one with New. A Ring is
// immutable and safe for concurrent use.
type Ring struct {
	n      int
	points []point
}

// mix is the splitmix64 finalizer — the same avalanche-quality mixer the
// workload RNG uses, applied here to both vnode labels and keys so ring
// positions are uniform even for dense small integers.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// New builds a ring for n shards (clamped to at least 1) with
// DefaultVnodes virtual nodes per shard. Construction is deterministic:
// New(n) always yields the same ownership function.
func New(n int) *Ring {
	if n < 1 {
		n = 1
	}
	pts := make([]point, 0, n*DefaultVnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < DefaultVnodes; v++ {
			// The vnode label packs (shard, replica); mixing twice keeps
			// consecutive labels far apart on the ring.
			h := mix(mix(uint64(s)<<32 | uint64(v)))
			pts = append(pts, point{h: h, shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// Deterministic tie-break: hash collisions between vnodes are
		// astronomically unlikely but must not make ownership ambiguous.
		return pts[i].shard < pts[j].shard
	})
	return &Ring{n: n, points: pts}
}

// Shards returns the number of shards the ring was built for.
func (r *Ring) Shards() int { return r.n }

// Owner returns the shard index owning key: the shard of the first vnode
// at or after the key's ring position, wrapping past the top of the ring.
func (r *Ring) Owner(key uint64) int {
	if r.n == 1 {
		return 0
	}
	h := mix(key)
	// First point with point.h >= h; wraps to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Participants returns the sorted distinct owners of keys — the shard set
// a cross-shard operation must fence, in the global lock-acquisition
// order (ascending shard index).
func (r *Ring) Participants(keys []uint64) []int {
	return distinctOwners(r.n, r.Owner, keys)
}

// Kind implements Partitioner.
func (r *Ring) Kind() string { return KindHash }

// RangeEnumCap bounds the per-key enumeration OwnersInRange performs on
// a hash ring before giving up and returning every shard. It comfortably
// covers the serve layer's clamped scan spans (MaxScanSpan defaults to
// 4096), and the walk short-circuits as soon as every shard has appeared
// — which uniform hashing makes happen within a few dozen keys. The
// constant is exported so callers (the serve layer's range path) can
// detect when a hash-ring owner set is the conservative all-shards
// fallback rather than an exact enumeration and count the over-fencing.
const RangeEnumCap = 1 << 13

// OwnersInRange implements Partitioner. Hashing destroys range locality,
// so the owner set of an ordered interval is computed by enumerating the
// possible keys in [lo, hi]; intervals wider than RangeEnumCap
// conservatively report every shard. The result is exact for the narrow
// scans where it matters (it is what lets a single-key /kv/range skip
// the cross-shard fence protocol entirely) and a superset otherwise.
func (r *Ring) OwnersInRange(lo, hi uint64) []int {
	if hi < lo {
		return nil
	}
	if r.n == 1 {
		return []int{0}
	}
	if hi-lo >= RangeEnumCap {
		out := make([]int, r.n)
		for s := range out {
			out[s] = s
		}
		return out
	}
	seen := make([]bool, r.n)
	cnt := 0
	for k := lo; ; k++ {
		if o := r.Owner(k); !seen[o] {
			seen[o] = true
			cnt++
		}
		if cnt == r.n || k == hi {
			break
		}
	}
	return collectOwners(seen, cnt)
}
