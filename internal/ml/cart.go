// Package ml implements the machine-learning baselines ProteusTM is
// compared against in Fig. 7 of the paper (the Wang et al. approach):
// classifiers trained on workload-characterization features to predict the
// best TM configuration directly — a CART decision tree, a linear SVM
// trained with SMO (one-vs-one multi-class), and a multi-layer perceptron.
// Hyper-parameters are tuned by random search with cross-validation, as in
// §6.3 ("their parameters were chosen via random search optimization, which
// evaluated 100 combinations with cross-validation on the training set").
package ml

import (
	"math"
	"sort"
)

// Classifier predicts a class label (the index of the best configuration)
// from a feature vector.
type Classifier interface {
	// Name identifies the algorithm.
	Name() string
	// Fit trains on feature rows X with class labels y.
	Fit(x [][]float64, y []int)
	// Predict returns the class for one feature vector.
	Predict(x []float64) int
}

// CART is a classification tree with Gini-impurity binary splits on numeric
// features (the paper's "Decision Trees (CART)" baseline from Weka).
type CART struct {
	// MaxDepth bounds the tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int

	root *cartNode
}

type cartNode struct {
	feature   int
	threshold float64
	left      *cartNode
	right     *cartNode
	class     int
	leaf      bool
}

// Name implements Classifier.
func (c *CART) Name() string { return "CART" }

// Fit implements Classifier.
func (c *CART) Fit(x [][]float64, y []int) {
	depth := c.MaxDepth
	if depth <= 0 {
		depth = 12
	}
	minLeaf := c.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	c.root = buildCART(x, y, idx, depth, minLeaf)
}

// Predict implements Classifier.
func (c *CART) Predict(x []float64) int {
	n := c.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

func buildCART(x [][]float64, y []int, idx []int, depth, minLeaf int) *cartNode {
	if len(idx) == 0 {
		return &cartNode{leaf: true, class: 0}
	}
	maj, pure := majority(y, idx)
	if pure || depth == 0 || len(idx) < 2*minLeaf {
		return &cartNode{leaf: true, class: maj}
	}
	bestGini := math.Inf(1)
	bestF, bestT := -1, 0.0
	nFeatures := len(x[idx[0]])
	vals := make([]float64, 0, len(idx))
	for f := 0; f < nFeatures; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, x[i][f])
		}
		sort.Float64s(vals)
		for k := 0; k+1 < len(vals); k++ {
			if vals[k] == vals[k+1] {
				continue
			}
			t := (vals[k] + vals[k+1]) / 2
			g := splitGini(x, y, idx, f, t)
			if g < bestGini {
				bestGini, bestF, bestT = g, f, t
			}
		}
	}
	if bestF < 0 {
		return &cartNode{leaf: true, class: maj}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestF] <= bestT {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < minLeaf || len(ri) < minLeaf {
		return &cartNode{leaf: true, class: maj}
	}
	return &cartNode{
		feature:   bestF,
		threshold: bestT,
		left:      buildCART(x, y, li, depth-1, minLeaf),
		right:     buildCART(x, y, ri, depth-1, minLeaf),
	}
}

func majority(y []int, idx []int) (int, bool) {
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best, len(counts) <= 1
}

func splitGini(x [][]float64, y []int, idx []int, f int, t float64) float64 {
	lc := map[int]int{}
	rc := map[int]int{}
	ln, rn := 0, 0
	for _, i := range idx {
		if x[i][f] <= t {
			lc[y[i]]++
			ln++
		} else {
			rc[y[i]]++
			rn++
		}
	}
	gini := func(counts map[int]int, n int) float64 {
		if n == 0 {
			return 0
		}
		s := 1.0
		for _, c := range counts {
			p := float64(c) / float64(n)
			s -= p * p
		}
		return s
	}
	tot := float64(ln + rn)
	return float64(ln)/tot*gini(lc, ln) + float64(rn)/tot*gini(rc, rn)
}
