// Quickstart: shared counters and bank transfers under ProteusTM.
//
// Demonstrates the core programming model — open a system, allocate
// transactional words, run atomic blocks from worker goroutines — plus
// manual configuration switching between TM backends: the application code
// is identical under every TM.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	proteustm "repro"
)

const (
	workers   = 4
	accounts  = 64
	transfers = 20000
	initial   = 1000
)

func main() {
	sys, err := proteustm.Open(
		proteustm.WithWorkers(workers),
		proteustm.WithHeapWords(1<<16),
		proteustm.WithInitialConfig(proteustm.Config{Alg: proteustm.TL2, Threads: workers}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Allocate the accounts and fund them (setup code may write directly).
	base := sys.MustAlloc(accounts)
	for i := 0; i < accounts; i++ {
		sys.Store(base+proteustm.Addr(i), initial)
	}

	// The same transfer loop runs under three different TM backends.
	for _, cfg := range []proteustm.Config{
		{Alg: proteustm.TL2, Threads: workers},
		{Alg: proteustm.NOrec, Threads: workers},
		{Alg: proteustm.HTM, Threads: workers, Budget: 5},
	} {
		if err := sys.SetConfig(cfg); err != nil {
			log.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wk, err := sys.Worker(w)
			if err != nil {
				log.Fatal(err)
			}
			wg.Add(1)
			go func(wk *proteustm.Worker, seed uint64) {
				defer wg.Done()
				rng := seed
				for i := 0; i < transfers/workers; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					from := proteustm.Addr(rng % accounts)
					to := proteustm.Addr((rng >> 16) % accounts)
					if from == to {
						continue
					}
					wk.Atomic(func(tx proteustm.Txn) {
						f := tx.Load(base + from)
						t := tx.Load(base + to)
						tx.Store(base+from, f-10)
						tx.Store(base+to, t+10)
					})
				}
			}(wk, uint64(w+1))
		}
		wg.Wait()

		var total uint64
		for i := 0; i < accounts; i++ {
			total += sys.Load(base + proteustm.Addr(i))
		}
		stats := sys.Stats()
		fmt.Printf("%-18s total=%d (want %d)  commits=%d aborts=%d\n",
			cfg.String(), total, accounts*initial, stats.Commits, stats.Aborts)
		if total != accounts*initial {
			log.Fatalf("money was created or destroyed under %v", cfg)
		}
	}
	fmt.Println("all backends preserved the invariant")
}
