package shard

import "testing"

// seq builds a trivially sequential op (each op's window follows the
// previous one) for readability in the tests below.
type histBuilder struct {
	t   int64
	ops []Op
}

func (b *histBuilder) add(op Op) {
	op.Invoke = b.t
	op.Return = b.t + 1
	b.t += 2
	b.ops = append(b.ops, op)
}

func get(k, v uint64, found bool) Op {
	return Op{Kind: OpGet, Keys: []uint64{k}, Vals: []uint64{v}, Oks: []bool{found}}
}
func put(k, v uint64, existed bool) Op {
	return Op{Kind: OpPut, Keys: []uint64{k}, Args: []uint64{v}, Oks: []bool{existed}}
}

// TestLinearizeSequential accepts a straight-line history.
func TestLinearizeSequential(t *testing.T) {
	var b histBuilder
	b.add(put(1, 10, false))
	b.add(get(1, 10, true))
	b.add(Op{Kind: OpCAS, Keys: []uint64{1}, Args: []uint64{10, 11}, Vals: []uint64{11}, Oks: []bool{true}})
	b.add(Op{Kind: OpCAS, Keys: []uint64{1}, Args: []uint64{10, 12}, Vals: []uint64{11}, Oks: []bool{false}})
	b.add(Op{Kind: OpDel, Keys: []uint64{1}, Oks: []bool{true}})
	b.add(get(1, 0, false))
	order, ok := Linearize(b.ops)
	if !ok {
		t.Fatal("legal sequential history rejected")
	}
	if len(order) != len(b.ops) {
		t.Fatalf("witness has %d ops, want %d", len(order), len(b.ops))
	}
}

// TestLinearizeReordering accepts a history whose only witness reorders
// overlapping operations.
func TestLinearizeReordering(t *testing.T) {
	// put(1,5) overlaps a get that already sees 5: the get must be
	// linearized after the put even though it was invoked first.
	h := []Op{
		{Invoke: 0, Return: 10, Kind: OpGet, Keys: []uint64{1}, Vals: []uint64{5}, Oks: []bool{true}},
		{Invoke: 1, Return: 9, Kind: OpPut, Keys: []uint64{1}, Args: []uint64{5}, Oks: []bool{false}},
	}
	if _, ok := Linearize(h); !ok {
		t.Fatal("overlapping put/get history rejected")
	}
}

// TestLinearizeRejectsStaleRead rejects the classic real-time violation:
// a read that completed strictly before another read began observed newer
// state than the later read.
func TestLinearizeRejectsStaleRead(t *testing.T) {
	h := []Op{
		{Invoke: 0, Return: 20, Kind: OpMPut, Keys: []uint64{1, 2}, Args: []uint64{7, 7}},
		// r1 sees key 1 written and returns before r2 starts...
		{Invoke: 2, Return: 4, Kind: OpGet, Keys: []uint64{1}, Vals: []uint64{7}, Oks: []bool{true}},
		// ...but r2 still sees key 2 unwritten: the batch was torn.
		{Invoke: 6, Return: 8, Kind: OpGet, Keys: []uint64{2}, Vals: []uint64{0}, Oks: []bool{false}},
	}
	if _, ok := Linearize(h); ok {
		t.Fatal("torn cross-shard batch accepted as linearizable")
	}
}

// TestLinearizeRejectsTornMGet rejects a multi-key read that observed a
// half-applied batch even without real-time ordering between the readers.
func TestLinearizeRejectsTornMGet(t *testing.T) {
	h := []Op{
		{Invoke: 0, Return: 2, Kind: OpMPut, Keys: []uint64{1, 2}, Args: []uint64{1, 1}},
		{Invoke: 4, Return: 6, Kind: OpMPut, Keys: []uint64{1, 2}, Args: []uint64{2, 2}},
		// Observes key 1 from the second batch but key 2 from the first:
		// no sequential order of the two mputs produces this.
		{Invoke: 8, Return: 10, Kind: OpMGet, Keys: []uint64{1, 2}, Vals: []uint64{2, 1}, Oks: []bool{true, true}},
	}
	if _, ok := Linearize(h); ok {
		t.Fatal("torn mget accepted as linearizable")
	}
}

// TestLinearizeRejectsLostUpdate rejects two CAS operations that both
// claim to have applied from the same observed value.
func TestLinearizeRejectsLostUpdate(t *testing.T) {
	h := []Op{
		{Invoke: 0, Return: 1, Kind: OpPut, Keys: []uint64{9}, Args: []uint64{1}, Oks: []bool{false}},
		{Invoke: 2, Return: 8, Kind: OpCAS, Keys: []uint64{9}, Args: []uint64{1, 2}, Vals: []uint64{2}, Oks: []bool{true}},
		{Invoke: 3, Return: 9, Kind: OpCAS, Keys: []uint64{9}, Args: []uint64{1, 3}, Vals: []uint64{3}, Oks: []bool{true}},
	}
	if _, ok := Linearize(h); ok {
		t.Fatal("lost-update CAS pair accepted as linearizable")
	}
}

// scan builds a range-scan op: observed (count, sum) over [lo, hi].
func scan(lo, hi, count, sum uint64) Op {
	return Op{Kind: OpRange, Keys: []uint64{lo, hi}, Vals: []uint64{count, sum}}
}

// TestLinearizeRangeSequential accepts scans that observe consistent
// snapshots at every point of a straight-line history.
func TestLinearizeRangeSequential(t *testing.T) {
	var b histBuilder
	b.add(scan(0, 100, 0, 0)) // empty store
	b.add(put(5, 10, false))
	b.add(put(50, 30, false))
	b.add(scan(0, 100, 2, 40)) // sees both
	b.add(scan(0, 10, 1, 10))  // sees only key 5
	b.add(scan(60, 100, 0, 0)) // sees neither
	b.add(Op{Kind: OpDel, Keys: []uint64{5}, Oks: []bool{true}})
	b.add(scan(0, 100, 1, 30)) // key 5 gone
	if _, ok := Linearize(b.ops); !ok {
		t.Fatal("legal scan history rejected")
	}
}

// TestLinearizeRejectsTornScan rejects a scan that observed half of an
// atomic cross-shard batch — the ordered-snapshot violation the range
// extension exists to catch.
func TestLinearizeRejectsTornScan(t *testing.T) {
	h := []Op{
		// Batch writes keys 1 and 2 (values 5 and 5) atomically.
		{Invoke: 0, Return: 2, Kind: OpMPut, Keys: []uint64{1, 2}, Args: []uint64{5, 5}},
		// A scan of [1,2] can legally see (0,0) or (2,10) — never (1,5).
		{Invoke: 4, Return: 6, Kind: OpRange, Keys: []uint64{1, 2}, Vals: []uint64{1, 5}},
	}
	if _, ok := Linearize(h); ok {
		t.Fatal("torn scan accepted as linearizable")
	}
}

// TestLinearizeRejectsStaleScan rejects the real-time violation between
// two scans: the earlier-completing scan saw newer state.
func TestLinearizeRejectsStaleScan(t *testing.T) {
	h := []Op{
		{Invoke: 0, Return: 20, Kind: OpMPut, Keys: []uint64{1, 2}, Args: []uint64{3, 4}},
		// This scan returned before the next began and saw the batch...
		{Invoke: 2, Return: 4, Kind: OpRange, Keys: []uint64{0, 10}, Vals: []uint64{2, 7}},
		// ...but the later scan saw the pre-batch state.
		{Invoke: 6, Return: 8, Kind: OpRange, Keys: []uint64{0, 10}, Vals: []uint64{0, 0}},
	}
	if _, ok := Linearize(h); ok {
		t.Fatal("stale scan accepted as linearizable")
	}
}

// TestLinearizeRangeOverlapping accepts a scan overlapping a batch put
// whichever side of the batch it lands on.
func TestLinearizeRangeOverlapping(t *testing.T) {
	for _, vals := range [][2]uint64{{0, 0}, {2, 10}} {
		h := []Op{
			{Invoke: 0, Return: 10, Kind: OpMPut, Keys: []uint64{1, 2}, Args: []uint64{5, 5}},
			{Invoke: 1, Return: 9, Kind: OpRange, Keys: []uint64{0, 5}, Vals: []uint64{vals[0], vals[1]}},
		}
		if _, ok := Linearize(h); !ok {
			t.Fatalf("overlapping scan observing (%d,%d) rejected", vals[0], vals[1])
		}
	}
}

// TestLinearizeEmptyAndWitnessOrder covers the trivial cases and checks
// the witness indexes are a permutation.
func TestLinearizeEmptyAndWitnessOrder(t *testing.T) {
	if _, ok := Linearize(nil); !ok {
		t.Fatal("empty history rejected")
	}
	var b histBuilder
	b.add(put(3, 1, false))
	b.add(put(3, 2, true))
	b.add(get(3, 2, true))
	order, ok := Linearize(b.ops)
	if !ok {
		t.Fatal("history rejected")
	}
	seen := map[int]bool{}
	for _, i := range order {
		if i < 0 || i >= len(b.ops) || seen[i] {
			t.Fatalf("witness %v is not a permutation", order)
		}
		seen[i] = true
	}
}
