package workloads

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceHotKey is the hostile-traffic twin of a cache stampede: most
// operations hammer a small Zipf-distributed window of keys whose head
// slides across the key space every MoveEvery operations, so whichever
// shard owns the current head absorbs a disproportionate share of the
// traffic — until the head moves and the hot spot lands somewhere else.
//
// Like ServiceRange, the operation stream (which keys, which ops, which
// scan spans) is a pure function of the seed and independent of the
// partitioner, so the scenario replays the identical hostile sequence
// under hash and range placement. The placement-dependent observable is
// locality: under range placement the Zipf window is contiguous, so the
// hot spot stays on one shard between head moves (few owner switches,
// concentrated load); under hashing it scatters across all shards every
// draw (many owner switches, diluted load). Metrics records both.
type ServiceHotKey struct {
	// Label overrides the workload name (default "service-hotkey").
	Label string
	// Partitioner is the placement policy: shard.KindHash or
	// shard.KindRange (the default).
	Partitioner string
	// Shards is the number of key-space shards (default 4).
	Shards int
	// KeyRange bounds the keys and sizes the range partitioner's
	// universe (default 1 << 12).
	KeyRange int
	// InitialSize pre-populates the stores (default KeyRange/2).
	InitialSize int
	// HotSpan is the width of the Zipf window (default 512).
	HotSpan int
	// HotFrac is the probability an operation draws its key from the
	// Zipf window instead of uniformly (default 0.9).
	HotFrac float64
	// Theta is the Zipf exponent (default 1.1; higher = more skewed).
	Theta float64
	// MoveEvery slides the window head every N operations (default 1000).
	MoveEvery int
	// HeadStep is how far the head jumps per move (default KeyRange/7,
	// coprime-ish with the shard count so the hot spot visits them all).
	HeadStep int
	// Mix is the operation mix name (default "mixed").
	Mix string
	// Span is the width of a range scan (default 64).
	Span int
	// BatchEvery makes every Nth operation a cross-shard batch put
	// through the fence protocol (default 64; negative disables).
	BatchEvery int
	// BatchKeys is the batch width (default 4).
	BatchKeys int

	part   shard.Partitioner
	sets   []*RBSet
	fences tm.Addr // Shards consecutive fence words, one per shard
	ops    atomic.Uint64

	// cum is the precomputed cumulative Zipf weight table over the
	// window's ranks; sampling is one Float64 draw plus a binary search,
	// so the draw count per op is rank-independent.
	cum []float64

	// Locality counters (see Metrics).
	hotOps, uniformOps, headMoves  atomic.Uint64
	ownerSwitches, scanTotal       atomic.Uint64
	scanFencedShards, crossBatches atomic.Uint64
	lastOwner                      atomic.Int64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, keyRange, hotSpan, moveEvery, headStep int
	span, batchEvery, batchKeys                    int
	hotFrac                                        float64
	mix                                            ServiceOpMix
}

// Name implements Workload.
func (s *ServiceHotKey) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-hotkey"
}

func (s *ServiceHotKey) params() (kind string, shards, keyRange, initial, hotSpan, moveEvery, headStep, span, batchEvery, batchKeys int, hotFrac, theta float64, mix ServiceOpMix, err error) {
	kind = s.Partitioner
	if kind == "" {
		kind = shard.KindRange
	}
	shards = s.Shards
	if shards <= 0 {
		shards = 4
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 12
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	hotSpan = s.HotSpan
	if hotSpan <= 0 {
		hotSpan = 512
	}
	if hotSpan > keyRange {
		hotSpan = keyRange
	}
	moveEvery = s.MoveEvery
	if moveEvery <= 0 {
		moveEvery = 1000
	}
	headStep = s.HeadStep
	if headStep <= 0 {
		headStep = keyRange / 7
		if headStep == 0 {
			headStep = 1
		}
	}
	span = s.Span
	if span <= 0 {
		span = 64
	}
	batchEvery = s.BatchEvery
	if batchEvery < 0 {
		batchEvery = 0
	} else if batchEvery == 0 {
		batchEvery = 64
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	hotFrac = s.HotFrac
	if hotFrac <= 0 {
		hotFrac = 0.9
	}
	if hotFrac > 1 {
		hotFrac = 1
	}
	theta = s.Theta
	if theta <= 0 {
		theta = 1.1
	}
	name := s.Mix
	if name == "" {
		name = "mixed"
	}
	mix, err = ServiceMixByName(name)
	if err != nil {
		return
	}
	mix = mix.Normalize()
	return
}

// Setup implements Workload: it builds the partitioner, the per-shard
// stores and fences, and the cumulative Zipf table, then pre-populates
// each store with the keys it owns.
func (s *ServiceHotKey) Setup(h *tm.Heap, rng *Rand) error {
	var kind string
	var initial int
	var theta float64
	var err error
	kind, s.shards, s.keyRange, initial, s.hotSpan, s.moveEvery, s.headStep, s.span, s.batchEvery, s.batchKeys, s.hotFrac, theta, s.mix, err = s.params()
	if err != nil {
		return fmt.Errorf("service-hotkey: %w", err)
	}
	if s.part, err = shard.NewPartitioner(kind, s.shards, uint64(s.keyRange)); err != nil {
		return fmt.Errorf("service-hotkey: %w", err)
	}
	s.cum = make([]float64, s.hotSpan)
	total := 0.0
	for i := range s.cum {
		total += 1 / math.Pow(float64(i+1), theta)
		s.cum[i] = total
	}
	s.sets = make([]*RBSet, s.shards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("service-hotkey: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	fences, err := h.Alloc(s.shards)
	if err != nil {
		return fmt.Errorf("service-hotkey: fences: %w", err)
	}
	s.fences = fences
	s.ops.Store(0)
	s.hotOps.Store(0)
	s.uniformOps.Store(0)
	s.headMoves.Store(0)
	s.ownerSwitches.Store(0)
	s.scanTotal.Store(0)
	s.scanFencedShards.Store(0)
	s.crossBatches.Store(0)
	s.lastOwner.Store(-1)
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := s.part.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// fence returns shard i's fence word.
func (s *ServiceHotKey) fence(i int) tm.Addr { return s.fences + tm.Addr(i) }

// head returns the Zipf window head at global operation count n.
func (s *ServiceHotKey) head(n uint64) uint64 {
	moves := n / uint64(s.moveEvery)
	return (moves * uint64(s.headStep)) % uint64(s.keyRange)
}

// zipfRank draws one rank in [0, hotSpan) from the precomputed table.
func (s *ServiceHotKey) zipfRank(rng *Rand) int {
	u := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Metrics implements Metered. owner_switches counts consecutive hot-key
// operations that landed on different shards — the dilution observable
// the partitioner A/B compares: hashing scatters the contiguous Zipf
// window (many switches), range placement keeps the hot spot on the
// head's owner between moves (few switches).
func (s *ServiceHotKey) Metrics() map[string]uint64 {
	return map[string]uint64{
		"hot_ops":            s.hotOps.Load(),
		"uniform_ops":        s.uniformOps.Load(),
		"head_moves":         s.headMoves.Load(),
		"owner_switches":     s.ownerSwitches.Load(),
		"scan_total":         s.scanTotal.Load(),
		"scan_fenced_shards": s.scanFencedShards.Load(),
		"cross_batches":      s.crossBatches.Load(),
	}
}

// Op implements Workload: one service request whose key is Zipf-drawn
// from the moving window with probability HotFrac, uniform otherwise.
// Every rng draw happens before any partitioner-dependent branching, so
// the operation stream is identical across partitioners.
func (s *ServiceHotKey) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if s.batchEvery > 0 && n%uint64(s.batchEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	if n%uint64(s.moveEvery) == 0 {
		s.headMoves.Add(1)
	}
	var k uint64
	hot := rng.Float64() < s.hotFrac
	if hot {
		rank := s.zipfRank(rng)
		k = (s.head(n) + uint64(rank)) % uint64(s.keyRange)
		s.hotOps.Add(1)
	} else {
		k = uint64(rng.Intn(s.keyRange))
		s.uniformOps.Add(1)
	}
	p := rng.Float64()
	if hot {
		o := int64(s.part.Owner(k))
		if prev := s.lastOwner.Swap(o); prev >= 0 && prev != o {
			s.ownerSwitches.Add(1)
		}
	}
	switch {
	case p < s.mix.Get:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) { set.Get(tx, k) })
	case p < s.mix.Get+s.mix.Put:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) { set.Insert(tx, self, k, n) })
	case p < s.mix.Get+s.mix.Put+s.mix.Del:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) { set.Delete(tx, self, k) })
	case p < s.mix.Get+s.mix.Put+s.mix.Del+s.mix.CAS:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) {
			if v, ok := set.Get(tx, k); ok {
				set.Insert(tx, self, k, v+1)
			}
		})
	default:
		s.scan(r, self, k, k+uint64(s.span))
	}
}

// pointOp runs one single-key operation on the owning shard under its
// fence, requeue-retrying like the serve workers do.
func (s *ServiceHotKey) pointOp(r Runner, self int, k uint64, body func(tx tm.Txn, set *RBSet)) {
	owner := s.part.Owner(k)
	set, fence := s.sets[owner], s.fence(owner)
	for try := 0; try < 1000; try++ {
		fenced := false
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			body(tx, set)
		})
		if !fenced {
			return
		}
	}
}

// scan runs one range scan through the fence protocol when it spans
// shards, or as a plain fenced transaction when localized.
func (s *ServiceHotKey) scan(r Runner, self int, lo, hi uint64) {
	parts := s.part.OwnersInRange(lo, hi)
	s.scanTotal.Add(1)
	if len(parts) == 1 {
		s.pointOp(r, self, lo, func(tx tm.Txn, set *RBSet) {
			set.AscendRange(tx, lo, hi, func(_, _ uint64) bool { return true })
		})
		return
	}
	s.scanFencedShards.Add(uint64(len(parts)))
	token := uint64(self) + 1
	for try := 0; try < 1000; try++ {
		if !s.acquireFences(r, self, parts, token) {
			continue
		}
		for _, p := range parts {
			set, fence := s.sets[p], s.fence(p)
			r.Atomic(self, func(tx tm.Txn) {
				set.AscendRange(tx, lo, hi, func(_, _ uint64) bool { return true })
				tx.Store(fence, 0)
			})
		}
		return
	}
}

// acquireFences claims every participant's fence in ascending shard
// order, releasing everything taken so far on any failure (abort-all).
func (s *ServiceHotKey) acquireFences(r Runner, self int, parts []int, token uint64) bool {
	acquired := 0
	for _, p := range parts {
		fence := s.fence(p)
		var got bool
		r.Atomic(self, func(tx tm.Txn) {
			got = false
			if tx.Load(fence) == 0 {
				tx.Store(fence, token)
				got = true
			}
		})
		if !got {
			for _, q := range parts[:acquired] {
				fq := s.fence(q)
				r.Atomic(self, func(tx tm.Txn) { tx.Store(fq, 0) })
			}
			return false
		}
		acquired++
	}
	return true
}

// crossBatch runs one cross-shard batch put through the commit protocol.
func (s *ServiceHotKey) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(s.keyRange))
	}
	parts := s.part.Participants(keys)
	s.crossBatches.Add(1)
	token := uint64(self) + 1
	for try := 0; try < 1000; try++ {
		if !s.acquireFences(r, self, parts, token) {
			continue
		}
		for _, p := range parts {
			set, fence := s.sets[p], s.fence(p)
			r.Atomic(self, func(tx tm.Txn) {
				for _, k := range keys {
					if s.part.Owner(k) == p {
						set.Insert(tx, self, k, n)
					}
				}
				tx.Store(fence, 0)
			})
		}
		return
	}
}

// Verify implements Verifier: every key must live in the store of the
// shard the active partitioner owns it with, and no fence may be left
// held.
func (s *ServiceHotKey) Verify(h *tm.Heap) error {
	seq := NewBareRunner(seqAlg(), h, 1)
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if tx.Load(s.fence(i)) != 0 {
				err = fmt.Errorf("service-hotkey: shard %d fence left held", i)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if o := s.part.Owner(k); o != i {
					err = fmt.Errorf("service-hotkey: key %d found on shard %d but owned by %d", k, i, o)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
