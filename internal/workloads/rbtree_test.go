package workloads_test

import (
	"testing"
	"testing/quick"

	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// rbCheck walks the tree directly (single-threaded, via raw heap reads) and
// validates the red-black invariants: root black, no red-red edges, equal
// black heights, and BST ordering. It returns the black height and key
// count.
func rbCheck(t *testing.T, h *tm.Heap, root tm.Addr) (blackHeight, size int) {
	t.Helper()
	const (
		rbKey    = 0
		rbLeft   = 2
		rbRight  = 3
		rbColor  = 5
		rbRed    = 0
		rbBlack  = 1
		maxKey   = ^uint64(0)
		unsetKey = uint64(0)
	)
	rootAddr := tm.Addr(h.LoadWord(root))
	if rootAddr == tm.NilAddr {
		return 0, 0
	}
	if h.LoadWord(rootAddr+rbColor) != rbBlack {
		t.Fatal("root is not black")
	}
	var walk func(n tm.Addr, lo, hi uint64) (int, int)
	walk = func(n tm.Addr, lo, hi uint64) (int, int) {
		if n == tm.NilAddr {
			return 1, 0
		}
		k := h.LoadWord(n + rbKey)
		if k < lo || k > hi {
			t.Fatalf("BST violation: key %d outside (%d, %d)", k, lo, hi)
		}
		c := h.LoadWord(n + rbColor)
		l := tm.Addr(h.LoadWord(n + rbLeft))
		r := tm.Addr(h.LoadWord(n + rbRight))
		if c == rbRed {
			for _, ch := range []tm.Addr{l, r} {
				if ch != tm.NilAddr && h.LoadWord(ch+rbColor) == rbRed {
					t.Fatal("red node with red child")
				}
			}
		}
		lbh, lsz := walk(l, lo, k)
		rbh, rsz := walk(r, k, hi)
		if lbh != rbh {
			t.Fatalf("black-height mismatch: %d vs %d", lbh, rbh)
		}
		bh := lbh
		if c == rbBlack {
			bh++
		}
		return bh, lsz + rsz + 1
	}
	bh, sz := walk(rootAddr, unsetKey, maxKey)
	return bh, sz
}

// TestRBSetInvariants property-tests the tree: a random operation sequence
// must preserve the red-black invariants and agree with a reference map.
func TestRBSetInvariants(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		h := tm.NewHeap(1<<18, 2)
		set, err := workloads.NewRBSet(h)
		if err != nil {
			t.Fatal(err)
		}
		runner := workloads.NewBareRunner(&stm.GlobalLock{}, h, 1)
		ref := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op % 512)
			switch op % 3 {
			case 0:
				runner.Atomic(0, func(tx tm.Txn) { set.Insert(tx, 0, k, k*3) })
				ref[k] = k * 3
			case 1:
				runner.Atomic(0, func(tx tm.Txn) { set.Delete(tx, 0, k) })
				delete(ref, k)
			default:
				var got bool
				runner.Atomic(0, func(tx tm.Txn) { got = set.Contains(tx, k) })
				_, want := ref[k]
				if got != want {
					t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
				}
			}
		}
		rootWord := tm.Addr(1) // NewRBSet allocates the root pointer first
		_, size := rbCheck(t, h, rootWord)
		if size != len(ref) {
			t.Fatalf("size %d, want %d", size, len(ref))
		}
		// Every reference key must be present with the right value.
		for k, v := range ref {
			var got uint64
			var ok bool
			runner.Atomic(0, func(tx tm.Txn) { got, ok = set.Get(tx, k) })
			if !ok || got != v {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRBTreeConcurrent hammers the tree from 8 threads under TL2 and
// validates the invariants afterwards.
func TestRBTreeConcurrent(t *testing.T) {
	h := tm.NewHeap(1<<20, 8)
	tree := &workloads.RBTree{KeyRange: 256, UpdateRatio: 0.8, InitialSize: 128}
	if err := tree.Setup(h, workloads.NewRand(42)); err != nil {
		t.Fatal(err)
	}
	runner := workloads.NewBareRunner(stm.TL2{}, h, 8)
	d := &workloads.Driver{Workload: tree, Runner: runner, MaxThreads: 8, Seed: 7}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for d.Ops() < 30000 {
	}
	d.Stop()
	rootWord := tm.Addr(1)
	_, size := rbCheck(t, h, rootWord)
	if size == 0 || size > 256 {
		t.Errorf("implausible tree size %d after concurrent run", size)
	}
}
