package workloads_test

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/polytm"
	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// all returns a fresh instance of every workload with small parameters.
func all() []workloads.Workload {
	return []workloads.Workload{
		&workloads.RBTree{KeyRange: 512, InitialSize: 128},
		&workloads.SkipList{KeyRange: 512, InitialSize: 128},
		&workloads.LinkedList{KeyRange: 128, InitialSize: 64},
		&workloads.HashMap{Buckets: 256, KeyRange: 1024, InitialSize: 256},
		&workloads.Genome{Segments: 1 << 10},
		&workloads.Intruder{Flows: 256},
		&workloads.KMeans{Clusters: 8, Dims: 4},
		&workloads.Labyrinth{GridSize: 1 << 12, PathLen: 64},
		&workloads.SSCA2{Vertices: 1 << 10},
		&workloads.Vacation{Relations: 512, Queries: 12},
		&workloads.Yada{Elements: 1 << 10, Cavity: 8},
		&workloads.Bayes{Nodes: 1 << 9},
		&workloads.STMBench7{Depth: 3, Fanout: 3},
		&workloads.TPCC{Warehouses: 2, Districts: 4, Customers: 32, Items: 1 << 10},
		&workloads.Memcached{Buckets: 256, KeyRange: 1 << 10},
	}
}

// TestWorkloadsRunUnderEveryBackend smoke-tests every workload under every
// TM backend via PolyTM dispatch with 4 threads.
func TestWorkloadsRunUnderEveryBackend(t *testing.T) {
	algs := []config.AlgID{config.TL2, config.TinySTM, config.NOrec, config.SwissTM, config.HTM, config.GlobalLock}
	for _, wl := range all() {
		wl := wl
		t.Run(wl.Name(), func(t *testing.T) {
			t.Parallel()
			pool := polytm.New(1<<21, 4, config.Config{Alg: config.TL2, Threads: 4, Budget: 5, Policy: htm.PolicyDecrease})
			if err := wl.Setup(pool.Heap(), workloads.NewRand(1)); err != nil {
				t.Fatal(err)
			}
			d := &workloads.Driver{Workload: wl, Runner: pool, MaxThreads: 4, Seed: 2}
			if err := d.Start(); err != nil {
				t.Fatal(err)
			}
			for _, alg := range algs {
				if err := pool.Reconfigure(config.Config{Alg: alg, Threads: 4, Budget: 5, Policy: htm.PolicyHalve}); err != nil {
					t.Fatal(err)
				}
				start := d.Ops()
				for d.Ops() < start+500 {
				}
			}
			d.Stop()
			if s := pool.SnapshotStats(); s.Commits == 0 {
				t.Error("no transactions committed")
			}
		})
	}
}

// TestSkipListAgainstReference property-tests the skip list against a map.
func TestSkipListAgainstReference(t *testing.T) {
	f := func(ops []uint16) bool {
		h := tm.NewHeap(1<<18, 2)
		sl := &workloads.SkipList{KeyRange: 256, InitialSize: 1}
		if err := sl.Setup(h, workloads.NewRand(3)); err != nil {
			t.Fatal(err)
		}
		runner := workloads.NewBareRunner(&stm.GlobalLock{}, h, 1)
		ref := map[uint64]bool{}
		// Setup inserted one random key; mirror it.
		// (InitialSize 1 with rng seed 3: reproduce by querying.)
		for k := uint64(1); k <= 256; k++ {
			k := k
			var in bool
			runner.Atomic(0, func(tx tm.Txn) { in = workloads.SkipListContains(sl, tx, k) })
			ref[k] = in
		}
		for _, op := range ops {
			k := uint64(op%256) + 1
			switch op % 3 {
			case 0:
				runner.Atomic(0, func(tx tm.Txn) { workloads.SkipListInsert(sl, tx, k) })
				ref[k] = true
			case 1:
				runner.Atomic(0, func(tx tm.Txn) { workloads.SkipListRemove(sl, tx, k) })
				ref[k] = false
			default:
				var got bool
				runner.Atomic(0, func(tx tm.Txn) { got = workloads.SkipListContains(sl, tx, k) })
				if got != ref[k] {
					t.Fatalf("skiplist Contains(%d) = %v, want %v", k, got, ref[k])
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHashMapAgainstReference property-tests the hash map against a map.
func TestHashMapAgainstReference(t *testing.T) {
	f := func(ops []uint16) bool {
		h := tm.NewHeap(1<<18, 2)
		hm := &workloads.HashMap{Buckets: 64, KeyRange: 512, InitialSize: 1}
		if err := hm.Setup(h, workloads.NewRand(5)); err != nil {
			t.Fatal(err)
		}
		runner := workloads.NewBareRunner(&stm.GlobalLock{}, h, 1)
		ref := map[uint64]uint64{}
		for k := uint64(1); k <= 512; k++ {
			var v uint64
			var ok bool
			kk := k
			runner.Atomic(0, func(tx tm.Txn) { v, ok = workloads.HashMapGet(hm, tx, kk) })
			if ok {
				ref[k] = v
			}
		}
		for i, op := range ops {
			k := uint64(op%512) + 1
			switch op % 3 {
			case 0:
				v := uint64(i) + 1000
				runner.Atomic(0, func(tx tm.Txn) { workloads.HashMapPut(hm, tx, k, v) })
				ref[k] = v
			case 1:
				runner.Atomic(0, func(tx tm.Txn) { workloads.HashMapDel(hm, tx, k) })
				delete(ref, k)
			default:
				var got uint64
				var ok bool
				runner.Atomic(0, func(tx tm.Txn) { got, ok = workloads.HashMapGet(hm, tx, k) })
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("hashmap Get(%d) = (%d,%v), want (%d,%v)", k, got, ok, want, wok)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTPCCConsistency checks a money-style invariant: district YTD totals
// equal warehouse YTD totals after concurrent payments.
func TestTPCCConsistency(t *testing.T) {
	h := tm.NewHeap(1<<21, 8)
	tp := &workloads.TPCC{Warehouses: 2, Districts: 4, Customers: 64, Items: 1 << 10}
	if err := tp.Setup(h, workloads.NewRand(9)); err != nil {
		t.Fatal(err)
	}
	runner := workloads.NewBareRunner(stm.SwissTM{}, h, 8)
	d := &workloads.Driver{Workload: tp, Runner: runner, MaxThreads: 8, Seed: 10}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for d.Ops() < 20000 {
	}
	d.Stop()
	wSum := workloads.TPCCWarehouseYTD(tp, h)
	dSum := workloads.TPCCDistrictYTD(tp, h)
	if wSum != dSum {
		t.Errorf("warehouse YTD %d != district YTD %d", wSum, dSum)
	}
	if wSum == 0 {
		t.Error("no payments executed")
	}
}
