// Command proteustrain performs RecTM's off-line profiling step (Algorithm
// 2, line 1): it measures the scenario registry across the tuned
// configuration space on THIS machine and writes the resulting Utility
// Matrix as CSV (rows = scenarios, columns = configurations, entries =
// committed transactions per second, header = configuration labels).
//
// It is a thin wrapper over `proteusbench sweep` in timed mode; the
// resulting file can be loaded with proteustm.WithTrainingMatrix (after
// cf.ReadCSV) to auto-tune against measured rather than modeled data, and
// an interrupted run resumes from its journal.
//
// Usage:
//
//	proteustrain -out um.csv -window 200ms -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/scenario"
)

func main() {
	out := flag.String("out", "um.csv", "output CSV path")
	window := flag.Duration("window", 200*time.Millisecond, "measurement window per (scenario, config)")
	threads := flag.Int("threads", 8, "maximum worker threads")
	flag.Parse()

	res, err := scenario.Sweep(scenario.SweepSpec{
		MaxThreads: *threads,
		Window:     *window,
		Journal:    *out + ".journal",
		Progress:   os.Stderr,
	})
	if err == nil {
		err = writeCSV(res, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteustrain:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %dx%d utility matrix to %s (%d measured, %d reused)\n",
		res.UM.Rows, res.UM.Cols, *out, res.Measured, res.Reused)
}

func writeCSV(res *scenario.SweepResult, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteCSV(f)
}
