package workloads

import "repro/internal/tm"

// This file ports the eight STAMP applications (Cao Minh et al., IISWC
// 2008) as kernels that preserve each benchmark's transactional profile —
// transaction length, read/write-set size and contention — on the
// transactional heap. The application logic is simplified (no I/O, fixed
//-point instead of floating point where needed) but every shared-memory
// interaction runs through real transactions on real shared structures.

// --- genome: gene sequencing ----------------------------------------------------

// Genome models the segment-deduplication and overlap-matching phases:
// segments are inserted into a shared hash set (dedup), then linked into
// chains through a shared table — short-to-medium transactions, low
// contention, moderately read-heavy.
type Genome struct {
	Segments int

	table *HashMap
	chain tm.Addr // chain head table
	n     int
}

// Name implements Workload.
func (g *Genome) Name() string { return "genome" }

// Setup implements Workload.
func (g *Genome) Setup(h *tm.Heap, rng *Rand) error {
	g.n = g.Segments
	if g.n <= 0 {
		g.n = 1 << 14
	}
	g.table = &HashMap{Buckets: 1 << 12, KeyRange: g.n * 4, InitialSize: 1}
	if err := g.table.Setup(h, rng); err != nil {
		return err
	}
	base, err := h.Alloc(g.n)
	if err != nil {
		return err
	}
	g.chain = base
	return nil
}

// Op implements Workload: dedup-insert a batch of segments, then link one
// overlap chain entry.
func (g *Genome) Op(r Runner, self int, rng *Rand) {
	seg := uint64(rng.Intn(g.n*4)) + 1
	r.Atomic(self, func(tx tm.Txn) {
		g.table.put(tx, self, seg, seg)
		g.table.get(tx, seg^0x5bd1e995)
	})
	slot := tm.Addr(rng.Intn(g.n))
	r.Atomic(self, func(tx tm.Txn) {
		cur := tx.Load(g.chain + slot)
		tx.Store(g.chain+slot, cur+seg)
	})
	Spin(2)
}

// --- intruder: network intrusion detection ---------------------------------------

// Intruder models packet reassembly: fragments arrive for random flows;
// a transaction appends the fragment to its flow and, when the flow
// completes, retires it — short transactions with a contended flow table.
type Intruder struct {
	Flows     int
	FragsPer  int
	flowBase  tm.Addr // per-flow fragment counters
	doneBase  tm.Addr // per-flow retirement markers
	completed tm.Addr // global completed counter
}

// Name implements Workload.
func (in *Intruder) Name() string { return "intruder" }

// Setup implements Workload.
func (in *Intruder) Setup(h *tm.Heap, rng *Rand) error {
	if in.Flows <= 0 {
		in.Flows = 1 << 10
	}
	if in.FragsPer <= 0 {
		in.FragsPer = 8
	}
	var err error
	if in.flowBase, err = h.Alloc(in.Flows); err != nil {
		return err
	}
	if in.doneBase, err = h.Alloc(in.Flows); err != nil {
		return err
	}
	if in.completed, err = h.Alloc(8); err != nil {
		return err
	}
	return nil
}

// Op implements Workload.
func (in *Intruder) Op(r Runner, self int, rng *Rand) {
	flow := tm.Addr(rng.Intn(in.Flows))
	r.Atomic(self, func(tx tm.Txn) {
		frags := tx.Load(in.flowBase+flow) + 1
		if frags >= uint64(in.FragsPer) {
			tx.Store(in.flowBase+flow, 0)
			tx.Store(in.doneBase+flow, tx.Load(in.doneBase+flow)+1)
			tx.Store(in.completed, tx.Load(in.completed)+1)
		} else {
			tx.Store(in.flowBase+flow, frags)
		}
	})
	// Detection pass: read-only scan of a window of flows.
	start := tm.Addr(rng.Intn(in.Flows - 16))
	r.Atomic(self, func(tx tm.Txn) {
		var sum uint64
		for i := tm.Addr(0); i < 16; i++ {
			sum += tx.Load(in.doneBase + start + i)
		}
		_ = sum
	})
	Spin(1)
}

// --- kmeans: clustering ----------------------------------------------------------

// KMeans models the cluster-update phase: each operation assigns a point to
// its nearest center and transactionally updates the center's accumulator —
// tiny write transactions all contending on K centers.
type KMeans struct {
	Clusters int
	Dims     int
	centers  tm.Addr // K × (Dims+1) accumulator words
}

// Name implements Workload.
func (k *KMeans) Name() string { return "kmeans" }

// Setup implements Workload.
func (k *KMeans) Setup(h *tm.Heap, rng *Rand) error {
	if k.Clusters <= 0 {
		k.Clusters = 16
	}
	if k.Dims <= 0 {
		k.Dims = 8
	}
	var err error
	k.centers, err = h.Alloc(k.Clusters * (k.Dims + 1))
	return err
}

// Op implements Workload.
func (k *KMeans) Op(r Runner, self int, rng *Rand) {
	// Distance computation happens outside the transaction.
	point := make([]uint64, 0, 8)
	for d := 0; d < k.Dims; d++ {
		point = append(point, rng.Next()%1024)
	}
	Spin(4)
	c := tm.Addr(rng.Intn(k.Clusters)) * tm.Addr(k.Dims+1)
	r.Atomic(self, func(tx tm.Txn) {
		for d := 0; d < k.Dims; d++ {
			a := k.centers + c + tm.Addr(d)
			tx.Store(a, tx.Load(a)+point[d])
		}
		cnt := k.centers + c + tm.Addr(k.Dims)
		tx.Store(cnt, tx.Load(cnt)+1)
	})
}

// --- labyrinth: path routing ------------------------------------------------------

// Labyrinth models maze routing: a transaction reads a corridor of grid
// cells and claims a path through free ones — very long transactions with
// large write sets that overflow any HTM capacity, the canonical
// STM-only workload.
type Labyrinth struct {
	GridSize int
	PathLen  int
	grid     tm.Addr
}

// Name implements Workload.
func (l *Labyrinth) Name() string { return "labyrinth" }

// Setup implements Workload.
func (l *Labyrinth) Setup(h *tm.Heap, rng *Rand) error {
	if l.GridSize <= 0 {
		l.GridSize = 1 << 16
	}
	if l.PathLen <= 0 {
		l.PathLen = 192
	}
	var err error
	l.grid, err = h.Alloc(l.GridSize)
	return err
}

// Op implements Workload: route one path.
func (l *Labyrinth) Op(r Runner, self int, rng *Rand) {
	start := rng.Intn(l.GridSize - l.PathLen*2)
	r.Atomic(self, func(tx tm.Txn) {
		pos := tm.Addr(start)
		for i := 0; i < l.PathLen; i++ {
			cell := tx.Load(l.grid + pos)
			if cell == 0 {
				tx.Store(l.grid+pos, uint64(self)+1)
			}
			pos += 1 + tm.Addr(i%2) // wander
		}
	})
	// Periodically clear a region (path teardown) to keep the grid usable.
	if rng.Intn(4) == 0 {
		clearStart := tm.Addr(rng.Intn(l.GridSize - l.PathLen*2))
		r.Atomic(self, func(tx tm.Txn) {
			for i := tm.Addr(0); i < tm.Addr(l.PathLen); i++ {
				tx.Store(l.grid+clearStart+i, 0)
			}
		})
	}
	Spin(8)
}

// --- ssca2: graph kernel -----------------------------------------------------------

// SSCA2 models graph construction (kernel 1): insert directed edges into
// per-vertex adjacency counters — very short transactions, negligible
// contention, embarrassingly scalable.
type SSCA2 struct {
	Vertices int
	adj      tm.Addr
}

// Name implements Workload.
func (s *SSCA2) Name() string { return "ssca2" }

// Setup implements Workload.
func (s *SSCA2) Setup(h *tm.Heap, rng *Rand) error {
	if s.Vertices <= 0 {
		s.Vertices = 1 << 16
	}
	var err error
	s.adj, err = h.Alloc(s.Vertices * 2)
	return err
}

// Op implements Workload.
func (s *SSCA2) Op(r Runner, self int, rng *Rand) {
	u := tm.Addr(rng.Intn(s.Vertices))
	v := tm.Addr(rng.Intn(s.Vertices))
	r.Atomic(self, func(tx tm.Txn) {
		tx.Store(s.adj+u*2, tx.Load(s.adj+u*2)+1)
		tx.Store(s.adj+v*2+1, tx.Load(s.adj+v*2+1)+uint64(u))
	})
}

// --- vacation: travel reservations ---------------------------------------------------

// Vacation models the travel reservation system: each operation is one
// client session that queries several items across the flight/room/car
// tables and makes or cancels a reservation — medium transactions,
// read-dominated, low contention.
type Vacation struct {
	Relations int // rows per table
	Queries   int // items touched per session
	tables    [3]tm.Addr
	customers tm.Addr
}

// Name implements Workload.
func (v *Vacation) Name() string { return "vacation" }

// Setup implements Workload.
func (v *Vacation) Setup(h *tm.Heap, rng *Rand) error {
	if v.Relations <= 0 {
		v.Relations = 1 << 13
	}
	if v.Queries <= 0 {
		v.Queries = 24
	}
	for i := range v.tables {
		base, err := h.Alloc(v.Relations * 2) // (free, price) per row
		if err != nil {
			return err
		}
		v.tables[i] = base
		for rrow := 0; rrow < v.Relations; rrow++ {
			h.StoreWord(base+tm.Addr(rrow*2), 100)
			h.StoreWord(base+tm.Addr(rrow*2+1), uint64(rng.Intn(500)+100))
		}
	}
	var err error
	v.customers, err = h.Alloc(v.Relations)
	return err
}

// Op implements Workload.
func (v *Vacation) Op(r Runner, self int, rng *Rand) {
	customer := tm.Addr(rng.Intn(v.Relations))
	action := rng.Intn(100)
	r.Atomic(self, func(tx tm.Txn) {
		// Query phase: find the cheapest available item per table.
		var bestRow [3]tm.Addr
		for t := 0; t < 3; t++ {
			bestPrice := uint64(1 << 62)
			for q := 0; q < v.Queries/3; q++ {
				row := tm.Addr(rng.Intn(v.Relations))
				free := tx.Load(v.tables[t] + row*2)
				price := tx.Load(v.tables[t] + row*2 + 1)
				if free > 0 && price < bestPrice {
					bestPrice = price
					bestRow[t] = row
				}
			}
		}
		if action < 80 { // make reservation
			t := rng.Intn(3)
			row := bestRow[t]
			free := tx.Load(v.tables[t] + row*2)
			if free > 0 {
				tx.Store(v.tables[t]+row*2, free-1)
				tx.Store(v.customers+customer, tx.Load(v.customers+customer)+1)
			}
		} else { // cancel
			held := tx.Load(v.customers + customer)
			if held > 0 {
				t := rng.Intn(3)
				row := bestRow[t]
				tx.Store(v.tables[t]+row*2, tx.Load(v.tables[t]+row*2)+1)
				tx.Store(v.customers+customer, held-1)
			}
		}
	})
	Spin(2)
}

// --- yada: Delaunay mesh refinement ---------------------------------------------------

// Yada models mesh refinement: a transaction claims a "bad triangle",
// reads its cavity (a neighbourhood of elements) and rewrites it — long
// transactions with medium-large write sets and moderate conflicts.
type Yada struct {
	Elements int
	Cavity   int
	mesh     tm.Addr
	workq    tm.Addr
}

// Name implements Workload.
func (y *Yada) Name() string { return "yada" }

// Setup implements Workload.
func (y *Yada) Setup(h *tm.Heap, rng *Rand) error {
	if y.Elements <= 0 {
		y.Elements = 1 << 15
	}
	if y.Cavity <= 0 {
		y.Cavity = 24
	}
	var err error
	if y.mesh, err = h.Alloc(y.Elements); err != nil {
		return err
	}
	y.workq, err = h.Alloc(8)
	return err
}

// Op implements Workload.
func (y *Yada) Op(r Runner, self int, rng *Rand) {
	center := rng.Intn(y.Elements - y.Cavity*2)
	r.Atomic(self, func(tx tm.Txn) {
		// Read the cavity.
		quality := uint64(0)
		for i := 0; i < y.Cavity*2; i++ {
			quality += tx.Load(y.mesh + tm.Addr(center+i))
		}
		// Retriangulate: rewrite half the cavity.
		for i := 0; i < y.Cavity; i++ {
			a := y.mesh + tm.Addr(center+i*2)
			tx.Store(a, quality%(uint64(i)+7)+1)
		}
		tx.Store(y.workq, tx.Load(y.workq)+1)
	})
	Spin(6)
}

// --- bayes: structure learning ----------------------------------------------------------

// Bayes models Bayesian-network structure learning: long read-dominated
// transactions scoring candidate edges against a shared adtree, with rare
// graph mutations — the longest transactions in STAMP.
type Bayes struct {
	Nodes  int
	adtree tm.Addr
	graph  tm.Addr
}

// Name implements Workload.
func (b *Bayes) Name() string { return "bayes" }

// Setup implements Workload.
func (b *Bayes) Setup(h *tm.Heap, rng *Rand) error {
	if b.Nodes <= 0 {
		b.Nodes = 1 << 12
	}
	var err error
	if b.adtree, err = h.Alloc(b.Nodes * 4); err != nil {
		return err
	}
	for i := 0; i < b.Nodes*4; i++ {
		h.StoreWord(b.adtree+tm.Addr(i), uint64(rng.Intn(1000)))
	}
	b.graph, err = h.Alloc(b.Nodes)
	return err
}

// Op implements Workload.
func (b *Bayes) Op(r Runner, self int, rng *Rand) {
	node := rng.Intn(b.Nodes - 256)
	r.Atomic(self, func(tx tm.Txn) {
		// Score: long read-only scan of the adtree region.
		score := uint64(0)
		for i := 0; i < 256; i++ {
			score += tx.Load(b.adtree + tm.Addr(node*2+i))
		}
		// Occasionally commit a structure change.
		if score%16 == 0 {
			tx.Store(b.graph+tm.Addr(node), score)
		}
	})
	Spin(4)
}
