package scenario

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/config"
)

// runPinned runs spec twice, checks the two records are byte-identical,
// pins the first against the named golden (regenerate with
// UPDATE_GOLDEN=1), and returns it.
func runPinned(t *testing.T, name string, spec RunSpec) Result {
	t.Helper()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("%s: two runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", name, ja, jb)
	}
	golden := fmt.Sprintf("testdata/%s.golden", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, ja, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
	}
	if !bytes.Equal(ja, want) {
		t.Errorf("%s record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s", name, golden, ja, want)
	}
	return a[0]
}

// hotkeySpec is the pinned parameterization of the hot-key placement A/B:
// the identical sliding-Zipf hostile stream replayed under both placement
// policies.
func hotkeySpec(partitioner string) RunSpec {
	return RunSpec{
		Scenario: "service-hotkey",
		Params: Values{
			"partitioner": partitioner,
			"shards":      "4",
			"keyrange":    "4096",
			"hotspan":     "512",
			"moveevery":   "500",
			"span":        "64",
			"mix":         "scan",
			"batchevery":  "64",
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceHotKeyPlacementAB pins the hostile hot-key acceptance
// criteria: byte-stable per-leg goldens, an identical op stream across
// placement policies, and strictly better hot-spot locality (fewer owner
// switches) under range placement than under hashing.
func TestServiceHotKeyPlacementAB(t *testing.T) {
	results := map[string]Result{}
	for _, kind := range []string{"hash", "range"} {
		r := runPinned(t, "service_hotkey_"+kind, hotkeySpec(kind))
		if r.Commits == 0 || r.HeapDigest == "" {
			t.Fatalf("%s: empty measurement: %+v", kind, r)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("%s: record carries no workload metrics", kind)
		}
		results[kind] = r
	}

	hash, rng := results["hash"], results["range"]
	// Identical op stream: all draw-dependent counters agree exactly;
	// only placement-dependent observables may differ.
	for _, key := range []string{"hot_ops", "uniform_ops", "head_moves", "scan_total", "cross_batches"} {
		if hash.Metrics[key] != rng.Metrics[key] {
			t.Errorf("op streams diverged: %s = %d (hash) vs %d (range)", key, hash.Metrics[key], rng.Metrics[key])
		}
	}
	if hash.Ops != rng.Ops {
		t.Errorf("op budgets diverged: %d vs %d", hash.Ops, rng.Ops)
	}
	// The locality inequality: under range placement the contiguous Zipf
	// window keeps the hot spot on one shard between head moves, so
	// consecutive hot draws switch owners far less often than under
	// hashing, and scans fence fewer shards.
	if rng.Metrics["owner_switches"] >= hash.Metrics["owner_switches"] {
		t.Errorf("range placement switched hot-key owners %d times, hash %d — want strictly fewer",
			rng.Metrics["owner_switches"], hash.Metrics["owner_switches"])
	}
	if rng.Metrics["scan_fenced_shards"] >= hash.Metrics["scan_fenced_shards"] {
		t.Errorf("range placement fenced %d shards, hash %d — want strictly fewer",
			rng.Metrics["scan_fenced_shards"], hash.Metrics["scan_fenced_shards"])
	}
	t.Logf("hot-spot locality: hash switched owners %d times, range %d (of %d hot ops, %d head moves)",
		hash.Metrics["owner_switches"], rng.Metrics["owner_switches"],
		rng.Metrics["hot_ops"], rng.Metrics["head_moves"])
}

// sloSpec is the pinned parameterization of the ThroughputUnderSLO A/B:
// one deterministic pinned-mix stream scored by the serving model, tuned
// either for raw capacity or for throughput subject to a p99 target.
//
// With OpCost 50µs and a conflict-free serial stream (attempts = 1) the
// modeled operating points are: TL2:2t — 34.8k ops/s capacity, 0.074 ms
// p99 at the offered rate; TL2:4t — 55.2k, 0.085 ms; TL2:8t — 78.0k,
// 0.115 ms. A 0.095 ms target therefore splits the space: the capacity
// tuner should take TL2:8t (highest capacity, target missed), the SLO
// tuner TL2:4t (highest capacity among target-meeting points).
func sloSpec(sloTune bool) RunSpec {
	return RunSpec{
		Scenario: "service-slo",
		Params: Values{
			"keyrange": "4096",
			"span":     "64",
			"mix":      "scan-heavy",
		},
		Seed:       42,
		MaxThreads: 8,
		HeapWords:  1 << 20,
		Ops:        6000,
		OpCost:     50 * time.Microsecond,
		AutoTune:   true,
		Space: []config.Config{
			{Alg: config.TL2, Threads: 2},
			{Alg: config.TL2, Threads: 4},
			{Alg: config.TL2, Threads: 8},
		},
		SLOOfferedRate: 2000,
		SLOTargetMs:    0.095,
		SLOTune:        sloTune,
		ExploreEpsilon: -1, // sweep all three operating points every phase
	}
}

// TestServiceSLOTuningAB pins the ThroughputUnderSLO acceptance criteria:
// byte-stable goldens for both tuning legs, diverging installed-config
// traces, the SLO leg meeting the p99 target in every steady window, and
// strictly higher SLO attainment than the capacity leg.
func TestServiceSLOTuningAB(t *testing.T) {
	capacity := runPinned(t, "service_slo_capacity", sloSpec(false))
	slo := runPinned(t, "service_slo_tuned", sloSpec(true))

	if capacity.FinalConfig == slo.FinalConfig {
		t.Errorf("tuning legs converged on %s — want the capacity and SLO tuners to install different configs", capacity.FinalConfig)
	}
	if slo.SLOAttainment <= capacity.SLOAttainment {
		t.Errorf("SLO attainment: slo leg %.3f, capacity leg %.3f — want strictly higher under SLO tuning",
			slo.SLOAttainment, capacity.SLOAttainment)
	}
	target := 0.095
	for _, s := range slo.Samples {
		if !s.Exploring && s.P99Ms > target {
			t.Errorf("SLO leg steady window at ops=%d has p99 %.4f ms > target %.4f ms", s.Ops, s.P99Ms, target)
		}
	}
	if slo.SLOAttainment != 1 {
		t.Errorf("SLO leg attainment = %.3f, want 1.0", slo.SLOAttainment)
	}
	t.Logf("capacity leg installed %s (attainment %.2f), SLO leg %s (attainment %.2f)",
		capacity.FinalConfig, capacity.SLOAttainment, slo.FinalConfig, slo.SLOAttainment)
}

// diurnalSpec is the pinned parameterization of the monitor-churn A/B:
// the diurnal rate curve with its sub-band ripple, watched either by the
// default gated monitor or by a dwell-free, band-free control monitor.
func diurnalSpec(gated bool) RunSpec {
	spec := RunSpec{
		Scenario: "service-diurnal",
		Params: Values{
			"keyrange": "1024",
			"span":     "16",
		},
		Seed:        42,
		MaxThreads:  4,
		HeapWords:   1 << 20,
		Ops:         24000,
		SampleEvery: 150,
		AutoTune:    true,
		Space: []config.Config{
			{Alg: config.TL2, Threads: 1},
			{Alg: config.TL2, Threads: 2},
			{Alg: config.TL2, Threads: 4},
		},
	}
	if !gated {
		spec.MonitorMinDwell = -1
		spec.MonitorBand = -1
	}
	return spec
}

// TestServiceDiurnalDwellAB pins the monitor-churn acceptance criterion:
// on the identical diurnal curve the dwell/hysteresis-gated monitor runs
// strictly fewer optimization phases than the ungated control, because
// the control also re-tunes on every sub-band ripple edge.
func TestServiceDiurnalDwellAB(t *testing.T) {
	gated := runPinned(t, "service_diurnal_gated", diurnalSpec(true))
	control := runPinned(t, "service_diurnal_control", diurnalSpec(false))

	if gated.Phases < 2 {
		t.Errorf("gated leg ran %d phases — want >= 2 (it must still react to the genuine busy/idle transitions)", gated.Phases)
	}
	if control.Phases <= gated.Phases {
		t.Errorf("reconfiguration churn: control %d phases, gated %d — want strictly more without the dwell/band gates",
			control.Phases, gated.Phases)
	}
	t.Logf("optimization phases: gated %d, ungated control %d (over %d ops, %s periods)",
		gated.Phases, control.Phases, gated.Ops, gated.Params["periodops"])
}
