package workloads

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/tm"
)

// ServiceOpMix is one traffic mix of the proteusd serving layer: the
// fractions of get/put/delete/cas/range operations a client population
// issues against the key-value store. The same mixes parameterize the
// `proteusbench loadgen` phases (over HTTP) and the `service` scenario
// family (in-process, deterministic), so a loadgen session against the
// daemon and a `proteusbench run --scenario service-kv` record exercise
// the same transactional behaviour.
type ServiceOpMix struct {
	// Name labels the mix in phase specs and reports.
	Name string
	// Get, Put, Del, CAS and Range are operation fractions; they should
	// sum to 1 (Normalize fixes up small drift).
	Get, Put, Del, CAS, Range float64
}

// Normalize rescales the fractions to sum to 1 (a zero mix becomes
// all-gets).
func (m ServiceOpMix) Normalize() ServiceOpMix {
	sum := m.Get + m.Put + m.Del + m.CAS + m.Range
	if sum <= 0 {
		return ServiceOpMix{Name: m.Name, Get: 1}
	}
	m.Get /= sum
	m.Put /= sum
	m.Del /= sum
	m.CAS /= sum
	m.Range /= sum
	return m
}

// The named service mixes. read-heavy is a cache-like lookup mix,
// write-heavy flips the store into a mutation-dominated regime (inserts,
// deletes and CAS read-modify-writes), and scan issues long range reads
// whose large read sets overflow best-effort HTM — three regimes with
// different optimal TM configurations, which is what makes a phase shift
// between them trigger the monitor.
var serviceMixes = map[string]ServiceOpMix{
	"read-heavy":  {Name: "read-heavy", Get: 0.90, Put: 0.06, Del: 0.02, CAS: 0.02},
	"write-heavy": {Name: "write-heavy", Get: 0.20, Put: 0.35, Del: 0.25, CAS: 0.20},
	"scan":        {Name: "scan", Get: 0.28, Put: 0.02, Range: 0.70},
	// scan-heavy is almost pure range reads: the partitioner A/B mix,
	// where placement (hash scatter vs. contiguous spans) dominates the
	// fence count of a sharded deployment.
	"scan-heavy": {Name: "scan-heavy", Get: 0.06, Put: 0.04, Range: 0.90},
	"mixed":      {Name: "mixed", Get: 0.50, Put: 0.25, Del: 0.15, CAS: 0.10},
}

// ServiceMixByName returns a named service mix (read-heavy, write-heavy,
// scan, scan-heavy or mixed).
func ServiceMixByName(name string) (ServiceOpMix, error) {
	m, ok := serviceMixes[name]
	if !ok {
		return ServiceOpMix{}, fmt.Errorf("workloads: unknown service mix %q (have %s)", name, strings.Join(ServiceMixNames(), ", "))
	}
	return m, nil
}

// ServiceMixNames returns the sorted names of the built-in service mixes.
func ServiceMixNames() []string {
	out := make([]string, 0, len(serviceMixes))
	for name := range serviceMixes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ServicePhase is one segment of a phased service trace: a mix and how
// many operations it lasts.
type ServicePhase struct {
	// Mix is the operation mix during the phase.
	Mix ServiceOpMix
	// Ops is the phase length in operations (the last phase runs until
	// the budget is exhausted regardless).
	Ops uint64
}

// ServiceKV replays proteusd's key-value traffic shape as a closed
// workload: a red-black-tree store exercised through a sequence of
// operation-mix phases that shift at fixed operation counts. It is the
// in-process, deterministic twin of a `proteusbench loadgen` session —
// the workload behind the `service-kv` scenario.
type ServiceKV struct {
	// Label overrides the workload name (default "service-kv"); the
	// registry uses it to distinguish the phased and steady scenarios.
	Label string
	// KeyRange bounds the keys (default 1 << 14).
	KeyRange int
	// InitialSize pre-populates the store (default KeyRange/2).
	InitialSize int
	// Span is the width of a range scan (default 256).
	Span int
	// Phases is the phase schedule; empty means the canonical
	// read-heavy → write-heavy → scan shift at thirds of PhaseOps each.
	Phases []ServicePhase
	// PhaseOps is the default per-phase length used when Phases is empty
	// (default 7000, ≈ a third of the harness's default 20000-op budget).
	PhaseOps uint64

	set *RBSet
	ops atomic.Uint64

	// Resolved by Setup so Op stays allocation-free on the hot path.
	keyRange, span int
	phases         []ServicePhase
}

// Name implements Workload.
func (s *ServiceKV) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-kv"
}

func (s *ServiceKV) params() (keyRange, initial, span int, phases []ServicePhase) {
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	span = s.Span
	if span <= 0 {
		span = 256
	}
	phases = s.Phases
	if len(phases) == 0 {
		per := s.PhaseOps
		if per == 0 {
			per = 7000
		}
		phases = []ServicePhase{
			{Mix: serviceMixes["read-heavy"], Ops: per},
			{Mix: serviceMixes["write-heavy"], Ops: per},
			{Mix: serviceMixes["scan"], Ops: per},
		}
	}
	return
}

// Setup implements Workload.
func (s *ServiceKV) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	s.keyRange, initial, s.span, s.phases = s.params()
	set, err := NewRBSet(h)
	if err != nil {
		return err
	}
	s.set = set
	s.ops.Store(0)
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		seq.Atomic(0, func(tx tm.Txn) { s.set.Insert(tx, 0, k, k) })
	}
	return nil
}

// phase returns the mix in force at global operation count n.
func (s *ServiceKV) phase(n uint64) ServiceOpMix {
	for _, p := range s.phases {
		if n < p.Ops {
			return p.Mix
		}
		n -= p.Ops
	}
	return s.phases[len(s.phases)-1].Mix
}

// Op implements Workload: one service request under the mix the global
// operation counter selects. The counter is shared across worker slots so
// the phase schedule tracks total served traffic, exactly like wall-clock
// phases of a loadgen session track total offered traffic.
func (s *ServiceKV) Op(r Runner, self int, rng *Rand) {
	mix := s.phase(s.ops.Add(1) - 1)
	k := uint64(rng.Intn(s.keyRange))
	p := rng.Float64()
	switch {
	case p < mix.Get:
		r.Atomic(self, func(tx tm.Txn) { s.set.Get(tx, k) })
	case p < mix.Get+mix.Put:
		r.Atomic(self, func(tx tm.Txn) { s.set.Insert(tx, self, k, k) })
	case p < mix.Get+mix.Put+mix.Del:
		r.Atomic(self, func(tx tm.Txn) { s.set.Delete(tx, self, k) })
	case p < mix.Get+mix.Put+mix.Del+mix.CAS:
		// Read-modify-write: bump the value if the key is present.
		r.Atomic(self, func(tx tm.Txn) {
			if v, ok := s.set.Get(tx, k); ok {
				s.set.Insert(tx, self, k, v+1)
			}
		})
	default:
		hi := k + uint64(s.span)
		r.Atomic(self, func(tx tm.Txn) {
			n := 0
			s.set.AscendRange(tx, k, hi, func(_, _ uint64) bool {
				n++
				return true
			})
		})
	}
}

// Set exposes the underlying store (for validation in tests).
func (s *ServiceKV) Set() *RBSet { return s.set }
