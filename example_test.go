package proteustm_test

import (
	"fmt"
	"time"

	proteustm "repro"
)

// ExampleOpen demonstrates the minimal ProteusTM program: one worker
// incrementing a transactional counter.
func ExampleOpen() {
	sys, err := proteustm.Open(proteustm.WithWorkers(1), proteustm.WithHeapWords(1<<12))
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	counter := sys.MustAlloc(1)
	w, _ := sys.Worker(0)
	for i := 0; i < 10; i++ {
		w.Atomic(func(tx proteustm.Txn) {
			tx.Store(counter, tx.Load(counter)+1)
		})
	}
	fmt.Println(sys.Load(counter))
	// Output: 10
}

// ExampleSystem_SetConfig shows manual configuration control: the same
// atomic block runs under different TM backends.
func ExampleSystem_SetConfig() {
	sys, err := proteustm.Open(proteustm.WithWorkers(2), proteustm.WithHeapWords(1<<12))
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	a := sys.MustAlloc(1)
	w, _ := sys.Worker(0)
	for _, cfg := range []proteustm.Config{
		{Alg: proteustm.NOrec, Threads: 2},
		{Alg: proteustm.SwissTM, Threads: 2},
	} {
		if err := sys.SetConfig(cfg); err != nil {
			panic(err)
		}
		w.Atomic(func(tx proteustm.Txn) {
			tx.Store(a, tx.Load(a)+1)
		})
	}
	fmt.Println(sys.Load(a), sys.CurrentConfig().Alg == proteustm.SwissTM)
	// Output: 2 true
}

// ExampleWithAutoTuning enables the RecTM adapter thread: workers run
// plain atomic blocks while the runtime explores configurations, installs
// the best one, and logs every decision to the reconfiguration event log.
func ExampleWithAutoTuning() {
	sys, err := proteustm.Open(
		proteustm.WithWorkers(4),
		proteustm.WithHeapWords(1<<14),
		proteustm.WithAutoTuning(),
		proteustm.WithSamplePeriod(10*time.Millisecond),
		proteustm.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	counter := sys.MustAlloc(1)
	for i := 0; i < 4; i++ {
		if err := sys.Spawn(func(w *proteustm.Worker) {
			for j := 0; j < 2000; j++ {
				w.Atomic(func(tx proteustm.Txn) {
					tx.Store(counter, tx.Load(counter)+1)
				})
			}
		}); err != nil {
			panic(err)
		}
	}
	sys.Wait()
	// The startup optimization phase begins as soon as the adapter
	// starts; wait for it so Phases/Reconfigurations are populated.
	for sys.Phases() == 0 || sys.Exploring() {
		time.Sleep(time.Millisecond)
	}
	sys.Close()
	fmt.Println(sys.Load(counter) == 8000, sys.Phases() >= 1, len(sys.Reconfigurations()) >= 1)
	// Output: true true true
}

// ExampleSystem_Spawn runs a worker body on each free slot and waits.
func ExampleSystem_Spawn() {
	sys, err := proteustm.Open(proteustm.WithWorkers(4), proteustm.WithHeapWords(1<<12))
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	sum := sys.MustAlloc(1)
	for i := 0; i < 4; i++ {
		share := uint64(i + 1)
		if err := sys.Spawn(func(w *proteustm.Worker) {
			w.Atomic(func(tx proteustm.Txn) {
				tx.Store(sum, tx.Load(sum)+share)
			})
		}); err != nil {
			panic(err)
		}
	}
	sys.Wait()
	fmt.Println(sys.Load(sum))
	// Output: 10
}
