// TPC-C-lite: an OLTP workload on the public ProteusTM API.
//
// Implements a compact version of the paper's TPC-C port — warehouses,
// districts, customers and stock live in transactional memory, and each
// business transaction is one atomic block. The example compares a few
// static configurations and verifies the money invariant (warehouse YTD ==
// district YTD) at the end.
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	proteustm "repro"
)

const (
	workers    = 8
	warehouses = 4
	districts  = 8
	customers  = 128
	items      = 1 << 12
)

// table layout inside the transactional heap
type tables struct {
	wYTD  proteustm.Addr // warehouses
	dYTD  proteustm.Addr // districts (ytd, nextOID) pairs
	cBal  proteustm.Addr // customer balances
	stock proteustm.Addr // item stock levels
}

func setup(sys *proteustm.System) tables {
	t := tables{
		wYTD:  sys.MustAlloc(warehouses),
		dYTD:  sys.MustAlloc(warehouses * districts * 2),
		cBal:  sys.MustAlloc(warehouses * districts * customers),
		stock: sys.MustAlloc(items),
	}
	for i := 0; i < items; i++ {
		sys.Store(t.stock+proteustm.Addr(i), 10000)
	}
	return t
}

func (t tables) district(w, d int) proteustm.Addr {
	return t.dYTD + proteustm.Addr((w*districts+d)*2)
}

// payment credits a warehouse+district and debits a customer.
func (t tables) payment(tx proteustm.Txn, w, d, c int, amount uint64) {
	tx.Store(t.wYTD+proteustm.Addr(w), tx.Load(t.wYTD+proteustm.Addr(w))+amount)
	da := t.district(w, d)
	tx.Store(da, tx.Load(da)+amount)
	ca := t.cBal + proteustm.Addr((w*districts+d)*customers+c)
	tx.Store(ca, tx.Load(ca)+amount)
}

// newOrder picks items and decrements stock.
func (t tables) newOrder(tx proteustm.Txn, rng *uint64) {
	n := 5 + int(*rng%6)
	for i := 0; i < n; i++ {
		*rng ^= *rng << 13
		*rng ^= *rng >> 7
		*rng ^= *rng << 17
		it := proteustm.Addr(*rng % items)
		q := tx.Load(t.stock + it)
		if q == 0 {
			q = 10000
		}
		tx.Store(t.stock+it, q-1)
	}
}

func main() {
	sys, err := proteustm.Open(
		proteustm.WithWorkers(workers),
		proteustm.WithHeapWords(1<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	t := setup(sys)

	for _, cfg := range []proteustm.Config{
		{Alg: proteustm.GlobalLock, Threads: 1},
		{Alg: proteustm.NOrec, Threads: 4},
		{Alg: proteustm.SwissTM, Threads: workers},
		{Alg: proteustm.HTM, Threads: workers, Budget: 8},
	} {
		if err := sys.SetConfig(cfg); err != nil {
			log.Fatal(err)
		}
		before := sys.Stats().Commits
		var wg sync.WaitGroup
		stopAt := time.Now().Add(500 * time.Millisecond)
		for w := 0; w < workers; w++ {
			wk, err := sys.Worker(w)
			if err != nil {
				log.Fatal(err)
			}
			wg.Add(1)
			go func(wk *proteustm.Worker, seed uint64) {
				defer wg.Done()
				rng := seed
				for time.Now().Before(stopAt) {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					w := int(rng % warehouses)
					d := int((rng >> 8) % districts)
					c := int((rng >> 16) % customers)
					if rng%100 < 55 {
						wk.Atomic(func(tx proteustm.Txn) { t.payment(tx, w, d, c, 10) })
					} else {
						wk.Atomic(func(tx proteustm.Txn) { t.newOrder(tx, &rng) })
					}
				}
			}(wk, uint64(w+7))
		}
		// With Threads < workers some goroutines are parked by the
		// thread gate; re-open it once the deadline passes so they can
		// observe it and exit.
		time.Sleep(time.Until(stopAt) + 20*time.Millisecond)
		full := cfg
		full.Threads = workers
		if err := sys.SetConfig(full); err != nil {
			log.Fatal(err)
		}
		wg.Wait()
		done := sys.Stats().Commits - before
		fmt.Printf("%-20s committed %7d transactions in 500ms\n", cfg.String(), done)
	}

	// Invariant: every payment credited warehouse and district equally.
	var wSum, dSum uint64
	for w := 0; w < warehouses; w++ {
		wSum += sys.Load(t.wYTD + proteustm.Addr(w))
		for d := 0; d < districts; d++ {
			dSum += sys.Load(t.district(w, d))
		}
	}
	if wSum != dSum {
		log.Fatalf("invariant broken: warehouse YTD %d != district YTD %d", wSum, dSum)
	}
	fmt.Printf("money invariant holds: warehouse YTD == district YTD == %d\n", wSum)
}
