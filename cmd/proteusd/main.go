// Command proteusd is the ProteusTM data service: a long-running daemon
// exposing the transactional heap as a concurrent key-value / deque store
// over HTTP+JSON, with the RecTM adapter retuning the TM backend, the
// parallelism degree and the HTM contention management underneath the
// traffic. Operators watch the adaptation live on /statusz.
//
// Usage:
//
//	proteusd [--addr 127.0.0.1:7411] [--workers 8] [--queue 1024]
//	    [--autotune=true] [--sample-period 100ms] [--seed 42]
//	    [--heap-words 4194304] [--preload 8192]
//
// Endpoints (all parameters are uint64 query parameters):
//
//	GET  /healthz                      liveness probe
//	GET  /statusz                      tuner timeline, config, abort rates, serving metrics
//	GET  /kv/get?key=K                 point read
//	POST /kv/put?key=K&val=V           insert or update
//	POST /kv/del?key=K                 delete
//	POST /kv/cas?key=K&old=O&new=N     compare-and-swap
//	GET  /kv/range?lo=L&hi=H           range count/sum (span clamped)
//	POST /list/lpush?val=V  /list/rpush?val=V
//	POST /list/lpop  /list/rpop
//	GET  /list/len
//
// Drive it with `proteusbench loadgen` and see docs/serving.md for the
// operator guide.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	workers := flag.Int("workers", 8, "worker slots (ceiling of the tuned parallelism degree)")
	queue := flag.Int("queue", 1024, "admission queue depth (overflow returns HTTP 429)")
	autotune := flag.Bool("autotune", true, "run the RecTM adapter thread over live traffic")
	samplePeriod := flag.Duration("sample-period", 100*time.Millisecond, "monitor KPI sampling period")
	seed := flag.Uint64("seed", 42, "tuning machinery seed")
	heapWords := flag.Int("heap-words", 1<<22, "transactional heap size in 64-bit words")
	preload := flag.Int("preload", 8192, "pre-populate keys 0..n-1 before serving")
	maxScan := flag.Uint64("max-scan-span", 4096, "clamp on /kv/range spans")
	flag.Parse()

	logger := log.New(os.Stderr, "proteusd: ", log.LstdFlags|log.Lmicroseconds)
	srv, err := serve.New(serve.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		AutoTune:     *autotune,
		SamplePeriod: *samplePeriod,
		Seed:         *seed,
		HeapWords:    *heapWords,
		Preload:      *preload,
		MaxScanSpan:  *maxScan,
		Logf:         logger.Printf,
	})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}
	logger.Printf("serving on http://%s (workers=%d queue=%d autotune=%v preload=%d, initial config %s)",
		*addr, *workers, *queue, *autotune, *preload, srv.System().CurrentConfig())

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %s, draining", sig)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("listen: %v", err)
			srv.Close() //nolint:errcheck // already failing
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
		os.Exit(1)
	}
	status := srv.StatusSnapshot()
	fmt.Fprintf(os.Stderr, "proteusd: clean shutdown: %d ops served, %d commits, %d optimization phases, final config %s\n",
		status.Ops.Total, status.TM.Commits, status.Config.Phases, status.Config.Current)
}
