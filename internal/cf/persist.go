package cf

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the matrix as CSV: one row per workload, one column
// per configuration, empty cells for missing entries. An optional header of
// column labels is emitted first when labels is non-nil. Utility matrices
// are the system's training artifact, so they need a durable interchange
// format (the paper's off-line profiling step produces exactly this).
func (m *Matrix) WriteCSV(w io.Writer, labels []string) error {
	cw := csv.NewWriter(w)
	if labels != nil {
		if len(labels) != m.Cols {
			return fmt.Errorf("cf: %d labels for %d columns", len(labels), m.Cols)
		}
		if err := cw.Write(labels); err != nil {
			return err
		}
	}
	record := make([]string, m.Cols)
	for _, row := range m.Data {
		for i, v := range row {
			if IsMissing(v) {
				// "NaN" rather than an empty field: a row of empty
				// fields in a one-column matrix would serialize as a
				// blank line, which CSV readers skip.
				record[i] = "NaN"
			} else {
				record[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a matrix written by WriteCSV. When header is true the
// first record is returned as column labels.
func ReadCSV(r io.Reader, header bool) (*Matrix, []string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("cf: reading CSV: %w", err)
	}
	var labels []string
	if header {
		if len(records) == 0 {
			return nil, nil, fmt.Errorf("cf: empty CSV")
		}
		labels = records[0]
		records = records[1:]
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("cf: CSV has no data rows")
	}
	cols := len(records[0])
	m := NewMatrix(len(records), cols)
	for u, rec := range records {
		if len(rec) != cols {
			return nil, nil, fmt.Errorf("cf: row %d has %d fields, want %d", u, len(rec), cols)
		}
		for i, field := range rec {
			if field == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("cf: row %d col %d: %w", u, i, err)
			}
			m.Data[u][i] = v
		}
	}
	return m, labels, nil
}
