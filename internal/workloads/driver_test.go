package workloads_test

import (
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// TestDriverLifecycle covers start/stop/measure and error paths.
func TestDriverLifecycle(t *testing.T) {
	h := tm.NewHeap(1<<16, 2)
	wl := &workloads.HashMap{Buckets: 64, KeyRange: 256, InitialSize: 32}
	if err := wl.Setup(h, workloads.NewRand(4)); err != nil {
		t.Fatal(err)
	}
	d := &workloads.Driver{
		Workload:   wl,
		Runner:     workloads.NewBareRunner(stm.TL2{}, h, 2),
		MaxThreads: 2,
		Seed:       5,
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Error("double Start must fail")
	}
	x := d.MeasureThroughput(30 * time.Millisecond)
	if x <= 0 {
		t.Errorf("throughput = %f, want positive", x)
	}
	d.Stop()
	d.Stop() // idempotent
	if d.Ops() == 0 {
		t.Error("no operations recorded")
	}

	bad := &workloads.Driver{Workload: wl, Runner: d.Runner, MaxThreads: 0}
	if err := bad.Start(); err == nil {
		t.Error("MaxThreads=0 must fail")
	}
}

// TestKMeansAccumulatorConsistency: each cluster's per-dimension sums are
// committed atomically with the count, so sums must be consistent with the
// number of updates (every update adds < 1024 per dimension).
func TestKMeansAccumulatorConsistency(t *testing.T) {
	h := tm.NewHeap(1<<12, 4)
	km := &workloads.KMeans{Clusters: 4, Dims: 4}
	if err := km.Setup(h, workloads.NewRand(2)); err != nil {
		t.Fatal(err)
	}
	runner := workloads.NewBareRunner(stm.SwissTM{}, h, 4)
	d := &workloads.Driver{Workload: km, Runner: runner, MaxThreads: 4, Seed: 3}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for d.Ops() < 5000 {
	}
	d.Stop()
	sums, counts := workloads.KMeansAccumulators(km, h)
	for c := range counts {
		for dim, s := range sums[c] {
			if counts[c] == 0 {
				if s != 0 {
					t.Errorf("cluster %d has sum without updates", c)
				}
				continue
			}
			if s/counts[c] >= 1024 {
				t.Errorf("cluster %d dim %d mean %d out of range (torn update?)", c, dim, s/counts[c])
			}
		}
	}
}

// TestInterferenceStartStop exercises every antagonist kind.
func TestInterferenceStartStop(t *testing.T) {
	for _, k := range []workloads.InterferenceKind{workloads.StressCPU, workloads.StressMemory, workloads.StressAlloc} {
		inf := &workloads.Interference{Kind: k, Workers: 2}
		inf.Start()
		time.Sleep(10 * time.Millisecond)
		inf.Stop()
		if k.String() == "?" {
			t.Errorf("missing name for kind %d", k)
		}
	}
}
