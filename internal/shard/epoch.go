package shard

import "sync/atomic"

// Epoched is the atomically-swappable placement the serving layer routes
// with once resharding exists: a Partitioner paired with a monotonically
// increasing epoch, swapped as one unit. Every router, coordinator and
// recovery path loads the pair once per operation, stamps the epoch into
// the work it derives from the placement, and downstream checks compare
// epochs instead of partitioner pointers — a stale epoch names exactly
// the placement the work was computed under.
//
// The zero Epoched is not usable; build one with NewEpoched.
type Epoched struct {
	cur atomic.Pointer[epochedPlacement]
}

type epochedPlacement struct {
	epoch uint64
	p     Partitioner
}

// NewEpoched wraps p as epoch 0 — the placement the fleet booted with.
func NewEpoched(p Partitioner) *Epoched {
	e := &Epoched{}
	e.cur.Store(&epochedPlacement{epoch: 0, p: p})
	return e
}

// Load returns the current placement and its epoch as one consistent
// pair. Callers that route must stamp the returned epoch into the work
// they derive, so a later flip is detectable.
func (e *Epoched) Load() (Partitioner, uint64) {
	c := e.cur.Load()
	return c.p, c.epoch
}

// Epoch returns the current placement epoch.
func (e *Epoched) Epoch() uint64 { return e.cur.Load().epoch }

// Install atomically replaces the placement with p under the next epoch
// and returns that epoch. The caller must have published every resource
// the new placement can route to (grown fleet slice, migrated data)
// before calling Install: readers load the placement first, so anything
// it names must already exist.
func (e *Epoched) Install(p Partitioner) uint64 {
	for {
		old := e.cur.Load()
		next := &epochedPlacement{epoch: old.epoch + 1, p: p}
		if e.cur.CompareAndSwap(old, next) {
			return next.epoch
		}
	}
}

// SplitPlan is one executable rebalance step: cut the donor's widest
// span at its midpoint and hand the upper half — keys in [MovedLo,
// MovedHi], inclusive — to NewShard. Grown is the placement to install
// once the span's keys have migrated.
type SplitPlan struct {
	// Donor is the heaviest shard, the one losing the span's upper half.
	Donor int
	// NewShard is the recipient: always the current shard count, so
	// installing the plan grows the fleet by exactly one.
	NewShard int
	// MovedLo and MovedHi bound the migrating keys, inclusive on both
	// ends (MovedHi is ^uint64(0) when the split span is the key space's
	// top span).
	MovedLo, MovedHi uint64
	// Grown is the post-split placement.
	Grown *RangePartitioner
}

// PlanSplitHeaviest is SplitHeaviest as an executable migration plan:
// the same deterministic heaviest-shard/widest-span/midpoint-cut
// decision, plus the moved key interval a migrator must copy before the
// plan is installed. It reports ok=false exactly when SplitHeaviest
// would — all-zero or empty load, or no span of the heaviest shard wide
// enough to cut — and callers must treat that as an explicit no-op, not
// install a degenerate split.
func (p *RangePartitioner) PlanSplitHeaviest(load []uint64) (SplitPlan, bool) {
	heaviest, best := -1, uint64(0)
	for s := 0; s < p.n && s < len(load); s++ {
		if heaviest == -1 || load[s] > best {
			heaviest, best = s, load[s]
		}
	}
	if heaviest < 0 || best == 0 {
		return SplitPlan{}, false
	}
	i := p.widest(heaviest)
	if i < 0 {
		return SplitPlan{}, false
	}
	grown, ok := p.split(i, p.n)
	if !ok {
		return SplitPlan{}, false
	}
	// The new span is grown's span i+1: [mid, next start) as an
	// inclusive interval, running to the top of the key space when the
	// cut span was the last one.
	movedLo := grown.starts[i+1]
	movedHi := ^uint64(0)
	if i+2 < len(grown.starts) {
		movedHi = grown.starts[i+2] - 1
	}
	return SplitPlan{
		Donor:    heaviest,
		NewShard: p.n,
		MovedLo:  movedLo,
		MovedHi:  movedHi,
		Grown:    grown,
	}, true
}
