// Autotuning: RecTM's monitor → explore → install loop as a thin scenario
// invocation, in deterministic mode — the run below prints the same
// exploration trace, the same installed configuration and the same heap
// digest every time it executes, because the harness serializes operations
// against a virtual clock (docs/experimentation.md explains why that
// matters for controlled experiments).
//
// The equivalent CLI run is:
//
//	proteusbench run --scenario rbtree --param update=0.4,keyrange=256 \
//	    --autotune --seed 7 --ops 60000
//
//	go run ./examples/autotuning
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	spec := scenario.RunSpec{
		Scenario:   "rbtree",
		Params:     scenario.Values{"update": "0.4", "keyrange": "256"},
		Seed:       7,
		AutoTune:   true,
		MaxThreads: 8,
		Ops:        60000,
	}
	results, err := scenario.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Printf("auto-tuned %s over %d ops (%d optimization phase(s))\n\n", r.Scenario, r.Ops, r.Phases)
	fmt.Println("installed-configuration trace:")
	for _, e := range r.Trace {
		fmt.Printf("  op %6d  %-8s %s\n", e.Ops, e.Event, e.Config)
	}
	fmt.Printf("\nfinal config %s, commit rate %.0f tx/s (virtual), abort rate %.4f\n",
		r.FinalConfig, r.CommitRate, r.AbortRate)
	fmt.Printf("heap digest %s\n", r.HeapDigest)

	// Re-run the identical spec: deterministic mode guarantees the same
	// trace and the same end state.
	again, err := scenario.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reproducible: %v (second run digest %s)\n",
		again[0].HeapDigest == r.HeapDigest, again[0].HeapDigest)
}
