// Package core assembles the complete ProteusTM runtime: PolyTM's
// polymorphic execution underneath, RecTM's recommender + SMBO controller
// deciding configurations, and the CUSUM Monitor watching the KPI stream for
// workload or environment changes (Fig. 2 of the paper).
//
// The runtime drives the online loop of §6.4: on startup (and whenever the
// Monitor raises an alarm) it enters an exploration phase, profiling a
// handful of configurations chosen by Expected Improvement, installs the
// best explored configuration, and returns to steady-state monitoring.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/monitor"
	"repro/internal/polytm"
	"repro/internal/rectm"
	"repro/internal/smbo"
	"repro/internal/tm"
)

// KPI selects the online key performance indicator being optimized.
type KPI int

const (
	// Throughput maximizes committed transactions per second.
	Throughput KPI = iota
	// ThroughputPerJoule maximizes energy efficiency (Fig. 1a's KPI),
	// using the machine's power model.
	ThroughputPerJoule
	// ThroughputUnderSLO maximizes throughput subject to a p99 latency
	// target: windows whose observed p99 (Options.LatencyP99) stays at or
	// under Options.SLOTargetMs score their raw throughput, windows that
	// blow the target are penalized quadratically in the overshoot (see
	// SLOPenalizedKPI). A serving layer sells a tail-latency objective,
	// not a commit rate, so this is the KPI proteusd tunes when an SLO is
	// configured.
	ThroughputUnderSLO
)

// HigherIsBetter reports the KPI orientation (all online KPIs maximize).
func (k KPI) HigherIsBetter() bool { return true }

// SLOPenalizedKPI folds a p99 latency observation into a throughput KPI:
// at or under the target the throughput passes through untouched; over the
// target it is scaled by (target/p99)², so a config that doubles the
// allowed tail keeps only a quarter of its throughput score. The quadratic
// penalty makes any config that meets the SLO beat any config that misses
// it unless the miss is marginal and the throughput gap is large — exactly
// the preference order an SLO-bound operator wants. Both the serving
// layer's wall-clock tuner and the deterministic scenario harness score
// windows through this one function.
func SLOPenalizedKPI(tput, p99Ms, targetMs float64) float64 {
	if targetMs <= 0 || p99Ms <= targetMs {
		return tput
	}
	r := targetMs / p99Ms
	return tput * r * r
}

// Options configures a Runtime.
type Options struct {
	// HeapWords sizes the transactional heap.
	HeapWords int
	// MaxThreads is the number of worker slots (≥ the largest thread
	// count in Configs).
	MaxThreads int
	// Configs is the tuned configuration space (columns of the UM).
	Configs []config.Config
	// TrainKPI is the offline training Utility Matrix in KPI space
	// (rows: training workloads, columns aligned with Configs).
	TrainKPI *cf.Matrix
	// KPI selects the optimization target.
	KPI KPI
	// Energy is the power model for ThroughputPerJoule.
	Energy energy.Model
	// SLOTargetMs is the p99 latency target in milliseconds for
	// ThroughputUnderSLO (required for that KPI; ignored otherwise).
	SLOTargetMs float64
	// LatencyP99 supplies the observed p99 latency in milliseconds for
	// ThroughputUnderSLO windows — the serving layer wires it to its
	// request-latency reservoir. Nil degrades ThroughputUnderSLO to plain
	// Throughput (no latency signal, no penalty).
	LatencyP99 func() float64
	// OpsSource supplies a monotonic count of service-level operations
	// completed. When set, KPI windows use its delta as the throughput
	// numerator instead of raw TM commits — required when a serving layer
	// coalesces many operations into one transaction (group commit),
	// which otherwise deflates and jitters the commit-rate signal with
	// queue depth and churns the monitor.
	OpsSource func() uint64
	// MonitorMinDwell overrides the change detector's minimum dwell
	// (samples after a re-anchor before alarms may fire): 0 keeps the
	// monitor default, positive sets that many samples, negative disables
	// the gate.
	MonitorMinDwell int
	// MonitorBand overrides the change detector's relative hysteresis
	// band: 0 keeps the monitor default, positive sets the band, negative
	// disables the gate.
	MonitorBand float64
	// SamplePeriod is the Monitor's KPI sampling period (default 100 ms;
	// the paper uses 1 s).
	SamplePeriod time.Duration
	// SettleTime is the wait after a reconfiguration before measuring
	// (default SamplePeriod/2).
	SettleTime time.Duration
	// Epsilon is the SMBO stopping threshold (default 0.01).
	Epsilon float64
	// MaxExplorations bounds each exploration phase (default 10).
	MaxExplorations int
	// Seed drives randomized components.
	Seed uint64
	// Clock is the time source for KPI windows and settle waits (default
	// the wall clock). Supply a *VirtualClock to replay the adaptation
	// loop deterministically; in that mode drive the runtime through the
	// synchronous API (Observe, ExploreSync, ResetMonitor) instead of
	// Start, whose sampling ticker is inherently wall-clock.
	Clock Clock
}

// TimelinePoint is one KPI observation, recorded for experiment plots.
type TimelinePoint struct {
	At        time.Duration
	KPI       float64
	Config    config.Config
	Exploring bool
}

// ReconfigEvent records one completed optimization phase: which
// configuration was installed, what it replaced, and why the phase ran.
// Serving layers surface this log so operators can see the adapter react
// to workload shifts.
type ReconfigEvent struct {
	// At is the event time relative to Start (zero-based for runtimes
	// driven synchronously before Start).
	At time.Duration
	// From and To are the configurations before and after the phase; a
	// phase may re-install the incumbent (From == To).
	From, To config.Config
	// Reason is "startup", "monitor-alarm", "forced" or "sync"
	// (synchronous harness-driven exploration).
	Reason string
	// Phase is the 1-based optimization-phase number.
	Phase int
}

// Runtime is a live ProteusTM instance.
type Runtime struct {
	Pool *polytm.Pool
	Rec  *rectm.Recommender

	opts    Options
	cfgs    []config.Config
	cus     *monitor.CUSUM
	clock   Clock
	started time.Time

	mu         sync.Mutex
	timeline   []TimelinePoint
	reconfigs  []ReconfigEvent
	phases     int
	exploring  atomic.Bool
	reoptimize chan struct{}
	stop       chan struct{}
	done       sync.WaitGroup

	lastStats tm.Stats
	lastTime  time.Time
	lastOps   uint64
}

// New builds the runtime: trains the recommender on the offline UM and
// creates the PolyTM pool in the recommender's reference configuration.
func New(opts Options) (*Runtime, error) {
	if len(opts.Configs) == 0 {
		return nil, fmt.Errorf("core: no configurations")
	}
	if opts.TrainKPI == nil || opts.TrainKPI.Cols != len(opts.Configs) {
		return nil, fmt.Errorf("core: training matrix must have one column per configuration")
	}
	if opts.HeapWords <= 0 {
		opts.HeapWords = 1 << 22
	}
	if opts.MaxThreads <= 0 {
		for _, c := range opts.Configs {
			if c.Threads > opts.MaxThreads {
				opts.MaxThreads = c.Threads
			}
		}
	}
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = 100 * time.Millisecond
	}
	if opts.SettleTime <= 0 {
		opts.SettleTime = opts.SamplePeriod / 2
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.01
	}
	if opts.MaxExplorations == 0 {
		opts.MaxExplorations = 10
	}
	if opts.Clock == nil {
		opts.Clock = RealTime()
	}
	rec, err := rectm.Train(opts.TrainKPI, opts.KPI.HigherIsBetter(), rectm.Options{Seed: opts.Seed, Learners: 10})
	if err != nil {
		return nil, fmt.Errorf("core: training recommender: %w", err)
	}
	initial := opts.Configs[rec.RefCol()]
	pool := polytm.New(opts.HeapWords, opts.MaxThreads, initial)
	cus := monitor.NewCUSUM()
	if opts.MonitorMinDwell != 0 {
		cus.MinDwell = max(opts.MonitorMinDwell, 0)
	}
	if opts.MonitorBand != 0 {
		cus.Band = math.Max(opts.MonitorBand, 0)
	}
	return &Runtime{
		Pool:       pool,
		Rec:        rec,
		opts:       opts,
		cfgs:       opts.Configs,
		clock:      opts.Clock,
		cus:        cus,
		reoptimize: make(chan struct{}, 1),
		stop:       make(chan struct{}),
	}, nil
}

// Heap exposes the transactional heap for application setup.
func (rt *Runtime) Heap() *tm.Heap { return rt.Pool.Heap() }

// Atomic executes an atomic block on worker slot self.
func (rt *Runtime) Atomic(self int, fn func(tm.Txn)) { rt.Pool.Atomic(self, fn) }

// Start launches the adapter thread: an immediate optimization phase
// followed by steady-state monitoring.
func (rt *Runtime) Start() {
	rt.started = rt.clock.Now()
	rt.lastStats = rt.Pool.SnapshotStats()
	rt.lastTime = rt.started
	if rt.opts.OpsSource != nil {
		rt.lastOps = rt.opts.OpsSource()
	}
	rt.done.Add(1)
	go rt.adapterLoop()
}

// Stop terminates the adapter thread.
func (rt *Runtime) Stop() {
	close(rt.stop)
	rt.done.Wait()
}

// ForceReoptimize triggers a new exploration phase (used by tests; the
// Monitor triggers it autonomously in production).
func (rt *Runtime) ForceReoptimize() {
	select {
	case rt.reoptimize <- struct{}{}:
	default:
	}
}

// Timeline returns a copy of the KPI timeline.
func (rt *Runtime) Timeline() []TimelinePoint {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]TimelinePoint, len(rt.timeline))
	copy(out, rt.timeline)
	return out
}

// Reconfigurations returns a copy of the optimization-phase event log.
func (rt *Runtime) Reconfigurations() []ReconfigEvent {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]ReconfigEvent, len(rt.reconfigs))
	copy(out, rt.reconfigs)
	return out
}

// recordReconfig appends one optimization-phase event.
func (rt *Runtime) recordReconfig(from, to config.Config, reason string, phase int) {
	at := time.Duration(0)
	if !rt.started.IsZero() {
		at = rt.clock.Now().Sub(rt.started)
	}
	rt.mu.Lock()
	rt.reconfigs = append(rt.reconfigs, ReconfigEvent{At: at, From: from, To: to, Reason: reason, Phase: phase})
	rt.mu.Unlock()
}

// Phases returns the number of optimization phases run so far.
func (rt *Runtime) Phases() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.phases
}

// Exploring reports whether an exploration phase is in progress.
func (rt *Runtime) Exploring() bool { return rt.exploring.Load() }

// adapterLoop is the adapter thread (§4): optimize, then monitor.
func (rt *Runtime) adapterLoop() {
	defer rt.done.Done()
	rt.optimizePhase("startup")
	ticker := time.NewTicker(rt.opts.SamplePeriod)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-rt.reoptimize:
			rt.optimizePhase("forced")
		case <-ticker.C:
			kpi := rt.measureWindow()
			rt.record(kpi, false)
			if rt.cus.Observe(kpi) {
				rt.optimizePhase("monitor-alarm")
			}
		}
	}
}

// optimizePhase runs one SMBO exploration and installs the winner.
func (rt *Runtime) optimizePhase(reason string) {
	rt.exploring.Store(true)
	rt.mu.Lock()
	rt.phases++
	phase := rt.phases
	seed := rt.opts.Seed + uint64(rt.phases)*0x9E3779B97F4A7C15
	rt.mu.Unlock()
	before := rt.Pool.Config()

	res := rt.Rec.Optimize(func(i int) float64 {
		return rt.profileConfig(rt.cfgs[i])
	}, nil, smbo.Options{
		Policy:          smbo.EI,
		Stop:            smbo.StopCautious,
		Epsilon:         rt.opts.Epsilon,
		MaxExplorations: rt.opts.MaxExplorations,
		Seed:            seed,
	})
	if res.Best >= 0 {
		rt.Pool.Reconfigure(rt.cfgs[res.Best]) //nolint:errcheck // validated configs
	}
	rt.recordReconfig(before, rt.Pool.Config(), reason, phase)
	rt.exploring.Store(false)
	// Re-anchor the detector on the installed configuration's level.
	settle := rt.measureWindowAfter(rt.opts.SettleTime)
	rt.cus.Reset(settle)
	rt.record(settle, false)
}

// profileConfig installs cfg, lets the system settle, and measures one KPI
// window.
func (rt *Runtime) profileConfig(cfg config.Config) float64 {
	if err := rt.Pool.Reconfigure(cfg); err != nil {
		return 0
	}
	kpi := rt.measureWindowAfter(rt.opts.SettleTime)
	rt.record(kpi, true)
	return kpi
}

// measureWindowAfter waits the settle time, resets the window, and measures
// one sampling period.
func (rt *Runtime) measureWindowAfter(settle time.Duration) float64 {
	rt.sleep(settle)
	rt.resetWindow()
	rt.sleep(rt.opts.SamplePeriod)
	return rt.measureWindow()
}

func (rt *Runtime) sleep(d time.Duration) {
	if _, virtual := rt.clock.(*VirtualClock); virtual {
		rt.clock.Sleep(d)
		return
	}
	select {
	case <-time.After(d):
	case <-rt.stop:
	}
}

// resetWindow re-anchors the stats window.
func (rt *Runtime) resetWindow() {
	rt.lastStats = rt.Pool.SnapshotStats()
	rt.lastTime = rt.clock.Now()
	if rt.opts.OpsSource != nil {
		rt.lastOps = rt.opts.OpsSource()
	}
}

// measureWindow computes the KPI over the stats window since the last call.
func (rt *Runtime) measureWindow() float64 {
	now := rt.clock.Now()
	cur := rt.Pool.SnapshotStats()
	win := cur.Sub(rt.lastStats)
	elapsed := now.Sub(rt.lastTime)
	rt.lastStats = cur
	rt.lastTime = now
	if elapsed <= 0 {
		return 0
	}
	// The throughput numerator defaults to committed transactions; an
	// OpsSource (service-level operation counter) replaces it so group
	// commit — many operations per transaction — cannot starve the KPI.
	num := float64(win.Commits)
	if rt.opts.OpsSource != nil {
		curOps := rt.opts.OpsSource()
		num = float64(curOps - rt.lastOps)
		rt.lastOps = curOps
	}
	tput := num / elapsed.Seconds()
	switch rt.opts.KPI {
	case ThroughputPerJoule:
		s := energy.Sample{
			Elapsed: elapsed,
			Threads: rt.Pool.Config().Threads,
			Commits: win.Commits,
			Aborts:  win.Aborts,
		}
		return rt.opts.Energy.ThroughputPerJoule(s)
	case ThroughputUnderSLO:
		if rt.opts.LatencyP99 == nil {
			return tput
		}
		return SLOPenalizedKPI(tput, rt.opts.LatencyP99(), rt.opts.SLOTargetMs)
	default:
		return tput
	}
}

// record appends a timeline point.
func (rt *Runtime) record(kpi float64, exploring bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.timeline = append(rt.timeline, TimelinePoint{
		At:        rt.clock.Now().Sub(rt.started),
		KPI:       kpi,
		Config:    rt.Pool.Config(),
		Exploring: exploring,
	})
}

// --- Synchronous (virtual-time) driving ------------------------------------------
//
// The adapter thread above is wall-clock driven: KPI windows are real time
// and exploration happens on a background goroutine, so two runs of the
// same program never produce the same trace. The methods below expose the
// same monitor → explore → install loop synchronously, letting a harness
// (internal/scenario) interleave operation execution, virtual-time KPI
// measurement, and exploration on one goroutine — which makes the whole
// adaptation trace a deterministic function of the seed.

// Observe feeds one steady-state KPI sample to the CUSUM monitor and
// reports whether it raised a change alarm (at which point the caller
// should run ExploreSync).
func (rt *Runtime) Observe(kpi float64) bool { return rt.cus.Observe(kpi) }

// ResetMonitor re-anchors the change detector at the given KPI level, as
// the adapter thread does after installing a new configuration.
func (rt *Runtime) ResetMonitor(level float64) { rt.cus.Reset(level) }

// Configs returns the tuned configuration space (the UM columns).
func (rt *Runtime) Configs() []config.Config { return rt.cfgs }

// ExploreSync runs one exploration phase synchronously: the recommender
// picks candidate configurations by Expected Improvement, measure profiles
// each one (installing it, running the workload, and returning the KPI —
// all on the calling goroutine), and the best explored configuration is
// installed. Seeding matches the adapter thread's optimizePhase, so a
// fixed Options.Seed yields an identical exploration sequence.
func (rt *Runtime) ExploreSync(measure func(config.Config) float64) rectm.OptResult {
	rt.exploring.Store(true)
	rt.mu.Lock()
	rt.phases++
	phase := rt.phases
	seed := rt.opts.Seed + uint64(rt.phases)*0x9E3779B97F4A7C15
	rt.mu.Unlock()
	before := rt.Pool.Config()

	res := rt.Rec.Optimize(func(i int) float64 {
		return measure(rt.cfgs[i])
	}, nil, smbo.Options{
		Policy:          smbo.EI,
		Stop:            smbo.StopCautious,
		Epsilon:         rt.opts.Epsilon,
		MaxExplorations: rt.opts.MaxExplorations,
		Seed:            seed,
	})
	if res.Best >= 0 {
		rt.Pool.Reconfigure(rt.cfgs[res.Best]) //nolint:errcheck // validated configs
	}
	rt.recordReconfig(before, rt.Pool.Config(), "sync", phase)
	rt.exploring.Store(false)
	return res
}
