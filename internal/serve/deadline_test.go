package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestCancellationStormNeverExecutes pins the deadline/cancellation gate
// deterministically: with the queue workers stopped, a queue full of
// operations whose clients hang up (and a second queue full of operations
// whose deadlines pass) must all be dropped at dequeue — answered
// 499/504, counted shed_deadline, and never executed against the store.
func TestCancellationStormNeverExecutes(t *testing.T) {
	const n = 16
	s, err := newServer(Options{Workers: 2, QueueDepth: 64, HeapWords: 1 << 18, Deadline: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}

	// Storm A: n puts to distinct keys whose clients cancel while queued.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	codes := make(chan int, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := s.submit(s.fleet()[0], &request{op: opPut, key: uint64(1000 + i), val: 1, ctx: ctx})
			codes <- code
		}(i)
	}
	waitQueueLen(t, s.fleet()[0], n)
	cancel()
	wg.Wait() // every submitter came back 499 before any worker ran
	for i := 0; i < n; i++ {
		if code := <-codes; code != 499 {
			t.Fatalf("canceled submission = HTTP %d, want 499", code)
		}
	}

	// Storm B: n more puts whose server-default deadline (5 ms) passes
	// while they sit in the queue. These submitters stay parked on the
	// reply channel, so they must be answered 504 by the drop path.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := s.submit(s.fleet()[0], &request{op: opPut, key: uint64(2000 + i), val: 1})
			codes <- code
		}(i)
	}
	waitQueueLen(t, s.fleet()[0], 2*n)
	time.Sleep(10 * time.Millisecond) // let every storm-B deadline lapse

	s.startWorkers()
	wg.Wait()
	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusGatewayTimeout {
			t.Fatalf("deadline-expired submission = HTTP %d, want 504", code)
		}
	}

	// The gate's books: every stormed op was dropped, none executed.
	waitShedDeadline(t, s, 2*n)
	if got := s.totalServed(); got != 0 {
		t.Fatalf("served %d operations, want 0 — an expired queued op executed", got)
	}
	for i := 0; i < 2*n; i++ {
		k := uint64(1000 + i)
		if i >= n {
			k = uint64(2000 + i - n)
		}
		resp, code := s.submit(s.fleet()[0], &request{op: opGet, key: k})
		if code != http.StatusOK {
			t.Fatalf("get key %d = HTTP %d", k, code)
		}
		if resp.Found {
			t.Fatalf("key %d exists — a dropped put executed anyway", k)
		}
	}
	st := s.StatusSnapshot()
	if st.Ops.ShedDeadline != s.shedDeadline.Load() || st.Ops.ShedDeadline != 2*n {
		t.Fatalf("statusz shed_deadline = %d, counter = %d, want %d", st.Ops.ShedDeadline, s.shedDeadline.Load(), 2*n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// waitQueueLen polls until shard ss's admission queue holds want requests.
func waitQueueLen(t *testing.T, ss *shardState, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for len(ss.queue) < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue stuck at %d of %d", len(ss.queue), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitShedDeadline polls until the shed_deadline counter reaches want.
func waitShedDeadline(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.shedDeadline.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("shed_deadline stuck at %d of %d", s.shedDeadline.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSlowClientStormLinearizable is the live half of the battery: honest
// mutating traffic races a storm of slow clients — writers whose contexts
// are already dead and readers on microsecond budgets — across two
// shards. The dead writers' keys must never appear in the store, the
// drop counter must account for every dead writer, and the committed
// history of the honest traffic must still admit a sequential witness.
func TestSlowClientStormLinearizable(t *testing.T) {
	const honest = 3
	const opsPerClient = 6
	const deadWriters = 24
	s := newTestServer(t, Options{Shards: 2, Workers: 2, HeapWords: 1 << 16})
	base := time.Now()
	rec := &linRecorder{}
	keys := []uint64{1, 2, 3, 4, 5}

	dead, kill := context.WithCancel(context.Background())
	kill() // the slow clients' contexts are dead on arrival

	var wg sync.WaitGroup
	for c := 0; c < honest; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := uint64(c*2654435761 + 1)
			next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return (rng >> 33) % n }
			for i := 0; i < opsPerClient; i++ {
				k := keys[next(uint64(len(keys)))]
				v := uint64(c*1000 + i + 1)
				op := shard.Op{Invoke: int64(time.Since(base))}
				var resp response
				var code int
				switch next(4) {
				case 0:
					op.Kind = shard.OpPut
					op.Keys, op.Args = []uint64{k}, []uint64{v}
					resp, code = s.submit(s.shardFor(&request{op: opPut, key: k}), &request{op: opPut, key: k, val: v})
					op.Oks = []bool{resp.Existed}
				case 1:
					op.Kind = shard.OpCAS
					old := uint64(c*1000 + i)
					op.Keys, op.Args = []uint64{k}, []uint64{old, v}
					resp, code = s.submit(s.shardFor(&request{op: opCAS, key: k}), &request{op: opCAS, key: k, old: old, newv: v})
					op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Applied}
				case 2:
					op.Kind = shard.OpMPut
					op.Keys = append([]uint64{}, keys[:3]...)
					op.Args = []uint64{v, v, v}
					resp, code = s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
				default:
					op.Kind = shard.OpMGet
					op.Keys = append([]uint64{}, keys...)
					resp, code = s.submitCross(&request{op: opMGet, keys: op.Keys})
					op.Vals, op.Oks = resp.Vals, resp.Present
				}
				op.Return = int64(time.Since(base))
				if code != http.StatusOK {
					t.Errorf("client %d op %d: HTTP %d %+v", c, i, code, resp)
					return
				}
				rec.record(op)
			}
		}(c)
	}
	// The storm: dead writers target keys the honest traffic never
	// touches, so any that executes is visible afterward; slow readers
	// race microsecond budgets against real queue waits.
	for i := 0; i < deadWriters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &request{op: opPut, key: uint64(5000 + i), val: 1, ctx: dead}
			if _, code := s.submit(s.shardFor(req), req); code != 499 {
				t.Errorf("dead writer %d = HTTP %d, want 499", i, code)
			}
			slow := &request{op: opGet, key: keys[i%len(keys)], budget: time.Microsecond}
			if _, code := s.submit(s.shardFor(slow), slow); code != http.StatusOK && code != http.StatusGatewayTimeout {
				t.Errorf("slow reader %d = HTTP %d, want 200 or 504", i, code)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every dead writer was dropped by the gate, and none is visible.
	waitShedDeadline(t, s, deadWriters)
	for i := 0; i < deadWriters; i++ {
		req := &request{op: opGet, key: uint64(5000 + i)}
		resp, code := s.submit(s.shardFor(req), req)
		if code != http.StatusOK {
			t.Fatalf("get key %d = HTTP %d", 5000+i, code)
		}
		if resp.Found {
			t.Fatalf("key %d exists — a canceled put executed anyway", 5000+i)
		}
	}
	if _, ok := shard.Linearize(rec.ops); !ok {
		t.Fatalf("committed history of %d ops admits no sequential witness under the cancellation storm: %+v", len(rec.ops), rec.ops)
	}
}
