package scenario

import "repro/internal/workloads"

// STAMP family (internal/workloads/stamp.go): the eight STAMP-like kernels
// of Table 1, spanning the suite's spread of transaction lengths, working
// sets and contention levels.

var (
	genSegments = Param{Name: "segments", Desc: "genome segments to assemble", Kind: Int, Default: "16384"}

	intFlows = Param{Name: "flows", Desc: "concurrent packet flows", Kind: Int, Default: "1024"}
	intFrags = Param{Name: "frags", Desc: "fragments per flow", Kind: Int, Default: "8"}

	kmClusters = Param{Name: "clusters", Desc: "cluster centers", Kind: Int, Default: "16"}
	kmDims     = Param{Name: "dims", Desc: "point dimensionality", Kind: Int, Default: "8"}

	labGrid = Param{Name: "grid", Desc: "routing grid cells", Kind: Int, Default: "65536"}
	labPath = Param{Name: "path", Desc: "cells per routed path", Kind: Int, Default: "192"}

	sscaVertices = Param{Name: "vertices", Desc: "graph vertices", Kind: Int, Default: "65536"}

	vacRelations = Param{Name: "relations", Desc: "rows per reservation table", Kind: Int, Default: "8192"}
	vacQueries   = Param{Name: "queries", Desc: "items touched per client session", Kind: Int, Default: "24"}

	yadaElements = Param{Name: "elements", Desc: "mesh elements", Kind: Int, Default: "32768"}
	yadaCavity   = Param{Name: "cavity", Desc: "elements per refined cavity", Kind: Int, Default: "24"}

	bayesNodes = Param{Name: "nodes", Desc: "adtree nodes", Kind: Int, Default: "4096"}
)

func init() {
	Register(Scenario{
		Name:        "genome",
		Family:      "stamp",
		Description: "gene assembly: segment dedup and chaining, low contention",
		Params:      []Param{genSegments},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Genome{Segments: v.Int(genSegments)}, nil
		},
	})
	Register(Scenario{
		Name:        "intruder",
		Family:      "stamp",
		Description: "packet reassembly over a contended flow table",
		Params:      []Param{intFlows, intFrags},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Intruder{Flows: v.Int(intFlows), FragsPer: v.Int(intFrags)}, nil
		},
	})
	Register(Scenario{
		Name:        "kmeans",
		Family:      "stamp",
		Description: "cluster-center accumulation with non-transactional math",
		Params:      []Param{kmClusters, kmDims},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.KMeans{Clusters: v.Int(kmClusters), Dims: v.Int(kmDims)}, nil
		},
	})
	Register(Scenario{
		Name:        "labyrinth",
		Family:      "stamp",
		Description: "path routing: long transactions with large write sets",
		Params:      []Param{labGrid, labPath},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Labyrinth{GridSize: v.Int(labGrid), PathLen: v.Int(labPath)}, nil
		},
	})
	Register(Scenario{
		Name:        "ssca2",
		Family:      "stamp",
		Description: "graph kernel: tiny transactions over a wide adjacency array",
		Params:      []Param{sscaVertices},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.SSCA2{Vertices: v.Int(sscaVertices)}, nil
		},
	})
	Register(Scenario{
		Name:        "vacation",
		Family:      "stamp",
		Description: "travel reservations: medium read-dominated sessions",
		Params:      []Param{vacRelations, vacQueries},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Vacation{Relations: v.Int(vacRelations), Queries: v.Int(vacQueries)}, nil
		},
	})
	Register(Scenario{
		Name:        "yada",
		Family:      "stamp",
		Description: "mesh refinement: long transactions, moderate conflicts",
		Params:      []Param{yadaElements, yadaCavity},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Yada{Elements: v.Int(yadaElements), Cavity: v.Int(yadaCavity)}, nil
		},
	})
	Register(Scenario{
		Name:        "bayes",
		Family:      "stamp",
		Description: "Bayesian structure learning: the longest STAMP transactions",
		Params:      []Param{bayesNodes},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Bayes{Nodes: v.Int(bayesNodes)}, nil
		},
	})
}
