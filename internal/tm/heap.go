package tm

import (
	"fmt"
	"sync/atomic"
)

// StripeShift sets the ownership-record granularity: 2^StripeShift words map
// to one stripe. With 8-byte words, 3 yields 64-byte stripes, matching the
// cache-line granularity at which real HTM detects conflicts (and at which
// word-based STMs such as TinySTM commonly stripe their lock tables).
const StripeShift = 3

// Heap is the transactional heap: a flat array of 64-bit words plus the
// metadata side tables used by the TM algorithms. All application state in
// the benchmarks lives in heap words addressed by Addr; keeping TM metadata
// out of application memory is the property that lets PolyTM switch the
// algorithm underneath a live application (§4 of the paper).
type Heap struct {
	words []uint64

	// orecs is the primary ownership-record table (one word per stripe).
	// Unlocked encoding: version<<1. Locked encoding: owner<<1 | 1 where
	// owner is the locking thread's slot plus one.
	orecs []uint64
	// rvers is the secondary per-stripe version table used by SwissTM's
	// two-phase (eager write / lazy read) conflict detection.
	rvers []uint64
	// readers is the per-stripe speculative reader bitmap used by the
	// simulated HTM (bit i set = thread slot i has the line in its read
	// set). Limited to 64 hardware threads, which covers both machine
	// profiles.
	readers []uint64
	// writers is the per-stripe speculative writer slot (owner+1, or 0)
	// used by the simulated HTM.
	writers []uint64

	mask uint32

	_clockPad [7]uint64
	// clock is the global version clock shared by TL2/TinySTM/SwissTM and
	// reused as NOrec's global sequence lock.
	clock uint64
	_     [7]uint64
	// fallbackLock is the serial-mode lock for the simulated HTM (odd =
	// held). HTM transactions subscribe to it at begin.
	fallbackLock uint64
	_            [7]uint64
	// next is the bump-allocation cursor.
	next uint64
	_    [7]uint64

	// htmDoom holds one doom flag pointer per thread slot so a conflicting
	// HTM transaction can remotely abort its victims. Slots are atomic
	// pointers because threads register lazily (at their first HTM
	// transaction) while other threads may already be dooming.
	htmDoom []atomic.Pointer[atomic.Bool]
}

// NewHeap creates a heap with the given number of 64-bit words (rounded up
// to at least 2^StripeShift) and an ownership-record table with one stripe
// per cache line, capped at 2^20 stripes to bound metadata memory. maxThreads
// bounds the thread slots that may run HTM transactions.
func NewHeap(words int, maxThreads int) *Heap {
	if words < 1<<StripeShift {
		words = 1 << StripeShift
	}
	nStripes := 1 << uint(log2ceil((words+(1<<StripeShift)-1)>>StripeShift))
	if nStripes > 1<<20 {
		nStripes = 1 << 20
	}
	if nStripes < 1 {
		nStripes = 1
	}
	h := &Heap{
		words:   make([]uint64, words),
		orecs:   make([]uint64, nStripes),
		rvers:   make([]uint64, nStripes),
		readers: make([]uint64, nStripes),
		writers: make([]uint64, nStripes),
		mask:    uint32(nStripes - 1),
		next:    1, // word 0 is NilAddr
		htmDoom: make([]atomic.Pointer[atomic.Bool], maxThreads),
	}
	return h
}

// Words returns the heap capacity in 64-bit words.
func (h *Heap) Words() int { return len(h.words) }

// Stripes returns the number of ownership-record stripes.
func (h *Heap) Stripes() int { return len(h.orecs) }

// Stripe maps a word address to its ownership-record index.
func (h *Heap) Stripe(a Addr) uint32 { return (uint32(a) >> StripeShift) & h.mask }

// Alloc reserves n consecutive words and returns the address of the first.
// Allocation is a wait-free bump pointer: the benchmarks allocate during
// setup and inside transactions (e.g. tree node creation) but never free;
// Reset recycles the whole arena between runs.
func (h *Heap) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return NilAddr, fmt.Errorf("tm: Alloc size %d must be positive", n)
	}
	base := atomic.AddUint64(&h.next, uint64(n)) - uint64(n)
	if base+uint64(n) > uint64(len(h.words)) {
		return NilAddr, fmt.Errorf("tm: heap exhausted (%d words requested, %d used of %d)", n, base, len(h.words))
	}
	return Addr(base), nil
}

// MustAlloc is Alloc but panics on exhaustion; it is intended for benchmark
// setup code where an undersized heap is a programming error.
func (h *Heap) MustAlloc(n int) Addr {
	a, err := h.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Reset returns the heap to its freshly-created state: allocation cursor
// rewound, words and metadata zeroed, clock reset. Callers must guarantee
// quiescence (no live transactions).
func (h *Heap) Reset() {
	for i := range h.words {
		h.words[i] = 0
	}
	for i := range h.orecs {
		h.orecs[i] = 0
		h.rvers[i] = 0
		h.readers[i] = 0
		h.writers[i] = 0
	}
	atomic.StoreUint64(&h.clock, 0)
	atomic.StoreUint64(&h.fallbackLock, 0)
	atomic.StoreUint64(&h.next, 1)
}

// LoadWord atomically reads the word at a without any transactional
// bookkeeping. It is the non-instrumented path used by the sequential
// baseline, by HTM-mode execution, and by setup code.
func (h *Heap) LoadWord(a Addr) uint64 { return atomic.LoadUint64(&h.words[a]) }

// StoreWord atomically writes the word at a without transactional
// bookkeeping. See LoadWord.
func (h *Heap) StoreWord(a Addr, v uint64) { atomic.StoreUint64(&h.words[a], v) }

// Allocated returns the number of words handed out so far.
func (h *Heap) Allocated() int {
	n := atomic.LoadUint64(&h.next)
	if n > uint64(len(h.words)) {
		n = uint64(len(h.words))
	}
	return int(n)
}

// Digest returns an FNV-1a hash over every allocated word: a cheap
// fingerprint of the heap contents. The deterministic scenario harness
// records it so that two runs claiming to be identical must agree not just
// on counters but on the actual end state of the data structures. Only
// meaningful while no transactions are running.
func (h *Heap) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	for i, n := 0, h.Allocated(); i < n; i++ {
		w := atomic.LoadUint64(&h.words[i])
		for b := 0; b < 8; b++ {
			hash ^= (w >> (8 * b)) & 0xff
			hash *= prime64
		}
	}
	return hash
}

// --- Global version clock -------------------------------------------------

// Clock returns the current value of the global version clock.
func (h *Heap) Clock() uint64 { return atomic.LoadUint64(&h.clock) }

// ClockAdd atomically advances the global clock by d and returns the new
// value.
func (h *Heap) ClockAdd(d uint64) uint64 { return atomic.AddUint64(&h.clock, d) }

// ClockCAS attempts to advance the clock from old to new.
func (h *Heap) ClockCAS(old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&h.clock, old, new)
}

// ClockStore sets the clock; used only by NOrec's commit unlock.
func (h *Heap) ClockStore(v uint64) { atomic.StoreUint64(&h.clock, v) }

// --- Ownership records ------------------------------------------------------

// OrecLoad atomically reads ownership record s.
func (h *Heap) OrecLoad(s uint32) uint64 { return atomic.LoadUint64(&h.orecs[s]) }

// OrecCAS attempts to replace ownership record s.
func (h *Heap) OrecCAS(s uint32, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&h.orecs[s], old, new)
}

// OrecStore unconditionally writes ownership record s; valid only while the
// caller holds the record's lock.
func (h *Heap) OrecStore(s uint32, v uint64) { atomic.StoreUint64(&h.orecs[s], v) }

// RVerLoad reads SwissTM's per-stripe read version.
func (h *Heap) RVerLoad(s uint32) uint64 { return atomic.LoadUint64(&h.rvers[s]) }

// RVerStore writes SwissTM's per-stripe read version (caller holds w-lock).
func (h *Heap) RVerStore(s uint32, v uint64) { atomic.StoreUint64(&h.rvers[s], v) }

// OrecLocked reports whether the encoded record value is locked, and if so
// by which thread slot.
func OrecLocked(v uint64) (owner int, locked bool) {
	if v&1 == 0 {
		return 0, false
	}
	return int(v>>1) - 1, true
}

// OrecVersion returns the version of an unlocked record value.
func OrecVersion(v uint64) uint64 { return v >> 1 }

// OrecLockedBy encodes a locked record owned by thread slot id.
func OrecLockedBy(id int) uint64 { return uint64(id+1)<<1 | 1 }

// OrecUnlocked encodes an unlocked record at the given version.
func OrecUnlocked(version uint64) uint64 { return version << 1 }

// --- Simulated-HTM metadata -------------------------------------------------

// ReaderMaskLoad returns the speculative reader bitmap of stripe s.
func (h *Heap) ReaderMaskLoad(s uint32) uint64 { return atomic.LoadUint64(&h.readers[s]) }

// ReaderMaskOr sets bits in the reader bitmap of stripe s and returns the
// previous value.
func (h *Heap) ReaderMaskOr(s uint32, bits uint64) uint64 {
	return atomic.OrUint64(&h.readers[s], bits)
}

// ReaderMaskAndNot clears bits in the reader bitmap of stripe s.
func (h *Heap) ReaderMaskAndNot(s uint32, bits uint64) {
	atomic.AndUint64(&h.readers[s], ^bits)
}

// WriterLoad returns the speculative writer slot (+1) of stripe s, 0 if none.
func (h *Heap) WriterLoad(s uint32) uint64 { return atomic.LoadUint64(&h.writers[s]) }

// WriterCAS claims or releases the speculative writer slot of stripe s.
func (h *Heap) WriterCAS(s uint32, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&h.writers[s], old, new)
}

// WriterStore unconditionally sets the speculative writer slot of stripe s.
func (h *Heap) WriterStore(s uint32, v uint64) { atomic.StoreUint64(&h.writers[s], v) }

// RegisterDoomFlag publishes thread slot id's doom flag so conflicting HTM
// transactions can remotely abort it. For ids within the table sized by
// NewHeap's maxThreads — every id a correctly configured pool produces —
// registration is an atomic pointer publish and is safe to perform lazily
// (a thread's first HTM transaction) while other threads are concurrently
// calling DoomThread. Registering an out-of-range id grows the table with
// an unsynchronized copy-and-swap of the slice header, which concurrent
// DoomThread readers do NOT observe safely: such calls require quiescence
// (no HTM transactions in flight anywhere), which only holds during setup.
func (h *Heap) RegisterDoomFlag(id int, f *atomic.Bool) {
	if id < len(h.htmDoom) {
		h.htmDoom[id].Store(f)
		return
	}
	grown := make([]atomic.Pointer[atomic.Bool], id+1)
	for i := range h.htmDoom {
		grown[i].Store(h.htmDoom[i].Load())
	}
	grown[id].Store(f)
	h.htmDoom = grown
}

// DoomThread requests the remote abort of thread slot id's current hardware
// transaction. Dooming an unregistered slot is a no-op.
func (h *Heap) DoomThread(id int) {
	if id >= 0 && id < len(h.htmDoom) {
		if f := h.htmDoom[id].Load(); f != nil {
			f.Store(true)
		}
	}
}

// --- HTM fallback lock --------------------------------------------------------

// FallbackLock returns the current fallback sequence-lock value (odd = held).
func (h *Heap) FallbackLock() uint64 { return atomic.LoadUint64(&h.fallbackLock) }

// FallbackAcquire spins until it acquires the serial fallback lock and
// returns the new (odd) lock value.
func (h *Heap) FallbackAcquire() uint64 {
	for {
		v := atomic.LoadUint64(&h.fallbackLock)
		if v&1 == 0 && atomic.CompareAndSwapUint64(&h.fallbackLock, v, v+1) {
			return v + 1
		}
		spinPause()
	}
}

// FallbackRelease releases the serial fallback lock.
func (h *Heap) FallbackRelease() {
	atomic.AddUint64(&h.fallbackLock, 1)
}
