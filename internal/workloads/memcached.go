package workloads

import "repro/internal/tm"

// Memcached models the transactionalized memcached port of Ruan et al.
// (ASPLOS 2014): a shared hash-table cache with get-dominated traffic,
// short transactions, LRU bookkeeping, and substantial non-transactional
// request-processing work between operations — the service-style profile
// whose optimum sits at high thread counts.
type Memcached struct {
	Buckets  int
	KeyRange int
	// GetRatio is the fraction of get operations (default 0.9).
	GetRatio float64
	// ValueWords is the stored value size (default 4).
	ValueWords int

	h     *tm.Heap
	base  tm.Addr
	stats tm.Addr // hits, misses, evictions, sets — padded apart
	pool  *NodePool
}

// Name implements Workload.
func (mc *Memcached) Name() string { return "memcached" }

func (mc *Memcached) defaults() {
	if mc.Buckets <= 0 {
		mc.Buckets = 1 << 13
	}
	if mc.KeyRange <= 0 {
		mc.KeyRange = 1 << 15
	}
	if mc.GetRatio == 0 {
		mc.GetRatio = 0.9
	}
	if mc.ValueWords <= 0 {
		mc.ValueWords = 4
	}
}

// cache entry layout: key, lastUsed, next, value[ValueWords].
func (mc *Memcached) entryWords() int { return 3 + mc.ValueWords }

// Setup implements Workload.
func (mc *Memcached) Setup(h *tm.Heap, rng *Rand) error {
	mc.defaults()
	mc.h = h
	var err error
	if mc.base, err = h.Alloc(mc.Buckets); err != nil {
		return err
	}
	if mc.stats, err = h.Alloc(32); err != nil {
		return err
	}
	if mc.pool, err = NewNodePool(h, mc.entryWords(), 1); err != nil {
		return err
	}
	// Pre-warm half the key range.
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < mc.KeyRange/2; i++ {
		k := uint64(rng.Intn(mc.KeyRange)) + 1
		seq.Atomic(0, func(tx tm.Txn) { mc.set(tx, 0, k, uint64(i)) })
	}
	return nil
}

func (mc *Memcached) bucket(k uint64) tm.Addr {
	return mc.base + tm.Addr((k*0xff51afd7ed558ccd)%uint64(mc.Buckets))
}

// Op implements Workload: parse a request (non-transactional spin), then a
// short get or set transaction.
func (mc *Memcached) Op(r Runner, self int, rng *Rand) {
	Spin(6) // request parsing / socket handling
	k := uint64(rng.Intn(mc.KeyRange)) + 1
	if rng.Float64() < mc.GetRatio {
		r.Atomic(self, func(tx tm.Txn) { mc.get(tx, k) })
	} else {
		v := rng.Next()
		r.Atomic(self, func(tx tm.Txn) { mc.set(tx, self, k, v) })
	}
}

func (mc *Memcached) get(tx tm.Txn, k uint64) (uint64, bool) {
	n := tm.Addr(tx.Load(mc.bucket(k)))
	for n != tm.NilAddr {
		if tx.Load(n) == k {
			// Touch the LRU stamp and read the value.
			tx.Store(n+1, tx.Load(n+1)+1)
			v := tx.Load(n + 3)
			tx.Store(mc.stats, tx.Load(mc.stats)+1) // hit
			return v, true
		}
		n = tm.Addr(tx.Load(n + 2))
	}
	tx.Store(mc.stats+8, tx.Load(mc.stats+8)+1) // miss
	return 0, false
}

func (mc *Memcached) set(tx tm.Txn, self int, k, v uint64) {
	b := mc.bucket(k)
	n := tm.Addr(tx.Load(b))
	depth := 0
	for n != tm.NilAddr {
		if tx.Load(n) == k {
			for w := 0; w < mc.ValueWords; w++ {
				tx.Store(n+3+tm.Addr(w), v+uint64(w))
			}
			tx.Store(n+1, tx.Load(n+1)+1)
			return
		}
		n = tm.Addr(tx.Load(n + 2))
		depth++
	}
	// Evict the bucket head when the chain grows too long (simplified
	// slab reclamation); the entry is recycled through the pool.
	if depth >= 8 {
		head := tm.Addr(tx.Load(b))
		tx.Store(b, tx.Load(head+2))
		mc.pool.Put(tx, self, head)
		tx.Store(mc.stats+16, tx.Load(mc.stats+16)+1) // eviction
	}
	fresh := mc.pool.Get(tx, self)
	tx.Store(fresh, k)
	tx.Store(fresh+1, 1)
	tx.Store(fresh+2, tx.Load(b))
	for w := 0; w < mc.ValueWords; w++ {
		tx.Store(fresh+3+tm.Addr(w), v+uint64(w))
	}
	tx.Store(b, uint64(fresh))
	tx.Store(mc.stats+24, tx.Load(mc.stats+24)+1) // set
}
