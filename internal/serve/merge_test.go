package serve

// Merge-resharding battery: the shrink direction of the live-resharding
// pipeline — plan through PlanMergeColdest, fence the retiring donor,
// copy into the live recipient, flip the placement one shard smaller,
// drain and retire the donor. Covers the admin surface (direction
// selection, the split-vs-merge 409), full key preservation across a
// shrink, the spare-shard reaper, the loadgen replica shrink, and the
// centerpiece: linearizability of traffic racing a live merge under both
// fence granularities and both injected migrator crashes.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// heatAllBut makes every shard except the fleet's top shard hot, so the
// top shard is the unambiguous coldest and PlanMergeColdest retires it.
func heatAllBut(s *Server, top int, n uint64) {
	for i, ss := range s.fleet() {
		if i != top {
			ss.routed.Add(n)
		}
	}
}

// TestReshardMergeShrinksFleet is the shrink mainline: a preloaded
// 4-shard range daemon merges its coldest (top) shard away twice; every
// key keeps its value through both shrinks, the retired donors' workers
// verifiably stop, and the observables line up.
func TestReshardMergeShrinksFleet(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 4, Workers: 2, Partitioner: shard.KindRange, Preload: 16384,
	})
	// With 4 even spans over the 16384-key universe, shard 3 owns
	// [12288, 2^64-1] and holds the top 4096 preloaded keys. Heating the
	// other three makes it the coldest, so the merge moves its span into
	// the adjacent shard 2.
	heatAllBut(s, 3, 5_000)
	donor := s.fleet()[3]

	res, code := s.ReshardMerge()
	if code != http.StatusOK || !res.Applied {
		t.Fatalf("merge = %d %+v", code, res)
	}
	if res.Plan != "merge" || res.Donor != 3 || res.Recipient != 2 || res.MovedLo != 12288 || res.MovedHi != ^uint64(0) {
		t.Fatalf("unexpected plan: %+v", res)
	}
	if res.KeysMigrated != 4096 {
		t.Fatalf("keys_migrated = %d, want 4096 (preloaded span population)", res.KeysMigrated)
	}
	if res.Epoch != 1 || s.place.Epoch() != 1 {
		t.Fatalf("placement epoch = %d/%d, want 1", res.Epoch, s.place.Epoch())
	}
	if res.Shards != 3 || s.part().Shards() != 3 || len(s.fleet()) != 3 {
		t.Fatalf("shards after merge: res=%d placement=%d fleet=%d, want 3", res.Shards, s.part().Shards(), len(s.fleet()))
	}
	if got := s.part().Owner(13000); got != 2 {
		t.Fatalf("merged key 13000 owned by shard %d, want recipient 2", got)
	}
	if got := s.part().Owner(1000); got != 0 {
		t.Fatalf("untouched key 1000 owned by shard %d, want 0", got)
	}
	// The donor must be drained for good: retireShard waits for its
	// workers synchronously, so by now the flag is set and its system
	// closed — the workers are verifiably stopped, not leaked.
	if !donor.retired.Load() {
		t.Fatal("donor shard 3 not marked retired after the merge")
	}
	waitUntil(t, 2*time.Second, "fences free after merge", func() bool { return fencesFree(s) })

	// Every preloaded key still reads its value through the normal routed
	// path — recipient-absorbed, donor-origin, and untouched shards alike.
	for _, k := range []uint64{0, 1000, 8191, 8192, 12287, 12288, 13000, 16383} {
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK || !resp.Found || resp.Val != k {
			t.Fatalf("post-merge get(%d) = %d %+v", k, code, resp)
		}
	}
	// The recipient holds the span exactly once: a scan over the whole
	// preload counts each key exactly once — no lost and no torn keys.
	resp, code := s.submitCross(&request{op: opRange, lo: 0, hi: 16383})
	if code != http.StatusOK || resp.Count != 16384 {
		t.Fatalf("post-merge full scan = %d %+v, want count 16384", code, resp)
	}

	st := s.StatusSnapshot()
	if st.Server.Shards != 3 || st.Server.PartitionerEpoch != 1 || st.Server.Resharding || st.Server.SpareShards != 0 {
		t.Fatalf("statusz after merge: %+v", st.Server)
	}
	if len(st.Server.SpanStarts) != 3 || len(st.Server.SpanOwners) != 3 {
		t.Fatalf("span table after merge: starts=%v owners=%v, want 3 spans", st.Server.SpanStarts, st.Server.SpanOwners)
	}
	if st.Ops.Merges != 1 || st.Ops.ShardsRetired != 1 || st.Ops.KeysMigrated != 4096 {
		t.Fatalf("ops counters after merge: merges=%d shards_retired=%d keys_migrated=%d",
			st.Ops.Merges, st.Ops.ShardsRetired, st.Ops.KeysMigrated)
	}
	for _, sh := range st.Shards {
		if sh.FenceHeld {
			t.Fatalf("shard %d fence still held after merge", sh.Index)
		}
	}

	// A second merge keeps working (3 -> 2, epoch 2), and the deque —
	// pinned to shard 0, never migrated — stays fully functional.
	heatAllBut(s, 2, 50_000)
	res2, code := s.ReshardMerge()
	if code != http.StatusOK || !res2.Applied || res2.Epoch != 2 || res2.Shards != 2 {
		t.Fatalf("second merge = %d %+v", code, res2)
	}
	if res2.KeysMigrated != 8192 {
		t.Fatalf("second merge keys_migrated = %d, want 8192", res2.KeysMigrated)
	}
	if resp, code := s.submit(s.shardFor(&request{op: opRPush, val: 77}), &request{op: opRPush, val: 77}); code != http.StatusOK || !resp.Applied {
		t.Fatalf("rpush after two merges = %d %+v", code, resp)
	}
	if resp, code := s.submit(s.shardFor(&request{op: opLPop}), &request{op: opLPop}); code != http.StatusOK || !resp.Found || resp.Val != 77 {
		t.Fatalf("lpop after two merges = %d %+v", code, resp)
	}
	resp, code = s.submitCross(&request{op: opRange, lo: 0, hi: 16383})
	if code != http.StatusOK || resp.Count != 16384 {
		t.Fatalf("full scan after two merges = %d %+v, want count 16384", code, resp)
	}
}

// TestMergeAdminSurface pins the endpoint contract for the merge
// direction: body-selected plan, 400 on an unknown plan and on a
// non-range partitioner, the explicit applied=false no-op when the top
// shard is not coldest, and the split-vs-merge 409 — both directions
// share the single-migration lock.
func TestMergeAdminSurface(t *testing.T) {
	hash := newTestServer(t, Options{Shards: 2, Workers: 2})
	res, code := hash.ReshardMerge()
	if code != http.StatusBadRequest || !strings.Contains(res.Err, "range partitioner") {
		t.Fatalf("merge on hash partitioner = %d %+v, want 400", code, res)
	}

	s := newTestServer(t, Options{Shards: 3, Workers: 2, Partitioner: shard.KindRange})
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(body string) (int, reshardResult) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/admin/reshard", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /admin/reshard: %v", err)
		}
		defer resp.Body.Close()
		var r reshardResult
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatalf("decoding reshard reply: %v", err)
		}
		return resp.StatusCode, r
	}

	if code, r := post(`{"plan":"defrag"}`); code != http.StatusBadRequest || !strings.Contains(r.Err, "unknown plan") {
		t.Fatalf(`POST {"plan":"defrag"} = %d %+v, want 400`, code, r)
	}

	// Top shard hottest: the planner declines and the server reports the
	// no-op instead of retiring a hot shard.
	s.fleet()[2].routed.Add(10_000)
	if code, r := post(`{"plan":"merge"}`); code != http.StatusOK || r.Applied || r.Reason == "" {
		t.Fatalf("hot-top merge = %d %+v, want applied=false with a reason", code, r)
	}
	if got := s.part().Shards(); got != 3 {
		t.Fatalf("no-op merge changed the placement to %d shards", got)
	}
	if got := s.place.Epoch(); got != 0 {
		t.Fatalf("no-op merge moved the placement epoch to %d", got)
	}

	// Both directions contend on the same lock: with a migration
	// in flight, split and merge both answer 409.
	s.reshardMu.Lock()
	if code, r := post(`{"plan":"split"}`); code != http.StatusConflict || !strings.Contains(r.Err, "already in progress") {
		t.Fatalf("split during a reshard = %d %+v, want 409", code, r)
	}
	if code, r := post(`{"plan":"merge"}`); code != http.StatusConflict || !strings.Contains(r.Err, "already in progress") {
		t.Fatalf("merge during a reshard = %d %+v, want 409", code, r)
	}
	s.reshardMu.Unlock()
}

// TestSpareReaper pins the spare-shard leak fix: a rolled-back split
// leaves its recipient as a spare (a full worker pool and tuner the
// placement never names); the maintenance loop must retire it after the
// grace period instead of leaking it forever.
func TestSpareReaper(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 3, Workers: 2, Partitioner: shard.KindRange, Preload: 1024,
		Fault:             mustFault(t, "reshard-donor-crash@count=1", 1),
		FenceDeadline:     60 * time.Millisecond,
		SpareGrace:        50 * time.Millisecond,
		AutosplitInterval: 20 * time.Millisecond,
	})
	s.fleet()[0].routed.Add(10_000)

	// The injected crash kills the migrator mid-copy: the fleet has grown
	// to 4 but the placement still names 3 — the new shard is a spare.
	res, code := s.Reshard()
	if code != http.StatusServiceUnavailable || res.Applied || !strings.Contains(res.Err, "injected fault") {
		t.Fatalf("faulted reshard = %d %+v, want 503 with the injected-fault error", code, res)
	}
	if len(s.fleet()) != 4 || s.part().Shards() != 3 {
		t.Fatalf("after the crash: fleet=%d placement=%d, want a 4-shard fleet over a 3-shard placement",
			len(s.fleet()), s.part().Shards())
	}
	if st := s.StatusSnapshot(); st.Server.SpareShards != 1 {
		t.Fatalf("spare_shards = %d after the rolled-back split, want 1", st.Server.SpareShards)
	}

	waitUntil(t, 5*time.Second, "fence recovery after migrator crash", func() bool { return fencesFree(s) })
	waitUntil(t, 5*time.Second, "spare reaper to retire the idle spare", func() bool { return len(s.fleet()) == 3 })

	st := s.StatusSnapshot()
	if st.Server.SpareShards != 0 {
		t.Fatalf("spare_shards = %d after the reaper ran, want 0", st.Server.SpareShards)
	}
	if st.Ops.ShardsRetired < 1 {
		t.Fatalf("shards_retired = %d after the reaper ran, want >= 1", st.Ops.ShardsRetired)
	}
	// The survivors still serve the whole preload; the rollback left no
	// half-copied state observable.
	for _, k := range []uint64{0, 500, 1023} {
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK || !resp.Found || resp.Val != k {
			t.Fatalf("post-reap get(%d) = %d %+v", k, code, resp)
		}
	}
}

// TestAutomerge pins the background shrink trigger: once the top shard's
// share of the per-interval traffic falls below the threshold (here: the
// fleet goes fully idle), the daemon merges it away without an admin
// call — and stops at the configured floor.
func TestAutomerge(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 4, Workers: 2, Partitioner: shard.KindRange, Preload: 1024,
		AutomergeShare: 0.1, AutomergeMinShards: 3, AutosplitInterval: 20 * time.Millisecond,
	})
	waitUntil(t, 5*time.Second, "automerge to retire the idle top shard", func() bool { return s.part().Shards() == 3 })
	if got := s.place.Epoch(); got != 1 {
		t.Fatalf("placement epoch after automerge = %d, want 1", got)
	}
	// The floor holds even though the fleet stays idle.
	time.Sleep(100 * time.Millisecond)
	if got := s.part().Shards(); got != 3 {
		t.Fatalf("automerge undershot the floor: %d shards", got)
	}
	waitUntil(t, 2*time.Second, "fences free after automerge", func() bool { return fencesFree(s) })
	for _, k := range []uint64{0, 500, 1023} {
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK || !resp.Found || resp.Val != k {
			t.Fatalf("post-automerge get(%d) = %d %+v", k, code, resp)
		}
	}
}

// TestMergeLinearizability is the shrink centerpiece: concurrent
// gets/puts/cross-shard mputs/range scans race a live merge — under both
// fence granularities and, in the crash legs, with the migrator killed
// mid-copy or after the copy just before the flip (rolled back by the
// failure detector, partial copy deleted off the live recipient, then
// retried to completion). The committed history plus a full
// post-quiescence sweep must admit a sequential witness: no lost, torn
// or double-visible key, ever — in particular no key the rollback left
// duplicated on the recipient.
func TestMergeLinearizability(t *testing.T) {
	for _, leg := range []struct{ name, fault string }{
		{"clean", ""},
		{"donor-crash", "reshard-donor-crash@count=1"},
		{"install-crash", "reshard-install-crash@count=1"},
	} {
		t.Run(leg.name, func(t *testing.T) {
			forEachGranularity(t, func(t *testing.T, granularity string) {
				testMergeLinearizability(t, granularity, leg.fault)
			})
		})
	}
}

func testMergeLinearizability(t *testing.T, granularity string, faultSpec string) {
	opts := Options{
		Shards: 4, Workers: 2, HeapWords: 1 << 16,
		Partitioner: shard.KindRange, FenceGranularity: granularity,
		CrossRetries:  512, // ride out fences held across a recovery window
		FenceDeadline: 80 * time.Millisecond,
	}
	if faultSpec != "" {
		opts.Fault = mustFault(t, faultSpec, 1)
	}
	s := newTestServer(t, opts)
	// Shard 3 is the forced coldest: its span [12288, 2^64-1] merges into
	// shard 2, so keys 13000/13500 migrate while 1, 6000 and 11000 pin
	// the surviving shards as participants throughout.
	heatAllBut(s, 3, 10_000)
	donor := s.fleet()[3]
	keys := []uint64{1, 6000, 11000, 13000, 13500}

	base := time.Now()
	rec := &linRecorder{}
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := uint64(c*31 + 7)
			next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return (rng >> 33) % n }
			for i := 0; i < 6; i++ {
				k := keys[next(uint64(len(keys)))]
				v := uint64(c*1000 + i + 1)
				op := shard.Op{Invoke: int64(time.Since(base))}
				var resp response
				var code int
				switch next(4) {
				case 0:
					op.Kind = shard.OpGet
					op.Keys = []uint64{k}
					resp, code = s.submitRouted(&request{op: opGet, key: k})
					op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Found}
				case 1:
					op.Kind = shard.OpPut
					op.Keys, op.Args = []uint64{k}, []uint64{v}
					resp, code = s.submitRouted(&request{op: opPut, key: k, val: v})
					op.Oks = []bool{resp.Existed}
				case 2:
					op.Kind = shard.OpMPut
					op.Keys = append([]uint64{}, keys[2:]...)
					op.Args = []uint64{v, v, v}
					resp, code = s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
				default:
					op.Kind = shard.OpRange
					op.Keys = []uint64{0, 14000}
					resp, code = s.submitCross(&request{op: opRange, lo: 0, hi: 14000})
					op.Vals = []uint64{resp.Count, resp.Sum}
				}
				op.Return = int64(time.Since(base))
				if code != http.StatusOK {
					t.Errorf("client %d op %d: HTTP %d %+v", c, i, code, resp)
					return
				}
				rec.record(op)
				time.Sleep(time.Duration(next(3)) * time.Millisecond)
			}
		}(c)
	}

	// The merge lands mid-traffic. In the crash legs the first attempt is
	// killed by the injector; the failure detector deletes the partial
	// copy off the live recipient and releases the fence, the fleet keeps
	// all four shards, and the retry must complete.
	time.Sleep(5 * time.Millisecond)
	res, code := s.ReshardMerge()
	if faultSpec == "" {
		if code != http.StatusOK || !res.Applied {
			t.Fatalf("merge = %d %+v", code, res)
		}
	} else {
		if code != http.StatusServiceUnavailable || res.Applied || !strings.Contains(res.Err, "injected fault") {
			t.Fatalf("faulted merge = %d %+v, want 503 with the injected-fault error", code, res)
		}
		waitUntil(t, 5*time.Second, "fence recovery after migrator crash", func() bool { return fencesFree(s) })
		// Rollback, not retire: the placement and fleet keep all four
		// shards, and nothing was merged.
		if len(s.fleet()) != 4 || s.part().Shards() != 4 {
			t.Fatalf("after the crash: fleet=%d placement=%d, want 4/4 (rollback must not retire)",
				len(s.fleet()), s.part().Shards())
		}
		res, code = s.ReshardMerge()
		if code != http.StatusOK || !res.Applied {
			t.Fatalf("merge retry after rollback = %d %+v", code, res)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := s.part().Shards(); got != 3 {
		t.Fatalf("placement has %d shards after the merge, want 3", got)
	}
	if !donor.retired.Load() {
		t.Fatal("donor shard 3 not retired after the merge")
	}

	// Post-quiescence sweep: one recorded get per key. A lost key, a torn
	// key, or a rollback duplicate shows up as a history no sequential
	// witness can explain.
	for _, k := range keys {
		op := shard.Op{Kind: shard.OpGet, Keys: []uint64{k}, Invoke: int64(time.Since(base))}
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK {
			t.Fatalf("sweep get(%d) = %d %+v", k, code, resp)
		}
		op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Found}
		op.Return = int64(time.Since(base))
		rec.record(op)
	}
	if _, ok := shard.Linearize(rec.ops); !ok {
		t.Fatalf("history of %d ops racing a live merge admits no sequential witness: %+v", len(rec.ops), rec.ops)
	}

	// Quiescence: no fence held on any surviving shard, the gauge clear.
	waitUntil(t, 2*time.Second, "fences free after the merge", func() bool { return fencesFree(s) })
	if s.resharding.Load() {
		t.Fatal("resharding gauge still set after the merge completed")
	}
	st := s.StatusSnapshot()
	if st.Server.Resharding || st.Server.PartitionerEpoch == 0 || st.Server.SpareShards != 0 {
		t.Fatalf("statusz after merge: %+v", st.Server)
	}
	for _, sh := range st.Shards {
		if sh.FenceHeld {
			t.Fatalf("shard %d fence_held still true after the merge", sh.Index)
		}
	}
}

// TestBuildSkewPlanShrunkFleet pins the loadgen replica-shrink fix: a
// status snapshot caught mid-merge reports a fleet already truncated
// (Shards = n-1) under a span table still naming owner n-1. The plan
// must size itself from the span table, not the fleet count — the old
// code panicked indexing pools[Owner(k)].
func TestBuildSkewPlanShrunkFleet(t *testing.T) {
	st := &ServerStatus{
		Shards:      2, // fleet truncated one ahead of the placement
		Partitioner: shard.KindRange,
		KeyUniverse: 16384,
		SpanStarts:  []uint64{0, 4096, 8192},
		SpanOwners:  []int{0, 1, 2},
	}
	plan := buildSkewPlan(st, 16384)
	if plan.shards != 3 {
		t.Fatalf("plan.shards = %d, want 3 (sized from the span table)", plan.shards)
	}
	if len(plan.pools) != 3 || len(plan.hot) != 3 {
		t.Fatalf("plan pools/hot sized %d/%d, want 3/3", len(plan.pools), len(plan.hot))
	}
	for sh, pool := range plan.pools {
		if len(pool) == 0 {
			t.Fatalf("shard %d pool empty under an even 3-span table", sh)
		}
		for _, k := range pool {
			if int(k/4096) != sh && !(sh == 2 && k >= 8192) {
				t.Fatalf("key %d pooled on shard %d", k, sh)
			}
		}
	}
}

// TestLoadgenRidesLiveMerge runs a skewed loadgen session across a live
// merge: the status sampler must detect the placement-epoch move,
// rebuild its partitioner replica with fewer spans (counted in
// report.Replans) and finish the session with zero client-visible
// errors.
func TestLoadgenRidesLiveMerge(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 4, Workers: 2, Partitioner: shard.KindRange, Preload: 8192,
		CrossRetries: 512,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Merge mid-session: swamp the routed counters so shard 3 is the
	// unambiguous coldest regardless of the loadgen traffic pattern.
	var mergeRes reshardResult
	var mergeCode int
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(200 * time.Millisecond)
		heatAllBut(s, 3, 10_000_000)
		mergeRes, mergeCode = s.ReshardMerge()
	}()

	phases, err := ParsePhases("mixed:1200ms")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoadgen(LoadgenOptions{
		BaseURL:  ts.URL,
		Conns:    4,
		Phases:   phases,
		KeyRange: 16384,
		Span:     256,
		Skew:     0.8,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if mergeCode != http.StatusOK || !mergeRes.Applied {
		t.Fatalf("mid-session merge = %d %+v", mergeCode, mergeRes)
	}
	if report.Total.Ops == 0 {
		t.Fatal("loadgen completed no operations")
	}
	if report.Total.Errors != 0 {
		t.Fatalf("loadgen hit %d errors riding a live merge", report.Total.Errors)
	}
	if report.Replans < 1 {
		t.Fatalf("report.Replans = %d, want >= 1 (the sampler must rebuild across the merge)", report.Replans)
	}
	if got := s.part().Shards(); got != 3 {
		t.Fatalf("placement has %d shards after the merge, want 3", got)
	}
}
