package perfmodel_test

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

func gen(m machine.Profile) *perfmodel.Generator {
	return &perfmodel.Generator{Machine: m, Seed: 99}
}

// TestDeterminism: the model must be reproducible (experiments depend on
// stable ground truth).
func TestDeterminism(t *testing.T) {
	g := gen(machine.A())
	ws := g.Workloads(20)
	cfg := config.Config{Alg: config.TL2, Threads: 4}
	for _, w := range ws {
		a := g.KPI(w, cfg, perfmodel.Throughput)
		b := g.KPI(w, cfg, perfmodel.Throughput)
		if a != b {
			t.Fatalf("KPI not deterministic: %f vs %f", a, b)
		}
	}
}

// TestKPIRelationships: exec time must be inverse to throughput up to the
// batch constant; EDP must be positive.
func TestKPIRelationships(t *testing.T) {
	g := gen(machine.A())
	w := g.Workloads(6)[3]
	for _, cfg := range g.Machine.Configs()[:10] {
		x := g.KPI(w, cfg, perfmodel.Throughput)
		tt := g.KPI(w, cfg, perfmodel.ExecTime)
		edp := g.KPI(w, cfg, perfmodel.EDP)
		if x <= 0 || tt <= 0 || edp <= 0 {
			t.Fatalf("non-positive KPI: %f %f %f", x, tt, edp)
		}
		// Same noise draw applies to both, so the product is constant.
		if math.Abs(x*tt-1e6)/1e6 > 0.15 {
			t.Errorf("throughput × exec-time = %f, want ≈1e6", x*tt)
		}
	}
}

// TestLabyrinthLikeAvoidsHTM: a workload that never fits HTM capacity must
// rank HTM poorly.
func TestLabyrinthLikeAvoidsHTM(t *testing.T) {
	g := gen(machine.A())
	var w perfmodel.Workload
	found := false
	for _, cand := range g.Workloads(60) {
		if cand.Archetype == perfmodel.LongWriteHeavy && cand.HTMFit < 0.05 {
			w, found = cand, true
			break
		}
	}
	if !found {
		t.Skip("no suitable workload sampled")
	}
	cfgs := g.Machine.Configs()
	row := make([]float64, len(cfgs))
	for i, c := range cfgs {
		row[i] = g.KPI(w, c, perfmodel.Throughput)
	}
	best := metrics.OptimumIndex(row, true)
	if cfgs[best].Alg == config.HTM {
		t.Errorf("HTM optimal for a capacity-overflowing workload: %v", cfgs[best])
	}
}

// TestShortTxLikesHTM: a short-transaction scalable workload should rank an
// HTM configuration at or near the top on Machine A.
func TestShortTxLikesHTM(t *testing.T) {
	g := gen(machine.A())
	cfgs := g.Machine.Configs()
	countTop := 0
	total := 0
	for _, w := range g.Workloads(120) {
		if w.Archetype != perfmodel.ShortTxScalable {
			continue
		}
		total++
		row := make([]float64, len(cfgs))
		for i, c := range cfgs {
			row[i] = g.KPI(w, c, perfmodel.Throughput)
		}
		if cfgs[metrics.OptimumIndex(row, true)].Alg == config.HTM {
			countTop++
		}
	}
	if total == 0 {
		t.Skip("no short-scalable workloads")
	}
	if countTop == 0 {
		t.Errorf("HTM never optimal for short scalable workloads (0/%d)", total)
	}
}

// TestNUMAPenaltyOnB: a memory-bound workload on Machine B should prefer a
// thread count at or below one socket over the full 48 threads.
func TestNUMAPenaltyOnB(t *testing.T) {
	g := gen(machine.B())
	for _, w := range g.Workloads(60) {
		if w.MemBound < 0.6 || w.Archetype != perfmodel.LongWriteHeavy {
			continue
		}
		low := g.KPI(w, config.Config{Alg: config.TinySTM, Threads: 8}, perfmodel.Throughput)
		high := g.KPI(w, config.Config{Alg: config.TinySTM, Threads: 48}, perfmodel.Throughput)
		if high > low*1.5 {
			t.Errorf("48t (%f) ≫ 8t (%f) for a NUMA-averse contended workload", high, low)
		}
		return
	}
	t.Skip("no suitable workload sampled")
}

// TestCapacityPolicyMatters: for a partially fitting workload, the GiveUp
// and Decrease policies must produce different KPIs (the dimension the
// paper tunes in Fig. 8's RBT/Memcached rows).
func TestCapacityPolicyMatters(t *testing.T) {
	g := gen(machine.A())
	for _, w := range g.Workloads(120) {
		if w.HTMFit < 0.2 || w.HTMFit > 0.8 {
			continue
		}
		a := g.KPI(w, config.Config{Alg: config.HTM, Threads: 4, Budget: 16, Policy: htm.PolicyGiveUp}, perfmodel.Throughput)
		b := g.KPI(w, config.Config{Alg: config.HTM, Threads: 4, Budget: 16, Policy: htm.PolicyDecrease}, perfmodel.Throughput)
		if math.Abs(a-b)/math.Max(a, b) < 0.01 {
			t.Errorf("capacity policy has no effect: giveup=%f decrease=%f", a, b)
		}
		return
	}
	t.Skip("no partially fitting workload sampled")
}

// TestFeatureVectorShape: the ML feature vector must have 17 entries and be
// finite.
func TestFeatureVectorShape(t *testing.T) {
	g := gen(machine.A())
	for _, w := range g.Workloads(12) {
		f := w.Features()
		if len(f) != 17 {
			t.Fatalf("features = %d, want 17", len(f))
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d not finite: %f", i, v)
			}
		}
	}
}

// TestScaleHeterogeneity: workload KPI scales must span orders of magnitude
// (the property that motivates rating distillation).
func TestScaleHeterogeneity(t *testing.T) {
	g := gen(machine.A())
	ws := g.Workloads(120)
	cfg := config.Config{Alg: config.TinySTM, Threads: 4}
	min, max := math.Inf(1), math.Inf(-1)
	for _, w := range ws {
		x := g.KPI(w, cfg, perfmodel.Throughput)
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max/min < 100 {
		t.Errorf("KPI scale spread %f×; want ≥100× across workloads", max/min)
	}
}
