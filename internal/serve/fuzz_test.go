package serve

// Fuzz target for the group-commit worker gate: arbitrary op programs,
// executed concurrently through a batching server, must leave a
// committed history that admits a sequential witness (shard.Linearize).
// This is the same linearizability-first gate the hand-written battery
// uses, pointed at fuzzer-chosen interleavings of the coalescing path.

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// FuzzGroupCommitLinearizable decodes the fuzz input into a program of
// point and cross-shard ops, replays it from three concurrent clients
// through a server with group commit engaged (fence granularity chosen
// by the input too), and checks the committed history linearizes.
func FuzzGroupCommitLinearizable(f *testing.F) {
	f.Add([]byte{0, 7, 14, 21, 28, 35, 42, 49, 3, 9, 27, 81})
	f.Add([]byte{255, 254, 253, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{4, 4, 4, 4, 5, 5, 5, 5, 0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) == 0 {
			return
		}
		if len(program) > 96 {
			program = program[:96]
		}
		granularity := FenceShard
		if len(program)%2 == 1 {
			granularity = FenceKey
		}
		s := newTestServer(t, Options{
			Shards: 2, Workers: 2, HeapWords: 1 << 16,
			GroupCommit: true, GroupCommitMax: 8,
			FenceGranularity: granularity,
		})
		// A small key set so ops collide; the first three keys straddle
		// both shards often enough to exercise the cross-shard path.
		keys := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
		base := time.Now()
		rec := &linRecorder{}

		const clients = 3
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < len(program); i += clients {
					b := program[i]
					k := keys[int(b/6)%len(keys)]
					v := uint64(i + 1)
					op := shard.Op{Invoke: int64(time.Since(base))}
					var resp response
					var code int
					switch b % 6 {
					case 0:
						op.Kind = shard.OpPut
						op.Keys, op.Args = []uint64{k}, []uint64{v}
						resp, code = s.submit(s.shardFor(&request{op: opPut, key: k}), &request{op: opPut, key: k, val: v})
						op.Oks = []bool{resp.Existed}
					case 1:
						op.Kind = shard.OpGet
						op.Keys = []uint64{k}
						resp, code = s.submit(s.shardFor(&request{op: opGet, key: k}), &request{op: opGet, key: k})
						op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Found}
					case 2:
						op.Kind = shard.OpDel
						op.Keys = []uint64{k}
						resp, code = s.submit(s.shardFor(&request{op: opDel, key: k}), &request{op: opDel, key: k})
						op.Oks = []bool{resp.Applied}
					case 3:
						old := uint64(b) // sometimes matches a prior write
						op.Kind = shard.OpCAS
						op.Keys, op.Args = []uint64{k}, []uint64{old, v}
						resp, code = s.submit(s.shardFor(&request{op: opCAS, key: k}), &request{op: opCAS, key: k, old: old, newv: v})
						op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Applied}
					case 4:
						op.Kind = shard.OpMPut
						op.Keys = append([]uint64{}, keys[:3]...)
						op.Args = []uint64{v, v, v}
						resp, code = s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
					default:
						op.Kind = shard.OpMGet
						op.Keys = append([]uint64{}, keys[:3]...)
						resp, code = s.submitCross(&request{op: opMGet, keys: op.Keys})
						op.Vals, op.Oks = resp.Vals, resp.Present
					}
					op.Return = int64(time.Since(base))
					// A failed op (shed, exhausted abort-all) applied
					// nothing, so it is simply absent from the history.
					if code == http.StatusOK {
						rec.record(op)
					}
				}
			}(c)
		}
		wg.Wait()

		if _, ok := shard.Linearize(rec.ops); !ok {
			t.Fatalf("group-commit history of %d ops admits no sequential witness: %+v", len(rec.ops), rec.ops)
		}
	})
}
