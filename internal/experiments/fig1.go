package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// Fig1Result reproduces Fig. 1: performance heterogeneity of TM
// configurations across workloads on both machines. For each workload the
// KPI of a small set of named configurations is normalized to the best
// configuration of the whole space.
type Fig1Result struct {
	MachineA Fig1Panel // throughput/Joule on Machine A (Fig. 1a)
	MachineB Fig1Panel // throughput on Machine B (Fig. 1b)
}

// Fig1Panel is one subfigure: workloads × configurations, normalized.
type Fig1Panel struct {
	KPI        string
	Workloads  []string
	Configs    []string
	Normalized [][]float64 // [workload][config], 1.0 = space-wide best
}

// Fig1 regenerates both panels from the performance model.
func Fig1(scale Scale) Fig1Result {
	res := Fig1Result{}

	// Panel (a): energy efficiency on Machine A; genome-, rbtree- and
	// labyrinth-like workloads vs NOrec:4t, Tiny:8t, HTM:8t.
	profA := machine.A()
	genA := &perfmodel.Generator{Machine: profA, Seed: 1001}
	wsA := pickArchetypes(genA, []perfmodel.Archetype{
		perfmodel.LongReadMostly,  // genome-like
		perfmodel.ShortTxScalable, // red-black-tree-like
		perfmodel.LongWriteHeavy,  // labyrinth-like
	})
	cfgA := []config.Config{
		{Alg: config.NOrec, Threads: 4},
		{Alg: config.TinySTM, Threads: 8},
		{Alg: config.HTM, Threads: 8, Budget: 4, Policy: htm.PolicyDecrease},
	}
	res.MachineA = buildPanel(genA, profA, wsA,
		[]string{"genome", "red-black tree", "labyrinth"}, cfgA,
		perfmodel.EDP, "Throughput/Joule (Machine A)")

	// Panel (b): throughput on Machine B; vacation-, rbtree- and
	// intruder-like workloads vs NOrec:48t, Tiny:8t, Swiss:32t.
	profB := machine.B()
	genB := &perfmodel.Generator{Machine: profB, Seed: 2002}
	wsB := pickArchetypes(genB, []perfmodel.Archetype{
		perfmodel.LongReadMostly,   // vacation-like
		perfmodel.ShortTxScalable,  // red-black-tree-like
		perfmodel.ShortTxContended, // intruder-like
	})
	cfgB := []config.Config{
		{Alg: config.NOrec, Threads: 48},
		{Alg: config.TinySTM, Threads: 8},
		{Alg: config.SwissTM, Threads: 32},
	}
	res.MachineB = buildPanel(genB, profB, wsB,
		[]string{"vacation", "red-black tree", "intruder"}, cfgB,
		perfmodel.Throughput, "Throughput (Machine B)")
	return res
}

// pickArchetypes samples one workload per requested archetype.
func pickArchetypes(gen *perfmodel.Generator, kinds []perfmodel.Archetype) []perfmodel.Workload {
	pool := gen.Workloads(120)
	out := make([]perfmodel.Workload, 0, len(kinds))
	for _, k := range kinds {
		for _, w := range pool {
			if w.Archetype == k {
				out = append(out, w)
				break
			}
		}
	}
	return out
}

func buildPanel(gen *perfmodel.Generator, prof machine.Profile, ws []perfmodel.Workload, names []string, cfgs []config.Config, kind perfmodel.KPIKind, kpiName string) Fig1Panel {
	space := prof.Configs()
	panel := Fig1Panel{KPI: kpiName, Workloads: names}
	for _, c := range cfgs {
		panel.Configs = append(panel.Configs, c.String())
	}
	for _, w := range ws {
		// Space-wide best for normalization.
		row := make([]float64, len(space))
		for i, c := range space {
			row[i] = gen.KPI(w, c, kind)
		}
		bestIdx := metrics.OptimumIndex(row, kind.HigherIsBetter())
		best := row[bestIdx]
		vals := make([]float64, len(cfgs))
		for i, c := range cfgs {
			v := gen.KPI(w, c, kind)
			if kind.HigherIsBetter() {
				vals[i] = v / best
			} else {
				vals[i] = best / v // lower is better → invert ratio
			}
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
		}
		panel.Normalized = append(panel.Normalized, vals)
	}
	return panel
}

// Print renders the two panels as tables.
func (r Fig1Result) Print(w io.Writer) {
	header(w, "Figure 1: performance heterogeneity in TM applications")
	for _, panel := range []Fig1Panel{r.MachineA, r.MachineB} {
		fmt.Fprintf(w, "\n%s (normalized to the best of the full space)\n", panel.KPI)
		fmt.Fprintf(w, "%-16s", "workload")
		for _, c := range panel.Configs {
			fmt.Fprintf(w, "%18s", c)
		}
		fmt.Fprintln(w)
		for i, name := range panel.Workloads {
			fmt.Fprintf(w, "%-16s", name)
			for _, v := range panel.Normalized[i] {
				fmt.Fprintf(w, "%18.3f", v)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nShape check: each column should be near 1.0 on one row and far below on another.")
}
