package scenario

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/config"
)

// mergeSpec is the pinned parameterization of the service-merge golden:
// merges fire at operations 1500 and 3000, so a 4000-op run installs
// exactly two PlanMergeColdest plans (4 -> 2 shards, placement epoch 2)
// and ends with a post-flip tail in which the client replica has
// re-synced to the shrunken span table and probe traffic routes
// bounce-free under the final placement. The replica refresh is pinned
// slow (every 512 ops) and the probe stream strong (100 per mille) so
// the second flip's stale window — ops 3001 to 3071, during which probes
// still route at the retired shard 2 — reliably produces bounces.
func mergeSpec() RunSpec {
	return RunSpec{
		Scenario: "service-merge",
		Params: Values{
			"shards":       "4",
			"minshards":    "2",
			"keyrange":     "16384",
			"hottenth":     "600",
			"probetenth":   "100",
			"mergeevery":   "1500",
			"refreshevery": "512",
			"migratebatch": "64",
			"crossevery":   "16",
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceMergeDeterminism pins the merge/shrink acceptance
// criterion: a fixed seed plans the same merges, migrates the same
// spans, retires the same shards and bounces the same stale-routed
// probes every run, producing byte-identical records across runs and
// against the committed golden. Regenerate with UPDATE_GOLDEN=1 after
// intentional changes.
func TestServiceMergeDeterminism(t *testing.T) {
	const golden = "testdata/service_merge.golden"
	a, err := Run(mergeSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mergeSpec())
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("two merge runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	m := a[0].Metrics
	if m["merges_installed"] != 2 || m["placement_epoch"] != 2 {
		t.Fatalf("want 2 installed merges at placement epoch 2: %v", m)
	}
	if m["shards_retired"] != 2 || m["shards_final"] != 2 {
		t.Fatalf("want 2 retired shards and a final fleet of 2: %v", m)
	}
	if m["keys_migrated"] == 0 {
		t.Fatalf("merges installed but no keys migrated: %v", m)
	}
	if m["moved_bounces"] == 0 {
		t.Fatalf("stale replica never bounced off a retired shard — the bugfix path went unexercised: %v", m)
	}
	if m["replica_replans"] != 2 {
		t.Fatalf("replica_replans = %d, want 2 (one shrink re-sync per flip): %v", m["replica_replans"], m)
	}
	if m["merges_blocked"] != 0 || m["merges_skipped"] != 0 {
		t.Fatalf("every scheduled merge must install under this spec: %v", m)
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, ja, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
	}
	if !bytes.Equal(ja, want) {
		t.Errorf("service-merge record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s",
			golden, ja, want)
	}
}
