package workloads

import "repro/internal/tm"

// Test-only accessors for unexported data-structure operations.

// SkipListInsert exposes SkipList.insert.
func SkipListInsert(s *SkipList, tx tm.Txn, k uint64) { s.insert(tx, 0, k, k, 4) }

// SkipListRemove exposes SkipList.remove.
func SkipListRemove(s *SkipList, tx tm.Txn, k uint64) { s.remove(tx, 0, k) }

// SkipListContains exposes SkipList.contains.
func SkipListContains(s *SkipList, tx tm.Txn, k uint64) bool { return s.contains(tx, k) }

// HashMapPut exposes HashMap.put.
func HashMapPut(m *HashMap, tx tm.Txn, k, v uint64) { m.put(tx, 0, k, v) }

// HashMapDel exposes HashMap.del.
func HashMapDel(m *HashMap, tx tm.Txn, k uint64) { m.del(tx, 0, k) }

// HashMapGet exposes HashMap.get.
func HashMapGet(m *HashMap, tx tm.Txn, k uint64) (uint64, bool) { return m.get(tx, k) }

// TPCCWarehouseYTD sums warehouse year-to-date totals (quiesced).
func TPCCWarehouseYTD(t *TPCC, h *tm.Heap) uint64 {
	var sum uint64
	for w := 0; w < t.Warehouses; w++ {
		sum += h.LoadWord(t.wTax + tm.Addr(w))
	}
	return sum
}

// TPCCDistrictYTD sums district year-to-date totals (quiesced).
func TPCCDistrictYTD(t *TPCC, h *tm.Heap) uint64 {
	var sum uint64
	for w := 0; w < t.Warehouses; w++ {
		for d := 0; d < t.Districts; d++ {
			sum += h.LoadWord(t.district(w, d) + 1)
		}
	}
	return sum
}

// KMeansAccumulators exposes the cluster accumulators: per-cluster
// per-dimension sums and the update counts (quiesced).
func KMeansAccumulators(k *KMeans, h *tm.Heap) (sums [][]uint64, counts []uint64) {
	sums = make([][]uint64, k.Clusters)
	counts = make([]uint64, k.Clusters)
	for c := 0; c < k.Clusters; c++ {
		base := k.centers + tm.Addr(c*(k.Dims+1))
		row := make([]uint64, k.Dims)
		for d := 0; d < k.Dims; d++ {
			row[d] = h.LoadWord(base + tm.Addr(d))
		}
		sums[c] = row
		counts[c] = h.LoadWord(base + tm.Addr(k.Dims))
	}
	return sums, counts
}
