package workloads

import (
	"fmt"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceMerge is the deterministic twin of proteusd's live merge (the
// shrink direction of internal/serve POST /admin/reshard): a
// range-partitioned store whose traffic deliberately abandons the high
// key spans, so PlanMergeColdest keeps retiring the top shard — fenced
// span copy into the live left-adjacent recipient, an epoch-stamped
// placement flip one shard smaller, then the donor's retirement — while
// clients keep routing through a stale placement replica refreshed only
// on a fixed cadence. A probe stream aimed at the second-highest span
// keeps touching keys the merges move, so stale-routed operations bounce
// off the retired donor's placement-epoch word and re-route, pinning the
// shrink side of the stale-replica bugfix family: the replica rebuild
// must handle a placement with fewer spans than it cached, every bounce
// is counted, and Verify sweeps every key onto the shard the final
// placement owns it on and proves the retired stores are empty.
//
// Time is operation count, not wall clock, exactly like ServiceReshard:
// merges fire at fixed operation indices (every MergeEvery-th op, down
// to MinShards), the replica refreshes at fixed indices, and fence
// heartbeats are stamped with operation numbers — so a fixed seed merges
// the same spans at the same operations every run, the property the
// byte-pinned service-merge golden leans on. The live daemon's merge
// (wall-clock automerge, HTTP admin surface, real goroutines, crash
// rollback) is exercised by the serve tests and the merge e2e job.
type ServiceMerge struct {
	// Label overrides the workload name (default "service-merge").
	Label string
	// Shards is the initial shard count (default 4).
	Shards int
	// MinShards is the shard-count floor; each merge shrinks the fleet
	// by one until it is reached (default 2).
	MinShards int
	// KeyRange bounds the keys and is the range partitioner's universe
	// (default 1 << 14).
	KeyRange int
	// InitialSize pre-populates the stores uniformly over the whole key
	// range (default KeyRange/2) — so the high spans hold real keys for
	// the merges to migrate even though traffic abandons them.
	InitialSize int
	// HotTenth is the per-mille probability that an operation draws its
	// key from the hot span [0, KeyRange/8); the rest of the non-probe
	// traffic is uniform over the lower half [0, KeyRange/2). The top
	// shard therefore carries strictly less routed load than every
	// survivor and PlanMergeColdest keeps electing it (default 600).
	HotTenth int
	// ProbeTenth is the per-mille probability that an operation probes
	// the window [KeyRange/2, 3*KeyRange/4) — the spans the merges move.
	// Probes issued between a flip and the next replica refresh are the
	// ops that bounce (default 30).
	ProbeTenth int
	// MergeEvery is the merge cadence in operations: every MergeEvery-th
	// operation attempts one plan-and-migrate step (default 1500).
	MergeEvery int
	// RefreshEvery is the client placement-replica refresh cadence in
	// operations (default 64).
	RefreshEvery int
	// MigrateBatch is the fenced copy/delete batch width in keys
	// (default 64).
	MigrateBatch int
	// CrossEvery makes every CrossEvery-th operation a cross-shard batch
	// put, showing the merge composes with the 2PC fences (default 16).
	CrossEvery int
	// BatchKeys is the cross-shard batch width (default 4).
	BatchKeys int

	sets  []*RBSet // Shards stores; retired ones stay allocated but empty
	words tm.Addr  // 4 per shard: fence token, fence epoch, heartbeat, placement epoch
	ops   atomic.Uint64

	place   atomic.Pointer[mergePlace]
	replica atomic.Pointer[mergePlace]
	routed  []atomic.Uint64

	merges      atomic.Uint64
	mergeSkips  atomic.Uint64
	mergeBlocks atomic.Uint64
	retired     atomic.Uint64
	migrated    atomic.Uint64
	bounces     atomic.Uint64
	replans     atomic.Uint64
	batches     atomic.Uint64
	committed   atomic.Uint64
	blocked     atomic.Uint64
	fencedSkip  atomic.Uint64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, minShards, keyRange            int
	hotTenth, probeTenth                   int
	mergeEvery, refreshEvery, migrateBatch int
	crossEvery, batchKeys                  int
}

// mergePlace is one epoch-stamped placement: what serve's shard.Epoched
// publishes, as a plain immutable value.
type mergePlace struct {
	part  *shard.RangePartitioner
	epoch uint64
}

// Name implements Workload.
func (s *ServiceMerge) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-merge"
}

func (s *ServiceMerge) params() (shards, minShards, keyRange, initial, hotTenth, probeTenth, mergeEvery, refreshEvery, migrateBatch, crossEvery, batchKeys int) {
	shards = s.Shards
	if shards <= 0 {
		shards = 4
	}
	minShards = s.MinShards
	if minShards <= 0 {
		minShards = 2
	}
	if minShards > shards {
		minShards = shards
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	hotTenth = s.HotTenth
	if hotTenth <= 0 {
		hotTenth = 600
	}
	probeTenth = s.ProbeTenth
	if probeTenth <= 0 {
		probeTenth = 30
	}
	mergeEvery = s.MergeEvery
	if mergeEvery <= 0 {
		mergeEvery = 1500
	}
	refreshEvery = s.RefreshEvery
	if refreshEvery <= 0 {
		refreshEvery = 64
	}
	migrateBatch = s.MigrateBatch
	if migrateBatch <= 0 {
		migrateBatch = 64
	}
	crossEvery = s.CrossEvery
	if crossEvery <= 0 {
		crossEvery = 16
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	return
}

// Setup implements Workload.
func (s *ServiceMerge) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	s.shards, s.minShards, s.keyRange, initial, s.hotTenth, s.probeTenth,
		s.mergeEvery, s.refreshEvery, s.migrateBatch, s.crossEvery, s.batchKeys = s.params()
	s.sets = make([]*RBSet, s.shards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("merge: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	words, err := h.Alloc(4 * s.shards)
	if err != nil {
		return fmt.Errorf("merge: fence words: %w", err)
	}
	s.words = words
	p := &mergePlace{part: shard.NewRange(s.shards, uint64(s.keyRange)), epoch: 0}
	s.place.Store(p)
	s.replica.Store(p)
	s.routed = make([]atomic.Uint64, s.shards)
	s.ops.Store(0)
	for _, c := range []*atomic.Uint64{&s.merges, &s.mergeSkips, &s.mergeBlocks, &s.retired, &s.migrated,
		&s.bounces, &s.replans, &s.batches, &s.committed, &s.blocked, &s.fencedSkip} {
		c.Store(0)
	}
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := p.part.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// Fence word addresses of shard i: token, fence epoch, heartbeat, and
// the placement-epoch word — the store-side witness a stale-routed
// operation bounces off after the shard retires.
func (s *ServiceMerge) fence(i int) tm.Addr  { return s.words + tm.Addr(4*i) }
func (s *ServiceMerge) fepoch(i int) tm.Addr { return s.words + tm.Addr(4*i) + 1 }
func (s *ServiceMerge) beat(i int) tm.Addr   { return s.words + tm.Addr(4*i) + 2 }
func (s *ServiceMerge) placew(i int) tm.Addr { return s.words + tm.Addr(4*i) + 3 }

// key draws a key: hot low span, a probe into the merge-moved window, or
// uniform over the lower half — never the top quarter, so the top shard
// stays the strict coldest and every scheduled merge elects it.
func (s *ServiceMerge) key(rng *Rand) uint64 {
	p := rng.Intn(1000)
	if p < s.hotTenth {
		return uint64(rng.Intn(s.keyRange / 8))
	}
	if p < s.hotTenth+s.probeTenth {
		return uint64(s.keyRange/2 + rng.Intn(s.keyRange/4))
	}
	return uint64(rng.Intn(s.keyRange / 2))
}

// Op implements Workload: refresh the placement replica on its cadence,
// run one merge step on its cadence, else a cross-shard batch or a
// single-key operation routed through the (possibly stale) replica.
func (s *ServiceMerge) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if n%uint64(s.refreshEvery) == 0 {
		live := s.place.Load()
		if rep := s.replica.Load(); rep.epoch != live.epoch {
			// The rebuilt replica has fewer spans than the cached one — the
			// client-side shrink the loadgen bugfix pins.
			s.replica.Store(live)
			s.replans.Add(1)
		}
	}
	if n%uint64(s.mergeEvery) == 0 {
		s.mergeStep(r, self, n)
		return
	}
	if n%uint64(s.crossEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	s.singleKey(r, self, rng, n)
}

// singleKey routes one point operation through the client replica. A
// replica built before a flip can route a probe key at the retired
// donor; its placement-epoch word has advanced past the replica's
// epoch, so the operation bounces — nothing applied — and retries
// against the authoritative placement, exactly the serve retired-shard
// drainer contract.
func (s *ServiceMerge) singleKey(r Runner, self int, rng *Rand, n uint64) {
	k := s.key(rng)
	mix := serviceMixes["mixed"]
	p := rng.Float64()
	plan := s.replica.Load()
	for {
		o := plan.part.Owner(k)
		set, fence, placew := s.sets[o], s.fence(o), s.placew(o)
		var fenced, moved bool
		r.Atomic(self, func(tx tm.Txn) {
			fenced, moved = false, false
			if tx.Load(placew) > plan.epoch {
				moved = true
				return
			}
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			switch {
			case p < mix.Get:
				set.Get(tx, k)
			case p < mix.Get+mix.Put:
				set.Insert(tx, self, k, n)
			case p < mix.Get+mix.Put+mix.Del:
				set.Delete(tx, self, k)
			default:
				if v, ok := set.Get(tx, k); ok {
					set.Insert(tx, self, k, v+1)
				}
			}
		})
		if moved {
			// Stale route: the shard retired (or shed the span) since the
			// replica was built. Re-route against the live placement.
			s.bounces.Add(1)
			plan = s.place.Load()
			continue
		}
		if fenced {
			s.fencedSkip.Add(1)
		} else {
			s.routed[o].Add(1)
		}
		return
	}
}

// crossBatch runs one cross-shard batch put against the authoritative
// placement: ordered fenced acquire, apply per participant, release.
func (s *ServiceMerge) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	live := s.place.Load()
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = s.key(rng)
	}
	parts := live.part.Participants(keys)
	token := n // unique and nonzero
	epochs := make(map[int]uint64, len(parts))
	acquired := 0
	for _, p := range parts {
		fw, ew, bw := s.fence(p), s.fepoch(p), s.beat(p)
		var got bool
		var e uint64
		r.Atomic(self, func(tx tm.Txn) {
			got = false
			if tx.Load(fw) != 0 {
				return
			}
			e = tx.Load(ew) + 1
			tx.Store(fw, token)
			tx.Store(ew, e)
			tx.Store(bw, n)
			got = true
		})
		if !got {
			break
		}
		epochs[p] = e
		acquired++
	}
	if acquired < len(parts) {
		for _, p := range parts[:acquired] {
			s.release(r, self, p, token, epochs[p])
		}
		s.blocked.Add(1)
		return
	}
	s.batches.Add(1)
	for _, p := range parts {
		set, fw, ew := s.sets[p], s.fence(p), s.fepoch(p)
		e := epochs[p]
		r.Atomic(self, func(tx tm.Txn) {
			if tx.Load(fw) != token || tx.Load(ew) != e {
				return
			}
			for _, k := range keys {
				if live.part.Owner(k) == p {
					set.Insert(tx, self, k, n)
				}
			}
			tx.Store(fw, 0)
		})
		s.routed[p].Add(1)
	}
	s.committed.Add(1)
}

// release frees shard p's fence iff still held by (token, epoch).
func (s *ServiceMerge) release(r Runner, self int, p int, token, epoch uint64) {
	fw, ew := s.fence(p), s.fepoch(p)
	r.Atomic(self, func(tx tm.Txn) {
		if tx.Load(fw) == token && tx.Load(ew) == epoch {
			tx.Store(fw, 0)
		}
	})
}

// mergeStep is one live shrink: plan PlanMergeColdest from the routed-op
// load signal, fence the retiring donor, copy its span into the live
// recipient in batches, install the shrunken placement, bump the donor's
// placement-epoch word, delete the moved keys off the donor, release,
// retire. A no-op plan (ok=false) is counted and skipped, never
// installed — the PlanMergeColdest-caller contract.
func (s *ServiceMerge) mergeStep(r Runner, self int, n uint64) {
	live := s.place.Load()
	if live.part.Shards() <= s.minShards {
		s.mergeSkips.Add(1)
		return
	}
	load := make([]uint64, live.part.Shards())
	for i := range load {
		load[i] = s.routed[i].Load()
	}
	plan, ok := live.part.PlanMergeColdest(load)
	if !ok {
		s.mergeSkips.Add(1)
		return
	}
	donor, recip := plan.Donor, plan.Recipient
	token := n
	fw, ew, bw := s.fence(donor), s.fepoch(donor), s.beat(donor)
	var got bool
	r.Atomic(self, func(tx tm.Txn) {
		got = false
		if tx.Load(fw) != 0 {
			return
		}
		tx.Store(fw, token)
		tx.Store(ew, tx.Load(ew)+1)
		tx.Store(bw, n)
		got = true
	})
	if !got {
		s.mergeBlocks.Add(1)
		return
	}

	// Copy the moved span donor -> recipient in fenced batches. The
	// recipient is live — it keeps serving its own keys throughout — but
	// the donor's fence keeps writers off the moved span, so no copied
	// key can go stale between batch boundaries.
	src, dst := s.sets[donor], s.sets[recip]
	var moved uint64
	cursor, done := plan.MovedLo, false
	for !done {
		var batch int
		r.Atomic(self, func(tx tm.Txn) {
			ks := make([]uint64, 0, s.migrateBatch)
			vs := make([]uint64, 0, s.migrateBatch)
			src.AscendRange(tx, cursor, plan.MovedHi, func(k, v uint64) bool {
				ks = append(ks, k)
				vs = append(vs, v)
				return len(ks) < s.migrateBatch
			})
			for i, k := range ks {
				dst.Insert(tx, self, k, vs[i])
			}
			tx.Store(bw, n)
			if len(ks) < s.migrateBatch || ks[len(ks)-1] == plan.MovedHi {
				done = true
			} else {
				cursor = ks[len(ks)-1] + 1
			}
			batch = len(ks)
		})
		moved += uint64(batch)
	}

	// Flip: publish the shrunken placement, then raise the retiring
	// donor's placement-epoch word so stale-routed operations bounce,
	// then retire the moved keys from the donor — the store must end
	// empty, the twin of the serve drain-and-retire.
	newEpoch := live.epoch + 1
	s.place.Store(&mergePlace{part: plan.Merged, epoch: newEpoch})
	r.Atomic(self, func(tx tm.Txn) {
		tx.Store(s.placew(donor), newEpoch)
		tx.Store(bw, n)
	})
	cursor, done = plan.MovedLo, false
	for !done {
		r.Atomic(self, func(tx tm.Txn) {
			ks := make([]uint64, 0, s.migrateBatch)
			src.AscendRange(tx, cursor, plan.MovedHi, func(k, _ uint64) bool {
				ks = append(ks, k)
				return len(ks) < s.migrateBatch
			})
			for _, k := range ks {
				src.Delete(tx, self, k)
			}
			tx.Store(bw, n)
			if len(ks) < s.migrateBatch {
				done = true
			} else {
				cursor = ks[len(ks)-1] + 1
			}
		})
	}
	r.Atomic(self, func(tx tm.Txn) {
		if tx.Load(fw) == token {
			tx.Store(fw, 0)
		}
	})
	s.merges.Add(1)
	s.retired.Add(1)
	s.migrated.Add(moved)
}

// Metrics implements Metered.
func (s *ServiceMerge) Metrics() map[string]uint64 {
	return map[string]uint64{
		"merges_installed": s.merges.Load(),
		"merges_skipped":   s.mergeSkips.Load(),
		"merges_blocked":   s.mergeBlocks.Load(),
		"shards_retired":   s.retired.Load(),
		"shards_final":     uint64(s.place.Load().part.Shards()),
		"keys_migrated":    s.migrated.Load(),
		"placement_epoch":  s.place.Load().epoch,
		"moved_bounces":    s.bounces.Load(),
		"replica_replans":  s.replans.Load(),
		"cross_batches":    s.batches.Load(),
		"cross_committed":  s.committed.Load(),
		"batch_blocked":    s.blocked.Load(),
		"fenced_skips":     s.fencedSkip.Load(),
	}
}

// Verify implements Verifier: every fence free, every key on the shard
// the final placement owns it on, and every retired store empty — a key
// left on a retired shard is exactly the lost-key bug the merge protocol
// exists to prevent.
func (s *ServiceMerge) Verify(h *tm.Heap) error {
	live := s.place.Load()
	seq := NewBareRunner(seqAlg(), h, 1)
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if v := tx.Load(s.fence(i)); v != 0 {
				err = fmt.Errorf("merge: shard %d fence left held by %d", i, v)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if i >= live.part.Shards() {
					err = fmt.Errorf("merge: key %d on retired shard %d (fleet is %d wide)", k, i, live.part.Shards())
					return false
				}
				if o := live.part.Owner(k); o != i {
					err = fmt.Errorf("merge: key %d found on shard %d but owned by %d at epoch %d", k, i, o, live.epoch)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
