package proteustm_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestPublicDocComments is the godoc audit gate for the public API: every
// exported identifier declared in proteustm.go must carry a doc comment,
// and type/function/method comments must follow the godoc convention of
// starting with the identifier's name (const/var specs may instead be
// covered by a comment on their declaration group). CI runs this next to
// `go vet`, so an undocumented export fails the build, not a review.
func TestPublicDocComments(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "proteustm.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing proteustm.go: %v", err)
	}
	var missing, misnamed []string
	pos := func(n ast.Node) string { return fset.Position(n.Pos()).String() }

	checkNamed := func(name string, doc *ast.CommentGroup, node ast.Node) {
		if !ast.IsExported(name) {
			return
		}
		if doc == nil || strings.TrimSpace(doc.Text()) == "" {
			missing = append(missing, fmt.Sprintf("%s: %s", pos(node), name))
			return
		}
		first := strings.Fields(doc.Text())
		if len(first) == 0 || first[0] != name {
			misnamed = append(misnamed, fmt.Sprintf("%s: %s (doc starts %q, want the identifier name)", pos(node), name, first[0]))
		}
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			checkNamed(d.Name.Name, d.Doc, d)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					doc := sp.Doc
					if doc == nil {
						doc = d.Doc
					}
					checkNamed(sp.Name.Name, doc, sp)
				case *ast.ValueSpec:
					// Const/var specs are fine under a group comment.
					covered := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
					for _, name := range sp.Names {
						if !ast.IsExported(name.Name) {
							continue
						}
						specDoc := sp.Doc != nil && strings.TrimSpace(sp.Doc.Text()) != ""
						lineDoc := sp.Comment != nil && strings.TrimSpace(sp.Comment.Text()) != ""
						if !covered && !specDoc && !lineDoc {
							missing = append(missing, fmt.Sprintf("%s: %s", pos(sp), name.Name))
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("exported identifier without doc comment: %s", m)
	}
	for _, m := range misnamed {
		t.Errorf("doc comment does not start with identifier: %s", m)
	}
}

// TestRequiredExamples pins the runnable examples the public API promises:
// Open, System.Spawn and WithAutoTuning each have an Example* function in
// example_test.go.
func TestRequiredExamples(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "example_test.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing example_test.go: %v", err)
	}
	have := map[string]bool{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			have[fd.Name.Name] = true
		}
	}
	for _, want := range []string{"ExampleOpen", "ExampleSystem_Spawn", "ExampleWithAutoTuning"} {
		if !have[want] {
			t.Errorf("example_test.go is missing %s", want)
		}
	}
}
