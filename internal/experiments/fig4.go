package experiments

import (
	"fmt"
	"io"

	"repro/internal/cf"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/rectm"
)

// Fig4Result reproduces Fig. 4: accuracy of the rating-distillation
// preprocessing versus the alternatives, as a function of the number of
// randomly sampled configurations per test workload (execution time on
// Machine A, KNN with cosine similarity).
type Fig4Result struct {
	SampleCounts []int
	Schemes      []string
	// MAPE and MDFO are [scheme][sampleCount] means over the test set.
	MAPE [][]float64
	MDFO [][]float64
}

// Fig4 runs the experiment.
func Fig4(scale Scale) (Fig4Result, error) {
	_, ws, truth := truthFor(machine.A(), scale.workloadCount(), perfmodel.ExecTime, 12345)
	train, test, _, _ := splitRows(truth, ws, 0.3)

	counts := []int{2, 3, 5, 10, 20}
	schemes := []string{"none", "max", "rc", "distill", "ideal"}
	res := Fig4Result{SampleCounts: counts, Schemes: schemes}

	for _, name := range schemes {
		var norm cf.Normalizer
		switch name {
		case "none":
			norm = cf.NoNorm{}
		case "max":
			norm = &cf.MaxNorm{}
		case "rc":
			norm = &cf.RCNorm{}
		case "distill":
			norm = &cf.Distiller{}
		case "ideal":
			norm = cf.NewIdealNorm(cf.GoodnessMatrix(truth, false))
		}
		rec, err := rectm.Train(train, false, rectm.Options{
			Normalizer: norm,
			Predictor:  func() cf.Predictor { return &cf.KNN{K: 10, Sim: cf.Cosine} },
			Learners:   10,
			Seed:       7,
		})
		if err != nil {
			return res, fmt.Errorf("fig4: training %s: %w", name, err)
		}
		var mapeRow, mdfoRow []float64
		for _, nKnown := range counts {
			var dfos, mapes []float64
			rng := uint64(99)
			for u := 0; u < test.Rows; u++ {
				row := make([]float64, test.Cols)
				for i := range row {
					row[i] = cf.Missing
				}
				seen := 0
				for seen < nKnown {
					rng = rng*6364136223846793005 + 1442695040888963407
					i := int(rng>>33) % test.Cols
					if cf.IsMissing(row[i]) {
						row[i] = test.Data[u][i]
						seen++
					}
				}
				pred := rec.PredictKPI(row)
				chosen := metrics.OptimumIndex(pred, false)
				dfos = append(dfos, metrics.DFO(test.Data[u], chosen, false))
				mapes = append(mapes, metrics.MAPE(test.Data[u], pred))
			}
			mapeRow = append(mapeRow, metrics.Mean(mapes))
			mdfoRow = append(mdfoRow, metrics.Mean(dfos))
		}
		res.MAPE = append(res.MAPE, mapeRow)
		res.MDFO = append(res.MDFO, mdfoRow)
	}
	return res, nil
}

// Print renders the two panels.
func (r Fig4Result) Print(w io.Writer) {
	header(w, "Figure 4: rating distillation vs alternative normalizations (exec time, Machine A, KNN-cosine)")
	panels := []struct {
		name string
		data [][]float64
	}{{"MAPE (Fig. 4a)", r.MAPE}, {"MDFO (Fig. 4b)", r.MDFO}}
	for _, p := range panels {
		panel, data := p.name, p.data
		fmt.Fprintf(w, "\n%s\n%-10s", panel, "scheme")
		for _, c := range r.SampleCounts {
			fmt.Fprintf(w, "%10s", fmt.Sprintf("n=%d", c))
		}
		fmt.Fprintln(w)
		for si, s := range r.Schemes {
			fmt.Fprintf(w, "%-10s", s)
			for ci := range r.SampleCounts {
				fmt.Fprintf(w, "%10.3f", data[si][ci])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nShape check: distill ≈ ideal ≪ {none, max}; rc in between on MAPE.")
}
