package workloads

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tm"
)

// ServiceDiurnal models a service riding a diurnal traffic curve: an
// open-loop client population whose offered rate alternates between a
// busy and an idle level (the day/night square wave), with a small
// sub-step ripple superimposed on each level. The store traffic itself is
// a plain fixed-mix key-value stream — what varies is OfferedRate, which
// the scenario harness's serving model turns into the delivered-KPI curve
// the change monitor watches.
//
// The ripple is the hostile part: it shifts the level by RipplePct —
// big enough that a dwell-free, band-free detector alarms on it once its
// deviation estimate has tightened on the flat level, yet comfortably
// inside the monitor's default hysteresis band. A tuner without the
// dwell/band gates therefore burns an exploration phase on every ripple
// edge (reconfiguration churn); the gated tuner re-tunes only on the
// genuine busy/idle transitions. The scenario's A/B asserts exactly that
// install-count gap.
type ServiceDiurnal struct {
	// Label overrides the workload name (default "service-diurnal").
	Label string
	// KeyRange bounds the keys (default 1 << 12).
	KeyRange int
	// InitialSize pre-populates the store (default KeyRange/2).
	InitialSize int
	// Span is the width of a range scan (default 64).
	Span int
	// Mix is the operation mix name (default "read-heavy").
	Mix string
	// PeriodOps is the length of one full busy+idle cycle in operations
	// (default 12000: half busy, half idle).
	PeriodOps int
	// RateBusy and RateIdle are the offered rates (ops/sec) of the two
	// halves of the cycle (defaults 100000 and 50000). Both should sit
	// below the modeled capacity of every configuration in the tuning
	// space so the delivered KPI is the rate curve itself.
	RateBusy float64
	// RateIdle is the night-side offered rate.
	RateIdle float64
	// RipplePct is the relative height of the sub-step ripple (default
	// 0.035, i.e. +3.5% over the second half of each busy/idle level —
	// inside the monitor's default 4% hysteresis band).
	RipplePct float64

	set *RBSet
	ops atomic.Uint64

	// Resolved by Setup so Op and OfferedRate stay cheap.
	keyRange, span, periodOps int
	rateBusy, rateIdle        float64
	ripple                    float64
	mix                       ServiceOpMix
}

// Name implements Workload.
func (s *ServiceDiurnal) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-diurnal"
}

func (s *ServiceDiurnal) params() (keyRange, initial, span, periodOps int, rateBusy, rateIdle, ripple float64, mix ServiceOpMix, err error) {
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 12
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	span = s.Span
	if span <= 0 {
		span = 64
	}
	periodOps = s.PeriodOps
	if periodOps <= 0 {
		periodOps = 12000
	}
	if periodOps < 4 {
		periodOps = 4
	}
	rateBusy = s.RateBusy
	if rateBusy <= 0 {
		rateBusy = 100000
	}
	rateIdle = s.RateIdle
	if rateIdle <= 0 {
		rateIdle = 50000
	}
	ripple = s.RipplePct
	if ripple <= 0 {
		ripple = 0.035
	}
	name := s.Mix
	if name == "" {
		name = "read-heavy"
	}
	mix, err = ServiceMixByName(name)
	if err != nil {
		return
	}
	mix = mix.Normalize()
	return
}

// Setup implements Workload.
func (s *ServiceDiurnal) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	var err error
	s.keyRange, initial, s.span, s.periodOps, s.rateBusy, s.rateIdle, s.ripple, s.mix, err = s.params()
	if err != nil {
		return fmt.Errorf("service-diurnal: %w", err)
	}
	set, err := NewRBSet(h)
	if err != nil {
		return fmt.Errorf("service-diurnal: %w", err)
	}
	s.set = set
	s.ops.Store(0)
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		seq.Atomic(0, func(tx tm.Txn) { s.set.Insert(tx, 0, k, k) })
	}
	return nil
}

// OfferedRate implements Rated: the busy/idle square wave with the
// sub-step ripple. Each half of the cycle holds its base level for its
// first half and the rippled level (+RipplePct) for its second, so every
// level is flat long enough for a change detector's deviation estimate
// to tighten before the next edge arrives — exactly the trap that makes
// an ungated detector churn.
func (s *ServiceDiurnal) OfferedRate(n uint64) float64 {
	period := uint64(s.periodOps)
	pos := n % period
	half := period / 2
	base := s.rateBusy
	if pos >= half {
		base = s.rateIdle
		pos -= half
	}
	if pos >= half/2 {
		base *= 1 + s.ripple
	}
	return base
}

// Op implements Workload: one fixed-mix key-value request. The shared
// operation counter keeps OfferedRate's phase aligned with total served
// traffic.
func (s *ServiceDiurnal) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	k := uint64(rng.Intn(s.keyRange))
	p := rng.Float64()
	switch {
	case p < s.mix.Get:
		r.Atomic(self, func(tx tm.Txn) { s.set.Get(tx, k) })
	case p < s.mix.Get+s.mix.Put:
		r.Atomic(self, func(tx tm.Txn) { s.set.Insert(tx, self, k, n) })
	case p < s.mix.Get+s.mix.Put+s.mix.Del:
		r.Atomic(self, func(tx tm.Txn) { s.set.Delete(tx, self, k) })
	case p < s.mix.Get+s.mix.Put+s.mix.Del+s.mix.CAS:
		r.Atomic(self, func(tx tm.Txn) {
			if v, ok := s.set.Get(tx, k); ok {
				s.set.Insert(tx, self, k, v+1)
			}
		})
	default:
		hi := k + uint64(s.span)
		r.Atomic(self, func(tx tm.Txn) {
			s.set.AscendRange(tx, k, hi, func(_, _ uint64) bool { return true })
		})
	}
}
