// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus ablation benchmarks for the design decisions called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the Quick-scale experiment once per
// benchmark iteration and report the headline quantities via b.ReportMetric,
// so `go test -bench` regenerates every result end to end. cmd/proteusbench
// prints the full tables at paper scale.
package proteustm_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/cf"
	"repro/internal/experiments"
	"repro/internal/stm"
	"repro/internal/tm"
)

// --- Experiment benchmarks: one per table/figure ------------------------------

// BenchmarkFig1 regenerates the performance-heterogeneity panels.
func BenchmarkFig1(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(experiments.Quick)
		// Headline: the worst normalized performance of a "good" config
		// on a foreign workload (the smaller, the stronger the case for
		// adaptation).
		worst = 1.0
		for _, panel := range [][]([]float64){r.MachineA.Normalized, r.MachineB.Normalized} {
			for _, row := range panel {
				for _, v := range row {
					if v < worst {
						worst = v
					}
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-normalized-perf")
}

// BenchmarkTable4 measures PolyTM's dispatch overhead.
func BenchmarkTable4(b *testing.B) {
	var maxOv float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		maxOv = 0
		for bi, backend := range r.Backends {
			if backend == "HTM-naive" {
				continue
			}
			for _, v := range r.OverheadPct[bi] {
				if v > maxOv {
					maxOv = v
				}
			}
		}
	}
	b.ReportMetric(maxOv, "max-dispatch-overhead-%")
}

// BenchmarkTable5 measures reconfiguration latency.
func BenchmarkTable5(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.LatencyMicros {
			for _, v := range row {
				if v > worst {
					worst = v
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-switch-latency-µs")
}

// BenchmarkFig4 regenerates the rating-distillation comparison.
func BenchmarkFig4(b *testing.B) {
	var distillMDFO5 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for si, s := range r.Schemes {
			if s == "distill" {
				distillMDFO5 = r.MDFO[si][2] // n=5 column
			}
		}
	}
	b.ReportMetric(distillMDFO5, "distill-MDFO@5")
}

// BenchmarkFig5 regenerates the exploration-policy comparison.
func BenchmarkFig5(b *testing.B) {
	var eiAdvantage float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: Random's MDFO over EI's at 6 explorations (EDP, A).
		if r.MDFOEDPA[0][2] > 0 {
			eiAdvantage = r.MDFOEDPA[2][2] / r.MDFOEDPA[0][2]
		}
	}
	b.ReportMetric(eiAdvantage, "random/EI-MDFO-ratio@6")
}

// BenchmarkFig6 regenerates the stopping-criterion comparison.
func BenchmarkFig6(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: Naive minus Cautious mean DFO at ε=0.01 (exec, B).
		gap = r.ExecB.Mean[0][0] - r.ExecB.Mean[1][0]
	}
	b.ReportMetric(gap, "naive-minus-cautious-MDFO")
}

// BenchmarkFig7 regenerates the ProteusTM-vs-ML comparison.
func BenchmarkFig7(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		p90 = r.Splits[0].P90["ProteusTM"]
	}
	b.ReportMetric(p90, "proteus-p90-DFO@30%train")
}

// BenchmarkFig8 runs the live online-optimization experiment (includes
// Table 6).
func BenchmarkFig8(b *testing.B) {
	var meanDFO float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, app := range r.Apps {
			for _, d := range app.ProteusDFO {
				sum += d
				n++
			}
		}
		meanDFO = sum / float64(n)
	}
	b.ReportMetric(meanDFO, "proteus-mean-DFO")
}

// BenchmarkFig9 runs the live interference experiment.
func BenchmarkFig9(b *testing.B) {
	var reopts float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		reopts = float64(r.Reoptimizations)
	}
	b.ReportMetric(reopts, "optimization-phases")
}

// --- Micro-benchmarks and ablations ---------------------------------------------
//
// The benchmark bodies AND the case grid live in internal/bench so that
// `proteusbench bench` runs the identical code via testing.Benchmark and
// persists the results as BENCH_<n>.json regression records (see
// docs/performance.md). The Benchmark* functions below only re-root
// bench.Suite() under the `go test -bench` hierarchy — extending the grid
// in Suite() automatically extends them.

// runSuitePrefix runs every suite case under the given top-level name as a
// sub-benchmark (a case "Algorithms/tl2/4t" runs as tl2/4t under
// BenchmarkAlgorithms, matching the record name exactly).
func runSuitePrefix(b *testing.B, prefix string) {
	ran := false
	for _, cs := range bench.Suite() {
		if sub, ok := strings.CutPrefix(cs.Name, prefix+"/"); ok {
			b.Run(sub, cs.Fn)
			ran = true
		}
	}
	if !ran {
		b.Fatalf("no suite cases under %q; bench.Suite() and bench_test.go drifted", prefix)
	}
}

// BenchmarkAlgorithms compares the bare TM backends on an uncontended
// counter workload at 1, 4 and 8 threads.
func BenchmarkAlgorithms(b *testing.B) { runSuitePrefix(b, "Algorithms") }

// BenchmarkAlgorithmsWriteHeavy stresses the write-set index: every
// transaction writes well past the linear-scan threshold and reads each
// written word back from the redo log.
func BenchmarkAlgorithmsWriteHeavy(b *testing.B) { runSuitePrefix(b, "AlgorithmsWriteHeavy") }

// BenchmarkPolyTMDispatch quantifies the dispatch layer's cost directly
// (the per-transaction delta behind Table 4).
func BenchmarkPolyTMDispatch(b *testing.B) { runSuitePrefix(b, "PolyTMDispatch") }

// BenchmarkGroupCommit is the amortization pair behind the serve layer's
// group-commit worker gate: the same 16 logical operations per iteration
// as 16 transactions (solo) vs one (grouped); the ns/op gap is pure
// per-transaction overhead.
func BenchmarkGroupCommit(b *testing.B) { runSuitePrefix(b, "GroupCommit") }

// BenchmarkThreadGate is the Algorithm-1 ablation: fetch-and-add gating vs a
// compare-and-swap loop for the enter/exit pair.
func BenchmarkThreadGate(b *testing.B) {
	b.Run("fetch-and-add", bench.ThreadGateFA)
	b.Run("cas-loop", func(b *testing.B) {
		// Simulate the CAS-based gate: same transaction with an extra
		// CAS acquire/release pair per attempt.
		h := tm.NewHeap(1<<12, 1)
		base := h.MustAlloc(8)
		c := tm.NewCtx(0, h)
		var gate uint64
		alg := stm.TL2{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !casAcquire(&gate) {
			}
			tm.Run(alg, c, func(tx tm.Txn) { tx.Store(base, 1) })
			casRelease(&gate)
		}
	})
}

// BenchmarkBaggingSize is the ensemble-size ablation (the paper uses 10
// learners): prediction cost per ensemble size.
func BenchmarkBaggingSize(b *testing.B) {
	train := cf.NewMatrix(60, 40)
	rng := uint64(9)
	for u := 0; u < train.Rows; u++ {
		for i := 0; i < train.Cols; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			train.Data[u][i] = float64(rng%1000) / 100
		}
	}
	active := make([]float64, train.Cols)
	for i := range active {
		active[i] = cf.Missing
	}
	active[0], active[5], active[9] = 1, 2, 3
	for _, k := range []int{1, 5, 10, 20} {
		b.Run(fmt.Sprintf("%dlearners", k), func(b *testing.B) {
			ens := &cf.Bagging{
				Learners: k,
				New:      func(int) cf.Predictor { return &cf.KNN{K: 5, Sim: cf.Cosine} },
				Seed:     3,
			}
			ens.Fit(train)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ens.PredictDist(active)
			}
		})
	}
}

// BenchmarkPublicAPI exercises the root package's Atomic path; steady state
// must report 0 allocs/op.
func BenchmarkPublicAPI(b *testing.B) {
	bench.PublicAPI(b)
}

func casAcquire(g *uint64) bool { return casUint64(g, 0, 1) }
func casRelease(g *uint64)      { casUint64(g, 1, 0) }

// casUint64 is a tiny wrapper so the ablation's CAS pair reads clearly.
func casUint64(p *uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(p, old, new)
}
