package cf

import (
	"math"
	"sort"
)

// Candidate is one (algorithm, hyper-parameters) point evaluated during
// model selection.
type Candidate struct {
	// Name describes the candidate.
	Name string
	// New constructs the predictor.
	New func() Predictor
	// Score is filled by SelectModel (cross-validated MAPE in rating
	// space; lower is better).
	Score float64
}

// DefaultCandidates returns the search space used by the Recommender: KNN
// over {similarity × K × centering} and MF over {d × epochs × lr × reg}. The
// space mirrors §5.1's "selection of CF algorithm and setting of its
// hyper-parameters".
func DefaultCandidates() []Candidate {
	var out []Candidate
	for _, sim := range []Similarity{Cosine, Pearson, Euclidean} {
		for _, k := range []int{3, 5, 10, 20} {
			for _, mc := range []bool{false, true} {
				sim, k, mc := sim, k, mc
				name := (&KNN{K: k, Sim: sim, MeanCenter: mc}).Name()
				out = append(out, Candidate{
					Name: name,
					New:  func() Predictor { return &KNN{K: k, Sim: sim, MeanCenter: mc} },
				})
			}
		}
	}
	for _, d := range []int{4, 8, 16} {
		for _, lr := range []float64{0.01, 0.02} {
			for _, reg := range []float64{0.02, 0.1} {
				d, lr, reg := d, lr, reg
				out = append(out, Candidate{
					Name: "mf",
					New:  func() Predictor { return &MF{D: d, LR: lr, Reg: reg, Epochs: 60} },
				})
			}
		}
	}
	return out
}

// SelectModel performs random-search model selection with n-fold
// cross-validation over the training matrix (§5.1: random search [4] plus
// n-fold cross-validation). Up to budget candidates are drawn at random and
// scored; the best-scoring candidate and the scored subset are returned.
//
// Scoring hides a fraction of each validation row's known entries, predicts
// them from the remainder, and accumulates the mean absolute percentage
// error in rating space.
func SelectModel(train *Matrix, cands []Candidate, folds, budget int, seed uint64) (best Candidate, scored []Candidate) {
	if folds < 2 {
		folds = 5
	}
	if folds > train.Rows {
		folds = train.Rows
	}
	rng := splitmix64(seed + 0x2545F4914F6CDD1D)

	// Random-search subset of the candidate space.
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	for i := len(idx) - 1; i > 0; i-- {
		j := int(rand01(&rng) * float64(i+1))
		if j > i {
			j = i
		}
		idx[i], idx[j] = idx[j], idx[i]
	}
	if budget <= 0 || budget > len(idx) {
		budget = len(idx)
	}
	idx = idx[:budget]

	bestScore := math.Inf(1)
	for _, ci := range idx {
		cand := cands[ci]
		cand.Score = crossValidate(train, cand.New, folds, &rng)
		scored = append(scored, cand)
		if cand.Score < bestScore {
			bestScore = cand.Score
			best = cand
		}
	}
	sort.Slice(scored, func(a, b int) bool { return scored[a].Score < scored[b].Score })
	return best, scored
}

// crossValidate scores a predictor constructor with n-fold CV over rows.
func crossValidate(train *Matrix, newP func() Predictor, folds int, rng *uint64) float64 {
	n := train.Rows
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(rand01(rng) * float64(i+1))
		if j > i {
			j = i
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	totalErr, totalCnt := 0.0, 0
	for f := 0; f < folds; f++ {
		lo, hi := f*n/folds, (f+1)*n/folds
		val := perm[lo:hi]
		inVal := make(map[int]bool, len(val))
		for _, u := range val {
			inVal[u] = true
		}
		sub := &Matrix{Cols: train.Cols}
		for u := 0; u < n; u++ {
			if !inVal[u] {
				sub.Data = append(sub.Data, train.Data[u])
				sub.Rows++
			}
		}
		if sub.Rows == 0 {
			continue
		}
		p := newP()
		p.Fit(sub)
		for _, u := range val {
			row := train.Data[u]
			known := knownIndices(row)
			if len(known) < 2 {
				continue
			}
			// Hide half of the known entries.
			hidden := known[:len(known)/2]
			visible := make([]float64, len(row))
			for i := range visible {
				visible[i] = Missing
			}
			for _, i := range known[len(known)/2:] {
				visible[i] = row[i]
			}
			pred := p.Predict(visible)
			for _, i := range hidden {
				if IsMissing(pred[i]) || row[i] == 0 {
					continue
				}
				totalErr += math.Abs(row[i]-pred[i]) / math.Abs(row[i])
				totalCnt++
			}
		}
	}
	if totalCnt == 0 {
		return math.Inf(1)
	}
	return totalErr / float64(totalCnt)
}

func knownIndices(row []float64) []int {
	var out []int
	for i, v := range row {
		if !IsMissing(v) {
			out = append(out, i)
		}
	}
	return out
}
