package scenario

import (
	"strings"
	"testing"

	"repro/internal/polytm"
	"repro/internal/workloads"
)

// TestRegistryCoversEveryFamily pins the acceptance criterion that every
// workload family in internal/workloads is reachable from the registry.
func TestRegistryCoversEveryFamily(t *testing.T) {
	want := []string{"interference", "lists", "memcached", "rbtree", "service", "stamp", "stmbench7", "tpcc"}
	got := Families()
	if len(got) != len(want) {
		t.Fatalf("families = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("families = %v, want %v", got, want)
		}
	}
}

// TestRegistryNamesMatchWorkloads checks that scenario names agree with
// the workload's own Name method where one exists.
func TestRegistryNamesMatchWorkloads(t *testing.T) {
	for _, s := range All() {
		wl, err := s.Make(nil)
		if err != nil {
			t.Fatalf("%s: Make(defaults): %v", s.Name, err)
		}
		if s.Name == "interference" {
			continue // wraps a victim workload with a different name
		}
		if got := wl.Name(); got != s.Name {
			t.Errorf("scenario %q built workload %q", s.Name, got)
		}
	}
}

// TestEveryScenarioSetsUp constructs and sets up every scenario at small
// parameterizations, so a registration with a broken Make or schema fails
// loudly here rather than at the CLI.
func TestEveryScenarioSetsUp(t *testing.T) {
	small := map[string]Values{
		"rbtree":          {"keyrange": "256"},
		"skiplist":        {"keyrange": "256"},
		"linkedlist":      {"keyrange": "64"},
		"hashmap":         {"buckets": "64", "keyrange": "256"},
		"genome":          {"segments": "256"},
		"intruder":        {"flows": "64"},
		"kmeans":          {"clusters": "4"},
		"labyrinth":       {"grid": "1024", "path": "16"},
		"ssca2":           {"vertices": "512"},
		"vacation":        {"relations": "256"},
		"yada":            {"elements": "512"},
		"bayes":           {"nodes": "128"},
		"stmbench7":       {"depth": "3"},
		"tpcc":            {"warehouses": "2", "customers": "16", "items": "256"},
		"memcached":       {"buckets": "64", "keyrange": "256"},
		"interference":    {"keyrange": "256"},
		"service-kv":      {"keyrange": "256", "span": "32", "phaseops": "64"},
		"service-steady":  {"keyrange": "256", "span": "32", "mix": "mixed"},
		"service-sharded": {"shards": "2", "keyrange": "256", "span": "16", "batchevery": "8"},
		"service-chaos":   {"shards": "2", "keyrange": "256", "crossevery": "8", "faultevery": "2", "faultcount": "2", "deadlineops": "16"},
		"service-range":   {"partitioner": "range", "shards": "2", "keyrange": "256", "span": "16", "batchevery": "8"},
		"service-reshard": {"shards": "2", "maxshards": "3", "keyrange": "256", "splitevery": "32", "refreshevery": "8", "migratebatch": "8", "crossevery": "8"},
		"service-merge":   {"shards": "3", "minshards": "2", "keyrange": "256", "mergeevery": "32", "refreshevery": "8", "migratebatch": "8", "crossevery": "8"},
		"service-hotkey":  {"partitioner": "range", "shards": "2", "keyrange": "256", "hotspan": "32", "moveevery": "16", "span": "16", "batchevery": "8"},
		"service-diurnal": {"keyrange": "256", "span": "16", "periodops": "64"},
		"service-slo":     {"keyrange": "256", "span": "16", "mix": "scan-heavy"},
		"service-batch":   {"shards": "2", "keyrange": "256", "batchmax": "4", "crossevery": "8", "batchkeys": "2"},
	}
	for _, s := range All() {
		v, ok := small[s.Name]
		if !ok {
			t.Fatalf("scenario %q has no small parameterization in this test — add one", s.Name)
		}
		if err := s.Validate(v); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		wl, err := s.Make(v)
		if err != nil {
			t.Fatalf("%s: Make: %v", s.Name, err)
		}
		pool := polytm.New(1<<20, 2, DefaultConfig(2))
		if err := wl.Setup(pool.Heap(), workloads.NewRand(1)); err != nil {
			t.Fatalf("%s: Setup: %v", s.Name, err)
		}
		wl.Op(pool, 0, workloads.NewRand(2))
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	s, _ := Lookup("rbtree")
	if err := s.Validate(Values{"nosuch": "1"}); err == nil {
		t.Error("unknown key accepted")
	} else if !strings.Contains(err.Error(), "keyrange") {
		t.Errorf("error should list valid parameters, got: %v", err)
	}
	if err := s.Validate(Values{"keyrange": "many"}); err == nil {
		t.Error("non-int value accepted")
	}
	if err := s.Validate(Values{"update": "0.5"}); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
}

func TestParseAssignments(t *testing.T) {
	v, err := ParseAssignments([]string{"a=1,b=2", "c=x"})
	if err != nil {
		t.Fatal(err)
	}
	if v["a"] != "1" || v["b"] != "2" || v["c"] != "x" {
		t.Fatalf("got %v", v)
	}
	if v.String() != "a=1,b=2,c=x" {
		t.Fatalf("String() = %q", v.String())
	}
	if _, err := ParseAssignments([]string{"oops"}); err == nil {
		t.Error("missing '=' accepted")
	}
}
