package cf

import (
	"math"
	"sort"
)

// Similarity identifies a KNN row-similarity function (§5.1 discusses why
// the choice matters under heterogeneous scales).
type Similarity int

const (
	// Cosine similarity: scale-insensitive angle between co-rated parts.
	Cosine Similarity = iota
	// Pearson correlation: mean-centered cosine.
	Pearson
	// Euclidean similarity: 1/(1+distance); scale-sensitive.
	Euclidean
)

// String returns the similarity name.
func (s Similarity) String() string {
	switch s {
	case Cosine:
		return "cosine"
	case Pearson:
		return "pearson"
	case Euclidean:
		return "euclidean"
	}
	return "?"
}

// Predictor is a CF algorithm that, once fitted on a (normalized) training
// utility matrix, completes the missing entries of an active workload's
// rating row.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Fit trains on the rating matrix.
	Fit(train *Matrix)
	// Predict returns a full row of ratings for the active row: known
	// entries are echoed, missing ones filled with predictions (NaN if no
	// prediction is possible).
	Predict(active []float64) []float64
}

// KNN is user-based K-nearest-neighbours CF: the predicted rating of the
// active workload for configuration i is a similarity-weighted average over
// the k most similar training workloads that rated i. Item-based KNN is
// deliberately absent — as footnote 3 of the paper notes, it cannot predict
// outside the range already witnessed by the active row.
type KNN struct {
	// K is the neighbourhood size.
	K int
	// Sim selects the similarity function.
	Sim Similarity
	// MeanCenter, when true, predicts deviations from row means rather
	// than raw ratings (the standard bias-corrected KNN formula).
	MeanCenter bool
	// MinOverlap is the minimum number of co-rated columns for a
	// neighbour to be considered (default 1).
	MinOverlap int

	train *Matrix
}

// Name implements Predictor.
func (k *KNN) Name() string {
	n := "knn-" + k.Sim.String()
	if k.MeanCenter {
		n += "-centered"
	}
	return n
}

// Fit implements Predictor.
func (k *KNN) Fit(train *Matrix) { k.train = train }

type neighbour struct {
	row int
	sim float64
}

// Predict implements Predictor.
func (k *KNN) Predict(active []float64) []float64 {
	return k.predict(active, false)
}

// PredictFull returns model predictions for every column, including the
// columns whose rating is already known (the known entries still drive the
// similarity search, but the output is pure neighbour consensus). RecTM uses
// this to estimate a workload's rating scale when the distillation reference
// configuration has not been sampled.
func (k *KNN) PredictFull(active []float64) []float64 {
	return k.predict(active, true)
}

func (k *KNN) predict(active []float64, full bool) []float64 {
	out := make([]float64, len(active))
	copy(out, active)
	if k.train == nil {
		return out
	}
	minOv := k.MinOverlap
	if minOv < 1 {
		minOv = 1
	}
	neighbours := make([]neighbour, 0, k.train.Rows)
	for u, row := range k.train.Data {
		sim, overlap := rowSimilarity(k.Sim, active, row)
		if overlap >= minOv && sim > 0 {
			neighbours = append(neighbours, neighbour{u, sim})
		}
	}
	sort.Slice(neighbours, func(a, b int) bool { return neighbours[a].sim > neighbours[b].sim })
	kk := k.K
	if kk <= 0 {
		kk = 10
	}
	if kk > len(neighbours) {
		kk = len(neighbours)
	}
	neighbours = neighbours[:kk]

	activeMean, _ := RowMean(active)
	for i := range out {
		if !full && !IsMissing(out[i]) {
			continue
		}
		num, den := 0.0, 0.0
		for _, nb := range neighbours {
			v := k.train.Data[nb.row][i]
			if IsMissing(v) {
				continue
			}
			if k.MeanCenter {
				m, _ := RowMean(k.train.Data[nb.row])
				v -= m
			}
			num += nb.sim * v
			den += math.Abs(nb.sim)
		}
		if den == 0 {
			out[i] = Missing
			continue
		}
		pred := num / den
		if k.MeanCenter {
			pred += activeMean
		}
		out[i] = pred
	}
	return out
}

// rowSimilarity computes the similarity between two partially known rows
// over their co-rated columns, returning the similarity and the overlap
// size.
func rowSimilarity(s Similarity, a, b []float64) (float64, int) {
	switch s {
	case Cosine:
		dot, na, nb, n := 0.0, 0.0, 0.0, 0
		for i := range a {
			if IsMissing(a[i]) || IsMissing(b[i]) {
				continue
			}
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
			n++
		}
		if na == 0 || nb == 0 {
			return 0, n
		}
		return dot / (math.Sqrt(na) * math.Sqrt(nb)), n
	case Pearson:
		// Means over the overlap.
		sa, sb, n := 0.0, 0.0, 0
		for i := range a {
			if IsMissing(a[i]) || IsMissing(b[i]) {
				continue
			}
			sa += a[i]
			sb += b[i]
			n++
		}
		if n < 2 {
			return 0, n
		}
		ma, mb := sa/float64(n), sb/float64(n)
		dot, na, nb := 0.0, 0.0, 0.0
		for i := range a {
			if IsMissing(a[i]) || IsMissing(b[i]) {
				continue
			}
			da, db := a[i]-ma, b[i]-mb
			dot += da * db
			na += da * da
			nb += db * db
		}
		if na == 0 || nb == 0 {
			return 0, n
		}
		return dot / (math.Sqrt(na) * math.Sqrt(nb)), n
	case Euclidean:
		sum, n := 0.0, 0
		for i := range a {
			if IsMissing(a[i]) || IsMissing(b[i]) {
				continue
			}
			d := a[i] - b[i]
			sum += d * d
			n++
		}
		if n == 0 {
			return 0, 0
		}
		return 1 / (1 + math.Sqrt(sum/float64(n))), n
	}
	return 0, 0
}
