package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind is a parameter's value type.
type Kind int

const (
	// Int is a decimal integer parameter.
	Int Kind = iota
	// Float is a decimal floating-point parameter.
	Float
	// Bool is a true/false parameter.
	Bool
	// String is a free-form (usually enumerated) parameter.
	String
)

// String names the kind for listings.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	}
	return "?"
}

// Param describes one scenario parameter.
type Param struct {
	// Name is the key accepted by --param name=value.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Kind is the value type.
	Kind Kind
	// Default is the textual default value ("" for String means empty).
	Default string
}

// Values holds textual parameter assignments, keyed by Param.Name. Missing
// keys take the schema defaults; Scenario.Validate rejects unknown keys and
// unparseable values before Make ever sees them.
type Values map[string]string

// Clone returns a copy of v (nil-safe).
func (v Values) Clone() Values {
	out := make(Values, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// String renders the assignments deterministically (sorted, k=v
// comma-joined), for labels and logs.
func (v Values) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + v[k]
	}
	return strings.Join(parts, ",")
}

// ParseAssignments parses "key=value" specs (each spec may itself be a
// comma-separated list) into Values.
func ParseAssignments(specs []string) (Values, error) {
	v := Values{}
	for _, spec := range specs {
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			key, val, ok := strings.Cut(part, "=")
			if !ok || key == "" {
				return nil, fmt.Errorf("scenario: bad parameter %q: want key=value", part)
			}
			v[key] = val
		}
	}
	return v, nil
}

// Defaults returns the scenario's full default parameter assignment.
func (s Scenario) Defaults() Values {
	v := make(Values, len(s.Params))
	for _, p := range s.Params {
		v[p.Name] = p.Default
	}
	return v
}

// Param looks up a schema entry by name.
func (s Scenario) Param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Validate checks v against the schema: every key must name a schema
// parameter and every value must parse as its kind.
func (s Scenario) Validate(v Values) error {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p, ok := s.Param(k)
		if !ok {
			return fmt.Errorf("scenario %s: unknown parameter %q (have: %s)", s.Name, k, strings.Join(s.paramNames(), ", "))
		}
		if err := p.check(v[k]); err != nil {
			return fmt.Errorf("scenario %s: parameter %s: %w", s.Name, k, err)
		}
	}
	return nil
}

func (s Scenario) paramNames() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name
	}
	return out
}

func (p Param) check(val string) error {
	switch p.Kind {
	case Int:
		if _, err := strconv.Atoi(val); err != nil {
			return fmt.Errorf("%q is not an int", val)
		}
	case Float:
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("%q is not a float", val)
		}
	case Bool:
		if _, err := strconv.ParseBool(val); err != nil {
			return fmt.Errorf("%q is not a bool", val)
		}
	}
	return nil
}

// lookup returns the raw value for p, falling back to the default.
func (v Values) lookup(p Param) string {
	if raw, ok := v[p.Name]; ok {
		return raw
	}
	return p.Default
}

// Int reads an int-kind parameter (schema default when absent). Values
// must have been validated; an unparseable value falls back to the default.
func (v Values) Int(p Param) int {
	n, err := strconv.Atoi(v.lookup(p))
	if err != nil {
		n, _ = strconv.Atoi(p.Default)
	}
	return n
}

// Float reads a float-kind parameter.
func (v Values) Float(p Param) float64 {
	f, err := strconv.ParseFloat(v.lookup(p), 64)
	if err != nil {
		f, _ = strconv.ParseFloat(p.Default, 64)
	}
	return f
}

// Bool reads a bool-kind parameter.
func (v Values) Bool(p Param) bool {
	b, err := strconv.ParseBool(v.lookup(p))
	if err != nil {
		b, _ = strconv.ParseBool(p.Default)
	}
	return b
}

// Str reads a string-kind parameter.
func (v Values) Str(p Param) string { return v.lookup(p) }
