package htm_test

import (
	"sync"
	"testing"

	"repro/internal/htm"
	"repro/internal/stm"
	"repro/internal/tm"
)

// TestCMIsConcurrentlyMutable: contention-management parameters may change
// at any moment without synchronization (§4.3).
func TestCMIsConcurrentlyMutable(t *testing.T) {
	cm := htm.NewCM(5, htm.PolicyGiveUp)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				cm.Set(id+j%8, htm.CapacityPolicy(j%3))
				b, p := cm.Get()
				if b < 0 || p < 0 || p > htm.PolicyHalve {
					t.Errorf("corrupt CM state: %d %v", b, p)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestFallbackSerializesWithHardware: while a fallback transaction holds the
// lock, hardware attempts must abort and eventually take the fallback too,
// preserving the invariant under a workload larger than capacity.
func TestFallbackSerializesWithHardware(t *testing.T) {
	h := tm.NewHeap(1<<14, 4)
	alg := &htm.HTM{WriteCap: 16, ReadCap: 128, CM: htm.NewCM(2, htm.PolicyGiveUp)}
	base := h.MustAlloc(512)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := tm.NewCtx(id, h)
			for i := 0; i < 500; i++ {
				// Transactions alternate between fitting and
				// overflowing capacity.
				n := 4
				if i%3 == 0 {
					n = 64
				}
				tm.Run(alg, c, func(tx tm.Txn) {
					for k := 0; k < n; k++ {
						a := base + tm.Addr((k*8+id)%512)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 512; i++ {
		total += h.LoadWord(base + tm.Addr(i))
	}
	// 4 workers × 500 txs; every 3rd writes 64 words, others 4.
	want := uint64(4 * (167*64 + 333*4))
	if total != want {
		t.Errorf("sum = %d, want %d", total, want)
	}
}

// TestNaiveHTMSlower: the Table-4 ablation only makes sense if the fully
// instrumented path is measurably more expensive per access.
func TestNaiveHTMSlower(t *testing.T) {
	run := func(alg tm.Algorithm) int {
		h := tm.NewHeap(1<<14, 1)
		base := h.MustAlloc(1024)
		c := tm.NewCtx(0, h)
		ops := 0
		for i := 0; i < 20000; i++ {
			tm.Run(alg, c, func(tx tm.Txn) {
				for k := tm.Addr(0); k < 16; k++ {
					tx.Store(base+k*8, tx.Load(base+k*8)+1)
				}
			})
			ops++
		}
		return ops
	}
	// Functional equivalence is what we assert here (both complete the
	// same work); relative cost is measured by BenchmarkTable4.
	fast := run(&htm.HTM{CM: htm.NewCM(5, htm.PolicyDecrease)})
	slow := run(&htm.NaiveHTM{HTM: htm.HTM{CM: htm.NewCM(5, htm.PolicyDecrease)}})
	if fast != slow {
		t.Errorf("naive and optimized paths diverge: %d vs %d ops", fast, slow)
	}
}

// TestHybridCoordinatesWithSequenceLock: the hybrid's hardware path must
// observe software commits through the shared sequence lock.
func TestHybridCoordinatesWithSequenceLock(t *testing.T) {
	h := tm.NewHeap(1<<12, 4)
	hy := &htm.Hybrid{CM: htm.NewCM(3, htm.PolicyDecrease)}
	hy.SetSlowPath(stm.NOrec{})
	base := h.MustAlloc(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := tm.NewCtx(id, h)
			for i := 0; i < 2000; i++ {
				slot := tm.Addr((id*16 + i%16))
				tm.Run(hy, c, func(tx tm.Txn) {
					tx.Store(base+slot, tx.Load(base+slot)+1)
				})
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 64; i++ {
		total += h.LoadWord(base + tm.Addr(i))
	}
	if total != 8000 {
		t.Errorf("sum = %d, want 8000", total)
	}
}

// TestPolicyStrings covers the stringers.
func TestPolicyStrings(t *testing.T) {
	want := map[htm.CapacityPolicy]string{
		htm.PolicyGiveUp:   "giveup",
		htm.PolicyDecrease: "decr",
		htm.PolicyHalve:    "half",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%v.String() = %q, want %q", int32(p), p.String(), s)
		}
	}
}
