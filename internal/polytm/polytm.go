// Package polytm implements PolyTM, the polymorphic TM library of §4 of the
// paper: a single transactional interface behind which any of the TM
// backends can run, with run-time support to (i) switch the TM algorithm,
// (ii) adapt the parallelism degree, and (iii) retune the HTM contention
// management — the three reconfiguration dimensions the paper tunes.
//
// Safety follows the paper's invariant: a thread may run a transaction in
// mode TM_A only if no other thread is executing a transaction in mode TM_B.
// The invariant is enforced by the thread-gating protocol of Algorithm 1:
// one padded state word per thread, manipulated exclusively with
// fetch-and-add, with a RUN bit set by the thread for the duration of each
// transaction attempt and a BLOCK bit set by the adapter to park the thread.
package polytm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/stm"
	"repro/internal/tm"
)

const (
	// runBit is set by a thread while it executes a transaction attempt.
	runBit uint64 = 1
	// blockBit is set by the adapter to park a thread at its next
	// transaction boundary.
	blockBit uint64 = 1 << 32
)

// threadSlot is the per-thread gate state, padded to a cache line so the
// fetch-and-add in the common path never contends with neighbours.
type threadSlot struct {
	state uint64
	_     [7]uint64
	mu    sync.Mutex
	cond  *sync.Cond
	_pad2 [4]uint64 //nolint:unused // padding between slots
}

// Pool is a PolyTM instance: a transactional heap, a set of registered
// worker threads, the library of TM backends, and the currently installed
// configuration.
type Pool struct {
	heap *tm.Heap
	max  int

	slots []threadSlot
	ctxs  []*tm.Ctx

	algs [config.NumAlgs]tm.Algorithm
	cm   *htm.CM

	mode atomic.Uint32 // config.AlgID currently installed

	// cfgMu serializes reconfigurations (one adapter at a time).
	cfgMu   sync.Mutex
	current config.Config

	// reconfHook, when set, runs at the start of every Reconfigure —
	// under cfgMu, before any thread gating — so a serving layer can
	// drain in-flight work from slots about to be disabled (§4.2's
	// graceful-drain concern for long-running services).
	reconfHook func(old, new config.Config)

	// nonStoppable marks threads the programmer exempted from permanent
	// disabling (§4.2: e.g. a server's accept thread).
	nonStoppable []atomic.Bool
}

// New creates a PolyTM pool over a fresh heap with the given number of words
// and capacity for maxThreads registered worker threads. The initial
// configuration is cfg.
func New(heapWords, maxThreads int, cfg config.Config) *Pool {
	h := tm.NewHeap(heapWords, maxThreads)
	return NewWithHeap(h, maxThreads, cfg)
}

// NewWithHeap creates a pool over an existing heap.
func NewWithHeap(h *tm.Heap, maxThreads int, cfg config.Config) *Pool {
	p := &Pool{
		heap:         h,
		max:          maxThreads,
		slots:        make([]threadSlot, maxThreads),
		ctxs:         make([]*tm.Ctx, maxThreads),
		cm:           htm.NewCM(cfg.Budget, cfg.Policy),
		nonStoppable: make([]atomic.Bool, maxThreads),
	}
	for i := range p.slots {
		p.slots[i].cond = sync.NewCond(&p.slots[i].mu)
	}
	for i := range p.ctxs {
		p.ctxs[i] = tm.NewCtx(i, h)
	}
	hy := &htm.Hybrid{CM: p.cm}
	hy.SetSlowPath(stm.NOrec{})
	p.algs[config.TL2] = stm.TL2{}
	p.algs[config.TinySTM] = stm.TinySTM{}
	p.algs[config.NOrec] = stm.NOrec{}
	p.algs[config.SwissTM] = stm.SwissTM{}
	p.algs[config.HTM] = &htm.HTM{CM: p.cm}
	p.algs[config.Hybrid] = hy
	p.algs[config.GlobalLock] = &stm.GlobalLock{}
	p.current = cfg
	p.mode.Store(uint32(cfg.Alg))
	// Park the slots beyond the configured parallelism degree.
	for t := cfg.Threads; t < maxThreads; t++ {
		p.setBlock(t)
	}
	return p
}

// Heap returns the pool's transactional heap.
func (p *Pool) Heap() *tm.Heap { return p.heap }

// MaxThreads returns the number of registered worker slots.
func (p *Pool) MaxThreads() int { return p.max }

// Config returns the currently installed configuration.
func (p *Pool) Config() config.Config {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	return p.current
}

// Ctx exposes the transaction context of slot t (for statistics snapshots).
func (p *Pool) Ctx(t int) *tm.Ctx { return p.ctxs[t] }

// Algorithm returns the backend instance registered for id.
func (p *Pool) Algorithm(id config.AlgID) tm.Algorithm { return p.algs[id] }

// SetReconfigureHook installs fn to run at the start of every Reconfigure,
// before any thread is gated, with the outgoing and incoming configuration.
// The pool holds its configuration lock while fn runs, so fn must not call
// back into Reconfigure, Config or SnapshotStats; it may block briefly — a
// serving layer uses exactly that to drain in-flight requests from worker
// slots the new configuration disables, so no request is ever stranded on a
// parked thread. Pass nil to remove the hook.
func (p *Pool) SetReconfigureHook(fn func(old, new config.Config)) {
	p.cfgMu.Lock()
	p.reconfHook = fn
	p.cfgMu.Unlock()
}

// SetNonStoppable exempts thread t from permanent disabling when the
// parallelism degree shrinks (it may still be parked briefly during a TM
// switch), mirroring the library call described in §4.2.
func (p *Pool) SetNonStoppable(t int, v bool) { p.nonStoppable[t].Store(v) }

// Atomic executes fn as a transaction on worker slot t under the currently
// installed configuration, retrying until commit. It is PolyTM's
// implementation of the TM ABI's tm_begin/tm_end pair: each attempt passes
// through the thread gate, so reconfigurations are observed even by
// transactions stuck in retry storms.
func (p *Pool) Atomic(t int, fn func(tm.Txn)) {
	c := p.ctxs[t]
	c.Attempts = 0
	c.TxnID++
	for {
		p.gateEnter(t)
		alg := p.algs[config.AlgID(p.mode.Load())]
		alg.Begin(c)
		code, ok := tm.Attempt(alg, c, fn)
		if ok {
			c.Stats.IncCommit()
			p.gateExit(t)
			return
		}
		c.AbortReason = code
		alg.Abort(c)
		c.Stats.Record(code)
		c.Attempts++
		p.gateExit(t)
		c.Backoff()
	}
}

// gateEnter implements the application-thread side of Algorithm 1: announce
// the attempt with a fetch-and-add of the RUN bit; if the adapter won the
// race (BLOCK set), retract and wait to be re-enabled.
func (p *Pool) gateEnter(t int) {
	s := &p.slots[t]
	for {
		val := atomic.AddUint64(&s.state, runBit)
		if val&blockBit == 0 {
			return
		}
		atomic.AddUint64(&s.state, ^runBit+1) // -runBit
		s.mu.Lock()
		for atomic.LoadUint64(&s.state)&blockBit != 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}
}

// gateExit clears the RUN bit at the end of an attempt.
func (p *Pool) gateExit(t int) {
	atomic.AddUint64(&p.slots[t].state, ^runBit+1) // -runBit
}

// setBlock implements disable-thread of Algorithm 1: raise the BLOCK bit
// with a fetch-and-add and spin until the thread's current attempt (if any)
// finishes.
func (p *Pool) setBlock(t int) {
	s := &p.slots[t]
	val := atomic.AddUint64(&s.state, blockBit)
	for val&runBit != 0 {
		val = atomic.LoadUint64(&s.state)
	}
}

// clearBlock implements enable-thread: drop the BLOCK bit and wake the
// thread if it parked.
func (p *Pool) clearBlock(t int) {
	s := &p.slots[t]
	s.mu.Lock()
	atomic.AddUint64(&s.state, ^blockBit+1) // -blockBit
	s.cond.Broadcast()
	s.mu.Unlock()
}

// blocked reports whether slot t currently has the BLOCK bit raised.
func (p *Pool) blocked(t int) bool {
	return atomic.LoadUint64(&p.slots[t].state)&blockBit != 0
}

// Reconfigure atomically installs cfg, using the cheapest safe protocol for
// the delta (§4):
//
//   - contention-management-only changes need no synchronization;
//   - parallelism-only changes block/unblock individual threads;
//   - TM-algorithm changes quiesce all threads (parallelism to zero), swap
//     the mode, then restore the requested parallelism — the three-step
//     procedure of §4.1.
func (p *Pool) Reconfigure(cfg config.Config) error {
	if cfg.Threads < 1 || cfg.Threads > p.max {
		return fmt.Errorf("polytm: parallelism degree %d out of range [1,%d]", cfg.Threads, p.max)
	}
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()

	if p.reconfHook != nil {
		p.reconfHook(p.current, cfg)
	}
	p.cm.Set(cfg.Budget, cfg.Policy)

	if cfg.Alg != p.current.Alg {
		// Quiesce everyone, switch, restore.
		for t := 0; t < p.max; t++ {
			if !p.blocked(t) {
				p.setBlock(t)
			}
		}
		// The version-clock STMs advance the global clock by one per
		// commit; NOrec and Hybrid reuse it as a sequence lock where odd
		// means "writer in flight". With every thread quiesced it is
		// safe to restore even parity for the incoming algorithm.
		if p.heap.Clock()&1 == 1 {
			p.heap.ClockAdd(1)
		}
		p.mode.Store(uint32(cfg.Alg))
		for t := 0; t < cfg.Threads; t++ {
			p.clearBlock(t)
		}
		p.current = cfg
		return nil
	}

	// Same algorithm: adjust parallelism degree only.
	for t := 0; t < cfg.Threads; t++ {
		if p.blocked(t) {
			p.clearBlock(t)
		}
	}
	for t := cfg.Threads; t < p.max; t++ {
		if !p.blocked(t) && !p.nonStoppable[t].Load() {
			p.setBlock(t)
		}
	}
	p.current = cfg
	return nil
}

// SnapshotStats returns the summed per-thread statistics. The per-thread
// counters are owner-local plain fields (the fast path carries no atomic
// RMWs), so the pool briefly parks each thread at its next transaction
// boundary — the same Algorithm-1 gate reconfigurations use — to establish
// happens-before with the owner before reading. The pause per thread is at
// most one in-flight transaction attempt; cfgMu keeps the gate manipulation
// exclusive with concurrent reconfigurations.
//
// SnapshotStats is a control-plane API: it MUST NOT be called from inside
// an atomic block. The calling goroutine would hold its own slot's RUN bit
// and then wait for that bit to clear — a self-deadlock (it would also be
// semantically meaningless: a transaction reading the aggregate of
// concurrent counters is unserializable). Call it between transactions, as
// the monitor, the harness and the examples do.
func (p *Pool) SnapshotStats() tm.Stats {
	var total tm.Stats
	for _, s := range p.SnapshotStatsPerThread() {
		total.Add(s)
	}
	return total
}

// SnapshotStatsPerThread returns one statistics snapshot per worker slot,
// synchronized the same way as SnapshotStats (and under the same
// control-plane restriction: never call it from inside an atomic block).
// Serving layers use it to expose per-worker commit/abort counters.
func (p *Pool) SnapshotStatsPerThread() []tm.Stats {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	out := make([]tm.Stats, len(p.ctxs))
	for t, c := range p.ctxs {
		wasBlocked := p.blocked(t)
		if !wasBlocked {
			p.setBlock(t)
		}
		out[t] = c.Stats.Snapshot()
		if !wasBlocked {
			p.clearBlock(t)
		}
	}
	return out
}
