package energy_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/energy"
)

func TestPowerModel(t *testing.T) {
	m := energy.NewModel(20, 5)
	idle := energy.Sample{Elapsed: time.Second, Threads: 4}
	if got := m.Power(idle); got != 20 {
		t.Errorf("idle power = %f, want static 20", got)
	}
	busy := energy.Sample{Elapsed: time.Second, Threads: 4, Commits: 100}
	if got := m.Power(busy); got != 40 {
		t.Errorf("busy power = %f, want 20 + 4×5", got)
	}
}

// TestMoreThreadsMoreEnergy and wasted work burns power.
func TestEnergyMonotonicity(t *testing.T) {
	m := energy.NewModel(20, 5)
	f := func(threads uint8, commits, aborts uint16) bool {
		th := int(threads%16) + 1
		s := energy.Sample{Elapsed: time.Second, Threads: th, Commits: uint64(commits) + 1, Aborts: uint64(aborts)}
		s2 := s
		s2.Threads = th + 1
		return m.Energy(s2) >= m.Energy(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDPQuadraticInTime(t *testing.T) {
	m := energy.NewModel(20, 5)
	s1 := energy.Sample{Elapsed: time.Second, Threads: 2, Commits: 10}
	s2 := energy.Sample{Elapsed: 2 * time.Second, Threads: 2, Commits: 10}
	r := m.EDP(s2) / m.EDP(s1)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("EDP ratio for 2× time = %f, want 4 (quadratic)", r)
	}
}

func TestThroughputPerJoule(t *testing.T) {
	m := energy.NewModel(10, 1)
	s := energy.Sample{Elapsed: time.Second, Threads: 1, Commits: 110}
	// Power = 10 + 1 = 11 W → 11 J; 110 commits → 10 commits/J.
	if got := m.ThroughputPerJoule(s); math.Abs(got-10) > 1e-9 {
		t.Errorf("throughput/J = %f, want 10", got)
	}
}
