package scenario

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/config"
)

// rangeSpec is the pinned parameterization of the partitioner A/B golden
// records: the identical seeded op stream replayed under both placement
// policies.
func rangeSpec(partitioner string) RunSpec {
	return RunSpec{
		Scenario: "service-range",
		Params: Values{
			"partitioner": partitioner,
			"shards":      "4",
			"keyrange":    "4096",
			"span":        "64",
			"batchevery":  "32",
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceRangePartitionerAB pins the partitioner A/B acceptance
// criteria: for a fixed seed the scenario emits byte-identical records
// per partitioner (each checked against a committed golden, regenerate
// with UPDATE_GOLDEN=1), the two legs replay the identical op stream,
// and the range-partitioned leg's scan fence count is strictly below the
// hash-partitioned leg's for the scan-heavy mix.
func TestServiceRangePartitionerAB(t *testing.T) {
	results := map[string]Result{}
	for _, kind := range []string{"hash", "range"} {
		a, err := Run(rangeSpec(kind))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(rangeSpec(kind))
		if err != nil {
			t.Fatal(err)
		}
		ja, jb := marshalResults(t, a), marshalResults(t, b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: two runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", kind, ja, jb)
		}
		if a[0].Commits == 0 || a[0].HeapDigest == "" {
			t.Fatalf("%s: empty measurement: %+v", kind, a[0])
		}
		if len(a[0].Metrics) == 0 {
			t.Fatalf("%s: record carries no workload metrics", kind)
		}

		golden := fmt.Sprintf("testdata/service_range_%s.golden", kind)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, ja, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
		}
		if !bytes.Equal(ja, want) {
			t.Errorf("service-range %s record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s", kind, golden, ja, want)
		}
		results[kind] = a[0]
	}

	hash, rng := results["hash"], results["range"]
	// Identical op stream: both legs drew the same operations from the
	// same seed, so the scan and batch counts agree exactly; only
	// placement-dependent observables may differ.
	for _, key := range []string{"scan_total", "cross_batches"} {
		if hash.Metrics[key] != rng.Metrics[key] {
			t.Errorf("op streams diverged: %s = %d (hash) vs %d (range)", key, hash.Metrics[key], rng.Metrics[key])
		}
	}
	if hash.Ops != rng.Ops {
		t.Errorf("op budgets diverged: %d vs %d", hash.Ops, rng.Ops)
	}
	// The acceptance inequality: order preservation fences strictly fewer
	// shards per scan than hashing on the scan-heavy mix.
	if rng.Metrics["scan_fenced_shards"] >= hash.Metrics["scan_fenced_shards"] {
		t.Errorf("range partitioner fenced %d shards, hash %d — want strictly fewer",
			rng.Metrics["scan_fenced_shards"], hash.Metrics["scan_fenced_shards"])
	}
	if rng.Metrics["scan_single_shard"] <= hash.Metrics["scan_single_shard"] {
		t.Errorf("range partitioner localized %d scans, hash %d — want strictly more",
			rng.Metrics["scan_single_shard"], hash.Metrics["scan_single_shard"])
	}
	t.Logf("scan locality: hash fenced %d shards across %d multi-shard scans; range fenced %d across %d (of %d scans each)",
		hash.Metrics["scan_fenced_shards"], hash.Metrics["scan_multi_shard"],
		rng.Metrics["scan_fenced_shards"], rng.Metrics["scan_multi_shard"], rng.Metrics["scan_total"])
}

// TestServiceRangeAutoTuneDeterministic runs the partitioner A/B family
// under the full monitor/explore/install loop in virtual time, twice.
func TestServiceRangeAutoTuneDeterministic(t *testing.T) {
	spec := rangeSpec("range")
	spec.Configs = nil
	spec.AutoTune = true
	spec.Ops = 6000
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("auto-tuned service-range runs differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	if a[0].Phases < 1 {
		t.Errorf("phases = %d, want >= 1", a[0].Phases)
	}
	if len(a[0].Metrics) == 0 {
		t.Error("auto-tuned record carries no workload metrics")
	}
}
