package serve

import (
	"net/http"
	"time"

	"repro/internal/metrics"
)

// Status is the /statusz document. Field names are part of the operator
// interface (docs/serving.md documents them; a golden test pins the
// schema), so additions are fine but renames are breaking.
type Status struct {
	Server  ServerStatus  `json:"server"`
	Config  ConfigStatus  `json:"config"`
	TM      TMStatus      `json:"tm"`
	Ops     OpsStatus     `json:"ops"`
	Latency LatencyStatus `json:"latency_ms"`
	// Reconfigurations is the optimization-phase event log: one entry
	// per exploration phase, oldest first.
	Reconfigurations []ReconfigStatus `json:"reconfigurations"`
	// Timeline is the tail of the auto-tuner's KPI timeline, oldest
	// first (KPI = committed transactions per second).
	Timeline []TimelineStatus `json:"timeline"`
}

// ServerStatus describes the serving layer itself.
type ServerStatus struct {
	UptimeSec     float64 `json:"uptime_sec"`
	Workers       int     `json:"workers"`
	ActiveWorkers int     `json:"active_workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueLen      int     `json:"queue_len"`
}

// ConfigStatus describes the installed TM configuration and tuner state.
type ConfigStatus struct {
	Current   string `json:"current"`
	AutoTune  bool   `json:"autotune"`
	Phases    int    `json:"phases"`
	Exploring bool   `json:"exploring"`
}

// TMStatus aggregates transaction statistics since startup.
type TMStatus struct {
	Commits          uint64   `json:"commits"`
	Aborts           uint64   `json:"aborts"`
	AbortRate        float64  `json:"abort_rate"`
	ConflictAborts   uint64   `json:"conflict_aborts"`
	CapacityAborts   uint64   `json:"capacity_aborts"`
	FallbackAborts   uint64   `json:"fallback_aborts"`
	FallbackRuns     uint64   `json:"fallback_runs"`
	PerWorkerCommits []uint64 `json:"per_worker_commits"`
}

// OpsStatus counts served operations by kind, plus admission outcomes.
type OpsStatus struct {
	Served    map[string]uint64 `json:"served"`
	Total     uint64            `json:"total"`
	Rejected  uint64            `json:"rejected"`
	Requeued  uint64            `json:"requeued"`
	HookFires uint64            `json:"reconfigure_hook_fires"`
	Drains    uint64            `json:"drains"`
}

// LatencyStatus summarizes recent request latencies in milliseconds
// (admission to completion, over the sliding reservoir window).
type LatencyStatus struct {
	metrics.Summary
	// WindowObserved is the total number of requests ever observed (the
	// summary covers only the most recent window of them).
	WindowObserved uint64 `json:"window_observed"`
}

// ReconfigStatus is one optimization-phase event.
type ReconfigStatus struct {
	AtSec  float64 `json:"at_sec"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	Reason string  `json:"reason"`
	Phase  int     `json:"phase"`
}

// TimelineStatus is one KPI observation of the adapter thread.
type TimelineStatus struct {
	AtSec     float64 `json:"at_sec"`
	KPI       float64 `json:"kpi"`
	Config    string  `json:"config"`
	Exploring bool    `json:"exploring"`
}

// StatusSnapshot assembles the full status document. It synchronizes with
// the worker threads the same way Stats does, so it must not be called
// from inside an atomic block.
func (s *Server) StatusSnapshot() Status {
	perWorker := s.sys.StatsPerWorker()
	var total TMStatus
	commits := make([]uint64, len(perWorker))
	for i, st := range perWorker {
		commits[i] = st.Commits
		total.Commits += st.Commits
		total.Aborts += st.Aborts
		total.ConflictAborts += st.ConflictAborts
		total.CapacityAborts += st.CapacityAborts
		total.FallbackAborts += st.FallbackAborts
		total.FallbackRuns += st.FallbackRuns
	}
	if att := total.Commits + total.Aborts; att > 0 {
		total.AbortRate = float64(total.Aborts) / float64(att)
	}
	total.PerWorkerCommits = commits

	served := make(map[string]uint64, numOps)
	var servedTotal uint64
	for op := opKind(0); op < numOps; op++ {
		n := s.served[op].Load()
		served[opNames[op]] = n
		servedTotal += n
	}

	reconfigs := s.sys.Reconfigurations()
	rs := make([]ReconfigStatus, len(reconfigs))
	for i, e := range reconfigs {
		rs[i] = ReconfigStatus{
			AtSec:  e.At.Seconds(),
			From:   e.From.String(),
			To:     e.To.String(),
			Reason: e.Reason,
			Phase:  e.Phase,
		}
	}

	timeline := s.sys.Timeline()
	if tail := s.opts.TimelineTail; len(timeline) > tail {
		timeline = timeline[len(timeline)-tail:]
	}
	ts := make([]TimelineStatus, len(timeline))
	for i, p := range timeline {
		ts[i] = TimelineStatus{
			AtSec:     p.At.Seconds(),
			KPI:       p.KPI,
			Config:    p.Config.String(),
			Exploring: p.Exploring,
		}
	}

	return Status{
		Server: ServerStatus{
			UptimeSec:     time.Since(s.start).Seconds(),
			Workers:       s.sys.Workers(),
			ActiveWorkers: int(s.active.Load()),
			QueueDepth:    s.opts.QueueDepth,
			QueueLen:      len(s.queue),
		},
		Config: ConfigStatus{
			Current:   s.sys.CurrentConfig().String(),
			AutoTune:  s.sys.AutoTuning(),
			Phases:    s.sys.Phases(),
			Exploring: s.sys.Exploring(),
		},
		TM: total,
		Ops: OpsStatus{
			Served:    served,
			Total:     servedTotal,
			Rejected:  s.rejected.Load(),
			Requeued:  s.requeued.Load(),
			HookFires: s.hookFires.Load(),
			Drains:    s.drains.Load(),
		},
		Latency: LatencyStatus{
			Summary:        metrics.Summarize(s.lat.Snapshot()),
			WindowObserved: s.lat.Count(),
		},
		Reconfigurations: rs,
		Timeline:         ts,
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatusSnapshot())
}
