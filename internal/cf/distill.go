package cf

import (
	"fmt"
	"math"
)

// Distiller implements ProteusTM's rating distillation (Algorithm 3 of the
// paper). The training matrix is normalized row-wise against a single
// reference column C*, chosen to minimize the index of dispersion
// (variance/mean) of the per-row maxima in the normalized domain. The two
// properties of §5.1 follow: (i) ratios between configurations are preserved
// within each row, and (ii) every row's ratings live on a near-common scale
// topped by a tight M_w, so similarities between heterogeneous workloads
// become minable by standard CF.
//
// For an online workload the reference column is simply the first
// configuration the Controller profiles, making the scale exact. For
// trace-driven evaluation where the reference may be absent from the sampled
// set (Fig. 4 "without forcing the presence of the column used for
// normalization"), the scale is estimated by least-squares alignment of the
// row's known goodness values against the training matrix's column means.
type Distiller struct {
	// RefCol is the reference configuration C* selected by Fit.
	RefCol int
	// Dispersion is the index of dispersion achieved by RefCol.
	Dispersion float64
	colMeans   []float64
}

// Name implements Normalizer.
func (*Distiller) Name() string { return "distill" }

// Fit implements Normalizer: Algorithm 3. For every candidate reference
// column, normalize each training row by its entry in that column, collect
// the per-row maxima M_w, and keep the column minimizing var(M)/mean(M).
func (d *Distiller) Fit(train *Matrix) error {
	bestCol, bestD := -1, math.Inf(1)
	maxima := make([]float64, 0, train.Rows)
	for c := 0; c < train.Cols; c++ {
		maxima = maxima[:0]
		usable := true
		for _, row := range train.Data {
			ref := row[c]
			if IsMissing(ref) || ref <= 0 {
				// Candidate must be profiled (and meaningful) on
				// every training row to serve as the reference.
				usable = false
				break
			}
			m, ok := RowMax(row)
			if !ok {
				continue
			}
			maxima = append(maxima, m/ref)
		}
		if !usable || len(maxima) == 0 {
			continue
		}
		disp := indexOfDispersion(maxima)
		if disp < bestD {
			bestD, bestCol = disp, c
		}
	}
	if bestCol < 0 {
		return fmt.Errorf("cf: distillation found no fully-profiled reference column")
	}
	d.RefCol, d.Dispersion = bestCol, bestD
	// Column means of the distilled training matrix, used to estimate the
	// scale of rows lacking the reference sample.
	distilled := NewMatrix(train.Rows, train.Cols)
	for u, row := range train.Data {
		ref := row[bestCol]
		for i, v := range row {
			if !IsMissing(v) {
				distilled.Data[u][i] = v / ref
			}
		}
	}
	d.colMeans = distilled.ColMeans()
	return nil
}

// NormalizeRow implements Normalizer: ratings are goodness values divided by
// the row's reference-column goodness (exact when sampled, least-squares
// estimated otherwise).
func (d *Distiller) NormalizeRow(_ int, raw []float64) ([]float64, func(int, float64) float64) {
	scale := d.rowScale(raw)
	out := make([]float64, len(raw))
	for i, v := range raw {
		if IsMissing(v) {
			out[i] = Missing
		} else {
			out[i] = v / scale
		}
	}
	s := scale
	return out, func(_ int, r float64) float64 { return r * s }
}

// rowScale returns the per-row normalization constant: the reference
// column's goodness when known, otherwise the least-squares fit of the known
// entries to the training column means: λ = Σg² / Σ(g·m).
func (d *Distiller) rowScale(raw []float64) float64 {
	if d.RefCol >= 0 && d.RefCol < len(raw) {
		if v := raw[d.RefCol]; !IsMissing(v) && v > 0 {
			return v
		}
	}
	num, den := 0.0, 0.0
	for i, v := range raw {
		if IsMissing(v) || i >= len(d.colMeans) || d.colMeans[i] == 0 {
			continue
		}
		num += v * v
		den += v * d.colMeans[i]
	}
	if den > 0 && num > 0 {
		return num / den
	}
	if m, ok := RowMax(raw); ok && m > 0 {
		return m
	}
	return 1
}

// indexOfDispersion returns var(x)/mean(x).
func indexOfDispersion(x []float64) float64 {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	if mean == 0 {
		return math.Inf(1)
	}
	variance := 0.0
	for _, v := range x {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(x))
	return variance / mean
}
