package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestRangeScanLocality pins the tentpole observable: the same scans
// fence strictly fewer shards under the order-preserving partitioner
// than under hashing, and scans contained in one boundary span skip the
// fence protocol entirely (a plain shard transaction).
func TestRangeScanLocality(t *testing.T) {
	const universe = 4096
	mk := func(kind string) *Server {
		return newTestServer(t, Options{
			Shards:      4,
			Workers:     2,
			Partitioner: kind,
			KeyUniverse: universe,
			Preload:     universe,
		})
	}
	scan := func(s *Server, lo, hi uint64) response {
		ts := httptest.NewServer(s)
		defer ts.Close()
		code, r := get(t, fmt.Sprintf("%s/kv/range?lo=%d&hi=%d", ts.URL, lo, hi))
		if code != 200 || r.Err != "" {
			t.Fatalf("range [%d,%d] = %d %+v", lo, hi, code, r)
		}
		return r
	}

	hash, rng := mk(shard.KindHash), mk(shard.KindRange)
	// Narrow scan inside shard 0's span [0, 1024) plus a full-universe
	// scan; both servers hold identical data, so results must agree.
	for _, s := range []*Server{hash, rng} {
		if r := scan(s, 100, 200); r.Count != 101 {
			t.Fatalf("%s narrow scan count = %d, want 101", s.part().Kind(), r.Count)
		}
		if r := scan(s, 0, universe-1); r.Count != universe {
			t.Fatalf("%s full scan count = %d, want %d", s.part().Kind(), r.Count, universe)
		}
	}

	hst, rst := hash.StatusSnapshot(), rng.StatusSnapshot()
	if hst.Server.Partitioner != shard.KindHash || rst.Server.Partitioner != shard.KindRange {
		t.Fatalf("statusz partitioner = %q / %q", hst.Server.Partitioner, rst.Server.Partitioner)
	}
	// Range partitioner: the narrow scan stayed on shard 0 (no fences),
	// the full scan fenced all four shards.
	if rst.Ops.RangeLocal != 1 || rst.Ops.RangeCross != 1 || rst.Ops.RangeFencedShards != 4 {
		t.Fatalf("range leg: local=%d cross=%d fenced_shards=%d, want 1/1/4",
			rst.Ops.RangeLocal, rst.Ops.RangeCross, rst.Ops.RangeFencedShards)
	}
	// Hash: a 101-key interval scatters over every shard, so both scans
	// fence the fleet.
	if hst.Ops.RangeLocal != 0 || hst.Ops.RangeCross != 2 || hst.Ops.RangeFencedShards != 8 {
		t.Fatalf("hash leg: local=%d cross=%d fenced_shards=%d, want 0/2/8",
			hst.Ops.RangeLocal, hst.Ops.RangeCross, hst.Ops.RangeFencedShards)
	}
	if rst.Ops.RangeFencedShards >= hst.Ops.RangeFencedShards {
		t.Fatalf("range partitioner fenced %d shards, hash %d — locality lost",
			rst.Ops.RangeFencedShards, hst.Ops.RangeFencedShards)
	}
	// Per-shard routed counters feed the rebalance step; the narrow scan
	// plus its share of the preload must have landed on shard 0.
	if rst.Shards[0].OpsRouted == 0 {
		t.Fatal("range leg: shard 0 ops_routed = 0")
	}
}

// TestRangeFenceOnlyParticipants is the regression test for the
// /kv/range over-fencing fix: under hash partitioning a single-key scan
// owns exactly one shard, so it must run as a plain shard transaction —
// no cross-shard commit, no fences, and therefore zero fenced requeues
// for concurrent traffic on the other shards. (Before the fix every
// /kv/range fenced the whole fleet and concurrent single-key operations
// showed up in ops.fenced_requeues.)
func TestRangeFenceOnlyParticipants(t *testing.T) {
	s := newTestServer(t, Options{Shards: 4, Workers: 2, Preload: 1024})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const scans = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < scans; i++ {
			k := uint64(i % 1024)
			if code, r := get(t, fmt.Sprintf("%s/kv/range?lo=%d&hi=%d", ts.URL, k, k)); code != 200 {
				t.Errorf("scan %d = %d %+v", i, code, r)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < scans*4; i++ {
			if code, r := get(t, fmt.Sprintf("%s/kv/get?key=%d", ts.URL, i%1024)); code != 200 {
				t.Errorf("get %d = %d %+v", i, code, r)
				return
			}
		}
	}()
	wg.Wait()

	st := s.StatusSnapshot()
	if st.Ops.RangeLocal != scans || st.Ops.RangeCross != 0 {
		t.Fatalf("single-key scans: local=%d cross=%d, want %d/0", st.Ops.RangeLocal, st.Ops.RangeCross, scans)
	}
	if st.Ops.CrossOps != 0 {
		t.Fatalf("single-key scans ran %d cross-shard commits", st.Ops.CrossOps)
	}
	if st.Ops.Fenced != 0 {
		t.Fatalf("ops.fenced_requeues = %d — scans fenced shards owning no key in the interval", st.Ops.Fenced)
	}
}

// TestRangeLinearizability races cross-shard mput batches against range
// scans under both partitioners and requires every committed history to
// admit a sequential witness with ordered-snapshot scan semantics — a
// scan that observed half of a batch (torn count/sum) fails the check.
func TestRangeLinearizability(t *testing.T) {
	for _, kind := range []string{shard.KindHash, shard.KindRange} {
		t.Run(kind, func(t *testing.T) {
			const rounds = 3
			for round := 0; round < rounds; round++ {
				// KeyUniverse 15 spreads keys 0..14 across the three
				// shards' spans under the range partitioner.
				s := newTestServer(t, Options{
					Shards:      3,
					Workers:     2,
					Partitioner: kind,
					KeyUniverse: 15,
					HeapWords:   1 << 16,
				})
				base := time.Now()
				rec := &linRecorder{}
				// Batch keys straddle all three spans (and, with high
				// probability, all three hash shards).
				batchKeys := []uint64{1, 6, 11}
				var wg sync.WaitGroup
				for c := 0; c < 3; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := uint64(round*1000 + c*31 + 7)
						next := func(n uint64) uint64 {
							rng = rng*6364136223846793005 + 1442695040888963407
							return (rng >> 33) % n
						}
						for i := 0; i < 4; i++ {
							op := shard.Op{Invoke: int64(time.Since(base))}
							var resp response
							var code int
							switch next(3) {
							case 0:
								v := uint64(c*100 + round*10 + i + 1)
								op.Kind = shard.OpMPut
								op.Keys = append([]uint64{}, batchKeys...)
								op.Args = []uint64{v, v, v}
								resp, code = s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
							case 1:
								k := batchKeys[next(3)]
								v := uint64(c*100 + round*10 + i + 1)
								op.Kind = shard.OpPut
								op.Keys, op.Args = []uint64{k}, []uint64{v}
								resp, code = s.submit(s.shardFor(&request{op: opPut, key: k}), &request{op: opPut, key: k, val: v})
								op.Oks = []bool{resp.Existed}
							default:
								op.Kind = shard.OpRange
								op.Keys = []uint64{0, 14}
								resp, code = s.submitCross(&request{op: opRange, lo: 0, hi: 14})
								op.Vals = []uint64{resp.Count, resp.Sum}
							}
							op.Return = int64(time.Since(base))
							if code != http.StatusOK {
								t.Errorf("round %d client %d op %d: HTTP %d %+v", round, c, i, code, resp)
								return
							}
							rec.record(op)
						}
					}(c)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				if _, ok := shard.Linearize(rec.ops); !ok {
					t.Fatalf("round %d: scan-racing-mput history of %d ops admits no sequential witness: %+v",
						round, len(rec.ops), rec.ops)
				}
			}
		})
	}
}
