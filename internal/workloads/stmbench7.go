package workloads

import "repro/internal/tm"

// STMBench7 ports the OO7-derived benchmark (Guerraoui, Kapałka, Vitek —
// EuroSys 2007): a deep object graph of assemblies and composite parts with
// a mix of short operations, long read-only traversals, and structural
// modifications — the most heterogeneous transaction mix in the suite.
//
// Graph layout: a complete assembly tree of fan-out Fanout and depth Depth;
// each leaf (base assembly) references CompPerBase composite parts; each
// composite part owns a chain of atomic parts with attribute words.
type STMBench7 struct {
	Fanout      int
	Depth       int
	CompPerBase int
	AtomicChain int
	// ReadDominated selects the read-dominated operation mix (90 % reads)
	// rather than the default mixed one (60 % reads).
	ReadDominated bool

	h          *tm.Heap
	assemblies tm.Addr // tree nodes: Fanout children pointers + value word
	leaves     []tm.Addr
	comps      []tm.Addr // composite part headers
	root       tm.Addr
}

// Name implements Workload.
func (s *STMBench7) Name() string { return "stmbench7" }

func (s *STMBench7) defaults() {
	if s.Fanout <= 0 {
		s.Fanout = 3
	}
	if s.Depth <= 0 {
		s.Depth = 5
	}
	if s.CompPerBase <= 0 {
		s.CompPerBase = 4
	}
	if s.AtomicChain <= 0 {
		s.AtomicChain = 16
	}
}

// assembly node layout: value, children[Fanout].
func (s *STMBench7) nodeWords() int { return 1 + s.Fanout }

// composite part layout: attribute, buildDate, chain head, chain of
// AtomicChain nodes each (attr, next).
func (s *STMBench7) buildAssembly(depth int) tm.Addr {
	n := s.h.MustAlloc(s.nodeWords())
	if depth == 0 {
		s.leaves = append(s.leaves, n)
		return n
	}
	for c := 0; c < s.Fanout; c++ {
		child := s.buildAssembly(depth - 1)
		s.h.StoreWord(n+1+tm.Addr(c), uint64(child))
	}
	return n
}

// Setup implements Workload.
func (s *STMBench7) Setup(h *tm.Heap, rng *Rand) error {
	s.defaults()
	s.h = h
	s.leaves = nil
	s.root = s.buildAssembly(s.Depth)
	for _, leaf := range s.leaves {
		_ = leaf
		for c := 0; c < s.CompPerBase; c++ {
			comp := h.MustAlloc(3)
			// Build the atomic-part chain.
			var head tm.Addr = tm.NilAddr
			for a := 0; a < s.AtomicChain; a++ {
				node := h.MustAlloc(2)
				h.StoreWord(node, uint64(rng.Intn(1000)))
				h.StoreWord(node+1, uint64(head))
				head = node
			}
			h.StoreWord(comp, uint64(rng.Intn(1000))) // attribute
			h.StoreWord(comp+1, uint64(rng.Intn(10))) // build date
			h.StoreWord(comp+2, uint64(head))
			s.comps = append(s.comps, comp)
		}
	}
	return nil
}

// Op implements Workload: the STMBench7-style operation mix.
func (s *STMBench7) Op(r Runner, self int, rng *Rand) {
	p := rng.Intn(100)
	readCut := 60
	if s.ReadDominated {
		readCut = 90
	}
	switch {
	case p < readCut/2:
		// Short traversal: read one composite part's chain.
		comp := s.comps[rng.Intn(len(s.comps))]
		r.Atomic(self, func(tx tm.Txn) {
			sum := tx.Load(comp)
			n := tm.Addr(tx.Load(comp + 2))
			for n != tm.NilAddr {
				sum += tx.Load(n)
				n = tm.Addr(tx.Load(n + 1))
			}
			_ = sum
		})
	case p < readCut:
		// Long traversal: walk the whole assembly tree.
		r.Atomic(self, func(tx tm.Txn) {
			s.traverse(tx, s.root, s.Depth)
		})
	case p < readCut+(100-readCut)/2:
		// Short update: bump one composite part's attributes.
		comp := s.comps[rng.Intn(len(s.comps))]
		r.Atomic(self, func(tx tm.Txn) {
			tx.Store(comp, tx.Load(comp)+1)
			n := tm.Addr(tx.Load(comp + 2))
			for i := 0; n != tm.NilAddr && i < 4; i++ {
				tx.Store(n, tx.Load(n)+1)
				n = tm.Addr(tx.Load(n + 1))
			}
		})
	default:
		// Structural modification: update a subtree's assembly values.
		leafIdx := rng.Intn(len(s.leaves))
		leaf := s.leaves[leafIdx]
		r.Atomic(self, func(tx tm.Txn) {
			tx.Store(leaf, tx.Load(leaf)+1)
			// Touch the parent path implicitly via a partial
			// traversal from the root.
			n := s.root
			for d := 0; d < s.Depth; d++ {
				tx.Store(n, tx.Load(n)+1)
				n = tm.Addr(tx.Load(n + 1 + tm.Addr(leafIdx%s.Fanout)))
				if n == tm.NilAddr {
					break
				}
			}
		})
	}
	Spin(1)
}

func (s *STMBench7) traverse(tx tm.Txn, n tm.Addr, depth int) uint64 {
	sum := tx.Load(n)
	if depth == 0 {
		return sum
	}
	for c := 0; c < s.Fanout; c++ {
		child := tm.Addr(tx.Load(n + 1 + tm.Addr(c)))
		if child != tm.NilAddr {
			sum += s.traverse(tx, child, depth-1)
		}
	}
	return sum
}
