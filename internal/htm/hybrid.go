package htm

import "repro/internal/tm"

// Hybrid is a Hybrid-NOrec-style TM (Dalessandro et al., ASPLOS 2011): a
// best-effort hardware fast path coordinated with a NOrec software slow path
// through the heap's global sequence lock. Any software (or hardware) commit
// increments the sequence lock, which conservatively aborts every in-flight
// hardware transaction — the one-counter HyNOrec scheme. As in the paper
// (footnote 4), hybrids participate in PolyTM's library but never win, so
// they are excluded from the tuned configuration spaces.
type Hybrid struct {
	ReadCap  int
	WriteCap int
	CM       *CM

	sw tmNOrec
}

// tmNOrec is the minimal interface the slow path needs; satisfied by
// stm.NOrec. It is re-declared locally to keep htm free of an stm import
// cycle (stm does not import htm either, but the indirection keeps the
// layering one-directional).
type tmNOrec interface {
	Begin(*tm.Ctx)
	Load(*tm.Ctx, tm.Addr) uint64
	Store(*tm.Ctx, tm.Addr, uint64)
	Commit(*tm.Ctx) bool
	Abort(*tm.Ctx)
}

// SetSlowPath installs the software fallback algorithm (a NOrec instance,
// passed as any value implementing the algorithm operations).
func (hy *Hybrid) SetSlowPath(sw tmNOrec) {
	hy.sw = sw
}

func (hy *Hybrid) caps() (int, int) {
	r, w := hy.ReadCap, hy.WriteCap
	if r == 0 {
		r = DefaultReadCap
	}
	if w == 0 {
		w = DefaultWriteCap
	}
	return r, w
}

// Name implements tm.Algorithm.
func (hy *Hybrid) Name() string { return "hybrid" }

// Begin implements tm.Algorithm.
func (hy *Hybrid) Begin(c *tm.Ctx) {
	st := &c.HTM
	if st.LastTxn != c.TxnID {
		st.LastTxn = c.TxnID
		b := 5
		if hy.CM != nil {
			b, _ = hy.CM.Get()
		}
		st.Budget = b
	}
	if st.Budget <= 0 {
		st.Fallback = true
		c.Stats.IncFallbackRun()
		hy.sw.Begin(c)
		return
	}
	st.Fallback = false
	c.ResetSets()
	c.AbortReason = tm.AbortNone
	// Subscribe to the sequence lock shared with the software path.
	for {
		v := c.H.Clock()
		if v&1 == 0 {
			st.SnapshotRV = v
			break
		}
	}
	st.InTx = true
}

// Load implements tm.Algorithm: a hardware read is a plain load plus a
// subscription check — if any commit happened since begin, abort.
func (hy *Hybrid) Load(c *tm.Ctx, a tm.Addr) uint64 {
	st := &c.HTM
	if st.Fallback {
		return hy.sw.Load(c, a)
	}
	if v, ok := c.WS.Get(a); ok {
		return v
	}
	v := c.H.LoadWord(a)
	if c.H.Clock() != st.SnapshotRV {
		c.Retry(tm.AbortConflict)
	}
	rcap, _ := hy.caps()
	c.VRS.Add(a, v) // reuse the value read set purely as a footprint counter
	if c.VRS.Len() > rcap {
		c.Retry(tm.AbortCapacity)
	}
	return v
}

// Store implements tm.Algorithm: buffered until commit.
func (hy *Hybrid) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	st := &c.HTM
	if st.Fallback {
		hy.sw.Store(c, a, v)
		return
	}
	_, wcap := hy.caps()
	c.WS.Put(a, v)
	if c.WS.Len() > wcap {
		c.Retry(tm.AbortCapacity)
	}
	if c.H.Clock() != st.SnapshotRV {
		c.Retry(tm.AbortConflict)
	}
}

// Commit implements tm.Algorithm: the hardware path publishes its redo log
// under the sequence lock, which simultaneously aborts every other in-flight
// hardware transaction — HyNOrec's conservative single-counter coordination.
func (hy *Hybrid) Commit(c *tm.Ctx) bool {
	st := &c.HTM
	if st.Fallback {
		ok := hy.sw.Commit(c)
		if ok {
			st.Fallback = false
		}
		return ok
	}
	if c.WS.Len() == 0 {
		if c.H.Clock() != st.SnapshotRV {
			c.AbortReason = tm.AbortConflict
			return false
		}
		st.InTx = false
		return true
	}
	if !c.H.ClockCAS(st.SnapshotRV, st.SnapshotRV+1) {
		c.AbortReason = tm.AbortConflict
		return false
	}
	for _, e := range c.WS.Entries() {
		c.H.StoreWord(e.Addr, e.Val)
	}
	c.H.ClockStore(st.SnapshotRV + 2)
	st.InTx = false
	return true
}

// Abort implements tm.Algorithm.
func (hy *Hybrid) Abort(c *tm.Ctx) {
	st := &c.HTM
	if st.Fallback {
		hy.sw.Abort(c)
		st.Fallback = false
		return
	}
	st.InTx = false
	switch c.AbortReason {
	case tm.AbortCapacity:
		policy := PolicyDecrease
		if hy.CM != nil {
			_, policy = hy.CM.Get()
		}
		switch policy {
		case PolicyGiveUp:
			st.Budget = 0
		case PolicyHalve:
			st.Budget /= 2
		default:
			st.Budget--
		}
	default:
		st.Budget--
	}
}
