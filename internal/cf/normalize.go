package cf

import (
	"fmt"
	"math"
)

// Normalizer maps raw goodness rows to the rating space a CF predictor
// operates in, and back. Fit learns any global statistics from the (fully or
// partially profiled) training matrix; NormalizeRow maps one workload's raw
// goodness row (NaN for unsampled configurations) to ratings and returns the
// inverse mapping for converting predicted ratings back to goodness.
//
// The five implementations are exactly the preprocessing contenders of
// Fig. 4 in the paper: no normalization (Quasar-style), normalization by a
// global maximum (Paragon-style), the oracle "ideal" per-row normalization,
// row-column subtraction, and ProteusTM's rating distillation (distill.go).
type Normalizer interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Fit learns global statistics from the training matrix.
	Fit(train *Matrix) error
	// NormalizeRow converts a raw goodness row to ratings. rowIdx is the
	// row's index in the full matrix when meaningful (used only by the
	// oracle scheme), or -1 for out-of-matrix workloads. The returned
	// denorm maps a predicted rating at a given column back to goodness.
	NormalizeRow(rowIdx int, raw []float64) (ratings []float64, denorm func(col int, r float64) float64)
}

// NormalizeMatrix applies n row-wise to every row of m, returning the rating
// matrix and per-row inverse mappings.
func NormalizeMatrix(n Normalizer, m *Matrix) (*Matrix, []func(int, float64) float64) {
	out := NewMatrix(m.Rows, m.Cols)
	den := make([]func(int, float64) float64, m.Rows)
	for u := range m.Data {
		out.Data[u], den[u] = n.NormalizeRow(u, m.Data[u])
	}
	return out, den
}

// --- No normalization -------------------------------------------------------

// NoNorm feeds raw goodness values straight to the CF predictor, as Quasar
// does. Heterogeneous KPI scales across workloads are preserved, which is
// what cripples similarity mining (§5.1).
type NoNorm struct{}

// Name implements Normalizer.
func (NoNorm) Name() string { return "none" }

// Fit implements Normalizer.
func (NoNorm) Fit(*Matrix) error { return nil }

// NormalizeRow implements Normalizer.
func (NoNorm) NormalizeRow(_ int, raw []float64) ([]float64, func(int, float64) float64) {
	out := make([]float64, len(raw))
	copy(out, raw)
	return out, func(_ int, r float64) float64 { return r }
}

// --- Normalization w.r.t. a global maximum ----------------------------------

// MaxNorm divides every entry by the largest value in the training matrix —
// one machine-wide constant, resembling Paragon's normalization by the
// machine's peak rate. Per-workload scale heterogeneity survives intact.
type MaxNorm struct {
	max float64
}

// Name implements Normalizer.
func (*MaxNorm) Name() string { return "max" }

// Fit implements Normalizer.
func (m *MaxNorm) Fit(train *Matrix) error {
	m.max = 0
	for _, row := range train.Data {
		if v, ok := RowMax(row); ok && v > m.max {
			m.max = v
		}
	}
	if m.max == 0 {
		return fmt.Errorf("cf: MaxNorm: training matrix has no positive entries")
	}
	return nil
}

// NormalizeRow implements Normalizer.
func (m *MaxNorm) NormalizeRow(_ int, raw []float64) ([]float64, func(int, float64) float64) {
	out := make([]float64, len(raw))
	for i, v := range raw {
		if IsMissing(v) {
			out[i] = Missing
		} else {
			out[i] = v / m.max
		}
	}
	scale := m.max
	return out, func(_ int, r float64) float64 { return r * scale }
}

// --- Ideal (oracle) normalization -------------------------------------------

// IdealNorm normalizes each row by the row's true maximum, which requires
// knowing the best achievable KPI a priori — the unattainable upper bound of
// §5.1 that rating distillation approximates. It is constructed with oracle
// access to the complete ground-truth matrix.
type IdealNorm struct {
	truth *Matrix
}

// NewIdealNorm builds the oracle normalizer over the full ground-truth
// goodness matrix.
func NewIdealNorm(truth *Matrix) *IdealNorm { return &IdealNorm{truth: truth} }

// Name implements Normalizer.
func (*IdealNorm) Name() string { return "ideal" }

// Fit implements Normalizer.
func (*IdealNorm) Fit(*Matrix) error { return nil }

// NormalizeRow implements Normalizer. The oracle row is located by content:
// the truth row whose entries coincide with the known entries of raw (train
// and test splits re-index rows, so positional lookup would mis-align).
// When no truth row matches, the known entries' max is used.
func (n *IdealNorm) NormalizeRow(_ int, raw []float64) ([]float64, func(int, float64) float64) {
	scale := 0.0
	if n.truth != nil {
		if r := n.matchRow(raw); r >= 0 {
			scale, _ = RowMax(n.truth.Data[r])
		}
	}
	if scale == 0 {
		scale, _ = RowMax(raw)
	}
	if scale == 0 {
		scale = 1
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		if IsMissing(v) {
			out[i] = Missing
		} else {
			out[i] = v / scale
		}
	}
	s := scale
	return out, func(_ int, r float64) float64 { return r * s }
}

// matchRow returns the index of the truth row whose entries agree with every
// known entry of raw, or -1.
func (n *IdealNorm) matchRow(raw []float64) int {
	for r, row := range n.truth.Data {
		match := true
		for i, v := range raw {
			if IsMissing(v) {
				continue
			}
			tv := row[i]
			if IsMissing(tv) || math.Abs(tv-v) > 1e-9*math.Max(math.Abs(tv), math.Abs(v)) {
				match = false
				break
			}
		}
		if match {
			return r
		}
	}
	return -1
}

// --- Row-column subtraction ---------------------------------------------------

// RCNorm is the classic bias-removal preprocessing of CF (§6.3 item iv):
// subtract each row's mean from its entries, then subtract the resulting
// per-column means (learned on the training matrix).
type RCNorm struct {
	colMeans []float64
}

// Name implements Normalizer.
func (*RCNorm) Name() string { return "rc" }

// Fit implements Normalizer: compute column means of row-centered training
// data.
func (n *RCNorm) Fit(train *Matrix) error {
	centered := NewMatrix(train.Rows, train.Cols)
	for u, row := range train.Data {
		mean, cnt := RowMean(row)
		if cnt == 0 {
			continue
		}
		for i, v := range row {
			if !IsMissing(v) {
				centered.Data[u][i] = v - mean
			}
		}
	}
	n.colMeans = centered.ColMeans()
	return nil
}

// NormalizeRow implements Normalizer.
func (n *RCNorm) NormalizeRow(_ int, raw []float64) ([]float64, func(int, float64) float64) {
	mean, _ := RowMean(raw)
	out := make([]float64, len(raw))
	for i, v := range raw {
		if IsMissing(v) {
			out[i] = Missing
			continue
		}
		cm := 0.0
		if i < len(n.colMeans) {
			cm = n.colMeans[i]
		}
		out[i] = v - mean - cm
	}
	rm := mean
	cms := n.colMeans
	return out, func(col int, r float64) float64 {
		cm := 0.0
		if col >= 0 && col < len(cms) {
			cm = cms[col]
		}
		return r + cm + rm
	}
}
