package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	shardpkg "repro/internal/shard"
	"repro/internal/workloads"
)

// LoadPhase is one segment of a loadgen session: a named operation mix
// held for a duration.
type LoadPhase struct {
	// Mix is the operation mix (one of workloads.ServiceMixByName).
	Mix workloads.ServiceOpMix
	// Duration is how long the phase lasts.
	Duration time.Duration
}

// ParsePhases parses a phase spec like "read-heavy:5s,write-heavy:5s,scan:3s"
// into phases; each element is mix-name:duration.
func ParsePhases(spec string) ([]LoadPhase, error) {
	var out []LoadPhase
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, durStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: phase %q: want mix:duration", part)
		}
		mix, err := workloads.ServiceMixByName(name)
		if err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: phase %q: %w", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("loadgen: phase %q: duration must be positive", part)
		}
		out = append(out, LoadPhase{Mix: mix, Duration: d})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty phase spec")
	}
	return out, nil
}

// LoadgenOptions configures a loadgen session against a running proteusd.
type LoadgenOptions struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// Conns is the number of concurrent client connections (default 8).
	Conns int
	// Rate is the total offered load in operations per second across all
	// connections, delivered open-loop: operations are scheduled on a
	// clock, and scheduling slots that find every connection busy are
	// counted as shed rather than silently deferred. Rate 0 runs closed
	// loop: every connection issues back-to-back requests, measuring the
	// service's capacity under the mix (the mode that makes phase shifts
	// visible to the daemon's KPI monitor).
	Rate float64
	// Phases is the traffic schedule (required; see ParsePhases).
	Phases []LoadPhase
	// KeyRange bounds the generated keys (default 16384).
	KeyRange uint64
	// Span is the width of range scans (default 256).
	Span uint64
	// Skew in [0,1] is the probability an operation is drawn from the
	// shard-correlated plan instead of the phase mix: writes (put/del/cas
	// on a small hot set, plus occasional cross-shard mput batches) are
	// steered at keys owned by the lower half of the daemon's shards and
	// reads at keys owned by the upper half, so per-shard traffic
	// profiles diverge and the per-shard tuners install different
	// configurations. Ignored unless the daemon reports more than one
	// shard; the client computes ownership with the same consistent-hash
	// ring the server routes with.
	Skew float64
	// MPutFrac in [0,1] is the probability an operation is a cross-shard
	// 4-key /kv/mput batch regardless of the phase mix — the batch-heavy
	// knob the group-commit and keyed-fence A/B sessions turn up. The
	// mputs run the full two-phase fence protocol on a sharded daemon, so
	// raising this drives ops.fenced_requeues under shard-granularity
	// fences and exercises the keyed-fence OCC path under key granularity.
	MPutFrac float64
	// Seed drives the per-connection operation streams.
	Seed uint64
	// Deadline, when positive, is attached to every request as its
	// deadline_ms budget: the daemon drops the operation with 504 if it
	// is still queued when the budget expires. The client-side request
	// context allows 4x the budget, so the server's verdict — not a
	// client-side race — decides each operation's outcome; the context
	// only catches a truly hung daemon (counted as Timeouts).
	Deadline time.Duration
	// SLOP99, when positive, is the latency target SLO attainment is
	// reported against (PhaseReport.SLOAttainment): the fraction of
	// attempted operations that completed within it, with rejections,
	// expirations and timeouts counted as misses.
	SLOP99 time.Duration
	// Logf, when set, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

// skewPlan precomputes the shard-correlated key pools of a skewed
// session: every generated key's owner is known client-side because
// partitioner construction is deterministic in the parameters /statusz
// reports (kind, shard count, key universe).
type skewPlan struct {
	// epoch is the daemon's partitioner_epoch the plan was built from. A
	// live reshard moves the epoch, and a plan built under an older one
	// steers keys at shards that no longer own them — the status sampler
	// detects the change and rebuilds (LoadReport.Replans counts these).
	epoch  uint64
	shards int
	// pools[s] holds the keys in [0, KeyRange) owned by shard s; hot[s]
	// is a small prefix of them that write traffic hammers to create
	// per-shard contention.
	pools [][]uint64
	hot   [][]uint64
}

// buildSkewPlan collects per-shard key pools from the low end of
// [0, keyRange). The pools are capped — the plan only needs a hot set
// plus enough keys to spread reads over, not a materialized partition of
// the whole (possibly enormous) key range — and the scan stops as soon
// as every pool is full, so plan construction is O(shards · poolCap)
// with a balanced partitioner regardless of keyRange.
func buildSkewPlan(st *ServerStatus, keyRange uint64) *skewPlan {
	const poolCap = 4096
	shards := st.Shards
	var part shardpkg.Partitioner
	var err error
	if len(st.SpanStarts) > 0 {
		// A resharded daemon's placement is not derivable from the shard
		// count alone — rebuild the exact span table it routes with.
		part, err = shardpkg.NewRangeFromSpans(st.SpanStarts, st.SpanOwners, st.KeyUniverse)
	} else {
		part, err = shardpkg.NewPartitioner(st.Partitioner, shards, st.KeyUniverse)
	}
	if err != nil {
		// An unknown kind (or a malformed span table) means a newer
		// daemon; fall back to the hash ring, which every daemon speaks.
		part = shardpkg.New(shards)
	}
	// Size the plan from the partitioner actually built, not st.Shards:
	// the daemon counts fleet entries, which disagrees with the span
	// table around a live merge (spares linger above the placement's top
	// shard, and the status snapshot can catch the fleet truncated one
	// ahead of the placement it reports). Keying everything to the span
	// table keeps pools[Owner(k)] in range whichever way they diverge.
	shards = part.Shards()
	plan := &skewPlan{epoch: st.PartitionerEpoch, shards: shards, pools: make([][]uint64, shards), hot: make([][]uint64, shards)}
	full := 0
	// The scan bound guards against a pathologically unbalanced ring:
	// past it, a still-unfilled pool just stays smaller.
	scanMax := keyRange
	if limit := uint64(shards) * poolCap * 64; scanMax > limit {
		scanMax = limit
	}
	for k := uint64(0); k < scanMax && full < shards; k++ {
		o := part.Owner(k)
		if len(plan.pools[o]) < poolCap {
			plan.pools[o] = append(plan.pools[o], k)
			if len(plan.pools[o]) == poolCap {
				full++
			}
		}
	}
	for s := range plan.pools {
		n := len(plan.pools[s])
		if n == 0 {
			continue
		}
		hot := 64
		if hot > n {
			hot = n
		}
		plan.hot[s] = plan.pools[s][:hot]
	}
	return plan
}

// PhaseReport summarizes one phase of a loadgen session.
type PhaseReport struct {
	Name        string  `json:"name"`
	DurationSec float64 `json:"duration_sec"`
	// Ops counts completed operations (HTTP 200); Rejected counts
	// admission-queue rejections (HTTP 429); Errors counts transport
	// failures and 5xx responses; Shed counts open-loop scheduling slots
	// dropped because every connection was busy.
	Ops        uint64  `json:"ops"`
	Rejected   uint64  `json:"rejected"`
	Errors     uint64  `json:"errors"`
	Shed       uint64  `json:"shed,omitempty"`
	Throughput float64 `json:"throughput"`
	// Expired counts server-side deadline drops (HTTP 504); Timeouts
	// counts client-side context expirations (the request was abandoned
	// before any response arrived). Both stay zero unless a deadline was
	// set.
	Expired  uint64 `json:"expired,omitempty"`
	Timeouts uint64 `json:"timeouts,omitempty"`
	// Retried503 counts 503 responses that carried a Retry-After header
	// (circuit-breaker shedding or fence recovery in progress) and were
	// retried after honoring it; only the final attempt's outcome lands in
	// the other counters. A 503 without the header is a hard error.
	Retried503 uint64 `json:"retried_503,omitempty"`
	// LatencyMs summarizes per-operation client-observed latency.
	LatencyMs metrics.Summary `json:"latency_ms"`
	// QueueWaitP50Ms and QueueWaitP99Ms snapshot the daemon's
	// accept-to-execution-start distribution at phase end (from
	// /statusz) — the server-side queue-pressure counterpart of the
	// client-observed LatencyMs.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	// SLOAttainment is the fraction of attempted operations that
	// completed within the session's SLOP99 target; omitted when no
	// target was set.
	SLOAttainment float64 `json:"slo_attainment,omitempty"`
	// Reconfigurations counts daemon optimization phases that completed
	// during this phase; Config is the configuration installed when the
	// phase ended.
	Reconfigurations int    `json:"reconfigurations"`
	Config           string `json:"config"`
}

// LoadReport is the session-level JSON report `proteusbench loadgen`
// writes: per-phase and total throughput/latency plus the daemon-side
// reconfiguration events the session triggered.
type LoadReport struct {
	Target   string  `json:"target"`
	Conns    int     `json:"conns"`
	Rate     float64 `json:"rate"`
	Seed     uint64  `json:"seed"`
	KeyRange uint64  `json:"keyrange"`
	Span     uint64  `json:"span"`
	// Skew echoes the shard-correlated traffic fraction; Shards is the
	// daemon's shard count and Partitioner its placement policy (the
	// client replicates both from /statusz). ShardConfigs is the per-shard installed
	// configuration when the session ended. Because idle tuners re-
	// converge once traffic stops, the session-level divergence signal is
	// MaxDistinctShardConfigs: the largest number of distinct
	// configurations simultaneously installed on non-exploring shards at
	// any status sample during the session (DistinctShardSample is the
	// per-shard snapshot at that moment).
	Skew                    float64  `json:"skew,omitempty"`
	MPutFrac                float64  `json:"mput_frac,omitempty"`
	Shards                  int      `json:"shards"`
	Partitioner             string   `json:"partitioner,omitempty"`
	ShardConfigs            []string `json:"shard_configs"`
	MaxDistinctShardConfigs int      `json:"max_distinct_shard_configs"`
	DistinctShardSample     []string `json:"distinct_shard_sample,omitempty"`
	StartConfig             string   `json:"start_config"`
	FinalConfig             string   `json:"final_config"`
	// Replans counts client-side partitioner-replica rebuilds: the status
	// sampler saw partitioner_epoch move (a live reshard installed a new
	// placement) and rebuilt the skew plan from the fresh span table.
	Replans int `json:"replans,omitempty"`
	// DaemonCommits is the daemon's committed-transaction delta over the
	// session (from /statusz), which bounds the served throughput from
	// below even if some client requests failed.
	DaemonCommits uint64        `json:"daemon_commits"`
	Phases        []PhaseReport `json:"phases"`
	Total         PhaseReport   `json:"total"`
	// Reconfigurations lists the daemon optimization phases that ran
	// during the session, as reported by /statusz.
	Reconfigurations []ReconfigStatus `json:"reconfigurations"`
}

// connStats accumulates one connection's phase counters.
type connStats struct {
	ops, rejected, errors    uint64
	expired, timeouts, okSLO uint64
	retried503               uint64
	lat                      []float64
}

// RunLoadgen drives the phase schedule against a running daemon and
// returns the session report.
func RunLoadgen(opts LoadgenOptions) (*LoadReport, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(opts.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: at least one phase is required")
	}
	if opts.Conns <= 0 {
		opts.Conns = 8
	}
	if opts.KeyRange == 0 {
		opts.KeyRange = 16384
	}
	if opts.Span == 0 {
		opts.Span = 256
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	base := strings.TrimRight(opts.BaseURL, "/")
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Conns * 2,
			MaxIdleConnsPerHost: opts.Conns * 2,
		},
	}

	before, err := fetchStatus(client, base)
	if err != nil {
		return nil, fmt.Errorf("loadgen: daemon not reachable: %w", err)
	}
	report := &LoadReport{
		Target:      base,
		Conns:       opts.Conns,
		Rate:        opts.Rate,
		Seed:        opts.Seed,
		KeyRange:    opts.KeyRange,
		Span:        opts.Span,
		Skew:        opts.Skew,
		MPutFrac:    opts.MPutFrac,
		Shards:      before.Server.Shards,
		Partitioner: before.Server.Partitioner,
		StartConfig: before.Config.Current,
	}
	seenReconfigs := len(before.Reconfigurations)
	// The skew plan lives behind an atomic pointer: the status sampler
	// swaps in a rebuilt replica when the daemon's partitioner_epoch moves
	// mid-session, and every issued operation reads the current one.
	var planPtr atomic.Pointer[skewPlan]
	if opts.Skew > 0 && before.Server.Shards > 1 {
		plan := buildSkewPlan(&before.Server, opts.KeyRange)
		planPtr.Store(plan)
		opts.Logf("loadgen: skew %.2f across %d shards (writes -> shards 0-%d, reads -> shards %d-%d)",
			opts.Skew, plan.shards, plan.shards/2-1, plan.shards/2, plan.shards-1)
		// An empty pool means the client's key range never reaches that
		// shard's slice of the placement — easy to hit against a range-
		// partitioned daemon when --keyrange is smaller than the daemon's
		// --key-universe (shard i of N only starts at i*universe/N).
		// Skewed ops aimed at an empty pool are silently skipped, so say
		// so loudly instead of reporting mysteriously low throughput.
		for sh, pool := range plan.pools {
			if len(pool) == 0 {
				opts.Logf("loadgen: WARNING: shard %d owns no keys in [0,%d) under the daemon's %s partitioner (key_universe=%d); skewed ops for it will be skipped — raise --keyrange to cover the shard's span",
					sh, opts.KeyRange, before.Server.Partitioner, before.Server.KeyUniverse)
			}
		}
	}

	// On a sharded daemon, sample /statusz through the session and track
	// the peak simultaneous config divergence across shards — the
	// observable that survives the idle re-convergence at session end.
	var samplerStop chan struct{}
	var samplerWg sync.WaitGroup
	if before.Server.Shards > 1 {
		samplerStop = make(chan struct{})
		samplerWg.Add(1)
		go func() {
			defer samplerWg.Done()
			tick := time.NewTicker(400 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-tick.C:
					st, err := fetchStatus(client, base)
					if err != nil {
						continue
					}
					if n, sample := distinctInstalled(st); n > report.MaxDistinctShardConfigs {
						report.MaxDistinctShardConfigs = n
						report.DistinctShardSample = sample
					}
					// A moved partitioner_epoch means a reshard installed a
					// new placement: the cached replica now routes moved keys
					// at their old owner, so rebuild it from the live table.
					if plan := planPtr.Load(); plan != nil && st.Server.PartitionerEpoch != plan.epoch {
						np := buildSkewPlan(&st.Server, opts.KeyRange)
						planPtr.Store(np)
						report.Replans++
						opts.Logf("loadgen: placement epoch %d -> %d: rebuilt partitioner replica (%d shards)",
							plan.epoch, st.Server.PartitionerEpoch, np.shards)
					}
				}
			}
		}()
	}

	var totalLat []float64
	var totalDur time.Duration
	var totalOKSLO uint64
	for i, phase := range opts.Phases {
		opts.Logf("loadgen: phase %d/%d %s for %s", i+1, len(opts.Phases), phase.Mix.Name, phase.Duration)
		pr, lats, okSLO := runPhase(client, base, opts, &planPtr, i, phase)
		after, err := fetchStatus(client, base)
		if err != nil {
			return nil, fmt.Errorf("loadgen: statusz after phase %s: %w", phase.Mix.Name, err)
		}
		pr.Reconfigurations = len(after.Reconfigurations) - seenReconfigs
		seenReconfigs = len(after.Reconfigurations)
		pr.Config = after.Config.Current
		pr.QueueWaitP50Ms = after.QueueWait.P50
		pr.QueueWaitP99Ms = after.QueueWait.P99
		report.Phases = append(report.Phases, pr)
		totalLat = append(totalLat, lats...)
		totalDur += phase.Duration
		totalOKSLO += okSLO
		opts.Logf("loadgen: phase %s done: %d ops (%.0f/s), p50=%.2fms p99=%.2fms, %d rejected, %d expired, %d reconfigurations, config %s",
			phase.Mix.Name, pr.Ops, pr.Throughput, pr.LatencyMs.P50, pr.LatencyMs.P99, pr.Rejected, pr.Expired, pr.Reconfigurations, pr.Config)
	}

	if samplerStop != nil {
		close(samplerStop)
		samplerWg.Wait()
	}
	final, err := fetchStatus(client, base)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final statusz: %w", err)
	}
	if n, sample := distinctInstalled(final); n > report.MaxDistinctShardConfigs {
		report.MaxDistinctShardConfigs = n
		report.DistinctShardSample = sample
	}
	report.FinalConfig = final.Config.Current
	report.ShardConfigs = make([]string, 0, len(final.Shards))
	for _, sh := range final.Shards {
		report.ShardConfigs = append(report.ShardConfigs, sh.Config)
	}
	report.DaemonCommits = final.TM.Commits - before.TM.Commits
	report.Reconfigurations = sessionReconfigs(before.Reconfigurations, final.Reconfigurations)

	total := PhaseReport{Name: "total", DurationSec: totalDur.Seconds(), Config: final.Config.Current,
		Reconfigurations: len(report.Reconfigurations)}
	for _, pr := range report.Phases {
		total.Ops += pr.Ops
		total.Rejected += pr.Rejected
		total.Errors += pr.Errors
		total.Shed += pr.Shed
		total.Expired += pr.Expired
		total.Timeouts += pr.Timeouts
		total.Retried503 += pr.Retried503
	}
	if totalDur > 0 {
		total.Throughput = float64(total.Ops) / totalDur.Seconds()
	}
	total.LatencyMs = metrics.Summarize(totalLat)
	total.QueueWaitP50Ms = final.QueueWait.P50
	total.QueueWaitP99Ms = final.QueueWait.P99
	if attempts := total.Ops + total.Rejected + total.Errors + total.Expired + total.Timeouts; opts.SLOP99 > 0 && attempts > 0 {
		total.SLOAttainment = float64(totalOKSLO) / float64(attempts)
	}
	report.Total = total
	return report, nil
}

// runPhase drives one phase and returns its report, the raw latencies,
// and the count of operations that completed within the SLO target.
func runPhase(client *http.Client, base string, opts LoadgenOptions, planPtr *atomic.Pointer[skewPlan], phaseIdx int, phase LoadPhase) (PhaseReport, []float64, uint64) {
	deadline := time.Now().Add(phase.Duration)
	mix := phase.Mix.Normalize()

	// Open-loop pacing: a dispatcher owed-token loop refills the tokens
	// channel every few milliseconds; slots that find it full are shed.
	var tokens chan struct{}
	var shed uint64
	var dispatchWg sync.WaitGroup
	if opts.Rate > 0 {
		tokens = make(chan struct{}, opts.Conns*4)
		dispatchWg.Add(1)
		go func() {
			defer dispatchWg.Done()
			defer close(tokens)
			start := time.Now()
			issued := 0.0
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for now := range tick.C {
				if now.After(deadline) {
					return
				}
				owed := opts.Rate*now.Sub(start).Seconds() - issued
				for ; owed >= 1; owed-- {
					select {
					case tokens <- struct{}{}:
					default:
						shed++
					}
					issued++
				}
			}
		}()
	}

	stats := make([]connStats, opts.Conns)
	var wg sync.WaitGroup
	for c := 0; c < opts.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workloads.NewRand(opts.Seed + uint64(phaseIdx)*1_000_000_007 + uint64(c)*0x9E3779B97F4A7C15 + 1)
			st := &stats[c]
			for {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				issueOp(client, base, opts, planPtr, mix, rng, st)
			}
		}(c)
	}
	wg.Wait()
	dispatchWg.Wait()

	pr := PhaseReport{Name: mix.Name, DurationSec: phase.Duration.Seconds(), Shed: shed}
	var lats []float64
	var okSLO uint64
	for i := range stats {
		pr.Ops += stats[i].ops
		pr.Rejected += stats[i].rejected
		pr.Errors += stats[i].errors
		pr.Expired += stats[i].expired
		pr.Timeouts += stats[i].timeouts
		pr.Retried503 += stats[i].retried503
		okSLO += stats[i].okSLO
		lats = append(lats, stats[i].lat...)
	}
	pr.Throughput = float64(pr.Ops) / phase.Duration.Seconds()
	pr.LatencyMs = metrics.Summarize(lats)
	if attempts := pr.Ops + pr.Rejected + pr.Errors + pr.Expired + pr.Timeouts; opts.SLOP99 > 0 && attempts > 0 {
		pr.SLOAttainment = float64(okSLO) / float64(attempts)
	}
	return pr, lats, okSLO
}

// issueOp issues one operation — drawn from the shard-correlated skew
// plan when one is active and the skew coin lands, from the phase mix
// otherwise — and records its outcome.
func issueOp(client *http.Client, base string, opts LoadgenOptions, planPtr *atomic.Pointer[skewPlan], mix workloads.ServiceOpMix, rng *workloads.Rand, st *connStats) {
	if plan := planPtr.Load(); plan != nil && rng.Float64() < opts.Skew {
		issueSkewedOp(client, base, opts, plan, rng, st)
		return
	}
	if opts.MPutFrac > 0 && rng.Float64() < opts.MPutFrac {
		// Batch-heavy traffic: a 4-key mput over the whole key range,
		// which almost always spans shards and runs the fence protocol.
		keys := make([]string, 4)
		vals := make([]string, 4)
		for i := range keys {
			keys[i] = fmt.Sprintf("%d", rng.Intn(int(opts.KeyRange)))
			vals[i] = fmt.Sprintf("%d", rng.Intn(1000))
		}
		issueURL(client, fmt.Sprintf("%s/kv/mput?keys=%s&vals=%s",
			base, strings.Join(keys, ","), strings.Join(vals, ",")), opts, st)
		return
	}
	k := uint64(rng.Intn(int(opts.KeyRange)))
	p := rng.Float64()
	var url string
	switch {
	case p < mix.Get:
		url = fmt.Sprintf("%s/kv/get?key=%d", base, k)
	case p < mix.Get+mix.Put:
		url = fmt.Sprintf("%s/kv/put?key=%d&val=%d", base, k, k+1)
	case p < mix.Get+mix.Put+mix.Del:
		url = fmt.Sprintf("%s/kv/del?key=%d", base, k)
	case p < mix.Get+mix.Put+mix.Del+mix.CAS:
		url = fmt.Sprintf("%s/kv/cas?key=%d&old=%d&new=%d", base, k, k, k+1)
	default:
		url = fmt.Sprintf("%s/kv/range?lo=%d&hi=%d", base, k, k+opts.Span)
	}
	issueURL(client, url, opts, st)
}

// issueSkewedOp issues one shard-correlated operation: writes hammer a
// hot key set owned by a lower-half shard (contention-heavy mutation
// profile), reads spread over an upper-half shard's pool (lookup
// profile), and a small fraction of traffic is cross-shard mput batches
// exercising the two-phase commit path.
func issueSkewedOp(client *http.Client, base string, opts LoadgenOptions, plan *skewPlan, rng *workloads.Rand, st *connStats) {
	var url string
	if rng.Float64() < 0.03 {
		// Cross-shard batch put: four keys drawn from four different
		// pools so the batch almost always spans shards.
		keys := make([]string, 0, 4)
		for i := 0; i < 4; i++ {
			pool := plan.pools[(i*plan.shards/4)%plan.shards]
			if len(pool) == 0 {
				continue
			}
			keys = append(keys, fmt.Sprintf("%d", pool[rng.Intn(len(pool))]))
		}
		if len(keys) > 0 {
			vals := make([]string, len(keys))
			for i := range vals {
				vals[i] = fmt.Sprintf("%d", rng.Intn(1000))
			}
			url = fmt.Sprintf("%s/kv/mput?keys=%s&vals=%s", base, strings.Join(keys, ","), strings.Join(vals, ","))
		}
	}
	if url == "" {
		t := rng.Intn(plan.shards)
		if t < plan.shards/2 {
			// Write side: put/del/cas on the shard's hot set.
			hot := plan.hot[t]
			if len(hot) == 0 {
				return
			}
			k := hot[rng.Intn(len(hot))]
			switch rng.Intn(3) {
			case 0:
				url = fmt.Sprintf("%s/kv/put?key=%d&val=%d", base, k, k+1)
			case 1:
				url = fmt.Sprintf("%s/kv/del?key=%d", base, k)
			default:
				url = fmt.Sprintf("%s/kv/cas?key=%d&old=%d&new=%d", base, k, k, k+1)
			}
		} else {
			// Read side: gets across the shard's whole pool.
			pool := plan.pools[t]
			if len(pool) == 0 {
				return
			}
			url = fmt.Sprintf("%s/kv/get?key=%d", base, pool[rng.Intn(len(pool))])
		}
	}
	issueURL(client, url, opts, st)
}

// issueURL issues one HTTP operation, drains the response for keep-alive
// reuse, and classifies the outcome into the connection's counters. With
// a deadline configured the request declares its budget via deadline_ms
// (the daemon enforces it server-side) and carries a client context at
// 4x the budget so a hung daemon cannot strand the connection.
//
// A 503 carrying a Retry-After header is the daemon saying "transient:
// breaker open or fence recovery pending" — the operation is retried up
// to three more times after honoring the advertised wait (capped at 2s
// so a pathological header cannot stall the connection). Only the final
// attempt's outcome is classified and its latency recorded; each honored
// retry increments retried503. A 503 without the header stays an error.
func issueURL(client *http.Client, url string, opts LoadgenOptions, st *connStats) {
	if opts.Deadline > 0 {
		sep := "&"
		if !strings.Contains(url, "?") {
			sep = "?"
		}
		url = fmt.Sprintf("%s%sdeadline_ms=%.3f", url, sep, float64(opts.Deadline)/float64(time.Millisecond))
	}
	const maxAttempts = 4
	for attempt := 1; ; attempt++ {
		var req *http.Request
		var err error
		if opts.Deadline > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 4*opts.Deadline)
			defer cancel()
			req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		} else {
			req, err = http.NewRequest(http.MethodGet, url, nil)
		}
		if err != nil {
			st.errors++
			return
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				st.timeouts++
			} else {
				st.errors++
			}
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < maxAttempts {
			if wait, ok := retryAfterWait(resp); ok {
				st.retried503++
				time.Sleep(wait)
				continue
			}
		}
		latMs := float64(time.Since(t0).Nanoseconds()) / 1e6
		st.lat = append(st.lat, latMs)
		switch {
		case resp.StatusCode == http.StatusOK:
			st.ops++
			if opts.SLOP99 > 0 && latMs <= float64(opts.SLOP99)/float64(time.Millisecond) {
				st.okSLO++
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			st.rejected++
		case resp.StatusCode == http.StatusGatewayTimeout:
			st.expired++
		default:
			st.errors++
		}
		return
	}
}

// retryAfterWait extracts a 503 response's Retry-After delay, capped at
// 2 seconds. A missing or unparseable header reports false: the daemon
// gave no recovery estimate, so the response is not worth retrying.
func retryAfterWait(resp *http.Response) (time.Duration, bool) {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	wait := time.Duration(secs) * time.Second
	if max := 2 * time.Second; wait > max {
		wait = max
	}
	return wait, true
}

// sessionReconfigs extracts the reconfiguration events that happened
// during the session. The merged fleet list is ordered by per-shard
// clocks, which start at different wall times, so prefix slicing is
// wrong on a sharded daemon; each shard's own sub-list is append-only,
// so the delta is taken per shard.
func sessionReconfigs(before, final []ReconfigStatus) []ReconfigStatus {
	prior := map[int]int{}
	for _, e := range before {
		prior[e.Shard]++
	}
	out := []ReconfigStatus{}
	seen := map[int]int{}
	for _, e := range final {
		seen[e.Shard]++
		if seen[e.Shard] > prior[e.Shard] {
			out = append(out, e)
		}
	}
	return out
}

// distinctInstalled counts the distinct configurations installed on
// shards that are not mid-exploration (an exploring shard's "current"
// config is a profiling candidate, not a tuner decision) and returns the
// per-shard snapshot. Fewer than two settled shards yields zero.
func distinctInstalled(st *Status) (int, []string) {
	distinct := map[string]bool{}
	sample := make([]string, len(st.Shards))
	settled := 0
	for i, sh := range st.Shards {
		sample[i] = sh.Config
		if sh.Exploring {
			sample[i] += " (exploring)"
			continue
		}
		settled++
		distinct[sh.Config] = true
	}
	if settled < 2 {
		return 0, sample
	}
	return len(distinct), sample
}

// fetchStatus retrieves and decodes the daemon's /statusz document.
func fetchStatus(client *http.Client, base string) (*Status, error) {
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statusz: HTTP %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("statusz: %w", err)
	}
	return &st, nil
}
