// Package serve implements proteusd's serving layer: one or more
// transactional heaps exposed as a concurrent key-value / data-structure
// service over HTTP+JSON, executed as ProteusTM atomic blocks on pools of
// bound worker slots behind bounded admission queues, with a /statusz
// endpoint surfacing each shard's auto-tuner timeline, installed
// configuration, abort rates and serving metrics plus a fleet rollup.
//
// With Options.Shards > 1 the key space is partitioned across independent
// proteustm.System instances by a consistent-hash ring (internal/shard);
// each shard carries its own monitor and tuner, single-key operations
// route to the owning shard, and multi-key operations (mput, mget, range)
// commit atomically through a fence-based two-phase protocol (see
// cross.go and docs/sharding.md).
//
// The package is the repo's first long-running consumer of the online
// adaptation loop (§6.4 of the paper): client traffic is the workload, the
// CUSUM monitor watches the commit-rate KPI, and a traffic phase shift
// (read-heavy → write-heavy → scan, see `proteusbench loadgen`) triggers a
// live reoptimization while requests keep flowing. Reconfiguration safety
// relies on the graceful-drain hook (proteustm.System.OnReconfigure): when
// the incoming configuration disables worker slots, in-flight requests on
// those slots are drained before the slots park, so no request is ever
// stranded on a gated thread.
package serve

import (
	"fmt"

	"repro/internal/tm"
	"repro/internal/workloads"
)

// Deque node layout: value, prev, next. The next word doubles as the node
// pool's free-list link.
const (
	dqVal = iota
	dqPrev
	dqNext
	dqNodeWords
)

// Store is the data plane of the service: a sorted key-value map (the
// red-black tree the rbtree scenarios benchmark) plus a doubly-linked
// deque, both living in the transactional heap. Every method runs inside
// the caller's transaction; the Server invokes each request as one atomic
// block on its worker slot.
type Store struct {
	kv *workloads.RBSet

	pool  *workloads.NodePool
	lhead tm.Addr // heap word holding the deque head node address
	ltail tm.Addr // heap word holding the deque tail node address
	llen  tm.Addr // heap word holding the deque length

	// fence is the shard's cross-shard commit fence: zero when free, a
	// coordinator token while a two-phase cross-shard operation holds the
	// shard. Every data operation on a sharded server reads it inside its
	// own transaction, so the TM serializes local operations against fence
	// acquisition and release (see docs/sharding.md).
	//
	// fenceEpoch increments on every acquisition and never resets: a
	// (token, epoch) pair names one specific hold, so a release presented
	// with a superseded epoch — a slow coordinator racing the failure
	// detector's recovery, or a second recovery of the same orphan — is a
	// provable no-op. fenceBeat is the holder's heartbeat (unix
	// nanoseconds, stamped at acquisition); the per-shard failure
	// detector reads it non-transactionally to date an orphaned hold.
	fence      tm.Addr
	fenceEpoch tm.Addr
	fenceBeat  tm.Addr

	// slots is the keyed fence table (Options.FenceGranularity == "key"):
	// FenceSlots entries of fenceSlotWords words each — holder token,
	// epoch, heartbeat, and a 64-bit Bloom signature over the keys the
	// hold covers — preceded at fenceOcc by an occupancy count so the
	// dominant unfenced case costs local operations a single load. The
	// epoch space is shared with the whole-shard fence (fenceEpoch), so a
	// (token, epoch) pair still names exactly one hold across both
	// granularities.
	slots    tm.Addr
	fenceOcc tm.Addr

	// placeEpoch is the shard's placement epoch: the partitioner epoch as
	// of which this shard's span set is current. Every KV data operation
	// loads it inside its own transaction and compares it to the epoch
	// the request was routed under; a request stamped with an older epoch
	// may have been routed to the wrong shard by a placement that a
	// reshard has since replaced, so it bounces back for re-routing
	// instead of executing. The word only ever increases, and the bump on
	// a migration donor happens inside the same fenced transaction that
	// deletes the moved span, so a stale read and the data it would have
	// served cannot be observed together.
	placeEpoch tm.Addr
}

// FenceSlots is the keyed fence table's capacity per shard: the maximum
// number of cross-shard commits that can simultaneously hold fence
// entries on one shard. It matches the server-wide coordinator-slot
// bound, so a keyed acquire never fails for want of a table entry while
// a whole-shard acquire would have succeeded.
const FenceSlots = 32

// Keyed fence slot layout: holder token (zero = free), epoch, heartbeat,
// Bloom key signature.
const (
	fsToken = iota
	fsEpoch
	fsBeat
	fsSig
	fenceSlotWords
)

// NewStore allocates an empty store on h.
func NewStore(h *tm.Heap) (*Store, error) {
	kv, err := workloads.NewRBSet(h)
	if err != nil {
		return nil, fmt.Errorf("serve: kv store: %w", err)
	}
	pool, err := workloads.NewNodePool(h, dqNodeWords, dqNext)
	if err != nil {
		return nil, fmt.Errorf("serve: deque pool: %w", err)
	}
	words, err := h.Alloc(7)
	if err != nil {
		return nil, fmt.Errorf("serve: deque heads: %w", err)
	}
	slots, err := h.Alloc(1 + FenceSlots*fenceSlotWords)
	if err != nil {
		return nil, fmt.Errorf("serve: fence slots: %w", err)
	}
	return &Store{
		kv: kv, pool: pool,
		lhead: words, ltail: words + 1, llen: words + 2,
		fence: words + 3, fenceEpoch: words + 4, fenceBeat: words + 5,
		placeEpoch: words + 6,
		fenceOcc:   slots, slots: slots + 1,
	}, nil
}

// Fenced reports whether a cross-shard commit currently holds this
// store's fence. Local operations that observe a held fence must back off
// and retry (the serve worker requeues them) rather than read state a
// cross-shard batch is mid-way through installing.
func (s *Store) Fenced(tx tm.Txn) bool { return tx.Load(s.fence) != 0 }

// FenceAcquire is the CAS-with-fence of the cross-shard commit protocol:
// it claims the fence for token iff it is free, bumping the epoch and
// stamping the holder heartbeat, and returns the new epoch. The
// surrounding transaction makes the test-and-set atomic against every
// other fence access.
func (s *Store) FenceAcquire(tx tm.Txn, token, beat uint64) (epoch uint64, ok bool) {
	if tx.Load(s.fence) != 0 {
		return 0, false
	}
	epoch = tx.Load(s.fenceEpoch) + 1
	tx.Store(s.fence, token)
	tx.Store(s.fenceEpoch, epoch)
	tx.Store(s.fenceBeat, beat)
	return epoch, true
}

// FenceHeldBy reports whether the fence is currently held by exactly
// this (token, epoch) acquisition — the guard every apply and release
// runs under, which is what makes a superseded coordinator's late writes
// no-ops instead of corruption.
func (s *Store) FenceHeldBy(tx tm.Txn, token, epoch uint64) bool {
	return tx.Load(s.fence) == token && tx.Load(s.fenceEpoch) == epoch
}

// FenceRelease frees the fence iff it is still held at the given epoch,
// reporting whether it released. Cross-shard commits release inside the
// same transaction that applies their per-shard writes, so local readers
// observe the writes and the release atomically; a release racing the
// failure detector (which re-acquires under a new epoch) is a no-op.
func (s *Store) FenceRelease(tx tm.Txn, epoch uint64) bool {
	if tx.Load(s.fence) == 0 || tx.Load(s.fenceEpoch) != epoch {
		return false
	}
	tx.Store(s.fence, 0)
	return true
}

// FenceWord exposes the fence's heap address for non-transactional status
// peeks and tests.
func (s *Store) FenceWord() tm.Addr { return s.fence }

// FenceEpochWord exposes the epoch word's heap address.
func (s *Store) FenceEpochWord() tm.Addr { return s.fenceEpoch }

// FenceBeatWord exposes the heartbeat word's heap address.
func (s *Store) FenceBeatWord() tm.Addr { return s.fenceBeat }

// ---- keyed fences (Options.FenceGranularity == "key") ----
//
// Instead of one whole-shard fence word, a cross-shard commit claims a
// slot in a per-shard fence table and publishes a Bloom signature of the
// keys it covers. Local operations intersect their own key's signature
// bit with the held slots: a miss (the common case — one occupancy load
// plus, when entries are held, one signature AND per slot) proceeds
// immediately instead of requeueing for the whole 2PC window; a hit
// requeues exactly as under the whole-shard fence. A signature false
// positive costs one spurious requeue and nothing else; a false negative
// is impossible, so atomicity never rests on the filter.

// keyBit maps a key to its Bloom signature bit via a splitmix64-style
// mix, so dense key ranges spread across the 64-bit signature.
func keyBit(key uint64) uint64 {
	x := key + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return 1 << ((x ^ (x >> 31)) & 63)
}

// KeyFenceSig builds the Bloom signature a keyed fence publishes for a
// batch: the union of every key's signature bit. Range holds, which
// cannot enumerate their keys, pass ^uint64(0) and conflict with every
// local operation — exactly the whole-shard fence's behavior.
func KeyFenceSig(keys []uint64) uint64 {
	var sig uint64
	for _, k := range keys {
		sig |= keyBit(k)
	}
	return sig
}

// slotAddr returns the base word of fence slot i.
func (s *Store) slotAddr(i int) tm.Addr { return s.slots + tm.Addr(i*fenceSlotWords) }

// FenceAcquireKey claims a free keyed fence slot for token, covering the
// keys summarized by sig: the keyed counterpart of FenceAcquire. The
// epoch comes from the same monotonic counter as the whole-shard fence
// and the slot index is the handle every later guard needs. Acquisition
// fails — abort-all and retry, like fence contention — when the table is
// full or when sig intersects a slot already held: two cross-shard
// commits touching the same key on this shard must serialize exactly as
// they would on the whole-shard fence, or their apply phases could
// interleave and tear each other's batches.
func (s *Store) FenceAcquireKey(tx tm.Txn, token, beat, sig uint64) (epoch uint64, slot int, ok bool) {
	free := -1
	for i := 0; i < FenceSlots; i++ {
		a := s.slotAddr(i)
		if tx.Load(a+fsToken) == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if tx.Load(a+fsSig)&sig != 0 {
			return 0, -1, false
		}
	}
	if free < 0 {
		return 0, -1, false
	}
	a := s.slotAddr(free)
	epoch = tx.Load(s.fenceEpoch) + 1
	tx.Store(s.fenceEpoch, epoch)
	tx.Store(a+fsToken, token)
	tx.Store(a+fsEpoch, epoch)
	tx.Store(a+fsBeat, beat)
	tx.Store(a+fsSig, sig)
	tx.Store(s.fenceOcc, tx.Load(s.fenceOcc)+1)
	return epoch, free, true
}

// FenceSlotHeldBy reports whether slot is held by exactly this (token,
// epoch) acquisition — the keyed analogue of FenceHeldBy.
func (s *Store) FenceSlotHeldBy(tx tm.Txn, slot int, token, epoch uint64) bool {
	a := s.slotAddr(slot)
	return tx.Load(a+fsToken) == token && tx.Load(a+fsEpoch) == epoch
}

// FenceSlotRelease frees slot iff it is still held at the given epoch,
// reporting whether it released.
func (s *Store) FenceSlotRelease(tx tm.Txn, slot int, epoch uint64) bool {
	a := s.slotAddr(slot)
	if tx.Load(a+fsToken) == 0 || tx.Load(a+fsEpoch) != epoch {
		return false
	}
	tx.Store(a+fsToken, 0)
	tx.Store(a+fsSig, 0)
	tx.Store(s.fenceOcc, tx.Load(s.fenceOcc)-1)
	return true
}

// FencedSig reports whether any held fence slot's key signature
// intersects sig — the keyed-fence check local operations run instead of
// Fenced. With no slots held it costs a single load.
func (s *Store) FencedSig(tx tm.Txn, sig uint64) bool {
	if tx.Load(s.fenceOcc) == 0 {
		return false
	}
	for i := 0; i < FenceSlots; i++ {
		a := s.slotAddr(i)
		if tx.Load(a+fsToken) != 0 && tx.Load(a+fsSig)&sig != 0 {
			return true
		}
	}
	return false
}

// FencedKey reports whether key may be covered by a held keyed fence.
func (s *Store) FencedKey(tx tm.Txn, key uint64) bool { return s.FencedSig(tx, keyBit(key)) }

// FencedAny reports whether any keyed fence slot is held — the
// conservative check for local range scans, whose key set cannot be
// intersected with a Bloom signature.
func (s *Store) FencedAny(tx tm.Txn) bool { return tx.Load(s.fenceOcc) != 0 }

// FenceOccWord exposes the slot-occupancy word's heap address for
// non-transactional status peeks (ops.fence_keys_held).
func (s *Store) FenceOccWord() tm.Addr { return s.fenceOcc }

// FenceSlotWordsOf exposes slot i's (token, epoch, beat) heap addresses
// for the failure detector's non-transactional scan.
func (s *Store) FenceSlotWordsOf(i int) (token, epoch, beat tm.Addr) {
	a := s.slotAddr(i)
	return a + fsToken, a + fsEpoch, a + fsBeat
}

// FenceHeldAt dispatches the held-by guard across granularities: a
// negative slot checks the whole-shard fence, anything else the keyed
// table entry. The cross-shard protocol records the slot at acquisition
// and threads it through every later guard, so phase 2 and recovery
// stay granularity-agnostic.
func (s *Store) FenceHeldAt(tx tm.Txn, slot int, token, epoch uint64) bool {
	if slot < 0 {
		return s.FenceHeldBy(tx, token, epoch)
	}
	return s.FenceSlotHeldBy(tx, slot, token, epoch)
}

// FenceReleaseAt dispatches the epoch-guarded release across
// granularities, mirroring FenceHeldAt.
func (s *Store) FenceReleaseAt(tx tm.Txn, slot int, epoch uint64) bool {
	if slot < 0 {
		return s.FenceRelease(tx, epoch)
	}
	return s.FenceSlotRelease(tx, slot, epoch)
}

// ---- live resharding (span migration + placement epoch) ----

// PlacementStale reports whether this shard's placement epoch has moved
// past the epoch a request was routed under: the request's owner lookup
// may be stale, so it must bounce back for re-routing. Reading the word
// inside the operation's own transaction is what closes the route/flip
// race — the donor's epoch bump shares a fenced transaction with the
// moved span's deletion, so an operation either runs entirely before the
// flip (and sees the data) or observes the bump (and re-routes).
func (s *Store) PlacementStale(tx tm.Txn, routedEpoch uint64) bool {
	return tx.Load(s.placeEpoch) > routedEpoch
}

// BumpPlacement raises the shard's placement epoch to epoch (monotonic:
// an older value never overwrites a newer one).
func (s *Store) BumpPlacement(tx tm.Txn, epoch uint64) {
	if tx.Load(s.placeEpoch) < epoch {
		tx.Store(s.placeEpoch, epoch)
	}
}

// PlacementWord exposes the placement-epoch word's heap address for
// non-transactional status peeks and tests.
func (s *Store) PlacementWord() tm.Addr { return s.placeEpoch }

// ExportSpan copies up to max key-value pairs in [lo, hi] (inclusive)
// out of the store, returning the pairs and, when the span held more
// than max, resume=true with next set to the first un-exported key. The
// migrator calls it in batches under the donor's fence, so each batch is
// one bounded transaction instead of a single scan proportional to the
// span's population.
func (s *Store) ExportSpan(tx tm.Txn, lo, hi uint64, max int) (keys, vals []uint64, next uint64, resume bool) {
	s.kv.AscendRange(tx, lo, hi, func(k, v uint64) bool {
		if len(keys) == max {
			next, resume = k, true
			return false
		}
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	return keys, vals, next, resume
}

// InstallPairs inserts the exported pairs into this store — the
// recipient half of a span migration. Existing keys are overwritten, so
// re-running an interrupted install converges instead of diverging.
func (s *Store) InstallPairs(tx tm.Txn, self int, keys, vals []uint64) {
	for i, k := range keys {
		s.kv.Insert(tx, self, k, vals[i])
	}
}

// DeleteSpan removes up to max keys in [lo, hi] (inclusive), reporting
// how many it removed and whether keys remain. The donor's post-flip
// cleanup loops it to bounded transactions, exactly like ExportSpan.
func (s *Store) DeleteSpan(tx tm.Txn, self int, lo, hi uint64, max int) (removed int, more bool) {
	var doomed []uint64
	s.kv.AscendRange(tx, lo, hi, func(k, _ uint64) bool {
		if len(doomed) == max {
			more = true
			return false
		}
		doomed = append(doomed, k)
		return true
	})
	for _, k := range doomed {
		s.kv.Delete(tx, self, k)
	}
	return len(doomed), more
}

// Get reads the value at key.
func (s *Store) Get(tx tm.Txn, key uint64) (uint64, bool) { return s.kv.Get(tx, key) }

// Put inserts or updates key, reporting whether the key already existed.
func (s *Store) Put(tx tm.Txn, self int, key, val uint64) (existed bool) {
	return !s.kv.Insert(tx, self, key, val)
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(tx tm.Txn, self int, key uint64) bool {
	return s.kv.Delete(tx, self, key)
}

// CAS replaces the value at key with newv iff the key is present and its
// current value is old. It returns the value observed and whether the swap
// applied.
func (s *Store) CAS(tx tm.Txn, self int, key, old, newv uint64) (cur uint64, applied bool) {
	cur, ok := s.kv.Get(tx, key)
	if !ok || cur != old {
		return cur, false
	}
	s.kv.Insert(tx, self, key, newv)
	return newv, true
}

// Range counts and sums the values of every key in [lo, hi]. The whole
// scan is one transaction, so wide spans build the large read sets that
// push best-effort HTM into capacity aborts — the serving-side analogue of
// the scan phase in the service scenarios.
func (s *Store) Range(tx tm.Txn, lo, hi uint64) (count, sum uint64) {
	s.kv.AscendRange(tx, lo, hi, func(_, v uint64) bool {
		count++
		sum += v
		return true
	})
	return count, sum
}

// PushLeft prepends val to the deque.
func (s *Store) PushLeft(tx tm.Txn, self int, val uint64) {
	n := s.pool.Get(tx, self)
	tx.Store(n+dqVal, val)
	tx.Store(n+dqPrev, uint64(tm.NilAddr))
	head := tm.Addr(tx.Load(s.lhead))
	tx.Store(n+dqNext, uint64(head))
	if head != tm.NilAddr {
		tx.Store(head+dqPrev, uint64(n))
	} else {
		tx.Store(s.ltail, uint64(n))
	}
	tx.Store(s.lhead, uint64(n))
	tx.Store(s.llen, tx.Load(s.llen)+1)
}

// PushRight appends val to the deque.
func (s *Store) PushRight(tx tm.Txn, self int, val uint64) {
	n := s.pool.Get(tx, self)
	tx.Store(n+dqVal, val)
	tx.Store(n+dqNext, uint64(tm.NilAddr))
	tail := tm.Addr(tx.Load(s.ltail))
	tx.Store(n+dqPrev, uint64(tail))
	if tail != tm.NilAddr {
		tx.Store(tail+dqNext, uint64(n))
	} else {
		tx.Store(s.lhead, uint64(n))
	}
	tx.Store(s.ltail, uint64(n))
	tx.Store(s.llen, tx.Load(s.llen)+1)
}

// PopLeft removes and returns the head value.
func (s *Store) PopLeft(tx tm.Txn, self int) (uint64, bool) {
	n := tm.Addr(tx.Load(s.lhead))
	if n == tm.NilAddr {
		return 0, false
	}
	v := tx.Load(n + dqVal)
	next := tm.Addr(tx.Load(n + dqNext))
	tx.Store(s.lhead, uint64(next))
	if next != tm.NilAddr {
		tx.Store(next+dqPrev, uint64(tm.NilAddr))
	} else {
		tx.Store(s.ltail, uint64(tm.NilAddr))
	}
	tx.Store(s.llen, tx.Load(s.llen)-1)
	s.pool.Put(tx, self, n)
	return v, true
}

// PopRight removes and returns the tail value.
func (s *Store) PopRight(tx tm.Txn, self int) (uint64, bool) {
	n := tm.Addr(tx.Load(s.ltail))
	if n == tm.NilAddr {
		return 0, false
	}
	v := tx.Load(n + dqVal)
	prev := tm.Addr(tx.Load(n + dqPrev))
	tx.Store(s.ltail, uint64(prev))
	if prev != tm.NilAddr {
		tx.Store(prev+dqNext, uint64(tm.NilAddr))
	} else {
		tx.Store(s.lhead, uint64(tm.NilAddr))
	}
	tx.Store(s.llen, tx.Load(s.llen)-1)
	s.pool.Put(tx, self, n)
	return v, true
}

// Len returns the deque length.
func (s *Store) Len(tx tm.Txn) uint64 { return tx.Load(s.llen) }
