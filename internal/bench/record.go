package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RecordSchema identifies the BENCH_<n>.json format version.
const RecordSchema = "proteustm-bench/v1"

// Result is one measured benchmark in a Record.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Record is a full regression-suite run, persisted as BENCH_<n>.json at the
// repository root. Records are append-only: each perf PR adds the next
// index, so the sequence is the project's performance trajectory.
type Record struct {
	Schema    string   `json:"schema"`
	Go        string   `json:"go"`
	MaxProcs  int      `json:"maxprocs"`
	BenchTime string   `json:"benchtime"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// RunSuite measures every suite case whose name contains filter (empty
// matches all), reporting progress to progress (may be nil).
func RunSuite(filter string, progress io.Writer) Record {
	rec := Record{
		Schema:   RecordSchema,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, cs := range Suite() {
		if filter != "" && !strings.Contains(cs.Name, filter) {
			continue
		}
		r := testing.Benchmark(cs.Fn)
		res := Result{
			Name:        cs.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rec.Results = append(rec.Results, res)
		if progress != nil {
			fmt.Fprintf(progress, "%-34s %12d iters %12.1f ns/op %6d B/op %4d allocs/op\n",
				res.Name, res.Iters, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	return rec
}

// WriteFile persists the record as indented JSON.
func (r Record) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRecord loads a previously written record.
func ReadRecord(path string) (Record, error) {
	var r Record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// NextRecordPath returns dir/BENCH_<n>.json for the smallest n not yet
// taken (BENCH_0.json on a fresh tree).
func NextRecordPath(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	next := 0
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// Compare renders an old-vs-new ns/op table (positive delta = faster) for
// every benchmark present in both records, sorted by name.
func Compare(old, new Record, w io.Writer) {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	names := make([]string, 0, len(new.Results))
	for _, r := range new.Results {
		if _, ok := oldBy[r.Name]; ok {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	newBy := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newBy[r.Name] = r
	}
	fmt.Fprintf(w, "%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (o.NsPerOp - n.NsPerOp) / o.NsPerOp * 100
		}
		fmt.Fprintf(w, "%-34s %14.1f %14.1f %+7.1f%%\n", name, o.NsPerOp, n.NsPerOp, delta)
	}
}
