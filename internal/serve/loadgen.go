package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/workloads"
)

// LoadPhase is one segment of a loadgen session: a named operation mix
// held for a duration.
type LoadPhase struct {
	// Mix is the operation mix (one of workloads.ServiceMixByName).
	Mix workloads.ServiceOpMix
	// Duration is how long the phase lasts.
	Duration time.Duration
}

// ParsePhases parses a phase spec like "read-heavy:5s,write-heavy:5s,scan:3s"
// into phases; each element is mix-name:duration.
func ParsePhases(spec string) ([]LoadPhase, error) {
	var out []LoadPhase
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, durStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: phase %q: want mix:duration", part)
		}
		mix, err := workloads.ServiceMixByName(name)
		if err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: phase %q: %w", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("loadgen: phase %q: duration must be positive", part)
		}
		out = append(out, LoadPhase{Mix: mix, Duration: d})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty phase spec")
	}
	return out, nil
}

// LoadgenOptions configures a loadgen session against a running proteusd.
type LoadgenOptions struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// Conns is the number of concurrent client connections (default 8).
	Conns int
	// Rate is the total offered load in operations per second across all
	// connections, delivered open-loop: operations are scheduled on a
	// clock, and scheduling slots that find every connection busy are
	// counted as shed rather than silently deferred. Rate 0 runs closed
	// loop: every connection issues back-to-back requests, measuring the
	// service's capacity under the mix (the mode that makes phase shifts
	// visible to the daemon's KPI monitor).
	Rate float64
	// Phases is the traffic schedule (required; see ParsePhases).
	Phases []LoadPhase
	// KeyRange bounds the generated keys (default 16384).
	KeyRange uint64
	// Span is the width of range scans (default 256).
	Span uint64
	// Seed drives the per-connection operation streams.
	Seed uint64
	// Logf, when set, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

// PhaseReport summarizes one phase of a loadgen session.
type PhaseReport struct {
	Name        string  `json:"name"`
	DurationSec float64 `json:"duration_sec"`
	// Ops counts completed operations (HTTP 200); Rejected counts
	// admission-queue rejections (HTTP 429); Errors counts transport
	// failures and 5xx responses; Shed counts open-loop scheduling slots
	// dropped because every connection was busy.
	Ops        uint64  `json:"ops"`
	Rejected   uint64  `json:"rejected"`
	Errors     uint64  `json:"errors"`
	Shed       uint64  `json:"shed,omitempty"`
	Throughput float64 `json:"throughput"`
	// LatencyMs summarizes per-operation client-observed latency.
	LatencyMs metrics.Summary `json:"latency_ms"`
	// Reconfigurations counts daemon optimization phases that completed
	// during this phase; Config is the configuration installed when the
	// phase ended.
	Reconfigurations int    `json:"reconfigurations"`
	Config           string `json:"config"`
}

// LoadReport is the session-level JSON report `proteusbench loadgen`
// writes: per-phase and total throughput/latency plus the daemon-side
// reconfiguration events the session triggered.
type LoadReport struct {
	Target      string  `json:"target"`
	Conns       int     `json:"conns"`
	Rate        float64 `json:"rate"`
	Seed        uint64  `json:"seed"`
	KeyRange    uint64  `json:"keyrange"`
	Span        uint64  `json:"span"`
	StartConfig string  `json:"start_config"`
	FinalConfig string  `json:"final_config"`
	// DaemonCommits is the daemon's committed-transaction delta over the
	// session (from /statusz), which bounds the served throughput from
	// below even if some client requests failed.
	DaemonCommits uint64        `json:"daemon_commits"`
	Phases        []PhaseReport `json:"phases"`
	Total         PhaseReport   `json:"total"`
	// Reconfigurations lists the daemon optimization phases that ran
	// during the session, as reported by /statusz.
	Reconfigurations []ReconfigStatus `json:"reconfigurations"`
}

// connStats accumulates one connection's phase counters.
type connStats struct {
	ops, rejected, errors uint64
	lat                   []float64
}

// RunLoadgen drives the phase schedule against a running daemon and
// returns the session report.
func RunLoadgen(opts LoadgenOptions) (*LoadReport, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(opts.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: at least one phase is required")
	}
	if opts.Conns <= 0 {
		opts.Conns = 8
	}
	if opts.KeyRange == 0 {
		opts.KeyRange = 16384
	}
	if opts.Span == 0 {
		opts.Span = 256
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	base := strings.TrimRight(opts.BaseURL, "/")
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Conns * 2,
			MaxIdleConnsPerHost: opts.Conns * 2,
		},
	}

	before, err := fetchStatus(client, base)
	if err != nil {
		return nil, fmt.Errorf("loadgen: daemon not reachable: %w", err)
	}
	report := &LoadReport{
		Target:      base,
		Conns:       opts.Conns,
		Rate:        opts.Rate,
		Seed:        opts.Seed,
		KeyRange:    opts.KeyRange,
		Span:        opts.Span,
		StartConfig: before.Config.Current,
	}
	seenReconfigs := len(before.Reconfigurations)

	var totalLat []float64
	var totalDur time.Duration
	for i, phase := range opts.Phases {
		opts.Logf("loadgen: phase %d/%d %s for %s", i+1, len(opts.Phases), phase.Mix.Name, phase.Duration)
		pr, lats := runPhase(client, base, opts, i, phase)
		after, err := fetchStatus(client, base)
		if err != nil {
			return nil, fmt.Errorf("loadgen: statusz after phase %s: %w", phase.Mix.Name, err)
		}
		pr.Reconfigurations = len(after.Reconfigurations) - seenReconfigs
		seenReconfigs = len(after.Reconfigurations)
		pr.Config = after.Config.Current
		report.Phases = append(report.Phases, pr)
		totalLat = append(totalLat, lats...)
		totalDur += phase.Duration
		opts.Logf("loadgen: phase %s done: %d ops (%.0f/s), p50=%.2fms p99=%.2fms, %d rejected, %d reconfigurations, config %s",
			phase.Mix.Name, pr.Ops, pr.Throughput, pr.LatencyMs.P50, pr.LatencyMs.P99, pr.Rejected, pr.Reconfigurations, pr.Config)
	}

	final, err := fetchStatus(client, base)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final statusz: %w", err)
	}
	report.FinalConfig = final.Config.Current
	report.DaemonCommits = final.TM.Commits - before.TM.Commits
	if n := len(before.Reconfigurations); len(final.Reconfigurations) > n {
		report.Reconfigurations = final.Reconfigurations[n:]
	} else {
		report.Reconfigurations = []ReconfigStatus{}
	}

	total := PhaseReport{Name: "total", DurationSec: totalDur.Seconds(), Config: final.Config.Current,
		Reconfigurations: len(report.Reconfigurations)}
	for _, pr := range report.Phases {
		total.Ops += pr.Ops
		total.Rejected += pr.Rejected
		total.Errors += pr.Errors
		total.Shed += pr.Shed
	}
	if totalDur > 0 {
		total.Throughput = float64(total.Ops) / totalDur.Seconds()
	}
	total.LatencyMs = metrics.Summarize(totalLat)
	report.Total = total
	return report, nil
}

// runPhase drives one phase and returns its report plus the raw latencies.
func runPhase(client *http.Client, base string, opts LoadgenOptions, phaseIdx int, phase LoadPhase) (PhaseReport, []float64) {
	deadline := time.Now().Add(phase.Duration)
	mix := phase.Mix.Normalize()

	// Open-loop pacing: a dispatcher owed-token loop refills the tokens
	// channel every few milliseconds; slots that find it full are shed.
	var tokens chan struct{}
	var shed uint64
	var dispatchWg sync.WaitGroup
	if opts.Rate > 0 {
		tokens = make(chan struct{}, opts.Conns*4)
		dispatchWg.Add(1)
		go func() {
			defer dispatchWg.Done()
			defer close(tokens)
			start := time.Now()
			issued := 0.0
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for now := range tick.C {
				if now.After(deadline) {
					return
				}
				owed := opts.Rate*now.Sub(start).Seconds() - issued
				for ; owed >= 1; owed-- {
					select {
					case tokens <- struct{}{}:
					default:
						shed++
					}
					issued++
				}
			}
		}()
	}

	stats := make([]connStats, opts.Conns)
	var wg sync.WaitGroup
	for c := 0; c < opts.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workloads.NewRand(opts.Seed + uint64(phaseIdx)*1_000_000_007 + uint64(c)*0x9E3779B97F4A7C15 + 1)
			st := &stats[c]
			for {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				issueOp(client, base, opts, mix, rng, st)
			}
		}(c)
	}
	wg.Wait()
	dispatchWg.Wait()

	pr := PhaseReport{Name: mix.Name, DurationSec: phase.Duration.Seconds(), Shed: shed}
	var lats []float64
	for i := range stats {
		pr.Ops += stats[i].ops
		pr.Rejected += stats[i].rejected
		pr.Errors += stats[i].errors
		lats = append(lats, stats[i].lat...)
	}
	pr.Throughput = float64(pr.Ops) / phase.Duration.Seconds()
	pr.LatencyMs = metrics.Summarize(lats)
	return pr, lats
}

// issueOp issues one operation drawn from the mix and records its outcome.
func issueOp(client *http.Client, base string, opts LoadgenOptions, mix workloads.ServiceOpMix, rng *workloads.Rand, st *connStats) {
	k := uint64(rng.Intn(int(opts.KeyRange)))
	p := rng.Float64()
	var url string
	switch {
	case p < mix.Get:
		url = fmt.Sprintf("%s/kv/get?key=%d", base, k)
	case p < mix.Get+mix.Put:
		url = fmt.Sprintf("%s/kv/put?key=%d&val=%d", base, k, k+1)
	case p < mix.Get+mix.Put+mix.Del:
		url = fmt.Sprintf("%s/kv/del?key=%d", base, k)
	case p < mix.Get+mix.Put+mix.Del+mix.CAS:
		url = fmt.Sprintf("%s/kv/cas?key=%d&old=%d&new=%d", base, k, k, k+1)
	default:
		url = fmt.Sprintf("%s/kv/range?lo=%d&hi=%d", base, k, k+opts.Span)
	}
	t0 := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		st.errors++
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	resp.Body.Close()
	st.lat = append(st.lat, float64(time.Since(t0).Nanoseconds())/1e6)
	switch {
	case resp.StatusCode == http.StatusOK:
		st.ops++
	case resp.StatusCode == http.StatusTooManyRequests:
		st.rejected++
	default:
		st.errors++
	}
}

// fetchStatus retrieves and decodes the daemon's /statusz document.
func fetchStatus(client *http.Client, base string) (*Status, error) {
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statusz: HTTP %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("statusz: %w", err)
	}
	return &st, nil
}
