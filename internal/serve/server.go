package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	proteustm "repro"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// opKind identifies one service operation.
type opKind int

const (
	opGet opKind = iota
	opPut
	opDel
	opCAS
	opRange
	opMPut
	opMGet
	opLPush
	opRPush
	opLPop
	opRPop
	opLLen
	numOps
)

// opNames are the wire/report labels, indexed by opKind.
var opNames = [numOps]string{"get", "put", "del", "cas", "range", "mput", "mget", "lpush", "rpush", "lpop", "rpop", "llen"}

// maxFenceTries bounds how often a fenced request is requeued before the
// server gives up on it — a safety valve against a fence that never
// clears, which the protocol does not produce but a bug might.
const maxFenceTries = 20000

// request is one admitted operation waiting for a worker slot.
type request struct {
	op        opKind
	key, val  uint64
	old, newv uint64
	lo, hi    uint64
	// keys/vals carry batch operations (mput/mget) confined to one shard.
	keys, vals []uint64
	// ctl, when set, is a cross-shard commit control step (fence acquire,
	// apply+release, release); it bypasses the op switch and the served
	// counters and is delivered on the shard's priority lane.
	ctl func(w *proteustm.Worker, slot int) response
	// accepted is stamped when the request is admitted, before it is
	// enqueued, so queue-wait is measured from acceptance.
	accepted time.Time
	// ctx is the client's request context: a queued operation whose
	// client hung up is dropped by the worker, never executed. Nil means
	// no cancellation source (internal submissions).
	ctx context.Context
	// budget is the per-request deadline override (the wire's
	// deadline_ms); the effective deadline is the tighter of budget and
	// Options.Deadline, anchored at accepted.
	budget time.Duration
	// deadline, when non-zero, is the instant after which the operation
	// must not execute (it is answered 504 and counted shed_deadline).
	deadline time.Time
	// fenceTries counts requeues caused by an observed fence.
	fenceTries int
	// routingEpoch is the placement epoch the request was routed under
	// (stamped by shardFor / submitCross). A shard whose placement epoch
	// has advanced past it bounces the operation back for re-routing
	// instead of executing against possibly-migrated state.
	routingEpoch uint64
	done         chan response
}

// expired reports whether the request must not execute: its deadline has
// passed or its client's context is done. Workers call it after dequeue,
// immediately before execution, so an expired queued op is dropped rather
// than run against a store nobody is waiting on.
func (r *request) expired(now time.Time) bool {
	if !r.deadline.IsZero() && now.After(r.deadline) {
		return true
	}
	return r.ctx != nil && r.ctx.Err() != nil
}

// response is the outcome of one executed operation.
type response struct {
	Found   bool   `json:"found,omitempty"`
	Applied bool   `json:"applied,omitempty"`
	Existed bool   `json:"existed,omitempty"`
	Val     uint64 `json:"val,omitempty"`
	Count   uint64 `json:"count,omitempty"`
	Sum     uint64 `json:"sum,omitempty"`
	Len     uint64 `json:"len,omitempty"`
	// Vals and Present are the per-key results of batch reads (mget),
	// aligned with the requested keys.
	Vals    []uint64 `json:"vals,omitempty"`
	Present []bool   `json:"present,omitempty"`
	Err     string   `json:"err,omitempty"`
	// code, when non-zero, overrides the HTTP status the error maps to
	// (504 for deadline drops); unexported so it never reaches the wire.
	code int
	// retryAfter, when non-zero, becomes the Retry-After header of the
	// HTTP reply — the circuit breaker's and fence recovery's backoff
	// hint to clients.
	retryAfter time.Duration
	// epoch carries the fence epoch out of a ctlAcquire control step;
	// slot carries the keyed fence table entry the acquisition claimed
	// (-1 under the whole-shard fence).
	epoch uint64
	slot  int
	// moved reports that the executing shard's placement epoch has
	// advanced past the request's routing epoch: nothing was executed,
	// and the submitter must re-route under the current placement.
	moved bool
}

// Fence granularities (Options.FenceGranularity): one whole-shard fence
// word per shard, or a table of per-key fence entries (see store.go).
const (
	FenceShard = "shard"
	FenceKey   = "key"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of independent ProteusTM systems the key space
	// is partitioned across (default 1). Each shard runs its own PolyTM
	// pool, monitor and tuner; single-key operations route to the owning
	// shard, multi-key operations commit with the cross-shard two-phase
	// protocol (see docs/sharding.md).
	Shards int
	// Partitioner selects the placement policy: shard.KindHash (the
	// default; consistent hashing, uniform placement) or shard.KindRange
	// (order-preserving boundary spans, so /kv/range fences only the
	// shards whose spans intersect the scan — see docs/sharding.md).
	Partitioner string
	// KeyUniverse sizes the range partitioner's even pre-split: shard i
	// of N starts owning [i*KeyUniverse/N, (i+1)*KeyUniverse/N), with the
	// last span running to the top of the key space (default 16384,
	// matching loadgen's default key range). Ignored by the hash
	// partitioner.
	KeyUniverse uint64
	// Workers is the number of ProteusTM worker slots per shard — the
	// ceiling of each shard's tuned parallelism degree (default 8).
	Workers int
	// QueueDepth bounds each shard's admission queue; a full queue rejects
	// with HTTP 429 instead of stalling (default 1024).
	QueueDepth int
	// AutoTune starts one RecTM adapter thread per shard (monitor →
	// explore → install) over that shard's live traffic.
	AutoTune bool
	// SamplePeriod is the monitor's KPI sampling period (default 100 ms).
	SamplePeriod time.Duration
	// Seed drives the tuning machinery; shard i tunes with Seed+i-derived
	// streams so exploration paths are independent.
	Seed uint64
	// HeapWords sizes each shard's transactional heap (default 1<<22).
	HeapWords int
	// Preload inserts keys 0..Preload-1 (value = key) before serving,
	// each into its owning shard (default 0).
	Preload int
	// MaxScanSpan clamps /kv/range spans (default 4096).
	MaxScanSpan uint64
	// MaxBatchKeys clamps the key count of /kv/mput and /kv/mget
	// (default 128).
	MaxBatchKeys int
	// CrossRetries bounds fence-acquisition attempts of one cross-shard
	// operation before it fails with 503 (default 64).
	CrossRetries int
	// GroupCommit enables the batching worker gate: when a worker dequeues
	// a data operation and more are already queued behind it, it coalesces
	// up to GroupCommitMax of them into one TM transaction (group commit),
	// amortizing the per-transaction overhead under load. Per-operation
	// deadline and cancellation semantics are preserved inside a batch: an
	// expired or client-abandoned operation is excised (answered 504/499)
	// before the transaction runs, never executed. Batching engages only
	// at queue depth — an idle server executes one op per transaction
	// exactly as before.
	GroupCommit bool
	// GroupCommitMax caps how many operations one group commit coalesces
	// (default 16).
	GroupCommitMax int
	// FenceGranularity selects the cross-shard fence implementation:
	// FenceShard (default) blocks every local operation on a participant
	// shard for the whole 2PC window; FenceKey replaces the whole-shard
	// fence with per-key fence entries (an OCC-style prepare that
	// validates key ownership via Bloom signatures), so local operations
	// whose keys do not intersect an in-flight commit proceed instead of
	// requeueing. See docs/sharding.md.
	FenceGranularity string
	// SLOP99 is the p99 latency target the service sells (0 disables all
	// SLO machinery). With AutoTune it switches every shard's tuner to
	// the ThroughputUnderSLO KPI, fed by the server's accept→reply
	// latency reservoir; with or without AutoTune it arms latency-based
	// load shedding (see ShedBudget).
	SLOP99 time.Duration
	// Deadline is the default per-operation deadline, measured from
	// admission: a queued op older than this is dropped with 504 and
	// counted shed_deadline, never executed (0 disables). Clients can
	// tighten it per request with the deadline_ms query parameter.
	Deadline time.Duration
	// ShedBudget is the fraction of SLOP99 the observed queue-wait p99
	// may consume before new admissions are shed with 429 (counted
	// shed_latency). Shedding engages only while the target shard's
	// queue is actually building (≥ 1/8 occupied), so a stale reservoir
	// window cannot keep shedding an idle server. Default 0.5.
	ShedBudget float64
	// LatencyWindow is the size of each sliding latency reservoir behind
	// /statusz percentiles (default 8192).
	LatencyWindow int
	// TimelineTail bounds the number of timeline points /statusz returns
	// per shard (default 64, newest last; 0 keeps the default).
	TimelineTail int
	// Fault, when set, arms the deterministic fault-injection substrate
	// (chaos testing): the injector decides at named points whether to
	// crash a cross-shard coordinator, stall it mid-acquire, pause a
	// shard's workers or spike an operation's latency. Nil (production)
	// costs one pointer comparison per hook.
	Fault *fault.Injector
	// FenceDeadline is how long a shard's fence may be held by one
	// (token, epoch) acquisition before the failure detector declares
	// the coordinator dead and recovers the fence — rolling the batch
	// forward if its decision was recorded, aborting it otherwise
	// (default 1s; negative disables detection entirely).
	FenceDeadline time.Duration
	// DetectInterval is the failure detector's tick (default
	// FenceDeadline/4).
	DetectInterval time.Duration
	// BreakerStallTicks is how many consecutive detector ticks a shard
	// may spend with queued work and zero executed operations before its
	// circuit breaker opens (default 3).
	BreakerStallTicks int
	// BreakerCooldown is how long an open breaker sheds (503 +
	// Retry-After) before admitting probes again (default 1s).
	BreakerCooldown time.Duration
	// AutosplitShare arms the background autosplit trigger (range
	// partitioner only): when the hottest shard's share of routed
	// operations exceeds this fraction — and at least autosplitMinRouted
	// operations have been routed since the last split, and the fleet is
	// below AutosplitMaxShards — the server installs a SplitHeaviest plan
	// live, exactly as POST /admin/reshard would. 0 disables.
	AutosplitShare float64
	// AutosplitMaxShards caps autosplit growth (default 8).
	AutosplitMaxShards int
	// AutosplitInterval is the trigger's poll period (default 2s), shared
	// by the automerge trigger and the spare-shard reaper.
	AutosplitInterval time.Duration
	// AutomergeShare arms the background automerge trigger, the shrink
	// counterpart of AutosplitShare: when the fleet's top shard's share of
	// the operations routed during the last poll interval falls below this
	// fraction — or the whole fleet went idle — and the placement is above
	// AutomergeMinShards, the server installs a PlanMergeColdest step
	// live, exactly as POST /admin/reshard {"plan":"merge"} would.
	// 0 disables.
	AutomergeShare float64
	// AutomergeMinShards is the floor automerge never shrinks below
	// (default: the boot shard count).
	AutomergeMinShards int
	// SpareGrace is how long a spare shard — one left behind by a
	// rolled-back migration — may idle before the background reaper
	// retires it, stopping its workers and tuner for good (default 30s).
	// Until then the next split reuses it.
	SpareGrace time.Duration
	// Logf, when set, receives operational log lines (reconfigurations,
	// drains, shutdown).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Partitioner == "" {
		o.Partitioner = shard.KindHash
	}
	if o.KeyUniverse == 0 {
		o.KeyUniverse = 16384
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.HeapWords <= 0 {
		o.HeapWords = 1 << 22
	}
	if o.MaxScanSpan == 0 {
		o.MaxScanSpan = 4096
	}
	if o.MaxBatchKeys <= 0 {
		o.MaxBatchKeys = 128
	}
	if o.CrossRetries <= 0 {
		o.CrossRetries = 64
	}
	if o.GroupCommitMax <= 0 {
		o.GroupCommitMax = 16
	}
	if o.FenceGranularity == "" {
		o.FenceGranularity = FenceShard
	}
	if o.ShedBudget <= 0 {
		o.ShedBudget = 0.5
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 8192
	}
	if o.TimelineTail <= 0 {
		o.TimelineTail = 64
	}
	if o.FenceDeadline == 0 {
		o.FenceDeadline = time.Second
	}
	if o.DetectInterval <= 0 {
		o.DetectInterval = o.FenceDeadline / 4
		if o.DetectInterval <= 0 {
			o.DetectInterval = 250 * time.Millisecond
		}
	}
	if o.BreakerStallTicks <= 0 {
		o.BreakerStallTicks = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.AutosplitMaxShards <= 0 {
		o.AutosplitMaxShards = 8
	}
	if o.AutosplitInterval <= 0 {
		o.AutosplitInterval = 2 * time.Second
	}
	if o.AutomergeMinShards <= 0 {
		o.AutomergeMinShards = o.Shards
	}
	if o.SpareGrace <= 0 {
		o.SpareGrace = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// shardState is one shard of the serving layer: an independent ProteusTM
// system with its own store, admission queue, priority lane for
// cross-shard control steps, worker pool and graceful-drain state.
type shardState struct {
	idx   int
	srv   *Server
	sys   *proteustm.System
	store *Store

	queue chan *request
	// prio carries cross-shard commit control requests; workers drain it
	// before the admission queue so a held fence is always released even
	// when the queue is saturated with fenced operations cycling through.
	prio chan *request
	stop chan struct{}
	wg   sync.WaitGroup

	// routed counts data operations admitted to this shard's queue — the
	// per-shard load counter /statusz exposes (ops_routed) and the range
	// partitioner's SplitHeaviest rebalance step consumes.
	routed atomic.Uint64

	// executed counts data operations this shard completed (fenced
	// requeues excluded) — the progress signal the failure detector's
	// watchdog samples to drive the circuit breaker.
	executed atomic.Uint64
	// breakerState/breakerUntil implement the per-shard circuit breaker
	// (see recovery.go); stallUntil is the injected-stall horizon of
	// fault.ShardStall.
	breakerState atomic.Int32
	breakerUntil atomic.Int64
	stallUntil   atomic.Int64

	// drainMu implements the graceful-drain protocol: every operation
	// executes under RLock; the reconfigure hook takes the write lock
	// before the pool gates any thread, so a shrink waits for in-flight
	// operations and no queued request is ever handed to a slot that is
	// about to park. active mirrors the installed parallelism degree.
	drainMu sync.RWMutex
	active  atomic.Int64

	// retiring flips when a merge (or the spare reaper) starts retiring
	// this shard for good: stragglers are answered with a re-route bounce
	// instead of an error. retired flips once its workers have stopped and
	// its system is closed.
	retiring atomic.Bool
	retired  atomic.Bool
}

// Server is the proteusd serving layer: an http.Handler whose data
// operations execute as ProteusTM atomic blocks on one or more key-space
// shards. Create with New, stop with Close.
type Server struct {
	opts Options
	// place is the epoch-stamped placement every router, coordinator and
	// recovery path loads per-operation (see shard.Epoched); a live
	// reshard swaps it atomically. fleetPtr is the matching shard slice:
	// it is grown before a new placement is installed, and readers load
	// the placement first, so a placement can never name a missing shard.
	place    *shard.Epoched
	fleetPtr atomic.Pointer[[]*shardState]
	mux      *http.ServeMux
	start    time.Time

	// inflight counts submissions between admission and reply; Close
	// waits on it after setting closed, so no submitter can be stranded
	// between the closed-check and its enqueue when the workers stop, and
	// no cross-shard coordinator can be cut off mid-protocol.
	inflight sync.WaitGroup
	closed   atomic.Bool

	// crossSem bounds concurrent cross-shard coordinators; its capacity
	// also sizes each shard's priority lane, so control submissions never
	// block a coordinator indefinitely.
	crossSem  chan struct{}
	nextToken atomic.Uint64

	// reg is the cross-shard commit-state registry — the decision record
	// fence recovery consults (see recovery.go).
	reg *crossReg

	served      [numOps]atomic.Uint64
	rejected    atomic.Uint64
	requeued    atomic.Uint64
	fenced      atomic.Uint64
	crossOps    atomic.Uint64
	crossAborts atomic.Uint64
	hookFires   atomic.Uint64
	drains      atomic.Uint64

	// crossBackoffNs totals acquire-phase backoff sleeps (surfaced as
	// ops.cross_backoff_ms); jitterState is the seeded stream behind the
	// backoff jitter.
	crossBackoffNs atomic.Uint64
	jitterState    atomic.Uint64

	// crossCrashes counts injected coordinator crashes; fenceRecovered
	// counts recovered orphan batches (fenceRolledForward of them
	// re-applied as decided writes, fenceAborted released with nothing
	// applied). breakerOpenTotal counts breaker open transitions and
	// breakerShed the admissions shed while open.
	crossCrashes       atomic.Uint64
	fenceRecovered     atomic.Uint64
	fenceRolledForward atomic.Uint64
	fenceAborted       atomic.Uint64
	breakerOpenTotal   atomic.Uint64
	breakerShed        atomic.Uint64

	// reshardMu serializes live resharding (one migration at a time,
	// split or merge); resharding mirrors it as the /statusz gauge.
	// reshards counts installed split flips and merges installed merge
	// flips; keysMigrated totals the key-value pairs moved by either;
	// movedBounces counts the operations bounced back for re-routing by a
	// placement-epoch mismatch (see store.PlacementStale); shardsRetired
	// counts donor/spare shards drained and stopped for good; and
	// rangeConservative counts hash-ring scans whose owner set fell back
	// to every shard (see shard.RangeEnumCap). maintStop/maintWG manage
	// the background maintenance loop (autosplit, automerge, spare
	// reaper).
	reshardMu         sync.Mutex
	resharding        atomic.Bool
	reshards          atomic.Uint64
	merges            atomic.Uint64
	keysMigrated      atomic.Uint64
	movedBounces      atomic.Uint64
	shardsRetired     atomic.Uint64
	rangeConservative atomic.Uint64
	maintStop         chan struct{}
	maintWG           sync.WaitGroup

	// migMu guards activeMig, the record of the in-flight merge
	// migration. The merge's install batches, its placement flip and the
	// rollback path (rollbackMergeCopy) all serialize on it, so a crashed
	// merge's partial copy is cleared from the live recipient exactly
	// once, before the donor's fence release can make it observable.
	migMu     sync.Mutex
	activeMig *migRecord

	// stopDrainers ends the retired-shard drainer goroutines at Close;
	// drainersWG waits them out.
	stopDrainers chan struct{}
	drainersWG   sync.WaitGroup

	// shedDeadline counts queued ops dropped unexecuted because their
	// deadline passed or their client hung up; shedLatency counts
	// admissions rejected because queue-wait p99 crossed the SLO budget.
	shedDeadline atomic.Uint64
	shedLatency  atomic.Uint64

	// gateP99Bits/gateNext cache the queue-wait p99 (in float64 bits /
	// next-refresh unixnano) so the shed gate costs two atomic loads per
	// admission instead of a reservoir sort.
	gateP99Bits atomic.Uint64
	gateNext    atomic.Int64

	// groupCommits counts batched transactions the worker gate committed
	// (each covering 2+ coalesced operations); batchSizes is the sliding
	// reservoir behind the group_batch_p50/p99 status fields.
	groupCommits atomic.Uint64
	batchSizes   *metrics.Reservoir

	// rangeLocal counts /kv/range scans whose owner set collapsed to one
	// shard (a plain shard transaction, no fences); rangeCross counts
	// scans that ran the cross-shard protocol; rangeFencedShards totals
	// the shards those fenced — the scan-locality observables the
	// partitioner A/B compares.
	rangeLocal        atomic.Uint64
	rangeCross        atomic.Uint64
	rangeFencedShards atomic.Uint64

	// lat is accept→reply; queueWait is accept→execution start; svc is
	// the execution alone. Separating the three is what makes a saturated
	// queue distinguishable from a slow store on /statusz.
	lat       *metrics.Reservoir
	queueWait *metrics.Reservoir
	svc       *metrics.Reservoir
}

// crossSlots is the coordinator concurrency bound (and priority-lane
// capacity).
const crossSlots = 32

// New opens one ProteusTM system per shard, builds the stores (optionally
// preloading them) and starts one queue worker per slot per shard. The
// returned Server is ready to serve; wire it into an http.Server as its
// Handler.
func New(opts Options) (*Server, error) {
	s, err := newServer(opts)
	if err != nil {
		return nil, err
	}
	s.startWorkers()
	return s, nil
}

// newServer builds a Server without starting its queue workers (tests use
// the split to exercise admission-queue overflow deterministically).
func newServer(opts Options) (*Server, error) {
	opts.setDefaults()
	if opts.FenceGranularity != FenceShard && opts.FenceGranularity != FenceKey {
		return nil, fmt.Errorf("serve: unknown fence granularity %q (want %q or %q)",
			opts.FenceGranularity, FenceShard, FenceKey)
	}
	part, err := shard.NewPartitioner(opts.Partitioner, opts.Shards, opts.KeyUniverse)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		opts:         opts,
		place:        shard.NewEpoched(part),
		start:        time.Now(),
		crossSem:     make(chan struct{}, crossSlots),
		reg:          newCrossReg(),
		stopDrainers: make(chan struct{}),
		lat:          metrics.NewReservoir(opts.LatencyWindow),
		queueWait:    metrics.NewReservoir(opts.LatencyWindow),
		svc:          metrics.NewReservoir(opts.LatencyWindow),
		batchSizes:   metrics.NewReservoir(opts.LatencyWindow),
	}
	s.jitterState.Store(opts.Seed | 1)
	fleet := make([]*shardState, 0, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		ss, err := s.newShard(i)
		if err != nil {
			for _, prev := range fleet {
				prev.sys.Close() //nolint:errcheck // already failing
			}
			return nil, err
		}
		fleet = append(fleet, ss)
	}
	s.fleetPtr.Store(&fleet)
	if err := s.preload(opts.Preload); err != nil {
		for _, ss := range fleet {
			ss.sys.Close() //nolint:errcheck // already failing
		}
		return nil, err
	}
	s.mux = s.routes()
	return s, nil
}

// fleet returns the current shard slice. When both the placement and the
// fleet are needed, load the placement first: the fleet is grown before
// a new placement is installed, so on the grow side a placement loaded
// earlier can never name a shard the fleet lacks. The shrink side breaks
// that invariant — a retire truncates the fleet after the merged
// placement flips, so a placement loaded before the flip may name the
// departed top shard. Every placement→fleet indexing site therefore
// bounds-checks and treats an out-of-range owner as a moved bounce: the
// epoch has advanced, re-route.
func (s *Server) fleet() []*shardState { return *s.fleetPtr.Load() }

// part returns the current partitioner, discarding its epoch. Routing
// paths that must detect a concurrent flip load s.place directly and
// stamp the epoch into the work they derive.
func (s *Server) part() shard.Partitioner { p, _ := s.place.Load(); return p }

// newShard opens shard i's system and store.
func (s *Server) newShard(i int) (*shardState, error) {
	opts := &s.opts
	ss := &shardState{
		idx:   i,
		srv:   s,
		queue: make(chan *request, opts.QueueDepth),
		prio:  make(chan *request, crossSlots),
		stop:  make(chan struct{}),
	}
	sysOpts := []proteustm.Option{
		proteustm.WithWorkers(opts.Workers),
		proteustm.WithHeapWords(opts.HeapWords),
		// Per-shard seeds keep the shards' exploration paths independent;
		// shard 0 keeps the configured seed exactly.
		proteustm.WithSeed(opts.Seed + uint64(i)*0x9E3779B97F4A7C15),
	}
	if opts.SamplePeriod > 0 {
		sysOpts = append(sysOpts, proteustm.WithSamplePeriod(opts.SamplePeriod))
	}
	if opts.AutoTune {
		sysOpts = append(sysOpts, proteustm.WithAutoTuning())
	}
	if opts.AutoTune && opts.SLOP99 > 0 {
		// Tune throughput subject to the p99 target, fed by the server's
		// accept→reply reservoir: the latency the client actually sees,
		// queue wait included. The reservoir is server-wide (shards share
		// the admission path), which is the SLO the operator configures.
		sysOpts = append(sysOpts, proteustm.WithSLO(opts.SLOP99, func() float64 {
			return s.lat.Quantile(99)
		}))
	}
	if opts.AutoTune && opts.GroupCommit {
		// Group commit breaks the ops ∝ commits proportionality the
		// commit-rate KPI relies on (one transaction covers a whole
		// batch, so the commit rate shrinks and jitters with queue
		// depth). Feed the tuner this shard's completed-operation
		// counter instead, so it optimizes what the service delivers.
		sysOpts = append(sysOpts, proteustm.WithOpsKPI(ss.executed.Load))
	}
	sys, err := proteustm.Open(sysOpts...)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	store, err := NewStore(sys.Heap())
	if err != nil {
		sys.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	ss.sys = sys
	ss.store = store
	ss.active.Store(int64(sys.CurrentConfig().Threads))
	sys.OnReconfigure(ss.reconfigureHook)
	return ss, nil
}

// startWorkers launches one queue worker per slot per shard, plus each
// shard's failure detector (unless detection is disabled) and the
// background maintenance loop. The loop runs whenever the placement is
// resharding-capable even with both triggers disabled: the spare-shard
// reaper must retire spares stranded by manual migrations too.
func (s *Server) startWorkers() {
	for _, ss := range s.fleet() {
		s.startShardWorkers(ss)
	}
	if s.opts.AutosplitShare > 0 || s.opts.AutomergeShare > 0 || s.part().Kind() == shard.KindRange {
		s.maintStop = make(chan struct{})
		s.maintWG.Add(1)
		go s.maintenanceLoop()
	}
}

// startShardWorkers launches one shard's queue workers and failure
// detector — the per-shard half of startWorkers, reused when a live
// reshard grows the fleet.
func (s *Server) startShardWorkers(ss *shardState) {
	for id := 0; id < s.opts.Workers; id++ {
		ss.wg.Add(1)
		go ss.worker(id)
	}
	if s.opts.FenceDeadline > 0 {
		ss.wg.Add(1)
		go ss.detector()
	}
}

// System exposes shard 0's ProteusTM instance (for status and tests; use
// ShardSystem for the others).
func (s *Server) System() *proteustm.System { return s.fleet()[0].sys }

// Shards returns the number of key-space shards.
func (s *Server) Shards() int { return len(s.fleet()) }

// ShardSystem exposes shard i's ProteusTM instance.
func (s *Server) ShardSystem(i int) *proteustm.System { return s.fleet()[i].sys }

// preload inserts n keys, each into its owning shard, in batched setup
// transactions on slot 0 (always an active slot: the parallelism degree
// is at least 1).
func (s *Server) preload(n int) error {
	if n <= 0 {
		return nil
	}
	byShard := make([][]uint64, len(s.fleet()))
	for k := 0; k < n; k++ {
		o := s.part().Owner(uint64(k))
		byShard[o] = append(byShard[o], uint64(k))
	}
	const batch = 64
	for i, keys := range byShard {
		ss := s.fleet()[i]
		w, err := ss.sys.Worker(0)
		if err != nil {
			return err
		}
		for base := 0; base < len(keys); base += batch {
			end := base + batch
			if end > len(keys) {
				end = len(keys)
			}
			chunk := keys[base:end]
			w.Atomic(func(tx proteustm.Txn) {
				for _, k := range chunk {
					ss.store.Put(tx, 0, k, k)
				}
			})
		}
	}
	return nil
}

// reconfigureHook runs at the start of every pool reconfiguration on this
// shard, before any thread gating (see proteustm.System.OnReconfigure).
// On a shrink it waits for in-flight operations to finish and publishes
// the smaller active set, so workers on soon-to-be-parked slots requeue
// rather than execute; growth publishes immediately.
func (ss *shardState) reconfigureHook(old, newCfg proteustm.Config) {
	ss.srv.hookFires.Add(1)
	if int64(newCfg.Threads) < ss.active.Load() {
		ss.drainMu.Lock()
		ss.active.Store(int64(newCfg.Threads))
		ss.drainMu.Unlock()
		ss.srv.drains.Add(1)
		ss.srv.opts.Logf("serve: shard %d reconfigure %s -> %s (drained in-flight ops)", ss.idx, old, newCfg)
		return
	}
	ss.active.Store(int64(newCfg.Threads))
	if old != newCfg {
		ss.srv.opts.Logf("serve: shard %d reconfigure %s -> %s", ss.idx, old, newCfg)
	}
}

// worker is the per-slot request executor of one shard. A worker only
// consumes while its slot is inside the installed parallelism degree;
// slot 0 is always active (Threads >= 1), so every shard drains even at
// minimum parallelism. The priority lane is drained before the admission
// queue so cross-shard commit control steps (fence release in particular)
// are never starved by fenced operations cycling through the queue.
func (ss *shardState) worker(id int) {
	defer ss.wg.Done()
	w, err := ss.sys.Worker(id)
	if err != nil {
		panic(fmt.Sprintf("serve: shard %d worker %d: %v", ss.idx, id, err))
	}
	idle := time.NewTicker(2 * time.Millisecond)
	defer idle.Stop()
	for {
		if int64(id) >= ss.active.Load() {
			select {
			case <-ss.stop:
				return
			case <-idle.C:
			}
			continue
		}
		var req *request
		select {
		case req = <-ss.prio:
		default:
			select {
			case <-ss.stop:
				return
			case req = <-ss.prio:
			case req = <-ss.queue:
			}
		}
		// Fault-injection hooks (nil injector: one pointer compare). A
		// fired shard-stall freezes every worker of this shard — each
		// sleeps out the shared horizon at its next dequeue — which is
		// the no-progress signature the circuit breaker trips on.
		if inj := ss.srv.opts.Fault; inj != nil {
			if d, ok := inj.Fire(fault.ShardStall, ss.idx); ok {
				ss.extendStall(time.Now().Add(d))
			}
			ss.sleepInjectedStall()
			if req.ctl == nil {
				if d, ok := inj.Fire(fault.OpDelay, ss.idx); ok {
					time.Sleep(d)
				}
			}
		}
		// Deadline/cancellation gate: a queued data op whose client hung
		// up or whose deadline passed is dropped here, never executed.
		// Control steps are exempt — a fence release must always run.
		if req.ctl == nil && req.expired(time.Now()) {
			ss.srv.shedDeadline.Add(1)
			req.done <- response{Err: "deadline exceeded", code: http.StatusGatewayTimeout}
			continue
		}
		// Group commit: with backlog behind this op, coalesce compatible
		// queued data ops into the same transaction. Expired ops are
		// excised during the drain, so a batch preserves per-op deadline
		// semantics exactly.
		var batch []*request
		if req.ctl == nil && ss.srv.opts.GroupCommit {
			batch = ss.coalesce(req)
		}
		ss.drainMu.RLock()
		if int64(id) >= ss.active.Load() {
			ss.drainMu.RUnlock()
			if batch != nil {
				for _, r := range batch {
					ss.requeue(r)
				}
			} else {
				ss.requeue(req)
			}
			continue
		}
		if batch != nil {
			t0 := time.Now()
			resps, fencedOps := ss.executeBatch(w, id, batch)
			t1 := time.Now()
			ss.drainMu.RUnlock()
			committed := 0
			for i, f := range fencedOps {
				if !f && !resps[i].moved {
					committed++
				}
			}
			// Only batches that actually coalesced work count as group
			// commits: fenced ops no-op inside the transaction, and a
			// fully-fenced batch committed nothing at all.
			if committed >= 2 {
				ss.srv.groupCommits.Add(1)
				ss.srv.batchSizes.Observe(float64(committed))
			}
			for i, r := range batch {
				if fencedOps[i] {
					ss.srv.fenced.Add(1)
					r.fenceTries++
					if r.fenceTries > maxFenceTries {
						r.done <- response{Err: "shard fence held too long"}
						continue
					}
					ss.requeue(r)
					continue
				}
				if resps[i].moved {
					// Nothing executed: the submitter re-routes under the
					// current placement (no served/executed accounting).
					r.done <- resps[i]
					continue
				}
				ss.srv.queueWait.Observe(msBetween(r.accepted, t0))
				ss.srv.svc.Observe(msBetween(t0, t1))
				ss.srv.served[r.op].Add(1)
				ss.executed.Add(1)
				r.done <- resps[i]
			}
			if committed == 0 {
				// The whole batch was fenced: yield like the solo path so
				// the fence holder's control steps make progress instead
				// of the batch re-coalescing hot through the queue.
				time.Sleep(50 * time.Microsecond)
			}
			continue
		}
		var resp response
		var fenced bool
		if req.ctl != nil {
			resp = req.ctl(w, id)
		} else {
			t0 := time.Now()
			resp, fenced = ss.execute(w, id, req)
			if !fenced {
				ss.srv.queueWait.Observe(msBetween(req.accepted, t0))
				ss.srv.svc.Observe(msBetween(t0, time.Now()))
			}
		}
		ss.drainMu.RUnlock()
		if fenced {
			ss.srv.fenced.Add(1)
			req.fenceTries++
			if req.fenceTries > maxFenceTries {
				req.done <- response{Err: "shard fence held too long"}
				continue
			}
			// Yield briefly so the fence holder's control steps (on the
			// priority lane) make progress, then cycle the request.
			time.Sleep(50 * time.Microsecond)
			ss.requeue(req)
			continue
		}
		if req.ctl == nil && !resp.moved {
			ss.srv.served[req.op].Add(1)
			ss.executed.Add(1)
		}
		req.done <- resp
	}
}

// coalesce builds a group-commit batch behind first: a non-blocking
// drain of further data operations from the admission queue, up to
// Options.GroupCommitMax. Only the queue is drained — control steps
// ride the priority lane and are never batched. An op that expired
// while queued is excised here (504, shed_deadline), exactly as the
// solo gate would have dropped it. Returns nil when nothing coalesced,
// so an idle server keeps the one-op-per-transaction path.
func (ss *shardState) coalesce(first *request) []*request {
	maxB := ss.srv.opts.GroupCommitMax
	if maxB <= 1 || len(ss.queue) == 0 {
		return nil
	}
	batch := []*request{first}
	now := time.Now()
drain:
	for len(batch) < maxB {
		select {
		case extra := <-ss.queue:
			if extra.expired(now) {
				ss.srv.shedDeadline.Add(1)
				extra.done <- response{Err: "deadline exceeded", code: http.StatusGatewayTimeout}
				continue
			}
			batch = append(batch, extra)
		default:
			break drain
		}
	}
	if len(batch) == 1 {
		return nil
	}
	return batch
}

// msBetween converts a time span to milliseconds for the reservoirs.
func msBetween(from, to time.Time) float64 {
	return float64(to.Sub(from).Nanoseconds()) / 1e6
}

// requeue hands a request back after a shrink beat this worker to it or
// a fence forced a retry. Control steps go back onto the priority lane —
// they must keep their delivery guarantee and their precedence over
// fenced data operations, and the lane has reserved capacity (crossSlots
// bounds outstanding control steps, and this worker just freed a slot).
// Data requests go back onto the admission queue with a bounded push: a
// worker must never block forever on its own full queue (it may be the
// only consumer), so after a grace period the request fails instead.
func (ss *shardState) requeue(req *request) {
	ss.srv.requeued.Add(1)
	if req.ctl != nil {
		select {
		case ss.prio <- req:
		case <-ss.stop:
			req.done <- ss.stopAnswer(req)
		}
		return
	}
	for i := 0; i < 200; i++ {
		select {
		case ss.queue <- req:
			return
		case <-ss.stop:
			req.done <- ss.stopAnswer(req)
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
	req.done <- response{Err: "admission queue full during requeue"}
}

// stopAnswer is the reply for a request caught by this shard's closed
// stop channel. A retiring shard (merge donor or reaped spare) answers
// with a bounce instead of an error: the placement has already flipped
// away from it, so data operations re-route under the fresh placement
// (moved) and control steps report not-applied, sending their
// coordinator back through the placement-epoch re-check. A shard whose
// whole server is shutting down keeps the hard error.
func (ss *shardState) stopAnswer(req *request) response {
	if !ss.retiring.Load() {
		return response{Err: "server shutting down"}
	}
	if req.ctl != nil {
		return response{}
	}
	return response{moved: true}
}

// opFenced reports whether req must requeue because a cross-shard
// commit fence covers it, dispatching on the configured granularity.
// Under the whole-shard fence every operation blocks while the fence is
// held. Under keyed fences a single-key or batch operation intersects
// its keys' Bloom signature with the held fence entries (a false
// positive costs one spurious requeue; a false negative is impossible),
// a local range scan checks conservatively against any held entry, and
// deque operations never block — the cross-shard protocol cannot touch
// the deque.
func (ss *shardState) opFenced(tx proteustm.Txn, req *request) bool {
	// With a single shard no cross-shard commit ever takes a fence, so
	// skip the per-operation fence read entirely.
	if len(ss.srv.fleet()) == 1 {
		return false
	}
	if ss.srv.opts.FenceGranularity != FenceKey {
		return ss.store.Fenced(tx)
	}
	switch req.op {
	case opGet, opPut, opDel, opCAS:
		return ss.store.FencedKey(tx, req.key)
	case opMPut, opMGet:
		return ss.store.FencedSig(tx, KeyFenceSig(req.keys))
	case opRange:
		return ss.store.FencedAny(tx)
	default:
		return false
	}
}

// applyOp executes one data operation inside an open transaction. It
// reports fenced=true (and performs no writes) when a cross-shard fence
// covers the operation: the caller must requeue it rather than answer
// it. The response is reset at the top because the TM retries the
// enclosing atomic block on aborts — and because a group commit runs
// many applyOps in one block, every op's results must rebuild cleanly
// on each attempt.
func (ss *shardState) applyOp(tx proteustm.Txn, slot int, req *request, resp *response) (fenced bool) {
	*resp = response{}
	// Placement-epoch gate: a KV operation routed under a placement a
	// live reshard has since replaced may be on the wrong shard, so it
	// bounces back for re-routing (resp.moved) instead of executing.
	// Reading the word inside this transaction closes the route/flip
	// race — the donor's bump commits atomically with the moved span's
	// deletion. Deque operations are exempt: the deque is pinned to its
	// home shard and never migrates.
	switch req.op {
	case opGet, opPut, opDel, opCAS, opRange, opMPut, opMGet:
		if ss.store.PlacementStale(tx, req.routingEpoch) {
			resp.moved = true
			return false
		}
	}
	if ss.opFenced(tx, req) {
		return true
	}
	store := ss.store
	switch req.op {
	case opGet:
		resp.Val, resp.Found = store.Get(tx, req.key)
	case opPut:
		resp.Existed = store.Put(tx, slot, req.key, req.val)
		resp.Applied = true
	case opDel:
		resp.Applied = store.Delete(tx, slot, req.key)
	case opCAS:
		resp.Val, resp.Applied = store.CAS(tx, slot, req.key, req.old, req.newv)
	case opRange:
		resp.Count, resp.Sum = store.Range(tx, req.lo, req.hi)
	case opMPut:
		for i, k := range req.keys {
			store.Put(tx, slot, k, req.vals[i])
		}
		resp.Applied = true
	case opMGet:
		vals := make([]uint64, len(req.keys))
		present := make([]bool, len(req.keys))
		for i, k := range req.keys {
			vals[i], present[i] = store.Get(tx, k)
		}
		resp.Vals, resp.Present = vals, present
	case opLPush:
		store.PushLeft(tx, slot, req.val)
		resp.Applied = true
	case opRPush:
		store.PushRight(tx, slot, req.val)
		resp.Applied = true
	case opLPop:
		resp.Val, resp.Found = store.PopLeft(tx, slot)
	case opRPop:
		resp.Val, resp.Found = store.PopRight(tx, slot)
	case opLLen:
		resp.Len = store.Len(tx)
	}
	return false
}

// execute runs one data operation as a single atomic block on worker w.
func (ss *shardState) execute(w *proteustm.Worker, slot int, req *request) (response, bool) {
	var resp response
	var fenced bool
	w.Atomic(func(tx proteustm.Txn) {
		fenced = ss.applyOp(tx, slot, req, &resp)
	})
	if fenced {
		return response{}, true
	}
	return resp, false
}

// executeBatch runs a group commit: every coalesced operation applies
// inside one atomic block, in queue order, so the batch costs one
// commit instead of len(reqs). A fenced op contributes nothing to the
// transaction (applyOp returns before touching the store) and is
// requeued by the caller; the others' effects commit regardless —
// exactly the per-op outcome of the solo path, minus the per-op
// transaction overhead.
func (ss *shardState) executeBatch(w *proteustm.Worker, slot int, reqs []*request) ([]response, []bool) {
	resps := make([]response, len(reqs))
	fenced := make([]bool, len(reqs))
	w.Atomic(func(tx proteustm.Txn) {
		for i, r := range reqs {
			fenced[i] = ss.applyOp(tx, slot, r, &resps[i])
		}
	})
	return resps, fenced
}

// armDeadline stamps the admission instant and derives the effective
// deadline: the tighter of the server default (Options.Deadline) and the
// request's own budget (the wire's deadline_ms), anchored at acceptance.
func (s *Server) armDeadline(req *request) {
	req.accepted = time.Now()
	budget := s.opts.Deadline
	if req.budget > 0 && (budget == 0 || req.budget < budget) {
		budget = req.budget
	}
	if budget > 0 {
		req.deadline = req.accepted.Add(budget)
	}
}

// queueWaitP99 returns the observed queue-wait p99 in milliseconds,
// recomputed from the reservoir at most every 25 ms so the admission path
// never pays a sort per request.
func (s *Server) queueWaitP99() float64 {
	now := time.Now().UnixNano()
	next := s.gateNext.Load()
	if now >= next && s.gateNext.CompareAndSwap(next, now+(25*time.Millisecond).Nanoseconds()) {
		s.gateP99Bits.Store(math.Float64bits(s.queueWait.Quantile(99)))
	}
	return math.Float64frombits(s.gateP99Bits.Load())
}

// shedForLatency reports whether an admission to ss must be shed because
// the observed queue-wait p99 has crossed the SLO budget. The occupancy
// guard keeps a stale reservoir window (old samples linger under light
// load) from shedding an idle server.
func (s *Server) shedForLatency(ss *shardState) bool {
	if s.opts.SLOP99 <= 0 {
		return false
	}
	if len(ss.queue) < max(1, cap(ss.queue)/8) {
		return false
	}
	budgetMs := s.opts.ShedBudget * float64(s.opts.SLOP99) / float64(time.Millisecond)
	return s.queueWaitP99() > budgetMs
}

// submit admits one request to shard ss: a full queue — or a queue-wait
// p99 over the SLO budget — rejects immediately (the 429 paths) rather
// than stalling the client. The inflight registration precedes the
// closed-check, so Close cannot observe an empty system while a submitter
// is between its check and its enqueue.
func (s *Server) submit(ss *shardState, req *request) (response, int) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return response{Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	if ra := ss.breakerRetryAfter(time.Now()); ra > 0 {
		// The shard's circuit breaker is open: it has queued work it is
		// not executing. Shed with a Retry-After instead of feeding the
		// dead queue.
		s.breakerShed.Add(1)
		return response{Err: "shard circuit breaker open",
				code: http.StatusServiceUnavailable, retryAfter: ra},
			http.StatusServiceUnavailable
	}
	s.armDeadline(req)
	if s.shedForLatency(ss) {
		s.shedLatency.Add(1)
		return response{Err: "queue-wait p99 over SLO budget"}, http.StatusTooManyRequests
	}
	req.done = make(chan response, 1)
	select {
	case ss.queue <- req:
		ss.routed.Add(1)
	default:
		s.rejected.Add(1)
		return response{Err: "admission queue full"}, http.StatusTooManyRequests
	}
	var cancel <-chan struct{}
	if req.ctx != nil {
		cancel = req.ctx.Done()
	}
	select {
	case resp := <-req.done:
		s.lat.Observe(msBetween(req.accepted, time.Now()))
		if resp.code != 0 {
			return resp, resp.code
		}
		if resp.Err != "" {
			return resp, http.StatusServiceUnavailable
		}
		return resp, http.StatusOK
	case <-cancel:
		// The client hung up while the op was queued. Hand the slot back
		// immediately; the worker that eventually dequeues the op sees
		// the dead context and drops it (counted shed_deadline). The 499
		// mirrors the de-facto "client closed request" status — nobody is
		// left to read it.
		return response{Err: "client canceled"}, 499
	}
}

// Close drains the admission queues, stops the workers and shuts every
// shard's ProteusTM system down. In-flight and queued requests — and
// in-flight cross-shard commits — all complete; new submissions are
// rejected with 503. Shards drain one at a time so the shutdown log
// attributes progress per shard.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop the maintenance loop (autosplit/automerge/spare reaper) and
	// wait out any in-flight migration before draining, so no reshard
	// races the shard teardown below.
	if s.maintStop != nil {
		close(s.maintStop)
		s.maintWG.Wait()
	}
	s.reshardMu.Lock()
	s.reshardMu.Unlock() //nolint:staticcheck // barrier: wait out a live migration
	// Every submission that passed the closed-check has registered in
	// inflight, and the workers are still running, so waiting here both
	// drains the queues and guarantees every admitted request (including
	// every cross-shard coordinator) got its reply before workers stop.
	s.inflight.Wait()
	var firstErr error
	for _, ss := range s.fleet() {
		close(ss.stop)
		ss.wg.Wait()
		ss.sys.OnReconfigure(nil)
		s.opts.Logf("serve: shard %d drained (final config %s)", ss.idx, ss.sys.CurrentConfig())
		if err := ss.sys.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Retired-shard drainers outlive their shards (stragglers holding a
	// pre-truncation fleet may deliver long after the retire); they only
	// stop once no new sender can exist.
	close(s.stopDrainers)
	s.drainersWG.Wait()
	s.opts.Logf("serve: drained and stopped (shards=%d served=%d rejected=%d cross=%d)",
		len(s.fleet()), s.totalServed(), s.rejected.Load(), s.crossOps.Load())
	return firstErr
}

func (s *Server) totalServed() uint64 {
	var total uint64
	for i := range s.served {
		total += s.served[i].Load()
	}
	return total
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routes builds the endpoint mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/admin/reshard", s.handleReshard)
	mux.HandleFunc("/kv/get", s.opHandler(opGet, "key"))
	mux.HandleFunc("/kv/put", s.opHandler(opPut, "key", "val"))
	mux.HandleFunc("/kv/del", s.opHandler(opDel, "key"))
	mux.HandleFunc("/kv/cas", s.opHandler(opCAS, "key", "old", "new"))
	mux.HandleFunc("/kv/range", s.handleRange)
	mux.HandleFunc("/kv/mput", s.batchHandler(opMPut))
	mux.HandleFunc("/kv/mget", s.batchHandler(opMGet))
	mux.HandleFunc("/list/lpush", s.opHandler(opLPush, "val"))
	mux.HandleFunc("/list/rpush", s.opHandler(opRPush, "val"))
	mux.HandleFunc("/list/lpop", s.opHandler(opLPop))
	mux.HandleFunc("/list/rpop", s.opHandler(opRPop))
	mux.HandleFunc("/list/len", s.opHandler(opLLen))
	return mux
}

// shardFor routes a request to the shard owning its key under the
// current placement, stamping the placement epoch into the request so a
// concurrent flip is detectable at execution time. Single-key operations
// go to the key's owner; deque operations live on shard dequeHome (the
// deque is not partitioned — see docs/sharding.md). A nil result means
// the loaded placement named a shard a concurrent merge already retired
// (the fleet was read after the truncation): the caller must re-route.
func (s *Server) shardFor(req *request) *shardState {
	p, epoch := s.place.Load()
	req.routingEpoch = epoch
	fleet := s.fleet()
	switch req.op {
	case opGet, opPut, opDel, opCAS:
		if o := p.Owner(req.key); o < len(fleet) {
			return fleet[o]
		}
		return nil
	default:
		return fleet[dequeHome]
	}
}

// movedRetries bounds how many times a bounced operation re-routes: one
// flip needs one bounce, the slack covers back-to-back splits.
const movedRetries = 8

// submitRouted admits req to its key's owner, re-routing when a live
// reshard flipped the placement between routing and execution (the
// shard bounces the op back with resp.moved, having executed nothing).
func (s *Server) submitRouted(req *request) (response, int) {
	for try := 0; ; try++ {
		var resp response
		var code int
		if ss := s.shardFor(req); ss != nil {
			resp, code = s.submit(ss, req)
		} else {
			// The owner the stale placement named was retired between the
			// placement and fleet loads: bounce as if the shard said moved.
			resp = response{moved: true}
		}
		if !resp.moved {
			return resp, code
		}
		if try >= movedRetries {
			return response{Err: "placement moved during retries"}, http.StatusServiceUnavailable
		}
		s.movedBounces.Add(1)
	}
}

// opHandler builds the handler for one single-key or deque operation,
// parsing the named uint64 query parameters and routing to the owning
// shard.
func (s *Server) opHandler(op opKind, params ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req := &request{op: op, ctx: r.Context()}
		if ok := parseDeadline(w, r, req); !ok {
			return
		}
		for _, name := range params {
			raw := r.URL.Query().Get(name)
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter %q: want uint64, got %q", name, raw)})
				return
			}
			switch name {
			case "key":
				req.key = v
			case "val":
				req.val = v
			case "old":
				req.old = v
			case "new":
				req.newv = v
			}
		}
		resp, code := s.submitRouted(req)
		writeResp(w, code, resp)
	}
}

// handleRange serves /kv/range. The scan fences only the shards the
// partitioner maps the interval onto (OwnersInRange): under hashing a
// wide scan still touches every shard, but under the range partitioner —
// and for narrow scans under either — the owner set shrinks, down to a
// plain single-shard transaction with no fence protocol at all.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var lo, hi uint64
	for _, p := range []struct {
		name string
		dst  *uint64
	}{{"lo", &lo}, {"hi", &hi}} {
		raw := r.URL.Query().Get(p.name)
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter %q: want uint64, got %q", p.name, raw)})
			return
		}
		*p.dst = v
	}
	if hi < lo {
		writeJSON(w, http.StatusBadRequest, response{Err: "range: hi < lo"})
		return
	}
	if hi-lo > s.opts.MaxScanSpan {
		hi = lo + s.opts.MaxScanSpan
	}
	req := &request{op: opRange, lo: lo, hi: hi, ctx: r.Context()}
	if ok := parseDeadline(w, r, req); !ok {
		return
	}
	resp, code := s.submitCross(req)
	writeResp(w, code, resp)
}

// parseDeadline reads the optional deadline_ms query parameter into
// req.budget, answering 400 (and returning false) on a malformed value.
func parseDeadline(w http.ResponseWriter, r *http.Request, req *request) bool {
	raw := r.URL.Query().Get("deadline_ms")
	if raw == "" {
		return true
	}
	ms, err := strconv.ParseFloat(raw, 64)
	if err != nil || ms <= 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
		writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter \"deadline_ms\": want positive milliseconds, got %q", raw)})
		return false
	}
	req.budget = time.Duration(ms * float64(time.Millisecond))
	return true
}

// batchHandler serves /kv/mput and /kv/mget: comma-separated uint64 key
// (and for mput, value) lists, committed atomically across every
// participating shard.
func (s *Server) batchHandler(op opKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		keys, err := parseUintList(r.URL.Query().Get("keys"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter \"keys\": %v", err)})
			return
		}
		if len(keys) == 0 {
			writeJSON(w, http.StatusBadRequest, response{Err: "parameter \"keys\": at least one key required"})
			return
		}
		if len(keys) > s.opts.MaxBatchKeys {
			writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("batch of %d keys exceeds limit %d", len(keys), s.opts.MaxBatchKeys)})
			return
		}
		req := &request{op: op, keys: keys, ctx: r.Context()}
		if ok := parseDeadline(w, r, req); !ok {
			return
		}
		if op == opMPut {
			vals, err := parseUintList(r.URL.Query().Get("vals"))
			if err != nil {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter \"vals\": %v", err)})
				return
			}
			if len(vals) != len(keys) {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("got %d keys but %d vals", len(keys), len(vals))})
				return
			}
			req.vals = vals
		}
		resp, code := s.submitCross(req)
		writeResp(w, code, resp)
	}
}

// parseUintList parses a comma-separated uint64 list.
func parseUintList(raw string) ([]uint64, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("want uint64 list, got %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort write to client
}

// writeResp writes an operation response, surfacing its Retry-After
// hint (circuit-breaker shed, fence recovery pending) as the standard
// header, rounded up to whole seconds as the header requires.
func writeResp(w http.ResponseWriter, code int, resp response) {
	if resp.retryAfter > 0 {
		secs := int(math.Ceil(resp.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, resp)
}
