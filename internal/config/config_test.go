package config_test

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/htm"
)

// TestKeyUniqueness: distinct configurations must encode to distinct keys.
func TestKeyUniqueness(t *testing.T) {
	f := func(a1, a2, t1, t2, b1, b2 uint8, p1, p2 uint8) bool {
		c1 := config.Config{
			Alg:     config.AlgID(a1 % uint8(config.NumAlgs)),
			Threads: int(t1%64) + 1,
			Budget:  int(b1 % 32),
			Policy:  htm.CapacityPolicy(p1 % 3),
		}
		c2 := config.Config{
			Alg:     config.AlgID(a2 % uint8(config.NumAlgs)),
			Threads: int(t2%64) + 1,
			Budget:  int(b2 % 32),
			Policy:  htm.CapacityPolicy(p2 % 3),
		}
		if c1 == c2 {
			return c1.Key() == c2.Key()
		}
		return c1.Key() != c2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestStrings covers every algorithm label.
func TestStrings(t *testing.T) {
	want := map[config.AlgID]string{
		config.TL2:        "TL2",
		config.TinySTM:    "Tiny",
		config.NOrec:      "NOrec",
		config.SwissTM:    "Swiss",
		config.HTM:        "HTM",
		config.Hybrid:     "Hybrid",
		config.GlobalLock: "GL",
	}
	for alg, s := range want {
		if alg.String() != s {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), s)
		}
	}
	c := config.Config{Alg: config.HTM, Threads: 4, Budget: 16, Policy: htm.PolicyGiveUp}
	if got := c.String(); got != "HTM:4t GiveUp-16" {
		t.Errorf("HTM label = %q", got)
	}
}

// TestIsHTM covers the CM-relevance predicate.
func TestIsHTM(t *testing.T) {
	if !config.HTM.IsHTM() || !config.Hybrid.IsHTM() {
		t.Error("HTM/Hybrid must report IsHTM")
	}
	if config.TL2.IsHTM() || config.GlobalLock.IsHTM() {
		t.Error("STM/GL must not report IsHTM")
	}
}
