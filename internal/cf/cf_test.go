package cf_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cf"
)

// mkMatrix builds a matrix from literal rows, mapping negative values to
// missing entries.
func mkMatrix(rows ...[]float64) *cf.Matrix {
	m := cf.NewMatrix(len(rows), len(rows[0]))
	for u, r := range rows {
		for i, v := range r {
			if v >= 0 {
				m.Data[u][i] = v
			}
		}
	}
	return m
}

// TestDistillerPaperExample reproduces the §5.1 worked example: A1 scales
// linearly (30,20,10 inverted → use raw goodness 10,20,30), A2 anti-scales,
// A3 follows A1's trend; distillation must let KNN predict A3's missing
// third entry near 300.
func TestDistillerPaperExample(t *testing.T) {
	train := mkMatrix(
		[]float64{10, 20, 30},
		[]float64{90, 60, 30},
		[]float64{11, 22, 33},
		[]float64{80, 55, 28},
	)
	d := &cf.Distiller{}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	ratings, _ := cf.NormalizeMatrix(d, train)
	knn := &cf.KNN{K: 2, Sim: cf.Cosine}
	knn.Fit(ratings)

	active := []float64{100, 200, cf.Missing}
	activeRatings, denorm := d.NormalizeRow(-1, active)
	pred := knn.Predict(activeRatings)
	if cf.IsMissing(pred[2]) {
		t.Fatal("no prediction produced")
	}
	got := denorm(2, pred[2])
	if math.Abs(got-300)/300 > 0.15 {
		t.Errorf("predicted %f for the scaling workload's third config, want ≈300", got)
	}
}

// TestDistillerRatioPreservation is the paper's property (i): for any row,
// the ratio between two known ratings equals the ratio between the
// corresponding goodness values.
func TestDistillerRatioPreservation(t *testing.T) {
	train := mkMatrix(
		[]float64{10, 20, 30, 5},
		[]float64{1000, 400, 800, 1200},
		[]float64{3, 2, 1, 4},
	)
	d := &cf.Distiller{}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, dd uint8) bool {
		row := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(dd) + 1}
		ratings, _ := d.NormalizeRow(-1, row)
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				want := row[i] / row[j]
				got := ratings[i] / ratings[j]
				if math.Abs(want-got) > 1e-9*math.Abs(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDistillerDenormRoundTrip checks denorm(normalize(x)) == x for known
// entries.
func TestDistillerDenormRoundTrip(t *testing.T) {
	train := mkMatrix(
		[]float64{10, 20, 30},
		[]float64{100, 50, 25},
	)
	d := &cf.Distiller{}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	row := []float64{7, 13, 29}
	ratings, denorm := d.NormalizeRow(-1, row)
	for i := range row {
		if got := denorm(i, ratings[i]); math.Abs(got-row[i]) > 1e-9 {
			t.Errorf("round trip col %d: got %f want %f", i, got, row[i])
		}
	}
}

// TestDistillerPicksLowDispersionColumn verifies Algorithm 3 prefers the
// reference column that aligns the row maxima.
func TestDistillerPicksLowDispersionColumn(t *testing.T) {
	// Column 0 is exactly half the row max for every row (dispersion 0);
	// column 1 is erratic relative to the max.
	train := mkMatrix(
		[]float64{50, 7, 100},
		[]float64{5, 9, 10},
		[]float64{500, 333, 1000},
	)
	d := &cf.Distiller{}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	if d.RefCol != 0 {
		t.Errorf("RefCol = %d, want 0 (dispersion-minimizing column)", d.RefCol)
	}
	if d.Dispersion > 1e-12 {
		t.Errorf("dispersion = %g, want 0", d.Dispersion)
	}
}

// TestKNNSimilarities checks the scale behaviour §5.1 describes: cosine is
// scale-insensitive, Euclidean is not.
func TestKNNSimilarities(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	simCos := cf.RowSimilarityForTest(cf.Cosine, a, b)
	if math.Abs(simCos-1) > 1e-9 {
		t.Errorf("cosine similarity of scaled rows = %f, want 1", simCos)
	}
	simEuc := cf.RowSimilarityForTest(cf.Euclidean, a, b)
	if simEuc > 0.2 {
		t.Errorf("euclidean similarity of scaled rows = %f, want small", simEuc)
	}
	simP := cf.RowSimilarityForTest(cf.Pearson, a, b)
	if math.Abs(simP-1) > 1e-9 {
		t.Errorf("pearson similarity of linearly related rows = %f, want 1", simP)
	}
}

// TestKNNPredictsFromNeighbours checks the weighted-average prediction.
func TestKNNPredictsFromNeighbours(t *testing.T) {
	train := mkMatrix(
		[]float64{1, 2, 3},
		[]float64{1, 2, 3.2},
		[]float64{9, 1, 0.5},
	)
	knn := &cf.KNN{K: 2, Sim: cf.Cosine}
	knn.Fit(train)
	pred := knn.Predict([]float64{1, 2, cf.Missing})
	if cf.IsMissing(pred[2]) {
		t.Fatal("no prediction")
	}
	if pred[2] < 2.5 || pred[2] > 3.5 {
		t.Errorf("prediction %f outside the neighbours' range [3, 3.2]", pred[2])
	}
}

// TestMFReconstruction checks MF can reconstruct a rank-1 matrix with a few
// missing cells.
func TestMFReconstruction(t *testing.T) {
	users := []float64{1, 2, 3, 4, 5, 6}
	items := []float64{2, 1, 3, 0.5, 1.5}
	full := cf.NewMatrix(len(users), len(items))
	for u := range users {
		for i := range items {
			full.Data[u][i] = users[u] * items[i]
		}
	}
	train := full.Clone()
	train.Data[0][1] = cf.Missing
	train.Data[3][4] = cf.Missing
	mf := &cf.MF{D: 4, Epochs: 400, LR: 0.02, Reg: 0.001, Seed: 7}
	mf.Fit(train)
	active := make([]float64, len(items))
	copy(active, full.Data[2])
	active[3] = cf.Missing
	pred := mf.Predict(active)
	want := users[2] * items[3]
	if math.Abs(pred[3]-want)/want > 0.3 {
		t.Errorf("MF fold-in predicted %f, want ≈%f", pred[3], want)
	}
}

// TestBaggingVarianceShrinksWithAgreement: identical learners must yield
// zero variance; heterogeneous data must yield positive variance somewhere.
func TestBaggingDist(t *testing.T) {
	train := mkMatrix(
		[]float64{1, 2, 3},
		[]float64{2, 4, 6},
		[]float64{10, 1, 5},
		[]float64{9, 2, 4},
	)
	b := &cf.Bagging{
		Learners: 8,
		New:      func(i int) cf.Predictor { return &cf.KNN{K: 2, Sim: cf.Cosine} },
		Seed:     42,
	}
	b.Fit(train)
	mean, variance := b.PredictDist([]float64{1.5, 3, cf.Missing})
	if cf.IsMissing(mean[2]) {
		t.Fatal("ensemble produced no prediction")
	}
	if variance[2] < 0 {
		t.Errorf("negative variance %f", variance[2])
	}
	// Known entries echo exactly with zero variance.
	if mean[0] != 1.5 || variance[0] != 0 {
		t.Errorf("known entry not echoed: mean %f var %f", mean[0], variance[0])
	}
}

// TestSelectModelPicksReasonably runs model selection on a matrix where
// rows are scaled copies — KNN-cosine should score near-perfectly.
func TestSelectModelPicksReasonably(t *testing.T) {
	base := []float64{1, 3, 2, 5, 4, 6, 0.5, 7}
	m := cf.NewMatrix(12, len(base))
	for u := 0; u < 12; u++ {
		scale := float64(u + 1)
		for i, v := range base {
			m.Data[u][i] = v * scale * (1 + 0.01*float64(i%3))
		}
	}
	best, scored := cf.SelectModel(m, cf.DefaultCandidates(), 4, 12, 99)
	if best.New == nil {
		t.Fatal("no model selected")
	}
	if len(scored) != 12 {
		t.Fatalf("scored %d candidates, want 12", len(scored))
	}
	if best.Score > 0.2 {
		t.Errorf("best CV MAPE %f too high for trivially similar rows", best.Score)
	}
}

// TestGoodnessInversion checks orientation handling.
func TestGoodnessInversion(t *testing.T) {
	if g := cf.Goodness(4, false); g != 0.25 {
		t.Errorf("minimize goodness(4) = %f, want 0.25", g)
	}
	if g := cf.Goodness(4, true); g != 4 {
		t.Errorf("maximize goodness(4) = %f, want 4", g)
	}
	if !cf.IsMissing(cf.Goodness(cf.Missing, false)) {
		t.Error("missing KPI should stay missing")
	}
}
