package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestFig1Shapes asserts the heterogeneity message of Fig. 1: every
// highlighted configuration is strong somewhere and weak somewhere else.
func TestFig1Shapes(t *testing.T) {
	r := experiments.Fig1(experiments.Quick)
	for _, panel := range []experiments.Fig1Panel{r.MachineA, r.MachineB} {
		for c := range panel.Configs {
			best, worst := 0.0, 1.0
			for w := range panel.Workloads {
				v := panel.Normalized[w][c]
				if v > best {
					best = v
				}
				if v < worst {
					worst = v
				}
			}
			if best < 0.7 {
				t.Errorf("%s: config %s never near-optimal (best %.2f)", panel.KPI, panel.Configs[c], best)
			}
			if worst > 0.9 {
				t.Errorf("%s: config %s good everywhere (worst %.2f) — no heterogeneity", panel.KPI, panel.Configs[c], worst)
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("Print output missing title")
	}
}

// TestFig4Shapes asserts distillation ≈ ideal ≪ none/max.
func TestFig4Shapes(t *testing.T) {
	r, err := experiments.Fig4(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	last := len(r.SampleCounts) - 1
	distill, ideal := r.MDFO[idx["distill"]][last], r.MDFO[idx["ideal"]][last]
	none := r.MDFO[idx["none"]][last]
	if distill > 2.5*ideal+0.02 {
		t.Errorf("distill MDFO %.3f does not track ideal %.3f", distill, ideal)
	}
	if none < distill {
		t.Errorf("no-normalization (%.3f) beat distillation (%.3f)", none, distill)
	}
	if r.MAPE[idx["distill"]][last] > r.MAPE[idx["none"]][last] {
		t.Error("distillation MAPE worse than raw KPIs")
	}
}

// TestFig5Shapes asserts EI's dominance and Variance's MAPE edge.
func TestFig5Shapes(t *testing.T) {
	r, err := experiments.Fig5(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Policies are ordered EI, Greedy, Random, Variance.
	const (
		ei = iota
		greedy
		random
		variance
	)
	mid := len(r.Budgets) / 2
	if r.MDFOEDPA[ei][mid] > r.MDFOEDPA[random][mid] {
		t.Errorf("EI MDFO %.3f worse than Random %.3f at %d explorations",
			r.MDFOEDPA[ei][mid], r.MDFOEDPA[random][mid], r.Budgets[mid])
	}
	if r.MDFOExecB[ei][mid] > r.MDFOExecB[variance][mid] {
		t.Errorf("EI MDFO %.3f worse than Variance %.3f (exec time B)",
			r.MDFOExecB[ei][mid], r.MDFOExecB[variance][mid])
	}
	if r.MAPEExecB[variance][mid] > r.MAPEExecB[ei][mid]*1.2 {
		t.Errorf("Variance MAPE %.3f should be competitive with EI %.3f",
			r.MAPEExecB[variance][mid], r.MAPEExecB[ei][mid])
	}
}

// TestFig6Shapes asserts Cautious ≤ Naive and monotonicity in ε.
func TestFig6Shapes(t *testing.T) {
	r, err := experiments.Fig6(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range []experiments.Fig6Panel{r.EDPA, r.ExecB} {
		for ei := range r.Epsilons {
			naive, cautious := panel.Mean[0][ei], panel.Mean[1][ei]
			if cautious > naive+0.02 {
				t.Errorf("Cautious (%.3f) worse than Naive (%.3f) at ε=%.2f",
					cautious, naive, r.Epsilons[ei])
			}
		}
		if panel.Mean[1][0] > panel.Mean[1][len(r.Epsilons)-1]+0.05 {
			t.Errorf("Cautious DFO not improving as ε shrinks: %v", panel.Mean[1])
		}
	}
}

// TestFig7Shapes asserts ProteusTM beats every ML baseline at 30% training.
func TestFig7Shapes(t *testing.T) {
	r, err := experiments.Fig7(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	s30 := r.Splits[0]
	for _, ml := range []string{"CART", "SMO", "MLP"} {
		if s30.Mean["ProteusTM"] > s30.Mean[ml] {
			t.Errorf("ProteusTM mean DFO %.3f worse than %s %.3f at 30%% training",
				s30.Mean["ProteusTM"], ml, s30.Mean[ml])
		}
	}
	if s30.MedianExpl > 10 {
		t.Errorf("median explorations %.0f too high", s30.MedianExpl)
	}
	// ProteusTM's accuracy is nearly split-independent (paper's point).
	s70 := r.Splits[1]
	if s70.Mean["ProteusTM"] > s30.Mean["ProteusTM"]*2+0.02 {
		t.Errorf("ProteusTM degraded with more data: %.3f vs %.3f",
			s70.Mean["ProteusTM"], s30.Mean["ProteusTM"])
	}
}

// TestTable4Shapes runs the live overhead measurement and asserts the
// dual-path ablation: naive HTM instrumentation costs several times the
// optimized path's overhead.
func TestTable4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement")
	}
	r, err := experiments.Table4(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	var naiveMax float64
	for bi, b := range r.Backends {
		for _, v := range r.OverheadPct[bi] {
			if b == "HTM-naive" && v > naiveMax {
				naiveMax = v
			}
		}
	}
	if naiveMax < 5 {
		t.Errorf("naive HTM instrumentation overhead %.1f%%; expected substantial", naiveMax)
	}
}

// TestTable5Shapes runs the live reconfiguration-latency measurement.
func TestTable5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement")
	}
	r, err := experiments.Table5(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	for wi, rows := range r.LatencyMicros {
		for ti, v := range rows {
			if v <= 0 || v > 1e6 {
				t.Errorf("%s @%dt: implausible latency %.0f µs",
					r.Workloads[wi], r.Threads[ti], v)
			}
		}
	}
}
