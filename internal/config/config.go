// Package config defines the TM configuration encoding shared by PolyTM,
// the machine profiles and the recommender: which TM algorithm runs, at what
// parallelism degree, and with which HTM contention-management parameters.
// A configuration is one column of RecTM's Utility Matrix.
package config

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/htm"
)

// AlgID identifies one TM backend in PolyTM's library.
type AlgID uint8

const (
	// TL2 is commit-time-locking STM (Dice/Shalev/Shavit).
	TL2 AlgID = iota
	// TinySTM is encounter-time-locking STM with timestamp extension.
	TinySTM
	// NOrec is the ownership-record-free STM.
	NOrec
	// SwissTM is the mixed eager/lazy STM.
	SwissTM
	// HTM is the simulated best-effort hardware TM with lock fallback.
	HTM
	// Hybrid is the HTM fast path with NOrec software fallback.
	Hybrid
	// GlobalLock is the single-lock baseline ("sequential").
	GlobalLock

	// NumAlgs is the number of algorithm identifiers.
	NumAlgs = int(GlobalLock) + 1
)

// String returns the short algorithm label used throughout the paper's
// tables ("Tiny: 8t", "HTM: 4t GiveUp-4", ...).
func (a AlgID) String() string {
	switch a {
	case TL2:
		return "TL2"
	case TinySTM:
		return "Tiny"
	case NOrec:
		return "NOrec"
	case SwissTM:
		return "Swiss"
	case HTM:
		return "HTM"
	case Hybrid:
		return "Hybrid"
	case GlobalLock:
		return "GL"
	}
	return "?"
}

// IsHTM reports whether the algorithm has hardware contention-management
// parameters worth tuning.
func (a AlgID) IsHTM() bool { return a == HTM || a == Hybrid }

// Config is one point of the multi-dimensional tuning space: the four
// dimensions of Table 3 in the paper.
type Config struct {
	// Alg is the TM backend.
	Alg AlgID
	// Threads is the parallelism degree (active worker threads).
	Threads int
	// Budget is the HTM retry budget (ignored for STMs).
	Budget int
	// Policy is the HTM capacity-abort policy (ignored for STMs).
	Policy htm.CapacityPolicy
}

// String renders the configuration in the paper's label style.
func (c Config) String() string {
	if c.Alg.IsHTM() {
		return fmt.Sprintf("%s:%dt %s-%d", c.Alg, c.Threads, policyLabel(c.Policy), c.Budget)
	}
	return fmt.Sprintf("%s:%dt", c.Alg, c.Threads)
}

func policyLabel(p htm.CapacityPolicy) string {
	switch p {
	case htm.PolicyGiveUp:
		return "GiveUp"
	case htm.PolicyDecrease:
		return "Linear"
	case htm.PolicyHalve:
		return "Half"
	}
	return "?"
}

// Key returns a compact comparable encoding, usable as a map key and stable
// across runs.
func (c Config) Key() uint32 {
	return uint32(c.Alg)<<24 | uint32(c.Threads)<<16 | uint32(c.Budget)<<8 | uint32(c.Policy)
}

// ParseAlg resolves an algorithm name: the short label of AlgID.String
// ("Tiny", "GL") or the long form ("TinySTM", "GlobalLock"), case
// insensitively.
func ParseAlg(s string) (AlgID, error) {
	switch strings.ToLower(s) {
	case "tl2":
		return TL2, nil
	case "tiny", "tinystm":
		return TinySTM, nil
	case "norec":
		return NOrec, nil
	case "swiss", "swisstm":
		return SwissTM, nil
	case "htm":
		return HTM, nil
	case "hybrid":
		return Hybrid, nil
	case "gl", "globallock":
		return GlobalLock, nil
	}
	return 0, fmt.Errorf("config: unknown algorithm %q", s)
}

// Parse is the inverse of Config.String: it accepts the paper-style label
// "<alg>:<N>t" for STMs and "<alg>:<N>t <policy>-<budget>" for HTM/Hybrid
// (e.g. "TL2:8t", "HTM:4t GiveUp-2"). Algorithm and policy names are case
// insensitive.
func Parse(s string) (Config, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) == 0 {
		return Config{}, fmt.Errorf("config: empty label")
	}
	algPart, threadPart, ok := strings.Cut(fields[0], ":")
	if !ok {
		return Config{}, fmt.Errorf("config: %q: want <alg>:<N>t", fields[0])
	}
	alg, err := ParseAlg(algPart)
	if err != nil {
		return Config{}, err
	}
	threads, err := strconv.Atoi(strings.TrimSuffix(threadPart, "t"))
	if err != nil || threads <= 0 {
		return Config{}, fmt.Errorf("config: %q: bad thread count", fields[0])
	}
	c := Config{Alg: alg, Threads: threads}
	if len(fields) == 1 {
		if c.Alg.IsHTM() {
			return Config{}, fmt.Errorf("config: %q: HTM label needs <policy>-<budget>", s)
		}
		return c, nil
	}
	if len(fields) > 2 || !c.Alg.IsHTM() {
		return Config{}, fmt.Errorf("config: %q: unexpected trailing fields", s)
	}
	polPart, budPart, ok := strings.Cut(fields[1], "-")
	if !ok {
		return Config{}, fmt.Errorf("config: %q: want <policy>-<budget>", fields[1])
	}
	switch strings.ToLower(polPart) {
	case "giveup":
		c.Policy = htm.PolicyGiveUp
	case "linear":
		c.Policy = htm.PolicyDecrease
	case "half":
		c.Policy = htm.PolicyHalve
	default:
		return Config{}, fmt.Errorf("config: unknown capacity policy %q", polPart)
	}
	c.Budget, err = strconv.Atoi(budPart)
	if err != nil || c.Budget <= 0 {
		return Config{}, fmt.Errorf("config: %q: bad retry budget", fields[1])
	}
	return c, nil
}

// ParseList parses a comma-separated list of configuration labels.
func ParseList(s string) ([]Config, error) {
	var out []Config
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		c, err := Parse(part)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("config: no configurations in %q", s)
	}
	return out, nil
}

// DefaultSpace returns the standard tuned configuration space for a machine
// with maxThreads worker slots (the columns of RecTM's Utility Matrix):
// every STM at power-of-two thread counts up to maxThreads (plus maxThreads
// itself when it is not a power of two), and HTM at the same thread counts
// crossed with retry budgets {2, 8} and capacity policies {GiveUp, Half}.
func DefaultSpace(maxThreads int) []Config {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	var threads []int
	for t := 1; t <= maxThreads; t *= 2 {
		threads = append(threads, t)
	}
	if last := threads[len(threads)-1]; last != maxThreads {
		threads = append(threads, maxThreads)
	}
	var out []Config
	for _, alg := range []AlgID{TL2, TinySTM, NOrec, SwissTM} {
		for _, t := range threads {
			out = append(out, Config{Alg: alg, Threads: t})
		}
	}
	for _, t := range threads {
		for _, b := range []int{2, 8} {
			for _, p := range []htm.CapacityPolicy{htm.PolicyGiveUp, htm.PolicyHalve} {
				out = append(out, Config{Alg: HTM, Threads: t, Budget: b, Policy: p})
			}
		}
	}
	return out
}
