package stm

import (
	"sync"

	"repro/internal/tm"
)

// GlobalLock is the single-global-lock "TM": every atomic block runs under
// one mutex with direct heap access. It is the sequential baseline of
// Figs. 8–9 (the paper's non-instrumented serial execution) and the simplest
// correct point in the design space.
type GlobalLock struct {
	mu sync.Mutex
}

// Name implements tm.Algorithm.
func (*GlobalLock) Name() string { return "gl" }

// Begin implements tm.Algorithm: take the lock.
func (g *GlobalLock) Begin(c *tm.Ctx) {
	g.mu.Lock()
	c.AbortReason = tm.AbortNone
}

// Load implements tm.Algorithm: direct read under the lock.
func (g *GlobalLock) Load(c *tm.Ctx, a tm.Addr) uint64 {
	return c.H.LoadWord(a)
}

// Store implements tm.Algorithm: direct in-place write under the lock.
func (g *GlobalLock) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	c.H.StoreWord(a, v)
}

// Commit implements tm.Algorithm: release the lock; never fails.
func (g *GlobalLock) Commit(c *tm.Ctx) bool {
	g.mu.Unlock()
	return true
}

// Abort implements tm.Algorithm. Global-lock transactions cannot abort
// through the TM, but an explicit Retry by the programmer still unwinds
// here, so the lock must be released. In-place writes are NOT rolled back;
// explicit retry under GlobalLock is therefore disallowed by PolyTM.
func (g *GlobalLock) Abort(c *tm.Ctx) {
	g.mu.Unlock()
}
