package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/config"
)

// marshalResults renders records exactly as `proteusbench run` does.
func marshalResults(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestDeterministicRunIsByteIdentical pins the harness's core guarantee
// (and the PR's acceptance criterion): the same spec produces byte-
// identical result records on every invocation.
func TestDeterministicRunIsByteIdentical(t *testing.T) {
	spec := RunSpec{
		Scenario:   "rbtree",
		Params:     Values{"keyrange": "512"},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs: []config.Config{
			{Alg: config.TL2, Threads: 4},
			{Alg: config.HTM, Threads: 2, Budget: 4},
		},
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("two runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	r := a[0]
	if r.Ops != spec.Ops {
		t.Errorf("ops = %d, want %d", r.Ops, spec.Ops)
	}
	if r.Commits == 0 || r.Throughput == 0 || r.ElapsedSec == 0 {
		t.Errorf("empty measurement: %+v", r)
	}
	if len(r.Samples) != 10 {
		t.Errorf("got %d samples, want 10", len(r.Samples))
	}
	if len(r.Trace) != 1 || r.Trace[0].Event != "initial" {
		t.Errorf("fixed-config trace = %+v", r.Trace)
	}
}

// TestDeterministicSeedsDiffer guards against the harness ignoring the
// seed: different seeds must produce different operation streams.
func TestDeterministicSeedsDiffer(t *testing.T) {
	spec := RunSpec{
		Scenario:   "rbtree",
		Params:     Values{"keyrange": "512", "update": "0.5"},
		MaxThreads: 2,
		HeapWords:  1 << 20,
		Ops:        2000,
	}
	spec.Seed = 1
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 2
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].HeapDigest == b[0].HeapDigest {
		t.Errorf("seeds 1 and 2 produced the same heap digest %s", a[0].HeapDigest)
	}
}

// TestAutoTunedRunIsDeterministic runs the full monitor/explore/install
// loop under virtual time twice and requires identical exploration traces.
func TestAutoTunedRunIsDeterministic(t *testing.T) {
	spec := RunSpec{
		Scenario:   "hashmap",
		Params:     Values{"buckets": "128", "keyrange": "1024"},
		Seed:       7,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        8000,
		AutoTune:   true,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("auto-tuned runs differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	r := a[0]
	if r.Phases < 1 {
		t.Errorf("phases = %d, want >= 1 (startup optimization)", r.Phases)
	}
	var explored, installed int
	for _, e := range r.Trace {
		switch e.Event {
		case "explore":
			explored++
		case "install":
			installed++
		}
	}
	if explored == 0 || installed == 0 {
		t.Errorf("trace has %d explore / %d install events: %+v", explored, installed, r.Trace)
	}
	if r.FinalConfig == "" {
		t.Error("no final config recorded")
	}
}

// TestTimedRunProducesRealThroughput smoke-tests timed mode (short
// window; values are wall-clock so only sanity is checked).
func TestTimedRunProducesRealThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timed mode sleeps")
	}
	res, err := Run(RunSpec{
		Scenario:   "hashmap",
		Params:     Values{"buckets": "128", "keyrange": "1024"},
		Seed:       3,
		MaxThreads: 2,
		HeapWords:  1 << 20,
		Duration:   50 * time.Millisecond,
		Configs:    []config.Config{{Alg: config.NOrec, Threads: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Mode != Timed {
		t.Fatalf("mode = %s", res[0].Mode)
	}
	if res[0].Ops == 0 || res[0].Throughput == 0 {
		t.Errorf("timed run measured nothing: %+v", res[0])
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if _, err := Run(RunSpec{Scenario: "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Run(RunSpec{Scenario: "rbtree", Params: Values{"bogus": "1"}}); err == nil {
		t.Error("bogus parameter accepted")
	}
	if _, err := Run(RunSpec{
		Scenario: "rbtree", MaxThreads: 2,
		Configs: []config.Config{{Alg: config.TL2, Threads: 8}},
	}); err == nil {
		t.Error("config exceeding MaxThreads accepted")
	}
}
