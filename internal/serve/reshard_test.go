package serve

// Live-resharding battery: the split-and-migrate step driven end to end —
// plan shape and deque clamping, the admin surface, full-space key
// preservation across a split, and the centerpiece: linearizability of
// concurrent traffic racing a live split under both fence granularities
// and both injected migrator crashes.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestClampPlanForDeque pins the deque guard's three arms: a moved span
// reaching into the reserved window is trimmed (the window stays with the
// donor via a tail span), a span entirely inside it is rejected, and a
// span below it passes through untouched.
func TestClampPlanForDeque(t *testing.T) {
	// A single-shard range partitioner's only span runs to 2^64-1, so its
	// split plan always reaches the reserved window — the clamp's
	// mainline.
	rp := shard.NewRange(1, 16384)
	plan, ok := rp.PlanSplitHeaviest([]uint64{10})
	if !ok {
		t.Fatal("single-shard plan unexpectedly declined")
	}
	if plan.MovedHi != ^uint64(0) {
		t.Fatalf("top-span plan MovedHi = %d, want 2^64-1", plan.MovedHi)
	}
	clamped, err := clampPlanForDeque(plan)
	if err != nil {
		t.Fatalf("clamp rejected a top-span plan: %v", err)
	}
	if clamped.MovedHi != DequeReservedLo-1 {
		t.Fatalf("clamped MovedHi = %d, want %d", clamped.MovedHi, uint64(DequeReservedLo-1))
	}
	if got := clamped.Grown.Owner(DequeReservedLo); got != plan.Donor {
		t.Fatalf("reserved-window bottom owned by shard %d after clamp, want donor %d", got, plan.Donor)
	}
	if got := clamped.Grown.Owner(^uint64(0)); got != plan.Donor {
		t.Fatalf("reserved-window top owned by shard %d after clamp, want donor %d", got, plan.Donor)
	}
	if got := clamped.Grown.Owner(clamped.MovedLo); got != plan.NewShard {
		t.Fatalf("moved span owned by shard %d after clamp, want %d", got, plan.NewShard)
	}

	// A plan entirely inside the reserved window must be rejected, not
	// clamped into a degenerate span.
	inside := shard.SplitPlan{Donor: 0, NewShard: 1, MovedLo: DequeReservedLo + 1, MovedHi: ^uint64(0)}
	if _, err := clampPlanForDeque(inside); err == nil {
		t.Fatal("plan inside the deque-reserved window was not rejected")
	}

	// A plan strictly below the window passes through unchanged.
	rp4 := shard.NewRange(4, 16384)
	below, ok := rp4.PlanSplitHeaviest([]uint64{9, 1, 1, 1})
	if !ok {
		t.Fatal("4-shard plan unexpectedly declined")
	}
	got, err := clampPlanForDeque(below)
	if err != nil {
		t.Fatalf("clamp rejected a below-window plan: %v", err)
	}
	if got.MovedLo != below.MovedLo || got.MovedHi != below.MovedHi || got.Grown != below.Grown {
		t.Fatalf("below-window plan was altered: %+v -> %+v", below, got)
	}
}

// TestReshardAdminSurface pins the endpoint contract: POST-only, 400 on a
// non-range partitioner, and the explicit applied=false no-op on zero
// load.
func TestReshardAdminSurface(t *testing.T) {
	hash := newTestServer(t, Options{Shards: 2, Workers: 2})
	res, code := hash.Reshard()
	if code != http.StatusBadRequest || !strings.Contains(res.Err, "range partitioner") {
		t.Fatalf("reshard on hash partitioner = %d %+v, want 400", code, res)
	}

	s := newTestServer(t, Options{Shards: 2, Workers: 2, Partitioner: shard.KindRange})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/admin/reshard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reshard = %d, want 405", resp.StatusCode)
	}

	// Zero load: the planner declines and the server reports the no-op
	// instead of installing a degenerate plan (satellite: SplitHeaviest
	// callers must handle ok=false).
	res, code = s.Reshard()
	if code != http.StatusOK || res.Applied || res.Reason == "" {
		t.Fatalf("zero-load reshard = %d %+v, want applied=false with a reason", code, res)
	}
	if got := s.part().Shards(); got != 2 {
		t.Fatalf("no-op reshard changed the placement to %d shards", got)
	}
	if got := s.place.Epoch(); got != 0 {
		t.Fatalf("no-op reshard moved the placement epoch to %d", got)
	}
}

// TestReshardMigratesSpan is the mainline: a preloaded 4-shard range
// daemon splits its hottest shard live; every key keeps its value, the
// moved span lands on the new shard, and the observables line up.
func TestReshardMigratesSpan(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 4, Workers: 2, Partitioner: shard.KindRange, Preload: 8192,
	})
	// Make shard 0 the unambiguous hotspot. With 4 even spans over the
	// 16384-key universe, shard 0's span is [0, 4096) and the split moves
	// [2048, 4095] to the new shard 4.
	s.fleet()[0].routed.Add(10_000)

	res, code := s.Reshard()
	if code != http.StatusOK || !res.Applied {
		t.Fatalf("reshard = %d %+v", code, res)
	}
	if res.Donor != 0 || res.NewShard != 4 || res.MovedLo != 2048 || res.MovedHi != 4095 {
		t.Fatalf("unexpected plan: %+v", res)
	}
	if res.KeysMigrated != 2048 {
		t.Fatalf("keys_migrated = %d, want 2048 (preloaded span population)", res.KeysMigrated)
	}
	if res.Epoch != 1 || s.place.Epoch() != 1 {
		t.Fatalf("placement epoch = %d/%d, want 1", res.Epoch, s.place.Epoch())
	}
	if got := s.part().Owner(3000); got != 4 {
		t.Fatalf("moved key 3000 owned by shard %d, want 4", got)
	}
	if got := s.part().Owner(1000); got != 0 {
		t.Fatalf("retained key 1000 owned by shard %d, want donor 0", got)
	}
	waitUntil(t, 2*time.Second, "fences free after reshard", func() bool { return fencesFree(s) })

	// Every preloaded key must still read its value through the normal
	// routed path — donor-retained, moved, and untouched shards alike.
	for _, k := range []uint64{0, 1000, 2047, 2048, 3000, 4095, 4096, 8000, 8191} {
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK || !resp.Found || resp.Val != k {
			t.Fatalf("post-reshard get(%d) = %d %+v", k, code, resp)
		}
	}
	// The donor must have dropped the moved span: a range scan over the
	// whole preload counts each key exactly once.
	resp, code := s.submitCross(&request{op: opRange, lo: 0, hi: 8191})
	if code != http.StatusOK || resp.Count != 8192 {
		t.Fatalf("post-reshard full scan = %d %+v, want count 8192", code, resp)
	}

	st := s.StatusSnapshot()
	if st.Server.Shards != 5 || st.Server.PartitionerEpoch != 1 || st.Server.Resharding {
		t.Fatalf("statusz after reshard: %+v", st.Server)
	}
	if len(st.Server.SpanStarts) != 5 || len(st.Server.SpanOwners) != 5 {
		t.Fatalf("span table after reshard: starts=%v owners=%v, want 5 spans", st.Server.SpanStarts, st.Server.SpanOwners)
	}
	if st.Ops.Reshards != 1 || st.Ops.KeysMigrated != 2048 {
		t.Fatalf("ops counters after reshard: reshards=%d keys_migrated=%d", st.Ops.Reshards, st.Ops.KeysMigrated)
	}
	for _, sh := range st.Shards {
		if sh.FenceHeld {
			t.Fatalf("shard %d fence still held after reshard", sh.Index)
		}
	}

	// A second split keeps working (the epoch keeps advancing), and the
	// deque — pinned to shard 0 — stays fully functional throughout.
	s.fleet()[1].routed.Add(50_000)
	res2, code := s.Reshard()
	if code != http.StatusOK || !res2.Applied || res2.Epoch != 2 {
		t.Fatalf("second reshard = %d %+v", code, res2)
	}
	if resp, code := s.submit(s.shardFor(&request{op: opRPush, val: 77}), &request{op: opRPush, val: 77}); code != http.StatusOK || !resp.Applied {
		t.Fatalf("rpush after two reshards = %d %+v", code, resp)
	}
	if resp, code := s.submit(s.shardFor(&request{op: opLPop}), &request{op: opLPop}); code != http.StatusOK || !resp.Found || resp.Val != 77 {
		t.Fatalf("lpop after two reshards = %d %+v", code, resp)
	}
}

// TestReshardPreservesDeque pins the deque guard end to end: splitting a
// single-shard daemon necessarily plans the top span, the clamp trims the
// moved interval below the reserved window, and the deque's contents
// survive the migration bit-for-bit.
func TestReshardPreservesDeque(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, Workers: 2, Partitioner: shard.KindRange, Preload: 256})
	for _, v := range []uint64{11, 22, 33} {
		if resp, code := s.submit(s.shardFor(&request{op: opRPush, val: v}), &request{op: opRPush, val: v}); code != http.StatusOK || !resp.Applied {
			t.Fatalf("rpush(%d) = %d %+v", v, code, resp)
		}
	}
	s.fleet()[0].routed.Add(5_000)

	res, code := s.Reshard()
	if code != http.StatusOK || !res.Applied {
		t.Fatalf("reshard = %d %+v", code, res)
	}
	if res.MovedHi != DequeReservedLo-1 {
		t.Fatalf("moved_hi = %d, want clamped to %d (deque-reserved window intact)", res.MovedHi, uint64(DequeReservedLo-1))
	}
	if got := s.part().Owner(DequeReservedLo); got != dequeHome {
		t.Fatalf("deque-reserved window owned by shard %d after reshard, want %d", got, dequeHome)
	}
	if resp, code := s.submit(s.shardFor(&request{op: opLLen}), &request{op: opLLen}); code != http.StatusOK || resp.Len != 3 {
		t.Fatalf("deque len after reshard = %d %+v, want 3", code, resp)
	}
	for _, want := range []uint64{11, 22, 33} {
		resp, code := s.submit(s.shardFor(&request{op: opLPop}), &request{op: opLPop})
		if code != http.StatusOK || !resp.Found || resp.Val != want {
			t.Fatalf("lpop after reshard = %d %+v, want %d", code, resp, want)
		}
	}
}

// TestAutosplit pins the background trigger: once the hottest shard's
// routed share crosses the threshold, the daemon splits it without an
// admin call — and stops at the shard-count ceiling.
func TestAutosplit(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 2, Workers: 2, Partitioner: shard.KindRange, Preload: 1024,
		AutosplitShare: 0.6, AutosplitMaxShards: 3, AutosplitInterval: 20 * time.Millisecond,
	})
	s.fleet()[0].routed.Add(10_000)
	waitUntil(t, 5*time.Second, "autosplit to install a split", func() bool { return s.part().Shards() == 3 })
	if got := s.place.Epoch(); got != 1 {
		t.Fatalf("placement epoch after autosplit = %d, want 1", got)
	}
	// The ceiling holds even though shard 0's share is still dominant.
	time.Sleep(100 * time.Millisecond)
	if got := s.part().Shards(); got != 3 {
		t.Fatalf("autosplit overshot the ceiling: %d shards", got)
	}
	waitUntil(t, 2*time.Second, "fences free after autosplit", func() bool { return fencesFree(s) })
	for _, k := range []uint64{0, 500, 1023} {
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK || !resp.Found || resp.Val != k {
			t.Fatalf("post-autosplit get(%d) = %d %+v", k, code, resp)
		}
	}
}

// TestReshardLinearizability is the battery's centerpiece: concurrent
// gets/puts/cross-shard mputs/range scans race a live split — under both
// fence granularities and, in the crash legs, with the migrator killed
// donor-side mid-copy or after install just before the flip (rolled back
// by the failure detector, then retried to completion). The committed
// history plus a full post-quiescence key sweep must admit a sequential
// witness: no lost, torn or double-visible key, ever.
func TestReshardLinearizability(t *testing.T) {
	for _, leg := range []struct{ name, fault string }{
		{"clean", ""},
		{"donor-crash", "reshard-donor-crash@count=1"},
		{"install-crash", "reshard-install-crash@count=1"},
	} {
		t.Run(leg.name, func(t *testing.T) {
			forEachGranularity(t, func(t *testing.T, granularity string) {
				testReshardLinearizability(t, granularity, leg.fault)
			})
		})
	}
}

func testReshardLinearizability(t *testing.T, granularity string, faultSpec string) {
	opts := Options{
		Shards: 3, Workers: 2, HeapWords: 1 << 16,
		Partitioner: shard.KindRange, FenceGranularity: granularity,
		CrossRetries:  512, // ride out fences held across a recovery window
		FenceDeadline: 80 * time.Millisecond,
	}
	if faultSpec != "" {
		opts.Fault = mustFault(t, faultSpec, 1)
	}
	s := newTestServer(t, opts)
	// Shard 0 is the forced hotspot: its span [0, 5461) splits at 2730,
	// so keys 3000/4000 migrate while 1 stays put; 6000 and 11000 pin
	// shards 1 and 2 as cross-shard participants throughout.
	s.fleet()[0].routed.Add(10_000)
	keys := []uint64{1, 3000, 4000, 6000, 11000}

	base := time.Now()
	rec := &linRecorder{}
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := uint64(c*29 + 5)
			next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return (rng >> 33) % n }
			for i := 0; i < 6; i++ {
				k := keys[next(uint64(len(keys)))]
				v := uint64(c*1000 + i + 1)
				op := shard.Op{Invoke: int64(time.Since(base))}
				var resp response
				var code int
				switch next(4) {
				case 0:
					op.Kind = shard.OpGet
					op.Keys = []uint64{k}
					resp, code = s.submitRouted(&request{op: opGet, key: k})
					op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Found}
				case 1:
					op.Kind = shard.OpPut
					op.Keys, op.Args = []uint64{k}, []uint64{v}
					resp, code = s.submitRouted(&request{op: opPut, key: k, val: v})
					op.Oks = []bool{resp.Existed}
				case 2:
					op.Kind = shard.OpMPut
					op.Keys = append([]uint64{}, keys[:3]...)
					op.Args = []uint64{v, v, v}
					resp, code = s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
				default:
					op.Kind = shard.OpRange
					op.Keys = []uint64{0, 12000}
					resp, code = s.submitCross(&request{op: opRange, lo: 0, hi: 12000})
					op.Vals = []uint64{resp.Count, resp.Sum}
				}
				op.Return = int64(time.Since(base))
				if code != http.StatusOK {
					t.Errorf("client %d op %d: HTTP %d %+v", c, i, code, resp)
					return
				}
				rec.record(op)
				time.Sleep(time.Duration(next(3)) * time.Millisecond)
			}
		}(c)
	}

	// The split lands mid-traffic. In the crash legs the first attempt is
	// killed by the injector and rolled back by the failure detector, and
	// the retry — against the already-grown fleet, reusing the spare
	// shard — must complete.
	time.Sleep(5 * time.Millisecond)
	res, code := s.Reshard()
	if faultSpec == "" {
		if code != http.StatusOK || !res.Applied {
			t.Fatalf("reshard = %d %+v", code, res)
		}
	} else {
		if code != http.StatusServiceUnavailable || res.Applied || !strings.Contains(res.Err, "injected fault") {
			t.Fatalf("faulted reshard = %d %+v, want 503 with the injected-fault error", code, res)
		}
		waitUntil(t, 5*time.Second, "fence recovery after migrator crash", func() bool { return fencesFree(s) })
		res, code = s.Reshard()
		if code != http.StatusOK || !res.Applied {
			t.Fatalf("reshard retry after rollback = %d %+v", code, res)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := s.part().Shards(); got != 4 {
		t.Fatalf("placement has %d shards after the split, want 4", got)
	}

	// Post-quiescence sweep: one recorded get per key. A lost or torn key
	// shows up as a history no sequential witness can explain.
	for _, k := range keys {
		op := shard.Op{Kind: shard.OpGet, Keys: []uint64{k}, Invoke: int64(time.Since(base))}
		resp, code := s.submitRouted(&request{op: opGet, key: k})
		if code != http.StatusOK {
			t.Fatalf("sweep get(%d) = %d %+v", k, code, resp)
		}
		op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Found}
		op.Return = int64(time.Since(base))
		rec.record(op)
	}
	if _, ok := shard.Linearize(rec.ops); !ok {
		t.Fatalf("history of %d ops racing a live split admits no sequential witness: %+v", len(rec.ops), rec.ops)
	}

	// Quiescence: no fence held anywhere, the resharding gauge clear.
	waitUntil(t, 2*time.Second, "fences free after the split", func() bool { return fencesFree(s) })
	if s.resharding.Load() {
		t.Fatal("resharding gauge still set after the split completed")
	}
	st := s.StatusSnapshot()
	if st.Server.Resharding || st.Server.PartitionerEpoch == 0 {
		t.Fatalf("statusz after split: %+v", st.Server)
	}
	for _, sh := range st.Shards {
		if sh.FenceHeld {
			t.Fatalf("shard %d fence_held still true after the split", sh.Index)
		}
	}
}
