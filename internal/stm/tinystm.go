package stm

import "repro/internal/tm"

// TinySTM is the word-based STM of Felber, Fetzer and Riegel (PPoPP 2008):
// encounter-time locking with a write-back redo log and timestamp extension.
// A transaction locks each stripe at its first write, so write-write
// conflicts surface immediately; reads are invisible but may *extend* the
// read snapshot instead of aborting when they meet a version newer than the
// snapshot, which makes TinySTM markedly stronger than TL2 on long
// read-dominated transactions.
type TinySTM struct{}

// Name implements tm.Algorithm.
func (TinySTM) Name() string { return "tiny" }

// Begin implements tm.Algorithm.
func (TinySTM) Begin(c *tm.Ctx) {
	c.ResetSets()
	c.RV = c.H.Clock()
	c.AbortReason = tm.AbortNone
}

// Load implements tm.Algorithm. Reads from stripes this transaction has
// locked are served from the redo log; otherwise the read validates against
// the snapshot, attempting timestamp extension on failure.
func (t TinySTM) Load(c *tm.Ctx, a tm.Addr) uint64 {
	h := c.H
	s := h.Stripe(a)
	for {
		pre := h.OrecLoad(s)
		if owner, locked := tm.OrecLocked(pre); locked {
			if owner == c.ID {
				if v, ok := c.WS.Get(a); ok {
					return v
				}
				// Stripe locked by us for a different word:
				// the in-place value is protected by our lock.
				return h.LoadWord(a)
			}
			c.Retry(tm.AbortConflict)
		}
		ver := tm.OrecVersion(pre)
		if ver > c.RV {
			// Timestamp extension: if every prior read is still
			// valid we can slide the snapshot forward.
			if !extendSnapshot(c) {
				c.Retry(tm.AbortConflict)
			}
			continue
		}
		v := h.LoadWord(a)
		if h.OrecLoad(s) != pre {
			continue // raced with a writer; resample
		}
		c.RS.Add(s, ver)
		return v
	}
}

// Store implements tm.Algorithm: acquire the stripe lock encounter-time,
// then buffer the write.
func (t TinySTM) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	h := c.H
	s := h.Stripe(a)
	mine := tm.OrecLockedBy(c.ID)
	for {
		cur := h.OrecLoad(s)
		if owner, locked := tm.OrecLocked(cur); locked {
			if owner == c.ID {
				c.WS.Put(a, v)
				return
			}
			// Encounter-time conflict: suicide contention
			// management with backoff (the policy TinySTM ships
			// by default).
			c.Retry(tm.AbortConflict)
		}
		if tm.OrecVersion(cur) > c.RV {
			if !extendSnapshot(c) {
				c.Retry(tm.AbortConflict)
			}
			continue
		}
		if h.OrecCAS(s, cur, mine) {
			c.Locked.Add(s, cur)
			c.WS.Put(a, v)
			return
		}
	}
}

// Commit implements tm.Algorithm: writers bump the clock, validate if any
// concurrent commit interleaved, publish the redo log, and release their
// locks at the new version.
func (TinySTM) Commit(c *tm.Ctx) bool {
	if c.WS.Len() == 0 {
		return true
	}
	h := c.H
	wv := h.ClockAdd(1)
	if wv != c.RV+1 && !validateReadSet(c) {
		c.AbortReason = tm.AbortConflict
		return false
	}
	for _, e := range c.WS.Entries() {
		h.StoreWord(e.Addr, e.Val)
	}
	unlocked := tm.OrecUnlocked(wv)
	for _, le := range c.Locked.Entries() {
		h.OrecStore(le.Stripe, unlocked)
	}
	c.Locked.Reset()
	return true
}

// Abort implements tm.Algorithm: restore the pre-lock record values of every
// encounter-locked stripe.
func (TinySTM) Abort(c *tm.Ctx) {
	releaseLockedStripes(c)
}

// extendSnapshot attempts TinySTM's timestamp extension: re-sample the clock
// and revalidate the read set; on success the transaction's snapshot moves
// forward and the pending access can be retried.
func extendSnapshot(c *tm.Ctx) bool {
	now := c.H.Clock()
	if !validateReadSet(c) {
		return false
	}
	c.RV = now
	return true
}
