// Package workloads provides the TM applications of the paper's evaluation
// (Table 1), ported to the transactional heap: the four concurrent data
// structures, eight STAMP-like kernels, an STMBench7-style object graph,
// TPC-C-lite, and Memcached-lite, plus a load driver and the resource
// antagonists used by the Fig. 9 experiment.
//
// Applications program against tm.Txn only, so the same workload code runs
// under any TM backend or under PolyTM's adaptive dispatch.
package workloads

import (
	"sync/atomic"

	"repro/internal/stm"
	"repro/internal/tm"
)

// seqAlg returns the algorithm used for single-threaded setup transactions.
func seqAlg() tm.Algorithm { return &stm.GlobalLock{} }

// Runner executes atomic blocks on behalf of a worker thread. It is
// implemented by polytm.Pool (adaptive dispatch) and by BareRunner (one
// fixed algorithm, used to measure PolyTM's dispatch overhead).
type Runner interface {
	Atomic(self int, fn func(tm.Txn))
}

// BareRunner runs every atomic block under one fixed TM algorithm with no
// PolyTM dispatch — the "bare TM" baseline of Table 4.
type BareRunner struct {
	Alg  tm.Algorithm
	Ctxs []*tm.Ctx
}

// NewBareRunner builds a bare runner with one context per worker slot.
func NewBareRunner(alg tm.Algorithm, h *tm.Heap, maxThreads int) *BareRunner {
	ctxs := make([]*tm.Ctx, maxThreads)
	for i := range ctxs {
		ctxs[i] = tm.NewCtx(i, h)
	}
	return &BareRunner{Alg: alg, Ctxs: ctxs}
}

// Atomic implements Runner.
func (b *BareRunner) Atomic(self int, fn func(tm.Txn)) {
	tm.Run(b.Alg, b.Ctxs[self], fn)
}

// Workload is one TM application.
type Workload interface {
	// Name is the application identifier.
	Name() string
	// Setup initializes the application state in the heap. It runs with
	// no concurrent transactions.
	Setup(h *tm.Heap, rng *Rand) error
	// Op performs one application operation (one or more atomic blocks)
	// on behalf of worker slot self.
	Op(r Runner, self int, rng *Rand)
}

// Verifier is optionally implemented by workloads that can check a
// semantic invariant over the heap after a run (with no transactions in
// flight). The scenario harness calls it after every run and fails the
// run on violation — a live correctness check on whichever TM backend
// executed the operations.
type Verifier interface {
	Verify(h *tm.Heap) error
}

// Metered is optionally implemented by workloads that count semantic
// events beyond the TM statistics — e.g. the fence counts and scan
// locality of the partitioned service workloads. The scenario harness
// copies the counters into the result record after the run (with no
// operations in flight), so in deterministic mode they are byte-stable
// across runs and diffable across workload variants.
type Metered interface {
	Metrics() map[string]uint64
}

// Rated is optionally implemented by workloads that model an open-loop
// client population: OfferedRate reports the offered load in operations
// per second as a pure function of the global operation count n, so the
// curve is deterministic for a fixed spec. The scenario harness's serving
// model caps the delivered KPI at the offered rate — whenever the
// installed configuration has capacity headroom, the KPI tracks the rate
// curve rather than the store, which is what lets a diurnal traffic shape
// drive the change monitor directly.
type Rated interface {
	Workload
	OfferedRate(n uint64) float64
}

// Rand is a tiny deterministic xorshift64* generator; each worker owns one.
type Rand struct{ s uint64 }

// NewRand seeds a generator (zero is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Spin burns roughly n abstract work units of CPU outside the TM (the
// non-transactional part of an operation).
func Spin(n int) {
	acc := uint64(1)
	for i := 0; i < n*8; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink.Store(acc)
}

var spinSink atomic.Uint64
