// Package proteustm is the public API of the ProteusTM reproduction: a
// transactional-memory runtime that hides a library of TM implementations
// (TL2, TinySTM, NOrec, SwissTM, simulated best-effort HTM, hybrids, global
// lock) behind one atomic-block interface and self-tunes the TM algorithm,
// the parallelism degree, and the HTM contention management to the running
// workload, following Didona et al., "ProteusTM: Abstraction Meets
// Performance in Transactional Memory" (ASPLOS 2016).
//
// # Programming model
//
// Applications allocate 64-bit words from a transactional heap and access
// them inside atomic blocks:
//
//	sys, _ := proteustm.Open(proteustm.WithWorkers(8))
//	defer sys.Close()
//	counter := sys.MustAlloc(1)
//	sys.Spawn(func(w *proteustm.Worker) {
//		for i := 0; i < 1000; i++ {
//			w.Atomic(func(tx proteustm.Txn) {
//				tx.Store(counter, tx.Load(counter)+1)
//			})
//		}
//	})
//	sys.Wait()
//
// With auto-tuning enabled (WithAutoTuning), an adapter thread explores
// configurations with Bayesian optimization over a collaborative-filtering
// performance predictor and installs the best one, re-optimizing whenever
// the monitor detects a workload change.
package proteustm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/scenario"
	"repro/internal/tm"
)

// Txn is the transactional access handle passed to atomic blocks.
type Txn = tm.Txn

// Addr addresses one 64-bit word of the transactional heap.
type Addr = tm.Addr

// NilAddr is the heap's null pointer.
const NilAddr = tm.NilAddr

// Config is one tuning-space point: TM algorithm, thread count, HTM
// contention management.
type Config = config.Config

// Algorithm identifiers re-exported for manual configuration.
const (
	TL2        = config.TL2
	TinySTM    = config.TinySTM
	NOrec      = config.NOrec
	SwissTM    = config.SwissTM
	HTM        = config.HTM
	Hybrid     = config.Hybrid
	GlobalLock = config.GlobalLock
)

// Stats are cumulative transaction statistics.
type Stats = tm.Stats

// Heap is the word-addressed transactional heap backing a System. Most
// applications only need Alloc/Load/Store on System; data-structure
// libraries (node pools, the internal/workloads containers) take a *Heap
// directly.
type Heap = tm.Heap

// TimelinePoint is one KPI observation recorded by the auto-tuning
// adapter thread: when it was taken, the KPI value, the configuration
// installed at the time, and whether the sample was part of an
// exploration phase.
type TimelinePoint = core.TimelinePoint

// ReconfigEvent records one completed optimization phase: the
// configuration installed, the one it replaced, the trigger ("startup",
// "monitor-alarm", "forced" or "sync") and the 1-based phase number.
type ReconfigEvent = core.ReconfigEvent

// Option configures Open.
type Option func(*options)

type options struct {
	heapWords    int
	workers      int
	autoTune     bool
	energyKPI    bool
	seed         uint64
	configs      []Config
	trainKPI     *cf.Matrix
	initial      *Config
	maxExplore   int
	samplePeriod time.Duration
	sloP99       time.Duration
	latencyP99   func() float64
	opsSource    func() uint64
}

// WithHeapWords sizes the transactional heap (default 1<<22 words = 32 MiB).
func WithHeapWords(n int) Option { return func(o *options) { o.heapWords = n } }

// WithWorkers sets the number of worker slots (default 8).
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithAutoTuning enables the RecTM adapter thread.
func WithAutoTuning() Option { return func(o *options) { o.autoTune = true } }

// WithEnergyKPI optimizes throughput-per-Joule instead of raw throughput.
func WithEnergyKPI() Option { return func(o *options) { o.energyKPI = true } }

// WithSLO optimizes throughput *subject to* a p99 latency target instead of
// raw throughput (core.ThroughputUnderSLO): KPI windows whose observed p99 —
// supplied in milliseconds by latencyP99, typically wired to a serving
// layer's request-latency reservoir — exceed the target are penalized
// quadratically in the overshoot, so the tuner prefers the fastest
// configuration that still meets the SLO. A nil latencyP99 or non-positive
// target degrades to plain throughput tuning. Takes precedence over
// WithEnergyKPI.
func WithSLO(p99Target time.Duration, latencyP99 func() float64) Option {
	return func(o *options) {
		o.sloP99 = p99Target
		o.latencyP99 = latencyP99
	}
}

// WithOpsKPI makes KPI windows count service-level operations instead of
// raw TM commits: source must be a monotonic counter of completed
// operations. Serving layers that coalesce many operations into one
// transaction (group commit) need this — with it, the monitor and tuner
// see the throughput the service actually delivers, instead of a commit
// rate that shrinks and jitters with the coalescing batch size.
func WithOpsKPI(source func() uint64) Option {
	return func(o *options) { o.opsSource = source }
}

// WithSeed fixes the random seed of the tuning machinery.
func WithSeed(s uint64) Option { return func(o *options) { o.seed = s } }

// WithConfigs overrides the tuned configuration space.
func WithConfigs(cfgs []Config) Option { return func(o *options) { o.configs = cfgs } }

// WithInitialConfig pins the starting configuration (default: the
// recommender's reference configuration).
func WithInitialConfig(c Config) Option { return func(o *options) { o.initial = &c } }

// WithMaxExplorations bounds each online exploration phase.
func WithMaxExplorations(n int) Option { return func(o *options) { o.maxExplore = n } }

// WithSamplePeriod sets the auto-tuner's KPI sampling period (default
// 100 ms; the paper uses 1 s). Shorter periods react to workload shifts
// faster at the cost of noisier KPI windows and more frequent statistics
// snapshots.
func WithSamplePeriod(d time.Duration) Option { return func(o *options) { o.samplePeriod = d } }

// WithTrainingMatrix supplies an offline training Utility Matrix (rows:
// workloads, columns aligned with the configuration space, entries: KPI).
// Without it, a synthetic training matrix from the built-in performance
// model is used.
func WithTrainingMatrix(m [][]float64) Option {
	return func(o *options) {
		rows, err := cf.FromRows(m)
		if err == nil {
			o.trainKPI = rows
		}
	}
}

// System is a ProteusTM instance.
type System struct {
	rt      *core.Runtime
	cfgs    []Config
	workers int
	tuning  bool

	mu      sync.Mutex
	nextID  int
	pending sync.WaitGroup
}

// Worker is a registered application thread with a PolyTM slot.
type Worker struct {
	sys *System
	// ID is the worker's PolyTM thread slot.
	ID int
}

// Atomic executes fn as a serializable transaction, retrying until commit.
func (w *Worker) Atomic(fn func(Txn)) { w.sys.rt.Atomic(w.ID, fn) }

// Open creates a ProteusTM system.
func Open(opts ...Option) (*System, error) {
	o := options{heapWords: 1 << 22, workers: 8, seed: 42, maxExplore: 10}
	for _, fn := range opts {
		fn(&o)
	}
	if o.workers <= 0 {
		return nil, fmt.Errorf("proteustm: workers must be positive")
	}
	cfgs := o.configs
	if len(cfgs) == 0 {
		cfgs = DefaultConfigs(o.workers)
	}
	train := o.trainKPI
	if train == nil {
		train = SyntheticTraining(cfgs, 60, o.seed)
	}
	kpi := core.Throughput
	if o.energyKPI {
		kpi = core.ThroughputPerJoule
	}
	var sloMs float64
	if o.sloP99 > 0 && o.latencyP99 != nil {
		kpi = core.ThroughputUnderSLO
		sloMs = float64(o.sloP99) / float64(time.Millisecond)
	}
	rt, err := core.New(core.Options{
		HeapWords:       o.heapWords,
		MaxThreads:      o.workers,
		Configs:         cfgs,
		TrainKPI:        train,
		KPI:             kpi,
		Energy:          energy.NewModel(18, 6.5),
		SLOTargetMs:     sloMs,
		LatencyP99:      o.latencyP99,
		OpsSource:       o.opsSource,
		Seed:            o.seed,
		MaxExplorations: o.maxExplore,
		SamplePeriod:    o.samplePeriod,
	})
	if err != nil {
		return nil, err
	}
	if o.initial != nil {
		if err := rt.Pool.Reconfigure(*o.initial); err != nil {
			return nil, err
		}
	}
	s := &System{rt: rt, cfgs: cfgs, workers: o.workers}
	if o.autoTune {
		rt.Start()
		s.tuning = true
	}
	return s, nil
}

// Alloc reserves n consecutive heap words.
func (s *System) Alloc(n int) (Addr, error) { return s.rt.Heap().Alloc(n) }

// Heap exposes the transactional heap, for data-structure libraries that
// allocate node pools directly. Application code normally sticks to
// Alloc/MustAlloc plus transactional Load/Store.
func (s *System) Heap() *Heap { return s.rt.Heap() }

// Workers returns the number of worker slots the system was opened with.
func (s *System) Workers() int { return s.workers }

// AutoTuning reports whether the adapter thread is running.
func (s *System) AutoTuning() bool { return s.tuning }

// MustAlloc reserves n words, panicking on heap exhaustion.
func (s *System) MustAlloc(n int) Addr { return s.rt.Heap().MustAlloc(n) }

// Load reads a heap word outside any transaction (setup/validation only).
func (s *System) Load(a Addr) uint64 { return s.rt.Heap().LoadWord(a) }

// Store writes a heap word outside any transaction (setup only).
func (s *System) Store(a Addr, v uint64) { s.rt.Heap().StoreWord(a, v) }

// Worker registers (or reuses) the worker slot with the given index.
func (s *System) Worker(id int) (*Worker, error) {
	if id < 0 || id >= s.workers {
		return nil, fmt.Errorf("proteustm: worker id %d out of range [0,%d)", id, s.workers)
	}
	return &Worker{sys: s, ID: id}, nil
}

// Spawn runs body on the next free worker slot in a new goroutine. Use Wait
// to join all spawned workers.
func (s *System) Spawn(body func(w *Worker)) error {
	s.mu.Lock()
	id := s.nextID
	if id >= s.workers {
		s.mu.Unlock()
		return fmt.Errorf("proteustm: all %d worker slots in use", s.workers)
	}
	s.nextID++
	s.mu.Unlock()
	s.pending.Add(1)
	go func() {
		defer s.pending.Done()
		body(&Worker{sys: s, ID: id})
	}()
	return nil
}

// Wait joins every goroutine started with Spawn.
func (s *System) Wait() { s.pending.Wait() }

// SetConfig manually installs a configuration (disable auto-tuning first or
// the adapter may override it).
func (s *System) SetConfig(c Config) error { return s.rt.Pool.Reconfigure(c) }

// CurrentConfig returns the installed configuration.
func (s *System) CurrentConfig() Config { return s.rt.Pool.Config() }

// Stats returns cumulative transaction statistics. It synchronizes with the
// worker threads by briefly parking each at a transaction boundary, so it
// must not be called from inside an atomic block (the caller would wait on
// its own in-flight transaction); call it between transactions.
func (s *System) Stats() Stats { return s.rt.Pool.SnapshotStats() }

// StatsPerWorker returns one statistics snapshot per worker slot, under
// the same synchronization and control-plane restriction as Stats.
func (s *System) StatsPerWorker() []Stats { return s.rt.Pool.SnapshotStatsPerThread() }

// Timeline returns a copy of the auto-tuner's KPI observation timeline
// (empty without WithAutoTuning).
func (s *System) Timeline() []TimelinePoint { return s.rt.Timeline() }

// Reconfigurations returns a copy of the optimization-phase event log:
// one entry per exploration phase, recording the installed configuration,
// its predecessor and the trigger.
func (s *System) Reconfigurations() []ReconfigEvent { return s.rt.Reconfigurations() }

// Phases returns the number of optimization phases run so far.
func (s *System) Phases() int { return s.rt.Phases() }

// Exploring reports whether an exploration phase is in progress.
func (s *System) Exploring() bool { return s.rt.Exploring() }

// OnReconfigure installs fn to run at the start of every reconfiguration,
// before any worker thread is gated, with the outgoing and incoming
// configuration. The runtime holds its configuration lock while fn runs,
// so fn must not call SetConfig, CurrentConfig, Stats or StatsPerWorker;
// it may block briefly. Serving layers use the hook to drain in-flight
// requests from worker slots the new configuration disables. Pass nil to
// remove the hook.
func (s *System) OnReconfigure(fn func(old, new Config)) { s.rt.Pool.SetReconfigureHook(fn) }

// Reoptimize triggers an immediate exploration phase (auto-tuning only).
func (s *System) Reoptimize() { s.rt.ForceReoptimize() }

// Close stops the adapter thread.
func (s *System) Close() error {
	if s.tuning {
		s.rt.Stop()
		s.tuning = false
	}
	return nil
}

// DefaultConfigs returns a compact tuning space for maxThreads workers:
// every STM × {1, 2, …, maxThreads} plus HTM contention-management
// variants. It is config.DefaultSpace — the same grid `proteusbench list`
// prints and `proteusbench sweep` profiles.
func DefaultConfigs(maxThreads int) []Config { return config.DefaultSpace(maxThreads) }

// SyntheticTraining builds a training Utility Matrix for the given
// configuration space from the analytic performance model (the substitute
// for profiling a base set of applications offline). The modeled machine
// is derived from the configuration space itself — see
// scenario.SyntheticTraining, which this delegates to.
func SyntheticTraining(cfgs []Config, workloads int, seed uint64) *cf.Matrix {
	return scenario.SyntheticTraining(cfgs, workloads, seed)
}
