package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	proteustm "repro"
	"repro/internal/shard"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.HeapWords == 0 {
		opts.HeapWords = 1 << 18
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func get(t *testing.T, url string) (int, response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var r response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode, r
}

// TestStoreRoundTrip exercises every operation kind through the HTTP
// surface on a single-connection client.
func TestStoreRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{Preload: 64})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, r := get(t, ts.URL+"/kv/get?key=7"); code != 200 || !r.Found || r.Val != 7 {
		t.Fatalf("preloaded get = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/put?key=100&val=41"); code != 200 || !r.Applied || r.Existed {
		t.Fatalf("put = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/cas?key=100&old=41&new=42"); code != 200 || !r.Applied || r.Val != 42 {
		t.Fatalf("cas = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/cas?key=100&old=41&new=43"); code != 200 || r.Applied {
		t.Fatalf("stale cas applied = %d %+v", code, r)
	}
	// Preload is keys 0..63 (val=key); key 100 holds 42.
	if code, r := get(t, ts.URL+"/kv/range?lo=0&hi=200"); code != 200 || r.Count != 65 {
		t.Fatalf("range = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/del?key=100"); code != 200 || !r.Applied {
		t.Fatalf("del = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/get?key=100"); code != 200 || r.Found {
		t.Fatalf("get after del = %d %+v", code, r)
	}
	for i, v := range []uint64{10, 20, 30} {
		url := fmt.Sprintf("%s/list/rpush?val=%d", ts.URL, v)
		if i == 1 {
			url = fmt.Sprintf("%s/list/lpush?val=%d", ts.URL, v)
		}
		if code, r := get(t, url); code != 200 || !r.Applied {
			t.Fatalf("push = %d %+v", code, r)
		}
	}
	// Deque now: [20, 10, 30].
	if code, r := get(t, ts.URL+"/list/len"); code != 200 || r.Len != 3 {
		t.Fatalf("len = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/list/lpop"); code != 200 || !r.Found || r.Val != 20 {
		t.Fatalf("lpop = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/list/rpop"); code != 200 || !r.Found || r.Val != 30 {
		t.Fatalf("rpop = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/get?key=nope"); code != 400 || r.Err == "" {
		t.Fatalf("bad param = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/range?lo=9&hi=3"); code != 400 || r.Err == "" {
		t.Fatalf("inverted range = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/mput?keys=200,201&vals=1,2"); code != 200 || !r.Applied {
		t.Fatalf("mput = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/mget?keys=200,201,202"); code != 200 ||
		len(r.Vals) != 3 || r.Vals[0] != 1 || r.Vals[1] != 2 || !r.Present[0] || !r.Present[1] || r.Present[2] {
		t.Fatalf("mget = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/mput?keys=1,2&vals=9"); code != 400 || r.Err == "" {
		t.Fatalf("mismatched mput accepted = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/mget?keys="); code != 400 || r.Err == "" {
		t.Fatalf("empty mget accepted = %d %+v", code, r)
	}
}

// TestConcurrentSmoke hammers the service from many client goroutines
// while the configuration is being switched underneath it — the race
// detector's view of the admission queue, the drain protocol and the
// statusz snapshot path.
func TestConcurrentSmoke(t *testing.T) {
	s := newTestServer(t, Options{Preload: 256, QueueDepth: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 8
	const opsPerClient = 150
	var ok, rejected atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				k := (c*opsPerClient + i) % 512
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("%s/kv/get?key=%d", ts.URL, k)
				case 1:
					url = fmt.Sprintf("%s/kv/put?key=%d&val=%d", ts.URL, k, i)
				case 2:
					url = fmt.Sprintf("%s/kv/range?lo=%d&hi=%d", ts.URL, k, k+64)
				default:
					url = fmt.Sprintf("%s/list/rpush?val=%d", ts.URL, i)
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
				}
			}
		}(c)
	}
	// Concurrently shrink and grow the parallelism degree and switch
	// algorithms, exercising the graceful-drain hook under load.
	configs := []proteustm.Config{
		{Alg: proteustm.NOrec, Threads: 1},
		{Alg: proteustm.TL2, Threads: 4},
		{Alg: proteustm.GlobalLock, Threads: 2},
		{Alg: proteustm.SwissTM, Threads: 4},
	}
	stop := make(chan struct{})
	var cfgWg sync.WaitGroup
	cfgWg.Add(1)
	go func() {
		defer cfgWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if err := s.System().SetConfig(configs[i%len(configs)]); err != nil {
				t.Errorf("SetConfig: %v", err)
			}
		}
	}()
	wg.Wait()
	close(stop)
	cfgWg.Wait()

	if got := ok.Load() + rejected.Load(); got != clients*opsPerClient {
		t.Fatalf("accounted %d of %d requests", got, clients*opsPerClient)
	}
	st := s.StatusSnapshot()
	if st.Ops.Total != ok.Load() {
		t.Fatalf("served total %d, client-observed %d", st.Ops.Total, ok.Load())
	}
	if st.TM.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

// TestAdmissionOverflow checks the 429 path: with no workers draining the
// queue, QueueDepth admissions are accepted and the next is rejected
// immediately rather than stalling.
func TestAdmissionOverflow(t *testing.T) {
	s, err := newServer(Options{Workers: 2, QueueDepth: 4, HeapWords: 1 << 18})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	// Fill the queue from goroutines: submit blocks until a worker
	// replies, so park each submission's reply in its own goroutine.
	var wg sync.WaitGroup
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := s.submit(s.fleet()[0], &request{op: opGet, key: uint64(i)})
			codes <- code
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.fleet()[0].queue) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan int, 1)
	go func() {
		_, code := s.submit(s.fleet()[0], &request{op: opGet, key: 99})
		done <- code
	}()
	select {
	case code := <-done:
		if code != http.StatusTooManyRequests {
			t.Fatalf("overflow submit = HTTP %d, want 429", code)
		}
	case <-time.After(time.Second):
		t.Fatal("overflow submit stalled instead of returning 429")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// Start the workers; the four parked submissions must all complete.
	s.startWorkers()
	wg.Wait()
	for i := 0; i < 4; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("parked submission = HTTP %d, want 200", code)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestGracefulDrainNoStall pins the drain protocol: shrinking the
// parallelism degree to 1 mid-burst must not strand any request — every
// submission completes even though most worker slots park.
func TestGracefulDrainNoStall(t *testing.T) {
	s := newTestServer(t, Options{Workers: 8, Preload: 128, QueueDepth: 512})
	var wg sync.WaitGroup
	var completed atomic.Uint64
	const n = 400
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := s.submit(s.fleet()[0], &request{op: opGet, key: uint64(i % 128)})
			if code == http.StatusOK {
				completed.Add(1)
			}
		}(i)
		if i == n/2 {
			if err := s.System().SetConfig(proteustm.Config{Alg: proteustm.NOrec, Threads: 1}); err != nil {
				t.Fatalf("shrink: %v", err)
			}
		}
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("requests stranded after shrink to 1 thread")
	}
	if rej := s.rejected.Load(); completed.Load()+rej != n {
		t.Fatalf("completed %d + rejected %d != %d", completed.Load(), rej, n)
	}
}

// jsonKeyPaths flattens a decoded JSON document into sorted dotted key
// paths; array elements contribute their first element's schema under [].
func jsonKeyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			jsonKeyPaths(p, sub, out)
		}
	case []any:
		if len(x) > 0 {
			jsonKeyPaths(prefix+"[]", x[0], out)
		}
	}
}

// TestStatuszSchema pins the /statusz document schema (the operator
// interface documented in docs/serving.md) against a golden file. Run
// with UPDATE_GOLDEN=1 to regenerate after intentional changes.
func TestStatuszSchema(t *testing.T) {
	s := newTestServer(t, Options{
		Workers:      4,
		Preload:      256,
		AutoTune:     true,
		SamplePeriod: 10 * time.Millisecond,
		Seed:         7,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Generate some traffic and wait until the adapter has completed at
	// least one phase and logged timeline points, so the array schemas
	// are populated.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for k := 0; k < 32; k++ {
			resp, err := http.Get(fmt.Sprintf("%s/kv/put?key=%d&val=%d", ts.URL, k, k))
			if err != nil {
				t.Fatalf("traffic: %v", err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
			resp.Body.Close()
		}
		st := s.StatusSnapshot()
		if len(st.Reconfigurations) > 0 && len(st.Timeline) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("adapter never produced a reconfiguration + timeline point")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatalf("statusz: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	paths := map[string]bool{}
	jsonKeyPaths("", doc, paths)
	// Per-op counters are data, not schema.
	for p := range paths {
		if strings.HasPrefix(p, "ops.served.") {
			delete(paths, p)
		}
	}
	keys := make([]string, 0, len(paths))
	for p := range paths {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	const golden = "testdata/statusz_schema.golden"
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
	}
	if got != string(want) {
		t.Errorf("/statusz schema drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s", golden, got, want)
	}
}

// TestParsePhases covers the loadgen phase-spec syntax.
func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases("read-heavy:5s, write-heavy:500ms,scan:3s")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 || phases[0].Mix.Name != "read-heavy" || phases[1].Duration != 500*time.Millisecond {
		t.Fatalf("got %+v", phases)
	}
	for _, bad := range []string{"", "nope:5s", "read-heavy", "read-heavy:xyz", "read-heavy:-1s"} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) accepted", bad)
		}
	}
}

// TestLoadgenAgainstServer runs a miniature in-process loadgen session —
// the same code path the CLI uses — against an auto-tuning server.
func TestLoadgenAgainstServer(t *testing.T) {
	s := newTestServer(t, Options{
		Workers:      4,
		Preload:      512,
		AutoTune:     true,
		SamplePeriod: 20 * time.Millisecond,
		Seed:         3,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	phases, err := ParsePhases("read-heavy:300ms,write-heavy:300ms")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoadgen(LoadgenOptions{
		BaseURL:  ts.URL,
		Conns:    4,
		Phases:   phases,
		KeyRange: 512,
		Span:     64,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Total.Ops == 0 {
		t.Fatal("loadgen completed no operations")
	}
	if report.DaemonCommits == 0 {
		t.Fatal("daemon recorded no commits")
	}
	if len(report.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(report.Phases))
	}
	if report.Total.LatencyMs.Count == 0 || report.Total.LatencyMs.P50 <= 0 {
		t.Fatalf("latency summary empty: %+v", report.Total.LatencyMs)
	}
}

// --- sharded correctness battery -------------------------------------------

// TestShardedRoundTrip repeats the basic surface checks on a 4-shard
// server: routing must be transparent to clients.
func TestShardedRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{Shards: 4, Workers: 2, Preload: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	for k := 0; k < 256; k += 17 {
		if code, r := get(t, fmt.Sprintf("%s/kv/get?key=%d", ts.URL, k)); code != 200 || !r.Found || r.Val != uint64(k) {
			t.Fatalf("preloaded get key %d = %d %+v", k, code, r)
		}
	}
	// A range over the whole preload must see every key even though they
	// are scattered across four heaps.
	if code, r := get(t, ts.URL+"/kv/range?lo=0&hi=255"); code != 200 || r.Count != 256 {
		t.Fatalf("cross-shard range = %d %+v", code, r)
	}
	// Batch put across shards, then read it back atomically.
	if code, r := get(t, ts.URL+"/kv/mput?keys=1000,2000,3000,4000&vals=1,2,3,4"); code != 200 || !r.Applied {
		t.Fatalf("cross-shard mput = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/mget?keys=1000,2000,3000,4000"); code != 200 ||
		len(r.Vals) != 4 || r.Vals[0] != 1 || r.Vals[3] != 4 || !r.Present[0] || !r.Present[3] {
		t.Fatalf("cross-shard mget = %d %+v", code, r)
	}
	st := s.StatusSnapshot()
	if st.Ops.CrossOps == 0 {
		t.Fatalf("no cross-shard commits recorded: %+v", st.Ops)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("statusz shards = %d, want 4", len(st.Shards))
	}
	for _, sh := range st.Shards {
		if sh.FenceHeld {
			t.Fatalf("shard %d fence still held after quiescence", sh.Index)
		}
	}
}

// TestCrossShardAbortAll pins the abort-all arm of the two-phase commit:
// a fence stuck on one participant makes the whole batch abort, releasing
// every fence it acquired, and the batch succeeds once the fence clears.
func TestCrossShardAbortAll(t *testing.T) {
	s := newTestServer(t, Options{Shards: 4, Workers: 2, CrossRetries: 3})

	// Find keys on four distinct shards.
	keys := make([]uint64, 0, 4)
	seen := map[int]bool{}
	for k := uint64(0); len(keys) < 4; k++ {
		if o := s.part().Owner(k); !seen[o] {
			seen[o] = true
			keys = append(keys, k)
		}
	}
	batches := splitBatchAt(s.part(), keys)
	if len(batches) != 4 {
		t.Fatalf("expected 4 participants, got %d", len(batches))
	}
	// Wedge the fence of the last participant (highest shard index, so
	// the coordinator acquires the other three first).
	victim := s.fleet()[batches[3].shard]
	victim.sys.Store(victim.store.FenceWord(), 999)

	vals := []uint64{1, 2, 3, 4}
	req := &request{op: opMPut, keys: keys, vals: vals}
	resp, code := s.submitCross(req)
	if code != http.StatusServiceUnavailable || resp.Err == "" {
		t.Fatalf("mput against a wedged fence = %d %+v, want 503", code, resp)
	}
	if got := s.crossAborts.Load(); got < 3 {
		t.Fatalf("crossAborts = %d, want >= CrossRetries", got)
	}
	// Abort-all must have released every fence the coordinator acquired.
	for _, b := range batches[:3] {
		ss := s.fleet()[b.shard]
		if v := ss.sys.Load(ss.store.FenceWord()); v != 0 {
			t.Fatalf("shard %d fence leaked after abort-all: %d", b.shard, v)
		}
	}
	// And no write may have landed anywhere.
	for i, k := range keys {
		ss := s.fleet()[s.part().Owner(k)]
		w, err := ss.sys.Worker(0)
		if err != nil {
			t.Fatal(err)
		}
		var found bool
		w.Atomic(func(tx proteustm.Txn) { _, found = ss.store.Get(tx, k) })
		if found {
			t.Fatalf("aborted batch leaked key %d (index %d)", k, i)
		}
	}

	// Clear the wedge: the same batch must now commit everywhere.
	victim.sys.Store(victim.store.FenceWord(), 0)
	resp, code = s.submitCross(&request{op: opMPut, keys: keys, vals: vals})
	if code != http.StatusOK || !resp.Applied {
		t.Fatalf("mput after clearing fence = %d %+v", code, resp)
	}
	resp, code = s.submitCross(&request{op: opMGet, keys: keys})
	if code != http.StatusOK {
		t.Fatalf("mget = %d %+v", code, resp)
	}
	for i := range keys {
		if !resp.Present[i] || resp.Vals[i] != vals[i] {
			t.Fatalf("post-commit mget[%d] = %+v", i, resp)
		}
	}
}

// linRecorder turns concurrent client calls into a shard.Op history.
type linRecorder struct {
	mu  sync.Mutex
	ops []shard.Op
}

func (lr *linRecorder) record(op shard.Op) {
	lr.mu.Lock()
	lr.ops = append(lr.ops, op)
	lr.mu.Unlock()
}

// TestLinearizability is the battery's centerpiece: concurrent
// cross-shard PUT/CAS/DEL/MPUT/MGET traffic over a tiny key set, with
// every committed operation's invocation/response window recorded, must
// admit a sequential witness. Run under -race in CI.
func TestLinearizability(t *testing.T) {
	forEachGranularity(t, func(t *testing.T, granularity string) {
		testLinearizability(t, granularity, false)
	})
	// The batching worker gate must preserve per-op atomicity and
	// ordering; rerun the full battery with group commit engaged.
	t.Run("group-commit", func(t *testing.T) {
		forEachGranularity(t, func(t *testing.T, granularity string) {
			testLinearizability(t, granularity, true)
		})
	})
}

func testLinearizability(t *testing.T, granularity string, groupCommit bool) {
	const rounds = 4
	const clients = 3
	const opsPerClient = 4
	for round := 0; round < rounds; round++ {
		s := newTestServer(t, Options{
			Shards: 3, Workers: 2, HeapWords: 1 << 16,
			FenceGranularity: granularity, GroupCommit: groupCommit,
		})
		base := time.Now()
		rec := &linRecorder{}
		// The keys deliberately straddle shards so mput/mget cross.
		keys := []uint64{1, 2, 3, 4, 5}
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := uint64(round*100 + c*17 + 1)
				next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return (rng >> 33) % n }
				for i := 0; i < opsPerClient; i++ {
					k := keys[next(uint64(len(keys)))]
					v := uint64(c*1000 + round*100 + i + 1)
					op := shard.Op{Invoke: int64(time.Since(base))}
					var resp response
					var code int
					switch next(5) {
					case 0:
						op.Kind = shard.OpPut
						op.Keys, op.Args = []uint64{k}, []uint64{v}
						resp, code = s.submit(s.shardFor(&request{op: opPut, key: k}), &request{op: opPut, key: k, val: v})
						op.Oks = []bool{resp.Existed}
					case 1:
						op.Kind = shard.OpDel
						op.Keys = []uint64{k}
						resp, code = s.submit(s.shardFor(&request{op: opDel, key: k}), &request{op: opDel, key: k})
						op.Oks = []bool{resp.Applied}
					case 2:
						old := uint64(c*1000 + round*100 + i) // sometimes matches a prior write
						op.Kind = shard.OpCAS
						op.Keys, op.Args = []uint64{k}, []uint64{old, v}
						resp, code = s.submit(s.shardFor(&request{op: opCAS, key: k}), &request{op: opCAS, key: k, old: old, newv: v})
						op.Vals, op.Oks = []uint64{resp.Val}, []bool{resp.Applied}
					case 3:
						op.Kind = shard.OpMPut
						op.Keys = append([]uint64{}, keys[:3]...)
						op.Args = []uint64{v, v, v}
						resp, code = s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
					default:
						op.Kind = shard.OpMGet
						op.Keys = append([]uint64{}, keys...)
						resp, code = s.submitCross(&request{op: opMGet, keys: op.Keys})
						op.Vals, op.Oks = resp.Vals, resp.Present
					}
					op.Return = int64(time.Since(base))
					if code != http.StatusOK {
						t.Errorf("round %d client %d op %d: HTTP %d %+v", round, c, i, code, resp)
						return
					}
					rec.record(op)
				}
			}(c)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if _, ok := shard.Linearize(rec.ops); !ok {
			t.Fatalf("round %d: committed history of %d ops admits no sequential witness: %+v", round, len(rec.ops), rec.ops)
		}
	}
}

// TestFencedOpsWaitForCommit checks the local-operation arm of the
// protocol: a single-key op on a fenced shard is requeued (not answered
// from mid-commit state) and completes once the fence clears.
func TestFencedOpsWaitForCommit(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2, Workers: 2})
	// Pick a key on shard 1 and wedge that shard's fence.
	var k uint64
	for s.part().Owner(k) != 1 {
		k++
	}
	victim := s.fleet()[1]
	victim.sys.Store(victim.store.FenceWord(), 7)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, code := s.submit(victim, &request{op: opPut, key: k, val: 42})
		if code != http.StatusOK || !resp.Applied {
			t.Errorf("fenced put = %d %+v", code, resp)
		}
	}()
	// The op must be parked (fenced), not completed.
	deadline := time.Now().Add(2 * time.Second)
	for s.fenced.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fenced op was never requeued")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("op completed while the fence was held")
	case <-time.After(50 * time.Millisecond):
	}
	victim.sys.Store(victim.store.FenceWord(), 0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("op never completed after the fence cleared")
	}
}

// TestConcurrentCrossShardStress hammers cross-shard batches from many
// goroutines (forcing acquire-phase contention and abort-all retries)
// and checks every fence is free afterwards. Run under -race in CI.
func TestConcurrentCrossShardStress(t *testing.T) {
	s := newTestServer(t, Options{Shards: 4, Workers: 2, Preload: 64})
	var wg sync.WaitGroup
	var fails atomic.Uint64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				keys := []uint64{uint64(i % 16), uint64(16 + (i+c)%16), uint64(32 + i%16)}
				vals := []uint64{uint64(c), uint64(c), uint64(c)}
				var code int
				if i%2 == 0 {
					_, code = s.submitCross(&request{op: opMPut, keys: keys, vals: vals})
				} else {
					_, code = s.submitCross(&request{op: opMGet, keys: keys})
				}
				if code != http.StatusOK {
					fails.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if f := fails.Load(); f > 0 {
		t.Fatalf("%d cross-shard ops failed under contention", f)
	}
	for i, ss := range s.fleet() {
		if v := ss.sys.Load(ss.store.FenceWord()); v != 0 {
			t.Fatalf("shard %d fence left held (%d) after stress", i, v)
		}
	}
	st := s.StatusSnapshot()
	if st.Ops.CrossOps == 0 {
		t.Fatal("stress recorded no cross-shard commits")
	}
}

// TestLatencyAccounting pins the queue-wait/service split: after traffic,
// all three reservoirs are populated and total latency is at least the
// larger of the two components at the median.
func TestLatencyAccounting(t *testing.T) {
	s := newTestServer(t, Options{Preload: 32})
	ts := httptest.NewServer(s)
	defer ts.Close()
	for k := 0; k < 64; k++ {
		if code, _ := get(t, fmt.Sprintf("%s/kv/get?key=%d", ts.URL, k%32)); code != 200 {
			t.Fatalf("traffic op %d failed", k)
		}
	}
	st := s.StatusSnapshot()
	if st.Latency.WindowObserved == 0 || st.QueueWait.WindowObserved == 0 || st.Service.WindowObserved == 0 {
		t.Fatalf("latency reservoirs not populated: total=%d wait=%d service=%d",
			st.Latency.WindowObserved, st.QueueWait.WindowObserved, st.Service.WindowObserved)
	}
	if st.Latency.P50 <= 0 {
		t.Fatalf("total latency p50 = %v", st.Latency.P50)
	}
}

// TestLoadgenSkewedAgainstShardedServer runs a skewed loadgen session —
// the CLI `--skew` path — against a 4-shard server and checks the report
// surfaces per-shard configurations plus cross-shard traffic.
func TestLoadgenSkewedAgainstShardedServer(t *testing.T) {
	s := newTestServer(t, Options{
		Shards:       4,
		Workers:      2,
		Preload:      512,
		AutoTune:     true,
		SamplePeriod: 20 * time.Millisecond,
		Seed:         3,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	phases, err := ParsePhases("mixed:400ms")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoadgen(LoadgenOptions{
		BaseURL:  ts.URL,
		Conns:    4,
		Phases:   phases,
		KeyRange: 512,
		Span:     64,
		Skew:     0.9,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Shards != 4 {
		t.Fatalf("report.Shards = %d, want 4", report.Shards)
	}
	if len(report.ShardConfigs) != 4 {
		t.Fatalf("report.ShardConfigs = %v, want 4 entries", report.ShardConfigs)
	}
	if report.Total.Ops == 0 {
		t.Fatal("skewed loadgen completed no operations")
	}
	if report.Total.Errors != 0 {
		t.Fatalf("skewed loadgen hit %d errors", report.Total.Errors)
	}
	st := s.StatusSnapshot()
	if st.Ops.Served["mput"] == 0 {
		t.Fatal("skewed session issued no cross-shard mput batches")
	}
	// The skew plan steers writes at shards 0-1 and reads at shards 2-3;
	// per-shard commit profiles must reflect that divergence direction-
	// ally (writes produce conflict aborts, reads almost none).
	if st.TM.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

// TestKeyedFenceAllowsNonIntersectingOps pins the keyed-fence value
// proposition: while a cross-shard hold covers one key's signature,
// a local op on a non-intersecting key of the same shard proceeds
// immediately (no fenced requeue), while an intersecting op parks until
// release — and ops.fence_keys_held observes the hold.
func TestKeyedFenceAllowsNonIntersectingOps(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2, Workers: 2, FenceGranularity: FenceKey})
	// Two keys on shard 1 whose Bloom signature bits are disjoint.
	var fencedKey, freeKey uint64
	found := false
	for a := uint64(0); a < 1<<12 && !found; a++ {
		if s.part().Owner(a) != 1 {
			continue
		}
		for b := a + 1; b < 1<<12; b++ {
			if s.part().Owner(b) == 1 && keyBit(a)&keyBit(b) == 0 {
				fencedKey, freeKey, found = a, b, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no two same-shard keys with disjoint signature bits")
	}
	victim := s.fleet()[1]

	// A coordinator holds a keyed fence covering only fencedKey.
	r := s.ctlAcquire(victim, 7, KeyFenceSig([]uint64{fencedKey}))
	if !r.Applied || r.slot < 0 {
		t.Fatalf("keyed acquire = %+v", r)
	}
	if got := s.StatusSnapshot().Ops.FenceKeysHeld; got != 1 {
		t.Fatalf("fence_keys_held = %d while one slot held, want 1", got)
	}

	// The non-intersecting op must complete while the fence is held.
	if resp, code := s.submit(victim, &request{op: opPut, key: freeKey, val: 1}); code != http.StatusOK {
		t.Fatalf("non-intersecting put = %d %+v", code, resp)
	}
	if got := s.fenced.Load(); got != 0 {
		t.Fatalf("fenced_requeues = %d after non-intersecting op, want 0", got)
	}

	// The intersecting op must park (fenced requeue), not complete.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, code := s.submit(victim, &request{op: opPut, key: fencedKey, val: 2}); code != http.StatusOK {
			t.Errorf("intersecting put = %d %+v", code, resp)
		}
	}()
	waitUntil(t, 2*time.Second, "fenced requeue", func() bool { return s.fenced.Load() > 0 })
	select {
	case <-done:
		t.Fatal("intersecting op completed while its key was fenced")
	case <-time.After(50 * time.Millisecond):
	}

	// Release the slot: the parked op drains.
	s.ctl(victim, func(w *proteustm.Worker, _ int) response {
		w.Atomic(func(tx proteustm.Txn) { victim.store.FenceSlotRelease(tx, r.slot, r.epoch) })
		return response{}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("intersecting op never completed after release")
	}
	if got := s.StatusSnapshot().Ops.FenceKeysHeld; got != 0 {
		t.Fatalf("fence_keys_held = %d after release, want 0", got)
	}
}
