package proteustm_test

import (
	"sync"
	"testing"
	"time"

	proteustm "repro"
)

// TestOpenDefaults checks Open with defaults produces a usable system.
func TestOpenDefaults(t *testing.T) {
	sys, err := proteustm.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a := sys.MustAlloc(1)
	w, err := sys.Worker(0)
	if err != nil {
		t.Fatal(err)
	}
	w.Atomic(func(tx proteustm.Txn) { tx.Store(a, 7) })
	if got := sys.Load(a); got != 7 {
		t.Errorf("Load = %d, want 7", got)
	}
}

// TestWorkerRange validates worker-slot bounds.
func TestWorkerRange(t *testing.T) {
	sys, err := proteustm.Open(proteustm.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Worker(2); err == nil {
		t.Error("expected error for out-of-range worker id")
	}
	if _, err := sys.Worker(-1); err == nil {
		t.Error("expected error for negative worker id")
	}
}

// TestSpawnSlots verifies Spawn hands out each slot once.
func TestSpawnSlots(t *testing.T) {
	sys, err := proteustm.Open(proteustm.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a := sys.MustAlloc(1)
	for i := 0; i < 3; i++ {
		if err := sys.Spawn(func(w *proteustm.Worker) {
			w.Atomic(func(tx proteustm.Txn) { tx.Store(a, tx.Load(a)+1) })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Spawn(func(*proteustm.Worker) {}); err == nil {
		t.Error("expected error when slots are exhausted")
	}
	sys.Wait()
	if got := sys.Load(a); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

// TestManualConfigSwitch checks SetConfig under live traffic.
func TestManualConfigSwitch(t *testing.T) {
	sys, err := proteustm.Open(proteustm.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a := sys.MustAlloc(64)
	var stop bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w, _ := sys.Worker(i)
		wg.Add(1)
		go func(w *proteustm.Worker, id int) {
			defer wg.Done()
			for {
				mu.Lock()
				s := stop
				mu.Unlock()
				if s {
					return
				}
				w.Atomic(func(tx proteustm.Txn) {
					slot := proteustm.Addr(id * 8)
					tx.Store(a+slot, tx.Load(a+slot)+1)
				})
			}
		}(w, i)
	}
	for _, cfg := range []proteustm.Config{
		{Alg: proteustm.NOrec, Threads: 2},
		{Alg: proteustm.HTM, Threads: 4, Budget: 4},
		{Alg: proteustm.SwissTM, Threads: 4},
	} {
		time.Sleep(10 * time.Millisecond)
		if err := sys.SetConfig(cfg); err != nil {
			t.Fatal(err)
		}
		if got := sys.CurrentConfig(); got != cfg {
			t.Errorf("CurrentConfig = %v, want %v", got, cfg)
		}
	}
	mu.Lock()
	stop = true
	mu.Unlock()
	wg.Wait()
	if s := sys.Stats(); s.Commits == 0 {
		t.Error("no commits recorded")
	}
}

// TestAutoTuningSmoke opens an auto-tuned system under load and checks the
// adapter installs a configuration and the system survives Close.
func TestAutoTuningSmoke(t *testing.T) {
	sys, err := proteustm.Open(
		proteustm.WithWorkers(4),
		proteustm.WithAutoTuning(),
		proteustm.WithMaxExplorations(4),
		proteustm.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.MustAlloc(128)
	var stop sync.Once
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w, _ := sys.Worker(i)
		wg.Add(1)
		go func(w *proteustm.Worker, id int) {
			defer wg.Done()
			rng := uint64(id + 1)
			for {
				select {
				case <-done:
					return
				default:
				}
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				slot := proteustm.Addr(rng % 128)
				w.Atomic(func(tx proteustm.Txn) {
					tx.Store(a+slot, tx.Load(a+slot)+1)
				})
			}
		}(w, i)
	}
	time.Sleep(800 * time.Millisecond)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the gate fully so workers can exit.
	cfg := sys.CurrentConfig()
	cfg.Threads = 4
	if err := sys.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	stop.Do(func() { close(done) })
	wg.Wait()
	if s := sys.Stats(); s.Commits == 0 {
		t.Error("auto-tuned system committed nothing")
	}
}
