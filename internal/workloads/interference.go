package workloads

import (
	"sync"
	"sync/atomic"
)

// InterferenceKind selects what machine resource the antagonist stresses —
// the substitute for the `stress` Unix tool used in Fig. 9.
type InterferenceKind int

const (
	// StressCPU burns cycles on busy loops.
	StressCPU InterferenceKind = iota
	// StressMemory streams over a large buffer, trashing caches and
	// memory bandwidth.
	StressMemory
	// StressAlloc churns the allocator/GC.
	StressAlloc
)

// String names the antagonist kind.
func (k InterferenceKind) String() string {
	switch k {
	case StressCPU:
		return "cpu"
	case StressMemory:
		return "memory"
	case StressAlloc:
		return "alloc"
	}
	return "?"
}

// Interference runs antagonist goroutines that compete with the TM
// application for machine resources, making the environment change
// indistinguishable from a workload change from the Monitor's viewpoint
// (§5.3).
type Interference struct {
	Kind    InterferenceKind
	Workers int

	stop atomic.Bool
	wg   sync.WaitGroup
	sink atomic.Uint64
}

// Start launches the antagonists.
func (in *Interference) Start() {
	n := in.Workers
	if n <= 0 {
		n = 2
	}
	in.stop.Store(false)
	for w := 0; w < n; w++ {
		in.wg.Add(1)
		go func(id int) {
			defer in.wg.Done()
			switch in.Kind {
			case StressCPU:
				in.burnCPU()
			case StressMemory:
				in.streamMemory()
			case StressAlloc:
				in.churnAllocator()
			}
		}(w)
	}
}

// Stop terminates the antagonists and waits for them.
func (in *Interference) Stop() {
	in.stop.Store(true)
	in.wg.Wait()
}

func (in *Interference) burnCPU() {
	acc := uint64(1)
	for !in.stop.Load() {
		for i := 0; i < 1<<14; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		in.sink.Store(acc)
	}
}

func (in *Interference) streamMemory() {
	buf := make([]uint64, 1<<21) // 16 MiB
	acc := uint64(0)
	for !in.stop.Load() {
		for i := 0; i < len(buf); i += 8 {
			buf[i] = buf[i] + acc
			acc += buf[(i*7)%len(buf)]
		}
		in.sink.Store(acc)
	}
}

func (in *Interference) churnAllocator() {
	keep := make([][]byte, 64)
	i := 0
	for !in.stop.Load() {
		b := make([]byte, 1<<14)
		b[0] = byte(i)
		keep[i%len(keep)] = b
		i++
		if i%1024 == 0 {
			in.sink.Add(uint64(len(keep[0])))
		}
	}
}
