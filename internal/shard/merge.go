package shard

// MergePlan is one executable shrink step: the inverse of SplitPlan. The
// donor — always the top shard, index n-1 — hands its whole span, keys
// in [MovedLo, MovedHi] inclusive, to the Recipient owning the
// left-adjacent span, and Merged is the n-1-shard placement to install
// once those keys have been copied. Pinning the donor to the top index
// is what lets the executor retire the donor by truncating the fleet
// slice: no surviving shard is renumbered, so in-flight work and
// recovery records keyed by shard index stay valid across the flip.
type MergePlan struct {
	// Donor is the retiring shard: always the current top index n-1.
	Donor int
	// Recipient is the shard owning the span immediately below the
	// donor's — the one whose span extends to cover the moved keys.
	Recipient int
	// MovedLo and MovedHi bound the migrating keys, inclusive on both
	// ends (MovedHi is ^uint64(0) when the donor owned the key space's
	// top span).
	MovedLo, MovedHi uint64
	// Merged is the post-merge placement, one shard fewer.
	Merged *RangePartitioner
}

// PlanMergeColdest is the shrink counterpart of PlanSplitHeaviest: given
// per-shard load counters (the ops_routed column of /statusz), it plans
// merging the top shard's span into its left-adjacent neighbour — but
// only when the top shard is the coldest, so shrinking never evicts a
// shard that is carrying the load. Ties resolve in the donor's favour
// (an all-idle fleet should shrink), and load entries beyond len(load)
// read as zero. It reports ok=false as an explicit no-op when:
//
//   - the partitioner has fewer than two shards;
//   - some other shard carries strictly less load than the top shard
//     (the donor is not the coldest);
//   - the top shard owns anything other than exactly one span, or that
//     span is the first span (no left-adjacent recipient) — states the
//     NewRange/split evolution never produces, rejected defensively.
//
// Callers must treat ok=false as "do nothing", exactly like the split
// contract: never install a degenerate merge.
func (p *RangePartitioner) PlanMergeColdest(load []uint64) (MergePlan, bool) {
	if p.n < 2 {
		return MergePlan{}, false
	}
	donor := p.n - 1
	loadOf := func(s int) uint64 {
		if s < len(load) {
			return load[s]
		}
		return 0
	}
	donorLoad := loadOf(donor)
	for s := 0; s < donor; s++ {
		if loadOf(s) < donorLoad {
			return MergePlan{}, false
		}
	}
	span := -1
	for i, o := range p.owners {
		if o != donor {
			continue
		}
		if span >= 0 {
			return MergePlan{}, false // donor owns more than one span
		}
		span = i
	}
	if span <= 0 {
		return MergePlan{}, false // no span, or no left-adjacent recipient
	}
	movedLo := p.starts[span]
	movedHi := ^uint64(0)
	if span+1 < len(p.starts) {
		movedHi = p.starts[span+1] - 1
	}
	merged, err := p.removeSpan(span)
	if err != nil {
		return MergePlan{}, false
	}
	return MergePlan{
		Donor:     donor,
		Recipient: p.owners[span-1],
		MovedLo:   movedLo,
		MovedHi:   movedHi,
		Merged:    merged,
	}, true
}

// removeSpan returns a copy with span i deleted: span i-1 silently
// extends through the removed span's keys, so the neighbour's owner
// inherits them. Only meaningful for i > 0 (the first span has no left
// neighbour to absorb it); validation is delegated to
// NewRangeFromSpans, which rejects any result that leaves a shard
// without a span.
func (p *RangePartitioner) removeSpan(i int) (*RangePartitioner, error) {
	starts := make([]uint64, 0, len(p.starts)-1)
	owners := make([]int, 0, len(p.owners)-1)
	starts = append(append(starts, p.starts[:i]...), p.starts[i+1:]...)
	owners = append(append(owners, p.owners[:i]...), p.owners[i+1:]...)
	return NewRangeFromSpans(starts, owners, p.universe)
}

// Shrink returns the N-1-shard partitioner: the top shard's span is
// absorbed by its left-adjacent neighbour, the exact inverse of Grow's
// widest-span midpoint cut. Like Grow it is total — when no merge is
// possible (single shard, or a span layout splits never produce) it
// returns the receiver unchanged.
func (p *RangePartitioner) Shrink() *RangePartitioner {
	plan, ok := p.PlanMergeColdest(nil)
	if !ok {
		return p
	}
	return plan.Merged
}
