package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Fig9Result reproduces Fig. 9: a *static* TPC-C workload while the
// machine's resource availability changes (the `stress` tool in the paper;
// CPU/memory/allocator antagonists here). Environment changes are
// indistinguishable from workload changes to the Monitor, so ProteusTM must
// re-optimize on each phase.
type Fig9Result struct {
	Phases []string
	// ProteusKPI[phase] is ProteusTM's steady-state throughput.
	ProteusKPI []float64
	// FixedKPI[config][phase] is the throughput of static baselines.
	FixedNames []string
	FixedKPI   [][]float64
	// Reoptimizations is the number of optimization phases the runtime
	// executed over the whole run (≥ number of environment changes
	// detected).
	Reoptimizations int
	Timeline        []core.TimelinePoint
}

// Fig9 runs the live experiment.
func Fig9(scale Scale) (Fig9Result, error) {
	res := Fig9Result{Phases: []string{"idle", "cpu-stress", "memory-stress", "idle"}}
	maxThreads := 8
	window := 150 * time.Millisecond
	phaseDur := 7 * time.Second
	if scale == Quick {
		window = 60 * time.Millisecond
		phaseDur = 2 * time.Second
	}

	app := &workloads.TPCC{Warehouses: 4, Districts: 8, Customers: 128, Items: 1 << 12}
	cfgs := fig8Configs(maxThreads)
	train := syntheticTrainingFor(cfgs, 60, 0xF19)
	rt, err := core.New(core.Options{
		HeapWords:       1 << 22,
		MaxThreads:      maxThreads,
		Configs:         cfgs,
		TrainKPI:        train,
		KPI:             core.Throughput,
		SamplePeriod:    window,
		SettleTime:      window / 2,
		MaxExplorations: 6,
		Seed:            7,
	})
	if err != nil {
		return res, err
	}
	if err := app.Setup(rt.Heap(), workloads.NewRand(5)); err != nil {
		return res, err
	}
	driver := &workloads.Driver{Workload: app, Runner: rt.Pool, MaxThreads: maxThreads, Seed: 6}
	if err := driver.Start(); err != nil {
		return res, err
	}
	defer stopDriver(driver, rt.Pool, maxThreads)

	interference := []*workloads.Interference{
		nil,
		{Kind: workloads.StressCPU, Workers: 6},
		{Kind: workloads.StressMemory, Workers: 4},
		nil,
	}

	// Fixed baselines measured per phase: a subset of contrasting configs.
	fixed := []int{3, 7, len(cfgs) - 1} // TL2:8t, Tiny:8t, HTM:8t-Half-8
	for _, i := range fixed {
		res.FixedNames = append(res.FixedNames, cfgs[i].String())
	}
	measure := func() float64 {
		before := driver.Ops()
		start := time.Now()
		time.Sleep(window)
		return float64(driver.Ops()-before) / time.Since(start).Seconds()
	}
	res.FixedKPI = make([][]float64, len(fixed))
	for _, inf := range interference {
		if inf != nil {
			inf.Start()
		}
		for fi, ci := range fixed {
			if err := rt.Pool.Reconfigure(cfgs[ci]); err != nil {
				return res, err
			}
			time.Sleep(window / 3)
			res.FixedKPI[fi] = append(res.FixedKPI[fi], measure())
		}
		if inf != nil {
			inf.Stop()
		}
	}

	// ProteusTM run across the same phase sequence.
	rt.Start()
	marks := make([]time.Duration, 0, len(interference))
	runStart := time.Now()
	for _, inf := range interference {
		marks = append(marks, time.Since(runStart))
		if inf != nil {
			inf.Start()
		}
		time.Sleep(phaseDur)
		if inf != nil {
			inf.Stop()
		}
	}
	rt.Stop()
	res.Timeline = rt.Timeline()
	res.Reoptimizations = rt.Phases()

	for p := range interference {
		lo := marks[p]
		hi := time.Duration(1<<62 - 1)
		if p+1 < len(marks) {
			hi = marks[p+1]
		}
		var vals []float64
		for _, pt := range res.Timeline {
			if pt.At <= lo+phaseDur/4 || pt.At > hi || pt.Exploring || pt.KPI == 0 {
				continue
			}
			vals = append(vals, pt.KPI)
		}
		res.ProteusKPI = append(res.ProteusKPI, meanOf(vals))
	}
	return res, nil
}

// Print renders the phase summary.
func (r Fig9Result) Print(w io.Writer) {
	header(w, "Figure 9: static TPC-C under external resource interference (live run)")
	fmt.Fprintf(w, "%-16s%14s", "phase", "ProteusTM")
	for _, n := range r.FixedNames {
		fmt.Fprintf(w, "%18s", n)
	}
	fmt.Fprintln(w)
	for p, name := range r.Phases {
		fmt.Fprintf(w, "%-16s%14.0f", name, r.ProteusKPI[p])
		for fi := range r.FixedNames {
			fmt.Fprintf(w, "%18.0f", r.FixedKPI[fi][p])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nProteusTM ran %d optimization phases over %d environment phases.\n",
		r.Reoptimizations, len(r.Phases))
	fmt.Fprintln(w, "Shape check: ProteusTM tracks the best fixed config in every phase.")
}
