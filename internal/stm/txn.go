package stm

import "repro/internal/tm"

// Concrete Txn bindings, one per backend (tm.TxnBinder).
//
// Each wrapper is a single-pointer struct, so converting it to the tm.Txn
// interface stores the pointer directly in the interface word — no per-
// attempt allocation — and its Load/Store methods dispatch statically into
// the algorithm's implementation. Compared with tm's generic boundTxn this
// removes one interface indirection from every instrumented memory access
// and the interface-boxing allocation from every transaction attempt.

type tl2Txn struct{ c *tm.Ctx }

func (t tl2Txn) Load(a tm.Addr) uint64     { return TL2{}.Load(t.c, a) }
func (t tl2Txn) Store(a tm.Addr, v uint64) { TL2{}.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder.
func (TL2) BindTxn(c *tm.Ctx) tm.Txn { return tl2Txn{c} }

type tinyTxn struct{ c *tm.Ctx }

func (t tinyTxn) Load(a tm.Addr) uint64     { return TinySTM{}.Load(t.c, a) }
func (t tinyTxn) Store(a tm.Addr, v uint64) { TinySTM{}.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder.
func (TinySTM) BindTxn(c *tm.Ctx) tm.Txn { return tinyTxn{c} }

type norecTxn struct{ c *tm.Ctx }

func (t norecTxn) Load(a tm.Addr) uint64     { return NOrec{}.Load(t.c, a) }
func (t norecTxn) Store(a tm.Addr, v uint64) { NOrec{}.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder.
func (NOrec) BindTxn(c *tm.Ctx) tm.Txn { return norecTxn{c} }

type swissTxn struct{ c *tm.Ctx }

func (t swissTxn) Load(a tm.Addr) uint64     { return SwissTM{}.Load(t.c, a) }
func (t swissTxn) Store(a tm.Addr, v uint64) { SwissTM{}.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder.
func (SwissTM) BindTxn(c *tm.Ctx) tm.Txn { return swissTxn{c} }

// glTxn accesses the heap directly: under the global lock there is no
// transactional bookkeeping, so the binding needs no *GlobalLock receiver.
type glTxn struct{ c *tm.Ctx }

func (t glTxn) Load(a tm.Addr) uint64     { return t.c.H.LoadWord(a) }
func (t glTxn) Store(a tm.Addr, v uint64) { t.c.H.StoreWord(a, v) }

// BindTxn implements tm.TxnBinder.
func (*GlobalLock) BindTxn(c *tm.Ctx) tm.Txn { return glTxn{c} }
