package scenario

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/config"
)

// reshardSpec is the pinned parameterization of the service-reshard
// golden: splits fire at operations 1500 and 3000, so a 4000-op run
// installs exactly two SplitHeaviest plans (2 -> 4 shards, placement
// epoch 2) and ends with a long post-flip tail in which the client
// replica has re-synced and traffic routes bounce-free under the final
// placement.
func reshardSpec() RunSpec {
	return RunSpec{
		Scenario: "service-reshard",
		Params: Values{
			"shards":       "2",
			"maxshards":    "4",
			"keyrange":     "16384",
			"hottenth":     "600",
			"splitevery":   "1500",
			"refreshevery": "64",
			"migratebatch": "64",
			"crossevery":   "16",
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceReshardDeterminism pins the live-resharding acceptance
// criterion: a fixed seed plans the same splits, migrates the same
// spans, and bounces the same stale-routed operations every run,
// producing byte-identical records across runs and against the
// committed golden. Regenerate with UPDATE_GOLDEN=1 after intentional
// changes.
func TestServiceReshardDeterminism(t *testing.T) {
	const golden = "testdata/service_reshard.golden"
	a, err := Run(reshardSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(reshardSpec())
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("two reshard runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	m := a[0].Metrics
	if m["splits_installed"] != 2 || m["placement_epoch"] != 2 {
		t.Fatalf("want 2 installed splits at placement epoch 2: %v", m)
	}
	if m["keys_migrated"] == 0 {
		t.Fatalf("splits installed but no keys migrated: %v", m)
	}
	if m["moved_bounces"] == 0 {
		t.Fatalf("stale replica never bounced — the bugfix path went unexercised: %v", m)
	}
	if m["replica_replans"] != 2 {
		t.Fatalf("replica_replans = %d, want 2 (one re-sync per flip): %v", m["replica_replans"], m)
	}
	if m["splits_blocked"] != 0 || m["splits_skipped"] != 0 {
		t.Fatalf("every scheduled split must install under this spec: %v", m)
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, ja, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
	}
	if !bytes.Equal(ja, want) {
		t.Errorf("service-reshard record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s",
			golden, ja, want)
	}
}
