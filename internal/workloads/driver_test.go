package workloads_test

import (
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// TestDriverLifecycle covers start/stop/measure and error paths.
func TestDriverLifecycle(t *testing.T) {
	h := tm.NewHeap(1<<16, 2)
	wl := &workloads.HashMap{Buckets: 64, KeyRange: 256, InitialSize: 32}
	if err := wl.Setup(h, workloads.NewRand(4)); err != nil {
		t.Fatal(err)
	}
	d := &workloads.Driver{
		Workload:   wl,
		Runner:     workloads.NewBareRunner(stm.TL2{}, h, 2),
		MaxThreads: 2,
		Seed:       5,
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Error("double Start must fail")
	}
	x := d.MeasureThroughput(30 * time.Millisecond)
	if x <= 0 {
		t.Errorf("throughput = %f, want positive", x)
	}
	d.Stop()
	d.Stop() // idempotent
	if d.Ops() == 0 {
		t.Error("no operations recorded")
	}

	bad := &workloads.Driver{Workload: wl, Runner: d.Runner, MaxThreads: 0}
	if err := bad.Start(); err == nil {
		t.Error("MaxThreads=0 must fail")
	}
}

// TestKMeansAccumulatorConsistency: each cluster's per-dimension sums are
// committed atomically with the count, so sums must be consistent with the
// number of updates (every update adds < 1024 per dimension).
func TestKMeansAccumulatorConsistency(t *testing.T) {
	h := tm.NewHeap(1<<12, 4)
	km := &workloads.KMeans{Clusters: 4, Dims: 4}
	if err := km.Setup(h, workloads.NewRand(2)); err != nil {
		t.Fatal(err)
	}
	runner := workloads.NewBareRunner(stm.SwissTM{}, h, 4)
	d := &workloads.Driver{Workload: km, Runner: runner, MaxThreads: 4, Seed: 3}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for d.Ops() < 5000 {
	}
	d.Stop()
	sums, counts := workloads.KMeansAccumulators(km, h)
	for c := range counts {
		for dim, s := range sums[c] {
			if counts[c] == 0 {
				if s != 0 {
					t.Errorf("cluster %d has sum without updates", c)
				}
				continue
			}
			if s/counts[c] >= 1024 {
				t.Errorf("cluster %d dim %d mean %d out of range (torn update?)", c, dim, s/counts[c])
			}
		}
	}
}

// TestInterferenceStartStop exercises every antagonist kind.
func TestInterferenceStartStop(t *testing.T) {
	for _, k := range []workloads.InterferenceKind{workloads.StressCPU, workloads.StressMemory, workloads.StressAlloc} {
		inf := &workloads.Interference{Kind: k, Workers: 2}
		inf.Start()
		time.Sleep(10 * time.Millisecond)
		inf.Stop()
		if k.String() == "?" {
			t.Errorf("missing name for kind %d", k)
		}
	}
}

// TestSerialDriverDeterminism pins the serial driver's guarantee: same
// seed → identical operation streams, commit counts and heap contents.
func TestSerialDriverDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, uint64) {
		h := tm.NewHeap(1<<18, 1<<10)
		wl := &workloads.RBTree{KeyRange: 256, UpdateRatio: 0.5}
		if err := wl.Setup(h, workloads.NewRand(seed)); err != nil {
			t.Fatal(err)
		}
		r := workloads.NewBareRunner(&stm.TL2{}, h, 4)
		d := workloads.NewSerialDriver(wl, r, 4, seed)
		d.SetSlots(2)
		d.Run(500)
		d.SetSlots(4) // mid-run reconfiguration keeps per-slot streams
		d.Run(500)
		if d.Ops() != 1000 {
			t.Fatalf("ops = %d", d.Ops())
		}
		return h.Digest(), d.Ops()
	}
	d1, _ := run(9)
	d2, _ := run(9)
	if d1 != d2 {
		t.Fatalf("same seed, different heap digests: %016x vs %016x", d1, d2)
	}
	d3, _ := run(10)
	if d1 == d3 {
		t.Fatalf("different seeds, same heap digest %016x", d1)
	}
}

// TestSerialDriverSlotClamping covers SetSlots bounds.
func TestSerialDriverSlotClamping(t *testing.T) {
	h := tm.NewHeap(1<<16, 1<<8)
	wl := &workloads.RBTree{KeyRange: 64}
	if err := wl.Setup(h, workloads.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	d := workloads.NewSerialDriver(wl, workloads.NewBareRunner(&stm.GlobalLock{}, h, 2), 2, 1)
	d.SetSlots(0) // clamps to 1
	d.Step()
	d.SetSlots(99) // clamps to max slots
	d.Step()
	if d.Ops() != 2 {
		t.Fatalf("ops = %d", d.Ops())
	}
}
