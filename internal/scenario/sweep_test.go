package scenario

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cf"
	"repro/internal/config"
)

func tinySweepSpec(journal string) SweepSpec {
	return SweepSpec{
		Scenarios: []string{"hashmap", "rbtree"},
		Params: map[string]Values{
			"hashmap": {"buckets": "64", "keyrange": "256"},
			"rbtree":  {"keyrange": "256"},
		},
		Space: []config.Config{
			{Alg: config.NOrec, Threads: 1},
			{Alg: config.TL2, Threads: 2},
		},
		MaxThreads: 2,
		HeapWords:  1 << 20,
		Seed:       5,
		Ops:        1000,
		Journal:    journal,
	}
}

// TestSweepEmitsTrainableCSV checks the sweep → CSV → cf.ReadCSV →
// training-matrix round trip the offline profiling pipeline depends on.
func TestSweepEmitsTrainableCSV(t *testing.T) {
	res, err := Sweep(tinySweepSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured != 4 || res.Reused != 0 {
		t.Fatalf("measured %d, reused %d; want 4, 0", res.Measured, res.Reused)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	um, labels, err := cf.ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if um.Rows != 2 || um.Cols != 2 {
		t.Fatalf("round-tripped UM is %dx%d", um.Rows, um.Cols)
	}
	if labels[0] != "NOrec:1t" || labels[1] != "TL2:2t" {
		t.Fatalf("labels = %v", labels)
	}
	for r := 0; r < um.Rows; r++ {
		for c := 0; c < um.Cols; c++ {
			if cf.IsMissing(um.Data[r][c]) || um.Data[r][c] <= 0 {
				t.Fatalf("cell (%d,%d) = %v", r, c, um.Data[r][c])
			}
		}
	}
}

// TestSweepResumesFromJournal interrupts a sweep (simulated by sweeping a
// subset), then re-runs the full grid and checks journaled cells are
// reused rather than re-measured.
func TestSweepResumesFromJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.journal")

	first := tinySweepSpec(journal)
	first.Scenarios = []string{"hashmap"} // partial run: one of two rows
	fres, err := Sweep(first)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Measured != 2 {
		t.Fatalf("partial sweep measured %d cells, want 2", fres.Measured)
	}

	full := tinySweepSpec(journal)
	sres, err := Sweep(full)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Reused != 2 || sres.Measured != 2 {
		t.Fatalf("resume reused %d / measured %d; want 2 / 2", sres.Reused, sres.Measured)
	}
	// The reused row must carry the journaled values verbatim.
	for c := range full.Space {
		if sres.UM.Data[0][c] != fres.UM.Data[0][c] {
			t.Fatalf("journaled cell (hashmap,%d): %v != %v", c, sres.UM.Data[0][c], fres.UM.Data[0][c])
		}
	}

	// A third run finds everything journaled and measures nothing.
	tres, err := Sweep(tinySweepSpec(journal))
	if err != nil {
		t.Fatal(err)
	}
	if tres.Measured != 0 || tres.Reused != 4 {
		t.Fatalf("third sweep measured %d / reused %d; want 0 / 4", tres.Measured, tres.Reused)
	}
}

// TestSweepRejectsMismatchedJournal pins the fingerprint guard: resuming
// a journal measured under different conditions must fail loudly rather
// than silently mix incomparable measurements.
func TestSweepRejectsMismatchedJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	first := tinySweepSpec(journal)
	if _, err := Sweep(first); err != nil {
		t.Fatal(err)
	}
	changed := tinySweepSpec(journal)
	changed.Seed = 99
	if _, err := Sweep(changed); err == nil {
		t.Fatal("sweep with a different seed reused a stale journal")
	} else if !strings.Contains(err.Error(), "delete the journal") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}

// TestSweepDeterministicFresh pins that two fresh full sweeps (no journal)
// agree cell for cell.
func TestSweepDeterministicFresh(t *testing.T) {
	a, err := Sweep(tinySweepSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(tinySweepSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.UM.Data {
		for c := range a.UM.Data[r] {
			if a.UM.Data[r][c] != b.UM.Data[r][c] {
				t.Fatalf("cell (%d,%d): %v != %v", r, c, a.UM.Data[r][c], b.UM.Data[r][c])
			}
		}
	}
}
