package workloads

import (
	"fmt"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceBatch is the deterministic twin of proteusd's group-commit
// worker gate (internal/serve, Options.GroupCommit): every Op call
// generates a plan of BatchMax single-key micro-operations from the rng
// FIRST — so both legs of an A/B consume the rng stream identically —
// and then executes the plan either coalesced into one atomic block
// (GroupCommit on) or one atomic block per micro-op (off). Because the
// micro-ops run in plan order either way, only the transaction
// boundaries differ between the legs: the KV end-state, and therefore
// the heap digest, must be byte-identical. That metamorphic property is
// what the service-batch determinism goldens pin.
//
// Every CrossEvery-th Op is instead a cross-shard 2PC batch through the
// per-shard fences (ordered acquire, abort-all, apply+release), so the
// batching path coexists with fence traffic exactly as in the daemon.
type ServiceBatch struct {
	// Label overrides the workload name (default "service-batch").
	Label string
	// Shards is the number of key-space shards (default 4).
	Shards int
	// KeyRange bounds the keys (default 1 << 14).
	KeyRange int
	// InitialSize pre-populates the stores (default KeyRange/2).
	InitialSize int
	// Span is the width of a micro-op range scan (default 64).
	Span int
	// GroupCommit coalesces each plan into one atomic block.
	GroupCommit bool
	// BatchMax is the number of micro-ops per plan (default 8).
	BatchMax int
	// CrossEvery makes every Nth Op a cross-shard batch put (default 32;
	// negative disables).
	CrossEvery int
	// BatchKeys is the cross-shard batch width (default 4).
	BatchKeys int

	ring   *shard.Ring
	sets   []*RBSet
	fences tm.Addr // Shards consecutive fence words, one per shard
	ops    atomic.Uint64

	groupCommits atomic.Uint64
	groupedOps   atomic.Uint64
	crossBatches atomic.Uint64
	fencedTries  atomic.Uint64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, keyRange, span, batchMax, crossEvery, batchKeys int
}

// Name implements Workload.
func (s *ServiceBatch) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-batch"
}

func (s *ServiceBatch) params() (shards, keyRange, initial, span, batchMax, crossEvery, batchKeys int) {
	shards = s.Shards
	if shards <= 0 {
		shards = 4
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	span = s.Span
	if span <= 0 {
		span = 64
	}
	batchMax = s.BatchMax
	if batchMax <= 0 {
		batchMax = 8
	}
	crossEvery = s.CrossEvery
	if crossEvery < 0 {
		crossEvery = 0
	} else if crossEvery == 0 {
		crossEvery = 32
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	return
}

// Setup implements Workload: one store and one fence word per shard,
// pre-populated with the keys each shard owns.
func (s *ServiceBatch) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	s.shards, s.keyRange, initial, s.span, s.batchMax, s.crossEvery, s.batchKeys = s.params()
	s.ring = shard.New(s.shards)
	s.sets = make([]*RBSet, s.shards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("batch: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	fences, err := h.Alloc(s.shards)
	if err != nil {
		return fmt.Errorf("batch: fences: %w", err)
	}
	s.fences = fences
	s.ops.Store(0)
	s.groupCommits.Store(0)
	s.groupedOps.Store(0)
	s.crossBatches.Store(0)
	s.fencedTries.Store(0)
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := s.ring.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// fence returns shard i's fence word.
func (s *ServiceBatch) fence(i int) tm.Addr { return s.fences + tm.Addr(i) }

// Micro-op kinds of a plan entry.
const (
	mopGet = iota
	mopPut
	mopDel
	mopCAS
	mopScan
)

// microOp is one planned single-key operation: kind, key and the value a
// write installs. It is a pure function of the rng draws and the global
// op counter, so both A/B legs build identical plans.
type microOp struct {
	kind int
	key  uint64
	val  uint64
}

// plan draws BatchMax micro-ops from the rng under the "mixed" mix. All
// rng consumption happens here, before any execution.
func (s *ServiceBatch) plan(rng *Rand, n uint64) []microOp {
	mix := serviceMixes["mixed"]
	out := make([]microOp, s.batchMax)
	for i := range out {
		k := uint64(rng.Intn(s.keyRange))
		p := rng.Float64()
		var kind int
		switch {
		case p < mix.Get:
			kind = mopGet
		case p < mix.Get+mix.Put:
			kind = mopPut
		case p < mix.Get+mix.Put+mix.Del:
			kind = mopDel
		case p < mix.Get+mix.Put+mix.Del+mix.CAS:
			kind = mopCAS
		default:
			kind = mopScan
		}
		out[i] = microOp{kind: kind, key: k, val: n*uint64(s.batchMax) + uint64(i)}
	}
	return out
}

// applyMicro executes one plan entry against its owning shard's store
// inside the caller's transaction.
func (s *ServiceBatch) applyMicro(tx tm.Txn, self int, m microOp) {
	set := s.sets[s.ring.Owner(m.key)]
	switch m.kind {
	case mopGet:
		set.Get(tx, m.key)
	case mopPut:
		set.Insert(tx, self, m.key, m.val)
	case mopDel:
		set.Delete(tx, self, m.key)
	case mopCAS:
		if v, ok := set.Get(tx, m.key); ok {
			set.Insert(tx, self, m.key, v+1)
		}
	default:
		cnt := 0
		set.AscendRange(tx, m.key, m.key+uint64(s.span), func(_, _ uint64) bool {
			cnt++
			return true
		})
	}
}

// fencedShard reports whether any shard a plan entry routes to currently
// holds its fence — the batch-wide requeue check the serve worker's
// group commit runs per op.
func (s *ServiceBatch) fencedShard(tx tm.Txn, ms []microOp) bool {
	for _, m := range ms {
		if tx.Load(s.fence(s.ring.Owner(m.key))) != 0 {
			return true
		}
	}
	return false
}

// Op implements Workload: every CrossEvery-th call runs the cross-shard
// 2PC batch; otherwise the plan executes grouped or solo.
func (s *ServiceBatch) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if s.crossEvery > 0 && n%uint64(s.crossEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	ms := s.plan(rng, n)
	if s.GroupCommit {
		s.runGrouped(r, self, ms)
		return
	}
	for _, m := range ms {
		s.runSolo(r, self, m)
	}
}

// runGrouped executes the whole plan in one atomic block, retrying while
// any involved shard is fenced (the requeue the serve worker performs).
func (s *ServiceBatch) runGrouped(r Runner, self int, ms []microOp) {
	for try := 0; try < 1000; try++ {
		fenced := false
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = s.fencedShard(tx, ms); fenced {
				return
			}
			for _, m := range ms {
				s.applyMicro(tx, self, m)
			}
		})
		if !fenced {
			s.groupCommits.Add(1)
			s.groupedOps.Add(uint64(len(ms)))
			return
		}
		s.fencedTries.Add(1)
	}
}

// runSolo executes one plan entry in its own atomic block under the same
// fence check.
func (s *ServiceBatch) runSolo(r Runner, self int, m microOp) {
	fence := s.fence(s.ring.Owner(m.key))
	for try := 0; try < 1000; try++ {
		fenced := false
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			s.applyMicro(tx, self, m)
		})
		if !fenced {
			return
		}
		s.fencedTries.Add(1)
	}
}

// crossBatch runs one cross-shard batch put through the commit protocol
// (ordered acquire, abort-all on failure, apply+release per shard) —
// identical to ServiceSharded's, so the batching legs still exercise
// fence traffic.
func (s *ServiceBatch) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(s.keyRange))
	}
	parts := s.ring.Participants(keys)
	token := uint64(self) + 1
	for try := 0; try < 1000; try++ {
		acquired := 0
		ok := true
		for _, p := range parts {
			fence := s.fence(p)
			var got bool
			r.Atomic(self, func(tx tm.Txn) {
				got = false
				if tx.Load(fence) == 0 {
					tx.Store(fence, token)
					got = true
				}
			})
			if !got {
				ok = false
				break
			}
			acquired++
		}
		if !ok {
			for _, p := range parts[:acquired] {
				fence := s.fence(p)
				r.Atomic(self, func(tx tm.Txn) { tx.Store(fence, 0) })
			}
			continue
		}
		for _, p := range parts {
			set, fence := s.sets[p], s.fence(p)
			r.Atomic(self, func(tx tm.Txn) {
				for _, k := range keys {
					if s.ring.Owner(k) == p {
						set.Insert(tx, self, k, n)
					}
				}
				tx.Store(fence, 0)
			})
		}
		s.crossBatches.Add(1)
		return
	}
}

// Metrics implements Metered: the batching observables the A/B legs
// compare. Only these may differ between group commit on and off — the
// heap digest must not.
func (s *ServiceBatch) Metrics() map[string]uint64 {
	return map[string]uint64{
		"group_commits": s.groupCommits.Load(),
		"grouped_ops":   s.groupedOps.Load(),
		"cross_batches": s.crossBatches.Load(),
		"fenced_tries":  s.fencedTries.Load(),
	}
}

// Verify implements Verifier: every key must live on the shard that owns
// it and no fence may be left held.
func (s *ServiceBatch) Verify(h *tm.Heap) error {
	seq := NewBareRunner(seqAlg(), h, 1)
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if tx.Load(s.fence(i)) != 0 {
				err = fmt.Errorf("batch: shard %d fence left held", i)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if o := s.ring.Owner(k); o != i {
					err = fmt.Errorf("batch: key %d found on shard %d but owned by %d", k, i, o)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
