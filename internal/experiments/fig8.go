package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// Fig8Result reproduces Fig. 8 and Table 6: online optimization of dynamic
// workloads. Four applications each pass through three workload phases; the
// full ProteusTM runtime (oblivious to the applications — its training set
// is the synthetic offline UM) must track the moving optimum. For every
// phase the harness also measures the whole configuration space exhaustively
// to locate the true per-phase optima, the Best-Fixed-on-Average (BFA)
// configuration, and the sequential baseline.
type Fig8Result struct {
	Apps []Fig8App
}

// Fig8App is one application's run.
type Fig8App struct {
	Name string
	// Configs is the tuned space.
	Configs []config.Config
	// Truth[phase][config] is the measured throughput (ops/s).
	Truth [][]float64
	// OptIdx[phase] is the per-phase optimal configuration.
	OptIdx []int
	// BFAIdx is the best fixed configuration on average.
	BFAIdx int
	// SeqThroughput[phase] is the sequential (GlobalLock:1t) baseline.
	SeqThroughput []float64
	// ProteusKPI[phase] is ProteusTM's steady-state mean throughput in
	// the phase; ProteusDFO the distance from the phase optimum;
	// Explorations the number of profiled configurations in the phase.
	ProteusKPI, ProteusDFO []float64
	Explorations           []int
	// CrossDFO[i][j] is the DFO of phase-i's optimal configuration when
	// run in phase j (the off-diagonal of Table 6).
	CrossDFO [][]float64
	// Timeline is ProteusTM's KPI trace.
	Timeline []core.TimelinePoint
}

// phased wraps three workload variants and switches between them.
type phased struct {
	name   string
	phases []workloads.Workload
	cur    atomic.Int32
}

func (p *phased) Name() string { return p.name }

// Setup implements workloads.Workload: every phase's state is built up
// front so phase switches are instantaneous.
func (p *phased) Setup(h *tm.Heap, rng *workloads.Rand) error {
	for _, ph := range p.phases {
		if err := ph.Setup(h, rng); err != nil {
			return err
		}
	}
	return nil
}

// Op implements workloads.Workload: dispatch to the current phase.
func (p *phased) Op(r workloads.Runner, self int, rng *workloads.Rand) {
	p.phases[p.cur.Load()].Op(r, self, rng)
}

// fig8Apps builds the four applications with three contrasting phases each.
func fig8Apps() []*phased {
	return []*phased{
		{name: "rbtree", phases: []workloads.Workload{
			&workloads.RBTree{KeyRange: 1 << 8, UpdateRatio: 0.05, InitialSize: 1 << 7},
			&workloads.RBTree{KeyRange: 1 << 15, UpdateRatio: 0.5, InitialSize: 1 << 13},
			&workloads.RBTree{KeyRange: 1 << 6, UpdateRatio: 0.9, InitialSize: 1 << 5},
		}},
		{name: "stmbench7", phases: []workloads.Workload{
			&workloads.STMBench7{Depth: 4, Fanout: 3, ReadDominated: true},
			&workloads.STMBench7{Depth: 4, Fanout: 3},
			&workloads.STMBench7{Depth: 3, Fanout: 4, AtomicChain: 64},
		}},
		{name: "tpcc", phases: []workloads.Workload{
			// Read-heavy (order-status/stock-level dominated): scales.
			&workloads.TPCC{Warehouses: 8, Districts: 10, Customers: 128, Items: 1 << 12,
				Mix: [5]int{5, 10, 55, 58, 100}},
			// Single hot warehouse, write-dominated: serializes.
			&workloads.TPCC{Warehouses: 1, Districts: 2, Customers: 64, Items: 1 << 10,
				Mix: [5]int{55, 96, 97, 98, 100}},
			// Standard TPC-C mix.
			&workloads.TPCC{Warehouses: 4, Districts: 4, Customers: 128, Items: 1 << 13},
		}},
		{name: "memcached", phases: []workloads.Workload{
			&workloads.Memcached{Buckets: 1 << 12, KeyRange: 1 << 14, GetRatio: 0.95},
			&workloads.Memcached{Buckets: 1 << 8, KeyRange: 1 << 10, GetRatio: 0.5},
			&workloads.Memcached{Buckets: 1 << 12, KeyRange: 1 << 15, GetRatio: 0.05},
		}},
	}
}

// fig8Configs is the tuned space for the live experiment: a reduced version
// of the Machine-A space (Table 3) sized so that exhaustive ground-truth
// measurement stays tractable in a test harness.
func fig8Configs(maxThreads int) []config.Config {
	var threads []int
	for t := 1; t <= maxThreads; t *= 2 {
		threads = append(threads, t)
	}
	var out []config.Config
	for _, alg := range []config.AlgID{config.TL2, config.TinySTM, config.NOrec, config.SwissTM} {
		for _, t := range threads {
			out = append(out, config.Config{Alg: alg, Threads: t})
		}
	}
	for _, t := range threads {
		out = append(out, config.Config{Alg: config.HTM, Threads: t, Budget: 2, Policy: htm.PolicyGiveUp})
		out = append(out, config.Config{Alg: config.HTM, Threads: t, Budget: 8, Policy: htm.PolicyHalve})
	}
	return out
}

// Fig8 runs the live experiment.
func Fig8(scale Scale) (Fig8Result, error) {
	res := Fig8Result{}
	maxThreads := 8
	window := 150 * time.Millisecond
	phaseDur := 9 * time.Second
	if scale == Quick {
		window = 60 * time.Millisecond
		phaseDur = 2 * time.Second
	}
	for _, app := range fig8Apps() {
		a, err := runFig8App(app, maxThreads, window, phaseDur)
		if err != nil {
			return res, fmt.Errorf("fig8 %s: %w", app.name, err)
		}
		res.Apps = append(res.Apps, a)
	}
	return res, nil
}

func runFig8App(app *phased, maxThreads int, window, phaseDur time.Duration) (Fig8App, error) {
	cfgs := fig8Configs(maxThreads)
	out := Fig8App{Name: app.name, Configs: cfgs}

	// Build the runtime first so application state lives in its heap. The
	// training UM is synthetic: the application is completely absent from
	// the training set, as in §6.4.
	train := syntheticTrainingFor(cfgs, 60, 0xF16)
	rt, err := core.New(core.Options{
		HeapWords:       1 << 23,
		MaxThreads:      maxThreads,
		Configs:         cfgs,
		TrainKPI:        train,
		KPI:             core.Throughput,
		SamplePeriod:    window,
		SettleTime:      window / 2,
		MaxExplorations: 8,
		Seed:            99,
	})
	if err != nil {
		return out, err
	}
	if err := app.Setup(rt.Heap(), workloads.NewRand(21)); err != nil {
		return out, err
	}
	driver := &workloads.Driver{Workload: app, Runner: rt.Pool, MaxThreads: maxThreads, Seed: 33}
	if err := driver.Start(); err != nil {
		return out, err
	}
	defer stopDriver(driver, rt.Pool, maxThreads)

	// --- Ground truth: measure every configuration in every phase. Two
	// windows are averaged per point: the per-phase optimum is a max over
	// dozens of noisy estimates and would otherwise be biased upward,
	// inflating every DFO.
	measure := func() float64 {
		before := driver.Ops()
		start := time.Now()
		time.Sleep(2 * window)
		return float64(driver.Ops()-before) / time.Since(start).Seconds()
	}
	for phase := range app.phases {
		app.cur.Store(int32(phase))
		row := make([]float64, len(cfgs))
		for i, cfg := range cfgs {
			if err := rt.Pool.Reconfigure(cfg); err != nil {
				return out, err
			}
			time.Sleep(window / 3) // settle
			row[i] = measure()
		}
		out.Truth = append(out.Truth, row)
		// Sequential baseline.
		if err := rt.Pool.Reconfigure(config.Config{Alg: config.GlobalLock, Threads: 1}); err != nil {
			return out, err
		}
		time.Sleep(window / 3)
		out.SeqThroughput = append(out.SeqThroughput, measure())
	}
	for _, row := range out.Truth {
		out.OptIdx = append(out.OptIdx, argMax(row))
	}
	out.BFAIdx = bestFixedOnAverage(out.Truth)
	out.CrossDFO = crossDFO(out.Truth, out.OptIdx)

	// --- ProteusTM run: phases switch mid-flight; the Monitor must
	// detect each change and re-optimize.
	app.cur.Store(0)
	rt.Start()
	phaseMarks := make([]time.Duration, 0, len(app.phases))
	runStart := time.Now()
	for phase := range app.phases {
		app.cur.Store(int32(phase))
		phaseMarks = append(phaseMarks, time.Since(runStart))
		time.Sleep(phaseDur)
	}
	rt.Stop()
	out.Timeline = rt.Timeline()

	// Summarize steady-state KPI per phase (excluding exploration samples
	// and the first settle window after each phase mark).
	for phase := range app.phases {
		lo := phaseMarks[phase]
		hi := time.Duration(1<<62 - 1)
		if phase+1 < len(phaseMarks) {
			hi = phaseMarks[phase+1]
		}
		// Summarize only the post-adaptation tail of the phase: detection
		// plus exploration consume the head (the dips visible in the
		// paper's Fig. 8 timelines around each workload change).
		var vals []float64
		for _, pt := range out.Timeline {
			if pt.At <= lo+phaseDur*11/20 || pt.At > hi || pt.Exploring || pt.KPI == 0 {
				continue
			}
			vals = append(vals, pt.KPI)
		}
		mean := meanOf(vals)
		opt := out.Truth[phase][out.OptIdx[phase]]
		dfo := 0.0
		if opt > 0 {
			dfo = (opt - mean) / opt
			if dfo < 0 {
				dfo = 0
			}
		}
		out.ProteusKPI = append(out.ProteusKPI, mean)
		out.ProteusDFO = append(out.ProteusDFO, dfo)
		expl := 0
		for _, pt := range out.Timeline {
			if pt.Exploring && pt.At > lo && pt.At <= hi {
				expl++
			}
		}
		out.Explorations = append(out.Explorations, expl)
	}
	return out, nil
}

// syntheticTrainingFor builds a training UM over the live configuration
// space from the analytic model with a local-machine-like profile.
func syntheticTrainingFor(cfgs []config.Config, n int, seed uint64) *cf.Matrix {
	prof := machine.Profile{
		Name: "local", Cores: 8, HWThreads: 8, Sockets: 1, HasHTM: true,
		ThreadCounts: []int{1, 2, 4, 8}, StaticPower: 18, PowerPerThread: 6.5,
	}
	gen := &perfmodel.Generator{Machine: prof, Seed: seed}
	ws := gen.Workloads(n)
	return gen.Matrix(ws, cfgs, perfmodel.Throughput)
}

func argMax(xs []float64) int {
	best, idx := xs[0], 0
	for i, v := range xs {
		if v > best {
			best, idx = v, i
		}
	}
	return idx
}

// bestFixedOnAverage picks the configuration with the best mean normalized
// throughput across phases.
func bestFixedOnAverage(truth [][]float64) int {
	nCfg := len(truth[0])
	best, bestIdx := -1.0, 0
	for c := 0; c < nCfg; c++ {
		sum := 0.0
		for _, row := range truth {
			sum += row[c] / row[argMax(row)]
		}
		if sum > best {
			best, bestIdx = sum, c
		}
	}
	return bestIdx
}

// crossDFO computes DFO[i][j]: phase-i's optimum evaluated in phase j.
func crossDFO(truth [][]float64, optIdx []int) [][]float64 {
	n := len(truth)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			opt := truth[j][optIdx[j]]
			v := truth[j][optIdx[i]]
			out[i][j] = (opt - v) / opt
		}
	}
	return out
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Print renders Fig. 8's summary and Table 6.
func (r Fig8Result) Print(w io.Writer) {
	header(w, "Figure 8 / Table 6: online optimization of dynamic workloads (live run)")
	for _, app := range r.Apps {
		fmt.Fprintf(w, "\n%s — per-phase summary (throughput ops/s):\n", app.Name)
		fmt.Fprintf(w, "%-8s%-22s%14s%14s%14s%12s%8s\n",
			"phase", "optimal config", "optimal", "ProteusTM", "sequential", "DFO", "expl")
		for p := range app.Truth {
			opt := app.Truth[p][app.OptIdx[p]]
			fmt.Fprintf(w, "%-8d%-22s%14.0f%14.0f%14.0f%12s%8d\n",
				p+1, app.Configs[app.OptIdx[p]].String(), opt,
				app.ProteusKPI[p], app.SeqThroughput[p], pct(app.ProteusDFO[p]),
				app.Explorations[p])
		}
		fmt.Fprintf(w, "Table 6 cross-phase DFO (%%, row = config of phase i, col = evaluated in phase j; BFA = %s):\n",
			app.Configs[app.BFAIdx].String())
		for i := range app.CrossDFO {
			fmt.Fprintf(w, "  opt%d: ", i+1)
			for j := range app.CrossDFO[i] {
				fmt.Fprintf(w, "%8.0f", 100*app.CrossDFO[i][j])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nShape check: ProteusTM within a few % of each phase optimum with few explorations;")
	fmt.Fprintln(w, "each phase's optimum loses big (often >50%) in foreign phases.")
}
