package polytm_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/polytm"
	"repro/internal/tm"
)

func baseCfg(alg config.AlgID, threads int) config.Config {
	return config.Config{Alg: alg, Threads: threads, Budget: 5, Policy: htm.PolicyDecrease}
}

// TestAtomicBasic checks the dispatch path commits a simple transaction
// under every backend.
func TestAtomicBasic(t *testing.T) {
	for alg := config.AlgID(0); int(alg) < config.NumAlgs; alg++ {
		p := polytm.New(1024, 2, baseCfg(alg, 2))
		a := p.Heap().MustAlloc(1)
		p.Atomic(0, func(tx tm.Txn) {
			tx.Store(a, 5)
		})
		p.Atomic(1, func(tx tm.Txn) {
			v := tx.Load(a)
			tx.Store(a, v*2)
		})
		if got := p.Heap().LoadWord(a); got != 10 {
			t.Errorf("%v: got %d, want 10", alg, got)
		}
	}
}

// TestSwitchUnderLoad runs counters under continuous load while the adapter
// cycles through every TM algorithm and several parallelism degrees; the
// final counter total must equal the number of committed increments.
func TestSwitchUnderLoad(t *testing.T) {
	const workers = 8
	p := polytm.New(4096, workers, baseCfg(config.TL2, workers))
	base := p.Heap().MustAlloc(8)
	var done atomic.Bool
	var committed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := p.Ctx(id)
			for !done.Load() {
				slot := tm.Addr(c.Rand() % 8)
				p.Atomic(id, func(tx tm.Txn) {
					v := tx.Load(base + slot)
					tx.Store(base+slot, v+1)
				})
				committed.Add(1)
			}
		}(w)
	}

	cfgs := []config.Config{
		baseCfg(config.TinySTM, 4),
		baseCfg(config.NOrec, 2),
		baseCfg(config.HTM, 8),
		baseCfg(config.SwissTM, 3),
		baseCfg(config.Hybrid, 6),
		baseCfg(config.TL2, 1),
		baseCfg(config.GlobalLock, 5),
		baseCfg(config.HTM, 7),
	}
	for _, cfg := range cfgs {
		time.Sleep(5 * time.Millisecond)
		if err := p.Reconfigure(cfg); err != nil {
			t.Fatalf("Reconfigure(%v): %v", cfg, err)
		}
		if got := p.Config(); got != cfg {
			t.Fatalf("Config() = %v, want %v", got, cfg)
		}
	}
	// Finish with full parallelism so all workers can observe done.
	if err := p.Reconfigure(baseCfg(config.TL2, workers)); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()

	var total uint64
	for i := 0; i < 8; i++ {
		total += p.Heap().LoadWord(base + tm.Addr(i))
	}
	if total != committed.Load() {
		t.Errorf("counter total %d != committed transactions %d", total, committed.Load())
	}
	if s := p.SnapshotStats(); s.Commits != committed.Load() {
		t.Errorf("stats commits %d != %d", s.Commits, committed.Load())
	}
}

// TestParallelismDegree verifies that at most cfg.Threads workers execute
// transactions concurrently after a reconfiguration.
func TestParallelismDegree(t *testing.T) {
	const workers = 6
	p := polytm.New(1024, workers, baseCfg(config.NOrec, 2))
	a := p.Heap().MustAlloc(1)
	var inTx, maxInTx atomic.Int64
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !done.Load() {
				p.Atomic(id, func(tx tm.Txn) {
					n := inTx.Add(1)
					for {
						m := maxInTx.Load()
						if n <= m || maxInTx.CompareAndSwap(m, n) {
							break
						}
					}
					_ = tx.Load(a)
					time.Sleep(100 * time.Microsecond)
					inTx.Add(-1)
				})
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	observed := maxInTx.Load()
	if observed > 2 {
		t.Errorf("with 2 allowed threads observed %d concurrent transactions", observed)
	}
	// Re-open all workers so they can exit (aborted attempts re-run the
	// body, hence inTx may briefly exceed on retried attempts; NOrec
	// read-only never aborts here).
	if err := p.Reconfigure(baseCfg(config.NOrec, workers)); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
}

// TestNonStoppable verifies an exempted thread survives parallelism
// reductions.
func TestNonStoppable(t *testing.T) {
	p := polytm.New(1024, 4, baseCfg(config.TL2, 4))
	p.SetNonStoppable(3, true)
	if err := p.Reconfigure(baseCfg(config.TL2, 1)); err != nil {
		t.Fatal(err)
	}
	a := p.Heap().MustAlloc(1)
	doneCh := make(chan struct{})
	go func() {
		p.Atomic(3, func(tx tm.Txn) { tx.Store(a, 1) }) // must not block
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("non-stoppable thread was blocked by parallelism reduction")
	}
}

// TestReconfigureValidation checks range errors.
func TestReconfigureValidation(t *testing.T) {
	p := polytm.New(1024, 4, baseCfg(config.TL2, 4))
	if err := p.Reconfigure(baseCfg(config.TL2, 0)); err == nil {
		t.Error("expected error for 0 threads")
	}
	if err := p.Reconfigure(baseCfg(config.TL2, 5)); err == nil {
		t.Error("expected error for threads > max")
	}
}

// TestCMReconfigureIsImmediate verifies a contention-management-only change
// does not quiesce threads (it completes while a transaction is running).
func TestCMReconfigureIsImmediate(t *testing.T) {
	p := polytm.New(4096, 2, baseCfg(config.HTM, 2))
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		first := true
		p.Atomic(0, func(tx tm.Txn) {
			if first {
				first = false
				close(started)
				<-release
			}
		})
	}()
	<-started
	cfg := baseCfg(config.HTM, 2)
	cfg.Budget = 16
	cfg.Policy = htm.PolicyHalve
	done := make(chan error, 1)
	go func() { done <- p.Reconfigure(cfg) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CM-only reconfiguration blocked on a running transaction")
	}
	close(release)
}
