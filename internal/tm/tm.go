// Package tm provides the low-level transactional memory substrate shared by
// every TM algorithm in this repository: a word-addressed transactional heap,
// per-thread transaction contexts with reusable read/write sets, the common
// Algorithm interface implemented by each TM backend, and the retry loop that
// executes atomic blocks.
//
// The package plays the role of the GCC TM ABI in the paper: application code
// demarcates atomic blocks as Go closures and performs every shared-memory
// access through Txn.Load and Txn.Store (the "instrumented path"). TM
// algorithms keep all their metadata (ownership records, version clocks) in
// side tables owned by the Heap, never inside application words, which is the
// property PolyTM requires to switch algorithms at run time.
package tm

import (
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Addr is the address of one 64-bit word in a Heap. Addresses are plain
// indices: TM data structures store Addr values inside heap words to build
// linked structures (the analogue of pointers in the C benchmarks).
type Addr uint32

// NilAddr is the null pointer of the transactional heap. Word 0 is reserved
// so that NilAddr never aliases live data.
const NilAddr Addr = 0

// AbortCode classifies why a transaction attempt failed. PolyTM's contention
// manager uses the code to pick the retry policy (e.g. HTM capacity aborts
// may consume the whole retry budget).
type AbortCode uint8

const (
	// AbortNone means the attempt did not abort.
	AbortNone AbortCode = iota
	// AbortConflict is a data conflict with a concurrent transaction.
	AbortConflict
	// AbortCapacity is a best-effort HTM capacity overflow.
	AbortCapacity
	// AbortExplicit is a programmer-requested retry.
	AbortExplicit
	// AbortFallback means the attempt was killed by a fallback-path
	// transaction (e.g. the HTM global-lock subscription fired).
	AbortFallback
)

// String returns the human-readable name of the abort code.
func (a AbortCode) String() string {
	switch a {
	case AbortNone:
		return "none"
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortFallback:
		return "fallback"
	}
	return "unknown"
}

// Txn is the interface through which atomic blocks access the heap. It is
// the Go analogue of the instrumented tm_read/tm_write calls the compiler
// emits in the paper's GCC integration.
type Txn interface {
	// Load transactionally reads the word at a.
	Load(a Addr) uint64
	// Store transactionally writes v to the word at a.
	Store(a Addr, v uint64)
}

// Algorithm is one TM implementation (an STM, a simulated HTM, a hybrid, or
// the global-lock baseline). All algorithm state lives in the Ctx and in the
// Heap's metadata tables so that PolyTM can retarget a thread to a different
// Algorithm between transactions.
type Algorithm interface {
	// Name returns the short identifier used in configuration encodings
	// (e.g. "tl2", "norec", "htm").
	Name() string
	// Begin starts a new transaction attempt on c.
	Begin(c *Ctx)
	// Load performs a transactional read. It may abort the attempt by
	// calling c.Retry.
	Load(c *Ctx, a Addr) uint64
	// Store performs a transactional write. It may abort the attempt by
	// calling c.Retry.
	Store(c *Ctx, a Addr, v uint64)
	// Commit attempts to commit. It returns false if the attempt must be
	// retried; in that case the runtime calls Abort before retrying.
	Commit(c *Ctx) bool
	// Abort releases any resources held by the failed attempt (encounter
	// locks, speculative footprint marks). It must be idempotent.
	Abort(c *Ctx)
}

// retrySig is the panic payload used to unwind an atomic block when the
// algorithm detects a conflict mid-transaction. It never escapes Run.
type retrySig struct{ code AbortCode }

// TxnBinder is optionally implemented by algorithms that provide their own
// concrete Txn view of a context. A concrete binding replaces the generic
// boundTxn's double dispatch (interface call into the wrapper, then a second
// interface call into the algorithm) with a single interface call that lands
// directly in the backend's Load/Store, and — because every binding is
// pointer-shaped — converting it to Txn never allocates per attempt. All
// built-in backends implement it; the generic fallback below exists for
// out-of-tree Algorithm implementations (tests, ablations).
//
// Caution for wrapper algorithms: a type that embeds another Algorithm
// inherits its BindTxn by method promotion, and the promoted binding
// dispatches into the embedded type's Load/Store — bypassing the wrapper.
// Wrappers that override Load/Store MUST declare their own BindTxn (see
// htm.NaiveHTM).
type TxnBinder interface {
	// BindTxn returns the Txn view atomic blocks use to access c. The
	// result must remain valid for the lifetime of c (it is cached).
	BindTxn(c *Ctx) Txn
}

// boundTxn is the generic fallback binding for algorithms that do not
// implement TxnBinder. Converting it to Txn heap-allocates (it is two words
// wide), which is why bindings are cached per context.
type boundTxn struct {
	alg Algorithm
	c   *Ctx
}

func (t boundTxn) Load(a Addr) uint64     { return t.alg.Load(t.c, a) }
func (t boundTxn) Store(a Addr, v uint64) { t.alg.Store(t.c, a, v) }

// Bind returns a Txn view of (alg, c) without running a transaction. It is
// used by tests that drive algorithm internals directly.
func Bind(alg Algorithm, c *Ctx) Txn {
	if b, ok := alg.(TxnBinder); ok {
		return b.BindTxn(c)
	}
	return boundTxn{alg, c}
}

// BindCached returns the Txn view of (alg, c), reusing the binding cached in
// c while the algorithm is unchanged. The steady-state cost is one interface
// compare; rebinding happens only when PolyTM retargets the thread to a
// different backend.
func BindCached(alg Algorithm, c *Ctx) Txn {
	if alg == c.boundAlg {
		return c.bound
	}
	tx := Bind(alg, c)
	c.bound, c.boundAlg = tx, alg
	return tx
}

// Run executes fn as an atomic block under alg, retrying until it commits.
// It is the engine beneath every public Atomic entry point. Before each
// attempt Run invokes c.BeginHook if set; PolyTM uses the hook to implement
// the thread-gating protocol of Algorithm 1 in the paper, so a thread stuck
// in a retry storm still observes reconfiguration requests.
func Run(alg Algorithm, c *Ctx, fn func(Txn)) {
	tx := BindCached(alg, c)
	c.Attempts = 0
	c.TxnID++
	for {
		if c.BeginHook != nil {
			c.BeginHook()
		}
		alg.Begin(c)
		code, ok := attempt(alg, tx, c, fn)
		if ok {
			c.Stats.IncCommit()
			return
		}
		c.AbortReason = code
		alg.Abort(c)
		c.Stats.Record(code)
		c.Attempts++
		c.Backoff()
	}
}

// Attempt runs one try of the atomic block under alg, converting a retry
// panic into a normal (code, false) return. Non-retry panics propagate. The
// caller is responsible for Begin beforehand and, on failure, for invoking
// alg.Abort. PolyTM's dispatch loop uses Attempt directly so the algorithm
// can be re-resolved between attempts.
func Attempt(alg Algorithm, c *Ctx, fn func(Txn)) (code AbortCode, ok bool) {
	return attempt(alg, BindCached(alg, c), c, fn)
}

// attempt is the shared single-try body behind Run and Attempt.
func attempt(alg Algorithm, tx Txn, c *Ctx, fn func(Txn)) (code AbortCode, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			sig, isRetry := r.(retrySig)
			if !isRetry {
				panic(r)
			}
			code, ok = sig.code, false
		}
	}()
	fn(tx)
	if alg.Commit(c) {
		return AbortNone, true
	}
	return c.AbortReason, false
}

// Ctx is the per-thread transaction context. One Ctx is allocated per worker
// thread and reused across transactions; its read/write sets are recycled to
// keep the steady-state allocation rate at zero. Fields are exported so that
// algorithm packages (stm, htm) can share them without accessor overhead.
type Ctx struct {
	// ID is the PolyTM thread slot of the owning thread (0-based).
	ID int
	// H is the heap this context operates on.
	H *Heap

	// RV and WV are the read and write version timestamps used by
	// clock-based STMs (TL2, TinySTM, SwissTM) and by NOrec (RV doubles
	// as the sequence-lock snapshot).
	RV, WV uint64

	// WS is the redo-log write set shared by all write-back algorithms.
	WS WriteSet
	// RS is the ownership-record read set for TL2-style validation
	// (stripe index plus observed version).
	RS ReadSet
	// VRS is the value-based read set used by NOrec.
	VRS ValueReadSet
	// Locked records the stripes locked encounter-time (TinySTM, SwissTM)
	// along with the metadata needed to restore them on abort.
	Locked LockSet

	// Attempts counts failed attempts of the transaction currently being
	// retried. Reset when Run returns.
	Attempts int
	// TxnID is a per-thread logical transaction sequence number,
	// incremented once per atomic block (not per attempt). HTM uses it to
	// reload its retry budget exactly once per transaction.
	TxnID uint64
	// AbortReason is set by algorithms before returning false from Commit
	// so the runtime can attribute the failure.
	AbortReason AbortCode

	// HTM simulation state (see internal/htm): speculative footprint and
	// contention-management budget.
	HTM HTMState

	// Stats accumulates commit/abort counters; PolyTM's monitor reads
	// them with atomic snapshots.
	Stats Stats

	// BeginHook, when non-nil, runs before every transaction attempt.
	// PolyTM installs the Algorithm-1 gate here.
	BeginHook func()

	// Priority is the contention-management priority (incremented by
	// SwissTM's greedy manager as a transaction keeps losing).
	Priority uint64

	// rng is the per-thread xorshift state used for randomized backoff.
	rng uint64

	// MaxBackoff bounds the randomized backoff spin (iterations). Zero
	// selects the default.
	MaxBackoff int

	// bound caches the Txn view handed to atomic blocks for boundAlg, so
	// steady-state dispatch performs no interface boxing (see BindCached).
	bound    Txn
	boundAlg Algorithm

	_ [5]uint64 // pad to keep hot contexts off each other's cache lines
}

// NewCtx returns a context for thread slot id operating on h.
func NewCtx(id int, h *Heap) *Ctx {
	c := &Ctx{ID: id, H: h, rng: uint64(id)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
	c.WS.init()
	c.Locked.init()
	return c
}

// Retry aborts the current transaction attempt with the given code. It
// unwinds the atomic block via panic; Run catches the signal and retries.
func (c *Ctx) Retry(code AbortCode) {
	panic(retrySig{code})
}

// ResetSets clears every read/write/lock set for a fresh attempt.
func (c *Ctx) ResetSets() {
	c.WS.Reset()
	c.RS.Reset()
	c.VRS.Reset()
	c.Locked.Reset()
}

// Rand returns the next value of the per-thread xorshift64* generator.
func (c *Ctx) Rand() uint64 {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Backoff performs bounded randomized exponential backoff proportional to
// the number of failed attempts, yielding the processor between spins so
// that oversubscribed configurations still make progress.
func (c *Ctx) Backoff() {
	max := c.MaxBackoff
	if max == 0 {
		max = 1 << 12
	}
	shift := c.Attempts
	if shift > 10 {
		shift = 10
	}
	window := 1 << uint(shift)
	if window > max {
		window = max
	}
	spins := int(c.Rand() % uint64(window+1))
	for i := 0; i < spins; i++ {
		spinPause()
	}
	if c.Attempts > 3 && c.Attempts%4 == 0 {
		runtime.Gosched()
	}
}

// spinPause is a calibrated short delay used in backoff loops.
//
//go:noinline
func spinPause() {
	for i := 0; i < 4; i++ {
		_ = atomic.LoadUint64(&spinSink)
	}
}

var spinSink uint64

// Stats holds per-thread commit and abort counters, padded so concurrent
// threads never share a cache line (the paper's "padded state variable").
// The counters are owner-local: only the owning thread mutates them, with
// plain stores, so transaction accounting adds no atomic RMWs to the fast
// path. Foreign readers must establish happens-before with the owner first:
// polytm.Pool.SnapshotStats parks each thread at a transaction boundary via
// the Algorithm-1 gate, and everything else reads only after joining the
// worker goroutines (quiescence).
type Stats struct {
	Commits        uint64
	Aborts         uint64
	ConflictAborts uint64
	CapacityAborts uint64
	ExplicitAborts uint64
	FallbackAborts uint64
	FallbackRuns   uint64 // HTM transactions executed on the fallback path
	_              [1]uint64
}

// IncCommit counts one committed transaction (owner thread only).
func (s *Stats) IncCommit() { s.Commits++ }

// IncFallbackRun counts one fallback-path execution (owner thread only).
func (s *Stats) IncFallbackRun() { s.FallbackRuns++ }

// Record counts one aborted attempt classified by code (owner thread only).
func (s *Stats) Record(code AbortCode) {
	s.Aborts++
	switch code {
	case AbortConflict:
		s.ConflictAborts++
	case AbortCapacity:
		s.CapacityAborts++
	case AbortExplicit:
		s.ExplicitAborts++
	case AbortFallback:
		s.FallbackAborts++
	}
}

// Snapshot returns a copy of the counters. Callers must be the owning
// thread or have quiesced it (see the Stats doc comment); PolyTM's
// SnapshotStats provides the gate-synchronized path for live pools.
func (s *Stats) Snapshot() Stats { return *s }

// Add accumulates o into s (plain adds; use on snapshots only).
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.ConflictAborts += o.ConflictAborts
	s.CapacityAborts += o.CapacityAborts
	s.ExplicitAborts += o.ExplicitAborts
	s.FallbackAborts += o.FallbackAborts
	s.FallbackRuns += o.FallbackRuns
}

// Sub returns s minus o field-wise (use on snapshots to window counters).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Commits:        s.Commits - o.Commits,
		Aborts:         s.Aborts - o.Aborts,
		ConflictAborts: s.ConflictAborts - o.ConflictAborts,
		CapacityAborts: s.CapacityAborts - o.CapacityAborts,
		ExplicitAborts: s.ExplicitAborts - o.ExplicitAborts,
		FallbackAborts: s.FallbackAborts - o.FallbackAborts,
		FallbackRuns:   s.FallbackRuns - o.FallbackRuns,
	}
}

// HTMState is the simulated-HTM speculation state embedded in every Ctx.
// The fixed-capacity footprint arrays model the bounded speculative buffers
// of best-effort hardware TM: overflowing them raises a capacity abort.
type HTMState struct {
	// RLines and WLines record the cache lines speculatively read and
	// written by the current hardware attempt.
	RLines, WLines []uint32
	// Doomed is set (remotely, by a conflicting transaction) when this
	// attempt must abort; checked on every access and at commit.
	Doomed atomic.Bool
	// InTx marks that a hardware attempt is active.
	InTx bool
	// Fallback marks that the current attempt runs on the software
	// fallback path (global lock or hybrid STM) instead of in hardware.
	Fallback bool
	// Budget is the remaining hardware retry budget for the current
	// transaction, managed by the contention-management policy.
	Budget int
	// SnapshotRV is the fallback-lock subscription snapshot.
	SnapshotRV uint64
	// LastTxn is the Ctx.TxnID for which Budget was last initialized.
	LastTxn uint64
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
