// Package monitor implements RecTM's Monitor (§5.3): lightweight detection
// of workload and environment behaviour changes from the stream of KPI
// samples, using the Adaptive CUSUM algorithm. A detected change triggers a
// fresh optimization phase in the Controller.
package monitor

import "math"

// CUSUM is an adaptive two-sided cumulative-sum change detector. The
// reference mean and deviation scale are tracked with exponentially weighted
// moving averages, so both the drift allowance K and the alarm threshold H
// adapt to the signal's recent behaviour — detecting abrupt jumps as well as
// smooth drifts, as §5.3 requires, without per-workload tuning.
type CUSUM struct {
	// Alpha is the EWMA weight for the running mean/deviation (default
	// 0.1: roughly a 10-sample memory).
	Alpha float64
	// K is the drift allowance in deviation units (default 1).
	K float64
	// H is the alarm threshold in deviation units (default 10).
	H float64
	// Warmup is the number of samples consumed before alarms may fire
	// (default 5).
	Warmup int

	mean   float64
	dev    float64
	sPos   float64
	sNeg   float64
	n      int
	alarms int
}

// NewCUSUM returns a detector with the default parameters.
func NewCUSUM() *CUSUM {
	return &CUSUM{Alpha: 0.1, K: 1, H: 10, Warmup: 5}
}

// Observe consumes one KPI sample and reports whether a behaviour change was
// detected at this sample. After an alarm the detector re-anchors on the new
// level.
func (c *CUSUM) Observe(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	alpha := c.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	k := c.K
	if k <= 0 {
		k = 1
	}
	h := c.H
	if h <= 0 {
		h = 10
	}
	warm := c.Warmup
	if warm <= 0 {
		warm = 5
	}

	c.n++
	if c.n == 1 {
		c.mean = x
		c.dev = math.Abs(x) * 0.05
		return false
	}
	dev := c.dev
	if dev <= 0 {
		dev = math.Max(math.Abs(c.mean)*0.01, 1e-12)
	}
	kUnit := k * dev
	c.sPos = math.Max(0, c.sPos+(x-c.mean)-kUnit)
	c.sNeg = math.Max(0, c.sNeg-(x-c.mean)-kUnit)

	alarm := c.n > warm && (c.sPos > h*dev || c.sNeg > h*dev)

	// Adapt the reference level and deviation scale — but freeze the
	// adaptation while a change is suspected (either statistic past half
	// the threshold); otherwise a level shift inflates the deviation
	// estimate and the alarm threshold chases the drifting signal.
	suspected := c.sPos > h*dev/2 || c.sNeg > h*dev/2
	if !suspected {
		c.mean = (1-alpha)*c.mean + alpha*x
		c.dev = (1-alpha)*c.dev + alpha*math.Abs(x-c.mean)
	}

	if alarm {
		c.Reset(x)
		c.alarms++
		return true
	}
	return false
}

// Reset re-anchors the detector on a new reference level (called after an
// alarm or after the Controller installs a new configuration, whose KPI
// level is expected to differ).
func (c *CUSUM) Reset(level float64) {
	c.mean = level
	c.dev = math.Abs(level) * 0.05
	c.sPos, c.sNeg = 0, 0
	c.n = 1
}

// Alarms returns the number of changes detected so far.
func (c *CUSUM) Alarms() int { return c.alarms }

// Mean returns the current reference level estimate.
func (c *CUSUM) Mean() float64 { return c.mean }
