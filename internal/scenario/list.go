package scenario

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/config"
)

// RenderList writes the human-readable registry listing: every scenario
// with its family, description and parameter schema, followed by the tuned
// configuration space for maxThreads worker slots. The output is
// deterministic (scenarios sorted by name) and covered by a golden-file
// test, so the listing, the registry and the docs cannot silently drift.
func RenderList(w io.Writer, maxThreads int) {
	scenarios := All()
	fmt.Fprintf(w, "SCENARIOS (%d across %d families)\n", len(scenarios), len(Families()))
	for _, s := range scenarios {
		fmt.Fprintf(w, "\n  %-14s [%s]  %s\n", s.Name, s.Family, s.Description)
		for _, p := range s.Params {
			def := p.Default
			if def == "" {
				def = `""`
			}
			fmt.Fprintf(w, "      --param %s=%s  (%s)  %s\n", p.Name, def, p.Kind, p.Desc)
		}
	}
	space := config.DefaultSpace(maxThreads)
	fmt.Fprintf(w, "\nCONFIG SPACE for --threads=%d (%d points: algorithm × parallelism × HTM tuning)\n", maxThreads, len(space))
	var line []string
	for i, c := range space {
		line = append(line, fmt.Sprintf("%-16s", c.String()))
		if len(line) == 4 || i == len(space)-1 {
			fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(line, ""), " "))
			line = line[:0]
		}
	}
	fmt.Fprintf(w, "\nRun one:   proteusbench run --scenario <name> [--param k=v] [--config <label>] [--seed N]\n")
	fmt.Fprintf(w, "Sweep all: proteusbench sweep --out um.csv\n")
}

// MarkdownTable renders the scenario registry as a GitHub-flavored
// markdown table (used to generate the README's scenario section).
func MarkdownTable(w io.Writer) {
	fmt.Fprintln(w, "| Scenario | Family | Description | Parameters |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, s := range All() {
		params := make([]string, len(s.Params))
		for i, p := range s.Params {
			params[i] = fmt.Sprintf("`%s=%s`", p.Name, p.Default)
		}
		fmt.Fprintf(w, "| `%s` | %s | %s | %s |\n", s.Name, s.Family, s.Description, strings.Join(params, " "))
	}
}
