// Package bench hosts the micro-benchmark bodies shared by the `go test
// -bench` suite (bench_test.go at the repository root) and the
// `proteusbench bench` regression recorder. Keeping the bodies in a normal
// package lets the recorder run the exact same code via testing.Benchmark
// and persist the results as a BENCH_<n>.json record, so every perf PR can
// prove its before/after numbers against the same workloads the test suite
// exercises (see docs/performance.md).
package bench

import (
	"fmt"
	"sync"
	"testing"

	proteustm "repro"
	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/polytm"
	"repro/internal/stm"
	"repro/internal/tm"
)

// AlgorithmNames lists the TM backends covered by the micro suite, in the
// order the sub-benchmarks run.
var AlgorithmNames = []string{"tl2", "tiny", "norec", "swiss", "htm", "gl"}

// NewAlgorithm returns a fresh instance of the named TM backend. It panics
// on an unknown name (the suite is a fixed registry, not user input).
func NewAlgorithm(name string) tm.Algorithm {
	switch name {
	case "tl2":
		return stm.TL2{}
	case "tiny":
		return stm.TinySTM{}
	case "norec":
		return stm.NOrec{}
	case "swiss":
		return stm.SwissTM{}
	case "htm":
		return &htm.HTM{CM: htm.NewCM(5, htm.PolicyDecrease)}
	case "gl":
		return &stm.GlobalLock{}
	}
	panic(fmt.Sprintf("bench: unknown algorithm %q", name))
}

// CounterTx runs the counter micro-workload on one algorithm at the given
// thread count: each transaction reads one of 1024 uncontended slots and
// increments it. This is the read-dominated short-transaction shape that
// stresses per-access dispatch and the write-set-miss path.
func CounterTx(b *testing.B, alg tm.Algorithm, threads int) {
	b.ReportAllocs()
	h := tm.NewHeap(1<<16, threads)
	base := h.MustAlloc(1024)
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := tm.NewCtx(id, h)
			for i := 0; i < per; i++ {
				slot := tm.Addr(c.Rand() % 1024)
				tm.Run(alg, c, func(tx tm.Txn) {
					v := tx.Load(base + slot)
					tx.Store(base+slot, v+1)
				})
			}
		}(w)
	}
	wg.Wait()
}

// writeHeavySpan is the number of distinct words each write-heavy
// transaction touches. It deliberately exceeds the write set's
// linear-to-indexed threshold so the indexed lookup path is on the hot path.
const writeHeavySpan = 24

// WriteHeavyTx runs the write-heavy micro-workload: each transaction stores
// writeHeavySpan words spread over distinct stripes and reads every one of
// them back, so both the write-set insert path and the write-set *hit*
// lookup path are exercised well past the linear-scan regime.
func WriteHeavyTx(b *testing.B, alg tm.Algorithm, threads int) {
	b.ReportAllocs()
	const region = 1 << 14
	h := tm.NewHeap(1<<18, threads)
	base := h.MustAlloc(region)
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := tm.NewCtx(id, h)
			stride := tm.Addr(1 << tm.StripeShift) // one word per stripe
			for i := 0; i < per; i++ {
				start := tm.Addr(c.Rand() % (region - writeHeavySpan*uint64(stride)))
				tm.Run(alg, c, func(tx tm.Txn) {
					var sum uint64
					for j := tm.Addr(0); j < writeHeavySpan; j++ {
						a := base + start + j*stride
						tx.Store(a, uint64(j))
						sum += tx.Load(a) // served from the write set
					}
					tx.Store(base+start, sum)
				})
			}
		}(w)
	}
	wg.Wait()
}

// PublicAPI exercises the root package's Atomic path end to end (Open →
// Worker → Atomic) on a single worker. Steady state must not allocate.
func PublicAPI(b *testing.B) {
	b.ReportAllocs()
	sys, err := proteustm.Open(proteustm.WithWorkers(1), proteustm.WithHeapWords(1<<12))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	w, err := sys.Worker(0)
	if err != nil {
		b.Fatal(err)
	}
	a := sys.MustAlloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Atomic(func(tx proteustm.Txn) {
			tx.Store(a, tx.Load(a)+1)
		})
	}
}

// DispatchPolyTM runs the counter workload through PolyTM's gated dispatch
// at 4 threads (pair with CounterTx on the bare algorithm for the Table-4
// overhead delta).
func DispatchPolyTM(b *testing.B) {
	b.ReportAllocs()
	const threads = 4
	pool := polytm.New(1<<16, threads, config.Config{Alg: config.TL2, Threads: threads})
	base := pool.Heap().MustAlloc(1024)
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := pool.Ctx(id)
			for i := 0; i < per; i++ {
				slot := tm.Addr(c.Rand() % 1024)
				pool.Atomic(id, func(tx tm.Txn) {
					v := tx.Load(base + slot)
					tx.Store(base+slot, v+1)
				})
			}
		}(w)
	}
	wg.Wait()
}

// ThreadGateFA measures one gated single-threaded store transaction through
// PolyTM (the fetch-and-add side of the Algorithm-1 ablation).
func ThreadGateFA(b *testing.B) {
	b.ReportAllocs()
	pool := polytm.New(1<<12, 1, config.Config{Alg: config.TL2, Threads: 1})
	base := pool.Heap().MustAlloc(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Atomic(0, func(tx tm.Txn) { tx.Store(base, 1) })
	}
}

// groupedOps is the number of micro-operations the group-commit pair
// executes per iteration — the serve worker gate's default batch cap.
const groupedOps = 16

// GroupCommitSolo runs groupedOps single-operation transactions per
// iteration: the one-transaction-per-op baseline of the serving layer.
func GroupCommitSolo(b *testing.B) { groupCommitTx(b, false) }

// GroupCommitGrouped coalesces the same groupedOps operations into one
// transaction per iteration — the amortization the group-commit worker
// gate (serve.Options.GroupCommit) exploits under backlog. Compare
// ns/op against GroupCommitSolo: both do identical logical work, so the
// gap is pure per-transaction overhead (begin/validate/commit).
func GroupCommitGrouped(b *testing.B) { groupCommitTx(b, true) }

func groupCommitTx(b *testing.B, grouped bool) {
	b.ReportAllocs()
	pool := polytm.New(1<<16, 1, config.Config{Alg: config.TL2, Threads: 1})
	base := pool.Heap().MustAlloc(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if grouped {
			pool.Atomic(0, func(tx tm.Txn) {
				for j := 0; j < groupedOps; j++ {
					a := base + tm.Addr((i+j)%1024)
					tx.Store(a, tx.Load(a)+1)
				}
			})
			continue
		}
		for j := 0; j < groupedOps; j++ {
			a := base + tm.Addr((i+j)%1024)
			pool.Atomic(0, func(tx tm.Txn) { tx.Store(a, tx.Load(a)+1) })
		}
	}
}

// Case is one named benchmark of the regression suite. Names mirror the
// `go test -bench` hierarchy (e.g. "Algorithms/tl2/4t") so records can be
// compared against test output with benchstat.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite returns the regression suite recorded by `proteusbench bench`: the
// counter workload for every backend at 1, 4 and 8 threads, the write-heavy
// workload at 1 and 4 threads, the PolyTM dispatch pair, the group-commit
// amortization pair, and the public API path.
func Suite() []Case {
	var cases []Case
	for _, name := range AlgorithmNames {
		name := name
		for _, threads := range []int{1, 4, 8} {
			threads := threads
			cases = append(cases, Case{
				Name: fmt.Sprintf("Algorithms/%s/%dt", name, threads),
				Fn:   func(b *testing.B) { CounterTx(b, NewAlgorithm(name), threads) },
			})
		}
		for _, threads := range []int{1, 4} {
			threads := threads
			cases = append(cases, Case{
				Name: fmt.Sprintf("AlgorithmsWriteHeavy/%s/%dt", name, threads),
				Fn:   func(b *testing.B) { WriteHeavyTx(b, NewAlgorithm(name), threads) },
			})
		}
	}
	cases = append(cases,
		Case{Name: "PolyTMDispatch/bare", Fn: func(b *testing.B) { CounterTx(b, NewAlgorithm("tl2"), 4) }},
		Case{Name: "PolyTMDispatch/polytm", Fn: DispatchPolyTM},
		Case{Name: "GroupCommit/solo", Fn: GroupCommitSolo},
		Case{Name: "GroupCommit/grouped", Fn: GroupCommitGrouped},
		Case{Name: "PublicAPI", Fn: PublicAPI},
	)
	return cases
}
