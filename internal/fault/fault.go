// Package fault is the deterministic fault-injection substrate behind
// proteusd's chaos testing: a seeded injector that decides, at named
// points on the serving layer's hot paths, whether to simulate a failure
// — a coordinator crash between the prepare and apply phases of a
// cross-shard commit, a coordinator that goes quiet mid-acquire while
// holding fences, a shard whose workers stop making progress, or an
// artificial per-operation latency spike.
//
// The substrate is wired behind nil-checked hooks: a server built without
// an Injector pays one pointer comparison per hook, no allocation and no
// lock, so production cost is zero. With an Injector installed, every
// decision is a pure function of the rule set, the seed and the arrival
// order at each point, which is what makes a chaos run replayable: the
// same schedule against the same request stream injects the same faults.
//
// Rules are written in a small schedule grammar (see Parse):
//
//	point[:shard]@key=value;key=value,...
//
// e.g. `coord-crash@after=3;every=5;count=6,shard-stall:1@after=1500;count=1;stall=1200ms`
// crashes the coordinator on the 4th, 9th, ... prepared cross-shard
// batch (six times total) and stalls shard 1's workers for 1.2s once,
// after their 1500th dequeue.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one instrumented site in the serving layer.
type Point string

const (
	// FenceAcquireStall delays the cross-shard coordinator between two
	// fence acquisitions, so it sits on already-claimed fences looking
	// exactly like a dead coordinator to the failure detector. Arrival
	// unit: one fence acquisition attempt.
	FenceAcquireStall Point = "fence-acquire-stall"
	// CoordCrash kills the coordinator between prepare (all fences
	// acquired, decision recorded) and apply: the client gets a 503 and
	// every participant's fence stays held until the failure detector
	// recovers it. Arrival unit: one prepared cross-shard batch.
	CoordCrash Point = "coord-crash"
	// ShardStall pauses a shard's queue workers, freezing its progress
	// while its admission queue keeps filling — the signature the
	// per-shard circuit breaker trips on. Arrival unit: one worker
	// dequeue on the shard.
	ShardStall Point = "shard-stall"
	// OpDelay adds an artificial latency spike to one data operation.
	// Arrival unit: one executed operation.
	OpDelay Point = "op-delay"
	// ReshardDonorCrash kills the resharding migrator mid-copy, donor
	// side: the donor's fence stays held over a partially-exported span
	// until the failure detector rolls the migration back (the placement
	// never flipped, so the donor still serves everything). Both
	// migration directions share the point: on a merge the rollback also
	// deletes the partial copy from the live recipient before the fence
	// releases. Arrival unit: one migration copy batch; the shard filter
	// matches the donor's index (the fleet's top shard for a merge).
	ReshardDonorCrash Point = "reshard-donor-crash"
	// ReshardInstallCrash kills the migrator after the span is fully
	// installed on the recipient but before the placement flips: same
	// rollback as ReshardDonorCrash — on a split the copied data is
	// unreachable garbage the next attempt clears, on a merge the
	// detector deletes it from the live recipient. Arrival unit: one
	// completed span copy about to flip.
	ReshardInstallCrash Point = "reshard-install-crash"
)

// points is the closed set of valid fault points.
var points = map[Point]bool{
	FenceAcquireStall: true, CoordCrash: true, ShardStall: true, OpDelay: true,
	ReshardDonorCrash: true, ReshardInstallCrash: true,
}

// Rule arms one fault point. A rule fires when an arrival at its point
// (optionally filtered to one shard) passes its trigger: skip the first
// After arrivals, then fire every Every-th arrival (default 1), at most
// Count times (0 = unlimited); a non-zero Prob replaces the modular
// trigger with a seeded coin flip. Delay is the injected pause for the
// stall/delay points (ignored by CoordCrash, whose action is the crash
// itself).
type Rule struct {
	Point Point
	// Shard filters arrivals to one shard index; -1 (the default from
	// Parse when no ":shard" suffix is given) matches every shard and
	// the shard-agnostic coordinator points.
	Shard int
	After uint64
	Every uint64
	Count uint64
	Prob  float64
	Delay time.Duration
}

// ruleState is one armed rule plus its arrival/fire counters.
type ruleState struct {
	Rule
	arrivals uint64
	fires    uint64
}

// Injector is a set of armed rules sharing one seeded random stream. All
// methods are safe for concurrent use; a nil *Injector is a valid no-op
// injector (every Fire reports false).
type Injector struct {
	mu    sync.Mutex
	rng   uint64
	rules []*ruleState
}

// NewInjector builds an injector with the given seed and rules.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	inj := &Injector{rng: seed | 1}
	for _, r := range rules {
		inj.Add(r)
	}
	return inj
}

// Add arms one more rule.
func (inj *Injector) Add(r Rule) {
	if r.Every == 0 {
		r.Every = 1
	}
	inj.mu.Lock()
	inj.rules = append(inj.rules, &ruleState{Rule: r})
	inj.mu.Unlock()
}

// next is a splitmix64 step on the injector's seeded stream (used only by
// probabilistic rules, so modular schedules stay exactly reproducible).
func (inj *Injector) next() float64 {
	inj.rng += 0x9E3779B97F4A7C15
	z := inj.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Fire records one arrival at point p on shard (pass -1 for the
// shard-agnostic coordinator points) and reports whether any rule fires,
// with the longest configured Delay among the firing rules. The caller
// owns the action semantics: sleep for stall/delay points, abandon the
// protocol for CoordCrash.
func (inj *Injector) Fire(p Point, shard int) (time.Duration, bool) {
	if inj == nil {
		return 0, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var d time.Duration
	fired := false
	for _, rs := range inj.rules {
		if rs.Point != p {
			continue
		}
		if rs.Shard >= 0 && shard >= 0 && rs.Shard != shard {
			continue
		}
		rs.arrivals++
		if rs.Count > 0 && rs.fires >= rs.Count {
			continue
		}
		if rs.arrivals <= rs.After {
			continue
		}
		if rs.Prob > 0 {
			if inj.next() >= rs.Prob {
				continue
			}
		} else if (rs.arrivals-rs.After-1)%rs.Every != 0 {
			continue
		}
		rs.fires++
		fired = true
		if rs.Delay > d {
			d = rs.Delay
		}
	}
	return d, fired
}

// Fired totals the fires of every rule armed on point p.
func (inj *Injector) Fired(p Point) uint64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n uint64
	for _, rs := range inj.rules {
		if rs.Point == p {
			n += rs.fires
		}
	}
	return n
}

// Snapshot returns per-rule fire counts keyed "point" or "point:shard",
// summed across rules sharing a key — the /statusz faults block.
func (inj *Injector) Snapshot() map[string]uint64 {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]uint64, len(inj.rules))
	for _, rs := range inj.rules {
		k := string(rs.Point)
		if rs.Shard >= 0 {
			k = fmt.Sprintf("%s:%d", rs.Point, rs.Shard)
		}
		out[k] += rs.fires
	}
	return out
}

// String renders the armed schedule back in the Parse grammar (rules in
// arming order), for logs.
func (inj *Injector) String() string {
	if inj == nil {
		return ""
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	parts := make([]string, 0, len(inj.rules))
	for _, rs := range inj.rules {
		parts = append(parts, rs.Rule.String())
	}
	return strings.Join(parts, ",")
}

// String renders one rule in the Parse grammar.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(string(r.Point))
	if r.Shard >= 0 {
		fmt.Fprintf(&b, ":%d", r.Shard)
	}
	var kv []string
	if r.After > 0 {
		kv = append(kv, fmt.Sprintf("after=%d", r.After))
	}
	if r.Every > 1 {
		kv = append(kv, fmt.Sprintf("every=%d", r.Every))
	}
	if r.Count > 0 {
		kv = append(kv, fmt.Sprintf("count=%d", r.Count))
	}
	if r.Prob > 0 {
		kv = append(kv, fmt.Sprintf("prob=%g", r.Prob))
	}
	if r.Delay > 0 {
		kv = append(kv, fmt.Sprintf("stall=%s", r.Delay))
	}
	if len(kv) > 0 {
		b.WriteByte('@')
		b.WriteString(strings.Join(kv, ";"))
	}
	return b.String()
}

// Parse builds an injector from a comma-separated schedule in the
// grammar `point[:shard]@key=value;key=value`. Keys: after, every, count
// (uint), prob (float in (0,1]), stall or delay (a Go duration). An empty
// spec returns a nil injector (the no-op).
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := NewInjector(seed)
	for _, raw := range strings.Split(spec, ",") {
		r, err := parseRule(strings.TrimSpace(raw))
		if err != nil {
			return nil, err
		}
		inj.Add(r)
	}
	return inj, nil
}

// Points lists the valid fault-point names, sorted (for error messages
// and --help text).
func Points() []string {
	out := make([]string, 0, len(points))
	for p := range points {
		out = append(out, string(p))
	}
	sort.Strings(out)
	return out
}

func parseRule(raw string) (Rule, error) {
	r := Rule{Shard: -1, Every: 1}
	head, params, hasParams := strings.Cut(raw, "@")
	name, shard, hasShard := strings.Cut(head, ":")
	r.Point = Point(name)
	if !points[r.Point] {
		return r, fmt.Errorf("fault: unknown point %q (have: %s)", name, strings.Join(Points(), ", "))
	}
	if hasShard {
		v, err := strconv.Atoi(shard)
		if err != nil || v < 0 {
			return r, fmt.Errorf("fault: rule %q: bad shard %q", raw, shard)
		}
		r.Shard = v
	}
	if !hasParams {
		return r, nil
	}
	for _, kv := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return r, fmt.Errorf("fault: rule %q: want key=value, got %q", raw, kv)
		}
		var err error
		switch k {
		case "after":
			r.After, err = strconv.ParseUint(v, 10, 64)
		case "every":
			r.Every, err = strconv.ParseUint(v, 10, 64)
			if err == nil && r.Every == 0 {
				err = fmt.Errorf("must be >= 1")
			}
		case "count":
			r.Count, err = strconv.ParseUint(v, 10, 64)
		case "prob":
			r.Prob, err = strconv.ParseFloat(v, 64)
			if err == nil && (r.Prob <= 0 || r.Prob > 1) {
				err = fmt.Errorf("want (0,1]")
			}
		case "stall", "delay":
			r.Delay, err = time.ParseDuration(v)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return r, fmt.Errorf("fault: rule %q: parameter %q: %v", raw, kv, err)
		}
	}
	return r, nil
}
