// Live resharding: installing a shard.SplitHeaviest plan under load.
//
// The migration is a fenced protocol step, not a redeploy:
//
//	plan   — PlanSplitHeaviest over the live ops_routed counters picks the
//	         donor shard and the key span to move (clamped around the
//	         deque-reserved window).
//	fence  — the migrator claims the donor's fence with the same
//	         CAS-with-fence step a cross-shard commit uses, under a
//	         conflict-with-everything key signature, so every local
//	         operation and every competing coordinator serializes against
//	         the move.
//	copy   — the moved span streams donor → recipient in bounded range
//	         transactions, each guarded by the fence hold and re-stamping
//	         the holder heartbeat.
//	flip   — the grown fleet is already published, the span installed, so
//	         the placement swaps atomically (shard.Epoched) under the next
//	         epoch; every router loads the pair per-operation.
//	release — still fenced, the donor bumps its placement-epoch word
//	         (stale-routed operations start bouncing for re-routing the
//	         instant the fence drops), deletes the moved span in bounded
//	         batches, and releases.
//
// Crash model: a migrator that dies mid-copy or after install-but-
// before-flip leaves the donor's fence held with an unregistered token;
// the failure detector's orphan recovery releases it (rollback — the
// placement never flipped, so the donor still serves the whole span, and
// the partial copy on the spare shard is cleared when the next attempt
// begins). See docs/sharding.md for the crash matrix.
//
// The merge direction (PlanMergeColdest) reuses the same fenced
// pipeline with the asymmetries inverted: there is no spare to grow and
// clear — the recipient is a live shard serving its own keys throughout
// — and the flip shrinks the placement, after which the donor (always
// the fleet's top shard) is drained and retired for good. Because the
// recipient is live, a crashed merge's partial copy must be rolled back
// (deleted from the recipient) before the donor's fence is ever
// released; the failure detector does this through the activeMig record
// before its unregistered-token release. See docs/sharding.md.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	proteustm "repro"
	"repro/internal/fault"
	"repro/internal/shard"
)

// dequeHome is the shard the deque lives on. The deque is not
// partitioned and never migrates.
const dequeHome = 0

// DequeReservedLo is the bottom of the deque-reserved key window
// [DequeReservedLo, 2^64-1]: the key-space shadow of the unpartitioned
// deque pinned to shard dequeHome. A reshard plan must never move it —
// clampPlanForDeque trims a moved span that reaches into the window and
// rejects one that lies entirely inside it — so the guard that deque
// state never migrates is structural, not an implicit assumption.
const DequeReservedLo = ^uint64(0) - 1023

// migrateBatch bounds the key-value pairs one migration copy/delete
// transaction touches, keeping each step a bounded transaction instead
// of one scan proportional to the span's population.
const migrateBatch = 256

// autosplitMinRouted is the minimum total routed operations before the
// autosplit trigger trusts the load signal enough to split on it.
const autosplitMinRouted = 1024

// reshardResult is the JSON reply of POST /admin/reshard (and the
// autosplit/automerge triggers' log source). Applied=false with a Reason
// is the explicit no-op: nothing worth moving, no degenerate plan
// installed. Plan echoes the direction ("split" or "merge"); NewShard is
// split-only and Recipient merge-only.
type reshardResult struct {
	Plan         string `json:"plan"`
	Applied      bool   `json:"applied"`
	Reason       string `json:"reason,omitempty"`
	Err          string `json:"err,omitempty"`
	Epoch        uint64 `json:"epoch,omitempty"`
	Donor        int    `json:"donor"`
	NewShard     int    `json:"new_shard"`
	Recipient    int    `json:"recipient"`
	MovedLo      uint64 `json:"moved_lo"`
	MovedHi      uint64 `json:"moved_hi"`
	KeysMigrated uint64 `json:"keys_migrated"`
	Shards       int    `json:"shards"`
}

// handleReshard serves POST /admin/reshard: plan, migrate and install
// one placement step live. The optional JSON body selects the direction
// — {"plan":"split"} (the default when the body is empty) or
// {"plan":"merge"}.
func (s *Server) handleReshard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, reshardResult{Err: "POST required"})
		return
	}
	var body struct {
		Plan string `json:"plan"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, reshardResult{Err: fmt.Sprintf("parsing request body: %v", err)})
		return
	}
	var res reshardResult
	var code int
	switch body.Plan {
	case "", "split":
		res, code = s.Reshard()
	case "merge":
		res, code = s.ReshardMerge()
	default:
		writeJSON(w, http.StatusBadRequest,
			reshardResult{Err: fmt.Sprintf("unknown plan %q (want %q or %q)", body.Plan, "split", "merge")})
		return
	}
	writeJSON(w, code, res)
}

// Reshard computes a SplitHeaviest plan from the live per-shard routed
// counters and installs it: grow the fleet by one shard, migrate the
// moved span under the donor's fence, flip the placement epoch. One
// reshard runs at a time (409 when busy); a plan the planner cannot
// produce (zero load, un-splittable span) is an explicit no-op, and a
// plan that would move deque-reserved keys is clamped or rejected.
func (s *Server) Reshard() (reshardResult, int) {
	// Registering in inflight keeps Close from tearing shards down under
	// a live migration (it waits for us like any other submission).
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return reshardResult{Plan: "split", Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	if !s.reshardMu.TryLock() {
		return reshardResult{Plan: "split", Err: "a reshard is already in progress"}, http.StatusConflict
	}
	defer s.reshardMu.Unlock()
	s.resharding.Store(true)
	defer s.resharding.Store(false)

	part, _ := s.place.Load()
	rp, ok := part.(*shard.RangePartitioner)
	if !ok {
		return reshardResult{Plan: "split", Err: fmt.Sprintf("resharding requires the range partitioner (have %q)", part.Kind())},
			http.StatusBadRequest
	}
	fleet := s.fleet()
	load := make([]uint64, part.Shards())
	for i := range load {
		load[i] = fleet[i].routed.Load()
	}
	plan, ok := rp.PlanSplitHeaviest(load)
	if !ok {
		s.opts.Logf("serve: reshard no-op: zero load or heaviest span too narrow to split (shards=%d)", part.Shards())
		return reshardResult{Plan: "split", Reason: "no splittable span (zero load or heaviest span too narrow)",
			Shards: part.Shards()}, http.StatusOK
	}
	plan, err := clampPlanForDeque(plan)
	if err != nil {
		return reshardResult{Plan: "split", Err: err.Error(), Donor: plan.Donor, NewShard: plan.NewShard,
			Shards: part.Shards()}, http.StatusBadRequest
	}

	moved, newEpoch, err := s.migrate(plan)
	res := reshardResult{
		Plan: "split", Donor: plan.Donor, NewShard: plan.NewShard,
		MovedLo: plan.MovedLo, MovedHi: plan.MovedHi,
		KeysMigrated: moved, Shards: s.part().Shards(),
	}
	if err != nil {
		res.Err = err.Error()
		s.opts.Logf("serve: reshard failed: %v", err)
		return res, http.StatusServiceUnavailable
	}
	s.reshards.Add(1)
	s.keysMigrated.Add(moved)
	res.Applied = true
	res.Epoch = newEpoch
	s.opts.Logf("serve: reshard installed: shard %d split, span [%d, %d] -> shard %d, %d keys migrated, placement epoch %d",
		plan.Donor, plan.MovedLo, plan.MovedHi, plan.NewShard, moved, newEpoch)
	return res, http.StatusOK
}

// clampPlanForDeque enforces the deque guard on a split plan: a moved
// span that reaches into the deque-reserved window is trimmed to end at
// DequeReservedLo-1 (the window stays with the donor via an extra tail
// span), and a span entirely inside the window is rejected outright.
// Without the clamp every top-span split would be illegal — the top
// span's moved interval always runs to 2^64-1.
func clampPlanForDeque(plan shard.SplitPlan) (shard.SplitPlan, error) {
	if plan.MovedLo >= DequeReservedLo {
		return plan, fmt.Errorf("reshard plan rejected: moved span [%d, %d] lies inside the deque-reserved window [%d, 2^64-1]",
			plan.MovedLo, plan.MovedHi, uint64(DequeReservedLo))
	}
	if plan.MovedHi < DequeReservedLo {
		return plan, nil
	}
	starts, owners := plan.Grown.Spans()
	// The moved span starts at MovedLo and is owned by NewShard; reaching
	// past DequeReservedLo it must be the table's last span (no boundary
	// is ever created above DequeReservedLo).
	j := len(starts) - 1
	if starts[j] != plan.MovedLo || owners[j] != plan.NewShard {
		return plan, fmt.Errorf("reshard plan rejected: moved span [%d, %d] overlaps the deque-reserved window mid-table",
			plan.MovedLo, plan.MovedHi)
	}
	starts = append(starts, DequeReservedLo)
	owners = append(owners, plan.Donor)
	grown, err := shard.NewRangeFromSpans(starts, owners, plan.Grown.Universe())
	if err != nil {
		return plan, fmt.Errorf("reshard plan rejected: clamping around the deque-reserved window: %v", err)
	}
	plan.MovedHi = DequeReservedLo - 1
	plan.Grown = grown
	return plan, nil
}

// migrate executes one clamped split plan: grow (or reuse) the fleet's
// spare shard, clear it, fence the donor, copy the span, flip the
// placement, and clean the donor up under the same fence. It returns the
// migrated pair count and the installed placement epoch.
func (s *Server) migrate(plan shard.SplitPlan) (moved uint64, newEpoch uint64, err error) {
	fleet := s.fleet()
	donor := fleet[plan.Donor]
	var recip *shardState
	if plan.NewShard < len(fleet) {
		// A spare shard left by an earlier rolled-back attempt: reuse it.
		recip = fleet[plan.NewShard]
	} else {
		recip, err = s.newShard(plan.NewShard)
		if err != nil {
			return 0, 0, fmt.Errorf("building shard %d: %w", plan.NewShard, err)
		}
		grown := make([]*shardState, len(fleet), len(fleet)+1)
		copy(grown, fleet)
		grown = append(grown, recip)
		// Publish the grown fleet before the placement can name it:
		// readers load the placement first, so once the flip lands, index
		// NewShard is guaranteed present.
		s.fleetPtr.Store(&grown)
		s.startShardWorkers(recip)
	}

	// Clear the recipient's KV state: an earlier rolled-back attempt may
	// have left a partial copy, and stray keys would pollute range scans
	// once the recipient starts serving.
	for {
		var more bool
		r := s.ctl(recip, func(w *proteustm.Worker, slot int) response {
			w.Atomic(func(tx proteustm.Txn) {
				_, more = recip.store.DeleteSpan(tx, slot, 0, ^uint64(0), migrateBatch)
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			return 0, 0, fmt.Errorf("clearing recipient shard %d: %s", plan.NewShard, r.Err)
		}
		if !more {
			break
		}
	}

	// Fence the donor. The conflict-with-everything signature makes the
	// keyed granularity behave exactly like the whole-shard word for the
	// migration window: every local KV operation requeues, every
	// competing cross-shard commit serializes.
	token := s.nextToken.Add(1)
	hold, err := s.acquireMigrationFence(donor, token)
	if err != nil {
		return 0, 0, err
	}
	beatAddr := donor.store.FenceBeatWord()
	if hold.slot >= 0 {
		_, _, beatAddr = donor.store.FenceSlotWordsOf(hold.slot)
	}

	// Copy the moved span donor → recipient in bounded batches. Each
	// export runs under the fence-hold guard — if the failure detector
	// recovered the fence, this migration is dead and must stop — and
	// re-stamps the holder heartbeat so a long copy is never mistaken
	// for an orphan.
	lo := plan.MovedLo
	for {
		if _, fire := s.opts.Fault.Fire(fault.ReshardDonorCrash, plan.Donor); fire {
			// Injected migrator crash mid-copy: abandon with the fence
			// held. The failure detector sees an unregistered token and
			// rolls the migration back by releasing the fence; the
			// placement never flipped, so the donor still serves the whole
			// span and the partial copy is cleared on the next attempt.
			return 0, 0, fmt.Errorf("reshard migrator crashed mid-copy (injected fault); fence recovery pending")
		}
		var keys, vals []uint64
		var next uint64
		var resume, held bool
		r := s.ctl(donor, func(w *proteustm.Worker, _ int) response {
			w.Atomic(func(tx proteustm.Txn) {
				keys, vals, next, resume = nil, nil, 0, false
				if held = donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch); !held {
					return
				}
				keys, vals, next, resume = donor.store.ExportSpan(tx, lo, plan.MovedHi, migrateBatch)
				tx.Store(beatAddr, uint64(time.Now().UnixNano()))
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			s.releaseMigrationFence(donor, hold, token)
			return 0, 0, fmt.Errorf("exporting span from shard %d: %s", plan.Donor, r.Err)
		}
		if !held {
			return 0, 0, fmt.Errorf("donor fence recovered out from under the migration; rolled back")
		}
		if len(keys) > 0 {
			r = s.ctl(recip, func(w *proteustm.Worker, slot int) response {
				w.Atomic(func(tx proteustm.Txn) {
					recip.store.InstallPairs(tx, slot, keys, vals)
				})
				return response{Applied: true}
			})
			if r.Err != "" {
				s.releaseMigrationFence(donor, hold, token)
				return 0, 0, fmt.Errorf("installing span on shard %d: %s", plan.NewShard, r.Err)
			}
			moved += uint64(len(keys))
		}
		if !resume {
			break
		}
		lo = next
	}

	if _, fire := s.opts.Fault.Fire(fault.ReshardInstallCrash, plan.Donor); fire {
		// Injected migrator crash after install, before the flip: same
		// rollback as the donor-side crash — the copied span is
		// unreachable garbage until the next attempt clears it.
		return 0, 0, fmt.Errorf("reshard migrator crashed before the flip (injected fault); fence recovery pending")
	}

	// Flip. The grown fleet is published and the span fully installed,
	// so any operation routed under the new epoch finds its shard and
	// its data; everything routed under the old epoch either requeues on
	// the still-held fence or bounces off the placement bump below.
	newEpoch = s.place.Install(plan.Grown)

	// Donor cleanup, entirely under the fence: bump the placement-epoch
	// word (in the same transactions that delete, so a stale-routed
	// operation can never observe the donor after a delete without also
	// observing the bump), remove the moved span in bounded batches,
	// release. If the detector stole the fence mid-cleanup (a falsely
	// declared death — the beat re-stamps make this a pathological
	// FenceDeadline), re-acquire and resume: the flip is installed, and
	// leftover moved keys on the donor would tear range scans.
	held := true
	for {
		if !held {
			hold, err = s.acquireMigrationFence(donor, token)
			if err != nil {
				// Can't re-fence: publish the bump unfenced — monotonic and
				// harmless, and without it stale-routed operations would
				// read the half-deleted span.
				s.ctl(donor, func(w *proteustm.Worker, _ int) response {
					w.Atomic(func(tx proteustm.Txn) { donor.store.BumpPlacement(tx, newEpoch) })
					return response{}
				})
				return moved, newEpoch, fmt.Errorf("re-fencing donor for cleanup: %w", err)
			}
			beatAddr = donor.store.FenceBeatWord()
			if hold.slot >= 0 {
				_, _, beatAddr = donor.store.FenceSlotWordsOf(hold.slot)
			}
			held = true
		}
		var more bool
		r := s.ctl(donor, func(w *proteustm.Worker, slot int) response {
			w.Atomic(func(tx proteustm.Txn) {
				more = false
				if held = donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch); !held {
					return
				}
				donor.store.BumpPlacement(tx, newEpoch)
				_, more = donor.store.DeleteSpan(tx, slot, plan.MovedLo, plan.MovedHi, migrateBatch)
				tx.Store(beatAddr, uint64(time.Now().UnixNano()))
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			s.releaseMigrationFence(donor, hold, token)
			return moved, newEpoch, fmt.Errorf("cleaning donor shard %d: %s", plan.Donor, r.Err)
		}
		if !held {
			continue
		}
		if !more {
			break
		}
	}
	s.releaseMigrationFence(donor, hold, token)
	return moved, newEpoch, nil
}

// acquireMigrationFence claims the donor's fence for the migration,
// riding out coordinator contention with the cross-shard backoff
// schedule.
func (s *Server) acquireMigrationFence(donor *shardState, token uint64) (response, error) {
	for attempt := 0; ; attempt++ {
		r := s.ctlAcquire(donor, token, ^uint64(0))
		if r.Err != "" {
			return r, fmt.Errorf("acquiring donor fence: %s", r.Err)
		}
		if r.Applied {
			return r, nil
		}
		if attempt+1 >= s.opts.CrossRetries {
			return r, fmt.Errorf("donor fence contention: exhausted %d acquisition attempts", s.opts.CrossRetries)
		}
		s.crossBackoff(attempt)
	}
}

// releaseMigrationFence frees the migration's fence hold, epoch-guarded
// like every release: a hold the failure detector already recovered is
// left alone.
func (s *Server) releaseMigrationFence(donor *shardState, hold response, token uint64) {
	s.ctl(donor, func(w *proteustm.Worker, _ int) response {
		w.Atomic(func(tx proteustm.Txn) {
			if donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch) {
				donor.store.FenceReleaseAt(tx, hold.slot, hold.epoch)
			}
		})
		return response{}
	})
}

// migRecord identifies the in-flight merge migration so the failure
// detector can roll its partial copy back off the live recipient. It is
// set (under migMu) right after the donor's fence is acquired and
// cleared atomically with the placement flip: a record still present
// when the detector recovers the token means the flip never happened,
// so the copied keys on the recipient are deletable duplicates.
type migRecord struct {
	token            uint64
	donor, recipient int
	lo, hi           uint64
}

// ReshardMerge computes a PlanMergeColdest plan from the live per-shard
// routed counters and installs it: fence the retiring donor (always the
// fleet's top shard), copy its span into the adjacent recipient, flip
// the placement epoch one shard smaller, then drain and retire the
// donor so its workers and tuner actually stop. It shares the split
// path's single-migration lock (409 when busy) and no-op contract: a
// plan the planner declines (single shard, top shard not coldest) is an
// explicit 200 no-op.
func (s *Server) ReshardMerge() (reshardResult, int) {
	return s.reshardMerge(nil)
}

// reshardMerge is ReshardMerge with an optional load-vector override:
// the automerge trigger passes its per-interval routed deltas, the admin
// endpoint passes nil to read the cumulative counters.
func (s *Server) reshardMerge(load []uint64) (reshardResult, int) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return reshardResult{Plan: "merge", Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	if !s.reshardMu.TryLock() {
		return reshardResult{Plan: "merge", Err: "a reshard is already in progress"}, http.StatusConflict
	}
	defer s.reshardMu.Unlock()
	s.resharding.Store(true)
	defer s.resharding.Store(false)

	part, _ := s.place.Load()
	rp, ok := part.(*shard.RangePartitioner)
	if !ok {
		return reshardResult{Plan: "merge", Err: fmt.Sprintf("resharding requires the range partitioner (have %q)", part.Kind())},
			http.StatusBadRequest
	}
	// Spares sit above the placement's top shard; retire them first so
	// the fleet's top entry is the plan's donor.
	s.retireSpares()
	fleet := s.fleet()
	if load == nil {
		load = make([]uint64, part.Shards())
		for i := range load {
			load[i] = fleet[i].routed.Load()
		}
	}
	plan, ok := rp.PlanMergeColdest(load)
	if !ok {
		s.opts.Logf("serve: merge no-op: single shard or top shard not coldest (shards=%d)", part.Shards())
		return reshardResult{Plan: "merge", Reason: "no mergeable span (single shard or top shard not coldest)",
			Shards: part.Shards()}, http.StatusOK
	}

	moved, newEpoch, err := s.migrateMerge(plan)
	res := reshardResult{
		Plan: "merge", Donor: plan.Donor, Recipient: plan.Recipient,
		MovedLo: plan.MovedLo, MovedHi: plan.MovedHi,
		KeysMigrated: moved, Shards: s.part().Shards(),
	}
	if err != nil {
		res.Err = err.Error()
		s.opts.Logf("serve: merge failed: %v", err)
		return res, http.StatusServiceUnavailable
	}
	// The placement no longer names the donor: drain and retire it so
	// its workers, detector and tuner stop for good.
	s.retireShard(s.fleet()[plan.Donor])
	s.merges.Add(1)
	s.keysMigrated.Add(moved)
	res.Applied = true
	res.Epoch = newEpoch
	res.Shards = s.part().Shards()
	s.opts.Logf("serve: merge installed: shard %d's span [%d, %d] -> shard %d, %d keys migrated, placement epoch %d, donor retired",
		plan.Donor, plan.MovedLo, plan.MovedHi, plan.Recipient, moved, newEpoch)
	return res, http.StatusOK
}

// migrateMerge executes one merge plan: fence the retiring donor,
// stream its span into the live recipient (which keeps serving its own
// keys throughout — only operations the donor's fence covers wait),
// flip the placement, and clean the donor up under the same fence. The
// caller retires the donor afterwards. Unlike the split path there is
// no spare to grow and clear: the recipient is live, so a partial copy
// left by a crash is rolled back (rollbackMergeCopy) before the donor's
// fence is released — copied duplicates must never become observable,
// or a scan spanning the boundary would double-count them.
func (s *Server) migrateMerge(plan shard.MergePlan) (moved uint64, newEpoch uint64, err error) {
	fleet := s.fleet()
	if plan.Donor != len(fleet)-1 {
		return 0, 0, fmt.Errorf("merge donor %d is not the fleet's top shard (%d)", plan.Donor, len(fleet)-1)
	}
	donor, recip := fleet[plan.Donor], fleet[plan.Recipient]

	token := s.nextToken.Add(1)
	hold, err := s.acquireMigrationFence(donor, token)
	if err != nil {
		return 0, 0, err
	}
	beatAddr := donor.store.FenceBeatWord()
	if hold.slot >= 0 {
		_, _, beatAddr = donor.store.FenceSlotWordsOf(hold.slot)
	}
	// Record the migration before the first copy batch: if this migrator
	// dies, the failure detector finds the record under the orphaned
	// token and deletes the partial copy from the recipient before
	// releasing the fence.
	s.migMu.Lock()
	s.activeMig = &migRecord{token: token, donor: plan.Donor, recipient: plan.Recipient, lo: plan.MovedLo, hi: plan.MovedHi}
	s.migMu.Unlock()

	lo := plan.MovedLo
	for {
		if _, fire := s.opts.Fault.Fire(fault.ReshardDonorCrash, plan.Donor); fire {
			// Injected migrator crash mid-copy: abandon with the fence held
			// and the migration record in place. The failure detector sees
			// an unregistered token, rolls the recipient's partial copy
			// back, and releases the fence — the placement never flipped,
			// so the donor still serves the whole span.
			return 0, 0, fmt.Errorf("merge migrator crashed mid-copy (injected fault); fence recovery pending")
		}
		var keys, vals []uint64
		var next uint64
		var resume, held bool
		r := s.ctl(donor, func(w *proteustm.Worker, _ int) response {
			w.Atomic(func(tx proteustm.Txn) {
				keys, vals, next, resume = nil, nil, 0, false
				if held = donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch); !held {
					return
				}
				keys, vals, next, resume = donor.store.ExportSpan(tx, lo, plan.MovedHi, migrateBatch)
				tx.Store(beatAddr, uint64(time.Now().UnixNano()))
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			s.rollbackMergeCopy(token)
			s.releaseMigrationFence(donor, hold, token)
			return 0, 0, fmt.Errorf("exporting span from shard %d: %s", plan.Donor, r.Err)
		}
		if !held {
			// The detector stole the fence; it rolled the copy back if the
			// record was still live. Run the rollback again ourselves in
			// case a batch landed between its delete and the steal.
			s.rollbackMergeCopy(token)
			return 0, 0, fmt.Errorf("donor fence recovered out from under the merge; rolled back")
		}
		if len(keys) > 0 {
			// Install under migMu: rollbackMergeCopy serializes on it, so
			// no batch can land on the recipient after a rollback has
			// decided what to delete.
			s.migMu.Lock()
			if s.activeMig == nil || s.activeMig.token != token {
				s.migMu.Unlock()
				return 0, 0, fmt.Errorf("merge rolled back by fence recovery mid-copy")
			}
			r = s.ctl(recip, func(w *proteustm.Worker, slot int) response {
				w.Atomic(func(tx proteustm.Txn) {
					recip.store.InstallPairs(tx, slot, keys, vals)
				})
				return response{Applied: true}
			})
			s.migMu.Unlock()
			if r.Err != "" {
				s.rollbackMergeCopy(token)
				s.releaseMigrationFence(donor, hold, token)
				return 0, 0, fmt.Errorf("installing span on shard %d: %s", plan.Recipient, r.Err)
			}
			moved += uint64(len(keys))
		}
		if !resume {
			break
		}
		lo = next
	}

	if _, fire := s.opts.Fault.Fire(fault.ReshardInstallCrash, plan.Donor); fire {
		// Injected crash after the copy, before the flip: same rollback as
		// the mid-copy crash — detector deletes the copy, releases the
		// fence, the fleet keeps all its shards.
		return 0, 0, fmt.Errorf("merge migrator crashed before the flip (injected fault); fence recovery pending")
	}

	// Flip, atomically retiring the migration record under migMu: from
	// here the merge is committed — the recipient owns the span, the
	// copied keys are live data, and no rollback may ever delete them.
	s.migMu.Lock()
	if s.activeMig == nil || s.activeMig.token != token {
		// Detector rollback won the race at the last instant: the copy is
		// gone and the fence released. Nothing flipped.
		s.migMu.Unlock()
		return 0, 0, fmt.Errorf("merge rolled back by fence recovery before the flip")
	}
	newEpoch = s.place.Install(plan.Merged)
	s.activeMig = nil
	s.migMu.Unlock()

	// Donor cleanup, entirely under the fence, exactly like the split
	// path: bump the placement-epoch word in the same transactions that
	// delete the moved span, re-acquiring on a detector steal. The donor
	// is about to retire, but until the truncated fleet is published a
	// stale-routed operation can still land here and must bounce, not
	// read a half-deleted span.
	held := true
	for {
		if !held {
			hold, err = s.acquireMigrationFence(donor, token)
			if err != nil {
				s.ctl(donor, func(w *proteustm.Worker, _ int) response {
					w.Atomic(func(tx proteustm.Txn) { donor.store.BumpPlacement(tx, newEpoch) })
					return response{}
				})
				return moved, newEpoch, fmt.Errorf("re-fencing donor for cleanup: %w", err)
			}
			beatAddr = donor.store.FenceBeatWord()
			if hold.slot >= 0 {
				_, _, beatAddr = donor.store.FenceSlotWordsOf(hold.slot)
			}
			held = true
		}
		var more bool
		r := s.ctl(donor, func(w *proteustm.Worker, slot int) response {
			w.Atomic(func(tx proteustm.Txn) {
				more = false
				if held = donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch); !held {
					return
				}
				donor.store.BumpPlacement(tx, newEpoch)
				_, more = donor.store.DeleteSpan(tx, slot, plan.MovedLo, plan.MovedHi, migrateBatch)
				tx.Store(beatAddr, uint64(time.Now().UnixNano()))
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			s.releaseMigrationFence(donor, hold, token)
			return moved, newEpoch, fmt.Errorf("cleaning donor shard %d: %s", plan.Donor, r.Err)
		}
		if !held {
			continue
		}
		if !more {
			break
		}
	}
	s.releaseMigrationFence(donor, hold, token)
	return moved, newEpoch, nil
}

// rollbackMergeCopy clears a dead merge's partial copy from the live
// recipient and retires the migration record. It serializes against the
// migrator's install batches on migMu, so once it returns true no
// further batch can land: the recipient holds no keys from the moved
// span, and the donor's fence may be released. It returns false when
// the copy could not be fully cleared (a control step failed, typically
// at shutdown) — the caller must then NOT release the donor's fence, so
// the duplicates stay unobservable until a later recovery tick finishes
// the job. A token that doesn't match the live record is a no-op: the
// merge either committed (flip cleared the record — the keys are live
// data) or was already rolled back.
func (s *Server) rollbackMergeCopy(token uint64) bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	rec := s.activeMig
	if rec == nil || rec.token != token {
		return true
	}
	fleet := s.fleet()
	if rec.recipient < len(fleet) {
		recip := fleet[rec.recipient]
		for {
			var more bool
			r := s.ctl(recip, func(w *proteustm.Worker, slot int) response {
				w.Atomic(func(tx proteustm.Txn) {
					_, more = recip.store.DeleteSpan(tx, slot, rec.lo, rec.hi, migrateBatch)
				})
				return response{Applied: true}
			})
			if r.Err != "" {
				return false
			}
			if !more {
				break
			}
		}
	}
	s.activeMig = nil
	s.opts.Logf("serve: merge rollback: cleared copied span [%d, %d] from recipient shard %d (token %d)",
		rec.lo, rec.hi, rec.recipient, rec.token)
	return true
}

// retireShard drains and permanently stops the fleet's top shard after
// the placement has stopped naming it (a merge flip, or a spare the
// reaper is reclaiming). The caller holds reshardMu. The shard leaves
// the fleet first, so no new router can reach it; then its workers and
// failure detector stop for good (the same drain contract Close uses:
// ss.wg covers every per-shard goroutine) and its ProteusTM system —
// tuner included — is closed. A lightweight drainer keeps answering
// stragglers that loaded the fleet before the truncation: data
// operations bounce for re-routing, control steps report not-applied so
// their coordinator re-routes off the flipped epoch.
func (s *Server) retireShard(ss *shardState) {
	if !ss.retiring.CompareAndSwap(false, true) {
		return
	}
	fleet := s.fleet()
	if len(fleet) == 0 || fleet[len(fleet)-1] != ss {
		// Retiring mid-fleet would renumber the survivors; every caller
		// guarantees top-of-fleet, so this is unreachable.
		s.opts.Logf("serve: BUG: retireShard on non-top shard %d", ss.idx)
		return
	}
	shrunk := make([]*shardState, len(fleet)-1)
	copy(shrunk, fleet)
	s.fleetPtr.Store(&shrunk)
	close(ss.stop)
	s.drainersWG.Add(1)
	go s.retiredDrainer(ss)
	ss.wg.Wait()
	ss.sys.OnReconfigure(nil)
	s.opts.Logf("serve: shard %d retired (final config %s)", ss.idx, ss.sys.CurrentConfig())
	ss.sys.Close() //nolint:errcheck // retiring; a late tuner error changes nothing
	ss.retired.Store(true)
	s.shardsRetired.Add(1)
}

// retiredDrainer answers requests that raced into a retired shard's
// queues: its workers are gone, but a sender holding the pre-truncation
// fleet may still deliver (the channels are buffered, so sends never
// block — this loop exists so the sender's reply always arrives). It
// lives until Close, when no new sender can exist.
func (s *Server) retiredDrainer(ss *shardState) {
	defer s.drainersWG.Done()
	for {
		select {
		case req := <-ss.prio:
			req.done <- ss.stopAnswer(req)
		case req := <-ss.queue:
			req.done <- ss.stopAnswer(req)
		case <-s.stopDrainers:
			return
		}
	}
}

// retireSpares retires every spare shard — fleet entries above the
// placement's top shard, left behind by rolled-back migrations — and
// returns how many it retired. The caller holds reshardMu.
func (s *Server) retireSpares() int {
	n := 0
	for {
		part, _ := s.place.Load()
		fleet := s.fleet()
		if len(fleet) <= part.Shards() {
			return n
		}
		s.retireShard(fleet[len(fleet)-1])
		if len(s.fleet()) == len(fleet) {
			// retireShard refused (already retiring); don't spin.
			return n
		}
		n++
	}
}

// maintenanceLoop is the background trigger behind --autosplit and
// --automerge, and the spare-shard reaper. Each tick it:
//
//   - reaps spare shards that have idled past Options.SpareGrace (a
//     rolled-back migration leaves its recipient as a spare; the next
//     split reuses it, but with autosplit capped or disabled it would
//     otherwise burn a worker pool and a tuner forever);
//   - runs the autosplit trigger on the cumulative routed counters, as
//     before: hottest shard's share above AutosplitShare with enough
//     total traffic to trust, and room under AutosplitMaxShards;
//   - runs the automerge trigger on the per-tick routed deltas: when the
//     top shard's share of the last interval's traffic falls below
//     AutomergeShare — or the whole fleet went idle — and the placement
//     is above AutomergeMinShards, it merges the top shard away. Deltas,
//     not cumulative counters, so a shard that was hot an hour ago can
//     still retire once its traffic cools.
//
// A plan either planner declines is an explicit logged no-op — never a
// degenerate install.
func (s *Server) maintenanceLoop() {
	defer s.maintWG.Done()
	t := time.NewTicker(s.opts.AutosplitInterval)
	defer t.Stop()
	var prevRouted []uint64
	var spareSince time.Time
	for {
		select {
		case <-s.maintStop:
			return
		case <-t.C:
		}
		if s.closed.Load() {
			return
		}
		part, _ := s.place.Load()
		if part.Kind() != shard.KindRange {
			if s.opts.AutosplitShare > 0 || s.opts.AutomergeShare > 0 {
				s.opts.Logf("serve: autosplit/automerge disabled: requires the range partitioner (have %q)", part.Kind())
			}
			return
		}

		// Spare reaper: a spare must idle through a full grace period
		// before it is retired, so a migration that is about to reuse it
		// (or a rollback being retried) isn't racing its own recipient.
		if len(s.fleet()) > part.Shards() {
			if spareSince.IsZero() {
				spareSince = time.Now()
			} else if time.Since(spareSince) >= s.opts.SpareGrace && s.reshardMu.TryLock() {
				n := s.retireSpares()
				s.reshardMu.Unlock()
				if n > 0 {
					s.opts.Logf("serve: spare reaper: retired %d idle spare shard(s) after %v grace", n, s.opts.SpareGrace)
				}
				spareSince = time.Time{}
			}
		} else {
			spareSince = time.Time{}
		}

		fleet := s.fleet()
		routed := make([]uint64, part.Shards())
		var total, hottest uint64
		for i := 0; i < len(routed) && i < len(fleet); i++ {
			routed[i] = fleet[i].routed.Load()
			total += routed[i]
			if routed[i] > hottest {
				hottest = routed[i]
			}
		}
		delta := make([]uint64, len(routed))
		var totalDelta uint64
		for i, v := range routed {
			d := v
			if i < len(prevRouted) && v >= prevRouted[i] {
				d = v - prevRouted[i]
			}
			delta[i] = d
			totalDelta += d
		}
		prevRouted = routed

		if s.opts.AutosplitShare > 0 && part.Shards() < s.opts.AutosplitMaxShards &&
			total >= autosplitMinRouted && float64(hottest)/float64(total) > s.opts.AutosplitShare {
			res, _ := s.Reshard()
			switch {
			case res.Applied:
				s.opts.Logf("serve: autosplit: shard %d split at placement epoch %d (%d keys migrated, hottest share %.2f)",
					res.Donor, res.Epoch, res.KeysMigrated, float64(hottest)/float64(total))
			case res.Err != "":
				s.opts.Logf("serve: autosplit attempt failed: %s", res.Err)
			}
			continue // never split and merge on the same tick
		}

		if s.opts.AutomergeShare > 0 && part.Shards() > s.opts.AutomergeMinShards {
			top := part.Shards() - 1
			idle := totalDelta == 0
			if idle || float64(delta[top])/float64(totalDelta) < s.opts.AutomergeShare {
				res, _ := s.reshardMerge(delta)
				switch {
				case res.Applied:
					s.opts.Logf("serve: automerge: shard %d merged into %d at placement epoch %d (%d keys migrated, idle=%v)",
						res.Donor, res.Recipient, res.Epoch, res.KeysMigrated, idle)
				case res.Err != "":
					s.opts.Logf("serve: automerge attempt failed: %s", res.Err)
				}
			}
		}
	}
}
