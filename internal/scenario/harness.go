package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/polytm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// Mode selects how a scenario run executes and measures.
type Mode string

const (
	// Deterministic executes operations serially against a virtual clock
	// that charges OpCost per transaction attempt. Same seed, same
	// binary → byte-identical result records; thread counts shape the
	// operation schedule (which slots run) but not real parallelism.
	Deterministic Mode = "deterministic"
	// Timed runs the workload on real goroutines for a wall-clock
	// duration. Throughput is real; records are not reproducible.
	Timed Mode = "timed"
)

// RunSpec describes one `proteusbench run` invocation: a scenario, its
// parameters, and either a list of fixed configurations (one result
// record each) or the auto-tuner over a configuration space.
type RunSpec struct {
	// Scenario names the registered scenario.
	Scenario string
	// Params overrides scenario parameter defaults.
	Params Values
	// Seed drives workload setup, per-slot operation streams and the
	// tuning machinery.
	Seed uint64
	// Configs are the fixed configurations to measure, one record each.
	// Ignored when AutoTune is set.
	Configs []config.Config
	// AutoTune runs RecTM's monitor/explore/install loop instead of
	// fixed configurations.
	AutoTune bool
	// Space is the tuning space for AutoTune (default
	// config.DefaultSpace(MaxThreads)).
	Space []config.Config
	// TrainKPI is the offline training Utility Matrix for AutoTune, with
	// one column per Space entry (default: synthetic, from the analytic
	// performance model).
	TrainKPI *cf.Matrix
	// MaxThreads is the number of worker slots (default 8).
	MaxThreads int
	// HeapWords sizes the transactional heap (default 1<<22).
	HeapWords int
	// Ops is the deterministic-mode operation budget (default 20000).
	Ops uint64
	// SampleEvery is the deterministic-mode KPI sampling interval in
	// operations (default Ops/10). It is also the per-configuration
	// profiling window during auto-tune exploration.
	SampleEvery uint64
	// OpCost is the virtual time charged per transaction attempt in
	// deterministic mode (default 1µs).
	OpCost time.Duration
	// Duration selects timed mode when positive: each configuration (or
	// the auto-tuned run) measures for this wall-clock span.
	Duration time.Duration

	// SLOOfferedRate activates the serving model for auto-tuned
	// deterministic runs: the run is scored as a serving deployment
	// facing an open-loop client population at this offered rate
	// (ops/sec). Each window's measured abort profile yields a modeled
	// capacity and queueing p99 (see servingCapacity/servingP99), the
	// KPI becomes the modeled capacity, and Samples carry P99Ms. Zero
	// disables the model (plain commit-rate KPI).
	SLOOfferedRate float64
	// SLOTargetMs is the p99 latency target (milliseconds) of the
	// serving model: Samples are scored for attainment against it and —
	// with SLOTune — the tuning KPI becomes
	// core.SLOPenalizedKPI(capacity, p99, target).
	SLOTargetMs float64
	// SLOTune switches the tuning KPI from raw modeled capacity to
	// throughput-under-SLO. Requires SLOOfferedRate and SLOTargetMs.
	SLOTune bool
	// MonitorMinDwell and MonitorBand override the change detector's
	// churn gates (see core.Options): zero keeps the defaults, a
	// positive value sets the gate, a negative value disables it.
	MonitorMinDwell int
	MonitorBand     float64
	// ExploreEpsilon overrides the SMBO early-stop threshold for
	// AutoTune (zero keeps the core default). A negative value disables
	// Expected-Improvement early stopping so a small tuning space is
	// swept exhaustively — what the A/B goldens use so every operating
	// point is measured rather than predicted.
	ExploreEpsilon float64
}

// Mode returns the mode the spec selects.
func (spec RunSpec) Mode() Mode {
	if spec.Duration > 0 {
		return Timed
	}
	return Deterministic
}

// Sample is one KPI observation along a run.
type Sample struct {
	// Ops is the cumulative operation count at the sample
	// (deterministic mode).
	Ops uint64 `json:"ops,omitempty"`
	// AtSec is the sample time in seconds since the run started (timed
	// mode).
	AtSec float64 `json:"at_sec,omitempty"`
	// Commits and Aborts are the window's transaction counts
	// (deterministic mode).
	Commits uint64 `json:"commits,omitempty"`
	Aborts  uint64 `json:"aborts,omitempty"`
	// KPI is committed transactions per (virtual or real) second.
	KPI float64 `json:"kpi"`
	// Config is the configuration installed during the window.
	Config string `json:"config"`
	// P99Ms is the serving model's queueing p99 for the window
	// (milliseconds; only set when RunSpec.SLOOfferedRate is active).
	P99Ms float64 `json:"p99_ms,omitempty"`
	// Exploring marks samples taken while profiling a candidate.
	Exploring bool `json:"exploring,omitempty"`
	// Alarm marks steady-state samples on which the CUSUM monitor
	// raised a change alarm.
	Alarm bool `json:"alarm,omitempty"`
}

// TraceEntry is one entry of the installed-configuration trace.
type TraceEntry struct {
	// Ops is the cumulative operation count at the event (deterministic
	// mode; zero in timed mode).
	Ops uint64 `json:"ops"`
	// Config is the configuration the event concerns.
	Config string `json:"config"`
	// Event is "initial" (run start), "explore" (candidate profiled) or
	// "install" (exploration winner installed).
	Event string `json:"event"`
	// Phase numbers the optimization phase the event belongs to (zero
	// for "initial").
	Phase int `json:"phase,omitempty"`
}

// Result is one scenario × configuration (or scenario × auto-tuner)
// result record. In deterministic mode every field is a pure function of
// the spec, so records can be diffed byte-for-byte across runs.
type Result struct {
	Scenario string `json:"scenario"`
	Family   string `json:"family"`
	Params   Values `json:"params"`
	Seed     uint64 `json:"seed"`
	Mode     Mode   `json:"mode"`
	AutoTune bool   `json:"autotune"`
	// Config is the fixed configuration, or the initial one under
	// auto-tuning.
	Config string `json:"config"`
	// FinalConfig is the configuration installed when the run ended.
	FinalConfig string `json:"final_config"`
	Ops         uint64 `json:"ops"`
	Commits     uint64 `json:"commits"`
	Aborts      uint64 `json:"aborts"`
	// AbortRate is aborts / (commits + aborts).
	AbortRate float64 `json:"abort_rate"`
	// ElapsedSec is virtual seconds in deterministic mode, wall seconds
	// in timed mode.
	ElapsedSec float64 `json:"elapsed_sec"`
	// Throughput is operations per elapsed second; CommitRate is
	// committed transactions per elapsed second (the paper's KPI).
	Throughput float64 `json:"throughput"`
	CommitRate float64 `json:"commit_rate"`
	// HeapDigest fingerprints the final transactional-heap contents
	// (deterministic mode only): two byte-identical records really did
	// leave the data structures in the same end state.
	HeapDigest string `json:"heap_digest,omitempty"`
	// SLOAttainment is the fraction of steady (non-exploring) windows
	// whose modeled p99 met RunSpec.SLOTargetMs (serving model only).
	SLOAttainment float64 `json:"slo_attainment,omitempty"`
	// Phases counts auto-tune optimization phases (1 = initial only).
	Phases  int          `json:"phases,omitempty"`
	Samples []Sample     `json:"samples,omitempty"`
	Trace   []TraceEntry `json:"trace"`
	// Metrics carries workload-specific counters (workloads.Metered),
	// e.g. the scan-locality and fence counts of the service-range
	// partitioner A/B. Keys marshal sorted, so deterministic-mode records
	// stay byte-diffable.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

func (spec *RunSpec) setDefaults() {
	if spec.MaxThreads <= 0 {
		spec.MaxThreads = 8
	}
	if spec.HeapWords <= 0 {
		spec.HeapWords = 1 << 22
	}
	if spec.Ops == 0 {
		spec.Ops = 20000
	}
	if spec.SampleEvery == 0 {
		spec.SampleEvery = spec.Ops / 10
		if spec.SampleEvery == 0 {
			spec.SampleEvery = 1
		}
	}
	if spec.OpCost <= 0 {
		spec.OpCost = time.Microsecond
	}
}

// Run executes the spec and returns one result record per fixed
// configuration, or a single record for an auto-tuned run.
func Run(spec RunSpec) ([]Result, error) {
	spec.setDefaults()
	s, ok := Lookup(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (try `proteusbench list`; have: %v)", spec.Scenario, Names())
	}
	if err := s.Validate(spec.Params); err != nil {
		return nil, err
	}
	if spec.AutoTune {
		res, err := runAutoTuned(s, spec)
		if err != nil {
			return nil, err
		}
		return []Result{*res}, nil
	}
	if len(spec.Configs) == 0 {
		spec.Configs = []config.Config{DefaultConfig(spec.MaxThreads)}
	}
	var out []Result
	for _, cfg := range spec.Configs {
		if cfg.Threads > spec.MaxThreads {
			return nil, fmt.Errorf("scenario: config %s needs more threads than --threads=%d", cfg, spec.MaxThreads)
		}
		res, err := runFixed(s, spec, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

// DefaultConfig is the fixed configuration a run falls back to when none
// is given: NOrec at min(4, maxThreads) threads.
func DefaultConfig(maxThreads int) config.Config {
	t := maxThreads
	if t > 4 {
		t = 4
	}
	if t < 1 {
		t = 1
	}
	return config.Config{Alg: config.NOrec, Threads: t}
}

// baseResult fills the spec-derived record fields.
func baseResult(s Scenario, spec RunSpec, cfg config.Config) *Result {
	params := spec.Params.Clone()
	// Record the full effective parameterization, not just overrides, so
	// records are self-describing even if schema defaults later change.
	for _, p := range s.Params {
		if _, ok := params[p.Name]; !ok {
			params[p.Name] = p.Default
		}
	}
	return &Result{
		Scenario: s.Name,
		Family:   s.Family,
		Params:   params,
		Seed:     spec.Seed,
		Mode:     spec.Mode(),
		AutoTune: spec.AutoTune,
		Config:   cfg.String(),
	}
}

// finish computes the derived totals of a record.
func (r *Result) finish(ops uint64, st tm.Stats, elapsedSec float64, final config.Config) {
	r.Ops = ops
	r.Commits = st.Commits
	r.Aborts = st.Aborts
	if att := st.Commits + st.Aborts; att > 0 {
		r.AbortRate = float64(st.Aborts) / float64(att)
	}
	r.ElapsedSec = elapsedSec
	if elapsedSec > 0 {
		r.Throughput = float64(ops) / elapsedSec
		r.CommitRate = float64(st.Commits) / elapsedSec
	}
	r.FinalConfig = final.String()
}

// verifyWorkload runs the workload's post-run invariant check, if it has
// one (workloads.Verifier) — e.g. TPCC's money invariant. Called with no
// transactions in flight.
func verifyWorkload(wl workloads.Workload, h *tm.Heap) error {
	if v, ok := wl.(workloads.Verifier); ok {
		if err := v.Verify(h); err != nil {
			return fmt.Errorf("scenario: post-run invariant: %w", err)
		}
	}
	return nil
}

// captureMetrics copies a Metered workload's counters into the record.
// Called after the run, with no operations in flight.
func captureMetrics(wl workloads.Workload, res *Result) {
	if m, ok := wl.(workloads.Metered); ok {
		res.Metrics = m.Metrics()
	}
}

// virtualSec converts a transaction-attempt count to virtual seconds.
func virtualSec(st tm.Stats, opCost time.Duration) float64 {
	return float64(st.Commits+st.Aborts) * opCost.Seconds()
}

// runFixed measures one fixed configuration.
func runFixed(s Scenario, spec RunSpec, cfg config.Config) (*Result, error) {
	res := baseResult(s, spec, cfg)
	wl, err := s.Make(spec.Params)
	if err != nil {
		return nil, err
	}
	pool := polytm.New(spec.HeapWords, spec.MaxThreads, cfg)
	if err := wl.Setup(pool.Heap(), workloads.NewRand(spec.Seed)); err != nil {
		return nil, fmt.Errorf("scenario %s: setup: %w", s.Name, err)
	}
	res.Trace = append(res.Trace, TraceEntry{Ops: 0, Config: cfg.String(), Event: "initial"})

	if spec.Mode() == Timed {
		return res, runFixedTimed(s, spec, cfg, wl, pool, res)
	}

	setupStats := pool.SnapshotStats() // exclude setup transactions
	sd := workloads.NewSerialDriver(wl, pool, spec.MaxThreads, spec.Seed)
	sd.SetSlots(cfg.Threads)
	last := setupStats
	for sd.Ops() < spec.Ops {
		n := spec.SampleEvery
		if rem := spec.Ops - sd.Ops(); rem < n {
			n = rem
		}
		sd.Run(n)
		cur := pool.SnapshotStats()
		win := cur.Sub(last)
		last = cur
		res.Samples = append(res.Samples, Sample{
			Ops:     sd.Ops(),
			Commits: win.Commits,
			Aborts:  win.Aborts,
			KPI:     windowKPI(win, spec.OpCost),
			Config:  cfg.String(),
		})
	}
	total := pool.SnapshotStats().Sub(setupStats)
	res.finish(sd.Ops(), total, virtualSec(total, spec.OpCost), cfg)
	res.HeapDigest = fmt.Sprintf("%016x", pool.Heap().Digest())
	captureMetrics(wl, res)
	if err := verifyWorkload(wl, pool.Heap()); err != nil {
		return nil, err
	}
	return res, nil
}

// windowKPI is committed transactions per virtual second over one window.
func windowKPI(win tm.Stats, opCost time.Duration) float64 {
	sec := virtualSec(win, opCost)
	if sec <= 0 {
		return 0
	}
	return float64(win.Commits) / sec
}

// servingEfficiency is the parallel-efficiency constant of the serving
// model: per-operation service time inflates by this fraction for every
// worker beyond the first, modeling the synchronization overhead that
// keeps real TM deployments from scaling linearly (the paper's Fig. 1).
// It is what gives the model its capacity/latency tradeoff — more
// workers raise aggregate capacity sublinearly while raising the
// per-request service-time floor, so the throughput-optimal thread count
// and the p99-optimal one can differ.
const servingEfficiency = 0.15

// servingCapacity models one measured window as a serving deployment:
// the window's abort profile gives the expected attempts per committed
// operation, the per-operation service time is attempts x OpCost
// inflated by the parallel-efficiency factor, and capacity is the
// aggregate rate threads such servers sustain. Returns capacity in
// ops/sec and the per-operation service time in seconds.
func servingCapacity(win tm.Stats, opCost time.Duration, threads int) (capacity, svcSec float64) {
	att := win.Commits + win.Aborts
	if win.Commits == 0 || att == 0 {
		return 0, 0
	}
	if threads < 1 {
		threads = 1
	}
	attempts := float64(att) / float64(win.Commits)
	svcSec = attempts * opCost.Seconds() * (1 + servingEfficiency*float64(threads-1))
	capacity = float64(threads) / svcSec
	return capacity, svcSec
}

// servingP99 is the modeled queueing p99 (milliseconds) of an open-loop
// client population at the given offered rate against a server with the
// given service time and capacity: the service-time floor plus an
// exponential-tail queueing term that grows with utilization
// (p99 = s x (1 + 4.6 x rho/(1-rho)), clamped near saturation).
func servingP99(svcSec, capacity, rate float64) float64 {
	if svcSec <= 0 {
		return 0
	}
	q := 0.0
	if capacity > 0 && rate > 0 {
		rho := rate / capacity
		if rho >= 1 {
			q = 64
		} else if q = rho / (1 - rho); q > 64 {
			q = 64
		}
	}
	return 1000 * svcSec * (1 + 4.6*q)
}

// runFixedTimed measures one fixed configuration on real goroutines.
func runFixedTimed(s Scenario, spec RunSpec, cfg config.Config, wl workloads.Workload, pool *polytm.Pool, res *Result) error {
	var antagonist *workloads.Interference
	if s.Antagonist != nil {
		antagonist = s.Antagonist(spec.Params)
		antagonist.Start()
		defer antagonist.Stop()
	}
	d := &workloads.Driver{Workload: wl, Runner: pool, MaxThreads: spec.MaxThreads, Seed: spec.Seed}
	setupStats := pool.SnapshotStats()
	if err := d.Start(); err != nil {
		return err
	}
	start := time.Now()
	time.Sleep(spec.Duration)
	elapsed := time.Since(start)
	ops := d.Ops()
	total := pool.SnapshotStats().Sub(setupStats)
	// Re-open the thread gate so parked workers can observe the stop flag.
	full := cfg
	full.Threads = spec.MaxThreads
	if err := pool.Reconfigure(full); err != nil {
		return err
	}
	d.Stop()
	res.finish(ops, total, elapsed.Seconds(), cfg)
	captureMetrics(wl, res)
	return verifyWorkload(wl, pool.Heap())
}

// runAutoTuned runs the full monitor → explore → install loop.
func runAutoTuned(s Scenario, spec RunSpec) (*Result, error) {
	space := spec.Space
	if len(space) == 0 {
		space = config.DefaultSpace(spec.MaxThreads)
	}
	for _, c := range space {
		// A column the pool cannot install would otherwise be profiled
		// as KPI 0, silently skewing the exploration.
		if c.Threads > spec.MaxThreads {
			return nil, fmt.Errorf("scenario: tuning-space config %s needs more threads than --threads=%d (re-sweep or raise --threads)", c, spec.MaxThreads)
		}
	}
	train := spec.TrainKPI
	if train == nil {
		train = SyntheticTraining(space, 60, spec.Seed)
	}
	vclock := core.NewVirtualClock(time.Time{})
	rt, err := core.New(core.Options{
		HeapWords:       spec.HeapWords,
		MaxThreads:      spec.MaxThreads,
		Configs:         space,
		TrainKPI:        train,
		KPI:             core.Throughput,
		Seed:            spec.Seed,
		Clock:           vclock,
		MonitorMinDwell: spec.MonitorMinDwell,
		MonitorBand:     spec.MonitorBand,
		Epsilon:         spec.ExploreEpsilon,
	})
	if err != nil {
		return nil, err
	}
	initial := rt.Pool.Config()
	res := baseResult(s, spec, initial)
	wl, err := s.Make(spec.Params)
	if err != nil {
		return nil, err
	}
	if err := wl.Setup(rt.Heap(), workloads.NewRand(spec.Seed)); err != nil {
		return nil, fmt.Errorf("scenario %s: setup: %w", s.Name, err)
	}
	res.Trace = append(res.Trace, TraceEntry{Ops: 0, Config: initial.String(), Event: "initial"})

	if spec.Mode() == Timed {
		return res, runAutoTunedTimed(s, spec, wl, rt, res)
	}

	setupStats := rt.Pool.SnapshotStats()
	sd := workloads.NewSerialDriver(wl, rt.Pool, spec.MaxThreads, spec.Seed)
	sd.SetSlots(initial.Threads)
	last := setupStats
	phase := 0

	rated, _ := wl.(workloads.Rated)
	serving := spec.SLOOfferedRate > 0 || rated != nil
	attain := spec.SLOOfferedRate > 0 && spec.SLOTargetMs > 0
	steadyWins, steadyMet := 0, 0

	// window runs n operations and returns the window's stats.
	window := func(n uint64) tm.Stats {
		sd.Run(n)
		cur := rt.Pool.SnapshotStats()
		win := cur.Sub(last)
		last = cur
		vclock.Advance(time.Duration(win.Commits+win.Aborts) * spec.OpCost)
		return win
	}
	// kpiOf scores one window under the active KPI model: the plain
	// commit rate, the delivered rate of a Rated (open-loop) workload
	// capped at the configuration's modeled capacity, or the serving
	// model's capacity / throughput-under-SLO.
	kpiOf := func(win tm.Stats, cfg config.Config) (kpi, p99 float64) {
		if !serving {
			return windowKPI(win, spec.OpCost), 0
		}
		capacity, svcSec := servingCapacity(win, spec.OpCost, cfg.Threads)
		if rated != nil {
			if r := rated.OfferedRate(sd.Ops()); capacity >= r {
				return r, 0
			}
			return capacity, 0
		}
		p99 = servingP99(svcSec, capacity, spec.SLOOfferedRate)
		kpi = capacity
		if spec.SLOTune && spec.SLOTargetMs > 0 {
			kpi = core.SLOPenalizedKPI(capacity, p99, spec.SLOTargetMs)
		}
		return kpi, p99
	}
	// steady scores a non-exploring window for SLO attainment.
	steady := func(p99 float64) {
		if !attain {
			return
		}
		steadyWins++
		if p99 <= spec.SLOTargetMs {
			steadyMet++
		}
	}
	// measure profiles one candidate configuration for ExploreSync.
	measure := func(cfg config.Config) float64 {
		if err := rt.Pool.Reconfigure(cfg); err != nil {
			return 0
		}
		sd.SetSlots(cfg.Threads)
		win := window(spec.SampleEvery)
		kpi, p99 := kpiOf(win, cfg)
		res.Trace = append(res.Trace, TraceEntry{Ops: sd.Ops(), Config: cfg.String(), Event: "explore", Phase: phase})
		res.Samples = append(res.Samples, Sample{
			Ops: sd.Ops(), Commits: win.Commits, Aborts: win.Aborts,
			KPI: kpi, P99Ms: p99, Config: cfg.String(), Exploring: true,
		})
		return kpi
	}
	// explore runs one optimization phase and re-anchors the monitor.
	explore := func() {
		phase++
		rt.ExploreSync(measure)
		installed := rt.Pool.Config()
		sd.SetSlots(installed.Threads)
		res.Trace = append(res.Trace, TraceEntry{Ops: sd.Ops(), Config: installed.String(), Event: "install", Phase: phase})
		win := window(spec.SampleEvery)
		level, p99 := kpiOf(win, installed)
		rt.ResetMonitor(level)
		steady(p99)
		res.Samples = append(res.Samples, Sample{
			Ops: sd.Ops(), Commits: win.Commits, Aborts: win.Aborts,
			KPI: level, P99Ms: p99, Config: installed.String(),
		})
	}

	explore() // the startup optimization phase (§6.4)
	for sd.Ops() < spec.Ops {
		n := spec.SampleEvery
		if rem := spec.Ops - sd.Ops(); rem < n {
			n = rem
		}
		win := window(n)
		kpi, p99 := kpiOf(win, rt.Pool.Config())
		alarm := rt.Observe(kpi)
		steady(p99)
		res.Samples = append(res.Samples, Sample{
			Ops: sd.Ops(), Commits: win.Commits, Aborts: win.Aborts,
			KPI: kpi, P99Ms: p99, Config: rt.Pool.Config().String(), Alarm: alarm,
		})
		if alarm {
			explore()
		}
	}
	total := rt.Pool.SnapshotStats().Sub(setupStats)
	res.Phases = phase
	if attain && steadyWins > 0 {
		res.SLOAttainment = float64(steadyMet) / float64(steadyWins)
	}
	res.finish(sd.Ops(), total, virtualSec(total, spec.OpCost), rt.Pool.Config())
	res.HeapDigest = fmt.Sprintf("%016x", rt.Heap().Digest())
	captureMetrics(wl, res)
	if err := verifyWorkload(wl, rt.Heap()); err != nil {
		return nil, err
	}
	return res, nil
}

// runAutoTunedTimed runs the wall-clock adapter thread under real load.
func runAutoTunedTimed(s Scenario, spec RunSpec, wl workloads.Workload, rt *core.Runtime, res *Result) error {
	var antagonist *workloads.Interference
	if s.Antagonist != nil {
		antagonist = s.Antagonist(spec.Params)
		antagonist.Start()
		defer antagonist.Stop()
	}
	d := &workloads.Driver{Workload: wl, Runner: rt.Pool, MaxThreads: spec.MaxThreads, Seed: spec.Seed}
	setupStats := rt.Pool.SnapshotStats()
	if err := d.Start(); err != nil {
		return err
	}
	rt.Start()
	start := time.Now()
	time.Sleep(spec.Duration)
	elapsed := time.Since(start)
	ops := d.Ops()
	rt.Stop()
	total := rt.Pool.SnapshotStats().Sub(setupStats)
	final := rt.Pool.Config()
	full := final
	full.Threads = spec.MaxThreads
	if err := rt.Pool.Reconfigure(full); err != nil {
		return err
	}
	d.Stop()
	if err := verifyWorkload(wl, rt.Heap()); err != nil {
		return err
	}
	for _, p := range rt.Timeline() {
		res.Samples = append(res.Samples, Sample{
			AtSec: p.At.Seconds(), KPI: p.KPI,
			Config: p.Config.String(), Exploring: p.Exploring,
		})
	}
	res.Phases = rt.Phases()
	res.finish(ops, total, elapsed.Seconds(), final)
	captureMetrics(wl, res)
	return nil
}

// SyntheticTraining builds a training Utility Matrix for the given
// configuration space from the analytic performance model — the substitute
// for profiling a base set of applications offline (`proteusbench sweep`
// produces the measured alternative).
func SyntheticTraining(cfgs []config.Config, numWorkloads int, seed uint64) *cf.Matrix {
	threadSet := map[int]bool{}
	maxThreads := 1
	for _, c := range cfgs {
		threadSet[c.Threads] = true
		if c.Threads > maxThreads {
			maxThreads = c.Threads
		}
	}
	threads := make([]int, 0, len(threadSet))
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	prof := machine.Profile{
		Name:           "local",
		Cores:          maxThreads,
		HWThreads:      maxThreads,
		Sockets:        1,
		HasHTM:         true,
		ThreadCounts:   threads,
		StaticPower:    18,
		PowerPerThread: 6.5,
	}
	gen := &perfmodel.Generator{Machine: prof, Seed: seed}
	ws := gen.Workloads(numWorkloads)
	return gen.Matrix(ws, cfgs, perfmodel.Throughput)
}
