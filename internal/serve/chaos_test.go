package serve

// Chaos battery: the fault-injection substrate driven end to end against
// the self-healing cross-shard commit path. Every schedule here is
// modular (after/every/count), so the injected failures — and therefore
// the recovery counters the tests pin — are exact, not probabilistic.

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	proteustm "repro"
	"repro/internal/fault"
	"repro/internal/shard"
)

func mustFault(t *testing.T, spec string, seed uint64) *fault.Injector {
	t.Helper()
	inj, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	return inj
}

// keysOnDistinctShards returns n keys, each owned by a different shard,
// so every batch over them runs the full cross-shard protocol.
func keysOnDistinctShards(t *testing.T, s *Server, n int) []uint64 {
	t.Helper()
	keys := make([]uint64, 0, n)
	seen := map[int]bool{}
	for k := uint64(0); len(keys) < n; k++ {
		if o := s.part().Owner(k); !seen[o] {
			seen[o] = true
			keys = append(keys, k)
		}
		if k > 1<<20 {
			t.Fatalf("no %d keys on distinct shards", n)
		}
	}
	return keys
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func regSize(s *Server) int {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	return len(s.reg.recs)
}

// forEachGranularity runs the chaos leg under both fence granularities:
// the whole-shard fence word and the keyed fence table must heal through
// the identical failure schedule with the same exactly-once counters.
func forEachGranularity(t *testing.T, leg func(t *testing.T, granularity string)) {
	for _, fg := range []string{FenceShard, FenceKey} {
		t.Run(fg, func(t *testing.T) { leg(t, fg) })
	}
}

// fencesFree reports whether no fence — whole-shard word or keyed table
// entry — is held on any shard. Under shard granularity the occupancy
// word is identically zero, and vice versa, so both are always checked.
func fencesFree(s *Server) bool {
	for _, ss := range s.fleet() {
		if ss.sys.Load(ss.store.FenceWord()) != 0 {
			return false
		}
		if ss.sys.Load(ss.store.FenceOccWord()) != 0 {
			return false
		}
	}
	return true
}

// TestCoordinatorCrashRecovery is the acceptance test of the self-healing
// path: every injected coordinator crash between prepare and apply leaves
// its fences orphaned, the failure detector recovers each batch within
// the deadline, the decided writes roll forward exactly once, and
// ops.fence_recovered matches the injected crash count exactly.
func TestCoordinatorCrashRecovery(t *testing.T) {
	forEachGranularity(t, testCoordinatorCrashRecovery)
}

func testCoordinatorCrashRecovery(t *testing.T, granularity string) {
	const crashes = 3
	s := newTestServer(t, Options{
		Shards: 3, Workers: 2, Seed: 42,
		FenceDeadline:    80 * time.Millisecond,
		DetectInterval:   20 * time.Millisecond,
		FenceGranularity: granularity,
		Fault:            mustFault(t, "coord-crash@every=1;count=3", 42),
	})
	keys := keysOnDistinctShards(t, s, 3)

	var lastVals []uint64
	for round := 0; round < crashes; round++ {
		vals := []uint64{uint64(round)*10 + 1, uint64(round)*10 + 2, uint64(round)*10 + 3}
		resp, code := s.submitCross(&request{op: opMPut, keys: keys, vals: vals})
		if code != http.StatusServiceUnavailable || !strings.Contains(resp.Err, "crashed") {
			t.Fatalf("round %d: crashed mput = %d %+v, want 503 with crash error", round, code, resp)
		}
		if resp.retryAfter <= 0 {
			t.Fatalf("round %d: crashed mput carries no Retry-After hint: %+v", round, resp)
		}
		want := uint64(round + 1)
		waitUntil(t, 10*time.Second, "fence recovery", func() bool {
			return s.fenceRecovered.Load() >= want
		})
		lastVals = vals
	}

	if got := s.crossCrashes.Load(); got != crashes {
		t.Fatalf("cross_crashes = %d, want %d", got, crashes)
	}
	if got := s.fenceRecovered.Load(); got != crashes {
		t.Fatalf("fence_recovered = %d, want exactly %d (one per injected crash)", got, crashes)
	}
	if got := s.fenceRolledForward.Load(); got != crashes {
		t.Fatalf("fence_rolled_forward = %d, want %d (every crash was post-decide)", got, crashes)
	}
	if got := s.fenceAborted.Load(); got != 0 {
		t.Fatalf("fence_aborted = %d, want 0", got)
	}
	if !fencesFree(s) {
		t.Fatal("fences still held after recovery")
	}
	if n := regSize(s); n != 0 {
		t.Fatalf("commit-state registry holds %d stale records", n)
	}

	// The injector's count is exhausted, so this batch commits normally —
	// and must observe the last crashed batch's rolled-forward writes.
	resp, code := s.submitCross(&request{op: opMGet, keys: keys})
	if code != http.StatusOK {
		t.Fatalf("post-recovery mget = %d %+v", code, resp)
	}
	for i := range keys {
		if !resp.Present[i] || resp.Vals[i] != lastVals[i] {
			t.Fatalf("rolled-forward write lost: mget[%d] = %+v, want %d", i, resp, lastVals[i])
		}
	}
	if h := s.Health(); !h.Healthy {
		t.Fatalf("health not ready after full recovery: %+v", h)
	}
	st := s.StatusSnapshot()
	if st.Ops.FenceRecovered != crashes || st.Ops.CrossCrashes != crashes {
		t.Fatalf("statusz recovery counters = %+v", st.Ops)
	}
	if got := st.Ops.Faults["coord-crash"]; got != crashes {
		t.Fatalf("statusz faults[coord-crash] = %d, want %d", got, crashes)
	}
}

// TestChaosLinearizability runs concurrent cross-shard traffic under
// injected coordinator crashes and checks the committed history — with
// every crashed-but-decided write included, its window extended to
// recovery — still admits a sequential witness. Run under -race in CI.
func TestChaosLinearizability(t *testing.T) {
	forEachGranularity(t, testChaosLinearizability)
}

func testChaosLinearizability(t *testing.T, granularity string) {
	const clients = 3
	const opsPerClient = 4
	s := newTestServer(t, Options{
		Shards: 3, Workers: 2, HeapWords: 1 << 16, Seed: 7,
		CrossRetries:     512, // ride out fences held across a recovery window
		FenceDeadline:    100 * time.Millisecond,
		DetectInterval:   25 * time.Millisecond,
		FenceGranularity: granularity,
		Fault:            mustFault(t, "coord-crash@every=3;count=4", 9),
	})
	keys := keysOnDistinctShards(t, s, 3)
	base := time.Now()
	rec := &linRecorder{}
	var pendMu sync.Mutex
	var pending []shard.Op // crashed mputs: decided, applied by recovery

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				v := uint64(c*1000 + i + 1)
				op := shard.Op{Invoke: int64(time.Since(base))}
				if i%2 == 0 {
					op.Kind = shard.OpMPut
					op.Keys = append([]uint64{}, keys...)
					op.Args = []uint64{v, v, v}
					resp, code := s.submitCross(&request{op: opMPut, keys: op.Keys, vals: op.Args})
					op.Return = int64(time.Since(base))
					switch {
					case code == http.StatusOK:
						rec.record(op)
					case strings.Contains(resp.Err, "crashed"):
						// Decided before the crash: recovery will apply it.
						// Its true effect time is anywhere up to recovery
						// completion, so Return is restamped after drain.
						pendMu.Lock()
						pending = append(pending, op)
						pendMu.Unlock()
					}
					// Any other failure (abort-all exhaustion, breaker shed,
					// undecided supersede) applied nothing — safe to drop.
				} else {
					op.Kind = shard.OpMGet
					op.Keys = append([]uint64{}, keys...)
					resp, code := s.submitCross(&request{op: opMGet, keys: op.Keys})
					op.Return = int64(time.Since(base))
					if code == http.StatusOK {
						op.Vals, op.Oks = resp.Vals, resp.Present
						rec.record(op)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Quiescence: every orphaned batch recovered, every fence free.
	waitUntil(t, 15*time.Second, "chaos quiescence", func() bool {
		return regSize(s) == 0 && fencesFree(s)
	})
	if s.crossCrashes.Load() == 0 {
		t.Fatal("chaos schedule injected no coordinator crashes")
	}
	if got, want := s.fenceRecovered.Load(), s.crossCrashes.Load(); got < want {
		t.Fatalf("fence_recovered = %d < cross_crashes = %d after quiescence", got, want)
	}
	end := int64(time.Since(base))
	for _, op := range pending {
		op.Return = end
		rec.record(op)
	}
	if _, ok := shard.Linearize(rec.ops); !ok {
		t.Fatalf("chaos history of %d ops (%d crash-recovered) admits no sequential witness: %+v",
			len(rec.ops), len(pending), rec.ops)
	}
}

// TestFenceEpochLateReleaseIsNoOp pins the epoch guard: after the
// detector recovers a fence and a new coordinator re-acquires it, the
// original slow-but-alive coordinator's release — presented with its
// superseded epoch — must change nothing.
func TestFenceEpochLateReleaseIsNoOp(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2, Workers: 2, FenceDeadline: -1})
	ss := s.fleet()[1]

	r1 := s.ctlAcquire(ss, 101, 0)
	if !r1.Applied {
		t.Fatalf("initial acquire failed: %+v", r1)
	}
	// The detector (driven by hand: detection is disabled) declares
	// coordinator 101 dead. Its token was never registered, so the fence
	// is simply released at its observed epoch.
	s.recoverOrphan(ss, 101, r1.epoch, -1)
	if v := ss.sys.Load(ss.store.FenceWord()); v != 0 {
		t.Fatalf("fence not recovered: held by %d", v)
	}
	if got, aborted := s.fenceRecovered.Load(), s.fenceAborted.Load(); got != 1 || aborted != 1 {
		t.Fatalf("recovery counters = recovered %d aborted %d, want 1/1", got, aborted)
	}

	// A new coordinator takes the fence under a fresh epoch.
	r2 := s.ctlAcquire(ss, 202, 0)
	if !r2.Applied || r2.epoch != r1.epoch+1 {
		t.Fatalf("re-acquire = %+v, want epoch %d", r2, r1.epoch+1)
	}

	// The original coordinator finally issues its release with the old
	// epoch: a provable no-op, not a theft of coordinator 202's fence.
	var heldByOld, released bool
	s.ctl(ss, func(w *proteustm.Worker, _ int) response {
		w.Atomic(func(tx proteustm.Txn) {
			heldByOld = ss.store.FenceHeldBy(tx, 101, r1.epoch)
			released = ss.store.FenceRelease(tx, r1.epoch)
		})
		return response{}
	})
	if heldByOld || released {
		t.Fatalf("late release applied: heldByOld=%v released=%v", heldByOld, released)
	}
	if v := ss.sys.Load(ss.store.FenceWord()); v != 202 {
		t.Fatalf("fence = %d after late release, want 202", v)
	}
	if e := ss.sys.Load(ss.store.FenceEpochWord()); e != r2.epoch {
		t.Fatalf("epoch = %d after late release, want %d", e, r2.epoch)
	}

	// The current holder's correctly-epoched release still works.
	s.ctl(ss, func(w *proteustm.Worker, _ int) response {
		w.Atomic(func(tx proteustm.Txn) { ss.store.FenceRelease(tx, r2.epoch) })
		return response{}
	})
	if v := ss.sys.Load(ss.store.FenceWord()); v != 0 {
		t.Fatalf("guarded release by current holder failed: fence = %d", v)
	}
}

// TestDoubleRecoveryIdempotence pins the counted-once edge: recovering
// the same orphaned batch twice rolls its writes forward exactly once
// and bumps the recovery counters exactly once.
func TestDoubleRecoveryIdempotence(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 3, Workers: 2, FenceDeadline: -1,
		Fault: mustFault(t, "coord-crash@every=1;count=1", 5),
	})
	keys := keysOnDistinctShards(t, s, 3)
	vals := []uint64{10, 20, 30}
	resp, code := s.submitCross(&request{op: opMPut, keys: keys, vals: vals})
	if code != http.StatusServiceUnavailable || !strings.Contains(resp.Err, "crashed") {
		t.Fatalf("crashed mput = %d %+v", code, resp)
	}

	ss := s.fleet()[s.part().Owner(keys[0])]
	token := ss.sys.Load(ss.store.FenceWord())
	epoch := ss.sys.Load(ss.store.FenceEpochWord())
	if token == 0 {
		t.Fatal("crashed coordinator left no fence held")
	}

	// First recovery heals the whole batch across all three shards.
	s.recoverOrphan(ss, token, epoch, -1)
	for i, sh := range s.fleet() {
		if v := sh.sys.Load(sh.store.FenceWord()); v != 0 {
			t.Fatalf("shard %d fence still held (%d) after recovery", i, v)
		}
	}
	if rec, fwd := s.fenceRecovered.Load(), s.fenceRolledForward.Load(); rec != 1 || fwd != 1 {
		t.Fatalf("after first recovery: recovered %d rolled-forward %d, want 1/1", rec, fwd)
	}

	// A second detector firing on the same orphan — from this shard or
	// any other participant — must be a no-op.
	s.recoverOrphan(ss, token, epoch, -1)
	other := s.fleet()[s.part().Owner(keys[1])]
	s.recoverOrphan(other, token, other.sys.Load(other.store.FenceEpochWord()), -1)
	if rec, fwd, ab := s.fenceRecovered.Load(), s.fenceRolledForward.Load(), s.fenceAborted.Load(); rec != 1 || fwd != 1 || ab != 0 {
		t.Fatalf("after double recovery: recovered %d rolled-forward %d aborted %d, want 1/1/0", rec, fwd, ab)
	}
	if n := regSize(s); n != 0 {
		t.Fatalf("registry holds %d records after recovery", n)
	}

	// The rolled-forward writes are present, once.
	resp, code = s.submitCross(&request{op: opMGet, keys: keys})
	if code != http.StatusOK {
		t.Fatalf("mget = %d %+v", code, resp)
	}
	for i := range keys {
		if !resp.Present[i] || resp.Vals[i] != vals[i] {
			t.Fatalf("mget[%d] = %+v, want %d", i, resp, vals[i])
		}
	}
}

// TestBreakerOpensAndCloses drives the progress-watchdog circuit breaker
// through a full cycle with an injected shard stall: queued work with no
// progress opens it, new admissions shed 503 with a Retry-After hint and
// /healthz goes not-ready, and resumed progress closes it again.
func TestBreakerOpensAndCloses(t *testing.T) {
	forEachGranularity(t, testBreakerOpensAndCloses)
}

func testBreakerOpensAndCloses(t *testing.T, granularity string) {
	s := newTestServer(t, Options{
		Shards: 2, Workers: 1, Seed: 3,
		FenceDeadline:     5 * time.Second, // detector on, fence recovery out of play
		DetectInterval:    10 * time.Millisecond,
		BreakerStallTicks: 2,
		BreakerCooldown:   3 * time.Second,
		FenceGranularity:  granularity,
		Fault:             mustFault(t, "shard-stall:0@every=1;count=1;stall=1200ms", 3),
	})
	var k uint64
	for s.part().Owner(k) != 0 {
		k++
	}
	ss := s.fleet()[0]

	// The first dequeue on shard 0 arms the 1.2s stall; the rest of the
	// puts sit in the queue, so the detector sees queued work with zero
	// executions and opens the breaker.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The detector may open the breaker before a later put is
			// admitted; a shed 503 is the breaker doing its job, so
			// retry like a real client until the put lands.
			for {
				resp, code := s.submit(ss, &request{op: opPut, key: k, val: uint64(i)})
				if code == http.StatusOK {
					return
				}
				if code != http.StatusServiceUnavailable {
					t.Errorf("stalled put %d = %d %+v", i, code, resp)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}(i)
		time.Sleep(10 * time.Millisecond)
	}
	waitUntil(t, 5*time.Second, "breaker open", func() bool {
		return s.breakerOpenTotal.Load() > 0
	})
	if h := s.Health(); h.Healthy {
		t.Fatalf("health ready with an open breaker: %+v", h)
	}
	resp, code := s.submit(ss, &request{op: opPut, key: k, val: 99})
	if code != http.StatusServiceUnavailable || resp.retryAfter <= 0 {
		t.Fatalf("open-breaker submit = %d %+v, want 503 with Retry-After", code, resp)
	}
	if s.breakerShed.Load() == 0 {
		t.Fatal("shed admission not counted")
	}

	// The stall expires, the queue drains, and the next detector tick
	// observes progress and closes the breaker.
	wg.Wait()
	waitUntil(t, 5*time.Second, "breaker close", func() bool {
		return ss.breakerState.Load() == breakerClosed
	})
	if h := s.Health(); !h.Healthy {
		t.Fatalf("health not ready after breaker closed: %+v", h)
	}
	if resp, code := s.submit(ss, &request{op: opPut, key: k, val: 100}); code != http.StatusOK {
		t.Fatalf("post-recovery put = %d %+v", code, resp)
	}
	if st := s.StatusSnapshot(); st.Shards[0].Breaker != "closed" || st.Ops.BreakerOpenTotal == 0 {
		t.Fatalf("statusz breaker state = %+v", st.Shards[0])
	}
}

// TestTornWriteAfterAcquireStallRecovery is the permanent regression
// test for the torn-write-after-recovery bug: a coordinator stalled
// mid-acquire whose undecided batch is aborted by fence recovery must,
// on resuming, re-validate its parts before deciding — it must never
// apply the non-recovered subset and report 200 for a partial write.
func TestTornWriteAfterAcquireStallRecovery(t *testing.T) {
	forEachGranularity(t, testTornWriteAfterAcquireStallRecovery)
}

func testTornWriteAfterAcquireStallRecovery(t *testing.T, granularity string) {
	s := newTestServer(t, Options{
		Shards: 3, Workers: 2, Seed: 11,
		FenceDeadline:    60 * time.Millisecond,
		DetectInterval:   15 * time.Millisecond,
		FenceGranularity: granularity,
		// Arrival 1 = before first acquire; fire on arrival 2 so the
		// coordinator stalls holding shard A's fence, well past the
		// detection deadline.
		Fault: mustFault(t, "fence-acquire-stall@after=1;count=1;stall=500ms", 11),
	})
	keys := keysOnDistinctShards(t, s, 3)
	vals := []uint64{111, 222, 333}

	resp, code := s.submitCross(&request{op: opMPut, keys: keys, vals: vals})
	t.Logf("mput resp=%+v code=%d aborted=%d recovered=%d", resp, code,
		s.fenceAborted.Load(), s.fenceRecovered.Load())

	got, gcode := s.submitCross(&request{op: opMGet, keys: keys})
	if gcode != http.StatusOK {
		t.Fatalf("mget = %d %+v", gcode, got)
	}
	t.Logf("mget present=%v vals=%v", got.Present, got.Vals)

	if code == http.StatusOK {
		// The server reported success: every key must hold its value.
		for i := range keys {
			if !got.Present[i] || got.Vals[i] != vals[i] {
				t.Fatalf("TORN WRITE: mput returned 200 but key[%d]: present=%v val=%d (want %d)",
					i, got.Present[i], got.Vals[i], vals[i])
			}
		}
	} else {
		// The server reported failure: an atomic batch must be all-or-nothing.
		any, all := false, true
		for i := range keys {
			if got.Present[i] && got.Vals[i] == vals[i] {
				any = true
			} else {
				all = false
			}
		}
		if any && !all {
			t.Fatalf("TORN WRITE: mput failed (%d) but writes partially applied: present=%v vals=%v",
				code, got.Present, got.Vals)
		}
	}
}
