// Package smbo implements the Controller's Sequential Model-Based Bayesian
// Optimization (§5.2 of the paper): the exploration of a new workload's
// configuration space driven by an acquisition function over the bagged CF
// ensemble's predictive distribution, with the Cautious early-stopping
// heuristic.
//
// Conventions: ratings are higher-is-better (goodness space), so the
// optimizer MAXIMIZES; Expected Improvement is computed for maximization.
package smbo

import (
	"math"
)

// Policy selects the acquisition function used to pick the next
// configuration to profile — the four contenders of Fig. 5.
type Policy int

const (
	// EI picks the configuration with maximal Expected Improvement over
	// the incumbent (ProteusTM's choice).
	EI Policy = iota
	// Greedy picks the configuration with the highest predictive mean.
	Greedy
	// Variance picks the configuration with the highest predictive
	// uncertainty (variance/mean ratio).
	Variance
	// Random samples uniformly among unexplored configurations (the
	// Paragon/Quasar-style baseline).
	Random
)

// String returns the policy name used in experiment output.
func (p Policy) String() string {
	switch p {
	case EI:
		return "EI"
	case Greedy:
		return "Greedy"
	case Variance:
		return "Variance"
	case Random:
		return "Random"
	}
	return "?"
}

// StopRule selects the early-stopping predicate (Fig. 6).
type StopRule int

const (
	// StopNone explores until the budget is exhausted.
	StopNone StopRule = iota
	// StopCautious is ProteusTM's heuristic: stop only when the EI
	// decreased over the last two iterations AND the latest EI is
	// marginal relative to the incumbent AND the last exploration's
	// realized improvement was below epsilon.
	StopCautious
	// StopNaive trusts the model blindly: stop as soon as the maximal EI
	// falls below epsilon times the incumbent.
	StopNaive
)

// Model is the predictive surrogate: given the active row's known ratings
// (NaN for unexplored), it returns per-configuration predictive means and
// variances. Implemented by *cf.Bagging via an adapter in rectm.
type Model interface {
	PredictDist(active []float64) (mean, variance []float64)
}

// Options configures an optimization run.
type Options struct {
	Policy  Policy
	Stop    StopRule
	Epsilon float64 // ε of §5.2; default 0.01
	// MaxExplorations bounds the sampled configurations (in addition to
	// the initial profile); 0 means the number of columns.
	MaxExplorations int
	// Seed drives the Random policy.
	Seed uint64
	// NoFinalCheck skips the final profile-the-recommendation step, so an
	// exploration budget translates into an exact sample count (used by
	// the fixed-budget sweeps of Fig. 5).
	NoFinalCheck bool
}

// Result summarizes an optimization run.
type Result struct {
	// Explored lists the profiled configurations in order (including the
	// initial ones handed to Optimize and the final recommendation
	// check).
	Explored []int
	// Best is the recommended configuration: the explored column with
	// the best sampled rating.
	Best int
	// BestRating is the sampled rating of Best.
	BestRating float64
}

// ExploredCount returns the number of profiled configurations.
func (r Result) ExploredCount() int { return len(r.Explored) }

// Optimize runs the §5.2 loop for one workload. active is the current
// rating row (known entries = already-profiled configurations, e.g. the
// reference configuration sampled first); sample profiles configuration i
// and returns its true rating. The loop:
//
//  1. query the surrogate for (mean, variance) of unexplored configs;
//  2. pick the next configuration per the acquisition policy;
//  3. profile it, insert the rating, and re-evaluate the stop rule;
//  4. finally, recommend the model's argmax; if unexplored, profile it; the
//     recommendation is the best *explored* configuration (§6.3).
func Optimize(model Model, active []float64, sample func(int) float64, opts Options) Result {
	cols := len(active)
	eps := opts.Epsilon
	if eps == 0 {
		eps = 0.01
	}
	maxExpl := opts.MaxExplorations
	if maxExpl <= 0 || maxExpl > cols {
		maxExpl = cols
	}
	rng := opts.Seed*0x9E3779B97F4A7C15 + 0x106689D45497FDB5

	res := Result{}
	row := make([]float64, cols)
	copy(row, active)
	for i, v := range row {
		if !math.IsNaN(v) {
			res.Explored = append(res.Explored, i)
		}
	}

	incumbent := bestKnown(row)
	prevEI := math.Inf(1)
	prevPrevEI := math.Inf(1)
	lastImprovement := math.Inf(1)

	for steps := 0; steps < maxExpl; steps++ {
		mean, variance := model.PredictDist(row)
		next, nextEI := PickNext(row, mean, variance, incumbent, opts.Policy, &rng)
		if next < 0 {
			break // everything explored or unpredictable
		}
		if ShouldStop(opts.Stop, eps, incumbent, nextEI, prevEI, prevPrevEI, lastImprovement) {
			break
		}
		rating := sample(next)
		row[next] = rating
		res.Explored = append(res.Explored, next)
		if rating > incumbent {
			lastImprovement = (rating - incumbent) / math.Abs(incumbent)
			incumbent = rating
		} else {
			lastImprovement = 0
		}
		prevPrevEI, prevEI = prevEI, nextEI
	}

	// Final recommendation: model argmax over all configurations; profile
	// it if unexplored, then return the best explored configuration.
	if opts.NoFinalCheck {
		res.Best, res.BestRating = argBestKnown(row)
		return res
	}
	mean, _ := model.PredictDist(row)
	bestPred, bestIdx := math.Inf(-1), -1
	for i := 0; i < cols; i++ {
		v := mean[i]
		if math.IsNaN(v) {
			continue
		}
		if !math.IsNaN(row[i]) {
			v = row[i] // trust samples over predictions
		}
		if v > bestPred {
			bestPred, bestIdx = v, i
		}
	}
	if bestIdx >= 0 && math.IsNaN(row[bestIdx]) {
		row[bestIdx] = sample(bestIdx)
		res.Explored = append(res.Explored, bestIdx)
	}
	res.Best, res.BestRating = argBestKnown(row)
	return res
}

// bestKnown returns the best sampled rating (−Inf when none).
func bestKnown(row []float64) float64 {
	best := math.Inf(-1)
	for _, v := range row {
		if !math.IsNaN(v) && v > best {
			best = v
		}
	}
	return best
}

func argBestKnown(row []float64) (int, float64) {
	best, idx := math.Inf(-1), -1
	for i, v := range row {
		if !math.IsNaN(v) && v > best {
			best, idx = v, i
		}
	}
	return idx, best
}

// PickNext applies the acquisition policy over unexplored configurations
// (NaN entries of row), returning the chosen column and its EI value (EI is
// reported for the stop rule regardless of policy). It returns -1 when
// everything predictable has been explored.
func PickNext(row, mean, variance []float64, incumbent float64, policy Policy, rng *uint64) (int, float64) {
	bestScore := math.Inf(-1)
	bestEI := 0.0
	next := -1
	nUnexplored := 0
	for i := range row {
		if !math.IsNaN(row[i]) {
			continue
		}
		nUnexplored++
		mu, va := mean[i], variance[i]
		if math.IsNaN(mu) {
			continue
		}
		if math.IsNaN(va) || va < 0 {
			va = 0
		}
		ei := ExpectedImprovement(mu, math.Sqrt(va), incumbent)
		var score float64
		switch policy {
		case EI:
			score = ei
		case Greedy:
			score = mu
		case Variance:
			if mu != 0 {
				score = va / math.Abs(mu)
			} else {
				score = va
			}
		case Random:
			score = xorshift01(rng)
		}
		if score > bestScore {
			bestScore, next, bestEI = score, i, ei
		}
	}
	if next < 0 && nUnexplored > 0 {
		// Model cannot predict anything (e.g. empty ensemble): fall
		// back to the first unexplored column.
		for i := range row {
			if math.IsNaN(row[i]) {
				return i, math.Inf(1)
			}
		}
	}
	return next, bestEI
}

// ShouldStop evaluates the early-stop predicate before spending the next
// exploration. prevEI and prevPrevEI are the EI values of the two previous
// iterations (+Inf before enough history exists); lastImprovement is the
// relative KPI improvement realized by the previous exploration.
func ShouldStop(rule StopRule, eps, incumbent, nextEI, prevEI, prevPrevEI, lastImprovement float64) bool {
	if math.IsInf(incumbent, -1) {
		return false // nothing sampled yet
	}
	rel := nextEI / math.Max(math.Abs(incumbent), 1e-12)
	switch rule {
	case StopNaive:
		return rel < eps
	case StopCautious:
		decreasing := nextEI < prevEI && prevEI < prevPrevEI
		marginal := rel < eps
		stalled := lastImprovement <= eps
		return decreasing && marginal && stalled
	}
	return false
}

// ExpectedImprovement is the closed-form EI for a Gaussian posterior under
// maximization: EI = σ·[u·Φ(u) + φ(u)] with u = (μ − best)/σ (§5.2; the
// paper states the minimization form, mirrored here because ratings are
// higher-is-better).
func ExpectedImprovement(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		if mu > best {
			return mu - best
		}
		return 0
	}
	u := (mu - best) / sigma
	return sigma * (u*stdNormCDF(u) + stdNormPDF(u))
}

func stdNormPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func xorshift01(state *uint64) float64 {
	x := *state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*state = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}
