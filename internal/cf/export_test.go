package cf

// RowSimilarityForTest exposes the internal similarity computation to the
// external test package.
func RowSimilarityForTest(s Similarity, a, b []float64) float64 {
	sim, _ := rowSimilarity(s, a, b)
	return sim
}
