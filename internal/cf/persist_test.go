package cf_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cf"
)

// TestCSVRoundTrip property-tests matrix persistence: write → read is the
// identity (treating NaN as missing).
func TestCSVRoundTrip(t *testing.T) {
	f := func(vals []float64, colsSeed uint8) bool {
		cols := int(colsSeed%5) + 1
		rows := len(vals)/cols + 1
		m := cf.NewMatrix(rows, cols)
		for i, v := range vals {
			if math.IsInf(v, 0) {
				v = 1
			}
			if i/cols >= rows {
				break
			}
			m.Data[i/cols][i%cols] = v
		}
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf, nil); err != nil {
			t.Fatal(err)
		}
		back, _, err := cf.ReadCSV(&buf, false)
		if err != nil {
			t.Fatal(err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols {
			return false
		}
		for u := range m.Data {
			for i := range m.Data[u] {
				a, b := m.Data[u][i], back.Data[u][i]
				if cf.IsMissing(a) != cf.IsMissing(b) {
					return false
				}
				if !cf.IsMissing(a) && a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCSVHeader round-trips column labels.
func TestCSVHeader(t *testing.T) {
	m := cf.NewMatrix(2, 3)
	m.Data[0][0] = 1.5
	m.Data[1][2] = -2
	labels := []string{"TL2:1t", "Tiny:4t", "HTM:8t GiveUp-4"}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf, labels); err != nil {
		t.Fatal(err)
	}
	back, gotLabels, err := cf.ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if gotLabels[i] != labels[i] {
			t.Errorf("label %d = %q, want %q", i, gotLabels[i], labels[i])
		}
	}
	if back.Data[0][0] != 1.5 || back.Data[1][2] != -2 {
		t.Error("values corrupted")
	}
	if !cf.IsMissing(back.Data[0][1]) {
		t.Error("missing cell materialized")
	}
}

// TestCSVErrors covers malformed input.
func TestCSVErrors(t *testing.T) {
	if _, _, err := cf.ReadCSV(bytes.NewBufferString(""), false); err == nil {
		t.Error("expected error for empty input")
	}
	if _, _, err := cf.ReadCSV(bytes.NewBufferString("1,notanumber\n"), false); err == nil {
		t.Error("expected error for non-numeric field")
	}
	m := cf.NewMatrix(1, 2)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf, []string{"only-one"}); err == nil {
		t.Error("expected error for label/column mismatch")
	}
}
