package config_test

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/htm"
)

// TestKeyUniqueness: distinct configurations must encode to distinct keys.
func TestKeyUniqueness(t *testing.T) {
	f := func(a1, a2, t1, t2, b1, b2 uint8, p1, p2 uint8) bool {
		c1 := config.Config{
			Alg:     config.AlgID(a1 % uint8(config.NumAlgs)),
			Threads: int(t1%64) + 1,
			Budget:  int(b1 % 32),
			Policy:  htm.CapacityPolicy(p1 % 3),
		}
		c2 := config.Config{
			Alg:     config.AlgID(a2 % uint8(config.NumAlgs)),
			Threads: int(t2%64) + 1,
			Budget:  int(b2 % 32),
			Policy:  htm.CapacityPolicy(p2 % 3),
		}
		if c1 == c2 {
			return c1.Key() == c2.Key()
		}
		return c1.Key() != c2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestStrings covers every algorithm label.
func TestStrings(t *testing.T) {
	want := map[config.AlgID]string{
		config.TL2:        "TL2",
		config.TinySTM:    "Tiny",
		config.NOrec:      "NOrec",
		config.SwissTM:    "Swiss",
		config.HTM:        "HTM",
		config.Hybrid:     "Hybrid",
		config.GlobalLock: "GL",
	}
	for alg, s := range want {
		if alg.String() != s {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), s)
		}
	}
	c := config.Config{Alg: config.HTM, Threads: 4, Budget: 16, Policy: htm.PolicyGiveUp}
	if got := c.String(); got != "HTM:4t GiveUp-16" {
		t.Errorf("HTM label = %q", got)
	}
}

// TestIsHTM covers the CM-relevance predicate.
func TestIsHTM(t *testing.T) {
	if !config.HTM.IsHTM() || !config.Hybrid.IsHTM() {
		t.Error("HTM/Hybrid must report IsHTM")
	}
	if config.TL2.IsHTM() || config.GlobalLock.IsHTM() {
		t.Error("STM/GL must not report IsHTM")
	}
}

// TestParseRoundTrip pins that Parse inverts String over the whole default
// space (the property `proteusbench run --config` and UM headers rely on).
func TestParseRoundTrip(t *testing.T) {
	space := config.DefaultSpace(8)
	if len(space) == 0 {
		t.Fatal("empty default space")
	}
	for _, c := range space {
		got, err := config.Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("Parse(%q) = %+v, want %+v", c.String(), got, c)
		}
	}
	// Hybrid and the Linear policy are not in the default space.
	c := config.Config{Alg: config.Hybrid, Threads: 2, Budget: 5, Policy: htm.PolicyDecrease}
	got, err := config.Parse(c.String())
	if err != nil || got != c {
		t.Errorf("Parse(%q) = %+v, %v; want %+v", c.String(), got, err, c)
	}
}

// TestParseAcceptsAliases covers long algorithm names and case folding.
func TestParseAcceptsAliases(t *testing.T) {
	for label, want := range map[string]config.Config{
		"TinySTM:4t":      {Alg: config.TinySTM, Threads: 4},
		"globallock:1t":   {Alg: config.GlobalLock, Threads: 1},
		"swisstm:2t":      {Alg: config.SwissTM, Threads: 2},
		"htm:2t giveup-3": {Alg: config.HTM, Threads: 2, Budget: 3, Policy: htm.PolicyGiveUp},
	} {
		got, err := config.Parse(label)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %+v, %v; want %+v", label, got, err, want)
		}
	}
}

// TestParseRejectsGarbage covers malformed labels.
func TestParseRejectsGarbage(t *testing.T) {
	for _, label := range []string{
		"", "TL2", "TL2:xt", "TL2:0t", "Nope:4t", "TL2:4t GiveUp-2",
		"HTM:4t", "HTM:4t Sideways-2", "HTM:4t GiveUp-0", "HTM:4t GiveUp-2 extra",
	} {
		if _, err := config.Parse(label); err == nil {
			t.Errorf("Parse(%q) accepted", label)
		}
	}
}

// TestParseList covers the comma-separated form used by --config.
func TestParseList(t *testing.T) {
	cfgs, err := config.ParseList("TL2:4t, NOrec:8t")
	if err != nil || len(cfgs) != 2 || cfgs[1].Alg != config.NOrec {
		t.Fatalf("ParseList = %+v, %v", cfgs, err)
	}
	if _, err := config.ParseList(" , "); err == nil {
		t.Error("empty list accepted")
	}
}
