// Package scenario is the experiment substrate of the reproduction: a
// registry of named, parameterized workload scenarios — one or more per
// workload family in internal/workloads — plus a deterministic harness
// that runs a scenario under one or more TM configurations (fixed or
// auto-tuned) and emits reproducible result records.
//
// The registry makes the evaluation pipeline of the paper enumerable and
// scriptable: `proteusbench list` prints every scenario with its parameter
// schema, `proteusbench run` executes one scenario from flag-style
// parameters, and `proteusbench sweep` measures a scenario grid × config
// grid into a Utility-Matrix CSV that RecTM can train on.
//
// In deterministic mode (the default), operations execute serially against
// a virtual clock that charges one fixed cost per transaction attempt, so
// a fixed seed yields byte-identical result records across runs — the
// property docs/experimentation.md builds its controlled-experiment
// workflow on. Timed mode trades that reproducibility for real wall-clock
// throughput.
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/workloads"
)

// Scenario is one registered, parameterizable workload.
type Scenario struct {
	// Name is the registry key (kebab-case, unique).
	Name string
	// Family groups scenarios by their internal/workloads source family:
	// rbtree, lists, stamp, stmbench7, tpcc, memcached or interference.
	Family string
	// Description is a one-line summary for listings.
	Description string
	// Params is the parameter schema; Make receives validated Values.
	Params []Param
	// Make constructs the workload from parameter values (missing keys
	// take the schema defaults).
	Make func(v Values) (workloads.Workload, error)
	// Antagonist, when non-nil, builds the resource antagonist started
	// alongside the workload. Antagonists compete for real machine
	// resources, so they only affect timed-mode runs; deterministic runs
	// note them in the record but are immune by construction.
	Antagonist func(v Values) *workloads.Interference
}

var registry = map[string]Scenario{}

// Register adds a scenario to the registry; scenario files self-register
// from init. It panics on duplicate or empty names — both are programming
// errors caught by any test that imports the package.
func Register(s Scenario) {
	if s.Name == "" || s.Make == nil {
		panic("scenario: Register needs a name and a Make function")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted scenario names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Families returns the sorted set of workload families present in the
// registry.
func Families() []string {
	seen := map[string]bool{}
	for _, s := range registry {
		seen[s.Family] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
