package cf

import "math"

// Bagging is the bootstrap-aggregated ensemble of CF learners the Controller
// uses as its probabilistic model (§5.2): k base predictors are trained on
// random row subsets of the training matrix, and the per-configuration mean
// and variance across their predictions provide the Gaussian pM(c|x) of the
// Expected-Improvement computation. The paper uses k = 10.
type Bagging struct {
	// Learners is the number of bagged models (default 10).
	Learners int
	// SampleFrac is the fraction of training rows drawn (with
	// replacement) for each learner (default 1.0, classic bootstrap).
	SampleFrac float64
	// New constructs a fresh base predictor for learner i.
	New func(i int) Predictor
	// Seed makes bootstrap sampling deterministic.
	Seed uint64

	models []Predictor
}

// Fit trains the ensemble on the rating matrix.
func (b *Bagging) Fit(train *Matrix) {
	k := b.Learners
	if k <= 0 {
		k = 10
	}
	frac := b.SampleFrac
	if frac <= 0 {
		frac = 1
	}
	rng := splitmix64(b.Seed + 0x9E3779B97F4A7C15)
	b.models = make([]Predictor, k)
	for i := 0; i < k; i++ {
		n := int(frac * float64(train.Rows))
		if n < 1 {
			n = 1
		}
		boot := NewMatrix(n, train.Cols)
		for r := 0; r < n; r++ {
			src := int(rand01(&rng) * float64(train.Rows))
			if src >= train.Rows {
				src = train.Rows - 1
			}
			copy(boot.Data[r], train.Data[src])
		}
		m := b.New(i)
		m.Fit(boot)
		b.models[i] = m
	}
}

// Predict returns the ensemble-mean prediction row.
func (b *Bagging) Predict(active []float64) []float64 {
	mean, _ := b.PredictDist(active)
	return mean
}

// PredictDist returns, per configuration, the frequentist mean and variance
// of the base learners' predictions — the Gaussian surrogate the SMBO
// acquisition functions consume. Entries no learner can predict are NaN in
// both outputs.
func (b *Bagging) PredictDist(active []float64) (mean, variance []float64) {
	cols := len(active)
	mean = make([]float64, cols)
	variance = make([]float64, cols)
	sums := make([]float64, cols)
	sqs := make([]float64, cols)
	counts := make([]int, cols)
	for _, m := range b.models {
		pred := m.Predict(active)
		for i, v := range pred {
			if IsMissing(v) || math.IsInf(v, 0) {
				continue
			}
			sums[i] += v
			sqs[i] += v * v
			counts[i]++
		}
	}
	for i := 0; i < cols; i++ {
		if counts[i] == 0 {
			mean[i], variance[i] = Missing, Missing
			continue
		}
		n := float64(counts[i])
		mean[i] = sums[i] / n
		variance[i] = sqs[i]/n - mean[i]*mean[i]
		if variance[i] < 0 {
			variance[i] = 0
		}
	}
	return mean, variance
}

// FullPredictor is the optional interface of predictors that can produce
// model output for every column (not echoing the known entries).
type FullPredictor interface {
	PredictFull(active []float64) []float64
}

// PredictFull returns the ensemble-mean model prediction for every column,
// using PredictFull on base learners that support it and Predict otherwise.
func (b *Bagging) PredictFull(active []float64) []float64 {
	cols := len(active)
	sums := make([]float64, cols)
	counts := make([]int, cols)
	for _, m := range b.models {
		var pred []float64
		if fp, ok := m.(FullPredictor); ok {
			pred = fp.PredictFull(active)
		} else {
			pred = m.Predict(active)
		}
		for i, v := range pred {
			if IsMissing(v) || math.IsInf(v, 0) {
				continue
			}
			sums[i] += v
			counts[i]++
		}
	}
	out := make([]float64, cols)
	for i := range out {
		if counts[i] == 0 {
			out[i] = Missing
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// Name identifies the ensemble (after the first base learner).
func (b *Bagging) Name() string {
	if len(b.models) > 0 {
		return "bagged-" + b.models[0].Name()
	}
	return "bagged"
}
