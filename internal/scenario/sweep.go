package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/polytm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// SweepSpec describes a `proteusbench sweep`: a scenario grid × config
// grid measured into a Utility Matrix (rows = scenarios, columns =
// configurations, entries = committed transactions per second). The CSV it
// emits is the cf.ReadCSV / proteustm.WithTrainingMatrix input format, so
// a sweep on this machine replaces the synthetic training matrix with
// measured data — RecTM's offline profiling step (Algorithm 2, line 1).
type SweepSpec struct {
	// Scenarios names the rows (default: every registered scenario).
	Scenarios []string
	// Params holds optional per-scenario parameter overrides.
	Params map[string]Values
	// Space is the column grid (default config.DefaultSpace(MaxThreads)).
	Space []config.Config
	// MaxThreads is the number of worker slots (default 8).
	MaxThreads int
	// HeapWords sizes each row's transactional heap (default 1<<22).
	HeapWords int
	// Seed drives setup and operation streams.
	Seed uint64
	// Ops is the deterministic-mode per-cell operation budget (default
	// 20000). Deterministic sweeps exercise the pipeline reproducibly
	// but cannot rank configurations by real performance — use Window
	// for that.
	Ops uint64
	// OpCost is the deterministic-mode virtual cost per attempt
	// (default 1µs).
	OpCost time.Duration
	// Window selects timed mode when positive: each cell measures real
	// throughput for this wall-clock span.
	Window time.Duration
	// Journal, when non-empty, is a JSON-lines file recording each
	// measured cell. A sweep finding an existing journal resumes: cells
	// already recorded are reused, only missing ones are measured.
	Journal string
	// Progress, when non-nil, receives per-row progress lines.
	Progress io.Writer
}

// Mode returns the mode the spec selects.
func (spec SweepSpec) Mode() Mode {
	if spec.Window > 0 {
		return Timed
	}
	return Deterministic
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Scenarios and Labels name the UM rows and columns.
	Scenarios []string
	Labels    []string
	// UM is the measured Utility Matrix.
	UM *cf.Matrix
	// Measured and Reused count cells measured now vs. taken from the
	// journal.
	Measured, Reused int
}

// WriteCSV writes the Utility Matrix with configuration labels as header.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	return r.UM.WriteCSV(w, r.Labels)
}

// sweepCell is one journal line. Lines with Meta set fingerprint the
// measurement conditions; lines with Row/Col record one cell.
type sweepCell struct {
	Meta  string  `json:"meta,omitempty"`
	Row   string  `json:"row,omitempty"`
	Col   string  `json:"col,omitempty"`
	Value float64 `json:"value"`
}

// fingerprint identifies the measurement conditions a journal's cells were
// taken under. Resuming with different conditions would silently mix
// incomparable measurements, so loadJournal rejects a mismatch.
func (spec *SweepSpec) fingerprint() string {
	return fmt.Sprintf("seed=%d ops=%d opcost=%s window=%s threads=%d heap=%d",
		spec.Seed, spec.Ops, spec.OpCost, spec.Window, spec.MaxThreads, spec.HeapWords)
}

// loadJournal reads previously measured cells (missing file = empty).
func loadJournal(path, fingerprint string) (map[string]float64, error) {
	done := map[string]float64{}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return done, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var c sweepCell
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			continue // a torn trailing line from an interrupted sweep
		}
		if c.Meta != "" {
			if c.Meta != fingerprint {
				return nil, fmt.Errorf("journal %s was measured under %q, this sweep is %q — delete the journal or match the flags",
					path, c.Meta, fingerprint)
			}
			continue
		}
		done[c.Row+"\x00"+c.Col] = c.Value
	}
	return done, sc.Err()
}

func (spec *SweepSpec) setDefaults() {
	if len(spec.Scenarios) == 0 {
		spec.Scenarios = Names()
	}
	if spec.MaxThreads <= 0 {
		spec.MaxThreads = 8
	}
	if spec.HeapWords <= 0 {
		spec.HeapWords = 1 << 22
	}
	if spec.Ops == 0 {
		spec.Ops = 20000
	}
	if spec.OpCost <= 0 {
		spec.OpCost = time.Microsecond
	}
	if len(spec.Space) == 0 {
		spec.Space = config.DefaultSpace(spec.MaxThreads)
	}
}

// Sweep measures the grid, resuming from the journal if one exists.
func Sweep(spec SweepSpec) (*SweepResult, error) {
	spec.setDefaults()
	labels := make([]string, len(spec.Space))
	for i, c := range spec.Space {
		labels[i] = c.String()
	}
	for _, name := range spec.Scenarios {
		if _, ok := Lookup(name); !ok {
			return nil, fmt.Errorf("scenario: unknown scenario %q", name)
		}
	}
	done := map[string]float64{}
	var journal io.Writer
	if spec.Journal != "" {
		var err error
		if done, err = loadJournal(spec.Journal, spec.fingerprint()); err != nil {
			return nil, fmt.Errorf("scenario: reading journal: %w", err)
		}
		fresh := len(done) == 0
		f, err := os.OpenFile(spec.Journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		journal = f
		if fresh {
			line, err := json.Marshal(sweepCell{Meta: spec.fingerprint()})
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Fprintf(f, "%s\n", line); err != nil {
				return nil, err
			}
		}
	}

	res := &SweepResult{
		Scenarios: spec.Scenarios,
		Labels:    labels,
		UM:        cf.NewMatrix(len(spec.Scenarios), len(spec.Space)),
	}
	for row, name := range spec.Scenarios {
		missing := 0
		for col := range spec.Space {
			if v, ok := done[name+"\x00"+labels[col]]; ok {
				res.UM.Data[row][col] = v
				res.Reused++
			} else {
				missing++
			}
		}
		if spec.Progress != nil {
			fmt.Fprintf(spec.Progress, "[%2d/%d] %-14s %d/%d cells to measure\n",
				row+1, len(spec.Scenarios), name, missing, len(spec.Space))
		}
		if missing == 0 {
			continue
		}
		if err := sweepRow(spec, name, row, labels, res, journal); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
	}
	return res, nil
}

// sweepRow sets the scenario up once and measures its missing cells,
// reconfiguring between columns like proteustrain's profiling loop.
func sweepRow(spec SweepSpec, name string, row int, labels []string, res *SweepResult, journal io.Writer) error {
	s, _ := Lookup(name)
	params := spec.Params[name]
	if err := s.Validate(params); err != nil {
		return err
	}
	wl, err := s.Make(params)
	if err != nil {
		return err
	}
	pool := polytm.New(spec.HeapWords, spec.MaxThreads, spec.Space[0])
	if err := wl.Setup(pool.Heap(), workloads.NewRand(spec.Seed)); err != nil {
		return fmt.Errorf("setup: %w", err)
	}

	timed := spec.Mode() == Timed
	var d *workloads.Driver
	var sd *workloads.SerialDriver
	if timed {
		d = &workloads.Driver{Workload: wl, Runner: pool, MaxThreads: spec.MaxThreads, Seed: spec.Seed}
		if err := d.Start(); err != nil {
			return err
		}
	} else {
		sd = workloads.NewSerialDriver(wl, pool, spec.MaxThreads, spec.Seed)
	}

	var last tm.Stats
	for col, cfg := range spec.Space {
		if !cf.IsMissing(res.UM.Data[row][col]) {
			continue
		}
		if err := pool.Reconfigure(cfg); err != nil {
			return err
		}
		var value float64
		if timed {
			time.Sleep(spec.Window / 4) // settle
			last = pool.SnapshotStats()
			start := time.Now()
			time.Sleep(spec.Window)
			win := pool.SnapshotStats().Sub(last)
			value = float64(win.Commits) / time.Since(start).Seconds()
		} else {
			sd.SetSlots(cfg.Threads)
			last = pool.SnapshotStats()
			sd.Run(spec.Ops)
			win := pool.SnapshotStats().Sub(last)
			value = windowKPI(win, spec.OpCost)
		}
		res.UM.Data[row][col] = value
		res.Measured++
		if journal != nil {
			line, err := json.Marshal(sweepCell{Row: name, Col: labels[col], Value: value})
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(journal, "%s\n", line); err != nil {
				return err
			}
		}
	}
	if timed {
		// Re-open the gate so every worker can observe the stop flag.
		full := pool.Config()
		full.Threads = spec.MaxThreads
		if err := pool.Reconfigure(full); err != nil {
			return err
		}
		d.Stop()
	}
	return nil
}
