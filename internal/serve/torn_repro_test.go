package serve

// Temporary review reproduction: a coordinator stalled mid-acquire whose
// undecided batch is aborted by fence recovery, then resumes, acquires
// the remaining fences, decides, and applies only the non-recovered
// parts — a torn cross-shard write reported as 200 OK.

import (
	"net/http"
	"testing"
	"time"
)

func TestReviewTornWriteAfterAcquireStallRecovery(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: 3, Workers: 2, Seed: 11,
		FenceDeadline:  60 * time.Millisecond,
		DetectInterval: 15 * time.Millisecond,
		// Arrival 1 = before first acquire; fire on arrival 2 so the
		// coordinator stalls holding shard A's fence, well past the
		// detection deadline.
		Fault: mustFault(t, "fence-acquire-stall@after=1;count=1;stall=500ms", 11),
	})
	keys := keysOnDistinctShards(t, s, 3)
	vals := []uint64{111, 222, 333}

	resp, code := s.submitCross(&request{op: opMPut, keys: keys, vals: vals})
	t.Logf("mput resp=%+v code=%d aborted=%d recovered=%d", resp, code,
		s.fenceAborted.Load(), s.fenceRecovered.Load())

	got, gcode := s.submitCross(&request{op: opMGet, keys: keys})
	if gcode != http.StatusOK {
		t.Fatalf("mget = %d %+v", gcode, got)
	}
	t.Logf("mget present=%v vals=%v", got.Present, got.Vals)

	if code == http.StatusOK {
		// The server reported success: every key must hold its value.
		for i := range keys {
			if !got.Present[i] || got.Vals[i] != vals[i] {
				t.Fatalf("TORN WRITE: mput returned 200 but key[%d]: present=%v val=%d (want %d)",
					i, got.Present[i], got.Vals[i], vals[i])
			}
		}
	} else {
		// The server reported failure: an atomic batch must be all-or-nothing.
		any, all := false, true
		for i := range keys {
			if got.Present[i] && got.Vals[i] == vals[i] {
				any = true
			} else {
				all = false
			}
		}
		if any && !all {
			t.Fatalf("TORN WRITE: mput failed (%d) but writes partially applied: present=%v vals=%v",
				code, got.Present, got.Vals)
		}
	}
}
