package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	proteustm "repro"
	"repro/internal/metrics"
)

// opKind identifies one service operation.
type opKind int

const (
	opGet opKind = iota
	opPut
	opDel
	opCAS
	opRange
	opLPush
	opRPush
	opLPop
	opRPop
	opLLen
	numOps
)

// opNames are the wire/report labels, indexed by opKind.
var opNames = [numOps]string{"get", "put", "del", "cas", "range", "lpush", "rpush", "lpop", "rpop", "llen"}

// request is one admitted operation waiting for a worker slot.
type request struct {
	op        opKind
	key, val  uint64
	old, newv uint64
	lo, hi    uint64
	enqueued  time.Time
	done      chan response
}

// response is the outcome of one executed operation.
type response struct {
	Found   bool   `json:"found,omitempty"`
	Applied bool   `json:"applied,omitempty"`
	Existed bool   `json:"existed,omitempty"`
	Val     uint64 `json:"val,omitempty"`
	Count   uint64 `json:"count,omitempty"`
	Sum     uint64 `json:"sum,omitempty"`
	Len     uint64 `json:"len,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Options configures a Server.
type Options struct {
	// Workers is the number of ProteusTM worker slots — the ceiling of
	// the tuned parallelism degree (default 8).
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// HTTP 429 instead of stalling (default 1024).
	QueueDepth int
	// AutoTune starts the RecTM adapter thread (monitor → explore →
	// install) over the live traffic.
	AutoTune bool
	// SamplePeriod is the monitor's KPI sampling period (default 100 ms).
	SamplePeriod time.Duration
	// Seed drives the tuning machinery.
	Seed uint64
	// HeapWords sizes the transactional heap (default 1<<22).
	HeapWords int
	// Preload inserts keys 0..Preload-1 (value = key) before serving, so
	// read-heavy traffic has something to hit (default 0).
	Preload int
	// MaxScanSpan clamps /kv/range spans (default 4096).
	MaxScanSpan uint64
	// LatencyWindow is the size of the sliding latency reservoir behind
	// /statusz percentiles (default 8192).
	LatencyWindow int
	// TimelineTail bounds the number of timeline points /statusz returns
	// (default 64, newest last; 0 keeps the default).
	TimelineTail int
	// Logf, when set, receives operational log lines (reconfigurations,
	// drains, shutdown).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.HeapWords <= 0 {
		o.HeapWords = 1 << 22
	}
	if o.MaxScanSpan == 0 {
		o.MaxScanSpan = 4096
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 8192
	}
	if o.TimelineTail <= 0 {
		o.TimelineTail = 64
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Server is the proteusd serving layer: an http.Handler whose data
// operations execute as ProteusTM atomic blocks. Create with New, stop
// with Close.
type Server struct {
	sys   *proteustm.System
	store *Store
	opts  Options
	mux   *http.ServeMux
	start time.Time

	queue chan *request
	stop  chan struct{}
	wg    sync.WaitGroup
	// inflight counts submissions between admission and reply; Close
	// waits on it after setting closed, so no submitter can be stranded
	// between the closed-check and its enqueue when the workers stop.
	inflight sync.WaitGroup

	// drainMu implements the graceful-drain protocol: every operation
	// executes under RLock; the reconfigure hook takes the write lock
	// before the pool gates any thread, so a shrink waits for in-flight
	// operations and no queued request is ever handed to a slot that is
	// about to park. active mirrors the installed parallelism degree.
	drainMu sync.RWMutex
	active  atomic.Int64

	closed    atomic.Bool
	served    [numOps]atomic.Uint64
	rejected  atomic.Uint64
	requeued  atomic.Uint64
	hookFires atomic.Uint64
	drains    atomic.Uint64
	lat       *metrics.Reservoir
}

// New opens a ProteusTM system, builds the store (optionally preloading
// it) and starts one queue worker per slot. The returned Server is ready
// to serve; wire it into an http.Server as its Handler.
func New(opts Options) (*Server, error) {
	s, err := newServer(opts)
	if err != nil {
		return nil, err
	}
	s.startWorkers()
	return s, nil
}

// newServer builds a Server without starting its queue workers (tests use
// the split to exercise admission-queue overflow deterministically).
func newServer(opts Options) (*Server, error) {
	opts.setDefaults()
	sysOpts := []proteustm.Option{
		proteustm.WithWorkers(opts.Workers),
		proteustm.WithHeapWords(opts.HeapWords),
		proteustm.WithSeed(opts.Seed),
	}
	if opts.SamplePeriod > 0 {
		sysOpts = append(sysOpts, proteustm.WithSamplePeriod(opts.SamplePeriod))
	}
	if opts.AutoTune {
		sysOpts = append(sysOpts, proteustm.WithAutoTuning())
	}
	sys, err := proteustm.Open(sysOpts...)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(sys.Heap())
	if err != nil {
		sys.Close()
		return nil, err
	}
	s := &Server{
		sys:   sys,
		store: store,
		opts:  opts,
		start: time.Now(),
		queue: make(chan *request, opts.QueueDepth),
		stop:  make(chan struct{}),
		lat:   metrics.NewReservoir(opts.LatencyWindow),
	}
	s.active.Store(int64(sys.CurrentConfig().Threads))
	sys.OnReconfigure(s.reconfigureHook)
	if err := s.preload(opts.Preload); err != nil {
		sys.Close()
		return nil, err
	}
	s.mux = s.routes()
	return s, nil
}

// startWorkers launches one queue worker per slot.
func (s *Server) startWorkers() {
	for id := 0; id < s.opts.Workers; id++ {
		s.wg.Add(1)
		go s.worker(id)
	}
}

// System exposes the underlying ProteusTM instance (for status and tests).
func (s *Server) System() *proteustm.System { return s.sys }

// preload inserts n keys in batched setup transactions on slot 0 (always
// an active slot: the parallelism degree is at least 1).
func (s *Server) preload(n int) error {
	if n <= 0 {
		return nil
	}
	w, err := s.sys.Worker(0)
	if err != nil {
		return err
	}
	const batch = 64
	for base := 0; base < n; base += batch {
		end := base + batch
		if end > n {
			end = n
		}
		lo, hi := uint64(base), uint64(end)
		w.Atomic(func(tx proteustm.Txn) {
			for k := lo; k < hi; k++ {
				s.store.Put(tx, 0, k, k)
			}
		})
	}
	return nil
}

// reconfigureHook runs at the start of every pool reconfiguration, before
// any thread gating (see proteustm.System.OnReconfigure). On a shrink it
// waits for in-flight operations to finish and publishes the smaller
// active set, so workers on soon-to-be-parked slots requeue rather than
// execute; growth publishes immediately.
func (s *Server) reconfigureHook(old, newCfg proteustm.Config) {
	s.hookFires.Add(1)
	if int64(newCfg.Threads) < s.active.Load() {
		s.drainMu.Lock()
		s.active.Store(int64(newCfg.Threads))
		s.drainMu.Unlock()
		s.drains.Add(1)
		s.opts.Logf("serve: reconfigure %s -> %s (drained in-flight ops)", old, newCfg)
		return
	}
	s.active.Store(int64(newCfg.Threads))
	if old != newCfg {
		s.opts.Logf("serve: reconfigure %s -> %s", old, newCfg)
	}
}

// worker is the per-slot request executor. A worker only consumes from
// the admission queue while its slot is inside the installed parallelism
// degree; slot 0 is always active (Threads >= 1), so the service drains
// even at minimum parallelism.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	w, err := s.sys.Worker(id)
	if err != nil {
		panic(fmt.Sprintf("serve: worker %d: %v", id, err))
	}
	idle := time.NewTicker(2 * time.Millisecond)
	defer idle.Stop()
	for {
		if int64(id) >= s.active.Load() {
			select {
			case <-s.stop:
				return
			case <-idle.C:
			}
			continue
		}
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			s.drainMu.RLock()
			if int64(id) >= s.active.Load() {
				s.drainMu.RUnlock()
				s.requeue(req)
				continue
			}
			resp := s.execute(w, id, req)
			s.drainMu.RUnlock()
			s.served[req.op].Add(1)
			req.done <- resp
		}
	}
}

// requeue hands a request back after a shrink beat this worker to it.
func (s *Server) requeue(req *request) {
	s.requeued.Add(1)
	select {
	case s.queue <- req:
	case <-s.stop:
		req.done <- response{Err: "server shutting down"}
	}
}

// execute runs one operation as a single atomic block on worker w.
func (s *Server) execute(w *proteustm.Worker, slot int, req *request) response {
	var resp response
	switch req.op {
	case opGet:
		w.Atomic(func(tx proteustm.Txn) { resp.Val, resp.Found = s.store.Get(tx, req.key) })
	case opPut:
		w.Atomic(func(tx proteustm.Txn) { resp.Existed = s.store.Put(tx, slot, req.key, req.val) })
		resp.Applied = true
	case opDel:
		w.Atomic(func(tx proteustm.Txn) { resp.Applied = s.store.Delete(tx, slot, req.key) })
	case opCAS:
		w.Atomic(func(tx proteustm.Txn) { resp.Val, resp.Applied = s.store.CAS(tx, slot, req.key, req.old, req.newv) })
	case opRange:
		w.Atomic(func(tx proteustm.Txn) { resp.Count, resp.Sum = s.store.Range(tx, req.lo, req.hi) })
	case opLPush:
		w.Atomic(func(tx proteustm.Txn) { s.store.PushLeft(tx, slot, req.val) })
		resp.Applied = true
	case opRPush:
		w.Atomic(func(tx proteustm.Txn) { s.store.PushRight(tx, slot, req.val) })
		resp.Applied = true
	case opLPop:
		w.Atomic(func(tx proteustm.Txn) { resp.Val, resp.Found = s.store.PopLeft(tx, slot) })
	case opRPop:
		w.Atomic(func(tx proteustm.Txn) { resp.Val, resp.Found = s.store.PopRight(tx, slot) })
	case opLLen:
		w.Atomic(func(tx proteustm.Txn) { resp.Len = s.store.Len(tx) })
	}
	return resp
}

// submit admits one request: a full queue rejects immediately (the 429
// path) rather than stalling the client. The inflight registration
// precedes the closed-check, so Close cannot observe an empty system
// while a submitter is between its check and its enqueue.
func (s *Server) submit(req *request) (response, int) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return response{Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	req.enqueued = time.Now()
	req.done = make(chan response, 1)
	select {
	case s.queue <- req:
	default:
		s.rejected.Add(1)
		return response{Err: "admission queue full"}, http.StatusTooManyRequests
	}
	resp := <-req.done
	s.lat.Observe(float64(time.Since(req.enqueued).Nanoseconds()) / 1e6)
	if resp.Err != "" {
		return resp, http.StatusServiceUnavailable
	}
	return resp, http.StatusOK
}

// Close drains the admission queue, stops the workers and shuts the
// ProteusTM system down. In-flight and queued requests all complete;
// new submissions are rejected with 503.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Every submission that passed the closed-check has registered in
	// inflight, and the workers are still running, so waiting here both
	// drains the queue and guarantees every admitted request got its
	// reply before the workers stop.
	s.inflight.Wait()
	close(s.stop)
	s.wg.Wait()
	s.sys.OnReconfigure(nil)
	s.opts.Logf("serve: drained and stopped (served=%d rejected=%d)", s.totalServed(), s.rejected.Load())
	return s.sys.Close()
}

func (s *Server) totalServed() uint64 {
	var total uint64
	for i := range s.served {
		total += s.served[i].Load()
	}
	return total
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routes builds the endpoint mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/kv/get", s.opHandler(opGet, "key"))
	mux.HandleFunc("/kv/put", s.opHandler(opPut, "key", "val"))
	mux.HandleFunc("/kv/del", s.opHandler(opDel, "key"))
	mux.HandleFunc("/kv/cas", s.opHandler(opCAS, "key", "old", "new"))
	mux.HandleFunc("/kv/range", s.opHandler(opRange, "lo", "hi"))
	mux.HandleFunc("/list/lpush", s.opHandler(opLPush, "val"))
	mux.HandleFunc("/list/rpush", s.opHandler(opRPush, "val"))
	mux.HandleFunc("/list/lpop", s.opHandler(opLPop))
	mux.HandleFunc("/list/rpop", s.opHandler(opRPop))
	mux.HandleFunc("/list/len", s.opHandler(opLLen))
	return mux
}

// opHandler builds the handler for one operation, parsing the named
// uint64 query parameters.
func (s *Server) opHandler(op opKind, params ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req := &request{op: op}
		for _, name := range params {
			raw := r.URL.Query().Get(name)
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter %q: want uint64, got %q", name, raw)})
				return
			}
			switch name {
			case "key":
				req.key = v
			case "val":
				req.val = v
			case "old":
				req.old = v
			case "new":
				req.newv = v
			case "lo":
				req.lo = v
			case "hi":
				req.hi = v
			}
		}
		if op == opRange {
			if req.hi < req.lo {
				writeJSON(w, http.StatusBadRequest, response{Err: "range: hi < lo"})
				return
			}
			if req.hi-req.lo > s.opts.MaxScanSpan {
				req.hi = req.lo + s.opts.MaxScanSpan
			}
		}
		resp, code := s.submit(req)
		writeJSON(w, code, resp)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort write to client
}
