package scenario

import (
	"fmt"

	"repro/internal/workloads"
)

// Interference family (internal/workloads/interference.go): a TM workload
// running next to resource antagonists — the Fig. 9 experiment, where an
// environment change is indistinguishable from a workload change for the
// CUSUM monitor. Antagonists steal real machine resources, so their effect
// shows only in timed mode; deterministic runs record the antagonist
// parameters but measure in virtual time, which is immune by construction.

var (
	infKind      = Param{Name: "kind", Desc: "antagonist resource: cpu, memory or alloc", Kind: String, Default: "cpu"}
	infStressors = Param{Name: "stressors", Desc: "antagonist goroutines", Kind: Int, Default: "2"}
	infKeyRange  = Param{Name: "keyrange", Desc: "key range of the victim rbtree", Kind: Int, Default: "16384"}
	infUpdate    = Param{Name: "update", Desc: "update ratio of the victim rbtree", Kind: Float, Default: "0.2"}
)

func init() {
	Register(Scenario{
		Name:        "interference",
		Family:      "interference",
		Description: "rbtree sharing the machine with resource antagonists (Fig. 9)",
		Params:      []Param{infKind, infStressors, infKeyRange, infUpdate},
		Make: func(v Values) (workloads.Workload, error) {
			if _, err := parseInterferenceKind(v.Str(infKind)); err != nil {
				return nil, err
			}
			return &workloads.RBTree{
				KeyRange:    v.Int(infKeyRange),
				UpdateRatio: v.Float(infUpdate),
			}, nil
		},
		Antagonist: func(v Values) *workloads.Interference {
			kind, err := parseInterferenceKind(v.Str(infKind))
			if err != nil {
				kind = workloads.StressCPU
			}
			return &workloads.Interference{Kind: kind, Workers: v.Int(infStressors)}
		},
	})
}

func parseInterferenceKind(s string) (workloads.InterferenceKind, error) {
	switch s {
	case "", "cpu":
		return workloads.StressCPU, nil
	case "memory":
		return workloads.StressMemory, nil
	case "alloc":
		return workloads.StressAlloc, nil
	}
	return 0, fmt.Errorf("interference: unknown kind %q (want cpu, memory or alloc)", s)
}
