// Cross-shard commit: the two-phase protocol that keeps multi-key
// operations (mput, mget, range) atomic when their keys live on different
// ProteusTM systems.
//
// Phase 1 (acquire): the coordinator claims each participating shard's
// fence word with a CAS-with-fence transaction, in ascending shard-index
// order — the global lock order that keeps concurrent coordinators
// deadlock-free. Any acquisition failure aborts the whole attempt: every
// fence taken so far is released ("abort-all on any shard abort") and the
// coordinator backs off and retries.
//
// Phase 2 (apply+release): with every fence held, the coordinator applies
// each shard's sub-operation and releases that shard's fence in a single
// transaction, so local operations observe the writes and the release
// atomically. Local operations always read the fence inside their own
// transaction and requeue while it is held, which is what makes the span
// between the first and last apply unobservable — the protocol's
// linearization point sits between the last acquire and the first apply.
//
// Control steps travel on each shard's priority lane and execute on the
// shard's own worker slots, so they obey the same graceful-drain protocol
// as data operations. See docs/sharding.md for the state diagram.
package serve

import (
	"net/http"
	"time"

	proteustm "repro"
)

// subBatch is one shard's slice of a cross-shard batch: the positions
// into the request's keys/vals arrays this shard owns.
type subBatch struct {
	shard int
	idx   []int
}

// splitBatch groups the request's keys by owning shard, in ascending
// shard order (the fence-acquisition order).
func (s *Server) splitBatch(keys []uint64) []subBatch {
	parts := s.part.Participants(keys)
	pos := make(map[int]int, len(parts))
	out := make([]subBatch, len(parts))
	for i, p := range parts {
		out[i] = subBatch{shard: p}
		pos[p] = i
	}
	for i, k := range keys {
		j := pos[s.part.Owner(k)]
		out[j].idx = append(out[j].idx, i)
	}
	return out
}

// submitCross admits one multi-key operation. Single-participant
// operations take the fast path: one ordinary admission-queue request on
// the owning shard, atomic by construction. Everything else runs the
// two-phase commit protocol above.
func (s *Server) submitCross(req *request) (response, int) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return response{Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	var batches []subBatch
	if req.op == opRange {
		// Fence only the shards whose key spans intersect the scan. The
		// partitioner's owner set is exact for the range partitioner and
		// for narrow hashed scans, conservative (every shard) for wide
		// hashed ones — never fewer than the shards that could hold a key
		// in [lo, hi], which is what keeps the snapshot atomic.
		for _, p := range s.part.OwnersInRange(req.lo, req.hi) {
			batches = append(batches, subBatch{shard: p})
		}
		if len(batches) == 1 {
			s.rangeLocal.Add(1)
		} else {
			s.rangeCross.Add(1)
			s.rangeFencedShards.Add(uint64(len(batches)))
		}
	} else {
		batches = s.splitBatch(req.keys)
	}
	if len(batches) == 1 {
		// Fast path: the whole operation lives on one shard; the shard's
		// own transaction makes it atomic, and the fence check inside
		// execute keeps it ordered against concurrent cross-shard commits.
		return s.submit(s.shards[batches[0].shard], req)
	}

	s.armDeadline(req)
	accepted := req.accepted
	// Coordinator slots are bounded admission, same contract as the data
	// queues: overflow rejects immediately (429), never stalls a handler.
	select {
	case s.crossSem <- struct{}{}:
	default:
		s.rejected.Add(1)
		return response{Err: "cross-shard coordinator slots full"}, http.StatusTooManyRequests
	}
	defer func() { <-s.crossSem }()
	token := s.nextToken.Add(1)

	for attempt := 0; attempt < s.opts.CrossRetries; attempt++ {
		// Deadline/cancellation gate, checked only between attempts: a
		// coordinator never abandons a protocol round mid-flight (that
		// would strand fences), but an expired or client-abandoned batch
		// is dropped before it claims any fence.
		if req.expired(time.Now()) {
			s.shedDeadline.Add(1)
			return response{Err: "deadline exceeded", code: http.StatusGatewayTimeout}, http.StatusGatewayTimeout
		}
		acquired := make([]subBatch, 0, len(batches))
		ok := true
		for _, b := range batches {
			r := s.ctlAcquire(s.shards[b.shard], token)
			if r.Err != "" {
				s.releaseAll(acquired)
				return r, http.StatusServiceUnavailable
			}
			if !r.Applied {
				ok = false
				break
			}
			acquired = append(acquired, b)
		}
		if !ok {
			// Abort-all: another coordinator (or an unlucky interleaving)
			// holds a fence we need. Release everything, back off, retry.
			s.releaseAll(acquired)
			s.crossAborts.Add(1)
			time.Sleep(time.Duration(attempt%8+1) * 50 * time.Microsecond)
			continue
		}
		resp := s.applyAll(batches, req)
		if resp.Err != "" {
			return resp, http.StatusServiceUnavailable
		}
		s.crossOps.Add(1)
		s.served[req.op].Add(1)
		s.lat.Observe(msBetween(accepted, time.Now()))
		return resp, http.StatusOK
	}
	return response{Err: "cross-shard commit: fence contention exhausted retries"}, http.StatusServiceUnavailable
}

// ctl submits one control step to shard ss's priority lane and waits for
// its result. Control steps skip the closed-check on purpose: Close waits
// for in-flight coordinators (registered in inflight) before stopping the
// workers, so a coordinator must be able to finish its protocol — fence
// releases included — after shutdown begins.
func (s *Server) ctl(ss *shardState, fn func(w *proteustm.Worker, slot int) response) response {
	req := &request{ctl: fn, done: make(chan response, 1)}
	select {
	case ss.prio <- req:
	case <-ss.stop:
		return response{Err: "server shutting down"}
	}
	return <-req.done
}

// ctlAcquire runs the CAS-with-fence acquisition on one shard.
func (s *Server) ctlAcquire(ss *shardState, token uint64) response {
	return s.ctl(ss, func(w *proteustm.Worker, _ int) response {
		var got bool
		w.Atomic(func(tx proteustm.Txn) {
			got = ss.store.FenceAcquire(tx, token)
		})
		return response{Applied: got}
	})
}

// releaseAll frees the fences of every acquired shard (abort path; the
// commit path releases inside applyAll's per-shard transactions).
func (s *Server) releaseAll(acquired []subBatch) {
	for _, b := range acquired {
		ss := s.shards[b.shard]
		s.ctl(ss, func(w *proteustm.Worker, _ int) response {
			w.Atomic(func(tx proteustm.Txn) { ss.store.FenceRelease(tx) })
			return response{}
		})
	}
}

// applyAll runs phase 2: each shard applies its slice of the operation
// and releases its fence in one transaction. With every fence held no
// local operation can observe the store between two shards' applies, so
// the batch is atomic even though the applies run one shard at a time.
//
// A control-step failure here is only reachable during process shutdown
// (the lane rejects steps once the shard's stop channel closes, and
// Close waits for in-flight coordinators before closing it). Even then
// the coordinator must not strand fences: the remaining participants'
// fences are released best-effort before the error propagates, so a
// shard can never be wedged for writes by a dead batch.
func (s *Server) applyAll(batches []subBatch, req *request) response {
	var out response
	fail := func(done int, r response) response {
		s.releaseAll(batches[done+1:])
		return r
	}
	switch req.op {
	case opMPut:
		for n, b := range batches {
			ss, idx := s.shards[b.shard], b.idx
			r := s.ctl(ss, func(w *proteustm.Worker, slot int) response {
				w.Atomic(func(tx proteustm.Txn) {
					for _, i := range idx {
						ss.store.Put(tx, slot, req.keys[i], req.vals[i])
					}
					ss.store.FenceRelease(tx)
				})
				return response{Applied: true}
			})
			if r.Err != "" {
				return fail(n, r)
			}
		}
		out.Applied = true
	case opMGet:
		out.Vals = make([]uint64, len(req.keys))
		out.Present = make([]bool, len(req.keys))
		for n, b := range batches {
			ss, idx := s.shards[b.shard], b.idx
			r := s.ctl(ss, func(w *proteustm.Worker, _ int) response {
				vals := make([]uint64, len(idx))
				present := make([]bool, len(idx))
				w.Atomic(func(tx proteustm.Txn) {
					for j, i := range idx {
						vals[j], present[j] = ss.store.Get(tx, req.keys[i])
					}
					ss.store.FenceRelease(tx)
				})
				return response{Vals: vals, Present: present}
			})
			if r.Err != "" {
				return fail(n, r)
			}
			for j, i := range idx {
				out.Vals[i], out.Present[i] = r.Vals[j], r.Present[j]
			}
		}
	case opRange:
		for n, b := range batches {
			ss := s.shards[b.shard]
			r := s.ctl(ss, func(w *proteustm.Worker, _ int) response {
				var count, sum uint64
				w.Atomic(func(tx proteustm.Txn) {
					count, sum = ss.store.Range(tx, req.lo, req.hi)
					ss.store.FenceRelease(tx)
				})
				return response{Count: count, Sum: sum}
			})
			if r.Err != "" {
				return fail(n, r)
			}
			out.Count += r.Count
			out.Sum += r.Sum
		}
	}
	return out
}
