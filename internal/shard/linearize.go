package shard

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind identifies one key-value operation in a recorded history.
type OpKind uint8

// The operation kinds the checker models — the sharded store's committed
// surface: point ops plus the cross-shard batch ops.
const (
	OpGet OpKind = iota
	OpPut
	OpDel
	OpCAS
	OpMPut
	OpMGet
	OpRange
)

// String names the kind for failure reports.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpCAS:
		return "cas"
	case OpMPut:
		return "mput"
	case OpMGet:
		return "mget"
	case OpRange:
		return "range"
	}
	return "?"
}

// Op is one completed operation of a concurrent history: its real-time
// invocation/response window plus its arguments and recorded results.
//
//	get  k          → Vals[0], Oks[0] (found)
//	put  k, Args[0] → Oks[0] (key existed before)
//	del  k          → Oks[0] (key existed / delete applied)
//	cas  k, Args[0]=old, Args[1]=new → Vals[0] (observed), Oks[0] (applied)
//	mput Keys, Args (values, aligned)  → no observable result
//	mget Keys       → Vals, Oks (present), aligned with Keys
//	range Keys[0]=lo, Keys[1]=hi → Vals[0] (count), Vals[1] (sum)
type Op struct {
	// Invoke and Return are the operation's invocation and response
	// timestamps (any monotonic unit; only their order matters).
	Invoke, Return int64
	// Kind is the operation kind.
	Kind OpKind
	// Keys are the operated keys (single-element for point ops).
	Keys []uint64
	// Args are the input values (see the table above).
	Args []uint64
	// Vals are the recorded output values.
	Vals []uint64
	// Oks are the recorded boolean outcomes.
	Oks []bool
}

// kvState is the sequential witness state: the key-value map a candidate
// linearization has produced so far. Absent key = not found.
type kvState map[uint64]uint64

// digest canonically encodes (chosen-set, state) for the memo table.
func (st kvState) digest(mask uint64) string {
	keys := make([]uint64, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%x:", mask)
	for _, k := range keys {
		fmt.Fprintf(&b, "%x=%x;", k, st[k])
	}
	return b.String()
}

// step applies op to st if the op's recorded results are consistent with
// st, returning an undo list ((key, hadValue, oldValue) triples) and
// whether the op is admissible in this state.
func step(st kvState, op *Op) (undo []kvUndo, ok bool) {
	record := func(k uint64) {
		v, had := st[k]
		undo = append(undo, kvUndo{k: k, had: had, v: v})
	}
	switch op.Kind {
	case OpGet:
		v, found := st[op.Keys[0]]
		return nil, found == op.Oks[0] && (!found || v == op.Vals[0])
	case OpPut:
		k := op.Keys[0]
		_, existed := st[k]
		if existed != op.Oks[0] {
			return nil, false
		}
		record(k)
		st[k] = op.Args[0]
		return undo, true
	case OpDel:
		k := op.Keys[0]
		_, existed := st[k]
		if existed != op.Oks[0] {
			return nil, false
		}
		if existed {
			record(k)
			delete(st, k)
		}
		return undo, true
	case OpCAS:
		k := op.Keys[0]
		cur, found := st[k]
		applied := found && cur == op.Args[0]
		if applied != op.Oks[0] {
			return nil, false
		}
		// The store reports the value it observed: the new value when the
		// swap applied, the current value (zero if absent) otherwise.
		want := cur
		if applied {
			want = op.Args[1]
		} else if !found {
			want = 0
		}
		if op.Vals[0] != want {
			return nil, false
		}
		if applied {
			record(k)
			st[k] = op.Args[1]
		}
		return undo, true
	case OpMPut:
		for i, k := range op.Keys {
			record(k)
			st[k] = op.Args[i]
		}
		return undo, true
	case OpMGet:
		for i, k := range op.Keys {
			v, found := st[k]
			if found != op.Oks[i] || (found && v != op.Vals[i]) {
				return nil, false
			}
		}
		return nil, true
	case OpRange:
		// Ordered snapshot semantics: the recorded (count, sum) must be
		// what a scan of this exact state over [lo, hi] produces — a scan
		// that observed two different states (one shard's keys before a
		// batch, another's after) has no admissible position.
		lo, hi := op.Keys[0], op.Keys[1]
		var count, sum uint64
		for k, v := range st {
			if k >= lo && k <= hi {
				count++
				sum += v
			}
		}
		return nil, count == op.Vals[0] && sum == op.Vals[1]
	}
	return nil, false
}

type kvUndo struct {
	k   uint64
	had bool
	v   uint64
}

func unstep(st kvState, undo []kvUndo) {
	// Reverse order restores earlier snapshots last, which is what makes
	// mput undo correct when a batch writes the same key twice.
	for i := len(undo) - 1; i >= 0; i-- {
		u := undo[i]
		if u.had {
			st[u.k] = u.v
		} else {
			delete(st, u.k)
		}
	}
}

// Linearize exhaustively searches for a sequential witness of history: a
// total order of the operations that (a) respects real-time order (an op
// that returned before another was invoked comes first) and (b) is legal
// for a key-value store that starts empty. It returns a witness order (as
// indexes into history) and whether one exists.
//
// The search is Wing–Gong style DFS with memoization on (chosen-set,
// state), exponential in the worst case — intended for the small
// histories (tens of operations) the correctness battery records, not for
// production checking.
func Linearize(history []Op) ([]int, bool) {
	n := len(history)
	if n == 0 {
		return nil, true
	}
	if n > 64 {
		// The chosen-set is a uint64 bitmask; the battery never records
		// histories this large.
		panic("shard: Linearize supports at most 64 operations")
	}
	st := kvState{}
	order := make([]int, 0, n)
	var mask uint64
	failed := map[string]bool{}

	var dfs func() bool
	dfs = func() bool {
		if len(order) == n {
			return true
		}
		key := st.digest(mask)
		if failed[key] {
			return false
		}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			// i is schedulable only if every operation that completed
			// before i was invoked has already been placed.
			ok := true
			for j := 0; j < n; j++ {
				if mask&(1<<uint(j)) == 0 && j != i && history[j].Return < history[i].Invoke {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			undo, legal := step(st, &history[i])
			if !legal {
				unstep(st, undo)
				continue
			}
			mask |= 1 << uint(i)
			order = append(order, i)
			if dfs() {
				return true
			}
			order = order[:len(order)-1]
			mask &^= 1 << uint(i)
			unstep(st, undo)
		}
		failed[key] = true
		return false
	}
	if dfs() {
		return order, true
	}
	return nil, false
}
