package scenario

import (
	"fmt"

	"repro/internal/workloads"
)

// OLTP/service families (internal/workloads/tpcc.go, memcached.go):
// TPC-C-lite's five-transaction mix and the memcached-style cache whose
// optimum sits at high thread counts.

var (
	tpccWarehouses = Param{Name: "warehouses", Desc: "warehouses", Kind: Int, Default: "4"}
	tpccDistricts  = Param{Name: "districts", Desc: "districts per warehouse", Kind: Int, Default: "10"}
	tpccCustomers  = Param{Name: "customers", Desc: "customers per district", Kind: Int, Default: "256"}
	tpccItems      = Param{Name: "items", Desc: "item/stock rows", Kind: Int, Default: "8192"}
	tpccMix        = Param{Name: "mix", Desc: "transaction mix: standard or readheavy", Kind: String, Default: "standard"}

	mcBuckets  = Param{Name: "buckets", Desc: "hash-table width", Kind: Int, Default: "8192"}
	mcKeyRange = Param{Name: "keyrange", Desc: "key range of the cache", Kind: Int, Default: "32768"}
	mcGet      = Param{Name: "get", Desc: "fraction of get operations", Kind: Float, Default: "0.9"}
	mcValue    = Param{Name: "valuewords", Desc: "stored value size in words", Kind: Int, Default: "4"}
)

func init() {
	Register(Scenario{
		Name:        "tpcc",
		Family:      "tpcc",
		Description: "TPC-C-lite: five OLTP transaction types over warehouse tables",
		Params:      []Param{tpccWarehouses, tpccDistricts, tpccCustomers, tpccItems, tpccMix},
		Make: func(v Values) (workloads.Workload, error) {
			w := &workloads.TPCC{
				Warehouses: v.Int(tpccWarehouses),
				Districts:  v.Int(tpccDistricts),
				Customers:  v.Int(tpccCustomers),
				Items:      v.Int(tpccItems),
			}
			switch v.Str(tpccMix) {
			case "", "standard":
				// Zero value selects TPC-C's 45/43/4/4/4 split.
			case "readheavy":
				w.Mix = [5]int{10, 20, 60, 64, 100}
			default:
				return nil, fmt.Errorf("tpcc: unknown mix %q (want standard or readheavy)", v.Str(tpccMix))
			}
			return w, nil
		},
	})
	Register(Scenario{
		Name:        "memcached",
		Family:      "memcached",
		Description: "memcached-lite: get-dominated cache with LRU bookkeeping",
		Params:      []Param{mcBuckets, mcKeyRange, mcGet, mcValue},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.Memcached{
				Buckets:    v.Int(mcBuckets),
				KeyRange:   v.Int(mcKeyRange),
				GetRatio:   v.Float(mcGet),
				ValueWords: v.Int(mcValue),
			}, nil
		},
	})
}
