package tm_test

import (
	"testing"
	"testing/quick"

	"repro/internal/tm"
)

// TestWriteSetSemantics property-tests the hybrid linear/map write set
// against a reference map, across the small→indexed transition.
func TestWriteSetSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		var ws tm.WriteSet
		ws.Reset()
		ref := map[tm.Addr]uint64{}
		for i, op := range ops {
			a := tm.Addr(op % 64)
			v := uint64(i)
			ws.Put(a, v)
			ref[a] = v
		}
		if ws.Len() != len(ref) {
			return false
		}
		for a, want := range ref {
			got, ok := ws.Get(a)
			if !ok || got != want {
				return false
			}
		}
		if _, ok := ws.Get(tm.Addr(9999)); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWriteSetReset verifies reuse after reset, including the indexed mode.
func TestWriteSetReset(t *testing.T) {
	var ws tm.WriteSet
	for i := 0; i < 100; i++ { // force map index
		ws.Put(tm.Addr(i), uint64(i))
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatalf("Len after reset = %d", ws.Len())
	}
	if _, ok := ws.Get(5); ok {
		t.Error("stale entry visible after reset")
	}
	ws.Put(7, 70)
	if v, ok := ws.Get(7); !ok || v != 70 {
		t.Error("write set broken after reset")
	}
}

// TestHeapAlloc checks bump allocation, exhaustion, and the reserved null
// word.
func TestHeapAlloc(t *testing.T) {
	h := tm.NewHeap(64, 2)
	a, err := h.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if a == tm.NilAddr {
		t.Error("first allocation returned the nil address")
	}
	b, err := h.Alloc(10)
	if err != nil || b < a+10 {
		t.Errorf("allocations overlap: %d, %d", a, b)
	}
	if _, err := h.Alloc(1000); err == nil {
		t.Error("expected exhaustion error")
	}
	if _, err := h.Alloc(0); err == nil {
		t.Error("expected error for non-positive size")
	}
}

// TestHeapReset verifies a reset heap behaves like a fresh one.
func TestHeapReset(t *testing.T) {
	h := tm.NewHeap(128, 2)
	a := h.MustAlloc(4)
	h.StoreWord(a, 42)
	h.ClockAdd(7)
	h.Reset()
	if h.Clock() != 0 {
		t.Error("clock not reset")
	}
	b := h.MustAlloc(4)
	if h.LoadWord(b) != 0 {
		t.Error("reset heap has dirty words")
	}
	if b != a {
		t.Errorf("allocation cursor not rewound: %d vs %d", b, a)
	}
}

// TestOrecEncoding round-trips the lock-word encoding.
func TestOrecEncoding(t *testing.T) {
	f := func(id uint8, version uint32) bool {
		locked := tm.OrecLockedBy(int(id))
		owner, isLocked := tm.OrecLocked(locked)
		if !isLocked || owner != int(id) {
			return false
		}
		unlocked := tm.OrecUnlocked(uint64(version))
		if _, l := tm.OrecLocked(unlocked); l {
			return false
		}
		return tm.OrecVersion(unlocked) == uint64(version)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStripeMapping: consecutive words within a 2^StripeShift block share a
// stripe; block neighbours get distinct stripes (within table capacity).
func TestStripeMapping(t *testing.T) {
	h := tm.NewHeap(1<<12, 1)
	if h.Stripe(0) != h.Stripe((1<<tm.StripeShift)-1) {
		t.Error("words in the same line map to different stripes")
	}
	if h.Stripe(0) == h.Stripe(1<<tm.StripeShift) {
		t.Error("adjacent lines share a stripe in an undersubscribed table")
	}
}

// TestStatsSnapshot checks windowed accounting.
func TestStatsSnapshot(t *testing.T) {
	var s tm.Stats
	s.IncCommit()
	s.IncCommit()
	s.Record(tm.AbortConflict)
	s.Record(tm.AbortCapacity)
	snap := s.Snapshot()
	if snap.Commits != 2 || snap.Aborts != 2 || snap.ConflictAborts != 1 || snap.CapacityAborts != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	s.IncCommit()
	win := s.Snapshot().Sub(snap)
	if win.Commits != 1 || win.Aborts != 0 {
		t.Errorf("window = %+v", win)
	}
}

// TestAbortCodeStrings covers the stringer.
func TestAbortCodeStrings(t *testing.T) {
	for code, want := range map[tm.AbortCode]string{
		tm.AbortNone:     "none",
		tm.AbortConflict: "conflict",
		tm.AbortCapacity: "capacity",
		tm.AbortExplicit: "explicit",
		tm.AbortFallback: "fallback",
	} {
		if got := code.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", code, got, want)
		}
	}
}

// TestRandDistinctPerCtx: per-thread RNGs must not be correlated.
func TestRandDistinctPerCtx(t *testing.T) {
	h := tm.NewHeap(64, 4)
	a := tm.NewCtx(0, h)
	b := tm.NewCtx(1, h)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Rand() == b.Rand() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws from distinct contexts", same)
	}
}
