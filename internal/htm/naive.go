package htm

import (
	"sync/atomic"

	"repro/internal/tm"
)

// NaiveHTM wraps HTM with the overhead of the *fully instrumented* code
// path: the paper's GCC integration generates two versions of each atomic
// block and runs the non-instrumented one under HTM (§4, "dual path
// optimization"); NaiveHTM models what happens without that optimization —
// every read and write pays STM-style software bookkeeping that hardware TM
// does not need. It exists only for the "HTM-naive" column of Table 4.
type NaiveHTM struct {
	HTM
}

// Name implements tm.Algorithm.
func (n *NaiveHTM) Name() string { return "htm-naive" }

// naiveTxn is NaiveHTM's concrete Txn binding. It must exist: without it,
// method promotion would hand callers the embedded (*HTM).BindTxn, whose
// binding dispatches straight into HTM.Load/Store and silently skips the
// naive instrumentation this type exists to measure.
type naiveTxn struct {
	n *NaiveHTM
	c *tm.Ctx
}

func (t *naiveTxn) Load(a tm.Addr) uint64     { return t.n.Load(t.c, a) }
func (t *naiveTxn) Store(a tm.Addr, v uint64) { t.n.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder, overriding the promoted HTM binding.
func (n *NaiveHTM) BindTxn(c *tm.Ctx) tm.Txn { return &naiveTxn{n, c} }

// Load implements tm.Algorithm: the useless instrumentation logs the read
// into the value read set and maintains a running checksum, the work a
// software barrier would do.
func (n *NaiveHTM) Load(c *tm.Ctx, a tm.Addr) uint64 {
	v := n.HTM.Load(c, a)
	c.VRS.Add(a, v)
	instrumentationWork(a, v)
	return v
}

// Store implements tm.Algorithm: the redundant write barrier double-logs
// the write.
func (n *NaiveHTM) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	c.RS.Add(uint32(a), v)
	instrumentationWork(a, v)
	n.HTM.Store(c, a, v)
}

// instrumentationWork models the per-access cost of a software barrier
// (address hashing plus a few dependent ALU operations).
//
//go:noinline
func instrumentationWork(a tm.Addr, v uint64) uint64 {
	h := uint64(a) * 0x9E3779B97F4A7C15
	h ^= v
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	naiveSink.Store(h)
	return h
}

var naiveSink atomic.Uint64
