// Package stm implements the software transactional memory algorithms
// encapsulated by PolyTM: TL2, TinySTM, NOrec and SwissTM, plus the
// global-lock baseline. Each is a from-scratch Go port of the published
// algorithm, sharing the transactional heap and context of internal/tm.
//
// The algorithms differ exactly along the axes the paper's tuner exploits:
// TL2 locks at commit time and validates a version read set; TinySTM locks
// encounter-time with timestamp extension; NOrec keeps no ownership records
// and validates by value under a single global sequence lock; SwissTM
// detects write-write conflicts eagerly and read-write conflicts lazily with
// a two-counter contention manager.
package stm

import "repro/internal/tm"

// TL2 is Transactional Locking II (Dice, Shalev, Shavit — DISC 2006):
// commit-time locking over a striped versioned-lock table with a global
// version clock. Reads are invisible and validated against the transaction's
// read version; writes are buffered and published at commit under per-stripe
// locks.
type TL2 struct{}

// Name implements tm.Algorithm.
func (TL2) Name() string { return "tl2" }

// Begin implements tm.Algorithm: snapshot the global clock as the read
// version.
func (TL2) Begin(c *tm.Ctx) {
	c.ResetSets()
	c.RV = c.H.Clock()
	c.AbortReason = tm.AbortNone
}

// Load implements tm.Algorithm. TL2 reads are invisible: sample the stripe's
// ownership record, read the word, and re-sample to detect racing writers;
// any version newer than the read snapshot aborts (classic TL2 has no
// timestamp extension).
func (TL2) Load(c *tm.Ctx, a tm.Addr) uint64 {
	// The fingerprint filter inside Get makes the dominant write-set miss a
	// single AND/test, so no emptiness pre-check is needed.
	if v, ok := c.WS.Get(a); ok {
		return v
	}
	h := c.H
	s := h.Stripe(a)
	pre := h.OrecLoad(s)
	if _, locked := tm.OrecLocked(pre); locked || tm.OrecVersion(pre) > c.RV {
		c.Retry(tm.AbortConflict)
	}
	v := h.LoadWord(a)
	post := h.OrecLoad(s)
	if post != pre {
		c.Retry(tm.AbortConflict)
	}
	c.RS.Add(s, tm.OrecVersion(pre))
	return v
}

// Store implements tm.Algorithm: buffer the write in the redo log.
func (TL2) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	c.WS.Put(a, v)
}

// Commit implements tm.Algorithm: acquire the write-stripe locks, advance
// the global clock, validate the read set (skipped when no concurrent commit
// interleaved), publish the redo log, and release the locks at the new
// version.
func (TL2) Commit(c *tm.Ctx) bool {
	if c.WS.Len() == 0 {
		return true // invisible read-only transactions commit for free
	}
	h := c.H
	if !lockWriteStripes(c) {
		c.AbortReason = tm.AbortConflict
		return false
	}
	wv := h.ClockAdd(1)
	if wv != c.RV+1 && !validateReadSet(c) {
		releaseLockedStripes(c)
		c.AbortReason = tm.AbortConflict
		return false
	}
	for _, e := range c.WS.Entries() {
		h.StoreWord(e.Addr, e.Val)
	}
	unlocked := tm.OrecUnlocked(wv)
	for _, le := range c.Locked.Entries() {
		h.OrecStore(le.Stripe, unlocked)
	}
	return true
}

// Abort implements tm.Algorithm: release any commit-time locks still held.
func (TL2) Abort(c *tm.Ctx) {
	releaseLockedStripes(c)
}

// lockWriteStripes try-locks every distinct stripe in the write set,
// recording prior record values in c.Locked. On any failure it releases what
// it acquired and returns false (TL2 aborts rather than spinning, avoiding
// deadlock without lock ordering).
func lockWriteStripes(c *tm.Ctx) bool {
	h := c.H
	mine := tm.OrecLockedBy(c.ID)
	for _, e := range c.WS.Entries() {
		s := h.Stripe(e.Addr)
		if c.Locked.Holds(s) {
			continue
		}
		cur := h.OrecLoad(s)
		if _, locked := tm.OrecLocked(cur); locked {
			releaseLockedStripes(c)
			return false
		}
		if tm.OrecVersion(cur) > c.RV {
			// A writer already published a newer version: the
			// read of this stripe (if any) is stale and validation
			// would fail anyway.
			releaseLockedStripes(c)
			return false
		}
		if !h.OrecCAS(s, cur, mine) {
			releaseLockedStripes(c)
			return false
		}
		c.Locked.Add(s, cur)
	}
	return true
}

// releaseLockedStripes restores the pre-lock record values of every stripe
// in the lock set and clears it. Safe to call when nothing is held.
func releaseLockedStripes(c *tm.Ctx) {
	h := c.H
	for _, le := range c.Locked.Entries() {
		h.OrecStore(le.Stripe, le.PrevVal)
	}
	c.Locked.Reset()
}

// validateReadSet checks that every read stripe is still at the version
// observed (or locked by this transaction, which implies it is in the write
// set and protected).
func validateReadSet(c *tm.Ctx) bool {
	h := c.H
	for _, re := range c.RS.Entries() {
		cur := h.OrecLoad(re.Stripe)
		if owner, locked := tm.OrecLocked(cur); locked {
			if owner != c.ID {
				return false
			}
			continue
		}
		if tm.OrecVersion(cur) != re.Version {
			return false
		}
	}
	return true
}
