package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	proteustm "repro"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// opKind identifies one service operation.
type opKind int

const (
	opGet opKind = iota
	opPut
	opDel
	opCAS
	opRange
	opMPut
	opMGet
	opLPush
	opRPush
	opLPop
	opRPop
	opLLen
	numOps
)

// opNames are the wire/report labels, indexed by opKind.
var opNames = [numOps]string{"get", "put", "del", "cas", "range", "mput", "mget", "lpush", "rpush", "lpop", "rpop", "llen"}

// maxFenceTries bounds how often a fenced request is requeued before the
// server gives up on it — a safety valve against a fence that never
// clears, which the protocol does not produce but a bug might.
const maxFenceTries = 20000

// request is one admitted operation waiting for a worker slot.
type request struct {
	op        opKind
	key, val  uint64
	old, newv uint64
	lo, hi    uint64
	// keys/vals carry batch operations (mput/mget) confined to one shard.
	keys, vals []uint64
	// ctl, when set, is a cross-shard commit control step (fence acquire,
	// apply+release, release); it bypasses the op switch and the served
	// counters and is delivered on the shard's priority lane.
	ctl func(w *proteustm.Worker, slot int) response
	// accepted is stamped when the request is admitted, before it is
	// enqueued, so queue-wait is measured from acceptance.
	accepted time.Time
	// fenceTries counts requeues caused by an observed fence.
	fenceTries int
	done       chan response
}

// response is the outcome of one executed operation.
type response struct {
	Found   bool   `json:"found,omitempty"`
	Applied bool   `json:"applied,omitempty"`
	Existed bool   `json:"existed,omitempty"`
	Val     uint64 `json:"val,omitempty"`
	Count   uint64 `json:"count,omitempty"`
	Sum     uint64 `json:"sum,omitempty"`
	Len     uint64 `json:"len,omitempty"`
	// Vals and Present are the per-key results of batch reads (mget),
	// aligned with the requested keys.
	Vals    []uint64 `json:"vals,omitempty"`
	Present []bool   `json:"present,omitempty"`
	Err     string   `json:"err,omitempty"`
}

// Options configures a Server.
type Options struct {
	// Shards is the number of independent ProteusTM systems the key space
	// is partitioned across (default 1). Each shard runs its own PolyTM
	// pool, monitor and tuner; single-key operations route to the owning
	// shard, multi-key operations commit with the cross-shard two-phase
	// protocol (see docs/sharding.md).
	Shards int
	// Partitioner selects the placement policy: shard.KindHash (the
	// default; consistent hashing, uniform placement) or shard.KindRange
	// (order-preserving boundary spans, so /kv/range fences only the
	// shards whose spans intersect the scan — see docs/sharding.md).
	Partitioner string
	// KeyUniverse sizes the range partitioner's even pre-split: shard i
	// of N starts owning [i*KeyUniverse/N, (i+1)*KeyUniverse/N), with the
	// last span running to the top of the key space (default 16384,
	// matching loadgen's default key range). Ignored by the hash
	// partitioner.
	KeyUniverse uint64
	// Workers is the number of ProteusTM worker slots per shard — the
	// ceiling of each shard's tuned parallelism degree (default 8).
	Workers int
	// QueueDepth bounds each shard's admission queue; a full queue rejects
	// with HTTP 429 instead of stalling (default 1024).
	QueueDepth int
	// AutoTune starts one RecTM adapter thread per shard (monitor →
	// explore → install) over that shard's live traffic.
	AutoTune bool
	// SamplePeriod is the monitor's KPI sampling period (default 100 ms).
	SamplePeriod time.Duration
	// Seed drives the tuning machinery; shard i tunes with Seed+i-derived
	// streams so exploration paths are independent.
	Seed uint64
	// HeapWords sizes each shard's transactional heap (default 1<<22).
	HeapWords int
	// Preload inserts keys 0..Preload-1 (value = key) before serving,
	// each into its owning shard (default 0).
	Preload int
	// MaxScanSpan clamps /kv/range spans (default 4096).
	MaxScanSpan uint64
	// MaxBatchKeys clamps the key count of /kv/mput and /kv/mget
	// (default 128).
	MaxBatchKeys int
	// CrossRetries bounds fence-acquisition attempts of one cross-shard
	// operation before it fails with 503 (default 64).
	CrossRetries int
	// LatencyWindow is the size of each sliding latency reservoir behind
	// /statusz percentiles (default 8192).
	LatencyWindow int
	// TimelineTail bounds the number of timeline points /statusz returns
	// per shard (default 64, newest last; 0 keeps the default).
	TimelineTail int
	// Logf, when set, receives operational log lines (reconfigurations,
	// drains, shutdown).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Partitioner == "" {
		o.Partitioner = shard.KindHash
	}
	if o.KeyUniverse == 0 {
		o.KeyUniverse = 16384
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.HeapWords <= 0 {
		o.HeapWords = 1 << 22
	}
	if o.MaxScanSpan == 0 {
		o.MaxScanSpan = 4096
	}
	if o.MaxBatchKeys <= 0 {
		o.MaxBatchKeys = 128
	}
	if o.CrossRetries <= 0 {
		o.CrossRetries = 64
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 8192
	}
	if o.TimelineTail <= 0 {
		o.TimelineTail = 64
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// shardState is one shard of the serving layer: an independent ProteusTM
// system with its own store, admission queue, priority lane for
// cross-shard control steps, worker pool and graceful-drain state.
type shardState struct {
	idx   int
	srv   *Server
	sys   *proteustm.System
	store *Store

	queue chan *request
	// prio carries cross-shard commit control requests; workers drain it
	// before the admission queue so a held fence is always released even
	// when the queue is saturated with fenced operations cycling through.
	prio chan *request
	stop chan struct{}
	wg   sync.WaitGroup

	// routed counts data operations admitted to this shard's queue — the
	// per-shard load counter /statusz exposes (ops_routed) and the range
	// partitioner's SplitHeaviest rebalance step consumes.
	routed atomic.Uint64

	// drainMu implements the graceful-drain protocol: every operation
	// executes under RLock; the reconfigure hook takes the write lock
	// before the pool gates any thread, so a shrink waits for in-flight
	// operations and no queued request is ever handed to a slot that is
	// about to park. active mirrors the installed parallelism degree.
	drainMu sync.RWMutex
	active  atomic.Int64
}

// Server is the proteusd serving layer: an http.Handler whose data
// operations execute as ProteusTM atomic blocks on one or more key-space
// shards. Create with New, stop with Close.
type Server struct {
	opts   Options
	part   shard.Partitioner
	shards []*shardState
	mux    *http.ServeMux
	start  time.Time

	// inflight counts submissions between admission and reply; Close
	// waits on it after setting closed, so no submitter can be stranded
	// between the closed-check and its enqueue when the workers stop, and
	// no cross-shard coordinator can be cut off mid-protocol.
	inflight sync.WaitGroup
	closed   atomic.Bool

	// crossSem bounds concurrent cross-shard coordinators; its capacity
	// also sizes each shard's priority lane, so control submissions never
	// block a coordinator indefinitely.
	crossSem  chan struct{}
	nextToken atomic.Uint64

	served      [numOps]atomic.Uint64
	rejected    atomic.Uint64
	requeued    atomic.Uint64
	fenced      atomic.Uint64
	crossOps    atomic.Uint64
	crossAborts atomic.Uint64
	hookFires   atomic.Uint64
	drains      atomic.Uint64

	// rangeLocal counts /kv/range scans whose owner set collapsed to one
	// shard (a plain shard transaction, no fences); rangeCross counts
	// scans that ran the cross-shard protocol; rangeFencedShards totals
	// the shards those fenced — the scan-locality observables the
	// partitioner A/B compares.
	rangeLocal        atomic.Uint64
	rangeCross        atomic.Uint64
	rangeFencedShards atomic.Uint64

	// lat is accept→reply; queueWait is accept→execution start; svc is
	// the execution alone. Separating the three is what makes a saturated
	// queue distinguishable from a slow store on /statusz.
	lat       *metrics.Reservoir
	queueWait *metrics.Reservoir
	svc       *metrics.Reservoir
}

// crossSlots is the coordinator concurrency bound (and priority-lane
// capacity).
const crossSlots = 32

// New opens one ProteusTM system per shard, builds the stores (optionally
// preloading them) and starts one queue worker per slot per shard. The
// returned Server is ready to serve; wire it into an http.Server as its
// Handler.
func New(opts Options) (*Server, error) {
	s, err := newServer(opts)
	if err != nil {
		return nil, err
	}
	s.startWorkers()
	return s, nil
}

// newServer builds a Server without starting its queue workers (tests use
// the split to exercise admission-queue overflow deterministically).
func newServer(opts Options) (*Server, error) {
	opts.setDefaults()
	part, err := shard.NewPartitioner(opts.Partitioner, opts.Shards, opts.KeyUniverse)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		opts:      opts,
		part:      part,
		start:     time.Now(),
		crossSem:  make(chan struct{}, crossSlots),
		lat:       metrics.NewReservoir(opts.LatencyWindow),
		queueWait: metrics.NewReservoir(opts.LatencyWindow),
		svc:       metrics.NewReservoir(opts.LatencyWindow),
	}
	for i := 0; i < opts.Shards; i++ {
		ss, err := s.newShard(i)
		if err != nil {
			for _, prev := range s.shards {
				prev.sys.Close() //nolint:errcheck // already failing
			}
			return nil, err
		}
		s.shards = append(s.shards, ss)
	}
	if err := s.preload(opts.Preload); err != nil {
		for _, ss := range s.shards {
			ss.sys.Close() //nolint:errcheck // already failing
		}
		return nil, err
	}
	s.mux = s.routes()
	return s, nil
}

// newShard opens shard i's system and store.
func (s *Server) newShard(i int) (*shardState, error) {
	opts := &s.opts
	sysOpts := []proteustm.Option{
		proteustm.WithWorkers(opts.Workers),
		proteustm.WithHeapWords(opts.HeapWords),
		// Per-shard seeds keep the shards' exploration paths independent;
		// shard 0 keeps the configured seed exactly.
		proteustm.WithSeed(opts.Seed + uint64(i)*0x9E3779B97F4A7C15),
	}
	if opts.SamplePeriod > 0 {
		sysOpts = append(sysOpts, proteustm.WithSamplePeriod(opts.SamplePeriod))
	}
	if opts.AutoTune {
		sysOpts = append(sysOpts, proteustm.WithAutoTuning())
	}
	sys, err := proteustm.Open(sysOpts...)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	store, err := NewStore(sys.Heap())
	if err != nil {
		sys.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	ss := &shardState{
		idx:   i,
		srv:   s,
		sys:   sys,
		store: store,
		queue: make(chan *request, opts.QueueDepth),
		prio:  make(chan *request, crossSlots),
		stop:  make(chan struct{}),
	}
	ss.active.Store(int64(sys.CurrentConfig().Threads))
	sys.OnReconfigure(ss.reconfigureHook)
	return ss, nil
}

// startWorkers launches one queue worker per slot per shard.
func (s *Server) startWorkers() {
	for _, ss := range s.shards {
		for id := 0; id < s.opts.Workers; id++ {
			ss.wg.Add(1)
			go ss.worker(id)
		}
	}
}

// System exposes shard 0's ProteusTM instance (for status and tests; use
// ShardSystem for the others).
func (s *Server) System() *proteustm.System { return s.shards[0].sys }

// Shards returns the number of key-space shards.
func (s *Server) Shards() int { return len(s.shards) }

// ShardSystem exposes shard i's ProteusTM instance.
func (s *Server) ShardSystem(i int) *proteustm.System { return s.shards[i].sys }

// preload inserts n keys, each into its owning shard, in batched setup
// transactions on slot 0 (always an active slot: the parallelism degree
// is at least 1).
func (s *Server) preload(n int) error {
	if n <= 0 {
		return nil
	}
	byShard := make([][]uint64, len(s.shards))
	for k := 0; k < n; k++ {
		o := s.part.Owner(uint64(k))
		byShard[o] = append(byShard[o], uint64(k))
	}
	const batch = 64
	for i, keys := range byShard {
		ss := s.shards[i]
		w, err := ss.sys.Worker(0)
		if err != nil {
			return err
		}
		for base := 0; base < len(keys); base += batch {
			end := base + batch
			if end > len(keys) {
				end = len(keys)
			}
			chunk := keys[base:end]
			w.Atomic(func(tx proteustm.Txn) {
				for _, k := range chunk {
					ss.store.Put(tx, 0, k, k)
				}
			})
		}
	}
	return nil
}

// reconfigureHook runs at the start of every pool reconfiguration on this
// shard, before any thread gating (see proteustm.System.OnReconfigure).
// On a shrink it waits for in-flight operations to finish and publishes
// the smaller active set, so workers on soon-to-be-parked slots requeue
// rather than execute; growth publishes immediately.
func (ss *shardState) reconfigureHook(old, newCfg proteustm.Config) {
	ss.srv.hookFires.Add(1)
	if int64(newCfg.Threads) < ss.active.Load() {
		ss.drainMu.Lock()
		ss.active.Store(int64(newCfg.Threads))
		ss.drainMu.Unlock()
		ss.srv.drains.Add(1)
		ss.srv.opts.Logf("serve: shard %d reconfigure %s -> %s (drained in-flight ops)", ss.idx, old, newCfg)
		return
	}
	ss.active.Store(int64(newCfg.Threads))
	if old != newCfg {
		ss.srv.opts.Logf("serve: shard %d reconfigure %s -> %s", ss.idx, old, newCfg)
	}
}

// worker is the per-slot request executor of one shard. A worker only
// consumes while its slot is inside the installed parallelism degree;
// slot 0 is always active (Threads >= 1), so every shard drains even at
// minimum parallelism. The priority lane is drained before the admission
// queue so cross-shard commit control steps (fence release in particular)
// are never starved by fenced operations cycling through the queue.
func (ss *shardState) worker(id int) {
	defer ss.wg.Done()
	w, err := ss.sys.Worker(id)
	if err != nil {
		panic(fmt.Sprintf("serve: shard %d worker %d: %v", ss.idx, id, err))
	}
	idle := time.NewTicker(2 * time.Millisecond)
	defer idle.Stop()
	for {
		if int64(id) >= ss.active.Load() {
			select {
			case <-ss.stop:
				return
			case <-idle.C:
			}
			continue
		}
		var req *request
		select {
		case req = <-ss.prio:
		default:
			select {
			case <-ss.stop:
				return
			case req = <-ss.prio:
			case req = <-ss.queue:
			}
		}
		ss.drainMu.RLock()
		if int64(id) >= ss.active.Load() {
			ss.drainMu.RUnlock()
			ss.requeue(req)
			continue
		}
		var resp response
		var fenced bool
		if req.ctl != nil {
			resp = req.ctl(w, id)
		} else {
			t0 := time.Now()
			resp, fenced = ss.execute(w, id, req)
			if !fenced {
				ss.srv.queueWait.Observe(msBetween(req.accepted, t0))
				ss.srv.svc.Observe(msBetween(t0, time.Now()))
			}
		}
		ss.drainMu.RUnlock()
		if fenced {
			ss.srv.fenced.Add(1)
			req.fenceTries++
			if req.fenceTries > maxFenceTries {
				req.done <- response{Err: "shard fence held too long"}
				continue
			}
			// Yield briefly so the fence holder's control steps (on the
			// priority lane) make progress, then cycle the request.
			time.Sleep(50 * time.Microsecond)
			ss.requeue(req)
			continue
		}
		if req.ctl == nil {
			ss.srv.served[req.op].Add(1)
		}
		req.done <- resp
	}
}

// msBetween converts a time span to milliseconds for the reservoirs.
func msBetween(from, to time.Time) float64 {
	return float64(to.Sub(from).Nanoseconds()) / 1e6
}

// requeue hands a request back after a shrink beat this worker to it or
// a fence forced a retry. Control steps go back onto the priority lane —
// they must keep their delivery guarantee and their precedence over
// fenced data operations, and the lane has reserved capacity (crossSlots
// bounds outstanding control steps, and this worker just freed a slot).
// Data requests go back onto the admission queue with a bounded push: a
// worker must never block forever on its own full queue (it may be the
// only consumer), so after a grace period the request fails instead.
func (ss *shardState) requeue(req *request) {
	ss.srv.requeued.Add(1)
	if req.ctl != nil {
		select {
		case ss.prio <- req:
		case <-ss.stop:
			req.done <- response{Err: "server shutting down"}
		}
		return
	}
	for i := 0; i < 200; i++ {
		select {
		case ss.queue <- req:
			return
		case <-ss.stop:
			req.done <- response{Err: "server shutting down"}
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
	req.done <- response{Err: "admission queue full during requeue"}
}

// execute runs one data operation as a single atomic block on worker w.
// It reports fenced=true (and performs no writes) when the shard's
// cross-shard commit fence was held: the caller must requeue the request
// rather than answer it. Closure-captured results are reset at the top of
// every attempt because the TM retries the block on aborts.
func (ss *shardState) execute(w *proteustm.Worker, slot int, req *request) (response, bool) {
	// With a single shard no cross-shard commit ever takes the fence, so
	// skip the per-operation fence read entirely.
	checkFence := len(ss.srv.shards) > 1
	var resp response
	var fenced bool
	store := ss.store
	switch req.op {
	case opGet:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Val, resp.Found = store.Get(tx, req.key)
		})
	case opPut:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Existed = store.Put(tx, slot, req.key, req.val)
		})
		resp.Applied = !fenced
	case opDel:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Applied = store.Delete(tx, slot, req.key)
		})
	case opCAS:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Val, resp.Applied = store.CAS(tx, slot, req.key, req.old, req.newv)
		})
	case opRange:
		w.Atomic(func(tx proteustm.Txn) {
			resp.Count, resp.Sum = 0, 0
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Count, resp.Sum = store.Range(tx, req.lo, req.hi)
		})
	case opMPut:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			for i, k := range req.keys {
				store.Put(tx, slot, k, req.vals[i])
			}
		})
		resp.Applied = !fenced
	case opMGet:
		w.Atomic(func(tx proteustm.Txn) {
			resp.Vals, resp.Present = nil, nil
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			vals := make([]uint64, len(req.keys))
			present := make([]bool, len(req.keys))
			for i, k := range req.keys {
				vals[i], present[i] = store.Get(tx, k)
			}
			resp.Vals, resp.Present = vals, present
		})
	case opLPush:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			store.PushLeft(tx, slot, req.val)
		})
		resp.Applied = !fenced
	case opRPush:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			store.PushRight(tx, slot, req.val)
		})
		resp.Applied = !fenced
	case opLPop:
		w.Atomic(func(tx proteustm.Txn) {
			resp.Val, resp.Found = 0, false
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Val, resp.Found = store.PopLeft(tx, slot)
		})
	case opRPop:
		w.Atomic(func(tx proteustm.Txn) {
			resp.Val, resp.Found = 0, false
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Val, resp.Found = store.PopRight(tx, slot)
		})
	case opLLen:
		w.Atomic(func(tx proteustm.Txn) {
			if fenced = checkFence && store.Fenced(tx); fenced {
				return
			}
			resp.Len = store.Len(tx)
		})
	}
	if fenced {
		return response{}, true
	}
	return resp, false
}

// submit admits one request to shard ss: a full queue rejects immediately
// (the 429 path) rather than stalling the client. The inflight
// registration precedes the closed-check, so Close cannot observe an
// empty system while a submitter is between its check and its enqueue.
func (s *Server) submit(ss *shardState, req *request) (response, int) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return response{Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	req.accepted = time.Now()
	req.done = make(chan response, 1)
	select {
	case ss.queue <- req:
		ss.routed.Add(1)
	default:
		s.rejected.Add(1)
		return response{Err: "admission queue full"}, http.StatusTooManyRequests
	}
	resp := <-req.done
	s.lat.Observe(msBetween(req.accepted, time.Now()))
	if resp.Err != "" {
		return resp, http.StatusServiceUnavailable
	}
	return resp, http.StatusOK
}

// Close drains the admission queues, stops the workers and shuts every
// shard's ProteusTM system down. In-flight and queued requests — and
// in-flight cross-shard commits — all complete; new submissions are
// rejected with 503. Shards drain one at a time so the shutdown log
// attributes progress per shard.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Every submission that passed the closed-check has registered in
	// inflight, and the workers are still running, so waiting here both
	// drains the queues and guarantees every admitted request (including
	// every cross-shard coordinator) got its reply before workers stop.
	s.inflight.Wait()
	var firstErr error
	for _, ss := range s.shards {
		close(ss.stop)
		ss.wg.Wait()
		ss.sys.OnReconfigure(nil)
		s.opts.Logf("serve: shard %d drained (final config %s)", ss.idx, ss.sys.CurrentConfig())
		if err := ss.sys.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.opts.Logf("serve: drained and stopped (shards=%d served=%d rejected=%d cross=%d)",
		len(s.shards), s.totalServed(), s.rejected.Load(), s.crossOps.Load())
	return firstErr
}

func (s *Server) totalServed() uint64 {
	var total uint64
	for i := range s.served {
		total += s.served[i].Load()
	}
	return total
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routes builds the endpoint mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/kv/get", s.opHandler(opGet, "key"))
	mux.HandleFunc("/kv/put", s.opHandler(opPut, "key", "val"))
	mux.HandleFunc("/kv/del", s.opHandler(opDel, "key"))
	mux.HandleFunc("/kv/cas", s.opHandler(opCAS, "key", "old", "new"))
	mux.HandleFunc("/kv/range", s.handleRange)
	mux.HandleFunc("/kv/mput", s.batchHandler(opMPut))
	mux.HandleFunc("/kv/mget", s.batchHandler(opMGet))
	mux.HandleFunc("/list/lpush", s.opHandler(opLPush, "val"))
	mux.HandleFunc("/list/rpush", s.opHandler(opRPush, "val"))
	mux.HandleFunc("/list/lpop", s.opHandler(opLPop))
	mux.HandleFunc("/list/rpop", s.opHandler(opRPop))
	mux.HandleFunc("/list/len", s.opHandler(opLLen))
	return mux
}

// shardFor routes a request to the shard owning its key. Single-key
// operations go to the key's owner; deque operations live on shard 0 (the
// deque is not partitioned — see docs/sharding.md).
func (s *Server) shardFor(req *request) *shardState {
	switch req.op {
	case opGet, opPut, opDel, opCAS:
		return s.shards[s.part.Owner(req.key)]
	default:
		return s.shards[0]
	}
}

// opHandler builds the handler for one single-key or deque operation,
// parsing the named uint64 query parameters and routing to the owning
// shard.
func (s *Server) opHandler(op opKind, params ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req := &request{op: op}
		for _, name := range params {
			raw := r.URL.Query().Get(name)
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter %q: want uint64, got %q", name, raw)})
				return
			}
			switch name {
			case "key":
				req.key = v
			case "val":
				req.val = v
			case "old":
				req.old = v
			case "new":
				req.newv = v
			}
		}
		resp, code := s.submit(s.shardFor(req), req)
		writeJSON(w, code, resp)
	}
}

// handleRange serves /kv/range. The scan fences only the shards the
// partitioner maps the interval onto (OwnersInRange): under hashing a
// wide scan still touches every shard, but under the range partitioner —
// and for narrow scans under either — the owner set shrinks, down to a
// plain single-shard transaction with no fence protocol at all.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var lo, hi uint64
	for _, p := range []struct {
		name string
		dst  *uint64
	}{{"lo", &lo}, {"hi", &hi}} {
		raw := r.URL.Query().Get(p.name)
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter %q: want uint64, got %q", p.name, raw)})
			return
		}
		*p.dst = v
	}
	if hi < lo {
		writeJSON(w, http.StatusBadRequest, response{Err: "range: hi < lo"})
		return
	}
	if hi-lo > s.opts.MaxScanSpan {
		hi = lo + s.opts.MaxScanSpan
	}
	resp, code := s.submitCross(&request{op: opRange, lo: lo, hi: hi})
	writeJSON(w, code, resp)
}

// batchHandler serves /kv/mput and /kv/mget: comma-separated uint64 key
// (and for mput, value) lists, committed atomically across every
// participating shard.
func (s *Server) batchHandler(op opKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		keys, err := parseUintList(r.URL.Query().Get("keys"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter \"keys\": %v", err)})
			return
		}
		if len(keys) == 0 {
			writeJSON(w, http.StatusBadRequest, response{Err: "parameter \"keys\": at least one key required"})
			return
		}
		if len(keys) > s.opts.MaxBatchKeys {
			writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("batch of %d keys exceeds limit %d", len(keys), s.opts.MaxBatchKeys)})
			return
		}
		req := &request{op: op, keys: keys}
		if op == opMPut {
			vals, err := parseUintList(r.URL.Query().Get("vals"))
			if err != nil {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("parameter \"vals\": %v", err)})
				return
			}
			if len(vals) != len(keys) {
				writeJSON(w, http.StatusBadRequest, response{Err: fmt.Sprintf("got %d keys but %d vals", len(keys), len(vals))})
				return
			}
			req.vals = vals
		}
		resp, code := s.submitCross(req)
		writeJSON(w, code, resp)
	}
}

// parseUintList parses a comma-separated uint64 list.
func parseUintList(raw string) ([]uint64, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("want uint64 list, got %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort write to client
}
