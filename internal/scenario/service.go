package scenario

import (
	"fmt"

	"repro/internal/workloads"
)

// Service family (internal/workloads/service.go): proteusd's key-value
// traffic shapes, replayed in-process. `service-kv` is the deterministic
// twin of the `proteusbench loadgen` phase-shift session documented in
// docs/serving.md; `service-steady` pins one mix for sweep rows;
// `service-sharded` exercises consistent-hash routing and the cross-shard
// 2PC; `service-range` A/Bs the hash vs. order-preserving partitioner
// under an identical scan-heavy op stream (docs/sharding.md).

var (
	svcKeyRange = Param{Name: "keyrange", Desc: "key range of the store", Kind: Int, Default: "16384"}
	svcInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	svcSpan     = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "256"}
	svcPhaseOps = Param{Name: "phaseops", Desc: "operations per traffic phase", Kind: Int, Default: "7000"}
	svcMix      = Param{Name: "mix", Desc: "traffic mix: read-heavy, write-heavy, scan or mixed", Kind: String, Default: "read-heavy"}

	shKeyRange   = Param{Name: "keyrange", Desc: "key range of the sharded store", Kind: Int, Default: "16384"}
	shShards     = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	shInitial    = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	shSpan       = Param{Name: "span", Desc: "per-shard range-scan width", Kind: Int, Default: "128"}
	shSkew       = Param{Name: "skew", Desc: "probability of the shard-correlated mix (0 = uniform routing)", Kind: Float, Default: "0.8"}
	shBatchEvery = Param{Name: "batchevery", Desc: "every Nth op is a cross-shard 2PC batch (0 disables)", Kind: Int, Default: "64"}
	shBatchKeys  = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}

	rgPartitioner = Param{Name: "partitioner", Desc: "placement policy: hash or range", Kind: String, Default: "range"}
	rgShards      = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	rgKeyRange    = Param{Name: "keyrange", Desc: "key range (and range-partitioner universe)", Kind: Int, Default: "4096"}
	rgInitial     = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	rgSpan        = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "64"}
	rgMix         = Param{Name: "mix", Desc: "traffic mix (scan-heavy stresses placement)", Kind: String, Default: "scan-heavy"}
	rgBatchEvery  = Param{Name: "batchevery", Desc: "every Nth op is a cross-shard 2PC batch (0 disables)", Kind: Int, Default: "32"}
	rgBatchKeys   = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}
)

func init() {
	Register(Scenario{
		Name:        "service-kv",
		Family:      "service",
		Description: "proteusd KV traffic: read-heavy → write-heavy → scan phase shift",
		Params:      []Param{svcKeyRange, svcInitial, svcSpan, svcPhaseOps},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.ServiceKV{
				KeyRange:    v.Int(svcKeyRange),
				InitialSize: v.Int(svcInitial),
				Span:        v.Int(svcSpan),
				PhaseOps:    uint64(v.Int(svcPhaseOps)),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-sharded",
		Family:      "service",
		Description: "sharded KV: consistent-hash routing, skewed vs. uniform per-shard mixes, cross-shard 2PC batches",
		Params:      []Param{shShards, shKeyRange, shInitial, shSpan, shSkew, shBatchEvery, shBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			batchEvery := v.Int(shBatchEvery)
			if batchEvery == 0 {
				batchEvery = -1 // ServiceSharded treats negative as disabled, 0 as default
			}
			return &workloads.ServiceSharded{
				Shards:      v.Int(shShards),
				KeyRange:    v.Int(shKeyRange),
				InitialSize: v.Int(shInitial),
				Span:        v.Int(shSpan),
				Skew:        v.Float(shSkew),
				BatchEvery:  batchEvery,
				BatchKeys:   v.Int(shBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-range",
		Family:      "service",
		Description: "partitioner A/B: identical scan-heavy op stream under hash or range placement, fence counts in metrics",
		Params:      []Param{rgPartitioner, rgShards, rgKeyRange, rgInitial, rgSpan, rgMix, rgBatchEvery, rgBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			batchEvery := v.Int(rgBatchEvery)
			if batchEvery == 0 {
				batchEvery = -1 // ServiceRange treats negative as disabled, 0 as default
			}
			return &workloads.ServiceRange{
				Partitioner: v.Str(rgPartitioner),
				Shards:      v.Int(rgShards),
				KeyRange:    v.Int(rgKeyRange),
				InitialSize: v.Int(rgInitial),
				Span:        v.Int(rgSpan),
				Mix:         v.Str(rgMix),
				BatchEvery:  batchEvery,
				BatchKeys:   v.Int(rgBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-steady",
		Family:      "service",
		Description: "proteusd KV traffic pinned to one mix (no phase shift)",
		Params:      []Param{svcKeyRange, svcInitial, svcSpan, svcMix},
		Make: func(v Values) (workloads.Workload, error) {
			mix, err := workloads.ServiceMixByName(v.Str(svcMix))
			if err != nil {
				return nil, fmt.Errorf("service-steady: %w", err)
			}
			return &workloads.ServiceKV{
				Label:       "service-steady",
				KeyRange:    v.Int(svcKeyRange),
				InitialSize: v.Int(svcInitial),
				Span:        v.Int(svcSpan),
				Phases:      []workloads.ServicePhase{{Mix: mix, Ops: 1 << 62}},
			}, nil
		},
	})
}
