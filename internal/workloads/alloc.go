package workloads

import "repro/internal/tm"

// NodePool recycles fixed-size node blocks through transactional free
// lists, so long-running insert/delete workloads stay within a bounded
// arena. The free lists are manipulated inside the caller's transaction:
// a node freed by an aborted transaction is rolled back with everything
// else, and version-based validation prevents use-after-recycle anomalies.
//
// The pool is striped by worker slot: in the steady state each thread pops
// the nodes it pushed, adding no cross-thread conflicts to the workload.
type NodePool struct {
	// NodeWords is the block size.
	NodeWords int
	// next is the word index (within each node) reused as the free-list
	// link; any word overwritten on reuse works.
	next tm.Addr

	h     *tm.Heap
	heads tm.Addr // poolStripes head words
}

// poolStripes is the number of per-thread free lists.
const poolStripes = 16

// NewNodePool allocates the pool's head words.
func NewNodePool(h *tm.Heap, nodeWords int, nextWord tm.Addr) (*NodePool, error) {
	heads, err := h.Alloc(poolStripes * 8) // one per cache line
	if err != nil {
		return nil, err
	}
	return &NodePool{NodeWords: nodeWords, next: nextWord, h: h, heads: heads}, nil
}

func (p *NodePool) head(self int) tm.Addr {
	return p.heads + tm.Addr((self%poolStripes)*8)
}

// Get returns a recycled node or allocates a fresh one.
func (p *NodePool) Get(tx tm.Txn, self int) tm.Addr {
	h := p.head(self)
	n := tm.Addr(tx.Load(h))
	if n != tm.NilAddr {
		tx.Store(h, tx.Load(n+p.next))
		return n
	}
	return p.h.MustAlloc(p.NodeWords)
}

// Put recycles a node onto the caller's stripe.
func (p *NodePool) Put(tx tm.Txn, self int, n tm.Addr) {
	h := p.head(self)
	tx.Store(n+p.next, tx.Load(h))
	tx.Store(h, uint64(n))
}
