package htm

import "repro/internal/tm"

// Concrete Txn bindings (tm.TxnBinder). Unlike the stm backends, HTM and
// Hybrid carry per-instance state (capacities, contention manager), so the
// binding pairs the algorithm pointer with the context. The pair is heap-
// allocated once per (context, algorithm) and cached by tm.BindCached;
// steady-state attempts reuse it with no allocation and dispatch Load/Store
// statically into the simulator.

type htmTxn struct {
	h *HTM
	c *tm.Ctx
}

func (t *htmTxn) Load(a tm.Addr) uint64     { return t.h.Load(t.c, a) }
func (t *htmTxn) Store(a tm.Addr, v uint64) { t.h.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder.
func (h *HTM) BindTxn(c *tm.Ctx) tm.Txn { return &htmTxn{h, c} }

type hybridTxn struct {
	hy *Hybrid
	c  *tm.Ctx
}

func (t *hybridTxn) Load(a tm.Addr) uint64     { return t.hy.Load(t.c, a) }
func (t *hybridTxn) Store(a tm.Addr, v uint64) { t.hy.Store(t.c, a, v) }

// BindTxn implements tm.TxnBinder.
func (hy *Hybrid) BindTxn(c *tm.Ctx) tm.Txn { return &hybridTxn{hy, c} }
