package ml

import "math"

// SMO is a linear soft-margin SVM trained with a simplified Sequential
// Minimal Optimization (Platt's algorithm), extended to multi-class with
// one-vs-one voting — the structure of Weka's SMO used by the paper.
type SMO struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses bounds the optimization passes without progress
	// (default 5).
	MaxPasses int
	// Seed drives the second-multiplier choice.
	Seed uint64

	machines []binarySVM
	classes  []int
	// feature standardization learned on the training set
	mean, std []float64
}

type binarySVM struct {
	a, b int // class pair
	w    []float64
	bias float64
}

// Name implements Classifier.
func (s *SMO) Name() string { return "SMO" }

// Fit implements Classifier: train one binary SVM per pair of classes
// present in the training labels.
func (s *SMO) Fit(x [][]float64, y []int) {
	s.mean, s.std = standardFit(x)
	xs := standardApply(x, s.mean, s.std)

	present := map[int][]int{}
	for i, c := range y {
		present[c] = append(present[c], i)
	}
	s.classes = s.classes[:0]
	for c := range present {
		s.classes = append(s.classes, c)
	}
	sortInts(s.classes)
	s.machines = s.machines[:0]
	for i := 0; i < len(s.classes); i++ {
		for j := i + 1; j < len(s.classes); j++ {
			ca, cb := s.classes[i], s.classes[j]
			var px [][]float64
			var py []float64
			for _, r := range present[ca] {
				px = append(px, xs[r])
				py = append(py, 1)
			}
			for _, r := range present[cb] {
				px = append(px, xs[r])
				py = append(py, -1)
			}
			w, b := s.trainBinary(px, py)
			s.machines = append(s.machines, binarySVM{a: ca, b: cb, w: w, bias: b})
		}
	}
}

// Predict implements Classifier: one-vs-one majority vote.
func (s *SMO) Predict(x []float64) int {
	if len(s.machines) == 0 {
		if len(s.classes) > 0 {
			return s.classes[0]
		}
		return 0
	}
	xs := standardRow(x, s.mean, s.std)
	votes := map[int]int{}
	for _, m := range s.machines {
		score := m.bias
		for f := range m.w {
			score += m.w[f] * xs[f]
		}
		if score >= 0 {
			votes[m.a]++
		} else {
			votes[m.b]++
		}
	}
	best, bestV := s.classes[0], -1
	for _, c := range s.classes {
		if votes[c] > bestV {
			best, bestV = c, votes[c]
		}
	}
	return best
}

// trainBinary runs simplified SMO on (+1/-1)-labeled rows, returning the
// primal weight vector and bias of a linear SVM.
func (s *SMO) trainBinary(x [][]float64, y []float64) ([]float64, float64) {
	n := len(x)
	if n == 0 {
		return nil, 0
	}
	c := s.C
	if c == 0 {
		c = 1
	}
	tol := s.Tol
	if tol == 0 {
		tol = 1e-3
	}
	maxPasses := s.MaxPasses
	if maxPasses == 0 {
		maxPasses = 5
	}
	alpha := make([]float64, n)
	b := 0.0
	rng := s.Seed ^ 0x9E3779B97F4A7C15
	if rng == 0 {
		rng = 1
	}
	dot := func(a, bb []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * bb[i]
		}
		return s
	}
	f := func(xi []float64) float64 {
		s := b
		for k := 0; k < n; k++ {
			if alpha[k] != 0 {
				s += alpha[k] * y[k] * dot(x[k], xi)
			}
		}
		return s
	}
	passes := 0
	for passes < maxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(x[i]) - y[i]
			if (y[i]*ei < -tol && alpha[i] < c) || (y[i]*ei > tol && alpha[i] > 0) {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				j := int(rng % uint64(n))
				if j == i {
					j = (j + 1) % n
				}
				ej := f(x[j]) - y[j]
				aiOld, ajOld := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, ajOld-aiOld)
					hi = math.Min(c, c+ajOld-aiOld)
				} else {
					lo = math.Max(0, aiOld+ajOld-c)
					hi = math.Min(c, aiOld+ajOld)
				}
				if lo == hi {
					continue
				}
				eta := 2*dot(x[i], x[j]) - dot(x[i], x[i]) - dot(x[j], x[j])
				if eta >= 0 {
					continue
				}
				alpha[j] = ajOld - y[j]*(ei-ej)/eta
				if alpha[j] > hi {
					alpha[j] = hi
				}
				if alpha[j] < lo {
					alpha[j] = lo
				}
				if math.Abs(alpha[j]-ajOld) < 1e-5 {
					continue
				}
				alpha[i] = aiOld + y[i]*y[j]*(ajOld-alpha[j])
				b1 := b - ei - y[i]*(alpha[i]-aiOld)*dot(x[i], x[i]) - y[j]*(alpha[j]-ajOld)*dot(x[i], x[j])
				b2 := b - ej - y[i]*(alpha[i]-aiOld)*dot(x[i], x[j]) - y[j]*(alpha[j]-ajOld)*dot(x[j], x[j])
				switch {
				case alpha[i] > 0 && alpha[i] < c:
					b = b1
				case alpha[j] > 0 && alpha[j] < c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	// Primal weights of the linear machine.
	w := make([]float64, len(x[0]))
	for k := 0; k < n; k++ {
		if alpha[k] != 0 {
			for fidx := range w {
				w[fidx] += alpha[k] * y[k] * x[k][fidx]
			}
		}
	}
	return w, b
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// --- feature standardization -------------------------------------------------

func standardFit(x [][]float64) (mean, std []float64) {
	if len(x) == 0 {
		return nil, nil
	}
	nf := len(x[0])
	mean = make([]float64, nf)
	std = make([]float64, nf)
	for _, row := range x {
		for f, v := range row {
			mean[f] += v
		}
	}
	for f := range mean {
		mean[f] /= float64(len(x))
	}
	for _, row := range x {
		for f, v := range row {
			d := v - mean[f]
			std[f] += d * d
		}
	}
	for f := range std {
		std[f] = math.Sqrt(std[f] / float64(len(x)))
		if std[f] == 0 {
			std[f] = 1
		}
	}
	return mean, std
}

func standardApply(x [][]float64, mean, std []float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = standardRow(row, mean, std)
	}
	return out
}

func standardRow(row, mean, std []float64) []float64 {
	out := make([]float64, len(row))
	for f, v := range row {
		if f < len(mean) {
			out[f] = (v - mean[f]) / std[f]
		} else {
			out[f] = v
		}
	}
	return out
}
