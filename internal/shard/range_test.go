package shard

import "testing"

// TestRangeOwnerDeterministicAndCovering pins the basic contracts shared
// with the hash ring: valid owners, pure-function construction, and full
// coverage of the universe with an even pre-split.
func TestRangeOwnerDeterministicAndCovering(t *testing.T) {
	const universe = 1 << 14
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		a, b := NewRange(n, universe), NewRange(n, universe)
		counts := make([]int, n)
		for k := uint64(0); k < universe; k++ {
			o := a.Owner(k)
			if o < 0 || o >= n {
				t.Fatalf("n=%d: Owner(%d) = %d out of range", n, k, o)
			}
			if o != b.Owner(k) {
				t.Fatalf("n=%d: two partitioners disagree on key %d", n, k)
			}
			counts[o]++
		}
		fair := universe / n
		for s, c := range counts {
			if c < fair-n || c > fair+n {
				t.Errorf("n=%d: shard %d owns %d of %d keys (fair %d) — pre-split uneven", n, s, c, universe, fair)
			}
		}
		// Keys above the universe belong to the last pre-split span.
		if o := a.Owner(^uint64(0)); o != n-1 {
			t.Errorf("n=%d: top key owned by %d, want %d", n, o, n-1)
		}
	}
}

// TestRangeOrderPreservation is the property hashing lacks: contiguous
// key intervals map to contiguous shard runs, so a scan narrower than a
// span fences exactly one shard.
func TestRangeOrderPreservation(t *testing.T) {
	const universe = 1 << 12
	p := NewRange(4, universe) // spans of 1024 keys each
	for _, tc := range []struct {
		lo, hi uint64
		want   []int
	}{
		{0, 0, []int{0}},
		{100, 200, []int{0}},
		{1023, 1024, []int{0, 1}},
		{1024, 2047, []int{1}},
		{0, universe - 1, []int{0, 1, 2, 3}},
		{3000, 100000, []int{2, 3}},
		{universe, ^uint64(0), []int{3}},
	} {
		got := p.OwnersInRange(tc.lo, tc.hi)
		if len(got) != len(tc.want) {
			t.Fatalf("OwnersInRange(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("OwnersInRange(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
			}
		}
	}
	if got := p.OwnersInRange(5, 2); got != nil {
		t.Fatalf("inverted range = %v, want nil", got)
	}
	// The hash ring, by contrast, scatters even a narrow interval.
	r := New(4)
	if got := r.OwnersInRange(100, 200); len(got) <= 1 {
		t.Fatalf("hash ring localized a 100-key interval to %v — order preservation for free?", got)
	}
	if got := r.OwnersInRange(7, 7); len(got) != 1 || got[0] != r.Owner(7) {
		t.Fatalf("single-key interval = %v, want exactly its owner %d", got, r.Owner(7))
	}
}

// TestRangeGrowMinimalMovement checks the N→N+1 contract: growth splits
// one span, and every key either keeps its owner or moves to the new
// shard.
func TestRangeGrowMinimalMovement(t *testing.T) {
	const universe = 1 << 12
	for _, n := range []int{1, 2, 4, 7} {
		old := NewRange(n, universe)
		grown := old.Grow()
		if got := grown.Shards(); got != n+1 {
			t.Fatalf("Grow from %d shards yielded %d", n, got)
		}
		moved := 0
		for k := uint64(0); k < universe; k++ {
			a, b := old.Owner(k), grown.Owner(k)
			if a != b {
				moved++
				if b != n {
					t.Fatalf("n=%d→%d: key %d moved %d→%d, not to the new shard", n, n+1, k, a, b)
				}
			}
		}
		if moved == 0 || moved > universe/2 {
			t.Errorf("n=%d→%d: %d of %d keys moved", n, n+1, moved, universe)
		}
	}
}

// TestRangeSplitHeaviest checks the rebalance step: the shard with the
// largest op counter is the one whose span gets cut, the new shard takes
// the upper half of it, and nothing else moves.
func TestRangeSplitHeaviest(t *testing.T) {
	const universe = 1 << 12
	p := NewRange(4, universe)
	load := []uint64{10, 900, 20, 30} // shard 1 is hot
	grown, split, ok := p.SplitHeaviest(load)
	if !ok || split != 1 {
		t.Fatalf("SplitHeaviest = (split=%d, ok=%v), want shard 1", split, ok)
	}
	if grown.Shards() != 5 {
		t.Fatalf("grown shards = %d, want 5", grown.Shards())
	}
	for k := uint64(0); k < universe; k++ {
		a, b := p.Owner(k), grown.Owner(k)
		if a == b {
			continue
		}
		if a != 1 || b != 4 {
			t.Fatalf("key %d moved %d→%d; only shard 1's upper half may move, to shard 4", k, a, b)
		}
		// Shard 1's span is [1024, 2048); its upper half starts at 1536.
		if k < 1536 || k >= 2048 {
			t.Fatalf("key %d outside the split half moved", k)
		}
	}
	// Determinism: the same counters produce the same plan.
	again, split2, ok2 := p.SplitHeaviest(load)
	if !ok2 || split2 != split {
		t.Fatalf("rebalance not deterministic: split %d vs %d", split, split2)
	}
	as, ao := again.Spans()
	gs, go_ := grown.Spans()
	for i := range gs {
		if as[i] != gs[i] || ao[i] != go_[i] {
			t.Fatalf("rebalance plans differ at span %d", i)
		}
	}
	if _, _, ok := p.SplitHeaviest(nil); ok {
		t.Fatal("SplitHeaviest with no counters reported ok")
	}
}

// TestNewRangeFromSpans covers the explicit-boundary constructor's
// validation: the fuzzer and rebalance plans go through it.
func TestNewRangeFromSpans(t *testing.T) {
	if _, err := NewRangeFromSpans([]uint64{0, 100, 200}, []int{0, 1, 0}, 0); err != nil {
		t.Fatalf("valid span set rejected: %v", err)
	}
	for _, bad := range []struct {
		starts []uint64
		owners []int
	}{
		{nil, nil},                          // empty
		{[]uint64{1, 2}, []int{0, 1}},       // does not start at 0
		{[]uint64{0, 5, 5}, []int{0, 1, 2}}, // not strictly ascending
		{[]uint64{0, 5}, []int{0}},          // length mismatch
		{[]uint64{0, 5}, []int{0, 2}},       // shard 1 unreachable
		{[]uint64{0, 5}, []int{0, -1}},      // negative owner
	} {
		if _, err := NewRangeFromSpans(bad.starts, bad.owners, 0); err == nil {
			t.Errorf("NewRangeFromSpans(%v, %v) accepted", bad.starts, bad.owners)
		}
	}
}

// TestNewPartitioner covers the kind dispatcher both seams build from.
func TestNewPartitioner(t *testing.T) {
	h, err := NewPartitioner(KindHash, 4, 0)
	if err != nil || h.Kind() != KindHash || h.Shards() != 4 {
		t.Fatalf("hash: %v %v", h, err)
	}
	r, err := NewPartitioner(KindRange, 4, 1<<14)
	if err != nil || r.Kind() != KindRange || r.Shards() != 4 {
		t.Fatalf("range: %v %v", r, err)
	}
	if d, err := NewPartitioner("", 2, 0); err != nil || d.Kind() != KindHash {
		t.Fatalf("default kind: %v %v", d, err)
	}
	if _, err := NewPartitioner("zorp", 2, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
