// Datastructures: a transactional sorted set (skip-list style) built on the
// public API, exercised under contrasting operation mixes to show how the
// best configuration flips — the motivation behind ProteusTM (Fig. 1 of the
// paper).
//
//	go run ./examples/datastructures
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	proteustm "repro"
)

const (
	workers  = 8
	keyRange = 1 << 12
)

// node layout: key, next (a tiny sorted linked set — deliberately simple;
// the in-repo benchmarks implement the full structures).
type set struct {
	sys  *proteustm.System
	head proteustm.Addr
	pool proteustm.Addr // free-list head
}

func newSet(sys *proteustm.System) *set {
	return &set{sys: sys, head: sys.MustAlloc(2), pool: sys.MustAlloc(1)}
}

func (s *set) insert(tx proteustm.Txn, k uint64) {
	prev := s.head
	cur := proteustm.Addr(tx.Load(prev + 1))
	for cur != proteustm.NilAddr && tx.Load(cur) < k {
		prev = cur
		cur = proteustm.Addr(tx.Load(cur + 1))
	}
	if cur != proteustm.NilAddr && tx.Load(cur) == k {
		return
	}
	n := proteustm.Addr(tx.Load(s.pool))
	if n != proteustm.NilAddr {
		tx.Store(s.pool, tx.Load(n+1)) // pop recycled node
	} else {
		n = s.sys.MustAlloc(2)
	}
	tx.Store(n, k)
	tx.Store(n+1, uint64(cur))
	tx.Store(prev+1, uint64(n))
}

func (s *set) remove(tx proteustm.Txn, k uint64) {
	prev := s.head
	cur := proteustm.Addr(tx.Load(prev + 1))
	for cur != proteustm.NilAddr && tx.Load(cur) < k {
		prev = cur
		cur = proteustm.Addr(tx.Load(cur + 1))
	}
	if cur == proteustm.NilAddr || tx.Load(cur) != k {
		return
	}
	tx.Store(prev+1, tx.Load(cur+1))
	tx.Store(cur+1, tx.Load(s.pool)) // recycle
	tx.Store(s.pool, uint64(cur))
}

func (s *set) contains(tx proteustm.Txn, k uint64) bool {
	cur := proteustm.Addr(tx.Load(s.head + 1))
	for cur != proteustm.NilAddr && tx.Load(cur) < k {
		cur = proteustm.Addr(tx.Load(cur + 1))
	}
	return cur != proteustm.NilAddr && tx.Load(cur) == k
}

func main() {
	sys, err := proteustm.Open(
		proteustm.WithWorkers(workers),
		proteustm.WithHeapWords(1<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	s := newSet(sys)

	// Pre-populate via worker 0.
	w0, _ := sys.Worker(0)
	for k := uint64(1); k < 256; k += 2 {
		kk := k
		w0.Atomic(func(tx proteustm.Txn) { s.insert(tx, kk) })
	}

	mixes := []struct {
		name      string
		updatePct int
		span      uint64 // key span actually exercised
	}{
		{"read-dominated, wide", 2, 256},
		{"update-heavy, narrow", 60, 48},
	}
	configs := []proteustm.Config{
		{Alg: proteustm.NOrec, Threads: 1},
		{Alg: proteustm.NOrec, Threads: workers},
		{Alg: proteustm.TinySTM, Threads: workers},
		{Alg: proteustm.HTM, Threads: workers, Budget: 8},
	}

	for _, mix := range mixes {
		fmt.Printf("\n%s:\n", mix.name)
		for _, cfg := range configs {
			if err := sys.SetConfig(cfg); err != nil {
				log.Fatal(err)
			}
			var ops atomic.Uint64
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wk, _ := sys.Worker(w)
				wg.Add(1)
				go func(wk *proteustm.Worker, seed uint64) {
					defer wg.Done()
					rng := seed
					for !stop.Load() {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						k := rng%mix.span + 1
						switch {
						case int(rng%100) < mix.updatePct/2:
							wk.Atomic(func(tx proteustm.Txn) { s.insert(tx, k) })
						case int(rng%100) < mix.updatePct:
							wk.Atomic(func(tx proteustm.Txn) { s.remove(tx, k) })
						default:
							wk.Atomic(func(tx proteustm.Txn) { s.contains(tx, k) })
						}
						ops.Add(1)
					}
				}(wk, uint64(w+3))
			}
			time.Sleep(400 * time.Millisecond)
			rate := float64(ops.Load()) / 0.4
			// Re-open all slots so parked workers can exit.
			full := cfg
			full.Threads = workers
			if err := sys.SetConfig(full); err != nil {
				log.Fatal(err)
			}
			stop.Store(true)
			wg.Wait()
			fmt.Printf("  %-22s %12.0f ops/s\n", cfg.String(), rate)
		}
	}
	fmt.Println("\nNote how the ranking flips between the two mixes.")
}
