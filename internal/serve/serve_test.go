package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	proteustm "repro"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.HeapWords == 0 {
		opts.HeapWords = 1 << 18
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func get(t *testing.T, url string) (int, response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var r response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode, r
}

// TestStoreRoundTrip exercises every operation kind through the HTTP
// surface on a single-connection client.
func TestStoreRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{Preload: 64})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, r := get(t, ts.URL+"/kv/get?key=7"); code != 200 || !r.Found || r.Val != 7 {
		t.Fatalf("preloaded get = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/put?key=100&val=41"); code != 200 || !r.Applied || r.Existed {
		t.Fatalf("put = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/cas?key=100&old=41&new=42"); code != 200 || !r.Applied || r.Val != 42 {
		t.Fatalf("cas = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/cas?key=100&old=41&new=43"); code != 200 || r.Applied {
		t.Fatalf("stale cas applied = %d %+v", code, r)
	}
	// Preload is keys 0..63 (val=key); key 100 holds 42.
	if code, r := get(t, ts.URL+"/kv/range?lo=0&hi=200"); code != 200 || r.Count != 65 {
		t.Fatalf("range = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/del?key=100"); code != 200 || !r.Applied {
		t.Fatalf("del = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/get?key=100"); code != 200 || r.Found {
		t.Fatalf("get after del = %d %+v", code, r)
	}
	for i, v := range []uint64{10, 20, 30} {
		url := fmt.Sprintf("%s/list/rpush?val=%d", ts.URL, v)
		if i == 1 {
			url = fmt.Sprintf("%s/list/lpush?val=%d", ts.URL, v)
		}
		if code, r := get(t, url); code != 200 || !r.Applied {
			t.Fatalf("push = %d %+v", code, r)
		}
	}
	// Deque now: [20, 10, 30].
	if code, r := get(t, ts.URL+"/list/len"); code != 200 || r.Len != 3 {
		t.Fatalf("len = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/list/lpop"); code != 200 || !r.Found || r.Val != 20 {
		t.Fatalf("lpop = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/list/rpop"); code != 200 || !r.Found || r.Val != 30 {
		t.Fatalf("rpop = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/get?key=nope"); code != 400 || r.Err == "" {
		t.Fatalf("bad param = %d %+v", code, r)
	}
	if code, r := get(t, ts.URL+"/kv/range?lo=9&hi=3"); code != 400 || r.Err == "" {
		t.Fatalf("inverted range = %d %+v", code, r)
	}
}

// TestConcurrentSmoke hammers the service from many client goroutines
// while the configuration is being switched underneath it — the race
// detector's view of the admission queue, the drain protocol and the
// statusz snapshot path.
func TestConcurrentSmoke(t *testing.T) {
	s := newTestServer(t, Options{Preload: 256, QueueDepth: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 8
	const opsPerClient = 150
	var ok, rejected atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				k := (c*opsPerClient + i) % 512
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("%s/kv/get?key=%d", ts.URL, k)
				case 1:
					url = fmt.Sprintf("%s/kv/put?key=%d&val=%d", ts.URL, k, i)
				case 2:
					url = fmt.Sprintf("%s/kv/range?lo=%d&hi=%d", ts.URL, k, k+64)
				default:
					url = fmt.Sprintf("%s/list/rpush?val=%d", ts.URL, i)
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
				}
			}
		}(c)
	}
	// Concurrently shrink and grow the parallelism degree and switch
	// algorithms, exercising the graceful-drain hook under load.
	configs := []proteustm.Config{
		{Alg: proteustm.NOrec, Threads: 1},
		{Alg: proteustm.TL2, Threads: 4},
		{Alg: proteustm.GlobalLock, Threads: 2},
		{Alg: proteustm.SwissTM, Threads: 4},
	}
	stop := make(chan struct{})
	var cfgWg sync.WaitGroup
	cfgWg.Add(1)
	go func() {
		defer cfgWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if err := s.sys.SetConfig(configs[i%len(configs)]); err != nil {
				t.Errorf("SetConfig: %v", err)
			}
		}
	}()
	wg.Wait()
	close(stop)
	cfgWg.Wait()

	if got := ok.Load() + rejected.Load(); got != clients*opsPerClient {
		t.Fatalf("accounted %d of %d requests", got, clients*opsPerClient)
	}
	st := s.StatusSnapshot()
	if st.Ops.Total != ok.Load() {
		t.Fatalf("served total %d, client-observed %d", st.Ops.Total, ok.Load())
	}
	if st.TM.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

// TestAdmissionOverflow checks the 429 path: with no workers draining the
// queue, QueueDepth admissions are accepted and the next is rejected
// immediately rather than stalling.
func TestAdmissionOverflow(t *testing.T) {
	s, err := newServer(Options{Workers: 2, QueueDepth: 4, HeapWords: 1 << 18})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	// Fill the queue from goroutines: submit blocks until a worker
	// replies, so park each submission's reply in its own goroutine.
	var wg sync.WaitGroup
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := s.submit(&request{op: opGet, key: uint64(i)})
			codes <- code
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan int, 1)
	go func() {
		_, code := s.submit(&request{op: opGet, key: 99})
		done <- code
	}()
	select {
	case code := <-done:
		if code != http.StatusTooManyRequests {
			t.Fatalf("overflow submit = HTTP %d, want 429", code)
		}
	case <-time.After(time.Second):
		t.Fatal("overflow submit stalled instead of returning 429")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// Start the workers; the four parked submissions must all complete.
	s.startWorkers()
	wg.Wait()
	for i := 0; i < 4; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("parked submission = HTTP %d, want 200", code)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestGracefulDrainNoStall pins the drain protocol: shrinking the
// parallelism degree to 1 mid-burst must not strand any request — every
// submission completes even though most worker slots park.
func TestGracefulDrainNoStall(t *testing.T) {
	s := newTestServer(t, Options{Workers: 8, Preload: 128, QueueDepth: 512})
	var wg sync.WaitGroup
	var completed atomic.Uint64
	const n = 400
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := s.submit(&request{op: opGet, key: uint64(i % 128)})
			if code == http.StatusOK {
				completed.Add(1)
			}
		}(i)
		if i == n/2 {
			if err := s.sys.SetConfig(proteustm.Config{Alg: proteustm.NOrec, Threads: 1}); err != nil {
				t.Fatalf("shrink: %v", err)
			}
		}
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("requests stranded after shrink to 1 thread")
	}
	if rej := s.rejected.Load(); completed.Load()+rej != n {
		t.Fatalf("completed %d + rejected %d != %d", completed.Load(), rej, n)
	}
}

// jsonKeyPaths flattens a decoded JSON document into sorted dotted key
// paths; array elements contribute their first element's schema under [].
func jsonKeyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			jsonKeyPaths(p, sub, out)
		}
	case []any:
		if len(x) > 0 {
			jsonKeyPaths(prefix+"[]", x[0], out)
		}
	}
}

// TestStatuszSchema pins the /statusz document schema (the operator
// interface documented in docs/serving.md) against a golden file. Run
// with UPDATE_GOLDEN=1 to regenerate after intentional changes.
func TestStatuszSchema(t *testing.T) {
	s := newTestServer(t, Options{
		Workers:      4,
		Preload:      256,
		AutoTune:     true,
		SamplePeriod: 10 * time.Millisecond,
		Seed:         7,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Generate some traffic and wait until the adapter has completed at
	// least one phase and logged timeline points, so the array schemas
	// are populated.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for k := 0; k < 32; k++ {
			resp, err := http.Get(fmt.Sprintf("%s/kv/put?key=%d&val=%d", ts.URL, k, k))
			if err != nil {
				t.Fatalf("traffic: %v", err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
			resp.Body.Close()
		}
		st := s.StatusSnapshot()
		if len(st.Reconfigurations) > 0 && len(st.Timeline) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("adapter never produced a reconfiguration + timeline point")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatalf("statusz: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	paths := map[string]bool{}
	jsonKeyPaths("", doc, paths)
	// Per-op counters are data, not schema.
	for p := range paths {
		if strings.HasPrefix(p, "ops.served.") {
			delete(paths, p)
		}
	}
	keys := make([]string, 0, len(paths))
	for p := range paths {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	const golden = "testdata/statusz_schema.golden"
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
	}
	if got != string(want) {
		t.Errorf("/statusz schema drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s", golden, got, want)
	}
}

// TestParsePhases covers the loadgen phase-spec syntax.
func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases("read-heavy:5s, write-heavy:500ms,scan:3s")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 || phases[0].Mix.Name != "read-heavy" || phases[1].Duration != 500*time.Millisecond {
		t.Fatalf("got %+v", phases)
	}
	for _, bad := range []string{"", "nope:5s", "read-heavy", "read-heavy:xyz", "read-heavy:-1s"} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) accepted", bad)
		}
	}
}

// TestLoadgenAgainstServer runs a miniature in-process loadgen session —
// the same code path the CLI uses — against an auto-tuning server.
func TestLoadgenAgainstServer(t *testing.T) {
	s := newTestServer(t, Options{
		Workers:      4,
		Preload:      512,
		AutoTune:     true,
		SamplePeriod: 20 * time.Millisecond,
		Seed:         3,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	phases, err := ParsePhases("read-heavy:300ms,write-heavy:300ms")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoadgen(LoadgenOptions{
		BaseURL:  ts.URL,
		Conns:    4,
		Phases:   phases,
		KeyRange: 512,
		Span:     64,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Total.Ops == 0 {
		t.Fatal("loadgen completed no operations")
	}
	if report.DaemonCommits == 0 {
		t.Fatal("daemon recorded no commits")
	}
	if len(report.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(report.Phases))
	}
	if report.Total.LatencyMs.Count == 0 || report.Total.LatencyMs.P50 <= 0 {
		t.Fatalf("latency summary empty: %+v", report.Total.LatencyMs)
	}
}
