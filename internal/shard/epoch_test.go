package shard

import "testing"

func TestEpochedInstallAdvances(t *testing.T) {
	p0 := NewRange(2, 1<<20)
	e := NewEpoched(p0)
	if got, epoch := e.Load(); got != Partitioner(p0) || epoch != 0 {
		t.Fatalf("fresh Epoched = (%v, %d), want (p0, 0)", got, epoch)
	}
	p1 := p0.Grow()
	if got := e.Install(p1); got != 1 {
		t.Fatalf("first Install returned epoch %d, want 1", got)
	}
	got, epoch := e.Load()
	if got != Partitioner(p1) || epoch != 1 {
		t.Fatalf("after install: (%v, %d), want (p1, 1)", got, epoch)
	}
	if e.Epoch() != 1 {
		t.Fatalf("Epoch() = %d, want 1", e.Epoch())
	}
	if got := e.Install(p0); got != 2 {
		t.Fatalf("second Install returned epoch %d, want 2", got)
	}
}

func TestPlanSplitHeaviestMatchesSplitHeaviest(t *testing.T) {
	p := NewRange(3, 3<<20)
	load := []uint64{10, 500, 20}
	plan, ok := p.PlanSplitHeaviest(load)
	if !ok {
		t.Fatal("PlanSplitHeaviest = ok=false on splittable load")
	}
	grown, split, ok2 := p.SplitHeaviest(load)
	if !ok2 || split != plan.Donor {
		t.Fatalf("SplitHeaviest donor %d vs plan donor %d", split, plan.Donor)
	}
	if plan.NewShard != p.Shards() {
		t.Fatalf("plan.NewShard = %d, want %d", plan.NewShard, p.Shards())
	}
	if plan.Grown.Shards() != p.Shards()+1 {
		t.Fatalf("grown shards = %d, want %d", plan.Grown.Shards(), p.Shards()+1)
	}
	// The plan's grown placement must agree with SplitHeaviest's on every
	// boundary.
	ps, po := plan.Grown.Spans()
	gs, go_ := grown.Spans()
	if len(ps) != len(gs) {
		t.Fatalf("span count %d vs %d", len(ps), len(gs))
	}
	for i := range ps {
		if ps[i] != gs[i] || po[i] != go_[i] {
			t.Fatalf("span %d: plan (%d,%d) vs SplitHeaviest (%d,%d)", i, ps[i], po[i], gs[i], go_[i])
		}
	}
}

// TestPlanSplitHeaviestMovedSpan pins the moved interval: every key in
// [MovedLo, MovedHi] is owned by NewShard under Grown, and the keys just
// outside it keep their old owner.
func TestPlanSplitHeaviestMovedSpan(t *testing.T) {
	for _, tc := range []struct {
		name     string
		shards   int
		universe uint64
		load     []uint64
	}{
		{"middle-span", 4, 1 << 20, []uint64{1, 900, 2, 3}},
		{"top-span", 2, 1 << 16, []uint64{1, 900}},
		{"single-shard", 1, 1 << 10, []uint64{7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewRange(tc.shards, tc.universe)
			plan, ok := p.PlanSplitHeaviest(tc.load)
			if !ok {
				t.Fatal("ok=false on splittable placement")
			}
			if plan.MovedHi < plan.MovedLo {
				t.Fatalf("inverted moved span [%d, %d]", plan.MovedLo, plan.MovedHi)
			}
			for _, k := range []uint64{plan.MovedLo, plan.MovedHi, plan.MovedLo + (plan.MovedHi-plan.MovedLo)/2} {
				if o := plan.Grown.Owner(k); o != plan.NewShard {
					t.Fatalf("key %d in moved span owned by %d, want new shard %d", k, o, plan.NewShard)
				}
				if o := p.Owner(k); o != plan.Donor {
					t.Fatalf("key %d was owned by %d, want donor %d", k, o, plan.Donor)
				}
			}
			if plan.MovedLo > 0 {
				k := plan.MovedLo - 1
				if plan.Grown.Owner(k) != p.Owner(k) {
					t.Fatalf("key %d below moved span changed owner", k)
				}
			}
			if plan.MovedHi < ^uint64(0) {
				k := plan.MovedHi + 1
				if plan.Grown.Owner(k) != p.Owner(k) {
					t.Fatalf("key %d above moved span changed owner", k)
				}
			}
		})
	}
}

// TestPlanSplitHeaviestNoOp pins the explicit no-op contract: all-zero
// load, empty load, and an un-splittable heaviest span all report
// ok=false instead of yielding a degenerate plan.
func TestPlanSplitHeaviestNoOp(t *testing.T) {
	p := NewRange(2, 1<<20)
	if _, ok := p.PlanSplitHeaviest(nil); ok {
		t.Fatal("empty load produced a plan")
	}
	if _, ok := p.PlanSplitHeaviest([]uint64{0, 0}); ok {
		t.Fatal("all-zero load produced a plan")
	}
	// A heaviest shard whose only span is a single key cannot split.
	narrow, err := NewRangeFromSpans([]uint64{0, 1}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := narrow.PlanSplitHeaviest([]uint64{900, 1}); ok {
		t.Fatal("un-splittable heaviest span produced a plan")
	}
}
