package experiments

import (
	"fmt"
	"io"

	"repro/internal/cf"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/rectm"
	"repro/internal/smbo"
)

// Fig6Result reproduces Fig. 6: the Cautious early-stop predicate versus the
// Naive one across the ε threshold, reporting the DFO distribution (mean,
// median, 90th percentile) and the exploration cost.
type Fig6Result struct {
	Epsilons []float64
	// Panels: [rule][epsilon] with rule 0 = Naive, 1 = Cautious, on the
	// two (machine, KPI) pairs of the paper.
	EDPA  Fig6Panel // Fig. 6a: EDP, Machine A
	ExecB Fig6Panel // Fig. 6b: exec time, Machine B
}

// Fig6Panel is one subfigure.
type Fig6Panel struct {
	Mean, Median, P90 [2][]float64
	Explorations      [2][]float64
}

// Fig6 runs the experiment.
func Fig6(scale Scale) (Fig6Result, error) {
	res := Fig6Result{Epsilons: []float64{0.01, 0.05, 0.10, 0.15}}
	a, err := fig6Sweep(machine.A(), perfmodel.EDP, scale, res.Epsilons)
	if err != nil {
		return res, err
	}
	res.EDPA = a
	b, err := fig6Sweep(machine.B(), perfmodel.ExecTime, scale, res.Epsilons)
	if err != nil {
		return res, err
	}
	res.ExecB = b
	return res, nil
}

func fig6Sweep(prof machine.Profile, kind perfmodel.KPIKind, scale Scale, epsilons []float64) (Fig6Panel, error) {
	panel := Fig6Panel{}
	_, ws, truth := truthFor(prof, scale.workloadCount(), kind, 555)
	train, test, _, _ := splitRows(truth, ws, 0.3)
	rec, err := rectm.Train(train, kind.HigherIsBetter(), rectm.Options{
		Predictor: func() cf.Predictor { return &cf.KNN{K: 10, Sim: cf.Cosine} },
		Learners:  10,
		Seed:      17,
	})
	if err != nil {
		return panel, fmt.Errorf("fig6: %w", err)
	}
	hib := kind.HigherIsBetter()
	rules := []smbo.StopRule{smbo.StopNaive, smbo.StopCautious}
	for ri, rule := range rules {
		for _, eps := range epsilons {
			var dfos, expl []float64
			for u := 0; u < test.Rows; u++ {
				row := test.Data[u]
				opt := rec.Optimize(func(i int) float64 { return row[i] }, nil, smbo.Options{
					Policy:  smbo.EI,
					Stop:    rule,
					Epsilon: eps,
					Seed:    uint64(u) * 7,
				})
				dfos = append(dfos, metrics.DFO(row, opt.Best, hib))
				expl = append(expl, float64(len(opt.Explored)))
			}
			panel.Mean[ri] = append(panel.Mean[ri], metrics.Mean(dfos))
			panel.Median[ri] = append(panel.Median[ri], metrics.Median(dfos))
			panel.P90[ri] = append(panel.P90[ri], metrics.Percentile(dfos, 90))
			panel.Explorations[ri] = append(panel.Explorations[ri], metrics.Mean(expl))
		}
	}
	return panel, nil
}

// Print renders both panels.
func (r Fig6Result) Print(w io.Writer) {
	header(w, "Figure 6: early-stop predicates (Cautious vs Naive)")
	panels := []struct {
		name  string
		panel Fig6Panel
	}{
		{"Fig. 6a — DFO vs ε (EDP, Machine A)", r.EDPA},
		{"Fig. 6b — DFO vs ε (exec time, Machine B)", r.ExecB},
	}
	rules := []string{"Naive", "Cautious"}
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s\n", p.name)
		fmt.Fprintf(w, "%-10s%-10s%10s%10s%10s%10s\n", "rule", "eps", "mean", "median", "p90", "expl")
		for ri, rule := range rules {
			for ei, eps := range r.Epsilons {
				fmt.Fprintf(w, "%-10s%-10.2f%10.3f%10.3f%10.3f%10.1f\n", rule, eps,
					p.panel.Mean[ri][ei], p.panel.Median[ri][ei], p.panel.P90[ri][ei],
					p.panel.Explorations[ri][ei])
			}
		}
	}
	fmt.Fprintln(w, "\nShape check: Cautious ≤ Naive at equal ε; DFO shrinks as ε shrinks.")
}
