// Package metrics implements the two accuracy metrics of the paper's
// evaluation (§6.1) plus distribution helpers: MAPE (how well the CF learner
// predicts raw performance) and MDFO (how far the recommended configuration
// is from the true optimum), with CDF/percentile utilities for the
// Fig. 5b/Fig. 7 style plots, and the serving-side observation primitives
// (Reservoir, Summary) proteusd's /statusz endpoint is built on.
package metrics

import (
	"math"
	"sort"
	"sync"
)

// MAPE is the Mean Absolute Percentage Error Σ |r − r̂| / r over a set of
// (true, predicted) pairs. Pairs with missing predictions or zero truth are
// skipped.
func MAPE(truth, pred []float64) float64 {
	sum, n := 0.0, 0
	for i := range truth {
		t := truth[i]
		if i >= len(pred) {
			break
		}
		p := pred[i]
		if math.IsNaN(t) || math.IsNaN(p) || t == 0 {
			continue
		}
		sum += math.Abs(t-p) / math.Abs(t)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// DFO is the Distance From Optimum of a chosen configuration for one
// workload: |kpi(opt) − kpi(chosen)| / kpi(opt), computed on the true KPI
// row. higherIsBetter selects the optimum's orientation.
func DFO(kpiRow []float64, chosen int, higherIsBetter bool) float64 {
	opt := OptimumIndex(kpiRow, higherIsBetter)
	if opt < 0 || chosen < 0 || chosen >= len(kpiRow) || math.IsNaN(kpiRow[chosen]) {
		return math.NaN()
	}
	o := kpiRow[opt]
	if o == 0 {
		return math.NaN()
	}
	return math.Abs(o-kpiRow[chosen]) / math.Abs(o)
}

// OptimumIndex returns the index of the best known KPI in the row.
func OptimumIndex(kpiRow []float64, higherIsBetter bool) int {
	best, idx := math.NaN(), -1
	for i, v := range kpiRow {
		if math.IsNaN(v) {
			continue
		}
		if idx < 0 || (higherIsBetter && v > best) || (!higherIsBetter && v < best) {
			best, idx = v, i
		}
	}
	return idx
}

// Mean returns the arithmetic mean of the non-NaN values.
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Percentile returns the p-th percentile (p in [0,100]) of the non-NaN
// values using nearest-rank interpolation.
func Percentile(xs []float64, p float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	if p <= 0 {
		return clean[0]
	}
	if p >= 100 {
		return clean[len(clean)-1]
	}
	rank := p / 100 * float64(len(clean)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return clean[lo]
	}
	frac := rank - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability
}

// Reservoir is a concurrency-safe sliding window over the most recent
// observations (request latencies, batch sizes, ...). Once full it
// overwrites oldest-first, so Snapshot always reflects recent behaviour
// rather than the whole process lifetime. The zero value is unusable; use
// NewReservoir.
type Reservoir struct {
	mu  sync.Mutex
	buf []float64
	pos int
	n   uint64
}

// NewReservoir creates a reservoir holding up to capacity observations
// (capacity is clamped to at least 1).
func NewReservoir(capacity int) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{buf: make([]float64, 0, capacity)}
}

// Observe records one observation.
func (r *Reservoir) Observe(x float64) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, x)
	} else {
		r.buf[r.pos] = x
		r.pos = (r.pos + 1) % cap(r.buf)
	}
	r.n++
	r.mu.Unlock()
}

// Count returns the total number of observations ever recorded (not just
// those still in the window).
func (r *Reservoir) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns a copy of the current window, in no particular order.
func (r *Reservoir) Snapshot() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.buf))
	copy(out, r.buf)
	return out
}

// Quantile returns the p-th percentile (p in [0,100]) of the current
// window, or 0 for an empty window. It copies and sorts the window under
// the hood, so hot paths should sample it at a bounded rate (the serving
// layer's latency-shed gate caches it) rather than per request.
func (r *Reservoir) Quantile(p float64) float64 {
	xs := r.Snapshot()
	if len(xs) == 0 {
		return 0
	}
	return Percentile(xs, p)
}

// Summary is a compact distribution summary of a set of observations.
type Summary struct {
	// Count is the number of summarized observations.
	Count int `json:"count"`
	// Mean is the arithmetic mean.
	Mean float64 `json:"mean"`
	// P50, P95 and P99 are percentiles; Max is the largest observation.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Summarize computes a Summary over the non-NaN values. An empty input
// yields the zero Summary (all fields 0), which keeps JSON encodings of
// idle services well-formed.
func Summarize(xs []float64) Summary {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return Summary{}
	}
	return Summary{
		Count: len(clean),
		Mean:  Mean(clean),
		P50:   Percentile(clean, 50),
		P95:   Percentile(clean, 95),
		P99:   Percentile(clean, 99),
		Max:   Percentile(clean, 100),
	}
}

// CDF returns the empirical CDF of the non-NaN values.
func CDF(xs []float64) []CDFPoint {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	sort.Float64s(clean)
	out := make([]CDFPoint, len(clean))
	for i, v := range clean {
		out[i] = CDFPoint{X: v, P: float64(i+1) / float64(len(clean))}
	}
	return out
}
