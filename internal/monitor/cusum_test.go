package monitor_test

import (
	"math"
	"testing"

	"repro/internal/monitor"
)

// feed pushes a constant-plus-noise signal and returns whether any alarm
// fired.
func feed(c *monitor.CUSUM, level float64, n int, seed *uint64) bool {
	alarm := false
	for i := 0; i < n; i++ {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		noise := float64(int64(*seed>>40)%100)/100*0.04 - 0.02 // ±2 %
		if c.Observe(level * (1 + noise)) {
			alarm = true
		}
	}
	return alarm
}

// TestNoFalseAlarmsOnStableSignal: a stationary noisy signal must not
// trigger.
func TestNoFalseAlarmsOnStableSignal(t *testing.T) {
	c := monitor.NewCUSUM()
	seed := uint64(42)
	if feed(c, 1000, 500, &seed) {
		t.Error("false alarm on stable signal")
	}
}

// TestDetectsAbruptDrop: a 40 % throughput drop must alarm quickly.
func TestDetectsAbruptDrop(t *testing.T) {
	c := monitor.NewCUSUM()
	seed := uint64(7)
	feed(c, 1000, 100, &seed)
	alarmAt := -1
	for i := 0; i < 50; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		noise := float64(int64(seed>>40)%100)/100*0.04 - 0.02
		if c.Observe(600 * (1 + noise)) {
			alarmAt = i
			break
		}
	}
	if alarmAt < 0 {
		t.Fatal("abrupt 40% drop never detected")
	}
	if alarmAt > 20 {
		t.Errorf("detection took %d samples; want prompt detection", alarmAt)
	}
}

// TestDetectsAbruptRise: improvement is also a behaviour change (the
// optimum may have moved).
func TestDetectsAbruptRise(t *testing.T) {
	c := monitor.NewCUSUM()
	seed := uint64(9)
	feed(c, 1000, 100, &seed)
	if !feed(c, 1700, 50, &seed) {
		t.Error("abrupt 70% rise never detected")
	}
}

// TestDetectsSmoothDrift: a slow drift must eventually alarm (adaptive
// CUSUM's selling point vs simple thresholding).
func TestDetectsSmoothDrift(t *testing.T) {
	c := monitor.NewCUSUM()
	seed := uint64(11)
	feed(c, 1000, 100, &seed)
	level := 1000.0
	alarmed := false
	for i := 0; i < 300; i++ {
		level *= 0.997 // −0.3 % per sample
		seed = seed*6364136223846793005 + 1442695040888963407
		noise := float64(int64(seed>>40)%100)/100*0.04 - 0.02
		if c.Observe(level * (1 + noise)) {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Error("smooth drift to 40% of original level never detected")
	}
}

// TestResetReanchors: after Reset, the detector accepts the new level.
func TestResetReanchors(t *testing.T) {
	c := monitor.NewCUSUM()
	seed := uint64(13)
	feed(c, 1000, 100, &seed)
	c.Reset(500)
	if feed(c, 500, 200, &seed) {
		t.Error("false alarm after Reset onto the new level")
	}
	if c.Alarms() != 0 {
		t.Errorf("alarms = %d, want 0", c.Alarms())
	}
}

// TestIgnoresNonFinite: NaN/Inf samples must be ignored.
func TestIgnoresNonFinite(t *testing.T) {
	c := monitor.NewCUSUM()
	seed := uint64(17)
	feed(c, 100, 50, &seed)
	if c.Observe(math.NaN()) {
		t.Error("alarm on NaN")
	}
}

// TestBandSuppressesCloseLevels: alternating between two KPI levels inside
// the hysteresis band must not alarm — that is exactly the flip-flop
// between near-equal configurations the band exists to kill — while a
// detector with the gates disabled churns on the same signal.
func TestBandSuppressesCloseLevels(t *testing.T) {
	gated := monitor.NewCUSUM()
	gated.Band = 0.05
	raw := monitor.NewCUSUM()
	raw.MinDwell = 0
	raw.Band = 0

	gs, rs := uint64(21), uint64(21)
	gAlarms, rAlarms := 0, 0
	// Ten "phases" flapping between 1000 and 1025 (a 2.5% shift).
	for p := 0; p < 10; p++ {
		level := 1000.0
		if p%2 == 1 {
			level = 1025
		}
		if feed(gated, level, 30, &gs) {
			gAlarms++
		}
		if feed(raw, level, 30, &rs) {
			rAlarms++
		}
	}
	if gAlarms != 0 {
		t.Errorf("banded detector alarmed %d times on sub-band flapping, want 0", gAlarms)
	}
	if rAlarms == 0 {
		t.Error("ungated control never alarmed; the flapping signal is too tame to exercise the band")
	}
	if gated.Suppressed() == 0 {
		t.Error("band gate never engaged (Suppressed() == 0); the raw alarm condition never fired")
	}
}

// TestBandStillDetectsLargeShift: the band must not mask a level change
// that clears it.
func TestBandStillDetectsLargeShift(t *testing.T) {
	c := monitor.NewCUSUM()
	c.Band = 0.05
	seed := uint64(23)
	feed(c, 1000, 100, &seed)
	if !feed(c, 800, 50, &seed) {
		t.Error("20% drop never detected with a 5% band")
	}
}

// TestMinDwellDelaysButKeepsAlarm: a genuine change arriving right after a
// re-anchor must still alarm — after the dwell expires, not never.
func TestMinDwellDelaysButKeepsAlarm(t *testing.T) {
	c := monitor.NewCUSUM()
	c.MinDwell = 10
	seed := uint64(29)
	feed(c, 1000, 100, &seed)
	c.Reset(1000) // as the Controller does after installing a config
	alarmAt := -1
	for i := 0; i < 60; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		noise := float64(int64(seed>>40)%100)/100*0.04 - 0.02
		if c.Observe(500 * (1 + noise)) {
			alarmAt = i
			break
		}
	}
	if alarmAt < 0 {
		t.Fatal("50% drop after a re-anchor never detected")
	}
	// Reset leaves n=1, so sample i has n=i+2: the dwell may hold the
	// alarm through i=8 (n=10) and must release it soon after.
	if alarmAt < 5 {
		t.Errorf("alarm at sample %d, inside the 10-sample dwell", alarmAt)
	}
	if alarmAt > 20 {
		t.Errorf("alarm at sample %d; dwell must delay, not suppress", alarmAt)
	}
}
