// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a function returning a printable
// result; cmd/proteusbench and the root benchmark suite drive them.
//
// Figs. 4–7 are trace-driven, replaying KPI surfaces from the analytic
// performance model (the substitute for the authors' recorded traces);
// Fig. 1 reports the same surfaces; Tables 4–5 and Figs. 8–9 run the real
// PolyTM/ProteusTM runtime on this machine.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cf"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/polytm"
	"repro/internal/workloads"
)

// Scale selects the experiment size: Quick for CI-speed smoke runs, Full
// for paper-scale runs.
type Scale int

const (
	// Quick shrinks workload counts and run times.
	Quick Scale = iota
	// Full uses paper-scale parameters.
	Full
)

// workloadCount returns the trace-driven workload population.
func (s Scale) workloadCount() int {
	if s == Quick {
		return 120
	}
	return 300
}

// repeats returns the number of repetitions for randomized experiments.
func (s Scale) repeats() int {
	if s == Quick {
		return 1
	}
	return 3
}

// truthFor builds the ground-truth KPI matrix for a machine profile.
func truthFor(prof machine.Profile, n int, kind perfmodel.KPIKind, seed uint64) (*perfmodel.Generator, []perfmodel.Workload, *cf.Matrix) {
	gen := &perfmodel.Generator{Machine: prof, Seed: seed}
	ws := gen.Workloads(n)
	cfgs := prof.Configs()
	return gen, ws, gen.Matrix(ws, cfgs, kind)
}

// splitRows partitions matrix rows (and the parallel workload slice) into
// train/test with the given train fraction, interleaving so that every
// workload family straddles the split (the paper's random split).
func splitRows(m *cf.Matrix, ws []perfmodel.Workload, trainFrac float64) (train, test *cf.Matrix, trainW, testW []perfmodel.Workload) {
	train = &cf.Matrix{Cols: m.Cols}
	test = &cf.Matrix{Cols: m.Cols}
	period := 10
	cut := int(trainFrac*float64(period) + 0.5)
	for u := 0; u < m.Rows; u++ {
		if u%period < cut {
			train.Data = append(train.Data, m.Data[u])
			train.Rows++
			if ws != nil {
				trainW = append(trainW, ws[u])
			}
		} else {
			test.Data = append(test.Data, m.Data[u])
			test.Rows++
			if ws != nil {
				testW = append(testW, ws[u])
			}
		}
	}
	return train, test, trainW, testW
}

// stopDriver re-opens the pool's thread gate to full parallelism before
// joining the driver's workers: a worker parked by a low-thread
// configuration can only observe the stop flag once its slot is re-enabled.
func stopDriver(d *workloads.Driver, pool *polytm.Pool, maxThreads int) {
	cfg := pool.Config()
	cfg.Threads = maxThreads
	pool.Reconfigure(cfg) //nolint:errcheck // cfg derived from a valid one
	d.Stop()
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
