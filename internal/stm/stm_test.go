package stm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/htm"
	"repro/internal/stm"
	"repro/internal/tm"
)

// algorithms returns a fresh instance of every TM backend under test.
func algorithms() map[string]tm.Algorithm {
	hy := &htm.Hybrid{CM: htm.NewCM(5, htm.PolicyDecrease)}
	hy.SetSlowPath(stm.NOrec{})
	return map[string]tm.Algorithm{
		"tl2":    stm.TL2{},
		"tiny":   stm.TinySTM{},
		"norec":  stm.NOrec{},
		"swiss":  stm.SwissTM{},
		"gl":     &stm.GlobalLock{},
		"htm":    &htm.HTM{CM: htm.NewCM(5, htm.PolicyDecrease)},
		"hybrid": hy,
	}
}

// TestReadAfterWrite checks that a transaction observes its own writes.
func TestReadAfterWrite(t *testing.T) {
	for name, alg := range algorithms() {
		t.Run(name, func(t *testing.T) {
			h := tm.NewHeap(1024, 4)
			a := h.MustAlloc(2)
			c := tm.NewCtx(0, h)
			tm.Run(alg, c, func(tx tm.Txn) {
				tx.Store(a, 41)
				got := tx.Load(a)
				if got != 41 {
					t.Errorf("read-after-write: got %d, want 41", got)
				}
				tx.Store(a, got+1)
			})
			if got := h.LoadWord(a); got != 42 {
				t.Errorf("after commit: got %d, want 42", got)
			}
		})
	}
}

// TestBankTransfers is the classic TM serializability stress test: n
// accounts, concurrent random transfers, total balance must be invariant.
func TestBankTransfers(t *testing.T) {
	const (
		threads   = 8
		accounts  = 64
		transfers = 3000
		initial   = 1000
	)
	for name, alg := range algorithms() {
		t.Run(name, func(t *testing.T) {
			h := tm.NewHeap(4096, threads)
			base := h.MustAlloc(accounts)
			for i := 0; i < accounts; i++ {
				h.StoreWord(base+tm.Addr(i), initial)
			}
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					c := tm.NewCtx(id, h)
					for i := 0; i < transfers; i++ {
						from := tm.Addr(c.Rand() % accounts)
						to := tm.Addr(c.Rand() % accounts)
						if from == to {
							continue
						}
						tm.Run(alg, c, func(tx tm.Txn) {
							f := tx.Load(base + from)
							g := tx.Load(base + to)
							tx.Store(base+from, f-10)
							tx.Store(base+to, g+10)
						})
					}
				}(w)
			}
			wg.Wait()
			var total uint64
			for i := 0; i < accounts; i++ {
				total += h.LoadWord(base + tm.Addr(i))
			}
			if total != accounts*initial {
				t.Errorf("total balance %d, want %d", total, accounts*initial)
			}
		})
	}
}

// TestSnapshotConsistency checks opacity-style consistency: two words are
// always updated together by writers; readers must never observe them
// unequal.
func TestSnapshotConsistency(t *testing.T) {
	const iters = 4000
	for name, alg := range algorithms() {
		t.Run(name, func(t *testing.T) {
			h := tm.NewHeap(1024, 4)
			x := h.MustAlloc(1)
			// Place y far from x so they live in different stripes.
			h.MustAlloc(64)
			y := h.MustAlloc(1)
			var wg sync.WaitGroup
			stopped := make(chan struct{})
			var violation int64
			wg.Add(1)
			go func() { // writer
				defer wg.Done()
				c := tm.NewCtx(0, h)
				for i := 0; i < iters; i++ {
					tm.Run(alg, c, func(tx tm.Txn) {
						v := tx.Load(x)
						tx.Store(x, v+1)
						tx.Store(y, v+1)
					})
				}
				close(stopped)
			}()
			for r := 1; r <= 2; r++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					c := tm.NewCtx(id, h)
					for {
						select {
						case <-stopped:
							return
						default:
						}
						tm.Run(alg, c, func(tx tm.Txn) {
							a := tx.Load(x)
							b := tx.Load(y)
							if a != b {
								atomic.AddInt64(&violation, 1)
							}
						})
					}
				}(r)
			}
			wg.Wait()
			if v := atomic.LoadInt64(&violation); v != 0 {
				t.Errorf("%s: %d snapshot violations (x != y observed)", name, v)
			}
		})
	}
}

// TestExplicitRetryRestoresState verifies that an aborted attempt leaves no
// published writes behind (write-back semantics). GlobalLock is exempt: it
// writes in place and PolyTM forbids explicit retry under it.
func TestExplicitRetryRestoresState(t *testing.T) {
	for name, alg := range algorithms() {
		if name == "gl" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			h := tm.NewHeap(1024, 4)
			a := h.MustAlloc(1)
			h.StoreWord(a, 7)
			c := tm.NewCtx(0, h)
			first := true
			tm.Run(alg, c, func(tx tm.Txn) {
				tx.Store(a, 99)
				if first {
					first = false
					if h.LoadWord(a) != 7 {
						t.Errorf("%s: uncommitted write visible in place", name)
					}
					c.Retry(tm.AbortExplicit)
				}
			})
			if got := h.LoadWord(a); got != 99 {
				t.Errorf("after final commit: got %d, want 99", got)
			}
			if c.Stats.Snapshot().ExplicitAborts != 1 {
				t.Errorf("explicit abort not recorded")
			}
		})
	}
}

// TestHTMCapacityAbort verifies that transactions exceeding the write
// capacity take capacity aborts and eventually commit on the fallback path.
func TestHTMCapacityAbort(t *testing.T) {
	h := tm.NewHeap(1<<16, 2)
	alg := &htm.HTM{WriteCap: 8, ReadCap: 64, CM: htm.NewCM(3, htm.PolicyGiveUp)}
	base := h.MustAlloc(1 << 12)
	c := tm.NewCtx(0, h)
	tm.Run(alg, c, func(tx tm.Txn) {
		for i := 0; i < 256; i++ {
			tx.Store(base+tm.Addr(i*8), uint64(i))
		}
	})
	s := c.Stats.Snapshot()
	if s.CapacityAborts == 0 {
		t.Errorf("expected capacity aborts, got %+v", s)
	}
	if s.FallbackRuns == 0 {
		t.Errorf("expected fallback execution, got %+v", s)
	}
	for i := 0; i < 256; i++ {
		if got := h.LoadWord(base + tm.Addr(i*8)); got != uint64(i) {
			t.Fatalf("word %d: got %d", i, got)
		}
	}
}

// TestHTMGiveUpVsLinear checks that the capacity policies manage the budget
// differently: GiveUp falls back on the first capacity abort, Decrease burns
// the budget linearly.
func TestHTMGiveUpVsLinear(t *testing.T) {
	run := func(policy htm.CapacityPolicy) tm.Stats {
		h := tm.NewHeap(1<<16, 2)
		alg := &htm.HTM{WriteCap: 4, ReadCap: 64, CM: htm.NewCM(8, policy)}
		base := h.MustAlloc(1 << 12)
		c := tm.NewCtx(0, h)
		tm.Run(alg, c, func(tx tm.Txn) {
			for i := 0; i < 64; i++ {
				tx.Store(base+tm.Addr(i*8), 1)
			}
		})
		return c.Stats.Snapshot()
	}
	giveUp := run(htm.PolicyGiveUp)
	linear := run(htm.PolicyDecrease)
	if giveUp.CapacityAborts != 1 {
		t.Errorf("GiveUp: want exactly 1 capacity abort, got %d", giveUp.CapacityAborts)
	}
	if linear.CapacityAborts != 8 {
		t.Errorf("Decrease: want 8 capacity aborts (budget 8), got %d", linear.CapacityAborts)
	}
}

// TestReadOnlyCommits checks read-only transactions commit without aborts in
// the absence of writers.
func TestReadOnlyCommits(t *testing.T) {
	for name, alg := range algorithms() {
		t.Run(name, func(t *testing.T) {
			h := tm.NewHeap(1024, 4)
			base := h.MustAlloc(16)
			c := tm.NewCtx(0, h)
			var sum uint64
			for i := 0; i < 100; i++ {
				tm.Run(alg, c, func(tx tm.Txn) {
					sum = 0
					for j := 0; j < 16; j++ {
						sum += tx.Load(base + tm.Addr(j))
					}
				})
			}
			if s := c.Stats.Snapshot(); s.Aborts != 0 {
				t.Errorf("unexpected aborts in uncontended read-only run: %+v", s)
			}
			if sum != 0 {
				t.Errorf("sum of zeroed heap = %d", sum)
			}
		})
	}
}
