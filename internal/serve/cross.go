// Cross-shard commit: the two-phase protocol that keeps multi-key
// operations (mput, mget, range) atomic when their keys live on different
// ProteusTM systems.
//
// Phase 1 (acquire): the coordinator claims each participating shard's
// fence word with a CAS-with-fence transaction, in ascending shard-index
// order — the global lock order that keeps concurrent coordinators
// deadlock-free. Every acquisition bumps the shard's fence epoch and
// stamps a heartbeat, and the coordinator records the (shard, epoch)
// pairs in the server's commit-state registry (see recovery.go). Any
// acquisition failure aborts the whole attempt: every fence taken so far
// is released ("abort-all on any shard abort") and the coordinator backs
// off — capped exponential backoff with seeded jitter — and retries.
//
// Phase 2 (apply+release): with every fence held, the coordinator marks
// the batch decided (for writes) and then applies each shard's
// sub-operation and releases that shard's fence in a single transaction,
// so local operations observe the writes and the release atomically.
// Every apply and release is guarded by the recorded (token, epoch) pair:
// if the per-shard failure detector declared this coordinator dead and
// recovered the fence in the meantime, the late transaction observes the
// mismatch and becomes a no-op instead of a corruption — the decided
// flag in the registry is what recovery uses to choose roll-forward
// (writes it finishes on the coordinator's behalf) over abort-release.
//
// Local operations always read the fence inside their own transaction
// and requeue while it is held, which is what makes the span between the
// first and last apply unobservable — the protocol's linearization point
// sits between the last acquire and the first apply.
//
// Control steps travel on each shard's priority lane and execute on the
// shard's own worker slots, so they obey the same graceful-drain protocol
// as data operations. See docs/sharding.md for the state diagram.
package serve

import (
	"net/http"
	"time"

	proteustm "repro"
	"repro/internal/fault"
	"repro/internal/shard"
)

// subBatch is one shard's slice of a cross-shard batch: the positions
// into the request's keys/vals arrays this shard owns.
type subBatch struct {
	shard int
	idx   []int
}

// splitBatchAt groups the request's keys by owning shard under one
// pinned placement, in ascending shard order (the fence-acquisition
// order). The caller passes the partitioner it loaded alongside the
// routing epoch, so the batch and the epoch describe the same placement.
func splitBatchAt(part shard.Partitioner, keys []uint64) []subBatch {
	parts := part.Participants(keys)
	pos := make(map[int]int, len(parts))
	out := make([]subBatch, len(parts))
	for i, p := range parts {
		out[i] = subBatch{shard: p}
		pos[p] = i
	}
	for i, k := range keys {
		j := pos[part.Owner(k)]
		out[j].idx = append(out[j].idx, i)
	}
	return out
}

// Backoff constants of the acquire-phase abort-retry loop: attempt n
// sleeps min(base<<n, cap) scaled by a seeded jitter in [0.5, 1.5), so
// colliding coordinators spread out instead of re-colliding in lockstep.
const (
	crossBackoffBase = 50 * time.Microsecond
	crossBackoffCap  = 2 * time.Millisecond
)

// crossBackoff sleeps the capped exponential backoff for abort-retry
// attempt n and accounts the sleep (surfaced as ops.cross_backoff_ms).
func (s *Server) crossBackoff(attempt int) {
	d := crossBackoffBase
	for i := 0; i < attempt && d < crossBackoffCap; i++ {
		d *= 2
	}
	if d > crossBackoffCap {
		d = crossBackoffCap
	}
	// Seeded jitter: deterministic splitmix64 stream over Options.Seed.
	x := s.jitterState.Add(0x9E3779B97F4A7C15)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	frac := float64((x^(x>>31))>>11) / float64(1<<53) // [0, 1)
	d = d/2 + time.Duration(float64(d)*frac)
	s.crossBackoffNs.Add(uint64(d))
	time.Sleep(d)
}

// submitCross admits one multi-key operation. The participant set is
// computed from one atomically-loaded (placement, epoch) pair, and the
// epoch rides along: if a live reshard flips the placement before the
// operation executes, the shard (fast path) or the post-acquire epoch
// re-check (protocol path) bounces it back here to recompute under the
// current placement. Single-participant operations take the fast path:
// one ordinary admission-queue request on the owning shard, atomic by
// construction. Everything else runs the two-phase commit protocol
// above.
func (s *Server) submitCross(req *request) (response, int) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return response{Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	for try := 0; ; try++ {
		part, epoch := s.place.Load()
		req.routingEpoch = epoch
		var batches []subBatch
		if req.op == opRange {
			// Fence only the shards whose key spans intersect the scan. The
			// partitioner's owner set is exact for the range partitioner and
			// for narrow hashed scans, conservative (every shard) for wide
			// hashed ones — never fewer than the shards that could hold a key
			// in [lo, hi], which is what keeps the snapshot atomic.
			for _, p := range part.OwnersInRange(req.lo, req.hi) {
				batches = append(batches, subBatch{shard: p})
			}
			if part.Kind() == shard.KindHash && part.Shards() > 1 && req.hi-req.lo >= shard.RangeEnumCap {
				// The hash partitioner gave up enumerating: the owner set is
				// the conservative all-shards fallback, and this scan fences
				// the entire fleet. Counted so the over-fencing is visible
				// (ops.range_conservative in /statusz).
				s.rangeConservative.Add(1)
			}
			if len(batches) == 1 {
				s.rangeLocal.Add(1)
			} else {
				s.rangeCross.Add(1)
				s.rangeFencedShards.Add(uint64(len(batches)))
			}
		} else {
			batches = splitBatchAt(part, req.keys)
		}
		var resp response
		var code int
		var flipped bool
		if fleet := s.fleet(); len(batches) == 1 && batches[0].shard < len(fleet) {
			// Fast path: the whole operation lives on one shard; the shard's
			// own transaction makes it atomic, and the fence check inside
			// execute keeps it ordered against concurrent cross-shard commits.
			resp, code = s.submit(fleet[batches[0].shard], req)
			flipped = resp.moved
		} else if len(batches) == 1 {
			// The single owner was merged away between the placement and
			// fleet loads: re-route under the fresh placement.
			flipped = true
		} else {
			resp, code, flipped = s.crossProtocol(req, batches, epoch)
		}
		if !flipped {
			return resp, code
		}
		if try >= movedRetries {
			return response{Err: "placement moved during retries"}, http.StatusServiceUnavailable
		}
		s.movedBounces.Add(1)
	}
}

// crossProtocol runs the two-phase commit over batches, which were
// computed under the placement of routedEpoch. It reports flipped=true —
// with every fence released and nothing applied — when a live reshard
// installed a newer placement after the fences were acquired: the
// participant set may be stale, and the caller recomputes it. The check
// sits with every fence held, and any migration that moves this batch's
// keys must first take their current owner's fence (a participant's), so
// a batch that passes the check cannot lose a key to a flip before it
// applies.
func (s *Server) crossProtocol(req *request, batches []subBatch, routedEpoch uint64) (response, int, bool) {
	// A sick participant fails the whole batch before any fence is
	// taken: shed to the breaker's Retry-After instead of letting the
	// protocol discover the stall the slow way. A participant the fleet
	// no longer holds was merged away after the batch was computed —
	// bounce for re-routing instead of indexing past the truncation.
	for _, b := range batches {
		fleet := s.fleet()
		if b.shard >= len(fleet) {
			return response{}, 0, true
		}
		if ra := fleet[b.shard].breakerRetryAfter(time.Now()); ra > 0 {
			s.breakerShed.Add(1)
			return response{Err: "participant shard circuit breaker open",
					code: http.StatusServiceUnavailable, retryAfter: ra},
				http.StatusServiceUnavailable, false
		}
	}

	s.armDeadline(req)
	accepted := req.accepted
	// Coordinator slots are bounded admission, same contract as the data
	// queues: overflow rejects immediately (429), never stalls a handler.
	select {
	case s.crossSem <- struct{}{}:
	default:
		s.rejected.Add(1)
		return response{Err: "cross-shard coordinator slots full"}, http.StatusTooManyRequests, false
	}
	defer func() { <-s.crossSem }()
	token := s.nextToken.Add(1)
	rec := s.reg.register(token, req, batches)
	abandoned := false
	defer func() {
		if !abandoned {
			s.reg.remove(token)
		}
	}()

	for attempt := 0; attempt < s.opts.CrossRetries; attempt++ {
		// Deadline/cancellation gate, checked only between attempts: a
		// coordinator never abandons a protocol round mid-flight (that
		// would strand fences), but an expired or client-abandoned batch
		// is dropped before it claims any fence.
		if req.expired(time.Now()) {
			s.shedDeadline.Add(1)
			return response{Err: "deadline exceeded", code: http.StatusGatewayTimeout}, http.StatusGatewayTimeout, false
		}
		// A placement flip while we were backing off (a merge retiring a
		// participant, say) means the batch may be stale: bounce it back
		// for recomputation instead of spinning the retry budget against a
		// retired shard's drainer.
		if s.place.Epoch() != routedEpoch {
			s.releaseParts(rec)
			return response{}, 0, true
		}
		ok := true
		for _, p := range rec.parts {
			// Injected coordinator stall between acquisitions: the
			// coordinator sits on already-claimed fences, indistinguishable
			// from a dead one — the window the epoch guards exist for.
			if d, fire := s.opts.Fault.Fire(fault.FenceAcquireStall, -1); fire {
				time.Sleep(d)
			}
			fleet := s.fleet()
			if p.shard >= len(fleet) {
				// Participant merged away mid-protocol: recompute the batch.
				s.releaseParts(rec)
				return response{}, 0, true
			}
			r := s.ctlAcquire(fleet[p.shard], token, partSig(req, p))
			if r.Err != "" {
				s.releaseParts(rec)
				return r, http.StatusServiceUnavailable, false
			}
			if !r.Applied {
				ok = false
				break
			}
			s.reg.acquired(rec, p, r.epoch, r.slot)
		}
		if !ok {
			// Abort-all: another coordinator (or an unlucky interleaving)
			// holds a fence we need. Release everything, back off, retry.
			s.releaseParts(rec)
			s.crossAborts.Add(1)
			if attempt+1 < s.opts.CrossRetries {
				s.crossBackoff(attempt)
			}
			continue
		}
		// Placement re-check, with every fence held: a reshard that moves
		// any of this batch's keys must first take their current owner's
		// fence — one of ours — so an epoch still equal to the routing
		// epoch proves the participant set is current, and a newer epoch
		// sends the batch back to be recomputed before anything applies.
		if s.place.Epoch() != routedEpoch {
			s.releaseParts(rec)
			return response{}, 0, true
		}
		// Prepared: every fence held. Writes record their decision now —
		// from here recovery rolls the batch forward instead of aborting.
		// A failed decide means the detector claimed this batch for abort
		// while we were stalled mid-acquire: nothing may be applied.
		if req.op == opMPut && !s.reg.decide(rec) {
			resp := s.superseded(rec)
			return resp, resp.code, false
		}
		if _, fire := s.opts.Fault.Fire(fault.CoordCrash, -1); fire {
			// Injected coordinator crash between prepare and apply: the
			// registry record stays behind for the failure detector, the
			// fences stay held until it recovers them, and the client is
			// told when to retry.
			abandoned = true
			s.reg.abandon(rec)
			s.crossCrashes.Add(1)
			return response{Err: "cross-shard coordinator crashed (injected fault); fence recovery pending",
					code: http.StatusServiceUnavailable, retryAfter: s.fenceRecoveryEta()},
				http.StatusServiceUnavailable, false
		}
		resp := s.applyAll(rec, req)
		if resp.Err != "" {
			code := http.StatusServiceUnavailable
			if resp.code != 0 {
				code = resp.code
			}
			return resp, code, false
		}
		s.crossOps.Add(1)
		s.served[req.op].Add(1)
		s.lat.Observe(msBetween(accepted, time.Now()))
		return resp, http.StatusOK, false
	}
	// Exhausting the retry budget on a sharded server almost always means
	// the batch kept colliding with an orphaned fence (the capped backoff
	// schedule is far shorter than a recovery window), so tell the client
	// when the failure detector will have healed it rather than reporting
	// a dead-end error.
	return response{Err: "cross-shard commit: fence contention exhausted retries",
			code: http.StatusServiceUnavailable, retryAfter: s.fenceRecoveryEta()},
		http.StatusServiceUnavailable, false
}

// ctl submits one control step to shard ss's priority lane and waits for
// its result. Control steps skip the closed-check on purpose: Close waits
// for in-flight coordinators (registered in inflight) before stopping the
// workers, so a coordinator must be able to finish its protocol — fence
// releases included — after shutdown begins.
func (s *Server) ctl(ss *shardState, fn func(w *proteustm.Worker, slot int) response) response {
	req := &request{ctl: fn, done: make(chan response, 1)}
	select {
	case ss.prio <- req:
	case <-ss.stop:
		// A retiring shard answers not-applied (the coordinator re-routes
		// off the flipped epoch); only real shutdown is an error.
		return ss.stopAnswer(req)
	}
	return <-req.done
}

// partSig builds the keyed-fence Bloom signature for part p of req: the
// union of the signature bits of the keys the part owns, or a
// conflict-with-everything signature for range scans (whose covered key
// set cannot be enumerated). Unused under the whole-shard fence.
func partSig(req *request, p *crossPart) uint64 {
	if req.op == opRange {
		return ^uint64(0)
	}
	var sig uint64
	for _, i := range p.idx {
		sig |= keyBit(req.keys[i])
	}
	return sig
}

// ctlAcquire runs the CAS-with-fence acquisition on one shard, stamping
// the heartbeat with the coordinator's current wall clock; the response
// carries the new fence epoch and — under keyed fences — the claimed
// slot (-1 under the whole-shard fence). sig is the keyed-fence Bloom
// signature of the keys this acquisition covers.
func (s *Server) ctlAcquire(ss *shardState, token, sig uint64) response {
	beat := uint64(time.Now().UnixNano())
	keyed := s.opts.FenceGranularity == FenceKey
	return s.ctl(ss, func(w *proteustm.Worker, _ int) response {
		var got bool
		var epoch uint64
		slot := -1
		w.Atomic(func(tx proteustm.Txn) {
			if keyed {
				epoch, slot, got = ss.store.FenceAcquireKey(tx, token, beat, sig)
			} else {
				epoch, got = ss.store.FenceAcquire(tx, token, beat)
				slot = -1
			}
		})
		return response{Applied: got, epoch: epoch, slot: slot}
	})
}

// releaseParts frees the fences of every acquired-but-unreleased part of
// rec (the abort path; the commit path releases inside applyAll's
// per-shard transactions). Every release is epoch-guarded, so a part the
// failure detector already recovered — and possibly handed to a new
// coordinator under a new epoch — is left alone. Part state is reset so
// the next acquire attempt starts clean.
func (s *Server) releaseParts(rec *crossRec) {
	for _, p := range rec.parts {
		token, epoch, slot, held := s.reg.acquireState(rec, p)
		if !held {
			continue
		}
		fleet := s.fleet()
		if p.shard >= len(fleet) {
			// Defensive: a fenced shard cannot retire (the merge migrator
			// needs the same fence), so a held part is always in the fleet —
			// but never index past a truncation.
			continue
		}
		ss := fleet[p.shard]
		s.ctl(ss, func(w *proteustm.Worker, _ int) response {
			w.Atomic(func(tx proteustm.Txn) {
				if ss.store.FenceHeldAt(tx, slot, token, epoch) {
					ss.store.FenceReleaseAt(tx, slot, epoch)
				}
			})
			return response{}
		})
	}
	s.reg.resetParts(rec)
}

// failRemaining handles a control-step failure inside phase 2 — only
// reachable during process shutdown (the lane rejects steps once the
// shard's stop channel closes, and Close waits for in-flight coordinators
// before closing it). Even then the coordinator must not strand fences:
// the remaining participants' fences are released best-effort before the
// error propagates, so a shard can never be wedged for writes by a dead
// batch.
func (s *Server) failRemaining(rec *crossRec, r response) response {
	s.releaseParts(rec)
	return r
}

// superseded is the phase-2 outcome when a guarded apply observed a
// foreign (token, epoch): the failure detector declared this coordinator
// dead mid-protocol and recovered its fences. Reads cannot be salvaged
// (their snapshot is torn); writes land here only when recovery aborted
// an undecided batch, so nothing was applied anywhere and a retry is
// safe either way.
func (s *Server) superseded(rec *crossRec) response {
	s.releaseParts(rec)
	return response{Err: "cross-shard commit superseded by fence recovery; retry",
		code: http.StatusServiceUnavailable, retryAfter: s.fenceRecoveryEta()}
}

// applyAll runs phase 2: each shard applies its slice of the operation
// and releases its fence in one transaction, guarded by the (token,
// epoch) recorded at acquisition. With every fence held no local
// operation can observe the store between two shards' applies, so the
// batch is atomic even though the applies run one shard at a time. A
// part the failure detector already rolled forward (a slow-but-alive
// coordinator racing recovery) is skipped: its writes are in and its
// fence is released, which is exactly what this loop would have done.
func (s *Server) applyAll(rec *crossRec, req *request) response {
	var out response
	switch req.op {
	case opMPut:
		for _, p := range rec.parts {
			if s.reg.partReleased(rec, p) {
				if s.reg.partRolledForward(rec, p) {
					continue // recovery rolled this part forward
				}
				// Released but not rolled forward: recovery aborted the
				// batch out from under a stalled coordinator. Nothing was
				// applied on this shard — fail the batch whole.
				return s.superseded(rec)
			}
			fleet := s.fleet()
			if p.shard >= len(fleet) {
				return s.superseded(rec) // defensive: fenced shards never retire
			}
			ss, idx := fleet[p.shard], p.idx
			epoch, fslot := s.reg.holdOf(rec, p)
			r := s.ctl(ss, func(w *proteustm.Worker, slot int) response {
				var stale bool
				w.Atomic(func(tx proteustm.Txn) {
					if stale = !ss.store.FenceHeldAt(tx, fslot, rec.token, epoch); stale {
						return
					}
					for _, i := range idx {
						ss.store.Put(tx, slot, req.keys[i], req.vals[i])
					}
					ss.store.FenceReleaseAt(tx, fslot, epoch)
				})
				if !stale {
					s.reg.markReleased(rec, p, false)
				}
				return response{Applied: true}
			})
			if r.Err != "" {
				return s.failRemaining(rec, r)
			}
			if !s.reg.partReleased(rec, p) {
				return s.superseded(rec)
			}
		}
		out.Applied = true
	case opMGet:
		out.Vals = make([]uint64, len(req.keys))
		out.Present = make([]bool, len(req.keys))
		for _, p := range rec.parts {
			fleet := s.fleet()
			if p.shard >= len(fleet) {
				return s.superseded(rec) // defensive: fenced shards never retire
			}
			ss, idx := fleet[p.shard], p.idx
			epoch, fslot := s.reg.holdOf(rec, p)
			r := s.ctl(ss, func(w *proteustm.Worker, _ int) response {
				var stale bool
				vals := make([]uint64, len(idx))
				present := make([]bool, len(idx))
				w.Atomic(func(tx proteustm.Txn) {
					if stale = !ss.store.FenceHeldAt(tx, fslot, rec.token, epoch); stale {
						return
					}
					for j, i := range idx {
						vals[j], present[j] = ss.store.Get(tx, req.keys[i])
					}
					ss.store.FenceReleaseAt(tx, fslot, epoch)
				})
				if !stale {
					s.reg.markReleased(rec, p, false)
				}
				return response{Vals: vals, Present: present, Applied: !stale}
			})
			if r.Err != "" {
				return s.failRemaining(rec, r)
			}
			if !r.Applied {
				return s.superseded(rec)
			}
			for j, i := range idx {
				out.Vals[i], out.Present[i] = r.Vals[j], r.Present[j]
			}
		}
	case opRange:
		for _, p := range rec.parts {
			fleet := s.fleet()
			if p.shard >= len(fleet) {
				return s.superseded(rec) // defensive: fenced shards never retire
			}
			ss := fleet[p.shard]
			epoch, fslot := s.reg.holdOf(rec, p)
			r := s.ctl(ss, func(w *proteustm.Worker, _ int) response {
				var stale bool
				var count, sum uint64
				w.Atomic(func(tx proteustm.Txn) {
					count, sum = 0, 0
					if stale = !ss.store.FenceHeldAt(tx, fslot, rec.token, epoch); stale {
						return
					}
					count, sum = ss.store.Range(tx, req.lo, req.hi)
					ss.store.FenceReleaseAt(tx, fslot, epoch)
				})
				if !stale {
					s.reg.markReleased(rec, p, false)
				}
				return response{Count: count, Sum: sum, Applied: !stale}
			})
			if r.Err != "" {
				return s.failRemaining(rec, r)
			}
			if !r.Applied {
				return s.superseded(rec)
			}
			out.Count += r.Count
			out.Sum += r.Sum
		}
	}
	return out
}
