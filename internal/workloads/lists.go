package workloads

import "repro/internal/tm"

// --- Skip list ----------------------------------------------------------------

// skip-list node layout: key, val, level, next[maxLevel].
const (
	slKey = iota
	slVal
	slLevel
	slNext // first of maxLevel next pointers
)

const slMaxLevel = 12

// SkipList is the concurrent skip-list benchmark: same API and operation
// mix as RBTree but with probabilistic balancing — longer read paths, no
// rotations, so writes touch fewer shared words.
type SkipList struct {
	KeyRange    int
	UpdateRatio float64
	InitialSize int

	h    *tm.Heap
	head tm.Addr
	pool *NodePool
}

// Name implements Workload.
func (s *SkipList) Name() string { return "skiplist" }

func (s *SkipList) params() (keyRange, initial int, update float64) {
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	update = s.UpdateRatio
	if update == 0 {
		update = 0.2
	}
	return
}

// Setup implements Workload.
func (s *SkipList) Setup(h *tm.Heap, rng *Rand) error {
	s.h = h
	head, err := h.Alloc(slNext + slMaxLevel)
	if err != nil {
		return err
	}
	s.head = head
	h.StoreWord(head+slLevel, slMaxLevel)
	if s.pool, err = NewNodePool(h, slNext+slMaxLevel, slVal); err != nil {
		return err
	}
	keyRange, initial, _ := s.params()
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(keyRange)) + 1
		lvl := s.randLevel(rng)
		seq.Atomic(0, func(tx tm.Txn) { s.insert(tx, 0, k, k, lvl) })
	}
	return nil
}

// Op implements Workload.
func (s *SkipList) Op(r Runner, self int, rng *Rand) {
	keyRange, _, update := s.params()
	k := uint64(rng.Intn(keyRange)) + 1
	p := rng.Float64()
	switch {
	case p < update/2:
		lvl := s.randLevel(rng)
		r.Atomic(self, func(tx tm.Txn) { s.insert(tx, self, k, k, lvl) })
	case p < update:
		r.Atomic(self, func(tx tm.Txn) { s.remove(tx, self, k) })
	default:
		r.Atomic(self, func(tx tm.Txn) { s.contains(tx, k) })
	}
}

func (s *SkipList) randLevel(rng *Rand) int {
	lvl := 1
	for lvl < slMaxLevel && rng.Float64() < 0.5 {
		lvl++
	}
	return lvl
}

func (s *SkipList) contains(tx tm.Txn, k uint64) bool {
	n := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := tm.Addr(tx.Load(n + slNext + tm.Addr(lvl)))
			if next == tm.NilAddr || tx.Load(next+slKey) >= k {
				break
			}
			n = next
		}
	}
	n = tm.Addr(tx.Load(n + slNext))
	return n != tm.NilAddr && tx.Load(n+slKey) == k
}

func (s *SkipList) insert(tx tm.Txn, self int, k, v uint64, level int) bool {
	var update [slMaxLevel]tm.Addr
	n := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := tm.Addr(tx.Load(n + slNext + tm.Addr(lvl)))
			if next == tm.NilAddr || tx.Load(next+slKey) >= k {
				break
			}
			n = next
		}
		update[lvl] = n
	}
	candidate := tm.Addr(tx.Load(n + slNext))
	if candidate != tm.NilAddr && tx.Load(candidate+slKey) == k {
		tx.Store(candidate+slVal, v)
		return false
	}
	fresh := s.pool.Get(tx, self)
	tx.Store(fresh+slKey, k)
	tx.Store(fresh+slVal, v)
	tx.Store(fresh+slLevel, uint64(level))
	for lvl := 0; lvl < level; lvl++ {
		tx.Store(fresh+slNext+tm.Addr(lvl), tx.Load(update[lvl]+slNext+tm.Addr(lvl)))
		tx.Store(update[lvl]+slNext+tm.Addr(lvl), uint64(fresh))
	}
	return true
}

func (s *SkipList) remove(tx tm.Txn, self int, k uint64) bool {
	var update [slMaxLevel]tm.Addr
	n := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := tm.Addr(tx.Load(n + slNext + tm.Addr(lvl)))
			if next == tm.NilAddr || tx.Load(next+slKey) >= k {
				break
			}
			n = next
		}
		update[lvl] = n
	}
	victim := tm.Addr(tx.Load(n + slNext))
	if victim == tm.NilAddr || tx.Load(victim+slKey) != k {
		return false
	}
	level := int(tx.Load(victim + slLevel))
	for lvl := 0; lvl < level; lvl++ {
		if tm.Addr(tx.Load(update[lvl]+slNext+tm.Addr(lvl))) == victim {
			tx.Store(update[lvl]+slNext+tm.Addr(lvl), tx.Load(victim+slNext+tm.Addr(lvl)))
		}
	}
	s.pool.Put(tx, self, victim)
	return true
}

// --- Sorted linked list ---------------------------------------------------------

// list node layout: key, val, next.
const (
	llKey = iota
	llVal
	llNext
	llNodeWords
)

// LinkedList is the sorted-linked-list benchmark: linear search makes every
// operation read a long prefix of the structure, the classic stress test
// for invisible-read STMs.
type LinkedList struct {
	KeyRange    int
	UpdateRatio float64
	InitialSize int

	h    *tm.Heap
	head tm.Addr
	pool *NodePool
}

// Name implements Workload.
func (l *LinkedList) Name() string { return "linkedlist" }

func (l *LinkedList) params() (keyRange, initial int, update float64) {
	keyRange = l.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 9
	}
	initial = l.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	update = l.UpdateRatio
	if update == 0 {
		update = 0.2
	}
	return
}

// Setup implements Workload.
func (l *LinkedList) Setup(h *tm.Heap, rng *Rand) error {
	l.h = h
	head, err := h.Alloc(llNodeWords)
	if err != nil {
		return err
	}
	l.head = head // sentinel with key 0
	if l.pool, err = NewNodePool(h, llNodeWords, llVal); err != nil {
		return err
	}
	keyRange, initial, _ := l.params()
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(keyRange)) + 1
		seq.Atomic(0, func(tx tm.Txn) { l.insert(tx, 0, k, k) })
	}
	return nil
}

// Op implements Workload.
func (l *LinkedList) Op(r Runner, self int, rng *Rand) {
	keyRange, _, update := l.params()
	k := uint64(rng.Intn(keyRange)) + 1
	p := rng.Float64()
	switch {
	case p < update/2:
		r.Atomic(self, func(tx tm.Txn) { l.insert(tx, self, k, k) })
	case p < update:
		r.Atomic(self, func(tx tm.Txn) { l.remove(tx, self, k) })
	default:
		r.Atomic(self, func(tx tm.Txn) { l.contains(tx, k) })
	}
}

func (l *LinkedList) locate(tx tm.Txn, k uint64) (prev, cur tm.Addr) {
	prev = l.head
	cur = tm.Addr(tx.Load(prev + llNext))
	for cur != tm.NilAddr && tx.Load(cur+llKey) < k {
		prev = cur
		cur = tm.Addr(tx.Load(cur + llNext))
	}
	return prev, cur
}

func (l *LinkedList) contains(tx tm.Txn, k uint64) bool {
	_, cur := l.locate(tx, k)
	return cur != tm.NilAddr && tx.Load(cur+llKey) == k
}

func (l *LinkedList) insert(tx tm.Txn, self int, k, v uint64) bool {
	prev, cur := l.locate(tx, k)
	if cur != tm.NilAddr && tx.Load(cur+llKey) == k {
		tx.Store(cur+llVal, v)
		return false
	}
	fresh := l.pool.Get(tx, self)
	tx.Store(fresh+llKey, k)
	tx.Store(fresh+llVal, v)
	tx.Store(fresh+llNext, uint64(cur))
	tx.Store(prev+llNext, uint64(fresh))
	return true
}

func (l *LinkedList) remove(tx tm.Txn, self int, k uint64) bool {
	prev, cur := l.locate(tx, k)
	if cur == tm.NilAddr || tx.Load(cur+llKey) != k {
		return false
	}
	tx.Store(prev+llNext, tx.Load(cur+llNext))
	l.pool.Put(tx, self, cur)
	return true
}

// --- Hash map -------------------------------------------------------------------

// HashMap is the chained-bucket hash-map benchmark: very short transactions
// over a wide bucket array — the HTM-friendliest of the data structures.
type HashMap struct {
	Buckets     int
	KeyRange    int
	UpdateRatio float64
	InitialSize int

	h    *tm.Heap
	base tm.Addr
	pool *NodePool
}

// Name implements Workload.
func (m *HashMap) Name() string { return "hashmap" }

func (m *HashMap) params() (buckets, keyRange, initial int, update float64) {
	buckets = m.Buckets
	if buckets <= 0 {
		buckets = 1 << 12
	}
	keyRange = m.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 15
	}
	initial = m.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	update = m.UpdateRatio
	if update == 0 {
		update = 0.2
	}
	return
}

// Setup implements Workload.
func (m *HashMap) Setup(h *tm.Heap, rng *Rand) error {
	m.h = h
	buckets, keyRange, initial, _ := m.params()
	base, err := h.Alloc(buckets)
	if err != nil {
		return err
	}
	m.base = base
	if m.pool, err = NewNodePool(h, llNodeWords, llVal); err != nil {
		return err
	}
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(keyRange)) + 1
		seq.Atomic(0, func(tx tm.Txn) { m.put(tx, 0, k, k) })
	}
	return nil
}

// Op implements Workload.
func (m *HashMap) Op(r Runner, self int, rng *Rand) {
	_, keyRange, _, update := m.params()
	k := uint64(rng.Intn(keyRange)) + 1
	p := rng.Float64()
	switch {
	case p < update/2:
		r.Atomic(self, func(tx tm.Txn) { m.put(tx, self, k, k) })
	case p < update:
		r.Atomic(self, func(tx tm.Txn) { m.del(tx, self, k) })
	default:
		r.Atomic(self, func(tx tm.Txn) { m.get(tx, k) })
	}
}

func (m *HashMap) bucket(k uint64) tm.Addr {
	buckets, _, _, _ := m.params()
	h := k * 0x9E3779B97F4A7C15
	return m.base + tm.Addr(h%uint64(buckets))
}

func (m *HashMap) get(tx tm.Txn, k uint64) (uint64, bool) {
	n := tm.Addr(tx.Load(m.bucket(k)))
	for n != tm.NilAddr {
		if tx.Load(n+llKey) == k {
			return tx.Load(n + llVal), true
		}
		n = tm.Addr(tx.Load(n + llNext))
	}
	return 0, false
}

func (m *HashMap) put(tx tm.Txn, self int, k, v uint64) bool {
	b := m.bucket(k)
	n := tm.Addr(tx.Load(b))
	for n != tm.NilAddr {
		if tx.Load(n+llKey) == k {
			tx.Store(n+llVal, v)
			return false
		}
		n = tm.Addr(tx.Load(n + llNext))
	}
	fresh := m.pool.Get(tx, self)
	tx.Store(fresh+llKey, k)
	tx.Store(fresh+llVal, v)
	tx.Store(fresh+llNext, tx.Load(b))
	tx.Store(b, uint64(fresh))
	return true
}

func (m *HashMap) del(tx tm.Txn, self int, k uint64) bool {
	b := m.bucket(k)
	n := tm.Addr(tx.Load(b))
	if n == tm.NilAddr {
		return false
	}
	if tx.Load(n+llKey) == k {
		tx.Store(b, tx.Load(n+llNext))
		m.pool.Put(tx, self, n)
		return true
	}
	prev := n
	n = tm.Addr(tx.Load(n + llNext))
	for n != tm.NilAddr {
		if tx.Load(n+llKey) == k {
			tx.Store(prev+llNext, tx.Load(n+llNext))
			m.pool.Put(tx, self, n)
			return true
		}
		prev = n
		n = tm.Addr(tx.Load(n + llNext))
	}
	return false
}
